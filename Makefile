# Standard developer entry points. Everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race vet fmt check fuzz fleet-smoke bench experiments ablations examples clean

all: build vet test check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# check is the pre-merge gate: static analysis, the race detector, and a
# short fuzz pass over the CoAP wire parser (the one decoder that consumes
# attacker-shaped bytes).
check: vet race fuzz

fuzz:
	$(GO) test -run '^$$' -fuzz FuzzUnmarshal -fuzztime 10s ./internal/coapmsg

# Tiny end-to-end fleet sweep (8 scenarios) under the race detector: exercises
# the worker pool, reorder-buffer aggregation, and the CLI in one shot.
fleet-smoke:
	$(GO) run -race ./cmd/iotfleet -spec internal/fleet/testdata/smoke.json -workers 4 -progress

fmt:
	gofmt -l -w .

# Full benchmark harness: one testing.B per paper table/figure + ablations
# + per-package micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every paper artifact (tables + figures) as ASCII.
experiments:
	$(GO) run ./cmd/experiments -all -chart

ablations:
	$(GO) run ./cmd/experiments -ablations

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/smarthome
	$(GO) run ./examples/healthcare
	$(GO) run ./examples/smartcity
	$(GO) run ./examples/custom

clean:
	$(GO) clean -testcache
