# Standard developer entry points. Everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race vet fmt check lint-scheme fuzz fleet-smoke service-smoke obs-smoke observer-smoke opt-smoke harvest-smoke bench bench-json bench-diff bench-smoke experiments ablations examples clean

all: build vet test check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# lint-scheme guards the policy-engine architecture: every Scheme/Mode switch
# (and every case arm over the scheme/mode/placement constants) must live in
# internal/scheme — or internal/edge for the edge tier's own machinery — the
# hub runner is a scheme-agnostic conductor. Production code only; tests may
# enumerate modes to assert planner output.
lint-scheme:
	@out=$$( \
	  { grep -rnE 'switch[ (][^{]*([Ss]cheme|[Mm]ode)' --include='*.go' --exclude='*_test.go' cmd internal examples; \
	    grep -rnE '^[[:space:]]*case[[:space:]][^:]*(\bBaseline\b|\bBatching\b|\bBCOM\b|\bBEAM\b|\bHybrid\b|\bECOM\b|\bPerSample\b|\bBatched\b|\bOffloaded\b|\bUploaded\b|\bOnCPU\b|\bOnMCU\b|\bOnEdge\b|[^a-zA-Z.]COM\b)' \
	      --include='*.go' --exclude='*_test.go' cmd internal examples; } \
	  | grep -v '^internal/scheme/' | grep -v '^internal/edge/' || true); \
	if [ -n "$$out" ]; then \
	  echo "lint-scheme: Scheme/Mode control flow outside internal/scheme:"; \
	  echo "$$out"; exit 1; \
	fi; echo "lint-scheme: ok"

# check is the pre-merge gate: static analysis, the scheme-placement lint,
# the race detector, the optimizer determinism smoke, the observer-effect
# smoke, the battery/harvest smoke, and short fuzz passes over the two
# text decoders that consume user-shaped bytes (CoAP wire format, harvest
# trace grammar).
check: vet lint-scheme race opt-smoke observer-smoke harvest-smoke fuzz

fuzz:
	$(GO) test -run '^$$' -fuzz FuzzUnmarshal -fuzztime 10s ./internal/coapmsg
	$(GO) test -run '^$$' -fuzz FuzzParseTrace -fuzztime 10s ./internal/power

# Tiny end-to-end fleet sweep (8 scenarios) under the race detector: exercises
# the worker pool, reorder-buffer aggregation, the Prometheus endpoint (the
# sweep self-scrapes its own /metrics at the end), and the CLI in one shot.
fleet-smoke:
	$(GO) run -race ./cmd/iotfleet -spec internal/fleet/testdata/smoke.json \
		-workers 4 -progress -metrics-addr 127.0.0.1:0

# Service-mode fault-tolerance smoke: coordinator + two worker processes
# under the race detector, one worker kill -9'd mid-sweep; the merged
# aggregate JSON must equal the in-process workers=1 run byte for byte.
service-smoke:
	sh scripts/service_smoke.sh

# End-to-end observability smoke: one clean and one chaotic instrumented run
# dumping trace + counters (+ flight ring under chaos), then the exporter
# test suite — golden trace bytes, analytic Table II counter values, and the
# instrumented-run-is-byte-identical guarantee.
OBS_TMP ?= /tmp
obs-smoke:
	$(GO) run ./cmd/iotsim -apps A2 -scheme baseline -windows 2 -outputs=false \
		-trace $(OBS_TMP)/obs-baseline-trace.json -counters
	$(GO) run ./cmd/iotsim -apps A2,A7 -scheme beam -windows 2 -outputs=false \
		-chaos "seed=7; link-corrupt:prob=0.05; mcu-crash:at=700ms,for=80ms" \
		-trace $(OBS_TMP)/obs-chaos-trace.json -counters -flight
	$(GO) test -run 'TestObs|TestChromeTrace' ./internal/hub ./internal/obs

# Observer-effect smoke: the abl-observer ablation enforces its own gates —
# the External/zero-cost asymptote is byte-identical to the unobserved run,
# energy inflation grows strictly with the sampling rate within every scheme,
# and per-sample schemes inflate strictly more than batched ones — so simply
# running it (plus the asymptote/chaos/analytic test suite) is the gate.
observer-smoke:
	$(GO) run ./cmd/experiments -id abl-observer > /dev/null
	$(GO) test -run 'TestMeter' ./internal/hub ./internal/obs
	@echo "observer-smoke: ok"

# Optimizer determinism smoke: run the committed example search twice, demand
# the two emitted plans are byte-identical AND equal to the committed plan,
# then verify the plan's embedded replay spec reproduces its aggregates byte
# for byte (and still beats every paper scheme) through `optimize
# -check-replay`.
OPT_TMP ?= /tmp
opt-smoke:
	$(GO) run ./cmd/iotfleet optimize -spec internal/optimizer/testdata/example.json \
		-out $(OPT_TMP)/opt-smoke-1.json > /dev/null
	$(GO) run ./cmd/iotfleet optimize -spec internal/optimizer/testdata/example.json \
		-out $(OPT_TMP)/opt-smoke-2.json > /dev/null
	cmp $(OPT_TMP)/opt-smoke-1.json $(OPT_TMP)/opt-smoke-2.json
	cmp $(OPT_TMP)/opt-smoke-1.json internal/optimizer/testdata/example.plan.json
	$(GO) run ./cmd/iotfleet optimize -check-replay internal/optimizer/testdata/example.plan.json
	@echo "opt-smoke: ok"

# Battery/harvest smoke: the abl-harvest ablation enforces its own gates —
# the shared supply browns out at least one scheme and spares at least one,
# survivors' survival equals the horizon, reruns are byte-identical, and the
# fleet reproduces identical per-scenario records for any worker count — so
# running it (plus the asymptote/brownout suite) is the gate.
harvest-smoke:
	$(GO) run ./cmd/experiments -id abl-harvest > /dev/null
	$(GO) test -run 'TestBattery|TestArenaReuseBatteryArmed|TestBrownoutUnderChaos' ./internal/hub ./internal/power
	@echo "harvest-smoke: ok"

fmt:
	gofmt -l -w .

# Full benchmark harness: one testing.B per paper table/figure + ablations
# + per-package micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

# Record a benchmark run as a trajectory point: parse the -bench output into
# BENCH_<UTC stamp>.json (see cmd/benchjson). Commit the file to track
# performance over time. BENCHTIME=2s for steadier numbers; default is the
# go test default.
BENCHTIME ?= 1s
bench-json:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) ./... \
		| $(GO) run ./cmd/benchjson -o BENCH_$$(date -u +%Y%m%dT%H%M%SZ).json

# Compare the two newest committed trajectory points (the UTC stamp in the
# file name sorts lexically = chronologically) as a % delta table. A
# trajectory with fewer than two points has nothing to compare yet — that is
# a fresh checkout, not an error.
bench-diff:
	@set -- $$(ls BENCH_*.json 2>/dev/null | sort | tail -2); \
	if [ $$# -lt 2 ]; then echo "bench-diff: need >=2 trajectory files, have $$#"; exit 0; fi; \
	echo "bench-diff: $$1 -> $$2"; \
	$(GO) run ./cmd/benchjson -diff $$1 $$2

# One iteration of every benchmark: catches bit-rotted benchmark code in CI
# without paying for real measurement. The second step is the allocation
# regression gate: the arena keeps a steady-state fleet scenario at ~118
# allocs; ALLOC_BUDGET pins the ceiling with headroom, and benchjson -gate
# fails the build when a hot path regresses past it.
ALLOC_BUDGET ?= 500
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...
	$(GO) test -run '^$$' -bench 'FleetSweep/workers=1$$' -benchmem -benchtime 1x . \
		| $(GO) run ./cmd/benchjson -gate FleetSweep/workers=1 -max-allocs-per-scenario $(ALLOC_BUDGET)

# Regenerate every paper artifact (tables + figures) as ASCII.
experiments:
	$(GO) run ./cmd/experiments -all -chart

ablations:
	$(GO) run ./cmd/experiments -ablations

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/smarthome
	$(GO) run ./examples/healthcare
	$(GO) run ./examples/smartcity
	$(GO) run ./examples/custom

clean:
	$(GO) clean -testcache
