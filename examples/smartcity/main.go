// Smart city: a sensing pole running the earthquake detector (light) next to
// speech-to-text (the paper's heavy-weight A11). The planner offloads the
// detector to the MCU and batches the recognizer — the BCOM configuration of
// §IV-E3 — while both keep producing real outputs: the seismic trigger fires
// in the window containing the synthetic P-wave, and the recognizer
// transcribes the street-side voice commands.
//
//	go run ./examples/smartcity
package main

import (
	"fmt"
	"log"

	"iothub/internal/apps"
	"iothub/internal/apps/earthquake"
	"iothub/internal/apps/speech2text"
	"iothub/internal/core"
	"iothub/internal/hub"
	"iothub/internal/sensor"
)

const windows = 4

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func pole() ([]apps.App, error) {
	// The quake strikes 2.4 s in (window 2).
	quake, err := earthquake.New(3, 2400)
	if err != nil {
		return nil, err
	}
	voice, err := speech2text.New(3,
		sensor.WordGo, sensor.WordStop, sensor.WordYes, sensor.WordNo)
	if err != nil {
		return nil, err
	}
	return []apps.App{quake, voice}, nil
}

func run() error {
	mix, err := pole()
	if err != nil {
		return err
	}
	plan, err := core.PlanBCOM(mix, hub.DefaultParams())
	if err != nil {
		return err
	}
	fmt.Printf("planner: scheme=%v assignments=%v\n", plan.Scheme, plan.Assign)
	cls := plan.Classifications[apps.SpeechToTxt]
	fmt.Printf("speech-to-text stays on the CPU because: %v\n\n", cls.Reasons)

	base, err := runScheme(hub.Baseline, nil)
	if err != nil {
		return err
	}
	res, err := hub.Run(hub.Config{
		Apps: mix, Scheme: plan.Scheme, Assign: plan.Assign, Windows: windows,
	})
	if err != nil {
		return err
	}
	fmt.Printf("energy: baseline %.0f mJ/window, %v %.0f mJ/window (-%.0f%%)\n\n",
		base.TotalJoules()*1000/windows, plan.Scheme, res.TotalJoules()*1000/windows,
		100*(1-res.TotalJoules()/base.TotalJoules()))

	for _, out := range res.Outputs[apps.Earthquake] {
		marker := " "
		if out.Result.Metrics["confirmed"] == 1 {
			marker = "!"
		}
		fmt.Printf("%s seismic window %d: %s\n", marker, out.Window, out.Result.Summary)
	}
	fmt.Println()
	for _, out := range res.Outputs[apps.SpeechToTxt] {
		fmt.Printf("  voice window %d: %s\n", out.Window, out.Result.Summary)
	}
	return nil
}

func runScheme(scheme hub.Scheme, assign map[apps.ID]hub.Mode) (*hub.RunResult, error) {
	mix, err := pole()
	if err != nil {
		return nil, err
	}
	return hub.Run(hub.Config{Apps: mix, Scheme: scheme, Assign: assign, Windows: windows})
}
