// Custom workload walkthrough: the adoption path for a developer deciding
// whether their own IoT app is worth porting to the MCU. Define the app with
// the builder, let the classifier explain the offload gates, compare the
// schemes in simulation, and project battery lifetime — all before touching
// embedded toolchains (the porting cost §III-B3 warns about).
//
//	go run ./examples/custom
package main

import (
	"fmt"
	"log"
	"time"

	"iothub/internal/apps"
	"iothub/internal/apps/custom"
	"iothub/internal/core"
	"iothub/internal/dsp"
	"iothub/internal/hub"
	"iothub/internal/sensor"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// newVibrationMonitor defines the user's app: a machine-health monitor that
// watches a pump's vibration spectrum for a drifting dominant frequency.
func newVibrationMonitor() (apps.App, error) {
	src, err := sensor.DefaultSource(sensor.Accelerometer, 99)
	if err != nil {
		return nil, err
	}
	return custom.NewBuilder("C1", "pump vibration monitor").
		WithSensor(sensor.Accelerometer, src, 0 /* QoS default 1 kHz */, 0).
		WithWindow(time.Second).
		WithCharacterization(12_000, 512, 6.5).
		WithCompute(func(in apps.WindowInput) (apps.Result, error) {
			zs := make([]float64, 0, 512)
			for _, raw := range in.Samples[sensor.Accelerometer] {
				v, err := sensor.DecodeVec3(raw)
				if err != nil {
					return apps.Result{}, err
				}
				zs = append(zs, float64(v.Z))
				if len(zs) == 512 {
					break
				}
			}
			spectrum, err := dsp.PowerSpectrum(dsp.Detrend(zs))
			if err != nil {
				return apps.Result{}, err
			}
			bin := dsp.DominantBin(spectrum)
			hz := float64(bin) * 1000 / 512
			return apps.Result{
				Summary: fmt.Sprintf("dominant vibration %.1f Hz", hz),
				Metrics: map[string]float64{"dominantHz": hz},
			}, nil
		}).
		Build()
}

func run() error {
	app, err := newVibrationMonitor()
	if err != nil {
		return err
	}
	params := hub.DefaultParams()

	// 1. Can it go to the MCU at all?
	cls, err := core.Classify(app.Spec(), params)
	if err != nil {
		return err
	}
	fmt.Printf("offloadable: %v (footprint %d B, MCU busy %v per window)\n\n",
		cls.Offloadable, cls.MemoryNeedBytes, cls.MCUBusyPerWindow)

	// 2. What does each scheme cost in simulation?
	var baseline float64
	for _, scheme := range []hub.Scheme{hub.Baseline, hub.Batching, hub.COM} {
		fresh, err := newVibrationMonitor()
		if err != nil {
			return err
		}
		res, err := hub.Run(hub.Config{Apps: []apps.App{fresh}, Scheme: scheme, Windows: 3})
		if err != nil {
			return err
		}
		perWin := res.TotalJoules() / 3
		if scheme == hub.Baseline {
			baseline = perWin
		}
		fmt.Printf("%-9v %7.0f mJ/window (%3.0f%%)   %s\n",
			scheme, perWin*1000, 100*perWin/baseline,
			res.Outputs["C1"][0].Result.Summary)
	}

	// 3. What does that buy in the field?
	life, err := core.Lifetime(app.Spec(), params, core.TypicalPowerBank())
	if err != nil {
		return err
	}
	fmt.Printf("\n10 Ah power bank: baseline %v -> batching %v -> COM %v\n",
		life.Baseline.Round(time.Hour), life.Batching.Round(time.Hour), life.COM.Round(time.Hour))
	return nil
}
