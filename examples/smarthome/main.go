// Smart home: a hub running the building's CoAP server, the AT&T M2X cloud
// reporter, and the Blynk dashboard concurrently. Compares the prior art
// (BEAM sensor sharing) against this paper's approach (the planner decides,
// then Batching/COM executes), printing the upstream documents each app
// actually produced.
//
//	go run ./examples/smarthome
package main

import (
	"fmt"
	"log"

	"iothub/internal/apps"
	"iothub/internal/apps/catalog"
	"iothub/internal/core"
	"iothub/internal/hub"
)

const windows = 3

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func newMix() ([]apps.App, error) {
	var mix []apps.App
	for _, id := range []apps.ID{apps.CoAPServer, apps.M2X, apps.Blynk} {
		a, err := catalog.New(id, 7)
		if err != nil {
			return nil, err
		}
		mix = append(mix, a)
	}
	return mix, nil
}

func measure(scheme hub.Scheme, assign map[apps.ID]hub.Mode) (*hub.RunResult, error) {
	mix, err := newMix()
	if err != nil {
		return nil, err
	}
	return hub.Run(hub.Config{Apps: mix, Scheme: scheme, Assign: assign, Windows: windows})
}

func run() error {
	base, err := measure(hub.Baseline, nil)
	if err != nil {
		return err
	}
	beam, err := measure(hub.BEAM, nil)
	if err != nil {
		return err
	}

	// The paper's approach: classify, then offload what fits.
	mix, err := newMix()
	if err != nil {
		return err
	}
	plan, err := core.PlanBCOM(mix, hub.DefaultParams())
	if err != nil {
		return err
	}
	fmt.Println("planner decisions:")
	for id, cls := range plan.Classifications {
		fmt.Printf("  %-4s offloadable=%-5v mcuBusy=%v mem=%dB\n",
			id, cls.Offloadable, cls.MCUBusyPerWindow, cls.MemoryNeedBytes)
	}
	planned, err := hub.Run(hub.Config{
		Apps: mix, Scheme: plan.Scheme, Assign: assignFor(plan), Windows: windows,
	})
	if err != nil {
		return err
	}

	fmt.Printf("\nenergy per window:\n")
	fmt.Printf("  Baseline        %7.0f mJ\n", base.TotalJoules()*1000/windows)
	fmt.Printf("  BEAM (prior)    %7.0f mJ  (-%.0f%%)\n",
		beam.TotalJoules()*1000/windows, 100*(1-beam.TotalJoules()/base.TotalJoules()))
	fmt.Printf("  %-8v        %7.0f mJ  (-%.0f%%)\n\n",
		plan.Scheme, planned.TotalJoules()*1000/windows,
		100*(1-planned.TotalJoules()/base.TotalJoules()))

	// What the home actually reported upstream in the last window.
	for _, id := range []apps.ID{apps.CoAPServer, apps.M2X, apps.Blynk} {
		outs := planned.Outputs[id]
		last := outs[len(outs)-1]
		fmt.Printf("%s: %s\n", id, last.Result.Summary)
	}
	return nil
}

// assignFor adapts a plan to hub.Config.Assign, which must be nil unless the
// scheme is BCOM.
func assignFor(plan *core.Plan) map[apps.ID]hub.Mode {
	if plan.Scheme == hub.BCOM {
		return plan.Assign
	}
	return nil
}
