// Quickstart: run the paper's flagship workload — the step counter — under
// Baseline, Batching, and COM, and print where the energy goes.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"iothub/internal/apps"
	"iothub/internal/apps/stepcounter"
	"iothub/internal/energy"
	"iothub/internal/hub"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const windows = 3

	var baselineJoules float64
	for _, scheme := range []hub.Scheme{hub.Baseline, hub.Batching, hub.COM} {
		// A fresh app per run keeps the synthetic pedestrian identical.
		app, err := stepcounter.New(42)
		if err != nil {
			return err
		}
		res, err := hub.Run(hub.Config{
			Apps:    []apps.App{app},
			Scheme:  scheme,
			Windows: windows,
		})
		if err != nil {
			return err
		}
		if scheme == hub.Baseline {
			baselineJoules = res.TotalJoules()
		}
		fmt.Printf("=== %v ===\n", scheme)
		fmt.Printf("  energy: %.0f mJ/window (%.0f%% of baseline)\n",
			res.TotalJoules()*1000/windows, 100*res.TotalJoules()/baselineJoules)
		fmt.Printf("  transfer share: %.0f%%   interrupts/window: %d   CPU wakes: %d\n",
			100*res.Energy.Fraction(energy.DataTransfer),
			res.Interrupts/windows, res.CPUWakes)
		for _, out := range res.Outputs[apps.StepCounter] {
			fmt.Printf("  window %d: %s\n", out.Window, out.Result.Summary)
		}
		fmt.Println()
	}
	return nil
}
