// Health care: a wearable hub running the step counter and the heartbeat
// irregularity detector on a synthetic patient with a known arrhythmia.
// Both apps are offloaded to the MCU (COM) — the configuration the paper
// shows saves ~85% — and the example verifies the clinical outputs are
// identical to the baseline's, because where code runs must not change what
// it computes.
//
//	go run ./examples/healthcare
package main

import (
	"fmt"
	"log"

	"iothub/internal/apps"
	"iothub/internal/apps/heartbeat"
	"iothub/internal/apps/stepcounter"
	"iothub/internal/hub"
)

const windows = 4

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func patient() ([]apps.App, error) {
	steps, err := stepcounter.New(11)
	if err != nil {
		return nil, err
	}
	// 200 BPM effort with a stretched RR interval at beat 4, placed so the
	// whole anomalous interval falls inside window 1 (the per-window
	// detector cannot see intervals spanning a window boundary).
	ecg, err := heartbeat.New(11, 200, 4)
	if err != nil {
		return nil, err
	}
	return []apps.App{steps, ecg}, nil
}

func run() error {
	var reference *hub.RunResult
	for _, scheme := range []hub.Scheme{hub.Baseline, hub.COM} {
		mix, err := patient()
		if err != nil {
			return err
		}
		res, err := hub.Run(hub.Config{Apps: mix, Scheme: scheme, Windows: windows})
		if err != nil {
			return err
		}
		fmt.Printf("=== %v: %.0f mJ/window ===\n", scheme, res.TotalJoules()*1000/windows)
		totalSteps, totalBeats, irregular := 0, 0, 0
		for _, out := range res.Outputs[apps.StepCounter] {
			totalSteps += int(out.Result.Metrics["steps"])
		}
		for _, out := range res.Outputs[apps.Heartbeat] {
			totalBeats += int(out.Result.Metrics["beats"])
			irregular += int(out.Result.Metrics["irregular"])
		}
		fmt.Printf("  patient report: %d steps, %d beats, %d irregular intervals\n",
			totalSteps, totalBeats, irregular)
		if irregular < 1 {
			return fmt.Errorf("%v missed the known arrhythmia", scheme)
		}

		if scheme == hub.Baseline {
			reference = res
			continue
		}
		// Clinical outputs must match the baseline exactly.
		for _, id := range []apps.ID{apps.StepCounter, apps.Heartbeat} {
			for w := range res.Outputs[id] {
				got := res.Outputs[id][w].Result.Summary
				want := reference.Outputs[id][w].Result.Summary
				if got != want {
					return fmt.Errorf("%s window %d differs: %q vs %q", id, w, got, want)
				}
			}
		}
		saving := 1 - res.TotalJoules()/reference.TotalJoules()
		fmt.Printf("  outputs identical to baseline; energy saved: %.0f%%\n", saving*100)
	}
	return nil
}
