module iothub

go 1.24
