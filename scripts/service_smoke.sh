#!/bin/sh
# service-smoke: the fault-tolerance acceptance check for service mode.
#
# Builds iotfleet with the race detector, runs the 500-scenario smoke spec
# once in-process (workers=1) as the oracle, then again as a coordinator
# plus two worker processes — and kill -9's one worker mid-sweep. The
# coordinator must reassign the dead worker's shard and the final merged
# aggregate JSON must equal the oracle byte for byte.
set -eu

SPEC=internal/fleet/testdata/service_smoke.json
TMP=$(mktemp -d "${TMPDIR:-/tmp}/service-smoke.XXXXXX")
SERVE_PID=""
DOOMED_PID=""
SURVIVOR_PID=""
cleanup() {
	for pid in $SERVE_PID $DOOMED_PID $SURVIVOR_PID; do
		kill "$pid" 2>/dev/null || true
	done
	rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "service-smoke: building iotfleet -race"
go build -race -o "$TMP/iotfleet" ./cmd/iotfleet

echo "service-smoke: oracle run (workers=1)"
"$TMP/iotfleet" -spec "$SPEC" -workers 1 -agg-out "$TMP/oracle.json" >/dev/null

echo "service-smoke: starting coordinator + 2 workers"
"$TMP/iotfleet" serve -spec "$SPEC" -addr 127.0.0.1:0 -addr-file "$TMP/addr.txt" \
	-journal "$TMP/journal.jsonl" -agg-out "$TMP/service.json" \
	-shard-size 8 -lease-ttl 1s >"$TMP/serve.out" 2>"$TMP/serve.err" &
SERVE_PID=$!
"$TMP/iotfleet" work -addr-file "$TMP/addr.txt" -id doomed >/dev/null 2>&1 &
DOOMED_PID=$!
"$TMP/iotfleet" work -addr-file "$TMP/addr.txt" -id survivor >/dev/null 2>&1 &
SURVIVOR_PID=$!

sleep 2
kill -9 "$DOOMED_PID" 2>/dev/null || true
DOOMED_PID=""
echo "service-smoke: killed worker 'doomed' mid-sweep"

if ! wait "$SERVE_PID"; then
	echo "service-smoke: FAIL — coordinator exited nonzero" >&2
	cat "$TMP/serve.err" >&2
	exit 1
fi
SERVE_PID=""
wait "$SURVIVOR_PID" 2>/dev/null || true
SURVIVOR_PID=""

grep -E 'expired|reassigning' "$TMP/serve.err" | head -3 || true
if ! cmp "$TMP/oracle.json" "$TMP/service.json"; then
	echo "service-smoke: FAIL — merged aggregates diverge from the workers=1 oracle" >&2
	exit 1
fi
cat "$TMP/serve.out"
echo "service-smoke: merged aggregates byte-identical after losing a worker"
