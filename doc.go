// Package iothub reproduces "Understanding Energy Efficiency in IoT App
// Executions" (ICDCS 2019) as a simulation library: a discrete-event model
// of a Raspberry Pi + ESP8266 IoT hub, the paper's eleven workloads
// implemented as real computations over synthetic sensors, the Batching /
// COM / BCOM / BEAM execution schemes, and a harness that regenerates every
// table and figure of the paper's evaluation.
//
// Start with DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured comparison. The entry points are:
//
//   - internal/hub: run workloads under an execution scheme
//   - internal/core: the light/heavy classifier and BCOM planner
//   - internal/experiments: one constructor per paper table/figure
//   - cmd/iotsim, cmd/experiments, cmd/sensorgen: CLI tools
//   - examples/: quickstart, smarthome, healthcare, smartcity, custom
package iothub
