// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation. Each benchmark regenerates its artifact end to end
// (full discrete-event simulation including the real app computations), so
// ns/op is the cost of reproducing that figure and the reported metrics are
// attached with b.ReportMetric.
//
//	go test -bench=. -benchmem
package iothub_test

import (
	"strings"
	"testing"

	"iothub/internal/experiments"
)

// benchExperiment runs one experiment per iteration and reports selected
// metric values alongside the timing. Metric units must not contain
// whitespace, so value keys with spaces are reported with underscores.
func benchExperiment(b *testing.B, run func() (*experiments.Result, error), metrics ...string) {
	b.Helper()
	var last *experiments.Result
	for i := 0; i < b.N; i++ {
		res, err := run()
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for _, m := range metrics {
		if v, ok := last.Values[m]; ok {
			b.ReportMetric(v, strings.ReplaceAll(m, " ", "_"))
		}
	}
}

func BenchmarkTable01Sensors(b *testing.B) {
	benchExperiment(b, experiments.Table1, "sensors")
}

func BenchmarkTable02Workloads(b *testing.B) {
	benchExperiment(b, experiments.Table2, "irq:A4", "bytes:A4")
}

func BenchmarkFig01IdleVsBaseline(b *testing.B) {
	benchExperiment(b, experiments.Fig1, "ratio")
}

func BenchmarkFig03BreakdownSCM2X(b *testing.B) {
	benchExperiment(b, experiments.Fig3, "beamSaving", "xferFracSC")
}

func BenchmarkFig04TransferSplit(b *testing.B) {
	benchExperiment(b, experiments.Fig4, "cpuShare", "mcuShare", "wireShare")
}

func BenchmarkFig05Timeline(b *testing.B) {
	benchExperiment(b, experiments.Fig5, "batchingSleepFraction")
}

func BenchmarkFig06Characterization(b *testing.B) {
	benchExperiment(b, experiments.Fig6, "avgMemKB", "avgMIPS")
}

func BenchmarkFig07SCBatching(b *testing.B) {
	benchExperiment(b, experiments.Fig7, "saving")
}

func BenchmarkFig08SCTiming(b *testing.B) {
	benchExperiment(b, experiments.Fig8, "baselineMs", "comMs")
}

func BenchmarkFig09SCThreeSchemes(b *testing.B) {
	benchExperiment(b, experiments.Fig9, "batchingFrac", "comFrac")
}

func BenchmarkFig10SingleApp(b *testing.B) {
	benchExperiment(b, experiments.Fig10, "avgBatchingSaving", "avgCOMSaving")
}

func BenchmarkFig11MultiApp(b *testing.B) {
	benchExperiment(b, experiments.Fig11, "avgBEAMSaving", "avgOffloadSaving")
}

func BenchmarkFig12HeavyWeight(b *testing.B) {
	benchExperiment(b, experiments.Fig12, "A11:Batching", "A11+A6:BCOM")
}

func BenchmarkFig13Speedup(b *testing.B) {
	benchExperiment(b, experiments.Fig13, "avgSpeedup", "speedup:A3", "speedup:A8")
}

// Ablation benches (DESIGN.md §6): the parameter sweeps over the design
// choices the paper's results hinge on.

func BenchmarkAblBatchRAM(b *testing.B) {
	benchExperiment(b, experiments.AblBatchRAM, "saving:1KB", "saving:32KB")
}

func BenchmarkAblLinkBandwidth(b *testing.B) {
	benchExperiment(b, experiments.AblLinkBandwidth, "batching:29KBps", "batching:936KBps")
}

func BenchmarkAblGovernor(b *testing.B) {
	benchExperiment(b, experiments.AblGovernor, "withSleep", "withoutSleep")
}

func BenchmarkAblMCUSlowdown(b *testing.B) {
	benchExperiment(b, experiments.AblMCUSlowdown, "avg:19x", "slower:19x")
}

func BenchmarkAblDMA(b *testing.B) {
	benchExperiment(b, experiments.AblDMA, "A2 baseline")
}
