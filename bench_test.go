// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation. Each benchmark regenerates its artifact end to end
// (full discrete-event simulation including the real app computations), so
// ns/op is the cost of reproducing that figure and the reported metrics are
// attached with b.ReportMetric.
//
//	go test -bench=. -benchmem
package iothub_test

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"

	"iothub/internal/apps"
	"iothub/internal/experiments"
	"iothub/internal/fleet"
	"iothub/internal/fleetd"
)

// benchExperiment runs one experiment per iteration and reports selected
// metric values alongside the timing. Metric units must not contain
// whitespace, so value keys with spaces are reported with underscores.
func benchExperiment(b *testing.B, run func() (*experiments.Result, error), metrics ...string) {
	b.Helper()
	var last *experiments.Result
	for i := 0; i < b.N; i++ {
		res, err := run()
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for _, m := range metrics {
		if v, ok := last.Values[m]; ok {
			b.ReportMetric(v, strings.ReplaceAll(m, " ", "_"))
		}
	}
}

func BenchmarkTable01Sensors(b *testing.B) {
	benchExperiment(b, experiments.Table1, "sensors")
}

func BenchmarkTable02Workloads(b *testing.B) {
	benchExperiment(b, experiments.Table2, "irq:A4", "bytes:A4")
}

func BenchmarkFig01IdleVsBaseline(b *testing.B) {
	benchExperiment(b, experiments.Fig1, "ratio")
}

func BenchmarkFig03BreakdownSCM2X(b *testing.B) {
	benchExperiment(b, experiments.Fig3, "beamSaving", "xferFracSC")
}

func BenchmarkFig04TransferSplit(b *testing.B) {
	benchExperiment(b, experiments.Fig4, "cpuShare", "mcuShare", "wireShare")
}

func BenchmarkFig05Timeline(b *testing.B) {
	benchExperiment(b, experiments.Fig5, "batchingSleepFraction")
}

func BenchmarkFig06Characterization(b *testing.B) {
	benchExperiment(b, experiments.Fig6, "avgMemKB", "avgMIPS")
}

func BenchmarkFig07SCBatching(b *testing.B) {
	benchExperiment(b, experiments.Fig7, "saving")
}

func BenchmarkFig08SCTiming(b *testing.B) {
	benchExperiment(b, experiments.Fig8, "baselineMs", "comMs")
}

func BenchmarkFig09SCThreeSchemes(b *testing.B) {
	benchExperiment(b, experiments.Fig9, "batchingFrac", "comFrac")
}

func BenchmarkFig10SingleApp(b *testing.B) {
	benchExperiment(b, experiments.Fig10, "avgBatchingSaving", "avgCOMSaving")
}

func BenchmarkFig11MultiApp(b *testing.B) {
	benchExperiment(b, experiments.Fig11, "avgBEAMSaving", "avgOffloadSaving")
}

func BenchmarkFig12HeavyWeight(b *testing.B) {
	benchExperiment(b, experiments.Fig12, "A11:Batching", "A11+A6:BCOM")
}

func BenchmarkFig13Speedup(b *testing.B) {
	benchExperiment(b, experiments.Fig13, "avgSpeedup", "speedup:A3", "speedup:A8")
}

// Ablation benches (DESIGN.md §6): the parameter sweeps over the design
// choices the paper's results hinge on.

func BenchmarkAblBatchRAM(b *testing.B) {
	benchExperiment(b, experiments.AblBatchRAM, "saving:1KB", "saving:32KB")
}

func BenchmarkAblLinkBandwidth(b *testing.B) {
	benchExperiment(b, experiments.AblLinkBandwidth, "batching:29KBps", "batching:936KBps")
}

func BenchmarkAblGovernor(b *testing.B) {
	benchExperiment(b, experiments.AblGovernor, "withSleep", "withoutSleep")
}

func BenchmarkAblMCUSlowdown(b *testing.B) {
	benchExperiment(b, experiments.AblMCUSlowdown, "avg:19x", "slower:19x")
}

func BenchmarkAblDMA(b *testing.B) {
	benchExperiment(b, experiments.AblDMA, "A2 baseline")
}

// BenchmarkFleetSweep runs a 64-scenario grid through the fleet engine at
// worker counts 1, 2, 4, and NumCPU. The aggregates are byte-identical at
// every count (asserted by internal/fleet's tests); only wall clock changes,
// so the workers=N/workers=1 ns/op ratios are the engine's scaling curve.
// On a single-core host the curve is flat — the fixed counts keep the
// trajectory comparable across differently-sized runners.
func BenchmarkFleetSweep(b *testing.B) {
	spec := fleet.Spec{
		Seed: 7,
		Grid: &fleet.Grid{
			Apps:           [][]apps.ID{{apps.StepCounter}, {apps.M2X}, {apps.StepCounter, apps.M2X}, {apps.Blynk}},
			Schemes:        []string{"baseline", "batching"},
			Windows:        []int{1, 2},
			QoS:            []float64{0.25, 0.5, 1, 2},
			SkipAppCompute: true,
		},
	}
	scens, err := spec.Expand()
	if err != nil {
		b.Fatal(err)
	}
	if len(scens) != 64 {
		b.Fatalf("grid expands to %d scenarios, want 64", len(scens))
	}
	counts := []int{1, 2, 4}
	if n := runtime.NumCPU(); n != 1 && n != 2 && n != 4 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var last *fleet.Result
			for i := 0; i < b.N; i++ {
				res, err := fleet.Run(spec, fleet.Options{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if res.Agg.Errors > 0 {
					b.Fatalf("failed scenarios: %+v", res.Failed)
				}
				last = res
			}
			b.ReportMetric(float64(last.Completed), "scenarios")
		})
	}
}

// BenchmarkServiceSweep runs the same 64-scenario grid through the fleetd
// coordinator with in-process loopback workers. The delta against
// BenchmarkFleetSweep at the same worker count is the price of the
// fault-tolerance machinery: sharding, leases, heartbeats, submission
// fingerprints, and index-ordered folding.
func BenchmarkServiceSweep(b *testing.B) {
	spec := fleet.Spec{
		Seed: 7,
		Grid: &fleet.Grid{
			Apps:           [][]apps.ID{{apps.StepCounter}, {apps.M2X}, {apps.StepCounter, apps.M2X}, {apps.Blynk}},
			Schemes:        []string{"baseline", "batching"},
			Windows:        []int{1, 2},
			QoS:            []float64{0.25, 0.5, 1, 2},
			SkipAppCompute: true,
		},
	}
	for _, workers := range []int{1, 2} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c, err := fleetd.New(fleetd.Config{Spec: spec, ShardSize: 8})
				if err != nil {
					b.Fatal(err)
				}
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						wk, err := fleetd.NewWorker(fleetd.WorkerConfig{
							ID:        fmt.Sprintf("w%d", w),
							Transport: fleetd.Loopback{H: c.Handle},
						})
						if err == nil {
							wk.Run()
						}
					}(w)
				}
				wg.Wait()
				res, err := c.Wait()
				if err != nil {
					b.Fatal(err)
				}
				if res.Completed != 64 || res.Agg.Errors > 0 {
					b.Fatalf("folded %d scenarios, %d errors", res.Completed, res.Agg.Errors)
				}
				c.Close()
			}
		})
	}
}
