package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"iothub/internal/scheme"
)

func TestRunBaseline(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-apps", "A2", "-scheme", "baseline", "-windows", "2"}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	for _, want := range []string{"Baseline: energy per window", "DataTransfer", "interrupts=2000", "steps"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunBCOMUsesPlanner(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-apps", "A11,A6", "-scheme", "bcom", "-windows", "1", "-outputs=false"}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	if !strings.Contains(s, "planner:") {
		t.Errorf("planner line missing:\n%s", s)
	}
	if !strings.Contains(s, "A11:Batched") || !strings.Contains(s, "A6:Offloaded") {
		t.Errorf("unexpected partition:\n%s", s)
	}
}

func TestRunTimeline(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-apps", "A2", "-scheme", "batching", "-windows", "1", "-timeline", "-outputs=false"}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "CPU power timeline") {
		t.Error("timeline missing")
	}
	if !strings.Contains(out.String(), "#") {
		t.Error("timeline has no bars")
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scheme", "warp"}, &out); err == nil {
		t.Error("unknown scheme accepted")
	}
	// The rejection must list every registered scheme so the user can
	// correct the flag without consulting the source.
	if err := run([]string{"-scheme", "warp"}, &out); err != nil {
		for _, name := range scheme.Names() {
			if !strings.Contains(err.Error(), name) {
				t.Errorf("unknown-scheme error %q does not list %q", err, name)
			}
		}
	}
	if err := run([]string{"-apps", "A99"}, &out); err == nil {
		t.Error("unknown app accepted")
	}
	if err := run([]string{"-apps", "A11", "-scheme", "com"}, &out); err == nil {
		t.Error("offloading the heavy app accepted")
	}
	if err := run([]string{"-bogusflag"}, &out); err == nil {
		t.Error("bogus flag accepted")
	}
}

func TestRunFaultInjectionFlag(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-apps", "A2", "-windows", "1", "-outputs=false", "-fail-every", "10"}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "retries") {
		t.Errorf("faults line missing:\n%s", out.String())
	}
}

func TestRunChaosFlag(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-apps", "A2", "-windows", "2", "-outputs=false", "-check",
		"-chaos", "seed=7; link-corrupt:every=20; mcu-crash:at=700ms,for=80ms"}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	for _, want := range []string{"invariants: ok", "mcu crashes=1", "retx="} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	if err := run([]string{"-apps", "A2", "-chaos", "warp-core:breach"}, &out); err == nil {
		t.Error("bogus chaos schedule accepted")
	}
}

func TestRunCheckFlagCleanRun(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-apps", "A2", "-windows", "1", "-outputs=false", "-check"}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "invariants: ok") {
		t.Errorf("invariant confirmation missing:\n%s", out.String())
	}
}

func TestRunBatteryProjection(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-apps", "A2", "-windows", "1", "-outputs=false", "-battery-mah", "10000"}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "battery 10000 mAh") {
		t.Errorf("battery line missing:\n%s", out.String())
	}
	// Multi-app projection is rejected.
	if err := run([]string{"-apps", "A2,A7", "-battery-mah", "100"}, &out); err == nil {
		t.Error("multi-app battery projection accepted")
	}
}

func TestRunJSONFlag(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-apps", "A2", "-scheme", "batching", "-windows", "1", "-json"}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var decoded struct {
		Scheme       string
		Energy       map[string]float64
		BatchFlushes int
	}
	if err := json.Unmarshal(out.Bytes(), &decoded); err != nil {
		t.Fatalf("-json output is not JSON: %v\n%s", err, out.String())
	}
	if decoded.Scheme != "Batching" || decoded.Energy["DataTransfer"] <= 0 || decoded.BatchFlushes < 1 {
		t.Errorf("decoded = %+v", decoded)
	}
	if strings.Contains(out.String(), "energy per window") {
		t.Error("-json still printed the human table")
	}
}
