// Command iotsim runs one IoT hub scenario and prints its energy and timing
// breakdown, the interrupt/transfer statistics, and the apps' real outputs.
//
// Usage:
//
//	iotsim -apps A2 -scheme baseline -windows 3
//	iotsim -apps A2,A7 -scheme beam
//	iotsim -apps A11,A6 -scheme bcom          # partitioned by the planner
//	iotsim -apps A2 -scheme batching -timeline
//	iotsim -apps A6 -scheme com -check -chaos "seed=7; mcu-crash:at=1100ms,for=150ms"
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"iothub/internal/apps"
	"iothub/internal/apps/catalog"
	"iothub/internal/core"
	"iothub/internal/energy"
	"iothub/internal/faults"
	"iothub/internal/hub"
	"iothub/internal/obs"
	"iothub/internal/power"
	"iothub/internal/profiling"
	"iothub/internal/report"
	"iothub/internal/scheme"
	"iothub/internal/sensor"
	"iothub/internal/sim"
	"iothub/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "iotsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) (retErr error) {
	fs := flag.NewFlagSet("iotsim", flag.ContinueOnError)
	appsFlag := fs.String("apps", "A2", "comma-separated Table II workload IDs (A1..A11)")
	schemeFlag := fs.String("scheme", "baseline", "execution scheme: "+strings.Join(scheme.Names(), ", "))
	windows := fs.Int("windows", 3, "number of QoS windows to simulate")
	seed := fs.Int64("seed", 1, "synthetic signal seed")
	timeline := fs.Bool("timeline", false, "print the CPU power timeline (Fig. 5 style)")
	showOutputs := fs.Bool("outputs", true, "print per-window app outputs")
	failEvery := fs.Int("fail-every", 0, "inject a sensor read failure every Nth attempt (0 = none)")
	chaos := fs.String("chaos", "", `fault schedule, e.g. "seed=7; link-corrupt:prob=0.05; mcu-crash:at=700ms,for=80ms"`)
	check := fs.Bool("check", false, "run the post-simulation invariant checker verbosely and print the fault/resilience summary")
	jsonOut := fs.Bool("json", false, "emit the full run result as machine-readable JSON instead of tables")
	traceOut := fs.String("trace", "", "write a Perfetto-loadable Chrome trace-event JSON of the run's routine spans to this file")
	counters := fs.Bool("counters", false, "print the hardware counter registry after the run (oprofile-style)")
	flight := fs.Bool("flight", false, "print the flight recorder — the last hub events as JSON lines — after the run")
	meterRate := fs.Float64("meter-rate", 0, "arm an in-situ energy meter sampling at this rate in Hz (0 = free external meter)")
	meterPreset := fs.String("meter-preset", "insitu", "in-situ meter cost preset: external, insitu, eco")
	battery := fs.Float64("battery-mah", 0, "battery capacity in mAh at 5 V: alone it projects lifetime (single app only); with -harvest it powers the run live")
	harvest := fs.String("harvest", "", "run on the battery live with this harvest profile: a preset ("+
		strings.Join(power.PresetNames(), ", ")+"), a raw trace like \"const:w=0.1\", or \"none\" for battery-only")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the simulation to this file")
	memProfile := fs.String("memprofile", "", "write an allocation profile of the simulation to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProfiles, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil && retErr == nil {
			retErr = perr
		}
	}()

	sch, err := hub.ParseScheme(*schemeFlag)
	if err != nil {
		return fmt.Errorf("%w (valid schemes: %s)", err, strings.Join(scheme.Names(), ", "))
	}
	def, err := scheme.Lookup(sch)
	if err != nil {
		return err
	}
	var list []apps.App
	for _, raw := range strings.Split(*appsFlag, ",") {
		id := apps.ID(strings.TrimSpace(strings.ToUpper(raw)))
		a, err := catalog.New(id, *seed)
		if err != nil {
			return err
		}
		list = append(list, a)
	}

	cfg := hub.Config{Apps: list, Scheme: sch, Windows: *windows, TracePower: *timeline}
	var rec *obs.Recorder
	if *traceOut != "" || *counters || *flight {
		rec = obs.NewRecorder()
		if *traceOut != "" {
			rec.EnableTracing()
		}
		p := hub.DefaultParams()
		p.Obs = rec
		cfg.Params = &p
	}
	// The preset name is validated even at rate 0 (when the meter stays
	// disarmed), so a typo fails loudly instead of silently measuring nothing.
	model, err := obs.Preset(*meterPreset, *meterRate)
	if err != nil {
		return err
	}
	if *meterRate > 0 {
		cfg.Meter = &model
	}
	// Same contract for -harvest: resolve the profile up front so an unknown
	// preset errors (listing the valid names) even without -battery-mah.
	harvestTrace, err := resolveHarvest(*harvest)
	if err != nil {
		return err
	}
	if *harvest != "" {
		if *battery <= 0 {
			return fmt.Errorf("-harvest needs -battery-mah > 0 to power the run")
		}
		cfg.Power = &power.Supply{
			Battery: power.Battery{CapacityMAh: *battery, Volts: 5},
			Harvest: harvestTrace,
		}
	}
	if *failEvery > 0 {
		plan := &hub.FaultPlan{ReadFailEvery: map[sensor.ID]int{}, MaxRetries: 1}
		for _, a := range list {
			for _, u := range a.Spec().Sensors {
				plan.ReadFailEvery[u.Sensor] = *failEvery
			}
		}
		cfg.Faults = plan
	}
	if *chaos != "" {
		schedule, err := faults.ParseSchedule(*chaos)
		if err != nil {
			return err
		}
		cfg.FaultSchedule = schedule
	}
	if def.RequiresAssign() {
		plan, err := core.PlanBCOM(list, hub.DefaultParams())
		if err != nil {
			return err
		}
		cfg.Assign = plan.Assign
		fmt.Fprintf(out, "planner: %v\n", plan.Assign)
	}
	res, err := hub.Run(cfg)
	if err != nil {
		if *flight && rec != nil {
			// Post-mortem: the flight ring holds the last hub events
			// leading up to the failure.
			fmt.Fprintln(os.Stderr, "flight recorder (most recent last):")
			_ = obs.WriteFlight(os.Stderr, rec)
		}
		return err
	}

	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			return err
		}
		return exportObs(out, rec, *traceOut, *counters, *flight)
	}
	printSummary(out, res, *windows)
	if res.ReadRetries > 0 || res.DroppedSamples > 0 {
		fmt.Fprintf(out, "faults: %d retries, %d dropped samples\n\n", res.ReadRetries, res.DroppedSamples)
	}
	if res.MeterSamples > 0 || res.MeterDroppedSamples > 0 {
		fmt.Fprintf(out, "meter: %d samples (%d dropped), %d MCU cycles, %d flushes, %d B persisted\n\n",
			res.MeterSamples, res.MeterDroppedSamples, res.MeterCycles, res.MeterFlushes, res.MeterBytes)
	}
	if res.BatteryCapacityJ > 0 {
		fmt.Fprintf(out, "battery: %.2f J usable, final SoC %.1f%% (low water %.1f%%), harvested %.2f J, "+
			"survival %v, %d brownouts (%v dark)\n\n",
			res.BatteryCapacityJ, res.BatterySoCJ/res.BatteryCapacityJ*100,
			res.BatteryMinSoCJ/res.BatteryCapacityJ*100, res.BatteryHarvestJ,
			res.BatterySurvival.Round(time.Millisecond), res.Brownouts, res.BrownoutTime.Round(time.Millisecond))
	}
	if *check {
		printCheck(out, res)
	}
	if *battery > 0 && cfg.Power == nil {
		if len(list) != 1 {
			return fmt.Errorf("-battery-mah projects single-app workloads only")
		}
		life, err := core.Lifetime(list[0].Spec(), hub.DefaultParams(), core.Battery{CapacityMAh: *battery, Volts: 5})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "battery %.0f mAh @ 5V: baseline %v, batching %v, COM %v\n\n",
			*battery, life.Baseline.Round(time.Minute), life.Batching.Round(time.Minute), life.COM.Round(time.Minute))
	}
	if *showOutputs {
		printOutputs(out, res)
	}
	if *timeline {
		printTimeline(out, res, *windows)
	}
	return exportObs(out, rec, *traceOut, *counters, *flight)
}

// resolveHarvest turns the -harvest flag into ParseTrace text: a preset name
// resolves through power.Preset (unknown names error listing the valid ones),
// raw trace text (anything containing ':') is validated by the parser, and
// ""/"none" mean battery-only operation.
func resolveHarvest(flag string) (string, error) {
	switch {
	case flag == "" || flag == "none":
		return "", nil
	case strings.Contains(flag, ":"):
		if _, err := power.ParseTrace(flag); err != nil {
			return "", err
		}
		return flag, nil
	default:
		return power.Preset(flag)
	}
}

// exportObs dumps whatever the run's recorder captured: the Chrome
// trace-event file, the counter registry, and the flight ring. A nil
// recorder (no obs flag given) is a no-op, keeping the default output
// byte-identical to an uninstrumented build.
func exportObs(out io.Writer, rec *obs.Recorder, tracePath string, counters, flight bool) error {
	if rec == nil {
		return nil
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := obs.WriteChromeTrace(f, rec); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "trace: %d spans (%d dropped) -> %s\n\n", len(rec.Spans()), rec.SpansDropped(), tracePath)
	}
	if counters {
		fmt.Fprintln(out, "counters:")
		if err := obs.WriteCounters(out, rec); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if flight {
		fmt.Fprintln(out, "flight recorder (most recent last):")
		if err := obs.WriteFlight(out, rec); err != nil {
			return err
		}
	}
	return nil
}

func printSummary(out io.Writer, res *hub.RunResult, windows int) {
	t := &report.Table{
		Title:  fmt.Sprintf("%v: energy per window", res.Scheme),
		Header: []string{"routine", "energy", "share"},
	}
	for _, r := range energy.Routines {
		if r == energy.Idle {
			continue
		}
		t.AddRow(r.String(),
			report.Millijoules(res.Energy[r]/float64(windows)),
			report.Percent(res.Energy.Fraction(r)))
	}
	t.AddRow("total", report.Millijoules(res.Energy.Attributed()/float64(windows)), "100.0%")
	t.Notes = append(t.Notes, fmt.Sprintf(
		"interrupts=%d bytes=%d flushes=%d wakes=%d qosViolations=%d duration=%v",
		res.Interrupts, res.BytesTransferred, res.BatchFlushes,
		res.CPUWakes, res.QoSViolations, res.Duration.Round(time.Millisecond)))
	fmt.Fprintln(out, t.ASCII())
}

// printCheck re-runs the invariant checker verbosely (hub.Run already
// enforces it — a run that reaches this point passed) and summarizes what the
// fault engine injected and how the resilience layer absorbed it.
func printCheck(out io.Writer, res *hub.RunResult) {
	if err := res.CheckInvariants(); err != nil {
		fmt.Fprintf(out, "invariants: VIOLATED: %v\n\n", err)
		return
	}
	fmt.Fprintf(out, "invariants: ok (energy conserved, time monotonic, %d+%d samples accounted)\n",
		res.ScheduledSamples, res.RecollectedSamples)
	fmt.Fprintf(out, "chaos: link retx=%d corrupt=%d lost=%d aborted=%d | mcu crashes=%d recollected=%d | "+
		"sensor slow=%d stuck=%d | radio deferred=%d dropped=%d (%d B)\n",
		res.LinkRetransmits, res.LinkCorruptFrames, res.LinkLostFrames, res.LinkAbortedTransfers,
		res.MCUCrashes, res.RecollectedSamples, res.SlowReads, res.StuckSamples,
		res.RadioDeferred, res.RadioDroppedBursts, res.RadioDroppedBytes)
	fmt.Fprintf(out, "resilience: downshifts=%d skipped=%d early flushes=%d budget checks=%d misses=%d\n",
		res.RateDownshifts, res.DownshiftSkipped, res.EarlyFlushes,
		res.OffloadBudgetChecks, res.OffloadBudgetMisses)
	for _, d := range res.Degradations {
		fmt.Fprintf(out, "degraded: %s %v -> %v from window %d (%s)\n", d.App, d.From, d.To, d.Window, d.Reason)
	}
	fmt.Fprintln(out)
}

func printOutputs(out io.Writer, res *hub.RunResult) {
	ids := make([]string, 0, len(res.Outputs))
	for id := range res.Outputs {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	for _, id := range ids {
		for _, wr := range res.Outputs[apps.ID(id)] {
			fmt.Fprintf(out, "%-4s window %d @ %-12v %s\n", id, wr.Window, wr.At, wr.Result.Summary)
		}
	}
	fmt.Fprintln(out)
}

func printTimeline(out io.Writer, res *hub.RunResult, windows int) {
	end := sim.Time(time.Duration(windows) * time.Second)
	wave, err := trace.Resample(res.Traces["cpu"], 10*time.Millisecond, end)
	if err != nil {
		fmt.Fprintln(out, "timeline:", err)
		return
	}
	fmt.Fprintf(out, "CPU power timeline (10 ms bins, %d windows):\n", windows)
	fmt.Fprint(out, trace.RenderASCII(wave, 6))
}
