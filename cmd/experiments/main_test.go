package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	for _, want := range []string{"table1", "fig13", "abl-dma"} {
		if !strings.Contains(s, want) {
			t.Errorf("list missing %q", want)
		}
	}
}

func TestSingleExperimentFormats(t *testing.T) {
	for format, marker := range map[string]string{
		"ascii": "Table I: sensor specifications",
		"csv":   "id,name,bus",
		"md":    "| --- |",
	} {
		var out bytes.Buffer
		if err := run([]string{"-id", "table1", "-format", format}, &out); err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		if !strings.Contains(out.String(), marker) {
			t.Errorf("%s output missing %q:\n%s", format, marker, out.String())
		}
	}
}

func TestAblationByID(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-id", "abl-governor"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "sleep disabled") {
		t.Error("ablation output missing")
	}
}

func TestErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Error("no action accepted")
	}
	if err := run([]string{"-all", "-id", "fig1"}, &out); err == nil {
		t.Error("-all with -id accepted")
	}
	if err := run([]string{"-id", "fig99"}, &out); err == nil {
		t.Error("unknown id accepted")
	}
	if err := run([]string{"-id", "table1", "-format", "xml"}, &out); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestOutDirWritesArtifacts(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-id", "table1", "-format", "csv", "-out", dir}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "table1.csv"))
	if err != nil {
		t.Fatalf("artifact not written: %v", err)
	}
	if !strings.Contains(string(data), "Accelerometer") {
		t.Errorf("artifact content wrong:\n%s", data)
	}
}
