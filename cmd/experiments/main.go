// Command experiments regenerates the paper's tables and figures from the
// simulator.
//
// Usage:
//
//	experiments -all                 # every table and figure
//	experiments -id fig10            # one experiment
//	experiments -id fig11 -format csv
//	experiments -all -format md      # markdown (EXPERIMENTS.md style)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"iothub/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	all := fs.Bool("all", false, "run every paper experiment")
	ablations := fs.Bool("ablations", false, "run the ablation studies")
	id := fs.String("id", "", "run one experiment (fig1..fig13, table1, table2, abl-*)")
	format := fs.String("format", "ascii", "output format: ascii, csv, or md")
	chart := fs.Bool("chart", false, "also render bar charts where the figure has one")
	outDir := fs.String("out", "", "also write each artifact to <dir>/<id>.<ext>")
	list := fs.Bool("list", false, "list available experiments")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range append(experiments.All(), experiments.Ablations()...) {
			fmt.Fprintf(out, "%-14s %s\n", e.ID, e.Title)
		}
		return nil
	}

	var selected []experiments.Experiment
	switch {
	case *all && *id != "":
		return fmt.Errorf("-all and -id are mutually exclusive")
	case *all:
		selected = experiments.All()
		if *ablations {
			selected = append(selected, experiments.Ablations()...)
		}
	case *ablations:
		selected = experiments.Ablations()
	case *id != "":
		e, err := experiments.ByID(*id)
		if err != nil {
			return err
		}
		selected = []experiments.Experiment{e}
	default:
		return fmt.Errorf("nothing to do: pass -all, -id <exp>, or -list")
	}

	// Experiments are independent simulations: run them concurrently and
	// print in selection order so output stays deterministic.
	results := make([]*experiments.Result, len(selected))
	errs := make([]error, len(selected))
	var wg sync.WaitGroup
	for i, e := range selected {
		wg.Add(1)
		go func(i int, e experiments.Experiment) {
			defer wg.Done()
			results[i], errs[i] = e.Run()
		}(i, e)
	}
	wg.Wait()
	for i, e := range selected {
		if errs[i] != nil {
			return fmt.Errorf("%s: %w", e.ID, errs[i])
		}
		res := results[i]
		if *outDir != "" {
			if err := writeArtifact(*outDir, res, *format); err != nil {
				return err
			}
		}
		switch *format {
		case "ascii":
			fmt.Fprintln(out, res.Table.ASCII())
			if *chart && res.Chart != nil {
				fmt.Fprintln(out, res.Chart.ASCII())
			}
		case "csv":
			fmt.Fprint(out, res.Table.CSV())
		case "md":
			fmt.Fprintln(out, res.Table.Markdown())
		default:
			return fmt.Errorf("unknown format %q", *format)
		}
	}
	return nil
}

// writeArtifact persists one experiment's rendering under dir.
func writeArtifact(dir string, res *experiments.Result, format string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	ext := map[string]string{"ascii": "txt", "csv": "csv", "md": "md"}[format]
	if ext == "" {
		return fmt.Errorf("unknown format %q", format)
	}
	var content string
	switch format {
	case "ascii":
		content = res.Table.ASCII()
		if res.Chart != nil {
			content += "\n" + res.Chart.ASCII()
		}
	case "csv":
		content = res.Table.CSV()
	case "md":
		content = res.Table.Markdown()
	}
	path := filepath.Join(dir, res.ID+"."+ext)
	return os.WriteFile(path, []byte(content), 0o644)
}
