package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// Service mode end to end through the CLI entrypoints: one serve process,
// two work processes rendezvousing via -addr-file, and the merged aggregate
// JSON byte-identical to the one-shot workers=1 run.
func TestServeAndWorkMatchOneShot(t *testing.T) {
	spec := writeSpec(t)
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	svc := filepath.Join(dir, "svc.json")
	addrFile := filepath.Join(dir, "addr.txt")

	var oneShot strings.Builder
	if err := run([]string{"-spec", spec, "-workers", "1", "-agg-out", base}, &oneShot); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	var serveOut strings.Builder
	var serveErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		serveErr = run([]string{"serve", "-spec", spec, "-addr", "127.0.0.1:0",
			"-addr-file", addrFile, "-agg-out", svc, "-shard-size", "1"}, &serveOut)
	}()
	workErrs := make([]error, 2)
	for i := range workErrs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var sb strings.Builder
			workErrs[i] = run([]string{"work", "-addr-file", addrFile,
				"-id", string(rune('a' + i))}, &sb)
		}(i)
	}
	wg.Wait()
	if serveErr != nil {
		t.Fatalf("serve: %v", serveErr)
	}
	for i, err := range workErrs {
		if err != nil {
			t.Errorf("worker %d: %v", i, err)
		}
	}
	if !strings.Contains(serveOut.String(), "4 scenarios folded") {
		t.Errorf("serve output:\n%s", serveOut.String())
	}
	want, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(svc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("service aggregates diverge from one-shot:\n%s\nvs\n%s", got, want)
	}
}

func TestServiceFlagValidation(t *testing.T) {
	if err := run([]string{"serve"}, os.Stdout); err == nil || !strings.Contains(err.Error(), "-spec") {
		t.Errorf("serve without -spec: err = %v", err)
	}
	if err := run([]string{"work"}, os.Stdout); err == nil || !strings.Contains(err.Error(), "-addr") {
		t.Errorf("work without an address: err = %v", err)
	}
	if err := run([]string{"work", "-addr-file", filepath.Join(t.TempDir(), "never.txt"),
		"-wait", "100ms"}, os.Stdout); err == nil || !strings.Contains(err.Error(), "no coordinator address") {
		t.Errorf("work with absent addr-file: err = %v", err)
	}
}
