package main

// The optimize subcommand: run a scheme-space search and emit its plan, or
// verify a previously emitted plan still replays byte-identically.

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"iothub/internal/optimizer"
)

func runOptimize(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("iotfleet optimize", flag.ContinueOnError)
	specPath := fs.String("spec", "", "search spec file (JSON; see internal/optimizer/testdata/example.json)")
	outPath := fs.String("out", "", "write the emitted plan JSON here (default: stdout only)")
	workers := fs.Int("workers", 0, "evaluation pool size (0 = spec's workers, then GOMAXPROCS)")
	checkReplay := fs.String("check-replay", "", "verify an emitted plan file: re-run its replay spec and compare aggregates byte-for-byte")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *checkReplay != "" {
		return runCheckReplay(*checkReplay, *workers, out)
	}
	if *specPath == "" {
		return fmt.Errorf("optimize: -spec is required (or -check-replay)")
	}
	spec, err := loadSearchSpec(*specPath)
	if err != nil {
		return err
	}
	if *workers != 0 {
		spec.Workers = *workers
	}
	plan, err := optimizer.Run(spec)
	if err != nil {
		return err
	}
	blob, err := json.MarshalIndent(plan, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if *outPath != "" {
		if err := os.WriteFile(*outPath, blob, 0o644); err != nil {
			return err
		}
	}
	fmt.Fprintf(out, "winner: %s  %.6g J/window  latency %.4gs  (objective %.4g)\n",
		plan.Winner.Tag, plan.Winner.EnergyPerWindow, plan.Winner.MeanLatencySec, plan.Winner.Objective)
	for _, b := range plan.Builtins {
		status := "infeasible"
		if b.Feasible {
			status = fmt.Sprintf("%.6g J/window", b.EnergyPerWindow)
		}
		if b.Error != "" {
			status = "error: " + b.Error
		}
		fmt.Fprintf(out, "builtin %-16s %s\n", b.Tag, status)
	}
	fmt.Fprintf(out, "pareto front: %d points over %d candidates (%d sampled out)\n",
		len(plan.Pareto), plan.Candidates, plan.Skipped)
	if !plan.BeatsBuiltins {
		fmt.Fprintln(out, "note: the winner does not beat every paper scheme on energy")
	}
	if *outPath != "" {
		fmt.Fprintf(out, "plan written to %s\n", *outPath)
	}
	return nil
}

func loadSearchSpec(path string) (optimizer.Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return optimizer.Spec{}, err
	}
	defer f.Close()
	var spec optimizer.Spec
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return optimizer.Spec{}, fmt.Errorf("optimize: parse spec %s: %w", path, err)
	}
	return spec, nil
}

func runCheckReplay(path string, workers int, out io.Writer) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var plan optimizer.Plan
	if err := json.Unmarshal(blob, &plan); err != nil {
		return fmt.Errorf("optimize: parse plan %s: %w", path, err)
	}
	if _, err := optimizer.CheckReplay(&plan, workers); err != nil {
		return err
	}
	if !plan.BeatsBuiltins {
		return fmt.Errorf("optimize: plan %s does not beat the paper schemes", path)
	}
	fmt.Fprintf(out, "replay ok: %d scenarios reproduce the plan aggregates byte-for-byte (winner %s)\n",
		len(plan.Replay.Scenarios), plan.Winner.Tag)
	return nil
}
