package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const specJSON = `{
  "seed": 7,
  "grid": {
    "apps": [["A2"]],
    "schemes": ["baseline", "batching"],
    "windows": [1],
    "qos": [0.5, 1],
    "skipCompute": true
  }
}`

func writeSpec(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(specJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSweepASCII(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-spec", writeSpec(t), "-workers", "2"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"4 scenarios", "Baseline/total", "Batching/total", "p95"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunSweepCSVAndJournalResume(t *testing.T) {
	spec := writeSpec(t)
	journal := filepath.Join(t.TempDir(), "run.jsonl")
	var first strings.Builder
	if err := run([]string{"-spec", spec, "-journal", journal, "-format", "csv"}, &first); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(first.String(), "metric,n,mean") {
		t.Errorf("csv header missing:\n%s", first.String())
	}
	var second strings.Builder
	if err := run([]string{"-spec", spec, "-journal", journal, "-resume", "-format", "csv"}, &second); err != nil {
		t.Fatal(err)
	}
	// A full journal resumes to the identical table (plus the resume note,
	// which CSV output does not render).
	if first.String() != second.String() {
		t.Errorf("resumed table differs:\n%s\nvs\n%s", first.String(), second.String())
	}
}

func TestRunFlagValidation(t *testing.T) {
	if err := run(nil, os.Stdout); err == nil || !strings.Contains(err.Error(), "-spec") {
		t.Errorf("missing -spec: err = %v", err)
	}
	if err := run([]string{"-spec", "x", "-format", "yaml"}, os.Stdout); err == nil || !strings.Contains(err.Error(), "format") {
		t.Errorf("bad -format: err = %v", err)
	}
}

func TestRunReportsFailedScenarios(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	bad := `{"seed": 1, "scenarios": [
	  {"apps": ["A2"], "scheme": "baseline", "windows": 1, "skipCompute": true},
	  {"apps": ["A99"], "scheme": "baseline", "windows": 1}
	]}`
	if err := os.WriteFile(path, []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	err := run([]string{"-spec", path}, &sb)
	if err == nil || !strings.Contains(err.Error(), "1 of 2 scenarios failed") {
		t.Errorf("err = %v, want failure count", err)
	}
	if !strings.Contains(sb.String(), "failed: scenario 1") {
		t.Errorf("failed-scenario line missing:\n%s", sb.String())
	}
}
