// Command iotfleet runs a declarative sweep of hub scenarios on a worker
// pool and prints the streaming aggregates (mean/std and P50/P95/P99 per
// scheme or tag). Sweeps are deterministic for any worker count, and with a
// journal they checkpoint after every scenario and resume with -resume.
//
// Usage:
//
//	iotfleet -spec sweep.json
//	iotfleet -spec sweep.json -workers 8 -progress
//	iotfleet -spec sweep.json -journal run.jsonl            # checkpointed
//	iotfleet -spec sweep.json -journal run.jsonl -resume    # continue
//	iotfleet -spec sweep.json -format csv
//
// Service mode shards one sweep across worker processes (see DESIGN.md §10):
//
//	iotfleet serve -spec sweep.json -addr 127.0.0.1:0 -addr-file addr.txt
//	iotfleet work -addr-file addr.txt -id w1     # any number of these
//
// Optimize mode searches the scheme-composition space for an app mix and
// emits the minimum-energy plan with its Pareto front (see DESIGN.md §11):
//
//	iotfleet optimize -spec search.json -out plan.json
//	iotfleet optimize -check-replay plan.json    # verify byte-identical replay
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"iothub/internal/fleet"
	"iothub/internal/obs"
	"iothub/internal/profiling"
	"iothub/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "iotfleet:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) (retErr error) {
	if len(args) > 0 {
		switch args[0] {
		case "serve":
			return runServe(args[1:], out)
		case "work":
			return runWork(args[1:], out)
		case "optimize":
			return runOptimize(args[1:], out)
		}
	}
	fs := flag.NewFlagSet("iotfleet", flag.ContinueOnError)
	specPath := fs.String("spec", "", "sweep spec file (JSON; see internal/fleet/testdata/smoke.json)")
	workers := fs.Int("workers", 0, "worker pool size (0 = spec's workers, then GOMAXPROCS)")
	journal := fs.String("journal", "", "checkpoint journal path (JSON lines; enables -resume)")
	resume := fs.Bool("resume", false, "replay the journal and continue from the first unfinished scenario")
	progress := fs.Bool("progress", false, "print structured JSON progress lines to stderr while the sweep runs")
	metricsAddr := fs.String("metrics-addr", "", "serve live sweep gauges in Prometheus text format on this address (e.g. :9090)")
	format := fs.String("format", "ascii", "output format: ascii, csv, or markdown")
	aggOut := fs.String("agg-out", "", "also write the merged aggregates as canonical JSON to this file")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
	memProfile := fs.String("memprofile", "", "write an allocation profile of the sweep to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *specPath == "" {
		return fmt.Errorf("-spec is required")
	}
	stopProfiles, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil && retErr == nil {
			retErr = perr
		}
	}()
	render, err := renderer(*format)
	if err != nil {
		return err
	}
	spec, err := fleet.LoadSpec(*specPath)
	if err != nil {
		return err
	}
	opt := fleet.Options{Workers: *workers, Journal: *journal, Resume: *resume}
	if *progress {
		opt.Progress = os.Stderr
	}
	var srv *obs.MetricsServer
	if *metricsAddr != "" {
		opt.Gauges = obs.NewGauges()
		srv, err = obs.StartMetricsServer(*metricsAddr, opt.Gauges)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "metrics: serving /metrics on %s\n", srv.Addr())
	}
	res, err := fleet.Run(spec, opt)
	if err != nil {
		return err
	}
	if *aggOut != "" {
		if err := os.WriteFile(*aggOut, res.Agg.JSON(), 0o644); err != nil {
			return err
		}
	}
	if srv != nil {
		// Self-scrape once so every instrumented sweep proves its own
		// endpoint end-to-end (CI greps this for the final gauge values).
		text, err := obs.Scrape(srv.Addr())
		if err != nil {
			return fmt.Errorf("metrics self-scrape: %w", err)
		}
		fmt.Fprintf(os.Stderr, "metrics: final scrape of %s:\n%s", srv.Addr(), text)
	}

	title := fmt.Sprintf("fleet sweep: %d scenarios (seed %d), energy in J/window",
		res.Scenarios, spec.Seed)
	t := report.AggregateTable(title, aggRows(res.Agg))
	if res.Resumed > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("resumed %d scenarios from the journal", res.Resumed))
	}
	fmt.Fprint(out, render(t))
	for _, f := range res.Failed {
		fmt.Fprintf(out, "failed: scenario %d %s: %s\n", f.Index, f.Label, f.Err)
	}
	if res.Agg.Errors > 0 {
		return fmt.Errorf("%d of %d scenarios failed", res.Agg.Errors, res.Completed)
	}
	return nil
}

func renderer(format string) (func(*report.Table) string, error) {
	switch format {
	case "ascii":
		return (*report.Table).ASCII, nil
	case "csv":
		return (*report.Table).CSV, nil
	case "markdown":
		return (*report.Table).Markdown, nil
	default:
		return nil, fmt.Errorf("unknown -format %q (want ascii, csv, or markdown)", format)
	}
}

func aggRows(a *fleet.Aggregator) []report.AggRow {
	var rows []report.AggRow
	for _, key := range a.Keys() {
		m := a.Metric(key)
		rows = append(rows, report.AggRow{
			Metric: key, Count: m.Count(),
			Mean: m.Mean(), Std: m.Std(), Min: m.Min(), Max: m.Max(),
			P50: m.Quantile(0.5), P95: m.Quantile(0.95), P99: m.Quantile(0.99),
		})
	}
	return rows
}
