package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"iothub/internal/fleet"
	"iothub/internal/fleetd"
	"iothub/internal/obs"
)

// runServe is the coordinator process: it owns the sweep, the journal, and
// the merged aggregates; workers are stateless and disposable.
func runServe(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("iotfleet serve", flag.ContinueOnError)
	specPath := fs.String("spec", "", "sweep spec file (JSON)")
	addr := fs.String("addr", "127.0.0.1:0", "listen address (port 0 picks a free port)")
	addrFile := fs.String("addr-file", "", "write the bound address to this file (workers poll it)")
	journal := fs.String("journal", "", "checkpoint journal path (enables -resume after a coordinator crash)")
	resume := fs.Bool("resume", false, "replay the journal and continue from the first unfinished scenario")
	aggOut := fs.String("agg-out", "", "write the merged aggregates as canonical JSON to this file")
	progress := fs.Bool("progress", false, "print structured JSON progress lines to stderr")
	shardSize := fs.Int("shard-size", 0, "initial scenarios per shard (0 = default)")
	leaseTTL := fs.Duration("lease-ttl", 0, "shard lease deadline; a silent worker loses its shard after this (0 = default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *specPath == "" {
		return fmt.Errorf("serve: -spec is required")
	}
	spec, err := fleet.LoadSpec(*specPath)
	if err != nil {
		return err
	}
	cfg := fleetd.Config{
		Spec: spec, Journal: *journal, Resume: *resume,
		ShardSize: *shardSize, LeaseTTL: *leaseTTL,
		Gauges: obs.NewGauges(), Warn: os.Stderr,
	}
	if *progress {
		cfg.Progress = os.Stderr
	}
	c, err := fleetd.New(cfg)
	if err != nil {
		return err
	}
	defer c.Close()
	srv, err := fleetd.ServeHTTP(*addr, c)
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Fprintf(os.Stderr, "serve: coordinating on %s\n", srv.Addr())
	if *addrFile != "" {
		// Write-then-rename so workers polling the file never read half an
		// address.
		tmp := *addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(srv.Addr()+"\n"), 0o644); err != nil {
			return err
		}
		if err := os.Rename(tmp, *addrFile); err != nil {
			return err
		}
	}
	res, err := c.Wait()
	if err != nil {
		return err
	}
	if *aggOut != "" {
		if err := os.WriteFile(*aggOut, res.Agg.JSON(), 0o644); err != nil {
			return err
		}
	}
	fmt.Fprintf(out, "serve: %d scenarios folded (%d resumed), fingerprint %s\n",
		res.Completed, res.Resumed, res.Agg.Fingerprint())
	for _, f := range res.Failed {
		fmt.Fprintf(out, "failed: scenario %d %s: %s\n", f.Index, f.Label, f.Err)
	}
	if res.Agg.Errors > 0 {
		return fmt.Errorf("%d of %d scenarios failed", res.Agg.Errors, res.Completed)
	}
	return nil
}

// runWork is one worker process: fetch the spec, lease shards, execute,
// submit, exit when the coordinator says the sweep is done.
func runWork(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("iotfleet work", flag.ContinueOnError)
	addr := fs.String("addr", "", "coordinator address (host:port)")
	addrFile := fs.String("addr-file", "", "poll this file for the coordinator address (written by serve -addr-file)")
	id := fs.String("id", "", "worker name in leases and logs (default: pid-derived)")
	parallelism := fs.Int("parallelism", 0, "scenarios in flight inside one shard (0 = 1)")
	timeout := fs.Duration("timeout", 5*time.Second, "per-RPC timeout")
	wait := fs.Duration("wait", 10*time.Second, "how long to wait for -addr-file to appear")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addr == "" && *addrFile == "" {
		return fmt.Errorf("work: one of -addr or -addr-file is required")
	}
	if *id == "" {
		*id = fmt.Sprintf("w%d", os.Getpid())
	}
	target := *addr
	if target == "" {
		var err error
		if target, err = awaitAddrFile(*addrFile, *wait); err != nil {
			return err
		}
	}
	w, err := fleetd.NewWorker(fleetd.WorkerConfig{
		ID:          *id,
		Transport:   fleetd.HTTPTransport{Addr: target, Timeout: *timeout},
		Parallelism: *parallelism,
		Seed:        int64(os.Getpid()),
		Warn:        os.Stderr,
	})
	if err != nil {
		if errors.Is(err, fleetd.ErrCoordinatorGone) {
			// The sweep finished (and serve exited) before this worker got a
			// first word in — nothing to do is not a failure.
			fmt.Fprintf(out, "work[%s]: coordinator already gone; nothing to do\n", *id)
			return nil
		}
		return err
	}
	if err := w.Run(); err != nil {
		return err
	}
	fmt.Fprintf(out, "work[%s]: sweep done, %d shards completed\n", *id, w.Shards())
	return nil
}

// awaitAddrFile polls for the coordinator's address file — the rendezvous
// used by the smoke script, where workers start before the coordinator has
// bound its port.
func awaitAddrFile(path string, wait time.Duration) (string, error) {
	deadline := time.Now().Add(wait)
	for {
		blob, err := os.ReadFile(path)
		if err == nil {
			if addr := strings.TrimSpace(string(blob)); addr != "" {
				return addr, nil
			}
		}
		if time.Now().After(deadline) {
			return "", fmt.Errorf("work: no coordinator address in %s after %v", filepath.Clean(path), wait)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
