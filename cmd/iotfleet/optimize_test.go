package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const searchJSON = `{
  "apps": ["A11", "A2"],
  "windows": 1,
  "seed": 3,
  "maxQosViolations": 0,
  "maxCandidates": 6,
  "skipCompute": true
}`

func writeSearchSpec(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "search.json")
	if err := os.WriteFile(path, []byte(searchJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestOptimizeEmitsAndChecksPlan(t *testing.T) {
	planPath := filepath.Join(t.TempDir(), "plan.json")
	var sb strings.Builder
	if err := run([]string{"optimize", "-spec", writeSearchSpec(t), "-out", planPath, "-workers", "2"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"winner:", "builtin scheme:bcom", "pareto front:", "plan written"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	var check strings.Builder
	if err := run([]string{"optimize", "-check-replay", planPath}, &check); err != nil {
		t.Fatalf("check-replay: %v", err)
	}
	if !strings.Contains(check.String(), "replay ok") {
		t.Errorf("check output = %q", check.String())
	}
	// Tampering with the recorded aggregates must fail the check.
	blob, err := os.ReadFile(planPath)
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(blob), `\"mean\":`, `\"mean\": 0`, 1)
	if tampered == string(blob) {
		t.Fatal("tamper pattern not found in plan")
	}
	if err := os.WriteFile(planPath, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"optimize", "-check-replay", planPath}, &check); err == nil {
		t.Error("check-replay accepted tampered aggregates")
	}
}

func TestOptimizeFlagValidation(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"optimize"}, &sb); err == nil {
		t.Error("missing -spec accepted")
	}
	if err := run([]string{"optimize", "-spec", filepath.Join(t.TempDir(), "nope.json")}, &sb); err == nil {
		t.Error("missing spec file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"unknownField": 1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"optimize", "-spec", bad}, &sb); err == nil {
		t.Error("unknown spec field accepted")
	}
}
