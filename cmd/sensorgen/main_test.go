package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestDumpFormats(t *testing.T) {
	cases := map[string]string{
		"S4":  "index,x,y,z", // Int*3
		"S6":  "index,value", // Int
		"S1":  "index,value", // Double
		"S3":  "index,bytes", // opaque signature
		"S10": "index,bytes", // opaque frame
	}
	for id, header := range cases {
		var out bytes.Buffer
		if err := run([]string{"-sensor", id, "-n", "5"}, &out); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		lines := strings.Split(strings.TrimSpace(out.String()), "\n")
		if lines[0] != header {
			t.Errorf("%s header = %q, want %q", id, lines[0], header)
		}
		if len(lines) != 6 {
			t.Errorf("%s lines = %d, want 6 (header + 5 samples)", id, len(lines))
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	var a, b bytes.Buffer
	if err := run([]string{"-sensor", "S4", "-n", "20", "-seed", "9"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-sensor", "S4", "-n", "20", "-seed", "9"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("same seed produced different traces")
	}
}

func TestErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-sensor", "S99"}, &out); err == nil {
		t.Error("unknown sensor accepted")
	}
	if err := run([]string{"-n", "0"}, &out); err == nil {
		t.Error("n=0 accepted")
	}
}
