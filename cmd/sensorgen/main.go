// Command sensorgen dumps synthetic sensor traces as CSV for inspection and
// for feeding external tooling.
//
// Usage:
//
//	sensorgen -sensor S4 -n 100          # accelerometer walking signal
//	sensorgen -sensor S6 -n 2000 -seed 7 # ECG waveform
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"iothub/internal/sensor"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sensorgen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sensorgen", flag.ContinueOnError)
	id := fs.String("sensor", "S4", "Table I sensor ID (S1..S10)")
	n := fs.Int("n", 100, "number of samples")
	seed := fs.Int64("seed", 1, "generator seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n < 1 {
		return fmt.Errorf("n = %d, want >= 1", *n)
	}
	spec, err := sensor.Lookup(sensor.ID(*id))
	if err != nil {
		return err
	}
	src, err := sensor.DefaultSource(spec.ID, *seed)
	if err != nil {
		return err
	}
	return dump(out, spec, src, *n)
}

func dump(out io.Writer, spec sensor.Spec, src sensor.Source, n int) error {
	switch spec.DataType {
	case "Int*3":
		fmt.Fprintln(out, "index,x,y,z")
		for i := 0; i < n; i++ {
			v, err := sensor.DecodeVec3(src.Sample(i))
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "%d,%d,%d,%d\n", i, v.X, v.Y, v.Z)
		}
	case "Int":
		fmt.Fprintln(out, "index,value")
		for i := 0; i < n; i++ {
			v, err := sensor.DecodeI32(src.Sample(i))
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "%d,%d\n", i, v)
		}
	case "Double":
		fmt.Fprintln(out, "index,value")
		for i := 0; i < n; i++ {
			v, err := sensor.DecodeF64(src.Sample(i))
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "%d,%g\n", i, v)
		}
	default:
		// Opaque payloads (signatures, frames): dump sizes only.
		fmt.Fprintln(out, "index,bytes")
		for i := 0; i < n; i++ {
			fmt.Fprintf(out, "%d,%d\n", i, len(src.Sample(i)))
		}
	}
	return nil
}
