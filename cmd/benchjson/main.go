// Command benchjson converts `go test -bench` text output into a stable
// JSON document, the record format behind `make bench-json`: each run lands
// in a BENCH_<stamp>.json file, and the sequence of committed files is the
// repo's performance trajectory (compare any two with a JSON diff).
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson -o BENCH_20260805T120000Z.json
//	go test -bench SchedulerThroughput ./internal/sim | benchjson
//	benchjson -diff BENCH_old.json BENCH_new.json   # % delta table
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Record is the top-level document.
type Record struct {
	Stamp string `json:"stamp"`
	// Commit and GoVersion pin the trajectory point to the code that
	// produced it; Commit is empty outside a git checkout.
	Commit     string      `json:"commit,omitempty"`
	GoVersion  string      `json:"go_version,omitempty"`
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one `Benchmark...` result line.
type Benchmark struct {
	Pkg         string  `json:"pkg,omitempty"`
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds any extra b.ReportMetric pairs (e.g. "scenarios").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	out := ""
	args := os.Args[1:]
	for len(args) > 0 {
		switch args[0] {
		case "-o":
			if len(args) < 2 {
				fmt.Fprintln(os.Stderr, "benchjson: -o needs a file path")
				os.Exit(2)
			}
			out, args = args[1], args[2:]
		case "-diff":
			if err := runDiff(os.Stdout, args[1:]); err != nil {
				fmt.Fprintln(os.Stderr, "benchjson:", err)
				os.Exit(1)
			}
			return
		default:
			fmt.Fprintf(os.Stderr, "benchjson: unknown argument %q\n", args[0])
			os.Exit(2)
		}
	}
	rec, err := Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	rec.Stamp = time.Now().UTC().Format(time.RFC3339)
	rec.Commit = gitCommit()
	rec.GoVersion = runtime.Version()
	blob, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	blob = append(blob, '\n')
	if out == "" {
		os.Stdout.Write(blob)
		return
	}
	if err := os.WriteFile(out, blob, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks -> %s\n", len(rec.Benchmarks), out)
}

// gitCommit reports the checkout's short commit hash, or "" when git (or a
// repository) is unavailable — the stamp is best-effort metadata.
func gitCommit() string {
	blob, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(blob))
}

// runDiff implements -diff. A trajectory with a single recorded point (or
// none yet) has nothing to compare — that is a fresh checkout, not an error:
// report it and succeed, so `make bench-diff` works from the first commit.
func runDiff(w io.Writer, paths []string) error {
	if len(paths) < 2 {
		fmt.Fprintf(w, "benchjson: need >=2 trajectory files, have %d\n", len(paths))
		return nil
	}
	return diffFiles(w, paths[0], paths[1])
}

// diffFiles loads two trajectory points and prints their delta table.
func diffFiles(w io.Writer, oldPath, newPath string) error {
	load := func(path string) (*Record, error) {
		blob, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var rec Record
		if err := json.Unmarshal(blob, &rec); err != nil {
			return nil, fmt.Errorf("%s: %v", path, err)
		}
		return &rec, nil
	}
	oldRec, err := load(oldPath)
	if err != nil {
		return err
	}
	newRec, err := load(newPath)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "old: %s (%s %s)\nnew: %s (%s %s)\n\n",
		oldPath, oldRec.Stamp, oldRec.Commit, newPath, newRec.Stamp, newRec.Commit)
	return WriteDiff(w, oldRec, newRec)
}

// delta formats a percentage change; a zero or missing old value has no
// meaningful ratio.
func delta(oldV, newV float64) string {
	if oldV == 0 || newV == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", (newV-oldV)/oldV*100)
}

// WriteDiff renders the benchmark-by-benchmark comparison of two records,
// matching entries on (pkg, name) and listing unmatched benchmarks at the
// bottom so renames and deletions are visible rather than silently dropped.
func WriteDiff(w io.Writer, oldRec, newRec *Record) error {
	key := func(b Benchmark) string { return b.Pkg + " " + b.Name }
	olds := make(map[string]Benchmark, len(oldRec.Benchmarks))
	for _, b := range oldRec.Benchmarks {
		olds[key(b)] = b
	}
	fmt.Fprintf(w, "%-52s %14s %14s %9s %9s\n",
		"benchmark", "old ns/op", "new ns/op", "ns delta", "allocs")
	matched := map[string]bool{}
	for _, nb := range newRec.Benchmarks {
		ob, ok := olds[key(nb)]
		if !ok {
			continue
		}
		matched[key(nb)] = true
		fmt.Fprintf(w, "%-52s %14.0f %14.0f %9s %9s\n",
			nb.Name, ob.NsPerOp, nb.NsPerOp,
			delta(ob.NsPerOp, nb.NsPerOp), delta(ob.AllocsPerOp, nb.AllocsPerOp))
	}
	if len(matched) == 0 {
		return fmt.Errorf("no benchmarks in common between the two records")
	}
	for _, b := range oldRec.Benchmarks {
		if !matched[key(b)] {
			fmt.Fprintf(w, "%-52s only in old record\n", b.Name)
		}
	}
	for _, b := range newRec.Benchmarks {
		if _, ok := olds[key(b)]; !ok {
			fmt.Fprintf(w, "%-52s only in new record\n", b.Name)
		}
	}
	return nil
}

// Parse consumes `go test -bench` output. It tracks pkg/goos/goarch/cpu
// header lines, collects every Benchmark result, and fails if the stream
// contains a test failure marker (a half-failed run is not a trajectory
// point worth recording).
func Parse(r io.Reader) (*Record, error) {
	rec := &Record{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rec.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rec.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rec.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case line == "FAIL" || strings.HasPrefix(line, "FAIL\t") || strings.HasPrefix(line, "--- FAIL"):
			return nil, fmt.Errorf("input contains a test failure: %q", line)
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseBench(line, pkg)
			if err != nil {
				return nil, err
			}
			rec.Benchmarks = append(rec.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rec.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found")
	}
	return rec, nil
}

func parseBench(line, pkg string) (Benchmark, error) {
	f := strings.Fields(line)
	if len(f) < 2 {
		return Benchmark{}, fmt.Errorf("malformed benchmark line %q", line)
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("benchmark line %q: iterations: %v", line, err)
	}
	b := Benchmark{Pkg: pkg, Name: f[0], Iterations: iters}
	// The rest is (value, unit) pairs.
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("benchmark line %q: value %q: %v", line, f[i], err)
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	return b, nil
}
