// Command benchjson converts `go test -bench` text output into a stable
// JSON document, the record format behind `make bench-json`: each run lands
// in a BENCH_<stamp>.json file, and the sequence of committed files is the
// repo's performance trajectory (compare any two with a JSON diff).
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson -o BENCH_20260805T120000Z.json
//	go test -bench SchedulerThroughput ./internal/sim | benchjson
//	benchjson -diff BENCH_old.json BENCH_new.json   # % delta table + worker scaling
//	go test -run '^$' -bench 'FleetSweep/workers=1$' -benchmem -benchtime 1x . \
//	    | benchjson -gate FleetSweep/workers=1 -max-allocs-per-scenario 500
//
// -diff appends a worker-scaling table (speedup and parallel efficiency per
// <base>/workers=N family) for the newer record. -gate turns the tool into a
// CI regression gate: it normalizes each matching benchmark's allocs/op by
// its "scenarios" metric and exits nonzero when the pinned per-scenario
// allocation budget is exceeded.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Record is the top-level document.
type Record struct {
	Stamp string `json:"stamp"`
	// Commit and GoVersion pin the trajectory point to the code that
	// produced it; Commit is empty outside a git checkout.
	Commit     string      `json:"commit,omitempty"`
	GoVersion  string      `json:"go_version,omitempty"`
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one `Benchmark...` result line.
type Benchmark struct {
	Pkg         string  `json:"pkg,omitempty"`
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds any extra b.ReportMetric pairs (e.g. "scenarios").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	out := ""
	gate := ""
	budget := 0.0
	args := os.Args[1:]
	for len(args) > 0 {
		switch args[0] {
		case "-o":
			if len(args) < 2 {
				fmt.Fprintln(os.Stderr, "benchjson: -o needs a file path")
				os.Exit(2)
			}
			out, args = args[1], args[2:]
		case "-diff":
			if err := runDiff(os.Stdout, args[1:]); err != nil {
				fmt.Fprintln(os.Stderr, "benchjson:", err)
				os.Exit(1)
			}
			return
		case "-gate":
			if len(args) < 2 {
				fmt.Fprintln(os.Stderr, "benchjson: -gate needs a benchmark name pattern")
				os.Exit(2)
			}
			gate, args = args[1], args[2:]
		case "-max-allocs-per-scenario":
			if len(args) < 2 {
				fmt.Fprintln(os.Stderr, "benchjson: -max-allocs-per-scenario needs a number")
				os.Exit(2)
			}
			v, err := strconv.ParseFloat(args[1], 64)
			if err != nil || v <= 0 {
				fmt.Fprintf(os.Stderr, "benchjson: bad allocation budget %q\n", args[1])
				os.Exit(2)
			}
			budget, args = v, args[2:]
		default:
			fmt.Fprintf(os.Stderr, "benchjson: unknown argument %q\n", args[0])
			os.Exit(2)
		}
	}
	rec, err := Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if gate != "" {
		if budget <= 0 {
			fmt.Fprintln(os.Stderr, "benchjson: -gate needs -max-allocs-per-scenario")
			os.Exit(2)
		}
		if err := Gate(os.Stdout, rec, gate, budget); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	rec.Stamp = time.Now().UTC().Format(time.RFC3339)
	rec.Commit = gitCommit()
	rec.GoVersion = runtime.Version()
	blob, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	blob = append(blob, '\n')
	if out == "" {
		os.Stdout.Write(blob)
		return
	}
	if err := os.WriteFile(out, blob, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks -> %s\n", len(rec.Benchmarks), out)
}

// gitCommit reports the checkout's short commit hash, or "" when git (or a
// repository) is unavailable — the stamp is best-effort metadata.
func gitCommit() string {
	blob, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(blob))
}

// runDiff implements -diff. A trajectory with a single recorded point (or
// none yet) has nothing to compare — that is a fresh checkout, not an error:
// report it and succeed, so `make bench-diff` works from the first commit.
func runDiff(w io.Writer, paths []string) error {
	if len(paths) < 2 {
		fmt.Fprintf(w, "benchjson: need >=2 trajectory files, have %d\n", len(paths))
		return nil
	}
	return diffFiles(w, paths[0], paths[1])
}

// diffFiles loads two trajectory points and prints their delta table.
func diffFiles(w io.Writer, oldPath, newPath string) error {
	load := func(path string) (*Record, error) {
		blob, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var rec Record
		if err := json.Unmarshal(blob, &rec); err != nil {
			return nil, fmt.Errorf("%s: %v", path, err)
		}
		return &rec, nil
	}
	oldRec, err := load(oldPath)
	if err != nil {
		return err
	}
	newRec, err := load(newPath)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "old: %s (%s %s)\nnew: %s (%s %s)\n\n",
		oldPath, oldRec.Stamp, oldRec.Commit, newPath, newRec.Stamp, newRec.Commit)
	if err := WriteDiff(w, oldRec, newRec); err != nil {
		return err
	}
	WriteScaling(w, newRec)
	return nil
}

// Gate enforces the CI allocation budget: every benchmark whose name
// contains pattern must keep allocs/op divided by its "scenarios" metric at
// or under budget. Matching benchmarks without the metric (or without
// -benchmem data) are an error — a gate that silently checks nothing is
// worse than no gate.
func Gate(w io.Writer, rec *Record, pattern string, budget float64) error {
	matched := 0
	for _, b := range rec.Benchmarks {
		if !strings.Contains(b.Name, pattern) {
			continue
		}
		matched++
		scenarios := b.Metrics["scenarios"]
		if scenarios <= 0 {
			return fmt.Errorf("%s: no scenarios metric to normalize by (ReportMetric missing?)", b.Name)
		}
		if b.AllocsPerOp == 0 {
			return fmt.Errorf("%s: no allocs/op (run the benchmark with -benchmem)", b.Name)
		}
		per := b.AllocsPerOp / scenarios
		if per > budget {
			return fmt.Errorf("%s: %.0f allocs/scenario exceeds the pinned budget of %.0f", b.Name, per, budget)
		}
		fmt.Fprintf(w, "benchjson: gate ok: %s at %.0f allocs/scenario (budget %.0f)\n", b.Name, per, budget)
	}
	if matched == 0 {
		return fmt.Errorf("gate pattern %q matched no benchmarks", pattern)
	}
	return nil
}

// workerCount extracts N from a benchmark name of the form
// <base>/workers=N[-procs], returning base, N, and whether it matched.
func workerCount(name string) (string, int, bool) {
	i := strings.LastIndex(name, "/workers=")
	if i < 0 {
		return "", 0, false
	}
	rest := name[i+len("/workers="):]
	if j := strings.IndexByte(rest, '-'); j >= 0 {
		rest = rest[:j] // strip the -GOMAXPROCS suffix
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 1 {
		return "", 0, false
	}
	return name[:i], n, true
}

// WriteScaling renders the worker-scaling table of a record: benchmarks
// named <base>/workers=N are grouped by base, the workers=1 run is the
// reference, and the speedup and parallel-efficiency columns show what the
// extra workers actually bought (efficiency = speedup / workers; 1.0 is
// perfect linear scaling, and a single-core host pins it near 1/workers).
func WriteScaling(w io.Writer, rec *Record) {
	type point struct {
		n  int
		ns float64
	}
	groups := map[string][]point{}
	var order []string
	for _, b := range rec.Benchmarks {
		base, n, ok := workerCount(b.Name)
		if !ok || b.NsPerOp <= 0 {
			continue
		}
		key := b.Pkg + " " + base
		if _, seen := groups[key]; !seen {
			order = append(order, key)
		}
		groups[key] = append(groups[key], point{n, b.NsPerOp})
	}
	for _, key := range order {
		pts := groups[key]
		sort.Slice(pts, func(i, j int) bool { return pts[i].n < pts[j].n })
		var ref float64
		for _, p := range pts {
			if p.n == 1 {
				ref = p.ns
				break
			}
		}
		_, base, _ := strings.Cut(key, " ")
		fmt.Fprintf(w, "\nworker scaling: %s\n", base)
		fmt.Fprintf(w, "%8s %14s %9s %11s\n", "workers", "ns/op", "speedup", "efficiency")
		for _, p := range pts {
			if ref == 0 {
				fmt.Fprintf(w, "%8d %14.0f %9s %11s\n", p.n, p.ns, "n/a", "n/a")
				continue
			}
			speedup := ref / p.ns
			fmt.Fprintf(w, "%8d %14.0f %8.2fx %11.2f\n", p.n, p.ns, speedup, speedup/float64(p.n))
		}
	}
}

// delta formats a percentage change; a zero or missing old value has no
// meaningful ratio.
func delta(oldV, newV float64) string {
	if oldV == 0 || newV == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", (newV-oldV)/oldV*100)
}

// WriteDiff renders the benchmark-by-benchmark comparison of two records,
// matching entries on (pkg, name) and listing unmatched benchmarks at the
// bottom so renames and deletions are visible rather than silently dropped.
func WriteDiff(w io.Writer, oldRec, newRec *Record) error {
	key := func(b Benchmark) string { return b.Pkg + " " + b.Name }
	olds := make(map[string]Benchmark, len(oldRec.Benchmarks))
	for _, b := range oldRec.Benchmarks {
		olds[key(b)] = b
	}
	fmt.Fprintf(w, "%-52s %14s %14s %9s %9s\n",
		"benchmark", "old ns/op", "new ns/op", "ns delta", "allocs")
	matched := map[string]bool{}
	for _, nb := range newRec.Benchmarks {
		ob, ok := olds[key(nb)]
		if !ok {
			continue
		}
		matched[key(nb)] = true
		fmt.Fprintf(w, "%-52s %14.0f %14.0f %9s %9s\n",
			nb.Name, ob.NsPerOp, nb.NsPerOp,
			delta(ob.NsPerOp, nb.NsPerOp), delta(ob.AllocsPerOp, nb.AllocsPerOp))
	}
	if len(matched) == 0 {
		return fmt.Errorf("no benchmarks in common between the two records")
	}
	for _, b := range oldRec.Benchmarks {
		if !matched[key(b)] {
			fmt.Fprintf(w, "%-52s only in old record\n", b.Name)
		}
	}
	for _, b := range newRec.Benchmarks {
		if _, ok := olds[key(b)]; !ok {
			fmt.Fprintf(w, "%-52s only in new record\n", b.Name)
		}
	}
	return nil
}

// Parse consumes `go test -bench` output. It tracks pkg/goos/goarch/cpu
// header lines, collects every Benchmark result, and fails if the stream
// contains a test failure marker (a half-failed run is not a trajectory
// point worth recording).
func Parse(r io.Reader) (*Record, error) {
	rec := &Record{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rec.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rec.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rec.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case line == "FAIL" || strings.HasPrefix(line, "FAIL\t") || strings.HasPrefix(line, "--- FAIL"):
			return nil, fmt.Errorf("input contains a test failure: %q", line)
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseBench(line, pkg)
			if err != nil {
				return nil, err
			}
			rec.Benchmarks = append(rec.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rec.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found")
	}
	return rec, nil
}

func parseBench(line, pkg string) (Benchmark, error) {
	f := strings.Fields(line)
	if len(f) < 2 {
		return Benchmark{}, fmt.Errorf("malformed benchmark line %q", line)
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("benchmark line %q: iterations: %v", line, err)
	}
	b := Benchmark{Pkg: pkg, Name: f[0], Iterations: iters}
	// The rest is (value, unit) pairs.
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("benchmark line %q: value %q: %v", line, f[i], err)
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	return b, nil
}
