package main

import (
	"fmt"
	"io"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: iothub
cpu: AMD EPYC 7R13 Processor
BenchmarkFleetSweep/workers=1         	       3	 244882689 ns/op	        64.00 scenarios	116854061 B/op	 1833768 allocs/op
BenchmarkFleetSweep/workers=1#01      	       3	 245013against ns/op
PASS
ok  	iothub	2.412s
pkg: iothub/internal/sim
BenchmarkSchedulerThroughput-4        	    6816	    174992 ns/op	     208 B/op	       7 allocs/op
BenchmarkSchedulerFanOut-4            	    1670	    716811 ns/op
PASS
ok  	iothub/internal/sim	3.001s
`

func TestParse(t *testing.T) {
	// The deliberately corrupt second line above exercises the error path in
	// its own subtest; build a clean copy for the happy path.
	clean := strings.Replace(sampleOutput,
		"BenchmarkFleetSweep/workers=1#01      \t       3\t 245013against ns/op\n", "", 1)
	rec, err := Parse(strings.NewReader(clean))
	if err != nil {
		t.Fatal(err)
	}
	if rec.GOOS != "linux" || rec.GOARCH != "amd64" {
		t.Errorf("goos/goarch = %q/%q", rec.GOOS, rec.GOARCH)
	}
	if rec.CPU != "AMD EPYC 7R13 Processor" {
		t.Errorf("cpu = %q", rec.CPU)
	}
	if len(rec.Benchmarks) != 3 {
		t.Fatalf("got %d benchmarks, want 3: %+v", len(rec.Benchmarks), rec.Benchmarks)
	}

	sweep := rec.Benchmarks[0]
	if sweep.Name != "BenchmarkFleetSweep/workers=1" || sweep.Pkg != "iothub" {
		t.Errorf("first benchmark = %q pkg %q", sweep.Name, sweep.Pkg)
	}
	if sweep.Iterations != 3 || sweep.NsPerOp != 244882689 {
		t.Errorf("sweep iterations/ns = %d/%v", sweep.Iterations, sweep.NsPerOp)
	}
	if sweep.BytesPerOp != 116854061 || sweep.AllocsPerOp != 1833768 {
		t.Errorf("sweep B/allocs = %v/%v", sweep.BytesPerOp, sweep.AllocsPerOp)
	}
	if got := sweep.Metrics["scenarios"]; got != 64 {
		t.Errorf("sweep scenarios metric = %v, want 64", got)
	}

	sched := rec.Benchmarks[1]
	if sched.Pkg != "iothub/internal/sim" {
		t.Errorf("scheduler pkg = %q", sched.Pkg)
	}
	if sched.AllocsPerOp != 7 || sched.BytesPerOp != 208 {
		t.Errorf("scheduler B/allocs = %v/%v", sched.BytesPerOp, sched.AllocsPerOp)
	}
	if fan := rec.Benchmarks[2]; fan.Metrics != nil || fan.BytesPerOp != 0 {
		t.Errorf("fan-out without -benchmem should have no memory fields: %+v", fan)
	}
}

func TestWriteDiff(t *testing.T) {
	oldRec := &Record{Benchmarks: []Benchmark{
		{Pkg: "iothub", Name: "BenchmarkSweep", NsPerOp: 200, AllocsPerOp: 10},
		{Pkg: "iothub", Name: "BenchmarkGone", NsPerOp: 50},
	}}
	newRec := &Record{Benchmarks: []Benchmark{
		{Pkg: "iothub", Name: "BenchmarkSweep", NsPerOp: 150, AllocsPerOp: 10},
		{Pkg: "iothub", Name: "BenchmarkNew", NsPerOp: 75},
	}}
	var b strings.Builder
	if err := WriteDiff(&b, oldRec, newRec); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"-25.0%", "+0.0%", "BenchmarkGone", "only in old record",
		"BenchmarkNew", "only in new record"} {
		if !strings.Contains(out, want) {
			t.Errorf("diff output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteDiffDisjoint(t *testing.T) {
	oldRec := &Record{Benchmarks: []Benchmark{{Name: "BenchmarkA", NsPerOp: 1}}}
	newRec := &Record{Benchmarks: []Benchmark{{Name: "BenchmarkB", NsPerOp: 1}}}
	if err := WriteDiff(io.Discard, oldRec, newRec); err == nil {
		t.Fatal("WriteDiff accepted records with no benchmarks in common")
	}
}

func TestRunDiffDegradesGracefully(t *testing.T) {
	// A fresh checkout has zero or one trajectory points; -diff must report
	// that and succeed so `make bench-diff` works from the first commit.
	for _, paths := range [][]string{nil, {"BENCH_only.json"}} {
		var b strings.Builder
		if err := runDiff(&b, paths); err != nil {
			t.Fatalf("runDiff(%v): %v", paths, err)
		}
		want := fmt.Sprintf("benchjson: need >=2 trajectory files, have %d\n", len(paths))
		if b.String() != want {
			t.Errorf("runDiff(%v) output = %q, want %q", paths, b.String(), want)
		}
	}
	// With two paths it proceeds to the real diff — a missing file is an error.
	if err := runDiff(io.Discard, []string{"no-such-a.json", "no-such-b.json"}); err == nil {
		t.Fatal("runDiff with unreadable files did not error")
	}
}

func TestDeltaGuardsZero(t *testing.T) {
	if got := delta(0, 5); got != "n/a" {
		t.Errorf("delta(0, 5) = %q, want n/a", got)
	}
	if got := delta(100, 110); got != "+10.0%" {
		t.Errorf("delta(100, 110) = %q", got)
	}
}

func TestGate(t *testing.T) {
	rec := &Record{Benchmarks: []Benchmark{
		{Pkg: "iothub", Name: "BenchmarkFleetSweep/workers=1", AllocsPerOp: 7552,
			Metrics: map[string]float64{"scenarios": 64}},
		{Pkg: "iothub", Name: "BenchmarkOther", AllocsPerOp: 10},
	}}
	var b strings.Builder
	if err := Gate(&b, rec, "FleetSweep/workers=1", 500); err != nil {
		t.Fatalf("within-budget gate failed: %v", err)
	}
	if !strings.Contains(b.String(), "gate ok") || !strings.Contains(b.String(), "118 allocs/scenario") {
		t.Errorf("gate output = %q", b.String())
	}
	if err := Gate(io.Discard, rec, "FleetSweep/workers=1", 100); err == nil {
		t.Fatal("over-budget gate passed")
	} else if !strings.Contains(err.Error(), "exceeds the pinned budget") {
		t.Errorf("over-budget error = %v", err)
	}
	if err := Gate(io.Discard, rec, "NoSuchBenchmark", 500); err == nil {
		t.Fatal("gate with no matching benchmark passed")
	}
	// A matching benchmark without the scenarios metric must fail loudly, not
	// silently check nothing.
	if err := Gate(io.Discard, rec, "BenchmarkOther", 500); err == nil {
		t.Fatal("gate without a scenarios metric passed")
	}
	bare := &Record{Benchmarks: []Benchmark{
		{Name: "BenchmarkFleetSweep/workers=1", Metrics: map[string]float64{"scenarios": 64}},
	}}
	if err := Gate(io.Discard, bare, "FleetSweep", 500); err == nil {
		t.Fatal("gate without -benchmem allocation data passed")
	}
}

func TestWorkerCount(t *testing.T) {
	for _, tc := range []struct {
		name string
		base string
		n    int
		ok   bool
	}{
		{"BenchmarkFleetSweep/workers=1", "BenchmarkFleetSweep", 1, true},
		{"BenchmarkFleetSweep/workers=4-8", "BenchmarkFleetSweep", 4, true},
		{"BenchmarkServiceSweep/workers=16-2", "BenchmarkServiceSweep", 16, true},
		{"BenchmarkFleetSweep", "", 0, false},
		{"BenchmarkX/workers=zero", "", 0, false},
	} {
		base, n, ok := workerCount(tc.name)
		if base != tc.base || n != tc.n || ok != tc.ok {
			t.Errorf("workerCount(%q) = (%q, %d, %v), want (%q, %d, %v)",
				tc.name, base, n, ok, tc.base, tc.n, tc.ok)
		}
	}
}

func TestWriteScaling(t *testing.T) {
	rec := &Record{Benchmarks: []Benchmark{
		{Pkg: "iothub", Name: "BenchmarkFleetSweep/workers=4-8", NsPerOp: 50},
		{Pkg: "iothub", Name: "BenchmarkFleetSweep/workers=1-8", NsPerOp: 100},
		{Pkg: "iothub", Name: "BenchmarkFleetSweep/workers=2-8", NsPerOp: 60},
		{Pkg: "iothub", Name: "BenchmarkUnrelated", NsPerOp: 5},
	}}
	var b strings.Builder
	WriteScaling(&b, rec)
	out := b.String()
	for _, want := range []string{
		"worker scaling: BenchmarkFleetSweep",
		"1.00x", // workers=1 reference
		"1.67x", // 100/60
		"2.00x", // 100/50
		"0.50",  // efficiency at 4 workers: 2.00/4
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scaling table missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "BenchmarkUnrelated") {
		t.Errorf("scaling table includes a non-worker benchmark:\n%s", out)
	}
	// Without a workers=1 reference the table degrades to n/a, not garbage.
	noRef := &Record{Benchmarks: []Benchmark{
		{Name: "BenchmarkX/workers=2", NsPerOp: 10},
	}}
	b.Reset()
	WriteScaling(&b, noRef)
	if !strings.Contains(b.String(), "n/a") {
		t.Errorf("reference-free scaling table = %q", b.String())
	}
}

func TestParseRejectsFailure(t *testing.T) {
	in := "BenchmarkX 1 5 ns/op\n--- FAIL: TestY (0.00s)\nFAIL\nFAIL\tiothub\t0.1s\n"
	if _, err := Parse(strings.NewReader(in)); err == nil {
		t.Fatal("Parse accepted output containing a FAIL marker")
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := Parse(strings.NewReader("PASS\nok  \tiothub\t0.1s\n")); err == nil {
		t.Fatal("Parse accepted output with no benchmark lines")
	}
}

func TestParseRejectsMalformedValue(t *testing.T) {
	if _, err := Parse(strings.NewReader(sampleOutput)); err == nil {
		t.Fatal("Parse accepted a benchmark line with a non-numeric value")
	}
}
