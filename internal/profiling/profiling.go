// Package profiling wires the standard -cpuprofile/-memprofile escape
// hatches into the CLIs, so a slow sweep can be explained with `go tool
// pprof` instead of guesswork. It is a thin veneer over runtime/pprof with
// the file handling and ordering (stop CPU profile before the heap
// snapshot) done once.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins the profiles selected by the (possibly empty) file paths and
// returns a stop function that finalizes them. The stop function is safe to
// call exactly once; with both paths empty it does nothing.
func Start(cpuPath, memPath string) (func() error, error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
		cpuFile = f
	}
	stop := func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
			defer f.Close()
			runtime.GC() // materialize the steady-state live set
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
		}
		return nil
	}
	return stop, nil
}
