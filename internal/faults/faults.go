// Package faults is a deterministic, seedable fault-schedule engine for the
// simulated hub. A Schedule is a list of Rules; each Rule injects one Kind of
// hardware fault (link frame corruption/loss, MCU crash, sensor stuck/slow,
// radio outage) on a Trigger that is count-, interval-, time-, or
// probability-based. Every run of the same Schedule with the same Seed
// produces the identical fault sequence: the engine keeps per-(rule, target)
// counters and PRNG streams whose evolution depends only on the order of
// probes, and the simulator's event order is itself deterministic.
//
// Two consumption styles exist:
//
//   - Probe-based faults (link corruption/loss, sensor stuck/slow) are asked
//     about at the moment the hardware operation happens: Fires(kind, target,
//     now) evaluates each matching rule's trigger and reports the first that
//     fires. Each probe advances the matching rules' counters exactly once,
//     so the fault pattern is a pure function of the probe sequence.
//   - Self-firing faults (MCU crash, radio outage) happen at wall-clock
//     instants independent of hub activity: TimedEvents expands their At and
//     Period triggers into concrete instants up to a horizon, which the hub
//     schedules as simulator events.
//
// An empty or nil Schedule is inert: Active reports false and the hub takes
// its fault-free fast path, byte-identical to a run with no schedule at all.
package faults

import (
	"fmt"
	"time"

	"iothub/internal/sim"
)

// Kind enumerates the injectable fault classes.
type Kind int

// Fault kinds, one per hardware failure mode the hub models.
const (
	// LinkCorrupt flips bits in a link frame; the CRC catches it and the
	// sender retransmits (each retry costs real wire time and energy).
	LinkCorrupt Kind = iota + 1
	// LinkLoss drops a link frame entirely; the sender times out waiting
	// for the acknowledgement before retransmitting.
	LinkLoss
	// MCUCrash reboots the MCU: in-RAM batch buffers are lost and must be
	// re-collected, queued work restarts after the reboot.
	MCUCrash
	// SensorStuck makes a read return the previous (stale) value; timing
	// and energy are unchanged, the staleness is accounted.
	SensorStuck
	// SensorSlow multiplies a read's bus transaction time by Factor.
	SensorSlow
	// RadioOutage takes an uplink radio off the air for Duration; bursts
	// queue (bounded) until it returns.
	RadioOutage
)

// String names the kind as ParseSchedule spells it.
func (k Kind) String() string {
	switch k {
	case LinkCorrupt:
		return "link-corrupt"
	case LinkLoss:
		return "link-loss"
	case MCUCrash:
		return "mcu-crash"
	case SensorStuck:
		return "sensor-stuck"
	case SensorSlow:
		return "sensor-slow"
	case RadioOutage:
		return "radio-outage"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Trigger decides when a rule fires. Exactly one style is typically set;
// when several are set any of them firing fires the rule.
type Trigger struct {
	// EveryNth fires on every Nth probe of the rule (count-triggered).
	EveryNth int
	// Period fires on the first probe at or after each multiple of Period
	// (interval-triggered). For self-firing kinds it fires exactly at each
	// multiple.
	Period time.Duration
	// At fires once at each listed instant (time-triggered).
	At []time.Duration
	// Prob fires each probe with this probability, drawn from the rule's
	// seeded PRNG stream (probabilistic but reproducible).
	Prob float64
}

func (t Trigger) empty() bool {
	return t.EveryNth <= 0 && t.Period <= 0 && len(t.At) == 0 && t.Prob <= 0
}

// Rule injects one fault kind on one target.
type Rule struct {
	Kind Kind
	// Target selects the hardware instance: "link", "mcu", "radio:main",
	// "radio:mcu", or a sensor ID like "S4". Empty matches every target
	// probed for the rule's kind.
	Target  string
	Trigger Trigger
	// Duration is the fault's length for MCUCrash (reboot time; zero means
	// the MCU's calibrated reboot time) and RadioOutage (off-air span).
	Duration time.Duration
	// Factor is the SensorSlow read-time multiplier (values below 1 are
	// clamped to 1).
	Factor float64
}

// Validate rejects rules that could never fire or are malformed.
func (r Rule) Validate() error {
	switch r.Kind {
	case LinkCorrupt, LinkLoss, MCUCrash, SensorStuck, SensorSlow, RadioOutage:
	default:
		return fmt.Errorf("unknown kind %d", int(r.Kind))
	}
	if r.Trigger.empty() {
		return fmt.Errorf("%v rule has no trigger", r.Kind)
	}
	if r.Trigger.EveryNth < 0 || r.Trigger.Period < 0 || r.Trigger.Prob < 0 || r.Trigger.Prob > 1 {
		return fmt.Errorf("%v rule has invalid trigger", r.Kind)
	}
	for i, at := range r.Trigger.At {
		if at < 0 {
			return fmt.Errorf("%v rule at[%d] negative", r.Kind, i)
		}
		if i > 0 && at < r.Trigger.At[i-1] {
			return fmt.Errorf("%v rule At instants not sorted", r.Kind)
		}
	}
	if r.Duration < 0 {
		return fmt.Errorf("%v rule negative duration", r.Kind)
	}
	if r.Kind == RadioOutage && r.Duration <= 0 {
		return fmt.Errorf("radio-outage rule needs for=<duration>")
	}
	return nil
}

// matches reports whether the rule applies to a probe of (kind, target).
func (r Rule) matches(kind Kind, target string) bool {
	return r.Kind == kind && (r.Target == "" || r.Target == target)
}

// Schedule is a complete fault plan: a seed plus an ordered rule list.
type Schedule struct {
	// Seed drives every probabilistic trigger. Runs with equal seeds and
	// equal probe sequences produce identical fault patterns.
	Seed int64
	// Rules are evaluated in order; the first firing rule wins a probe.
	Rules []Rule
}

// Active reports whether the schedule injects anything at all.
func (s *Schedule) Active() bool { return s != nil && len(s.Rules) > 0 }

// Validate checks every rule. Violations name the offending rule by its
// 1-based index, matching ParseSchedule's numbering.
func (s *Schedule) Validate() error {
	if s == nil {
		return nil
	}
	for i, r := range s.Rules {
		if err := r.Validate(); err != nil {
			return fmt.Errorf("faults: rule %d: %w", i+1, err)
		}
	}
	return nil
}

// splitmix64 is a tiny self-contained PRNG (Steele et al., "Fast splittable
// pseudorandom number generators"). Used instead of math/rand so the fault
// stream is stable across Go releases.
type splitmix64 struct{ state uint64 }

func (p *splitmix64) next() uint64 {
	p.state += 0x9e3779b97f4a7c15
	z := p.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float returns a uniform value in [0, 1).
func (p *splitmix64) float() float64 { return float64(p.next()>>11) / (1 << 53) }

// fnv1a hashes a target name into the PRNG seed mix.
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// ruleState is one rule's per-target trigger progress.
type ruleState struct {
	probes  int
	atIdx   int
	nextDue sim.Time // next Period boundary that has not fired yet
	rng     splitmix64
}

// Engine evaluates a Schedule deterministically. One Engine serves one
// simulation run; it is not safe for concurrent use (the simulator is
// single-threaded by design).
type Engine struct {
	schedule Schedule
	states   []map[string]*ruleState // per rule, per probed target
	// activations counts probe hits — rules Fires reported as firing. Timed
	// (self-firing) events are counted by the hub as it runs them.
	activations uint64
}

// Activations reports how many probes hit a firing rule so far.
func (e *Engine) Activations() uint64 {
	if e == nil {
		return 0
	}
	return e.activations
}

// NewEngine compiles a schedule. A nil or empty schedule returns a nil
// engine, which every method treats as "no faults".
func NewEngine(s *Schedule) (*Engine, error) {
	if !s.Active() {
		return nil, nil
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{schedule: *s, states: make([]map[string]*ruleState, len(s.Rules))}
	for i := range e.states {
		e.states[i] = make(map[string]*ruleState)
	}
	return e, nil
}

// HasKind reports whether any rule injects one of the given kinds. The hub
// uses it to keep fault-free layers on their exact fault-free code paths.
func (e *Engine) HasKind(kinds ...Kind) bool {
	if e == nil {
		return false
	}
	for _, r := range e.schedule.Rules {
		for _, k := range kinds {
			if r.Kind == k {
				return true
			}
		}
	}
	return false
}

// state returns the rule's progress for a target, creating it with a seed
// derived from (schedule seed, rule index, target name).
func (e *Engine) state(rule int, target string) *ruleState {
	st, ok := e.states[rule][target]
	if !ok {
		st = &ruleState{
			nextDue: sim.Time(e.schedule.Rules[rule].Trigger.Period),
			rng:     splitmix64{state: uint64(e.schedule.Seed) ^ (uint64(rule)+1)*0x9e3779b97f4a7c15 ^ fnv1a(target)},
		}
		e.states[rule][target] = st
	}
	return st
}

// Fires probes every rule matching (kind, target) at virtual instant now and
// returns the first rule that fires. Each matching rule's counters advance
// exactly once per probe, so the outcome is a deterministic function of the
// probe sequence.
func (e *Engine) Fires(kind Kind, target string, now sim.Time) (Rule, bool) {
	if e == nil {
		return Rule{}, false
	}
	hit := -1
	for i, r := range e.schedule.Rules {
		if !r.matches(kind, target) {
			continue
		}
		st := e.state(i, target)
		st.probes++
		fired := false
		if n := r.Trigger.EveryNth; n > 0 && st.probes%n == 0 {
			fired = true
		}
		if p := r.Trigger.Period; p > 0 && now >= st.nextDue {
			fired = true
			// Skip boundaries the probe sequence never visited.
			for st.nextDue <= now {
				st.nextDue = st.nextDue.Add(p)
			}
		}
		if st.atIdx < len(r.Trigger.At) && now >= sim.Time(r.Trigger.At[st.atIdx]) {
			fired = true
			st.atIdx++
		}
		if pr := r.Trigger.Prob; pr > 0 && st.rng.float() < pr {
			fired = true
		}
		if fired && hit < 0 {
			hit = i
		}
	}
	if hit < 0 {
		return Rule{}, false
	}
	e.activations++
	return e.schedule.Rules[hit], true
}

// TimedEvent is one concrete firing of a self-firing rule.
type TimedEvent struct {
	At   sim.Time
	Rule Rule
}

// TimedEvents expands every matching rule's At and Period triggers into
// concrete instants in (0, horizon]. Count- and probability-triggers do not
// apply to self-firing kinds and are ignored here.
func (e *Engine) TimedEvents(kind Kind, target string, horizon time.Duration) []TimedEvent {
	if e == nil || horizon <= 0 {
		return nil
	}
	var out []TimedEvent
	for _, r := range e.schedule.Rules {
		if !r.matches(kind, target) {
			continue
		}
		for _, at := range r.Trigger.At {
			if at > 0 && at <= horizon {
				out = append(out, TimedEvent{At: sim.Time(at), Rule: r})
			}
		}
		if p := r.Trigger.Period; p > 0 {
			for at := p; at <= horizon; at += p {
				out = append(out, TimedEvent{At: sim.Time(at), Rule: r})
			}
		}
	}
	// Insertion sort by instant keeps equal instants in rule order, matching
	// the scheduler's own deterministic tie-breaking.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].At < out[j-1].At; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
