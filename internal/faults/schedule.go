package faults

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParseSchedule builds a Schedule from the CLI's compact text form: a
// semicolon-separated list of items, each either "seed=N" or a rule
//
//	<kind>[:param=value[,param=value...]]
//
// with kinds link-corrupt, link-loss, mcu-crash, sensor-stuck, sensor-slow,
// radio-outage, and parameters
//
//	every=N       count trigger: fire every Nth probe
//	period=DUR    interval trigger: fire each DUR (Go duration syntax)
//	at=DUR        time trigger: fire once at DUR (repeatable)
//	prob=F        probability trigger in [0,1], drawn from the seed
//	for=DUR       fault length (mcu-crash reboot, radio-outage span)
//	factor=F      sensor-slow read-time multiplier
//	on=TARGET     target override ("link", "mcu", "radio:main", "S4", ...)
//
// Examples:
//
//	seed=7; link-corrupt:every=50
//	sensor-slow:on=S4,every=100,factor=3
//	mcu-crash:at=1500ms,for=200ms; radio-outage:at=500ms,for=300ms
//
// Kinds imply default targets: link faults hit "link", mcu-crash hits "mcu",
// radio-outage hits "radio:mcu" (the COM notification uplink), and sensor
// faults hit every sensor unless narrowed with on=.
// A malformed item is reported with its 1-based rule index and raw text, so
// one bad rule in a long schedule is easy to locate.
func ParseSchedule(spec string) (*Schedule, error) {
	s := &Schedule{}
	for _, item := range strings.Split(spec, ";") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(item, "seed="); ok {
			seed, err := strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: bad seed %q", rest)
			}
			s.Seed = seed
			continue
		}
		rule, err := parseRule(item)
		if err != nil {
			return nil, fmt.Errorf("faults: rule %d %q: %w", len(s.Rules)+1, item, err)
		}
		s.Rules = append(s.Rules, rule)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

func parseKind(name string) (Kind, error) {
	switch name {
	case "link-corrupt":
		return LinkCorrupt, nil
	case "link-loss":
		return LinkLoss, nil
	case "mcu-crash":
		return MCUCrash, nil
	case "sensor-stuck":
		return SensorStuck, nil
	case "sensor-slow":
		return SensorSlow, nil
	case "radio-outage":
		return RadioOutage, nil
	default:
		return 0, fmt.Errorf("unknown kind %q", name)
	}
}

// defaultTarget is the target a kind hits when on= is absent.
func defaultTarget(k Kind) string {
	switch k {
	case LinkCorrupt, LinkLoss:
		return "link"
	case MCUCrash:
		return "mcu"
	case RadioOutage:
		return "radio:mcu"
	default: // sensor kinds match every sensor
		return ""
	}
}

func parseRule(item string) (Rule, error) {
	name, params, _ := strings.Cut(item, ":")
	kind, err := parseKind(strings.TrimSpace(name))
	if err != nil {
		return Rule{}, err
	}
	rule := Rule{Kind: kind, Target: defaultTarget(kind)}
	if params != "" {
		for _, kv := range strings.Split(params, ",") {
			key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				return Rule{}, fmt.Errorf("parameter %q is not key=value", kv)
			}
			if err := applyParam(&rule, strings.TrimSpace(key), strings.TrimSpace(val)); err != nil {
				return Rule{}, err
			}
		}
	}
	if err := rule.Validate(); err != nil {
		return Rule{}, err
	}
	return rule, nil
}

func applyParam(rule *Rule, key, val string) error {
	switch key {
	case "every":
		n, err := strconv.Atoi(val)
		if err != nil || n < 1 {
			return fmt.Errorf("every=%q, want integer >= 1", val)
		}
		rule.Trigger.EveryNth = n
	case "period":
		d, err := time.ParseDuration(val)
		if err != nil || d <= 0 {
			return fmt.Errorf("period=%q, want positive duration", val)
		}
		rule.Trigger.Period = d
	case "at":
		d, err := time.ParseDuration(val)
		if err != nil || d < 0 {
			return fmt.Errorf("at=%q, want non-negative duration", val)
		}
		rule.Trigger.At = append(rule.Trigger.At, d)
	case "prob":
		p, err := strconv.ParseFloat(val, 64)
		if err != nil || p <= 0 || p > 1 {
			return fmt.Errorf("prob=%q, want value in (0,1]", val)
		}
		rule.Trigger.Prob = p
	case "for":
		d, err := time.ParseDuration(val)
		if err != nil || d <= 0 {
			return fmt.Errorf("for=%q, want positive duration", val)
		}
		rule.Duration = d
	case "factor":
		f, err := strconv.ParseFloat(val, 64)
		if err != nil || f <= 0 {
			return fmt.Errorf("factor=%q, want positive number", val)
		}
		rule.Factor = f
	case "on":
		if val == "" {
			return fmt.Errorf("on= needs a target")
		}
		rule.Target = val
	default:
		return fmt.Errorf("unknown parameter %q", key)
	}
	return nil
}
