package faults

import (
	"strings"
	"testing"
	"time"

	"iothub/internal/sim"
)

func TestInactiveSchedules(t *testing.T) {
	var nilSched *Schedule
	if nilSched.Active() {
		t.Error("nil schedule active")
	}
	if (&Schedule{Seed: 42}).Active() {
		t.Error("rule-less schedule active")
	}
	e, err := NewEngine(nil)
	if err != nil {
		t.Fatalf("NewEngine(nil): %v", err)
	}
	if e != nil {
		t.Error("nil schedule compiled to a live engine")
	}
	if _, ok := e.Fires(LinkCorrupt, "link", 0); ok {
		t.Error("nil engine fired")
	}
	if e.HasKind(LinkCorrupt) {
		t.Error("nil engine has kinds")
	}
	if evs := e.TimedEvents(MCUCrash, "mcu", time.Second); evs != nil {
		t.Errorf("nil engine timed events: %v", evs)
	}
}

func TestEveryNthTrigger(t *testing.T) {
	e, err := NewEngine(&Schedule{Rules: []Rule{
		{Kind: LinkCorrupt, Target: "link", Trigger: Trigger{EveryNth: 3}},
	}})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	var fired []int
	for i := 1; i <= 9; i++ {
		if _, ok := e.Fires(LinkCorrupt, "link", 0); ok {
			fired = append(fired, i)
		}
	}
	want := []int{3, 6, 9}
	if len(fired) != len(want) {
		t.Fatalf("fired on probes %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired on probes %v, want %v", fired, want)
		}
	}
}

func TestTargetsAreIndependent(t *testing.T) {
	e, err := NewEngine(&Schedule{Rules: []Rule{
		{Kind: SensorStuck, Trigger: Trigger{EveryNth: 2}}, // empty target: all sensors
	}})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	// Each target keeps its own counter: the second probe of each fires.
	for _, target := range []string{"S4", "S7"} {
		if _, ok := e.Fires(SensorStuck, target, 0); ok {
			t.Errorf("%s fired on first probe", target)
		}
		if _, ok := e.Fires(SensorStuck, target, 0); !ok {
			t.Errorf("%s did not fire on second probe", target)
		}
	}
	// A non-matching kind never fires.
	if _, ok := e.Fires(LinkLoss, "link", 0); ok {
		t.Error("unrelated kind fired")
	}
}

func TestAtTriggerFiresOncePerInstant(t *testing.T) {
	e, err := NewEngine(&Schedule{Rules: []Rule{
		{Kind: SensorSlow, Target: "S4", Factor: 3,
			Trigger: Trigger{At: []time.Duration{10 * time.Millisecond, 30 * time.Millisecond}}},
	}})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	times := []time.Duration{5, 10, 12, 30, 40} // ms; probes in time order
	var fired []time.Duration
	for _, ms := range times {
		now := sim.Time(ms * time.Millisecond)
		if r, ok := e.Fires(SensorSlow, "S4", now); ok {
			fired = append(fired, ms)
			if r.Factor != 3 {
				t.Errorf("fired rule factor = %v, want 3", r.Factor)
			}
		}
	}
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 30 {
		t.Errorf("fired at %v ms, want [10 30]", fired)
	}
}

func TestPeriodTriggerProbeBased(t *testing.T) {
	e, err := NewEngine(&Schedule{Rules: []Rule{
		{Kind: LinkLoss, Target: "link", Trigger: Trigger{Period: 100 * time.Millisecond}},
	}})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	fires := func(ms int) bool {
		_, ok := e.Fires(LinkLoss, "link", sim.Time(time.Duration(ms)*time.Millisecond))
		return ok
	}
	if fires(50) {
		t.Error("fired before first boundary")
	}
	if !fires(110) {
		t.Error("did not fire after first boundary")
	}
	if fires(150) {
		t.Error("re-fired inside the same period")
	}
	// A probe gap spanning several boundaries fires once, then re-arms.
	if !fires(450) {
		t.Error("did not fire after skipping boundaries")
	}
	if fires(460) {
		t.Error("re-fired after skip")
	}
	if !fires(510) {
		t.Error("did not fire at the next boundary after a skip")
	}
}

func TestProbTriggerDeterministicPerSeed(t *testing.T) {
	pattern := func(seed int64) []bool {
		e, err := NewEngine(&Schedule{Seed: seed, Rules: []Rule{
			{Kind: LinkCorrupt, Target: "link", Trigger: Trigger{Prob: 0.3}},
		}})
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		out := make([]bool, 200)
		for i := range out {
			_, out[i] = e.Fires(LinkCorrupt, "link", 0)
		}
		return out
	}
	a, b, c := pattern(1), pattern(1), pattern(2)
	hits := 0
	same := true
	diff := false
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
		if a[i] != c[i] {
			diff = true
		}
		if a[i] {
			hits++
		}
	}
	if !same {
		t.Error("same seed produced different fault patterns")
	}
	if !diff {
		t.Error("different seeds produced identical fault patterns")
	}
	if hits < 30 || hits > 90 {
		t.Errorf("prob=0.3 fired %d/200 probes, want roughly 60", hits)
	}
}

func TestTimedEventsExpansion(t *testing.T) {
	e, err := NewEngine(&Schedule{Rules: []Rule{
		{Kind: MCUCrash, Target: "mcu", Duration: 100 * time.Millisecond,
			Trigger: Trigger{At: []time.Duration{250 * time.Millisecond}}},
		{Kind: MCUCrash, Target: "mcu", Duration: 50 * time.Millisecond,
			Trigger: Trigger{Period: 400 * time.Millisecond}},
	}})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	evs := e.TimedEvents(MCUCrash, "mcu", time.Second)
	want := []time.Duration{250 * time.Millisecond, 400 * time.Millisecond, 800 * time.Millisecond}
	if len(evs) != len(want) {
		t.Fatalf("got %d events, want %d: %v", len(evs), len(want), evs)
	}
	for i, ev := range evs {
		if ev.At != sim.Time(want[i]) {
			t.Errorf("event %d at %v, want %v", i, ev.At, want[i])
		}
	}
	if evs[0].Rule.Duration != 100*time.Millisecond {
		t.Errorf("event 0 duration %v, want 100ms", evs[0].Rule.Duration)
	}
	// Horizon bounds expansion: nothing beyond it leaks out.
	if got := e.TimedEvents(MCUCrash, "mcu", 200*time.Millisecond); len(got) != 0 {
		t.Errorf("horizon 200ms produced %v", got)
	}
	if got := e.TimedEvents(RadioOutage, "radio:mcu", time.Second); len(got) != 0 {
		t.Errorf("non-matching kind produced %v", got)
	}
}

func TestValidateRejectsBadRules(t *testing.T) {
	bad := []Schedule{
		{Rules: []Rule{{Kind: Kind(99), Trigger: Trigger{EveryNth: 1}}}},
		{Rules: []Rule{{Kind: LinkCorrupt}}}, // no trigger
		{Rules: []Rule{{Kind: LinkCorrupt, Trigger: Trigger{Prob: 1.5}}}},
		{Rules: []Rule{{Kind: MCUCrash, Trigger: Trigger{At: []time.Duration{-1}}}}},
		{Rules: []Rule{{Kind: MCUCrash, Trigger: Trigger{At: []time.Duration{time.Second, time.Millisecond}}}}},
		{Rules: []Rule{{Kind: RadioOutage, Trigger: Trigger{EveryNth: 1}}}}, // no for=
	}
	for i, s := range bad {
		s := s
		if err := s.Validate(); err == nil {
			t.Errorf("schedule %d accepted: %+v", i, s.Rules)
		}
		if _, err := NewEngine(&s); err == nil {
			t.Errorf("engine %d compiled: %+v", i, s.Rules)
		}
	}
}

func TestParseSchedule(t *testing.T) {
	s, err := ParseSchedule("seed=7; link-corrupt:every=50; sensor-slow:on=S4,every=100,factor=3; mcu-crash:at=1500ms,for=200ms; radio-outage:at=500ms,for=300ms")
	if err != nil {
		t.Fatalf("ParseSchedule: %v", err)
	}
	if s.Seed != 7 {
		t.Errorf("seed = %d, want 7", s.Seed)
	}
	if len(s.Rules) != 4 {
		t.Fatalf("got %d rules, want 4", len(s.Rules))
	}
	r := s.Rules[0]
	if r.Kind != LinkCorrupt || r.Target != "link" || r.Trigger.EveryNth != 50 {
		t.Errorf("rule 0 = %+v", r)
	}
	r = s.Rules[1]
	if r.Kind != SensorSlow || r.Target != "S4" || r.Trigger.EveryNth != 100 || r.Factor != 3 {
		t.Errorf("rule 1 = %+v", r)
	}
	r = s.Rules[2]
	if r.Kind != MCUCrash || r.Target != "mcu" || r.Duration != 200*time.Millisecond ||
		len(r.Trigger.At) != 1 || r.Trigger.At[0] != 1500*time.Millisecond {
		t.Errorf("rule 2 = %+v", r)
	}
	r = s.Rules[3]
	if r.Kind != RadioOutage || r.Target != "radio:mcu" || r.Duration != 300*time.Millisecond {
		t.Errorf("rule 3 = %+v", r)
	}
}

func TestParseScheduleErrors(t *testing.T) {
	for _, spec := range []string{
		"seed=x",
		"warp-core:every=2",
		"link-corrupt:every=0",
		"link-corrupt:prob=2",
		"link-corrupt",         // no trigger
		"mcu-crash:at=-5ms",    // negative instant
		"radio-outage:every=3", // missing for=
		"sensor-slow:factor=0,every=1",
		"link-loss:bogus=1",
		"link-loss:every",
	} {
		if _, err := ParseSchedule(spec); err == nil {
			t.Errorf("ParseSchedule(%q) accepted", spec)
		}
	}
}

// A bad rule deep inside a long schedule is reported with its 1-based index
// and raw text, so the offending item is findable without bisecting the spec.
func TestParseScheduleErrorNamesRule(t *testing.T) {
	_, err := ParseSchedule("seed=7; link-corrupt:every=50; link-loss:prob=0.1; radio-outage:every=3")
	if err == nil {
		t.Fatal("bad schedule accepted")
	}
	msg := err.Error()
	for _, want := range []string{`rule 3`, `"radio-outage:every=3"`, "for=<duration>"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q does not mention %s", msg, want)
		}
	}
	// The seed item is not a rule and must not shift rule numbering.
	if strings.Contains(msg, "rule 4") {
		t.Errorf("error %q counts the seed item as a rule", msg)
	}
}
