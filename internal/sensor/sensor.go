// Package sensor models the ten physical sensors of the paper's Table I and
// provides deterministic synthetic signal generators in place of the real
// transducers (substitution documented in DESIGN.md).
//
// Each Spec carries the timing, power, bus, and data-format parameters the
// paper tabulates; the hub simulator charges energy and time from these
// numbers. The generators in synth.go produce the raw byte payloads a real
// sensor's data register would hold, so the driver-formatting step and the
// app-level algorithms operate on realistic inputs with known ground truth.
package sensor

import (
	"fmt"
	"time"
)

// ID names a sensor from Table I ("S1".."S10", plus "S10H" for the
// MCU-unfriendly high-resolution imager variant).
type ID string

// Sensor IDs from Table I.
const (
	Barometer     ID = "S1"
	Temperature   ID = "S2"
	Fingerprint   ID = "S3"
	Accelerometer ID = "S4"
	AirQuality    ID = "S5"
	Pulse         ID = "S6"
	Light         ID = "S7"
	Sound         ID = "S8"
	Distance      ID = "S9"
	LowResImage   ID = "S10"
	HighResImage  ID = "S10H"
)

// Bus is the input bus type a sensor attaches through.
type Bus int

// Bus types from Table I.
const (
	BusSPI Bus = iota + 1
	BusI2C
	BusTTLSerial
	BusAnalog
	BusCameraSerial
)

// String returns the Table I label for the bus.
func (b Bus) String() string {
	switch b {
	case BusSPI:
		return "SPI"
	case BusI2C:
		return "I2C"
	case BusTTLSerial:
		return "TTL Serial"
	case BusAnalog:
		return "Analog"
	case BusCameraSerial:
		return "Camera Serial"
	default:
		return fmt.Sprintf("Bus(%d)", int(b))
	}
}

// Spec is one row of Table I.
type Spec struct {
	ID   ID
	Name string
	Bus  Bus
	// ReadTime is the bus transaction time for one sample.
	ReadTime time.Duration
	// PowerMin/Typ/Max are the sensor's own draw in watts while being read.
	// The simulator charges PowerTyp.
	PowerMin, PowerTyp, PowerMax float64
	// DataType describes the formatted output ("Double", "Int*3", ...).
	DataType string
	// SampleBytes is the formatted output size of one sample.
	SampleBytes int
	// MaxRateHz is the sensor's maximum sampling rate (0 = single-shot).
	MaxRateHz float64
	// QoSRateHz is the application-required sampling rate (0 = single-shot,
	// one sample per window).
	QoSRateHz float64
	// MCUFriendly reports whether the sensor's driver fits the MCU
	// (§IV-C: only the high-resolution imager is MCU-unfriendly).
	MCUFriendly bool
}

func mw(v float64) float64 { return v / 1000 }

// specs is Table I. Power columns are converted from mW to W.
var specs = map[ID]Spec{
	Barometer: {
		ID: Barometer, Name: "Barometer", Bus: BusSPI,
		ReadTime: 37500 * time.Microsecond,
		PowerMin: mw(2.12), PowerTyp: mw(19.47), PowerMax: mw(28.93),
		DataType: "Double", SampleBytes: 8,
		MaxRateHz: 157, QoSRateHz: 10, MCUFriendly: true,
	},
	Temperature: {
		ID: Temperature, Name: "Temperature", Bus: BusI2C,
		ReadTime: 18750 * time.Microsecond,
		PowerMin: mw(1), PowerTyp: mw(13.5), PowerMax: mw(20),
		DataType: "Double", SampleBytes: 8,
		MaxRateHz: 120, QoSRateHz: 10, MCUFriendly: true,
	},
	Fingerprint: {
		ID: Fingerprint, Name: "Fingerprint", Bus: BusTTLSerial,
		ReadTime: 850 * time.Millisecond,
		PowerMin: mw(432), PowerTyp: mw(600), PowerMax: mw(900),
		DataType: "Signature", SampleBytes: 512,
		MaxRateHz: 0, QoSRateHz: 0, MCUFriendly: true,
	},
	Accelerometer: {
		ID: Accelerometer, Name: "Accelerometer", Bus: BusAnalog,
		ReadTime: 500 * time.Microsecond,
		PowerMin: mw(0.63), PowerTyp: mw(1.3), PowerMax: mw(1.75),
		DataType: "Int*3", SampleBytes: 12,
		MaxRateHz: 1e6, QoSRateHz: 1000, MCUFriendly: true,
	},
	AirQuality: {
		ID: AirQuality, Name: "Air Quality", Bus: BusI2C,
		ReadTime: 960 * time.Microsecond,
		PowerMin: mw(1.2), PowerTyp: mw(30), PowerMax: mw(46),
		DataType: "Int", SampleBytes: 4,
		MaxRateHz: 400, QoSRateHz: 200, MCUFriendly: true,
	},
	Pulse: {
		ID: Pulse, Name: "Pulse", Bus: BusAnalog,
		ReadTime: 100 * time.Microsecond,
		PowerMin: mw(9.9), PowerTyp: mw(15), PowerMax: mw(22),
		DataType: "Int", SampleBytes: 4,
		MaxRateHz: 1e6, QoSRateHz: 1000, MCUFriendly: true,
	},
	Light: {
		ID: Light, Name: "Light", Bus: BusI2C,
		ReadTime: 100 * time.Microsecond,
		PowerMin: mw(16.8), PowerTyp: mw(21), PowerMax: mw(25.2),
		DataType: "Double", SampleBytes: 8,
		MaxRateHz: 400e3, QoSRateHz: 1000, MCUFriendly: true,
	},
	Sound: {
		ID: Sound, Name: "Sound", Bus: BusAnalog,
		ReadTime: 100 * time.Microsecond,
		PowerMin: mw(16), PowerTyp: mw(40), PowerMax: mw(96),
		DataType: "Int", SampleBytes: 4,
		MaxRateHz: 1e6, QoSRateHz: 1000, MCUFriendly: true,
	},
	Distance: {
		ID: Distance, Name: "Distance", Bus: BusAnalog,
		ReadTime: 200 * time.Microsecond,
		PowerMin: mw(120), PowerTyp: mw(150), PowerMax: mw(175),
		DataType: "Double", SampleBytes: 8,
		MaxRateHz: 5000, QoSRateHz: 1000, MCUFriendly: true,
	},
	LowResImage: {
		ID: LowResImage, Name: "Low-Res. Img", Bus: BusTTLSerial,
		ReadTime: 183640 * time.Microsecond,
		PowerMin: mw(30), PowerTyp: mw(125), PowerMax: mw(140),
		DataType: "RGB", SampleBytes: 24380,
		MaxRateHz: 0, QoSRateHz: 0, MCUFriendly: true,
	},
	HighResImage: {
		ID: HighResImage, Name: "High-Res. Img", Bus: BusCameraSerial,
		ReadTime: 500 * time.Millisecond,
		PowerMin: mw(382), PowerTyp: mw(425), PowerMax: mw(700),
		DataType: "RGB", SampleBytes: 619 * 1024,
		MaxRateHz: 0, QoSRateHz: 0, MCUFriendly: false,
	},
}

// Lookup returns the Table I spec for id.
func Lookup(id ID) (Spec, error) {
	sp, ok := specs[id]
	if !ok {
		return Spec{}, fmt.Errorf("sensor: unknown id %q", id)
	}
	return sp, nil
}

// All returns the Table I specs in ID order (S1..S10, S10H).
func All() []Spec {
	order := []ID{
		Barometer, Temperature, Fingerprint, Accelerometer, AirQuality,
		Pulse, Light, Sound, Distance, LowResImage, HighResImage,
	}
	out := make([]Spec, 0, len(order))
	for _, id := range order {
		out = append(out, specs[id])
	}
	return out
}

// SamplesPerWindow reports how many samples the sensor delivers in one QoS
// window of the given length: QoSRateHz × window, or a single sample for
// single-shot sensors (fingerprint, imagers).
func (s Spec) SamplesPerWindow(window time.Duration) int {
	if s.QoSRateHz <= 0 {
		return 1
	}
	n := int(s.QoSRateHz * window.Seconds())
	if n < 1 {
		n = 1
	}
	return n
}

// SamplePeriod is the interval between samples at the QoS rate, or the whole
// window for single-shot sensors.
func (s Spec) SamplePeriod(window time.Duration) time.Duration {
	n := s.SamplesPerWindow(window)
	return window / time.Duration(n)
}
