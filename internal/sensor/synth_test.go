package sensor

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeF64(t *testing.T) {
	f := func(v float64) bool {
		got, err := DecodeF64(EncodeF64(v))
		if err != nil {
			return false
		}
		return got == v || (math.IsNaN(got) && math.IsNaN(v))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeDecodeI32(t *testing.T) {
	f := func(v int32) bool {
		got, err := DecodeI32(EncodeI32(v))
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeDecodeVec3(t *testing.T) {
	f := func(x, y, z int32) bool {
		got, err := DecodeVec3(EncodeVec3(Vec3{x, y, z}))
		return err == nil && got == (Vec3{x, y, z})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeShortBuffers(t *testing.T) {
	if _, err := DecodeF64(make([]byte, 7)); err == nil {
		t.Error("DecodeF64 short buffer: want error")
	}
	if _, err := DecodeI32(make([]byte, 3)); err == nil {
		t.Error("DecodeI32 short buffer: want error")
	}
	if _, err := DecodeVec3(make([]byte, 11)); err == nil {
		t.Error("DecodeVec3 short buffer: want error")
	}
	if _, err := DecodePCM(make([]byte, 1)); err == nil {
		t.Error("DecodePCM short buffer: want error")
	}
}

func TestAccelWalkDeterministic(t *testing.T) {
	a := NewAccelWalk(42, 1000, 2)
	b := NewAccelWalk(42, 1000, 2)
	for i := 0; i < 100; i++ {
		if !bytes.Equal(a.Sample(i), b.Sample(i)) {
			t.Fatalf("sample %d differs between same-seed generators", i)
		}
	}
	// Pure function of index: revisiting an index yields the same bytes.
	s50 := a.Sample(50)
	a.Sample(99)
	if !bytes.Equal(a.Sample(50), s50) {
		t.Error("Sample(50) changed after reading later indices")
	}
}

func TestAccelWalkTrueSteps(t *testing.T) {
	a := NewAccelWalk(1, 1000, 2)
	if got := a.TrueSteps(1000); got != 2 {
		t.Errorf("TrueSteps(1000) = %d, want 2", got)
	}
	if got := a.TrueSteps(5000); got != 10 {
		t.Errorf("TrueSteps(5000) = %d, want 10", got)
	}
}

func TestAccelWalkSampleShape(t *testing.T) {
	a := NewAccelWalk(7, 1000, 2)
	v, err := DecodeVec3(a.Sample(0))
	if err != nil {
		t.Fatalf("DecodeVec3: %v", err)
	}
	if v.Z < 500 || v.Z > 1500 {
		t.Errorf("Z = %d, want near 1000 milli-g", v.Z)
	}
}

func TestAccelQuakeBurstRaisesAmplitude(t *testing.T) {
	q := NewAccelQuake(3, 1000, 500, 200)
	quiet, loud := 0.0, 0.0
	for i := 0; i < 200; i++ {
		v, err := DecodeVec3(q.Sample(i))
		if err != nil {
			t.Fatal(err)
		}
		quiet += math.Abs(float64(v.Z - 1000))
	}
	for i := 500; i < 700; i++ {
		v, err := DecodeVec3(q.Sample(i))
		if err != nil {
			t.Fatal(err)
		}
		loud += math.Abs(float64(v.Z - 1000))
	}
	if loud < 4*quiet {
		t.Errorf("burst amplitude %.0f not ≫ quiet %.0f", loud, quiet)
	}
	if !q.HasEvent(1000) {
		t.Error("HasEvent(1000) = false, want true")
	}
	if q.HasEvent(400) {
		t.Error("HasEvent(400) = true, want false (burst at 500)")
	}
	noEvent := NewAccelQuake(3, 1000, -1, 0)
	if noEvent.HasEvent(10000) {
		t.Error("no-event generator reports event")
	}
}

func TestECGWaveBeatCount(t *testing.T) {
	e := NewECGWave(9, 1000, 60)
	// 60 BPM at 1 kHz: peaks at 1000, 2000, ... so 4 full beats in 5000
	// samples (peak 0 at sample 1000).
	got := e.TrueBeats(5000)
	if got < 4 || got > 5 {
		t.Errorf("TrueBeats(5000) = %d, want 4..5", got)
	}
}

func TestECGWaveIrregularStretchesInterval(t *testing.T) {
	reg := NewECGWave(9, 1000, 60)
	irr := NewECGWave(9, 1000, 60, 2)
	if reg.peakIndex(2) >= irr.peakIndex(2) {
		t.Errorf("irregular beat 2 at %d not later than regular %d",
			irr.peakIndex(2), reg.peakIndex(2))
	}
}

func TestECGWavePeaksVisible(t *testing.T) {
	e := NewECGWave(11, 1000, 60)
	p := e.peakIndex(0)
	vPeak, err := DecodeI32(e.Sample(p))
	if err != nil {
		t.Fatal(err)
	}
	vBase, err := DecodeI32(e.Sample(p + 200))
	if err != nil {
		t.Fatal(err)
	}
	if vPeak < vBase+200 {
		t.Errorf("peak %d not prominent over baseline %d", vPeak, vBase)
	}
}

func TestAudioSpeechWordAt(t *testing.T) {
	a := NewAudioSpeech(5, 8000, 100, 50, WordYes, WordNo)
	if got := a.WordAt(10); got != WordYes {
		t.Errorf("WordAt(10) = %v, want yes", got)
	}
	if got := a.WordAt(120); got != WordSilence {
		t.Errorf("WordAt(120) = %v, want silence (gap)", got)
	}
	if got := a.WordAt(160); got != WordNo {
		t.Errorf("WordAt(160) = %v, want no", got)
	}
	if got := a.WordAt(10_000); got != WordSilence {
		t.Errorf("WordAt(10000) = %v, want silence", got)
	}
}

func TestAudioSpeechSampleSizeAndEnergy(t *testing.T) {
	a := NewAudioSpeech(5, 8000, 200, 100, WordStop)
	if got := len(a.Sample(0)); got != 6 {
		t.Fatalf("sample size = %d, want 6", got)
	}
	var inWord, inGap float64
	for i := 0; i < 200; i++ {
		v, err := DecodePCM(a.Sample(i))
		if err != nil {
			t.Fatal(err)
		}
		inWord += math.Abs(float64(v))
	}
	for i := 200; i < 300; i++ {
		v, err := DecodePCM(a.Sample(i))
		if err != nil {
			t.Fatal(err)
		}
		inGap += math.Abs(float64(v))
	}
	if inWord < 10*inGap {
		t.Errorf("word energy %.0f not ≫ gap energy %.0f", inWord, inGap)
	}
}

func TestAudioWordString(t *testing.T) {
	if WordYes.String() != "yes" || WordGo.String() != "go" || WordSilence.String() != "" {
		t.Error("AudioWord labels wrong")
	}
	if AudioWord(99).String() != "word(99)" {
		t.Error("unknown AudioWord label wrong")
	}
}

func TestScalarBaselines(t *testing.T) {
	cases := []struct {
		kind ScalarKind
		lo   float64
		hi   float64
	}{
		{ScalarPressure, 100000, 103000},
		{ScalarTemperature, 15, 30},
		{ScalarAirQuality, 300, 600},
		{ScalarLight, 100, 600},
		{ScalarSoundLevel, 20, 90},
		{ScalarDistance, 1, 3},
	}
	for _, c := range cases {
		s := NewScalar(77, c.kind)
		v := s.ValueAt(10)
		if v < c.lo || v > c.hi {
			t.Errorf("kind %d value %v outside [%v,%v]", c.kind, v, c.lo, c.hi)
		}
	}
}

func TestScalarEncoding(t *testing.T) {
	f := NewScalar(1, ScalarPressure)
	if got := len(f.Sample(0)); got != 8 {
		t.Errorf("pressure sample = %d bytes, want 8", got)
	}
	i := NewScalar(1, ScalarAirQuality)
	if got := len(i.Sample(0)); got != 4 {
		t.Errorf("air-quality sample = %d bytes, want 4", got)
	}
}

func TestScalarPureFunctionOfIndex(t *testing.T) {
	s := NewScalar(13, ScalarTemperature)
	v5 := s.ValueAt(5)
	s.ValueAt(50)
	if s.ValueAt(5) != v5 {
		t.Error("ValueAt(5) changed after reading later indices")
	}
}

func TestFrameDeterministicAndSized(t *testing.T) {
	f := NewFrame(21, 32, 24)
	a, b := f.RGBAt(3), f.RGBAt(3)
	if !bytes.Equal(a, b) {
		t.Error("RGBAt not deterministic")
	}
	if len(a) != 32*24*3 {
		t.Errorf("frame size = %d, want %d", len(a), 32*24*3)
	}
	if bytes.Equal(f.RGBAt(0), f.RGBAt(1)) {
		t.Error("consecutive frames identical, want seeded variation")
	}
}

func TestFixedSizePadsAndTruncates(t *testing.T) {
	f := NewFrame(1, 8, 8) // 192 bytes
	pad := FixedSize{Src: f, N: 300}
	if got := len(pad.Sample(0)); got != 300 {
		t.Errorf("padded size = %d, want 300", got)
	}
	trunc := FixedSize{Src: f, N: 100}
	if got := len(trunc.Sample(0)); got != 100 {
		t.Errorf("truncated size = %d, want 100", got)
	}
	exact := FixedSize{Src: f, N: 192}
	if got := len(exact.Sample(0)); got != 192 {
		t.Errorf("exact size = %d, want 192", got)
	}
}

func TestSignatureNearTemplateSameFingerFarOtherwise(t *testing.T) {
	src := NewSignature(4, 1)
	tmpl1 := FingerTemplate(1)
	tmpl2 := FingerTemplate(2)
	scan := src.Sample(0)
	d1 := hamming(scan, tmpl1)
	d2 := hamming(scan, tmpl2)
	if d1*10 > d2 {
		t.Errorf("same-finger distance %d not ≪ other-finger %d", d1, d2)
	}
	if got := len(scan); got != 512 {
		t.Errorf("signature size = %d, want 512", got)
	}
}

func TestDefaultSourceCoversAllSensors(t *testing.T) {
	for _, sp := range All() {
		src, err := DefaultSource(sp.ID, 1)
		if err != nil {
			t.Fatalf("DefaultSource(%s): %v", sp.ID, err)
		}
		got := len(src.Sample(0))
		// Non-fixed sources must match the spec size exactly for the data
		// volumes of Table II to come out right; image sources are wrapped.
		if got != sp.SampleBytes && sp.ID != Accelerometer {
			t.Errorf("%s default sample = %d bytes, want %d", sp.ID, got, sp.SampleBytes)
		}
	}
	if _, err := DefaultSource("S99", 1); err == nil {
		t.Error("DefaultSource(S99) succeeded, want error")
	}
}

func hamming(a, b []byte) int {
	d := 0
	for i := range a {
		x := a[i] ^ b[i]
		for x != 0 {
			d += int(x & 1)
			x >>= 1
		}
	}
	return d
}
