package sensor

import (
	"testing"
	"time"
)

func mustLookup(t *testing.T, id ID) Spec {
	t.Helper()
	sp, err := Lookup(id)
	if err != nil {
		t.Fatalf("Lookup(%s): %v", id, err)
	}
	return sp
}

func TestLookupAllTableIRows(t *testing.T) {
	ids := []ID{
		Barometer, Temperature, Fingerprint, Accelerometer, AirQuality,
		Pulse, Light, Sound, Distance, LowResImage, HighResImage,
	}
	for _, id := range ids {
		sp, err := Lookup(id)
		if err != nil {
			t.Fatalf("Lookup(%s): %v", id, err)
		}
		if sp.ID != id {
			t.Errorf("Lookup(%s).ID = %s", id, sp.ID)
		}
		if sp.ReadTime <= 0 {
			t.Errorf("%s ReadTime = %v, want > 0", id, sp.ReadTime)
		}
		if sp.SampleBytes <= 0 {
			t.Errorf("%s SampleBytes = %d, want > 0", id, sp.SampleBytes)
		}
		if !(sp.PowerMin <= sp.PowerTyp && sp.PowerTyp <= sp.PowerMax) {
			t.Errorf("%s power ordering min=%v typ=%v max=%v", id, sp.PowerMin, sp.PowerTyp, sp.PowerMax)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("S99"); err == nil {
		t.Fatal("Lookup(S99) succeeded, want error")
	}
}

func TestOnlyHighResImageIsMCUUnfriendly(t *testing.T) {
	for _, sp := range All() {
		want := sp.ID != HighResImage
		if sp.MCUFriendly != want {
			t.Errorf("%s MCUFriendly = %v, want %v", sp.ID, sp.MCUFriendly, want)
		}
	}
}

func TestAllOrderAndCount(t *testing.T) {
	all := All()
	if len(all) != 11 {
		t.Fatalf("All() len = %d, want 11", len(all))
	}
	if all[0].ID != Barometer || all[9].ID != LowResImage || all[10].ID != HighResImage {
		t.Errorf("All() order wrong: first=%s", all[0].ID)
	}
}

func TestSamplesPerWindowMatchesQoS(t *testing.T) {
	window := time.Second
	cases := map[ID]int{
		Accelerometer: 1000,
		Barometer:     10,
		Temperature:   10,
		AirQuality:    200,
		Light:         1000,
		Sound:         1000,
		Pulse:         1000,
		Distance:      1000,
		Fingerprint:   1, // single-shot
		LowResImage:   1, // single-shot
	}
	for id, want := range cases {
		sp := mustLookup(t, id)
		if got := sp.SamplesPerWindow(window); got != want {
			t.Errorf("%s SamplesPerWindow = %d, want %d", id, got, want)
		}
	}
}

func TestSamplePeriod(t *testing.T) {
	sp := mustLookup(t, Accelerometer)
	if got := sp.SamplePeriod(time.Second); got != time.Millisecond {
		t.Errorf("accel SamplePeriod = %v, want 1ms", got)
	}
	fp := mustLookup(t, Fingerprint)
	if got := fp.SamplePeriod(time.Second); got != time.Second {
		t.Errorf("fingerprint SamplePeriod = %v, want 1s", got)
	}
}

func TestSampleBytesMatchTableII(t *testing.T) {
	// Table II's per-app sensor-data volumes decompose into these sizes.
	cases := map[ID]int{
		Barometer:     8,
		Temperature:   8,
		Fingerprint:   512,
		Accelerometer: 12,
		AirQuality:    4,
		Pulse:         4,
		Light:         8,
		Sound:         4,
		Distance:      8,
		LowResImage:   24380, // 23.81 KB, Table II row A9
	}
	for id, want := range cases {
		if got := mustLookup(t, id).SampleBytes; got != want {
			t.Errorf("%s SampleBytes = %d, want %d", id, got, want)
		}
	}
}

func TestBusString(t *testing.T) {
	cases := map[Bus]string{
		BusSPI:          "SPI",
		BusI2C:          "I2C",
		BusTTLSerial:    "TTL Serial",
		BusAnalog:       "Analog",
		BusCameraSerial: "Camera Serial",
		Bus(9):          "Bus(9)",
	}
	for b, want := range cases {
		if got := b.String(); got != want {
			t.Errorf("Bus(%d).String() = %q, want %q", int(b), got, want)
		}
	}
}

func TestLookupUnknownReturnsError(t *testing.T) {
	if _, err := Lookup("S99"); err == nil {
		t.Error("Lookup(S99) returned no error")
	}
}
