package sensor

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
)

// Source produces the raw formatted samples one sensor delivers to an app.
// Sample(i) is the i-th sample since the start of the run; implementations
// are deterministic, so the same index always yields the same bytes.
type Source interface {
	Sample(i int) []byte
}

// Encoding helpers shared by generators and app-side drivers. All sensors use
// little-endian register layouts.

// EncodeF64 formats a float64 sample ("Double" sensors).
func EncodeF64(v float64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, math.Float64bits(v))
	return b
}

// DecodeF64 parses a float64 sample.
func DecodeF64(b []byte) (float64, error) {
	if len(b) < 8 {
		return 0, fmt.Errorf("sensor: double sample is %d bytes, want 8", len(b))
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b)), nil
}

// EncodeI32 formats an int32 sample ("Int" sensors).
func EncodeI32(v int32) []byte {
	b := make([]byte, 4)
	binary.LittleEndian.PutUint32(b, uint32(v))
	return b
}

// DecodeI32 parses an int32 sample.
func DecodeI32(b []byte) (int32, error) {
	if len(b) < 4 {
		return 0, fmt.Errorf("sensor: int sample is %d bytes, want 4", len(b))
	}
	return int32(binary.LittleEndian.Uint32(b)), nil
}

// Vec3 is a three-axis integer sample (accelerometer, "Int*3").
type Vec3 struct{ X, Y, Z int32 }

// EncodeVec3 formats a 12-byte three-axis sample.
func EncodeVec3(v Vec3) []byte {
	b := make([]byte, 12)
	binary.LittleEndian.PutUint32(b[0:], uint32(v.X))
	binary.LittleEndian.PutUint32(b[4:], uint32(v.Y))
	binary.LittleEndian.PutUint32(b[8:], uint32(v.Z))
	return b
}

// DecodeVec3 parses a 12-byte three-axis sample.
func DecodeVec3(b []byte) (Vec3, error) {
	if len(b) < 12 {
		return Vec3{}, fmt.Errorf("sensor: vec3 sample is %d bytes, want 12", len(b))
	}
	return Vec3{
		X: int32(binary.LittleEndian.Uint32(b[0:])),
		Y: int32(binary.LittleEndian.Uint32(b[4:])),
		Z: int32(binary.LittleEndian.Uint32(b[8:])),
	}, nil
}

// AccelWalk generates accelerometer samples of a person walking: gravity on
// Z, a vertical oscillation at StepHz whose positive-going zero crossings are
// steps, plus seeded noise. Units are milli-g, matching the ADXL335's scaled
// register output.
type AccelWalk struct {
	RateHz    float64 // sampling rate
	StepHz    float64 // steps per second
	AmplMilli float64 // oscillation amplitude, milli-g
	Noise     float64 // noise stddev, milli-g
	rng       *rand.Rand
	noiseAt   int
	noiseVals []float64
}

// NewAccelWalk returns a deterministic walking signal.
func NewAccelWalk(seed int64, rateHz, stepHz float64) *AccelWalk {
	return &AccelWalk{
		RateHz:    rateHz,
		StepHz:    stepHz,
		AmplMilli: 250,
		Noise:     20,
		rng:       rand.New(rand.NewSource(seed)),
	}
}

// noise returns the i-th noise value, memoized so Sample is a pure function
// of its index even though the underlying generator is sequential.
func (a *AccelWalk) noise(i int) float64 {
	for a.noiseAt <= i {
		a.noiseVals = append(a.noiseVals, a.rng.NormFloat64()*a.Noise)
		a.noiseAt++
	}
	return a.noiseVals[i]
}

// Sample returns the 12-byte register image of sample i.
func (a *AccelWalk) Sample(i int) []byte {
	t := float64(i) / a.RateHz
	z := 1000 + a.AmplMilli*math.Sin(2*math.Pi*a.StepHz*t) + a.noise(i)
	x := 0.3 * a.AmplMilli * math.Sin(2*math.Pi*a.StepHz*t+math.Pi/3)
	y := 0.2 * a.AmplMilli * math.Cos(2*math.Pi*a.StepHz*t)
	return EncodeVec3(Vec3{X: int32(x), Y: int32(y), Z: int32(z)})
}

// TrueSteps reports the number of steps contained in the first n samples.
func (a *AccelWalk) TrueSteps(n int) int {
	return int(a.StepHz * float64(n) / a.RateHz)
}

var _ Source = (*AccelWalk)(nil)

// AccelQuake generates accelerometer background noise with an optional
// earthquake burst (high-amplitude shaking) starting at BurstStart for
// BurstLen samples.
type AccelQuake struct {
	RateHz     float64
	BurstStart int
	BurstLen   int
	rng        *rand.Rand
	noiseAt    int
	noiseVals  []float64
}

// NewAccelQuake returns a deterministic seismic signal. burstStart < 0 means
// no event.
func NewAccelQuake(seed int64, rateHz float64, burstStart, burstLen int) *AccelQuake {
	return &AccelQuake{
		RateHz:     rateHz,
		BurstStart: burstStart,
		BurstLen:   burstLen,
		rng:        rand.New(rand.NewSource(seed)),
	}
}

func (q *AccelQuake) noise(i int) float64 {
	for q.noiseAt <= i {
		q.noiseVals = append(q.noiseVals, q.rng.NormFloat64())
		q.noiseAt++
	}
	return q.noiseVals[i]
}

// Sample returns the 12-byte register image of sample i.
func (q *AccelQuake) Sample(i int) []byte {
	base := q.noise(i) * 5 // quiescent ground noise, milli-g
	if q.BurstStart >= 0 && i >= q.BurstStart && i < q.BurstStart+q.BurstLen {
		t := float64(i-q.BurstStart) / q.RateHz
		base += 400 * math.Exp(-t*2) * math.Sin(2*math.Pi*12*t)
	}
	return EncodeVec3(Vec3{X: int32(base), Y: int32(base / 2), Z: int32(1000 + base)})
}

// HasEvent reports whether the first n samples contain the burst.
func (q *AccelQuake) HasEvent(n int) bool {
	return q.BurstStart >= 0 && q.BurstStart < n
}

var _ Source = (*AccelQuake)(nil)

// ECGWave generates a pulse-sensor waveform: an R-peak spike train at BPM
// with baseline wander and noise. Indices listed in Irregular have their
// preceding RR interval stretched by 50%, which the heartbeat app must flag.
type ECGWave struct {
	RateHz    float64
	BPM       float64
	Irregular map[int]bool // beat index -> irregular
	rng       *rand.Rand
	peaks     []int // sample indices of R peaks, grown on demand
	noiseAt   int
	noiseVals []float64
}

// NewECGWave returns a deterministic ECG-like signal. irregularBeats lists
// beat ordinals whose RR interval is stretched.
func NewECGWave(seed int64, rateHz, bpm float64, irregularBeats ...int) *ECGWave {
	irr := make(map[int]bool, len(irregularBeats))
	for _, b := range irregularBeats {
		irr[b] = true
	}
	return &ECGWave{
		RateHz:    rateHz,
		BPM:       bpm,
		Irregular: irr,
		rng:       rand.New(rand.NewSource(seed)),
	}
}

func (e *ECGWave) noise(i int) float64 {
	for e.noiseAt <= i {
		e.noiseVals = append(e.noiseVals, e.rng.NormFloat64()*8)
		e.noiseAt++
	}
	return e.noiseVals[i]
}

// peakIndex returns the sample index of the k-th R peak.
func (e *ECGWave) peakIndex(k int) int {
	rr := e.RateHz * 60 / e.BPM
	for len(e.peaks) <= k {
		beat := len(e.peaks)
		interval := rr
		if e.Irregular[beat] {
			interval = rr * 1.5
		}
		prev := 0
		if beat > 0 {
			prev = e.peaks[beat-1]
		}
		e.peaks = append(e.peaks, prev+int(interval))
	}
	return e.peaks[k]
}

// Sample returns the 4-byte register image of sample i (ADC counts).
func (e *ECGWave) Sample(i int) []byte {
	v := 512 + 30*math.Sin(2*math.Pi*0.3*float64(i)/e.RateHz) + e.noise(i)
	// Superimpose the nearest R peak as a narrow triangular spike.
	for k := 0; ; k++ {
		p := e.peakIndex(k)
		if p > i+int(e.RateHz/10) {
			break
		}
		d := math.Abs(float64(i - p))
		width := e.RateHz / 50 // 20 ms half-width
		if d < width {
			v += 400 * (1 - d/width)
		}
	}
	return EncodeI32(int32(v))
}

// TrueBeats reports how many R peaks fall in the first n samples.
func (e *ECGWave) TrueBeats(n int) int {
	count := 0
	for k := 0; ; k++ {
		if e.peakIndex(k) >= n {
			return count
		}
		count++
	}
}

var _ Source = (*ECGWave)(nil)

// AudioWord is a known utterance the speech generator can produce.
type AudioWord int

// The keyword vocabulary of the speech-to-text workload.
const (
	WordSilence AudioWord = iota
	WordYes
	WordNo
	WordStop
	WordGo
)

// String returns the transcript token for the word.
func (w AudioWord) String() string {
	switch w {
	case WordSilence:
		return ""
	case WordYes:
		return "yes"
	case WordNo:
		return "no"
	case WordStop:
		return "stop"
	case WordGo:
		return "go"
	default:
		return fmt.Sprintf("word(%d)", int(w))
	}
}

// wordFormants gives each vocabulary word a distinct two-formant signature.
var wordFormants = map[AudioWord][2]float64{
	WordYes:  {320, 1900},
	WordNo:   {450, 900},
	WordStop: {600, 1400},
	WordGo:   {250, 700},
}

// AudioSpeech generates a sound-sensor stream: a sequence of Words, each
// Spoken for WordLen samples with gaps of silence. Samples are 6 bytes
// (three 16-bit channels) to match Table II's A11 data volume.
type AudioSpeech struct {
	RateHz  float64
	Words   []AudioWord
	WordLen int // samples per word
	GapLen  int // silence samples between words
	rng     *rand.Rand
	nAt     int
	nVals   []float64
}

// NewAudioSpeech returns a deterministic utterance sequence.
func NewAudioSpeech(seed int64, rateHz float64, wordLen, gapLen int, words ...AudioWord) *AudioSpeech {
	return &AudioSpeech{
		RateHz:  rateHz,
		Words:   words,
		WordLen: wordLen,
		GapLen:  gapLen,
		rng:     rand.New(rand.NewSource(seed)),
	}
}

func (a *AudioSpeech) noise(i int) float64 {
	for a.nAt <= i {
		a.nVals = append(a.nVals, a.rng.NormFloat64()*20)
		a.nAt++
	}
	return a.nVals[i]
}

// WordAt reports which word sample i belongs to (WordSilence in gaps or
// beyond the utterance list).
func (a *AudioSpeech) WordAt(i int) AudioWord {
	span := a.WordLen + a.GapLen
	if span <= 0 {
		return WordSilence
	}
	idx := i / span
	if idx >= len(a.Words) {
		return WordSilence
	}
	if i%span >= a.WordLen {
		return WordSilence
	}
	return a.Words[idx]
}

// PCMAt returns the scalar PCM value of sample i.
func (a *AudioSpeech) PCMAt(i int) float64 {
	w := a.WordAt(i)
	v := a.noise(i)
	if w != WordSilence {
		f := wordFormants[w]
		t := float64(i) / a.RateHz
		v += 2500*math.Sin(2*math.Pi*f[0]*t) + 1500*math.Sin(2*math.Pi*f[1]*t)
	}
	return v
}

// Sample returns the 6-byte register image of sample i.
func (a *AudioSpeech) Sample(i int) []byte {
	v := a.PCMAt(i)
	b := make([]byte, 6)
	main := int16(clamp(v, -32000, 32000))
	binary.LittleEndian.PutUint16(b[0:], uint16(main))
	binary.LittleEndian.PutUint16(b[2:], uint16(main/2))
	binary.LittleEndian.PutUint16(b[4:], uint16(main/4))
	return b
}

// Transcript returns the spoken words in order (ground truth).
func (a *AudioSpeech) Transcript() []AudioWord {
	out := make([]AudioWord, len(a.Words))
	copy(out, a.Words)
	return out
}

var _ Source = (*AudioSpeech)(nil)

// DecodePCM extracts the primary channel from a 6-byte audio sample.
func DecodePCM(b []byte) (int16, error) {
	if len(b) < 2 {
		return 0, fmt.Errorf("sensor: audio sample is %d bytes, want >=2", len(b))
	}
	return int16(binary.LittleEndian.Uint16(b)), nil
}

func clamp(v, lo, hi float64) float64 {
	return math.Min(hi, math.Max(lo, v))
}

// ScalarKind selects the waveform family of a scalar environmental source.
type ScalarKind int

// Scalar waveform families.
const (
	ScalarPressure ScalarKind = iota + 1
	ScalarTemperature
	ScalarAirQuality
	ScalarLight
	ScalarSoundLevel
	ScalarDistance
)

// Scalar generates slowly varying environmental readings (barometer,
// temperature, air quality, light, sound level, ultrasonic distance) as a
// seeded random walk around a baseline.
type Scalar struct {
	Kind     ScalarKind
	Base     float64
	Step     float64
	AsInt    bool // encode as Int (4 B) rather than Double (8 B)
	rng      *rand.Rand
	walkAt   int
	walkVals []float64
}

// NewScalar returns a deterministic environmental source for the given
// sensor, with baselines in the sensor's natural units.
func NewScalar(seed int64, kind ScalarKind) *Scalar {
	s := &Scalar{Kind: kind, rng: rand.New(rand.NewSource(seed))}
	switch kind {
	case ScalarPressure:
		s.Base, s.Step = 101325, 2
	case ScalarTemperature:
		s.Base, s.Step = 22.5, 0.02
	case ScalarAirQuality:
		s.Base, s.Step, s.AsInt = 420, 3, true
	case ScalarLight:
		s.Base, s.Step = 300, 4
	case ScalarSoundLevel:
		s.Base, s.Step, s.AsInt = 48, 1.5, true
	case ScalarDistance:
		s.Base, s.Step = 1.8, 0.01
	}
	return s
}

// ValueAt returns the scalar value of sample i.
func (s *Scalar) ValueAt(i int) float64 {
	for s.walkAt <= i {
		prev := s.Base
		if s.walkAt > 0 {
			prev = s.walkVals[s.walkAt-1]
		}
		s.walkVals = append(s.walkVals, prev+s.rng.NormFloat64()*s.Step)
		s.walkAt++
	}
	return s.walkVals[i]
}

// Sample returns the register image of sample i.
func (s *Scalar) Sample(i int) []byte {
	v := s.ValueAt(i)
	if s.AsInt {
		return EncodeI32(int32(v))
	}
	return EncodeF64(v)
}

var _ Source = (*Scalar)(nil)

// Frame generates deterministic raw RGB camera frames: a gradient background
// with a bright seeded rectangle, enough structure for the JPEG codec to
// exercise all its paths. Width×Height×3 must match the sensor's SampleBytes
// budget or less; the LowResImage sensor delivers SampleBytes bytes and the
// frame is truncated or zero-padded to that size by FixedSize.
type Frame struct {
	Width, Height int
	seed          int64
}

// NewFrame returns a deterministic frame source.
func NewFrame(seed int64, width, height int) *Frame {
	return &Frame{Width: width, Height: height, seed: seed}
}

// RGBAt returns the raw w×h×3 pixel buffer of frame i.
func (f *Frame) RGBAt(i int) []byte {
	rng := rand.New(rand.NewSource(f.seed + int64(i)*7919))
	buf := make([]byte, f.Width*f.Height*3)
	rx, ry := rng.Intn(f.Width/2), rng.Intn(f.Height/2)
	rw, rh := f.Width/4+1, f.Height/4+1
	for y := 0; y < f.Height; y++ {
		for x := 0; x < f.Width; x++ {
			o := (y*f.Width + x) * 3
			r := byte((x * 255) / f.Width)
			g := byte((y * 255) / f.Height)
			b := byte((x + y) % 256)
			if x >= rx && x < rx+rw && y >= ry && y < ry+rh {
				r, g, b = 250, 250, 240
			}
			buf[o], buf[o+1], buf[o+2] = r, g, b
		}
	}
	return buf
}

// Sample returns frame i padded/truncated to size bytes when size > 0,
// else the raw buffer.
func (f *Frame) Sample(i int) []byte {
	return f.RGBAt(i)
}

// FixedSize wraps a source so every sample is exactly n bytes (truncating or
// zero-padding), matching a sensor's formatted SampleBytes.
type FixedSize struct {
	Src Source
	N   int
}

// Sample returns the wrapped sample normalized to N bytes.
func (f FixedSize) Sample(i int) []byte {
	b := f.Src.Sample(i)
	if len(b) == f.N {
		return b
	}
	out := make([]byte, f.N)
	copy(out, b)
	return out
}

var _ Source = FixedSize{}

// Signature generates deterministic 512-byte fingerprint signatures. Frames
// for the same finger differ by seeded per-scan noise; different fingers are
// far apart in Hamming distance.
type Signature struct {
	Finger int
	seed   int64
}

// NewSignature returns a signature source for the given finger identity.
func NewSignature(seed int64, finger int) *Signature {
	return &Signature{Finger: finger, seed: seed}
}

// FingerTemplate returns the noiseless signature of a finger — what
// enrollment stores.
func FingerTemplate(finger int) []byte {
	rng := rand.New(rand.NewSource(int64(finger)*104729 + 17))
	b := make([]byte, 512)
	for i := range b {
		b[i] = byte(rng.Intn(256))
	}
	return b
}

// Sample returns scan i of the finger: the template with ~1% of bits
// flipped by scan noise.
func (s *Signature) Sample(i int) []byte {
	b := FingerTemplate(s.Finger)
	rng := rand.New(rand.NewSource(s.seed + int64(i)*31337))
	flips := len(b) * 8 / 100
	for k := 0; k < flips; k++ {
		bit := rng.Intn(len(b) * 8)
		b[bit/8] ^= 1 << (bit % 8)
	}
	return b
}

var _ Source = (*Signature)(nil)

// DefaultSource returns a sensible generator for a sensor when an app has no
// special ground-truth needs, keyed by the sensor's Table I row.
func DefaultSource(id ID, seed int64) (Source, error) {
	sp, err := Lookup(id)
	if err != nil {
		return nil, err
	}
	switch id {
	case Barometer:
		return NewScalar(seed, ScalarPressure), nil
	case Temperature:
		return NewScalar(seed, ScalarTemperature), nil
	case Fingerprint:
		return NewSignature(seed, 1), nil
	case Accelerometer:
		return NewAccelWalk(seed, sp.QoSRateHz, 2), nil
	case AirQuality:
		return NewScalar(seed, ScalarAirQuality), nil
	case Pulse:
		return NewECGWave(seed, sp.QoSRateHz, 72), nil
	case Light:
		return NewScalar(seed, ScalarLight), nil
	case Sound:
		return NewScalar(seed, ScalarSoundLevel), nil
	case Distance:
		return NewScalar(seed, ScalarDistance), nil
	case LowResImage:
		return FixedSize{Src: NewFrame(seed, 96, 84), N: sp.SampleBytes}, nil
	case HighResImage:
		return FixedSize{Src: NewFrame(seed, 512, 412), N: sp.SampleBytes}, nil
	default:
		return nil, fmt.Errorf("sensor: no default source for %q", id)
	}
}
