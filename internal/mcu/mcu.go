// Package mcu models the auxiliary micro-controller board — the ESP8266 of
// the paper's testbed.
//
// The MCU is a single in-order core with a small RAM. It executes work items
// FIFO at ActiveW and idles at IdleW. Offloaded app computations run slower
// than on the CPU by the base slowdown factor (the paper measures ~19×),
// multiplied by a per-workload floating-point penalty: the ESP8266's L106
// core has no FPU, so FP-heavy code (A3's string-to-double formatting, A8's
// ECG feature extraction) degrades far more — this is what produces the
// Figure 13 slowdowns.
//
// RAM is explicitly accounted: batch buffers and offloaded app footprints
// must fit in the usable RAM or the allocation fails, which is exactly the
// capacity gate that makes heavy-weight apps non-offloadable.
package mcu

import (
	"errors"
	"fmt"
	"time"

	"iothub/internal/energy"
	"iothub/internal/obs"
	"iothub/internal/sim"
)

// Params are the MCU's calibration constants (DESIGN.md §4).
type Params struct {
	RAMBytes      int           // total user-data RAM (ESP8266: 80 KB)
	ReservedBytes int           // RTOS + driver working set
	ActiveW       float64       // executing or polling
	IdleW         float64       // idle
	BaseSlowdown  float64       // execution-time multiplier vs the CPU
	PerReadCPU    time.Duration // availability check + driver formatting per read
	IrqRaise      time.Duration // raising one interrupt toward the CPU
	RebootTime    time.Duration // crash-to-alive span (boot ROM + RTOS init)
	RebootW       float64       // draw while rebooting
}

// DefaultParams returns the ESP8266 calibration.
func DefaultParams() Params {
	return Params{
		RAMBytes:      80 * 1024,
		ReservedBytes: 16 * 1024,
		ActiveW:       1.0,
		IdleW:         0.08,
		BaseSlowdown:  19,
		PerReadCPU:    100 * time.Microsecond,
		IrqRaise:      10 * time.Microsecond,
		RebootTime:    150 * time.Millisecond,
		RebootW:       0.9,
	}
}

// UsableRAM is the RAM available to batch buffers and offloaded apps.
func (p Params) UsableRAM() int { return p.RAMBytes - p.ReservedBytes }

// Errors callers match on.
var (
	// ErrNoRAM is returned when an allocation exceeds the usable RAM.
	ErrNoRAM = errors.New("mcu: out of RAM")
	// ErrBusy is returned by Idle when work is executing or queued.
	ErrBusy = errors.New("mcu: busy")
)

type workItem struct {
	d       time.Duration
	r       energy.Routine
	done    func()
	startAt sim.Time // execution start, for routine spans
}

// MCU is one micro-controller board instance.
type MCU struct {
	sched   *sim.Scheduler
	track   *energy.Track
	params  Params
	queue   []workItem
	running bool
	ramUsed int
	busy    map[energy.Routine]time.Duration

	// Crash/reboot state: while rebooting no work starts, RAM contents are
	// gone, and new Exec items queue until the board comes back.
	rebooting bool
	crashes   int
	current   workItem // the running item, so a crash can requeue it
	endEv     sim.EventID

	obs       *obs.Recorder
	highWater int // peak RAM allocation, for the buffer high-water counter
}

// New returns an idle MCU metered on the named track.
func New(sched *sim.Scheduler, meter *energy.Meter, name string, params Params) (*MCU, error) {
	if params.UsableRAM() <= 0 {
		return nil, fmt.Errorf("mcu: usable RAM %d bytes, want > 0", params.UsableRAM())
	}
	if params.BaseSlowdown <= 0 {
		return nil, fmt.Errorf("mcu: BaseSlowdown = %v, want > 0", params.BaseSlowdown)
	}
	if params.RebootTime < 0 || params.RebootW < 0 {
		return nil, fmt.Errorf("mcu: negative reboot calibration (%v, %v W)", params.RebootTime, params.RebootW)
	}
	m := &MCU{
		sched:  sched,
		track:  meter.Track(name),
		params: params,
		busy:   make(map[energy.Routine]time.Duration),
	}
	m.track.Set(params.IdleW, energy.Idle)
	return m, nil
}

// Observe attaches an observability recorder: work and reboot spans are
// emitted on the "mcu" track. A nil recorder costs one branch per call.
func (m *MCU) Observe(r *obs.Recorder) { m.obs = r }

// RAMHighWater reports the peak concurrent RAM allocation over the run —
// the MCU buffer high-water mark. Crashes zero live allocations but not the
// mark: it records the worst case that occurred.
func (m *MCU) RAMHighWater() int { return m.highWater }

// Params returns the MCU's calibration constants.
func (m *MCU) Params() Params { return m.params }

// Busy reports whether work is executing or queued.
func (m *MCU) Busy() bool { return m.running || len(m.queue) > 0 }

// RAMUsed reports currently allocated bytes.
func (m *MCU) RAMUsed() int { return m.ramUsed }

// RAMFree reports remaining usable bytes.
func (m *MCU) RAMFree() int { return m.params.UsableRAM() - m.ramUsed }

// Alloc reserves n bytes of MCU RAM, failing with ErrNoRAM if they do not
// fit. Allocations model batch buffers and offloaded app footprints.
func (m *MCU) Alloc(n int) error {
	if n < 0 {
		return fmt.Errorf("mcu: negative allocation %d", n)
	}
	if n > m.RAMFree() {
		return fmt.Errorf("%w: need %d bytes, %d free", ErrNoRAM, n, m.RAMFree())
	}
	m.ramUsed += n
	if m.ramUsed > m.highWater {
		m.highWater = m.ramUsed
	}
	return nil
}

// Free releases n bytes previously reserved with Alloc.
func (m *MCU) Free(n int) error {
	if n < 0 || n > m.ramUsed {
		return fmt.Errorf("mcu: free %d bytes with %d allocated", n, m.ramUsed)
	}
	m.ramUsed -= n
	return nil
}

// OffloadTime converts a CPU-side execution time into MCU execution time:
// base slowdown times the workload's floating-point penalty (>= 1).
func (m *MCU) OffloadTime(cpuTime time.Duration, fpPenalty float64) time.Duration {
	if fpPenalty < 1 {
		fpPenalty = 1
	}
	return time.Duration(float64(cpuTime) * m.params.BaseSlowdown * fpPenalty)
}

// BusyByRoutine returns cumulative execution time per routine.
func (m *MCU) BusyByRoutine() map[energy.Routine]time.Duration {
	out := make(map[energy.Routine]time.Duration, len(m.busy))
	for r, d := range m.busy {
		out[r] = d
	}
	return out
}

// Exec queues d of work attributed to routine r; done (may be nil) runs on
// completion. Work is serialized FIFO — the L106 is a single core.
func (m *MCU) Exec(d time.Duration, r energy.Routine, done func()) error {
	if d < 0 {
		return fmt.Errorf("mcu: negative work duration %v", d)
	}
	m.queue = append(m.queue, workItem{d: d, r: r, done: done})
	return m.maybeStart()
}

func (m *MCU) maybeStart() error {
	if m.running || m.rebooting || len(m.queue) == 0 {
		return nil
	}
	m.running = true
	item := m.queue[0]
	m.queue = m.queue[1:]
	m.current = item
	m.track.Set(m.params.ActiveW, item.r)
	item.startAt = m.sched.Now()
	ev, err := m.sched.After(item.d, func() { m.endWork(item) })
	if err != nil {
		return fmt.Errorf("mcu: schedule work end: %w", err)
	}
	m.endEv = ev
	return nil
}

func (m *MCU) endWork(item workItem) {
	m.busy[item.r] += item.d
	m.obs.Span("mcu", item.r.String(), item.startAt, m.sched.Now())
	m.running = false
	if len(m.queue) == 0 {
		m.track.Set(m.params.IdleW, energy.Idle)
	}
	if item.done != nil {
		item.done()
	}
	if err := m.maybeStart(); err != nil {
		m.sched.Stop()
	}
}

// Crash reboots the MCU: the interrupted work item is requeued at the head
// (it restarts from scratch after the reboot — partial progress and its
// partial energy are genuinely spent), queued items survive (drivers re-issue
// from flash), and every RAM allocation is lost. The board draws RebootW for
// d (or the calibrated RebootTime when d <= 0), then onAlive (may be nil)
// runs and queued work resumes. A crash during an ongoing reboot is absorbed
// by it and not counted. No in-flight work item ever dangles: its completion
// callback still fires, after the restart.
func (m *MCU) Crash(d time.Duration, onAlive func()) error {
	if m.rebooting {
		return nil
	}
	if d <= 0 {
		d = m.params.RebootTime
	}
	m.crashes++
	if m.running {
		m.sched.Cancel(m.endEv)
		m.running = false
		m.queue = append([]workItem{m.current}, m.queue...)
	}
	m.ramUsed = 0
	m.rebooting = true
	m.track.Set(m.params.RebootW, energy.Idle)
	crashAt := m.sched.Now()
	_, err := m.sched.After(d, func() {
		m.rebooting = false
		m.obs.Span("mcu", "reboot", crashAt, m.sched.Now())
		if len(m.queue) == 0 {
			m.track.Set(m.params.IdleW, energy.Idle)
		}
		if onAlive != nil {
			onAlive()
		}
		if err := m.maybeStart(); err != nil {
			m.sched.Stop()
		}
	})
	if err != nil {
		return fmt.Errorf("mcu: schedule reboot end: %w", err)
	}
	return nil
}

// Alive reports whether the board is up (false while rebooting) — the
// hub-side watchdog's probe.
func (m *MCU) Alive() bool { return !m.rebooting }

// Crashes counts completed Crash calls.
func (m *MCU) Crashes() int { return m.crashes }

// Idle re-attributes the MCU's idle draw to routine r (e.g. keeping batch
// RAM retained counts toward DataTransfer while waiting to flush).
func (m *MCU) Idle(r energy.Routine) error {
	if m.Busy() || m.rebooting {
		return ErrBusy
	}
	m.track.Set(m.params.IdleW, r)
	return nil
}

// Track exposes the MCU's energy track (for trace capture).
func (m *MCU) Track() *energy.Track { return m.track }
