// Package mcu models the auxiliary micro-controller board — the ESP8266 of
// the paper's testbed.
//
// The MCU is a single in-order core with a small RAM. It executes work items
// FIFO at ActiveW and idles at IdleW. Offloaded app computations run slower
// than on the CPU by the base slowdown factor (the paper measures ~19×),
// multiplied by a per-workload floating-point penalty: the ESP8266's L106
// core has no FPU, so FP-heavy code (A3's string-to-double formatting, A8's
// ECG feature extraction) degrades far more — this is what produces the
// Figure 13 slowdowns.
//
// RAM is explicitly accounted: batch buffers and offloaded app footprints
// must fit in the usable RAM or the allocation fails, which is exactly the
// capacity gate that makes heavy-weight apps non-offloadable.
package mcu

import (
	"errors"
	"fmt"
	"time"

	"iothub/internal/energy"
	"iothub/internal/obs"
	"iothub/internal/sim"
)

// Params are the MCU's calibration constants (DESIGN.md §4).
type Params struct {
	RAMBytes      int           // total user-data RAM (ESP8266: 80 KB)
	ReservedBytes int           // RTOS + driver working set
	ActiveW       float64       // executing or polling
	IdleW         float64       // idle
	BaseSlowdown  float64       // execution-time multiplier vs the CPU
	PerReadCPU    time.Duration // availability check + driver formatting per read
	IrqRaise      time.Duration // raising one interrupt toward the CPU
	RebootTime    time.Duration // crash-to-alive span (boot ROM + RTOS init)
	RebootW       float64       // draw while rebooting
}

// DefaultParams returns the ESP8266 calibration.
func DefaultParams() Params {
	return Params{
		RAMBytes:      80 * 1024,
		ReservedBytes: 16 * 1024,
		ActiveW:       1.0,
		IdleW:         0.08,
		BaseSlowdown:  19,
		PerReadCPU:    100 * time.Microsecond,
		IrqRaise:      10 * time.Microsecond,
		RebootTime:    150 * time.Millisecond,
		RebootW:       0.9,
	}
}

// UsableRAM is the RAM available to batch buffers and offloaded apps.
func (p Params) UsableRAM() int { return p.RAMBytes - p.ReservedBytes }

// Errors callers match on.
var (
	// ErrNoRAM is returned when an allocation exceeds the usable RAM.
	ErrNoRAM = errors.New("mcu: out of RAM")
	// ErrBusy is returned by Idle when work is executing or queued.
	ErrBusy = errors.New("mcu: busy")
)

type workItem struct {
	d       time.Duration
	r       energy.Routine
	done    sim.Done
	startAt sim.Time // execution start, for routine spans
}

// The MCU's typed events: the running item finished (the L106 is a single
// core, so the item is always m.current — no slot needed), and a reboot
// completed. Keeping the reboot end as a typed, cancellable event is what
// lets the supply layer absorb it into a power gate.
const (
	opEnd = iota + 1
	opReboot
)

// MCU is one micro-controller board instance.
type MCU struct {
	sched *sim.Scheduler
	meter *energy.Meter
	name  string
	track *energy.Track

	params Params
	// The work queue is a ring buffer: head advances on pop instead of
	// reslicing, so the backing array is reused forever.
	queue   []workItem
	head    int
	running bool
	ramUsed int
	busy    map[energy.Routine]time.Duration

	// Crash/reboot state: while rebooting no work starts, RAM contents are
	// gone, and new Exec items queue until the board comes back. A power
	// gate (brownout) is a reboot with no scheduled end: gated marks it,
	// and PowerRestore starts the actual reboot timer.
	rebooting bool
	gated     bool
	crashes   int
	current   workItem // the running item, so a crash can requeue it
	endEv     sim.EventID
	rebootEv  sim.EventID
	downAt    sim.Time // reboot/gate start, for the recovery spans
	pendAlive func()   // runs once the board is next alive

	obs       *obs.Recorder
	highWater int // peak RAM allocation, for the buffer high-water counter
}

func validateParams(params Params) error {
	if params.UsableRAM() <= 0 {
		return fmt.Errorf("mcu: usable RAM %d bytes, want > 0", params.UsableRAM())
	}
	if params.BaseSlowdown <= 0 {
		return fmt.Errorf("mcu: BaseSlowdown = %v, want > 0", params.BaseSlowdown)
	}
	if params.RebootTime < 0 || params.RebootW < 0 {
		return fmt.Errorf("mcu: negative reboot calibration (%v, %v W)", params.RebootTime, params.RebootW)
	}
	return nil
}

// New returns an idle MCU metered on the named track.
func New(sched *sim.Scheduler, meter *energy.Meter, name string, params Params) (*MCU, error) {
	if err := validateParams(params); err != nil {
		return nil, err
	}
	m := &MCU{
		sched:  sched,
		meter:  meter,
		name:   name,
		track:  meter.Track(name),
		params: params,
		busy:   make(map[energy.Routine]time.Duration),
	}
	m.track.Set(params.IdleW, energy.Idle)
	return m, nil
}

// Reset reinitializes the board in place for a new run, exactly as New would
// construct it: the scheduler and meter must have been reset first, and the
// track is re-requested so it registers at this call's position in the
// meter's component order. Queue and busy-map capacity is kept.
func (m *MCU) Reset(params Params) error {
	if err := validateParams(params); err != nil {
		return err
	}
	m.track = m.meter.Track(m.name)
	m.params = params
	for i := range m.queue {
		m.queue[i] = workItem{}
	}
	m.queue = m.queue[:0]
	m.head = 0
	m.running = false
	m.ramUsed = 0
	clear(m.busy)
	m.rebooting = false
	m.gated = false
	m.crashes = 0
	m.current = workItem{}
	m.endEv = sim.EventID{}
	m.rebootEv = sim.EventID{}
	m.downAt = 0
	m.pendAlive = nil
	m.obs = nil
	m.highWater = 0
	m.track.Set(params.IdleW, energy.Idle)
	return nil
}

// Observe attaches an observability recorder: work and reboot spans are
// emitted on the "mcu" track. A nil recorder costs one branch per call.
func (m *MCU) Observe(r *obs.Recorder) { m.obs = r }

// RAMHighWater reports the peak concurrent RAM allocation over the run —
// the MCU buffer high-water mark. Crashes zero live allocations but not the
// mark: it records the worst case that occurred.
func (m *MCU) RAMHighWater() int { return m.highWater }

// Params returns the MCU's calibration constants.
func (m *MCU) Params() Params { return m.params }

// Busy reports whether work is executing or queued.
func (m *MCU) Busy() bool { return m.running || m.queued() > 0 }

func (m *MCU) queued() int { return len(m.queue) - m.head }

// RAMUsed reports currently allocated bytes.
func (m *MCU) RAMUsed() int { return m.ramUsed }

// RAMFree reports remaining usable bytes.
func (m *MCU) RAMFree() int { return m.params.UsableRAM() - m.ramUsed }

// Alloc reserves n bytes of MCU RAM, failing with ErrNoRAM if they do not
// fit. Allocations model batch buffers and offloaded app footprints.
func (m *MCU) Alloc(n int) error {
	if n < 0 {
		return fmt.Errorf("mcu: negative allocation %d", n)
	}
	if n > m.RAMFree() {
		return fmt.Errorf("%w: need %d bytes, %d free", ErrNoRAM, n, m.RAMFree())
	}
	m.ramUsed += n
	if m.ramUsed > m.highWater {
		m.highWater = m.ramUsed
	}
	return nil
}

// Free releases n bytes previously reserved with Alloc.
func (m *MCU) Free(n int) error {
	if n < 0 || n > m.ramUsed {
		return fmt.Errorf("mcu: free %d bytes with %d allocated", n, m.ramUsed)
	}
	m.ramUsed -= n
	return nil
}

// OffloadTime converts a CPU-side execution time into MCU execution time:
// base slowdown times the workload's floating-point penalty (>= 1).
func (m *MCU) OffloadTime(cpuTime time.Duration, fpPenalty float64) time.Duration {
	if fpPenalty < 1 {
		fpPenalty = 1
	}
	return time.Duration(float64(cpuTime) * m.params.BaseSlowdown * fpPenalty)
}

// BusyByRoutine returns cumulative execution time per routine.
func (m *MCU) BusyByRoutine() map[energy.Routine]time.Duration {
	out := make(map[energy.Routine]time.Duration, len(m.busy))
	for r, d := range m.busy {
		out[r] = d
	}
	return out
}

// Exec queues d of work attributed to routine r; done (may be nil) runs on
// completion. Work is serialized FIFO — the L106 is a single core.
func (m *MCU) Exec(d time.Duration, r energy.Routine, done func()) error {
	return m.ExecCall(d, r, sim.Call(done))
}

// ExecCall is Exec taking the completion as a pre-bound sim.Done — the
// allocation-free form for hot paths that would otherwise close over state.
func (m *MCU) ExecCall(d time.Duration, r energy.Routine, done sim.Done) error {
	if d < 0 {
		return fmt.Errorf("mcu: negative work duration %v", d)
	}
	m.queue = append(m.queue, workItem{d: d, r: r, done: done})
	return m.maybeStart()
}

func (m *MCU) maybeStart() error {
	if m.running || m.rebooting || m.queued() == 0 {
		return nil
	}
	m.running = true
	item := m.queue[m.head]
	m.queue[m.head] = workItem{}
	m.head++
	if m.head == len(m.queue) {
		m.queue = m.queue[:0]
		m.head = 0
	}
	item.startAt = m.sched.Now()
	m.current = item
	m.track.Set(m.params.ActiveW, item.r)
	ev, err := m.sched.AfterCall(item.d, m, sim.Arg{Op: opEnd})
	if err != nil {
		return fmt.Errorf("mcu: schedule work end: %w", err)
	}
	m.endEv = ev
	return nil
}

// OnEvent dispatches the board's typed events — work completion and reboot
// end — without per-event closures. The running item is m.current: a crash
// cancels the completion event before touching it, so the pairing cannot
// skew.
func (m *MCU) OnEvent(a sim.Arg) {
	switch a.Op {
	case opEnd:
		m.endWork(m.current)
	case opReboot:
		m.endReboot()
	}
}

func (m *MCU) endWork(item workItem) {
	m.busy[item.r] += item.d
	m.obs.Span("mcu", item.r.String(), item.startAt, m.sched.Now())
	m.running = false
	if m.queued() == 0 {
		m.track.Set(m.params.IdleW, energy.Idle)
	}
	item.done.Invoke()
	if err := m.maybeStart(); err != nil {
		m.sched.Stop()
	}
}

// Crash reboots the MCU: the interrupted work item is requeued at the head
// (it restarts from scratch after the reboot — partial progress and its
// partial energy are genuinely spent), queued items survive (drivers re-issue
// from flash), and every RAM allocation is lost. The board draws RebootW for
// d (or the calibrated RebootTime when d <= 0), then onAlive (may be nil)
// runs and queued work resumes. A crash during an ongoing reboot is absorbed
// by it and not counted. No in-flight work item ever dangles: its completion
// callback still fires, after the restart.
func (m *MCU) Crash(d time.Duration, onAlive func()) error {
	if m.rebooting {
		return nil
	}
	if d <= 0 {
		d = m.params.RebootTime
	}
	m.crashes++
	m.takeDown()
	m.rebooting = true
	m.pendAlive = onAlive
	m.track.Set(m.params.RebootW, energy.Idle)
	m.downAt = m.sched.Now()
	ev, err := m.sched.AfterCall(d, m, sim.Arg{Op: opReboot})
	if err != nil {
		return fmt.Errorf("mcu: schedule reboot end: %w", err)
	}
	m.rebootEv = ev
	return nil
}

// takeDown interrupts the running item (requeued at the head: it restarts
// from scratch, partial progress genuinely spent) and wipes the RAM — the
// shared first half of Crash and PowerGate.
func (m *MCU) takeDown() {
	if m.running {
		m.sched.Cancel(m.endEv)
		m.running = false
		// Requeue at the head of the ring: reuse the popped slot when one
		// exists, otherwise shift (rare — only when the queue was full).
		if m.head > 0 {
			m.head--
			m.queue[m.head] = m.current
		} else {
			m.queue = append(m.queue, workItem{})
			copy(m.queue[1:], m.queue)
			m.queue[0] = m.current
		}
	}
	m.ramUsed = 0
}

// endReboot brings the board back: the stored alive callback runs once, then
// queued work resumes.
func (m *MCU) endReboot() {
	m.rebooting = false
	m.obs.Span("mcu", "reboot", m.downAt, m.sched.Now())
	if m.queued() == 0 {
		m.track.Set(m.params.IdleW, energy.Idle)
	}
	cb := m.pendAlive
	m.pendAlive = nil
	if cb != nil {
		cb()
	}
	if err := m.maybeStart(); err != nil {
		m.sched.Stop()
	}
}

// PowerGate forces the board down with no scheduled recovery — the supply
// layer's brownout, where only recharge decides when there is energy to boot
// with. Like Crash it requeues the interrupted item and wipes RAM, but the
// board then draws nothing (it is unpowered, not rebooting), and a pending
// reboot end — the gate arriving mid-reboot — is cancelled and absorbed: its
// alive callback is held and runs after PowerRestore's reboot instead, so a
// crash overlapped by a brownout still reboots exactly once. Gating a gated
// board is a no-op. PowerGate does not count into Crashes: brownouts are
// accounted by the supply layer, and the watchdog's once-per-crash ladder
// must not fire for a board that is down for lack of joules.
func (m *MCU) PowerGate() error {
	if m.gated {
		return nil
	}
	if m.rebooting {
		m.sched.Cancel(m.rebootEv)
	} else {
		m.takeDown()
		m.rebooting = true
	}
	m.gated = true
	m.track.Set(0, energy.Idle)
	m.downAt = m.sched.Now()
	return nil
}

// PowerRestore ends a power gate: the board reboots (RebootTime at RebootW),
// then any alive callback absorbed from an interrupted crash runs, then
// onAlive, then queued work resumes. A no-op when the board is not gated.
func (m *MCU) PowerRestore(onAlive func()) error {
	if !m.gated {
		return nil
	}
	m.gated = false
	m.obs.Span("mcu", "browned-out", m.downAt, m.sched.Now())
	if prev := m.pendAlive; prev != nil && onAlive != nil {
		next := onAlive
		m.pendAlive = func() { prev(); next() }
	} else if onAlive != nil {
		m.pendAlive = onAlive
	}
	m.track.Set(m.params.RebootW, energy.Idle)
	m.downAt = m.sched.Now()
	ev, err := m.sched.AfterCall(m.params.RebootTime, m, sim.Arg{Op: opReboot})
	if err != nil {
		return fmt.Errorf("mcu: schedule reboot end: %w", err)
	}
	m.rebootEv = ev
	return nil
}

// Gated reports whether the board is held down by a power gate.
func (m *MCU) Gated() bool { return m.gated }

// Alive reports whether the board is up (false while rebooting) — the
// hub-side watchdog's probe.
func (m *MCU) Alive() bool { return !m.rebooting }

// Crashes counts completed Crash calls.
func (m *MCU) Crashes() int { return m.crashes }

// Idle re-attributes the MCU's idle draw to routine r (e.g. keeping batch
// RAM retained counts toward DataTransfer while waiting to flush).
func (m *MCU) Idle(r energy.Routine) error {
	if m.Busy() || m.rebooting {
		return ErrBusy
	}
	m.track.Set(m.params.IdleW, r)
	return nil
}

// Track exposes the MCU's energy track (for trace capture).
func (m *MCU) Track() *energy.Track { return m.track }
