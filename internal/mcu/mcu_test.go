package mcu

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"

	"iothub/internal/energy"
	"iothub/internal/sim"
)

func newMCU(t *testing.T) (*MCU, *sim.Scheduler, *energy.Meter) {
	t.Helper()
	s := sim.NewScheduler()
	m := energy.NewMeter(s)
	mc, err := New(s, m, "mcu", DefaultParams())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return mc, s, m
}

func TestNewRejectsBadParams(t *testing.T) {
	s := sim.NewScheduler()
	m := energy.NewMeter(s)
	bad := DefaultParams()
	bad.ReservedBytes = bad.RAMBytes
	if _, err := New(s, m, "m", bad); err == nil {
		t.Error("zero usable RAM accepted")
	}
	bad = DefaultParams()
	bad.BaseSlowdown = 0
	if _, err := New(s, m, "m", bad); err == nil {
		t.Error("zero slowdown accepted")
	}
}

func TestRAMAccounting(t *testing.T) {
	mc, _, _ := newMCU(t)
	free := mc.RAMFree()
	if free != mc.Params().UsableRAM() {
		t.Fatalf("initial free = %d, want %d", free, mc.Params().UsableRAM())
	}
	if err := mc.Alloc(10_000); err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if mc.RAMUsed() != 10_000 || mc.RAMFree() != free-10_000 {
		t.Errorf("used=%d free=%d after alloc", mc.RAMUsed(), mc.RAMFree())
	}
	if err := mc.Free(10_000); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if mc.RAMUsed() != 0 {
		t.Errorf("used = %d after free, want 0", mc.RAMUsed())
	}
}

func TestAllocOverflowFailsWithErrNoRAM(t *testing.T) {
	mc, _, _ := newMCU(t)
	err := mc.Alloc(mc.RAMFree() + 1)
	if !errors.Is(err, ErrNoRAM) {
		t.Errorf("oversized Alloc = %v, want ErrNoRAM", err)
	}
	if mc.RAMUsed() != 0 {
		t.Errorf("failed alloc leaked %d bytes", mc.RAMUsed())
	}
	if err := mc.Alloc(-1); err == nil {
		t.Error("negative Alloc accepted")
	}
}

func TestFreeValidation(t *testing.T) {
	mc, _, _ := newMCU(t)
	if err := mc.Free(1); err == nil {
		t.Error("Free beyond allocation accepted")
	}
	if err := mc.Free(-1); err == nil {
		t.Error("negative Free accepted")
	}
}

func TestHeavyAppDoesNotFit(t *testing.T) {
	// A11's 1.43 GB footprint must never fit the 80 KB part.
	mc, _, _ := newMCU(t)
	if err := mc.Alloc(1_430_000_000); !errors.Is(err, ErrNoRAM) {
		t.Errorf("1.43 GB alloc = %v, want ErrNoRAM", err)
	}
}

func TestExecChargesActiveEnergy(t *testing.T) {
	mc, s, m := newMCU(t)
	if err := mc.Exec(50*time.Millisecond, energy.DataCollection, nil); err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	got := m.Total()[energy.DataCollection]
	want := mc.Params().ActiveW * 0.05
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("energy = %v, want %v", got, want)
	}
}

func TestExecSerializes(t *testing.T) {
	mc, s, _ := newMCU(t)
	var end sim.Time
	for i := 0; i < 4; i++ {
		if err := mc.Exec(time.Millisecond, energy.AppCompute, func() { end = s.Now() }); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if end != sim.Time(4*time.Millisecond) {
		t.Errorf("last item ended at %v, want 4ms", end)
	}
	if got := mc.BusyByRoutine()[energy.AppCompute]; got != 4*time.Millisecond {
		t.Errorf("busy = %v, want 4ms", got)
	}
}

func TestExecRejectsNegative(t *testing.T) {
	mc, _, _ := newMCU(t)
	if err := mc.Exec(-1, energy.AppCompute, nil); err == nil {
		t.Error("negative duration accepted")
	}
}

func TestOffloadTimeSlowdown(t *testing.T) {
	mc, _, _ := newMCU(t)
	base := mc.OffloadTime(time.Millisecond, 1)
	if base != 19*time.Millisecond {
		t.Errorf("base offload = %v, want 19ms", base)
	}
	fp := mc.OffloadTime(time.Millisecond, 8)
	if fp != 152*time.Millisecond {
		t.Errorf("FP offload = %v, want 152ms", fp)
	}
	// Penalties below 1 are clamped.
	if got := mc.OffloadTime(time.Millisecond, 0); got != base {
		t.Errorf("clamped offload = %v, want %v", got, base)
	}
}

func TestIdleReattributesDraw(t *testing.T) {
	mc, s, m := newMCU(t)
	if err := mc.Idle(energy.DataTransfer); err != nil {
		t.Fatalf("Idle: %v", err)
	}
	if err := s.RunUntil(sim.Time(time.Second)); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	got := m.Total()[energy.DataTransfer]
	if math.Abs(got-mc.Params().IdleW) > 1e-9 {
		t.Errorf("idle energy = %v, want %v", got, mc.Params().IdleW)
	}
}

func TestIdleWhileBusyFails(t *testing.T) {
	mc, s, _ := newMCU(t)
	if err := mc.Exec(time.Millisecond, energy.AppCompute, nil); err != nil {
		t.Fatal(err)
	}
	if err := mc.Idle(energy.Idle); !errors.Is(err, ErrBusy) {
		t.Errorf("Idle while busy = %v, want ErrBusy", err)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// Property: Alloc/Free sequences never drive usage negative or beyond the
// usable RAM, and a successful Alloc is always reversible.
func TestPropertyRAMInvariant(t *testing.T) {
	f := func(ops []int16) bool {
		mc, _, _ := newMCUQuiet()
		for _, op := range ops {
			n := int(op)
			if n >= 0 {
				if err := mc.Alloc(n); err == nil {
					defer func(n int) { _ = mc.Free(n) }(n)
				}
			} else if -n <= mc.RAMUsed() {
				if err := mc.Free(-n); err != nil {
					return false
				}
			}
			if mc.RAMUsed() < 0 || mc.RAMUsed() > mc.Params().UsableRAM() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func newMCUQuiet() (*MCU, *sim.Scheduler, *energy.Meter) {
	s := sim.NewScheduler()
	m := energy.NewMeter(s)
	mc, err := New(s, m, "mcu", DefaultParams())
	if err != nil {
		panic(err)
	}
	return mc, s, m
}
