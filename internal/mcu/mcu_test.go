package mcu

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"

	"iothub/internal/energy"
	"iothub/internal/sim"
)

func newMCU(t *testing.T) (*MCU, *sim.Scheduler, *energy.Meter) {
	t.Helper()
	s := sim.NewScheduler()
	m := energy.NewMeter(s)
	mc, err := New(s, m, "mcu", DefaultParams())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return mc, s, m
}

func TestNewRejectsBadParams(t *testing.T) {
	s := sim.NewScheduler()
	m := energy.NewMeter(s)
	bad := DefaultParams()
	bad.ReservedBytes = bad.RAMBytes
	if _, err := New(s, m, "m", bad); err == nil {
		t.Error("zero usable RAM accepted")
	}
	bad = DefaultParams()
	bad.BaseSlowdown = 0
	if _, err := New(s, m, "m", bad); err == nil {
		t.Error("zero slowdown accepted")
	}
}

func TestRAMAccounting(t *testing.T) {
	mc, _, _ := newMCU(t)
	free := mc.RAMFree()
	if free != mc.Params().UsableRAM() {
		t.Fatalf("initial free = %d, want %d", free, mc.Params().UsableRAM())
	}
	if err := mc.Alloc(10_000); err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if mc.RAMUsed() != 10_000 || mc.RAMFree() != free-10_000 {
		t.Errorf("used=%d free=%d after alloc", mc.RAMUsed(), mc.RAMFree())
	}
	if err := mc.Free(10_000); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if mc.RAMUsed() != 0 {
		t.Errorf("used = %d after free, want 0", mc.RAMUsed())
	}
}

func TestAllocOverflowFailsWithErrNoRAM(t *testing.T) {
	mc, _, _ := newMCU(t)
	err := mc.Alloc(mc.RAMFree() + 1)
	if !errors.Is(err, ErrNoRAM) {
		t.Errorf("oversized Alloc = %v, want ErrNoRAM", err)
	}
	if mc.RAMUsed() != 0 {
		t.Errorf("failed alloc leaked %d bytes", mc.RAMUsed())
	}
	if err := mc.Alloc(-1); err == nil {
		t.Error("negative Alloc accepted")
	}
}

func TestFreeValidation(t *testing.T) {
	mc, _, _ := newMCU(t)
	if err := mc.Free(1); err == nil {
		t.Error("Free beyond allocation accepted")
	}
	if err := mc.Free(-1); err == nil {
		t.Error("negative Free accepted")
	}
}

func TestHeavyAppDoesNotFit(t *testing.T) {
	// A11's 1.43 GB footprint must never fit the 80 KB part.
	mc, _, _ := newMCU(t)
	if err := mc.Alloc(1_430_000_000); !errors.Is(err, ErrNoRAM) {
		t.Errorf("1.43 GB alloc = %v, want ErrNoRAM", err)
	}
}

func TestExecChargesActiveEnergy(t *testing.T) {
	mc, s, m := newMCU(t)
	if err := mc.Exec(50*time.Millisecond, energy.DataCollection, nil); err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	got := m.Total()[energy.DataCollection]
	want := mc.Params().ActiveW * 0.05
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("energy = %v, want %v", got, want)
	}
}

func TestExecSerializes(t *testing.T) {
	mc, s, _ := newMCU(t)
	var end sim.Time
	for i := 0; i < 4; i++ {
		if err := mc.Exec(time.Millisecond, energy.AppCompute, func() { end = s.Now() }); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if end != sim.Time(4*time.Millisecond) {
		t.Errorf("last item ended at %v, want 4ms", end)
	}
	if got := mc.BusyByRoutine()[energy.AppCompute]; got != 4*time.Millisecond {
		t.Errorf("busy = %v, want 4ms", got)
	}
}

func TestExecRejectsNegative(t *testing.T) {
	mc, _, _ := newMCU(t)
	if err := mc.Exec(-1, energy.AppCompute, nil); err == nil {
		t.Error("negative duration accepted")
	}
}

func TestOffloadTimeSlowdown(t *testing.T) {
	mc, _, _ := newMCU(t)
	base := mc.OffloadTime(time.Millisecond, 1)
	if base != 19*time.Millisecond {
		t.Errorf("base offload = %v, want 19ms", base)
	}
	fp := mc.OffloadTime(time.Millisecond, 8)
	if fp != 152*time.Millisecond {
		t.Errorf("FP offload = %v, want 152ms", fp)
	}
	// Penalties below 1 are clamped.
	if got := mc.OffloadTime(time.Millisecond, 0); got != base {
		t.Errorf("clamped offload = %v, want %v", got, base)
	}
}

func TestIdleReattributesDraw(t *testing.T) {
	mc, s, m := newMCU(t)
	if err := mc.Idle(energy.DataTransfer); err != nil {
		t.Fatalf("Idle: %v", err)
	}
	if err := s.RunUntil(sim.Time(time.Second)); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	got := m.Total()[energy.DataTransfer]
	if math.Abs(got-mc.Params().IdleW) > 1e-9 {
		t.Errorf("idle energy = %v, want %v", got, mc.Params().IdleW)
	}
}

func TestIdleWhileBusyFails(t *testing.T) {
	mc, s, _ := newMCU(t)
	if err := mc.Exec(time.Millisecond, energy.AppCompute, nil); err != nil {
		t.Fatal(err)
	}
	if err := mc.Idle(energy.Idle); !errors.Is(err, ErrBusy) {
		t.Errorf("Idle while busy = %v, want ErrBusy", err)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestCrashLosesRAMAndRestartsWork(t *testing.T) {
	mc, s, _ := newMCU(t)
	if err := mc.Alloc(12_000); err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	var doneAt sim.Time
	if err := mc.Exec(10*time.Millisecond, energy.AppCompute, func() { doneAt = s.Now() }); err != nil {
		t.Fatalf("Exec: %v", err)
	}
	alive := sim.Time(-1)
	// Crash 4 ms into the 10 ms item; it restarts in full after the reboot.
	if _, err := s.After(4*time.Millisecond, func() {
		if err := mc.Crash(100*time.Millisecond, func() { alive = s.Now() }); err != nil {
			t.Errorf("Crash: %v", err)
		}
		if mc.Alive() {
			t.Error("Alive during reboot")
		}
		if mc.RAMUsed() != 0 {
			t.Errorf("RAM survived the crash: %d bytes", mc.RAMUsed())
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !mc.Alive() || mc.Crashes() != 1 {
		t.Errorf("alive=%v crashes=%d after run", mc.Alive(), mc.Crashes())
	}
	if alive != sim.Time(104*time.Millisecond) {
		t.Errorf("onAlive at %v, want 104ms", alive)
	}
	// 4 ms partial run discarded + 100 ms reboot + full 10 ms rerun.
	if want := sim.Time(114 * time.Millisecond); doneAt != want {
		t.Errorf("work completed at %v, want %v", doneAt, want)
	}
}

func TestCrashEnergyAndQueueSurvival(t *testing.T) {
	mc, s, m := newMCU(t)
	order := []int{}
	// Two queued items; the crash hits while the first runs. Both still
	// complete, in order, after the reboot.
	for i := 0; i < 2; i++ {
		i := i
		if err := mc.Exec(10*time.Millisecond, energy.AppCompute, func() { order = append(order, i) }); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.After(5*time.Millisecond, func() {
		if err := mc.Crash(50*time.Millisecond, nil); err != nil {
			t.Errorf("Crash: %v", err)
		}
		// A crash during the reboot is absorbed, not double-counted.
		if err := mc.Crash(time.Millisecond, nil); err != nil {
			t.Errorf("nested Crash: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if mc.Crashes() != 1 {
		t.Errorf("crashes = %d, want 1 (nested crash absorbed)", mc.Crashes())
	}
	if len(order) != 2 || order[0] != 0 || order[1] != 1 {
		t.Errorf("completion order %v, want [0 1]", order)
	}
	// Reboot draw lands on the Idle routine: 50 ms at RebootW.
	wantReboot := mc.Params().RebootW * 0.05
	idleJ := m.Total()[energy.Idle]
	if idleJ < wantReboot-1e-9 {
		t.Errorf("idle-routine energy %v J missing the %v J reboot draw", idleJ, wantReboot)
	}
	// Active energy covers the discarded partial run plus both full reruns.
	wantActive := mc.Params().ActiveW * (0.005 + 0.010 + 0.010)
	if got := m.Total()[energy.AppCompute]; math.Abs(got-wantActive) > 1e-9 {
		t.Errorf("active energy = %v J, want %v (partial + 2 full items)", got, wantActive)
	}
}

func TestExecDuringRebootQueuesUntilAlive(t *testing.T) {
	mc, s, _ := newMCU(t)
	if err := mc.Crash(20*time.Millisecond, nil); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	var doneAt sim.Time
	if err := mc.Exec(time.Millisecond, energy.DataCollection, func() { doneAt = s.Now() }); err != nil {
		t.Fatalf("Exec during reboot: %v", err)
	}
	if err := mc.Idle(energy.Idle); !errors.Is(err, ErrBusy) {
		t.Errorf("Idle during reboot = %v, want ErrBusy", err)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if want := sim.Time(21 * time.Millisecond); doneAt != want {
		t.Errorf("queued work completed at %v, want %v", doneAt, want)
	}
}

// Property: Alloc/Free sequences never drive usage negative or beyond the
// usable RAM, and a successful Alloc is always reversible.
func TestPropertyRAMInvariant(t *testing.T) {
	f := func(ops []int16) bool {
		mc, _, _ := newMCUQuiet()
		for _, op := range ops {
			n := int(op)
			if n >= 0 {
				if err := mc.Alloc(n); err == nil {
					defer func(n int) { _ = mc.Free(n) }(n)
				}
			} else if -n <= mc.RAMUsed() {
				if err := mc.Free(-n); err != nil {
					return false
				}
			}
			if mc.RAMUsed() < 0 || mc.RAMUsed() > mc.Params().UsableRAM() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func newMCUQuiet() (*MCU, *sim.Scheduler, *energy.Meter) {
	s := sim.NewScheduler()
	m := energy.NewMeter(s)
	mc, err := New(s, m, "mcu", DefaultParams())
	if err != nil {
		panic(err)
	}
	return mc, s, m
}
