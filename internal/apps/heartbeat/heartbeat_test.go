package heartbeat

import (
	"testing"

	"iothub/internal/apps"
	"iothub/internal/sensor"
)

func TestNewValidatesBPM(t *testing.T) {
	if _, err := New(1, 10); err == nil {
		t.Error("bpm 10 accepted")
	}
	if _, err := New(1, 400); err == nil {
		t.Error("bpm 400 accepted")
	}
}

func TestCountsBeatsInRegularRhythm(t *testing.T) {
	a, err := New(5, 120) // 2 beats per second
	if err != nil {
		t.Fatal(err)
	}
	// Use windows past warm-up so each contains ~2 full beats.
	for w := 1; w < 4; w++ {
		in, err := apps.CollectWindow(a, w)
		if err != nil {
			t.Fatal(err)
		}
		res, err := a.Compute(in)
		if err != nil {
			t.Fatalf("window %d: %v", w, err)
		}
		got := int(res.Metrics["beats"])
		if got < 1 || got > 3 {
			t.Errorf("window %d beats = %d, want ~2", w, got)
		}
		if res.Metrics["irregular"] != 0 {
			t.Errorf("window %d flagged irregularity in regular rhythm", w)
		}
	}
}

func TestFlagsIrregularInterval(t *testing.T) {
	// 150 BPM with beat 2's interval stretched by 50%. A single QoS window
	// holds too few beats to expose it, so run the extractor over a 3 s
	// buffer, as the app does when its history spans windows.
	a, err := New(5, 150, 2)
	if err != nil {
		t.Fatal(err)
	}
	src, err := a.Source(sensor.Pulse)
	if err != nil {
		t.Fatal(err)
	}
	samples := make([][]byte, 3000)
	for i := range samples {
		samples[i] = src.Sample(i)
	}
	res, err := a.Compute(apps.WindowInput{Samples: map[sensor.ID][][]byte{sensor.Pulse: samples}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics["irregular"] < 1 {
		t.Errorf("stretched RR interval not flagged: %s", res.Summary)
	}
	if got := int(res.Metrics["beats"]); got < 5 || got > 8 {
		t.Errorf("beats over 3 s = %d, want 5..8", got)
	}
}

func TestGroundTruthHelper(t *testing.T) {
	a, err := New(1, 60)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.TrueBeats(5000); got < 4 || got > 5 {
		t.Errorf("TrueBeats(5000) = %d, want 4..5 at 60 BPM", got)
	}
}

func TestComputeRejectsBadInput(t *testing.T) {
	a, err := New(1, 72)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Compute(apps.WindowInput{Samples: map[sensor.ID][][]byte{}}); err == nil {
		t.Error("empty window accepted")
	}
	bad := make([][]byte, 200)
	for i := range bad {
		bad[i] = []byte{1}
	}
	in := apps.WindowInput{Samples: map[sensor.ID][][]byte{sensor.Pulse: bad}}
	if _, err := a.Compute(in); err == nil {
		t.Error("malformed samples accepted")
	}
}

func TestSpecIsComputeHeaviest(t *testing.T) {
	a, err := New(1, 72)
	if err != nil {
		t.Fatal(err)
	}
	sp := a.Spec()
	if sp.MIPS != 108.80 {
		t.Errorf("MIPS = %v, want 108.80 (Fig. 6 maximum)", sp.MIPS)
	}
	if sp.FPPenalty < 2 {
		t.Errorf("FPPenalty = %v, want >= 2 (drives the Fig. 13 slowdown)", sp.FPPenalty)
	}
}

func TestBPMEstimateTracksConfiguredRate(t *testing.T) {
	a, err := New(5, 120)
	if err != nil {
		t.Fatal(err)
	}
	in, err := apps.CollectWindow(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Compute(in)
	if err != nil {
		t.Fatal(err)
	}
	bpm := res.Metrics["bpm"]
	if bpm < 100 || bpm > 140 {
		t.Errorf("bpm estimate = %.1f, want ~120", bpm)
	}
}
