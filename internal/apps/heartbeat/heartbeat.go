// Package heartbeat implements workload A8: Health Care heartbeat
// irregularity detection. It samples the pulse sensor at 1 kHz, extracts the
// R-peak train (the ECG feature-extraction task of Table II), and flags
// RR intervals that deviate strongly from the running median — the paper's
// heaviest light-weight workload (108.80 MIPS in Fig. 6), and one of the two
// apps COM slows down because its double-precision feature extraction hits
// the MCU's missing FPU (Fig. 13).
package heartbeat

import (
	"fmt"
	"sort"
	"time"

	"iothub/internal/apps"
	"iothub/internal/dsp"
	"iothub/internal/sensor"
)

// IrregularDeviation is the fractional RR deviation flagged as irregular.
const IrregularDeviation = 0.3

var spec = apps.Spec{
	ID:       apps.Heartbeat,
	Name:     "Heartbeat Irregularity Detection",
	Category: "Health Care",
	Task:     "ECG Feature-extraction",
	Sensors:  []apps.SensorUse{{Sensor: sensor.Pulse}},
	Window:   time.Second,

	HeapBytes:  22500,
	StackBytes: 400,
	MIPS:       108.80, // Fig. 6: the largest compute demand of A1–A10
	FPPenalty:  3,      // double-precision ECG math on an FPU-less MCU
}

// App is the heartbeat-irregularity workload.
type App struct {
	ecg *sensor.ECGWave
}

var _ apps.App = (*App)(nil)

// New returns a detector over a synthetic ECG at the given BPM whose listed
// beats have stretched RR intervals.
func New(seed int64, bpm float64, irregularBeats ...int) (*App, error) {
	sp, err := sensor.Lookup(sensor.Pulse)
	if err != nil {
		return nil, err
	}
	if bpm <= 20 || bpm > 250 {
		return nil, fmt.Errorf("heartbeat: bpm %v outside (20, 250]", bpm)
	}
	return &App{ecg: sensor.NewECGWave(seed, sp.QoSRateHz, bpm, irregularBeats...)}, nil
}

// Spec returns the workload description.
func (a *App) Spec() apps.Spec { return spec }

// Source returns the pulse waveform.
func (a *App) Source(id sensor.ID) (sensor.Source, error) {
	if id != sensor.Pulse {
		return nil, fmt.Errorf("%w: %s", apps.ErrUnknownSensor, id)
	}
	return a.ecg, nil
}

// TrueBeats reports the ground-truth beat count in the first n samples.
func (a *App) TrueBeats(n int) int { return a.ecg.TrueBeats(n) }

// Compute extracts R peaks and flags irregular RR intervals in one window.
func (a *App) Compute(in apps.WindowInput) (apps.Result, error) {
	raw := in.Samples[sensor.Pulse]
	if len(raw) < 100 {
		return apps.Result{}, fmt.Errorf("heartbeat: window %d has %d samples, need >= 100", in.Window, len(raw))
	}
	xs := make([]float64, len(raw))
	for i, b := range raw {
		v, err := sensor.DecodeI32(b)
		if err != nil {
			return apps.Result{}, fmt.Errorf("heartbeat: sample %d: %w", i, err)
		}
		xs[i] = float64(v)
	}
	detrended := dsp.Detrend(dsp.MovingAverage(xs, 5))
	// R peaks are prominent; require at least half the max excursion and a
	// 250 ms refractory period (240 BPM ceiling).
	maxV := 0.0
	for _, v := range detrended {
		if v > maxV {
			maxV = v
		}
	}
	peaks := dsp.FindPeaks(detrended, maxV*0.5, 250)
	var irregular int
	if len(peaks) >= 3 {
		rr := make([]float64, 0, len(peaks)-1)
		for i := 1; i < len(peaks); i++ {
			rr = append(rr, float64(peaks[i]-peaks[i-1]))
		}
		med := median(rr)
		for _, iv := range rr {
			if med > 0 && abs(iv-med)/med > IrregularDeviation {
				irregular++
			}
		}
	}
	// Independent rate estimate from the waveform's dominant period
	// (autocorrelation pitch tracking), robust when peak detection is
	// marginal. Lags span 250..1500 ms, i.e. 40..240 BPM.
	sampleRate := float64(len(xs)) / spec.Window.Seconds()
	bpm := 0.0
	minLag := int(sampleRate * 60 / 240)
	maxLag := int(sampleRate * 60 / 40)
	if maxLag >= len(detrended) {
		maxLag = len(detrended) - 1 // a 1 s window bounds detection to >=60 BPM
	}
	if minLag >= 1 && maxLag > minLag {
		if period, err := dsp.DominantPeriod(detrended, minLag, maxLag); err == nil && period > 0 {
			bpm = 60 * sampleRate / float64(period)
		}
	}
	return apps.Result{
		Summary: fmt.Sprintf("%d beats, %d irregular intervals", len(peaks), irregular),
		Metrics: map[string]float64{
			"beats":     float64(len(peaks)),
			"irregular": float64(irregular),
			"bpm":       bpm,
		},
	}, nil
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return s[len(s)/2]
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
