// Package earthquake implements workload A7: the Smart City earthquake
// detector. It samples the accelerometer at 1 kHz and runs an STA/LTA
// (short-term average over long-term average) trigger over each window; on a
// trigger it additionally cross-checks the event (the paper's app queries a
// public earthquake API — here that check is a local waveform verification,
// which is what makes A7's app-specific compute unusually heavy).
package earthquake

import (
	"fmt"
	"time"

	"iothub/internal/apps"
	"iothub/internal/dsp"
	"iothub/internal/sensor"
)

// TriggerRatio is the STA/LTA threshold that declares an event.
const TriggerRatio = 3.0

var spec = apps.Spec{
	ID:       apps.Earthquake,
	Name:     "Earthquake Detection",
	Category: "Smart City",
	Task:     "Earthquake Predicting Algorithm",
	Sensors:  []apps.SensorUse{{Sensor: sensor.Accelerometer}},
	Window:   time.Second,

	HeapBytes:  16400, // Fig. 6: the smallest footprint of A1–A10
	StackBytes: 400,
	MIPS:       86.46,
}

// App is the earthquake-detection workload.
type App struct {
	quake *sensor.AccelQuake
}

var _ apps.App = (*App)(nil)

// New returns a detector whose input contains a seismic burst starting at
// sample burstStart (negative = quiet signal).
func New(seed int64, burstStart int) (*App, error) {
	sp, err := sensor.Lookup(sensor.Accelerometer)
	if err != nil {
		return nil, err
	}
	return &App{quake: sensor.NewAccelQuake(seed, sp.QoSRateHz, burstStart, 300)}, nil
}

// Spec returns the workload description.
func (a *App) Spec() apps.Spec { return spec }

// Source returns the seismic accelerometer signal.
func (a *App) Source(id sensor.ID) (sensor.Source, error) {
	if id != sensor.Accelerometer {
		return nil, fmt.Errorf("%w: %s", apps.ErrUnknownSensor, id)
	}
	return a.quake, nil
}

// HasEventIn reports the ground truth for samples [0, n).
func (a *App) HasEventIn(n int) bool { return a.quake.HasEvent(n) }

// Compute runs the STA/LTA trigger over one window.
func (a *App) Compute(in apps.WindowInput) (apps.Result, error) {
	raw := in.Samples[sensor.Accelerometer]
	if len(raw) < 200 {
		return apps.Result{}, fmt.Errorf("earthquake: window %d has %d samples, need >= 200", in.Window, len(raw))
	}
	z := make([]float64, len(raw))
	for i, b := range raw {
		v, err := sensor.DecodeVec3(b)
		if err != nil {
			return apps.Result{}, fmt.Errorf("earthquake: sample %d: %w", i, err)
		}
		z[i] = float64(v.Z) - 1000 // remove gravity
	}
	// Single-sample ADC glitches must not look like P-waves: a narrow
	// median filter rejects impulses while leaving real bursts intact.
	z = dsp.MedianFilter(z, 3)
	ratio, err := dsp.STALTA(z, 20, 150)
	if err != nil {
		return apps.Result{}, fmt.Errorf("earthquake: %w", err)
	}
	peak, peakAt := 0.0, -1
	for i, r := range ratio {
		if r > peak {
			peak, peakAt = r, i
		}
	}
	triggered := peak >= TriggerRatio
	confirmed := false
	if triggered {
		confirmed = a.verify(z, peakAt)
	}
	summary := "quiet"
	if confirmed {
		summary = fmt.Sprintf("earthquake detected at sample %d (sta/lta %.1f)", peakAt, peak)
	}
	return apps.Result{
		Summary: summary,
		Metrics: map[string]float64{
			"triggered": btof(triggered),
			"confirmed": btof(confirmed),
			"peakRatio": peak,
		},
	}, nil
}

// verify cross-checks a trigger: a genuine seismic burst keeps elevated
// energy for tens of milliseconds, where a single-sample glitch does not.
func (a *App) verify(z []float64, at int) bool {
	lo := at
	hi := at + 50
	if hi > len(z) {
		hi = len(z)
	}
	if lo >= hi {
		return false
	}
	return dsp.RMS(z[lo:hi]) > 3*dsp.RMS(z[:150])
}

func btof(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
