package earthquake

import (
	"testing"

	"iothub/internal/apps"
	"iothub/internal/sensor"
)

func TestDetectsBurstWindow(t *testing.T) {
	a, err := New(3, 1500) // burst in window 1
	if err != nil {
		t.Fatal(err)
	}
	quiet, err := apps.CollectWindow(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Compute(quiet)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics["confirmed"] != 0 {
		t.Errorf("window 0 confirmed an event: %s", res.Summary)
	}
	shaking, err := apps.CollectWindow(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err = a.Compute(shaking)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics["confirmed"] != 1 {
		t.Errorf("window 1 missed the event: %s (ratio %.2f)", res.Summary, res.Metrics["peakRatio"])
	}
}

func TestQuietSignalNeverTriggers(t *testing.T) {
	a, err := New(9, -1)
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 3; w++ {
		in, err := apps.CollectWindow(a, w)
		if err != nil {
			t.Fatal(err)
		}
		res, err := a.Compute(in)
		if err != nil {
			t.Fatal(err)
		}
		if res.Metrics["triggered"] != 0 {
			t.Errorf("window %d false trigger (ratio %.2f)", w, res.Metrics["peakRatio"])
		}
	}
	if a.HasEventIn(100000) {
		t.Error("ground truth reports event for quiet generator")
	}
}

func TestComputeRejectsShortWindow(t *testing.T) {
	a, err := New(1, -1)
	if err != nil {
		t.Fatal(err)
	}
	short := apps.WindowInput{Samples: map[sensor.ID][][]byte{
		sensor.Accelerometer: make([][]byte, 10),
	}}
	if _, err := a.Compute(short); err == nil {
		t.Error("10-sample window accepted")
	}
}

func TestSpecShape(t *testing.T) {
	a, err := New(1, -1)
	if err != nil {
		t.Fatal(err)
	}
	sp := a.Spec()
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	// Fig. 6: earthquake has the smallest memory footprint.
	if sp.MemoryBytes() != 16800 {
		t.Errorf("memory = %d, want 16800", sp.MemoryBytes())
	}
	if _, err := a.Source(sensor.Light); err == nil {
		t.Error("undeclared sensor accepted")
	}
}

func TestSingleSampleGlitchDoesNotTrigger(t *testing.T) {
	a, err := New(7, -1)
	if err != nil {
		t.Fatal(err)
	}
	in, err := apps.CollectWindow(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one sample with a massive ADC glitch.
	in.Samples[sensor.Accelerometer][500] = sensor.EncodeVec3(sensor.Vec3{X: 0, Y: 0, Z: 30000})
	res, err := a.Compute(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics["confirmed"] == 1 {
		t.Errorf("glitch confirmed as earthquake: %s", res.Summary)
	}
}
