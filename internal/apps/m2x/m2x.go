// Package m2x implements workload A4: the AT&T M2X cloud-interfacing client.
// It reads five sensors (barometer, temperature, accelerometer, air quality,
// light) and once per window assembles the vendor's device-report document —
// one named stream per sensor with summary statistics — ready for upload.
package m2x

import (
	"fmt"
	"time"

	"iothub/internal/apps"
	"iothub/internal/dsp"
	"iothub/internal/httplite"
	"iothub/internal/jsonlite"
	"iothub/internal/sensor"
)

var spec = apps.Spec{
	ID:       apps.M2X,
	Name:     "M2X",
	Category: "Cloud Communication",
	Task:     "Cloud Interfacing with AT&T",
	Sensors: []apps.SensorUse{
		{Sensor: sensor.Barometer},
		{Sensor: sensor.Temperature},
		{Sensor: sensor.Accelerometer},
		{Sensor: sensor.AirQuality},
		{Sensor: sensor.Light},
	},
	Window: time.Second,

	HeapBytes:  29700,
	StackBytes: 400,
	MIPS:       52.6,
}

// App is the M2X workload.
type App struct {
	sources map[sensor.ID]sensor.Source
}

var _ apps.App = (*App)(nil)

// New returns the workload with deterministic inputs on all five sensors.
func New(seed int64) (*App, error) {
	sources := make(map[sensor.ID]sensor.Source, len(spec.Sensors))
	for i, u := range spec.Sensors {
		src, err := sensor.DefaultSource(u.Sensor, seed+int64(i))
		if err != nil {
			return nil, fmt.Errorf("m2x: %w", err)
		}
		sources[u.Sensor] = src
	}
	return &App{sources: sources}, nil
}

// Spec returns the workload description.
func (a *App) Spec() apps.Spec { return spec }

// Source returns the signal for one of the five sensors.
func (a *App) Source(id sensor.ID) (sensor.Source, error) {
	src, ok := a.sources[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", apps.ErrUnknownSensor, id)
	}
	return src, nil
}

// streamName maps sensors to M2X stream identifiers.
var streamName = map[sensor.ID]string{
	sensor.Barometer:     "pressure",
	sensor.Temperature:   "temperature",
	sensor.Accelerometer: "motion",
	sensor.AirQuality:    "air-quality",
	sensor.Light:         "ambient-light",
}

// Compute builds the device report: per-stream value counts and statistics.
func (a *App) Compute(in apps.WindowInput) (apps.Result, error) {
	b := jsonlite.NewBuilder(1024)
	b.BeginObject().
		Key("device").Str("iothub-sim-001").
		Key("window").Int(int64(in.Window)).
		Key("streams").BeginArray()
	values := 0
	for _, u := range spec.Sensors {
		vals, err := toScalars(u.Sensor, in.Samples[u.Sensor])
		if err != nil {
			return apps.Result{}, fmt.Errorf("m2x: %s: %w", u.Sensor, err)
		}
		values += len(vals)
		b.BeginObject().
			Key("name").Str(streamName[u.Sensor]).
			Key("count").Int(int64(len(vals))).
			Key("mean").Num(round6(dsp.Mean(vals))).
			Key("stddev").Num(round6(dsp.Std(vals))).
			EndObject()
	}
	b.EndArray().EndObject()
	doc, err := b.Bytes()
	if err != nil {
		return apps.Result{}, fmt.Errorf("m2x: build report: %w", err)
	}
	if _, err := jsonlite.Parse(doc); err != nil {
		return apps.Result{}, fmt.Errorf("m2x: self-check: %w", err)
	}

	// Wrap the report in the vendor's REST call: POST the update document
	// with the account key, then verify the cloud's acknowledgement.
	req := &httplite.Request{
		Method: "POST",
		Path:   "/v2/devices/iothub-sim-001/updates",
		Host:   "api-m2x.att.com",
		Headers: map[string]string{
			"X-M2X-KEY":    "0123456789abcdef0123456789abcdef",
			"Content-Type": "application/json",
		},
		Body: doc,
	}
	wire, err := req.Marshal()
	if err != nil {
		return apps.Result{}, fmt.Errorf("m2x: marshal request: %w", err)
	}
	ack, err := cloudAck(wire)
	if err != nil {
		return apps.Result{}, fmt.Errorf("m2x: %w", err)
	}
	return apps.Result{
		Summary: fmt.Sprintf("POST %d-stream update (%d values, %d B) -> %d",
			len(spec.Sensors), values, len(wire), ack.Status),
		Upstream: wire,
		Metrics: map[string]float64{
			"streams":    float64(len(spec.Sensors)),
			"values":     float64(values),
			"httpStatus": float64(ack.Status),
		},
	}, nil
}

// cloudAck models the M2X endpoint: it parses the device's request and
// returns the service's 202 Accepted acknowledgement, exercising both wire
// directions.
func cloudAck(wire []byte) (*httplite.Response, error) {
	req, err := httplite.ParseRequest(wire)
	if err != nil {
		return nil, fmt.Errorf("cloud rejected request: %w", err)
	}
	if req.Headers["X-M2X-KEY"] == "" {
		return nil, fmt.Errorf("cloud rejected request: missing API key")
	}
	if _, err := jsonlite.Parse(req.Body); err != nil {
		return nil, fmt.Errorf("cloud rejected body: %w", err)
	}
	raw, err := httplite.MarshalResponse(202, "Accepted",
		map[string]string{"Content-Type": "application/json"},
		[]byte(`{"status":"accepted"}`))
	if err != nil {
		return nil, err
	}
	return httplite.ParseResponse(raw)
}

// toScalars reduces raw samples to scalar magnitudes per sensor type.
func toScalars(id sensor.ID, raw [][]byte) ([]float64, error) {
	sp, err := sensor.Lookup(id)
	if err != nil {
		return nil, err
	}
	out := make([]float64, 0, len(raw))
	for i, smp := range raw {
		var v float64
		switch {
		case id == sensor.Accelerometer:
			vec, err := sensor.DecodeVec3(smp)
			if err != nil {
				return nil, fmt.Errorf("sample %d: %w", i, err)
			}
			v = float64(vec.Z)
		case sp.SampleBytes == 4:
			iv, err := sensor.DecodeI32(smp)
			if err != nil {
				return nil, fmt.Errorf("sample %d: %w", i, err)
			}
			v = float64(iv)
		default:
			fv, err := sensor.DecodeF64(smp)
			if err != nil {
				return nil, fmt.Errorf("sample %d: %w", i, err)
			}
			v = fv
		}
		out = append(out, v)
	}
	return out, nil
}

func round6(v float64) float64 {
	const k = 1e6
	if v >= 0 {
		return float64(int64(v*k+0.5)) / k
	}
	return float64(int64(v*k-0.5)) / k
}
