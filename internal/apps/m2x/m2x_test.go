package m2x

import (
	"testing"

	"iothub/internal/apps"
	"iothub/internal/httplite"
	"iothub/internal/jsonlite"
	"iothub/internal/sensor"
)

func TestReportStructure(t *testing.T) {
	a, err := New(31)
	if err != nil {
		t.Fatal(err)
	}
	in, err := apps.CollectWindow(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Compute(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics["streams"] != 5 {
		t.Errorf("streams = %v, want 5", res.Metrics["streams"])
	}
	// Table II: 2220 values per window across the five sensors.
	if res.Metrics["values"] != 2220 {
		t.Errorf("values = %v, want 2220", res.Metrics["values"])
	}
	req, err := httplite.ParseRequest(res.Upstream)
	if err != nil {
		t.Fatalf("upstream not valid HTTP: %v", err)
	}
	if req.Method != "POST" || req.Host != "api-m2x.att.com" {
		t.Errorf("request %s %s to %s", req.Method, req.Path, req.Host)
	}
	if req.Headers["X-M2X-KEY"] == "" {
		t.Error("API key header missing")
	}
	if res.Metrics["httpStatus"] != 202 {
		t.Errorf("cloud status = %v, want 202", res.Metrics["httpStatus"])
	}
	v, err := jsonlite.Parse(req.Body)
	if err != nil {
		t.Fatalf("report not valid JSON: %v", err)
	}
	doc := v.(map[string]any)
	streams, ok := doc["streams"].([]any)
	if !ok || len(streams) != 5 {
		t.Fatalf("streams = %v", doc["streams"])
	}
	names := map[string]bool{}
	for _, s := range streams {
		entry := s.(map[string]any)
		name, _ := entry["name"].(string)
		names[name] = true
		if c, ok := entry["count"].(float64); !ok || c < 1 {
			t.Errorf("stream %q count = %v", name, entry["count"])
		}
	}
	for _, want := range []string{"pressure", "temperature", "motion", "air-quality", "ambient-light"} {
		if !names[want] {
			t.Errorf("stream %q missing from report", want)
		}
	}
}

func TestAccelStreamStatisticsPlausible(t *testing.T) {
	a, err := New(31)
	if err != nil {
		t.Fatal(err)
	}
	in, err := apps.CollectWindow(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Compute(in)
	if err != nil {
		t.Fatal(err)
	}
	req, err := httplite.ParseRequest(res.Upstream)
	if err != nil {
		t.Fatal(err)
	}
	v, err := jsonlite.Parse(req.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range v.(map[string]any)["streams"].([]any) {
		entry := s.(map[string]any)
		if entry["name"] == "motion" {
			mean := entry["mean"].(float64)
			if mean < 800 || mean > 1200 {
				t.Errorf("motion mean = %v, want ~1000 milli-g", mean)
			}
			return
		}
	}
	t.Fatal("motion stream missing")
}

func TestComputeRejectsMalformed(t *testing.T) {
	a, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	in := apps.WindowInput{Samples: map[sensor.ID][][]byte{
		sensor.Accelerometer: {make([]byte, 1)},
	}}
	if _, err := a.Compute(in); err == nil {
		t.Error("malformed sample accepted")
	}
}

func TestSpecMatchesTableII(t *testing.T) {
	a, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	sp := a.Spec()
	irq, err := sp.InterruptsPerWindow()
	if err != nil || irq != 2220 {
		t.Errorf("interrupts = %d, want 2220", irq)
	}
	data, err := sp.DataBytesPerWindow()
	if err != nil || data != 20960 {
		t.Errorf("data = %d B, want 20960 (20.47 KB)", data)
	}
}
