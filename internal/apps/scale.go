package apps

import (
	"fmt"

	"iothub/internal/sensor"
)

// ScaleRates returns a view of the app whose per-sensor sampling rates are
// multiplied by mult — the knob behind QoS-rate sweeps (energy savings vs
// sampling rate). A multiplier of 1 returns the app unchanged. Scaled rates
// are clamped into the sensor's feasible band: at most MaxRateHz, and never
// so low that a window sees no samples. Single-shot sensors (QoS rate 0)
// keep their one-per-window schedule at any multiplier.
func ScaleRates(a App, mult float64) (App, error) {
	if mult <= 0 {
		return nil, fmt.Errorf("apps: rate multiplier %v, want > 0", mult)
	}
	if mult == 1 {
		return a, nil
	}
	sp := a.Spec()
	scaled := make([]SensorUse, len(sp.Sensors))
	copy(scaled, sp.Sensors)
	for i := range scaled {
		sspec, err := sensor.Lookup(scaled[i].Sensor)
		if err != nil {
			return nil, err
		}
		base := scaled[i].RateHz
		if base == 0 {
			base = sspec.QoSRateHz
		}
		if base == 0 {
			continue // single-shot: one sample per window regardless of rate
		}
		rate := base * mult
		if min := 1 / sp.Window.Seconds(); rate < min {
			rate = min
		}
		if sspec.MaxRateHz > 0 && rate > sspec.MaxRateHz {
			rate = sspec.MaxRateHz
		}
		scaled[i].RateHz = rate
	}
	sp.Sensors = scaled
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	return &scaledApp{inner: a, spec: sp}, nil
}

// scaledApp overrides only the Spec; sources and computation delegate to the
// wrapped app (synthetic sources are indexed by absolute sample number, so
// they serve any rate).
type scaledApp struct {
	inner App
	spec  Spec
}

func (s *scaledApp) Spec() Spec                                 { return s.spec }
func (s *scaledApp) Source(id sensor.ID) (sensor.Source, error) { return s.inner.Source(id) }
func (s *scaledApp) Compute(in WindowInput) (Result, error)     { return s.inner.Compute(in) }
