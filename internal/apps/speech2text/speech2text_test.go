package speech2text

import (
	"testing"

	"iothub/internal/apps"
	"iothub/internal/sensor"
)

func TestTranscribesOneWordPerWindow(t *testing.T) {
	utterance := []sensor.AudioWord{sensor.WordYes, sensor.WordNo, sensor.WordGo}
	a, err := New(81, utterance...)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for w := 0; w < len(utterance); w++ {
		in, err := apps.CollectWindow(a, w)
		if err != nil {
			t.Fatal(err)
		}
		res, err := a.Compute(in)
		if err != nil {
			t.Fatalf("window %d: %v", w, err)
		}
		if string(res.Upstream) == utterance[w].String() {
			correct++
		} else {
			t.Logf("window %d: got %q, want %q", w, res.Upstream, utterance[w])
		}
	}
	if correct < len(utterance)-1 {
		t.Errorf("transcribed %d/%d words correctly", correct, len(utterance))
	}
}

func TestSilentWindowYieldsEmptyTranscript(t *testing.T) {
	a, err := New(81, sensor.WordYes)
	if err != nil {
		t.Fatal(err)
	}
	// Window 3 is past the single-word utterance: silence.
	in, err := apps.CollectWindow(a, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Compute(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Upstream) != 0 {
		t.Errorf("silence transcribed as %q", res.Upstream)
	}
}

func TestGroundTruthHelper(t *testing.T) {
	a, err := New(1, sensor.WordStop, sensor.WordGo)
	if err != nil {
		t.Fatal(err)
	}
	if a.TrueWord(0) != sensor.WordStop || a.TrueWord(1) != sensor.WordGo {
		t.Error("TrueWord wrong for utterance windows")
	}
	if a.TrueWord(5) != sensor.WordSilence || a.TrueWord(-1) != sensor.WordSilence {
		t.Error("TrueWord wrong outside utterance")
	}
}

func TestHeavySpecGatesOffload(t *testing.T) {
	a, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	sp := a.Spec()
	if !sp.Heavy {
		t.Error("A11 not marked heavy")
	}
	if sp.HeapBytes < 1_000_000_000 {
		t.Errorf("heap = %d, want 1.43 GB class", sp.HeapBytes)
	}
	if sp.MIPS != 4683 {
		t.Errorf("MIPS = %v, want 4683 (§IV-E3)", sp.MIPS)
	}
	// Memory-bound: compute occupies most of the window on the CPU.
	ct, err := sp.CPUComputeTime(24000)
	if err != nil {
		t.Fatal(err)
	}
	if ct.Seconds() < 0.85 || ct.Seconds() > 0.99 {
		t.Errorf("compute time = %v, want ~0.9 s (compute-dominated window, Fig. 12a)", ct)
	}
	data, err := sp.DataBytesPerWindow()
	if err != nil || data != 6000 {
		t.Errorf("data = %d B, want 6000 (5.86 KB)", data)
	}
}

func TestComputeRejectsBadAudio(t *testing.T) {
	a, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Compute(apps.WindowInput{Samples: map[sensor.ID][][]byte{}}); err == nil {
		t.Error("empty window accepted")
	}
	bad := apps.WindowInput{Samples: map[sensor.ID][][]byte{
		sensor.Sound: {make([]byte, 1)},
	}}
	if _, err := a.Compute(bad); err == nil {
		t.Error("malformed sample accepted")
	}
}
