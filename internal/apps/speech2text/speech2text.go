// Package speech2text implements workload A11: the Smart City speech-to-text
// converter — the paper's one heavy-weight app. It records one second of
// sound-sensor audio per window and decodes it to text with the MFCC+DTW
// keyword spotter of package speech (the PocketSphinx stand-in).
//
// A11 is heavy on two axes, exactly as §IV-E3 describes: its model footprint
// (1.43 GB) can never fit an MCU, and its compute demand (4683 MIPS,
// memory-bound on the CPU) exceeds what a 19×-slower MCU could finish within
// the QoS window. The classifier in internal/core must therefore refuse to
// offload it, leaving Batching as its only optimization.
package speech2text

import (
	"fmt"
	"strings"
	"time"

	"iothub/internal/apps"
	"iothub/internal/sensor"
	"iothub/internal/speech"
)

// audioRate is the sound sensor's QoS sampling rate.
const audioRate = 1000

// samplesPerWord / gapSamples shape one spoken word per one-second window.
const (
	samplesPerWord = 600
	gapSamples     = 400
)

var spec = apps.Spec{
	ID:       apps.SpeechToTxt,
	Name:     "Speech-To-Text",
	Category: "Smart City",
	Task:     "Voice-to-text conversion",
	// Table II lists 5.86 KB of sensor data per window: 1000 samples of
	// 6 bytes, overriding the sound sensor's 4-byte default (DESIGN.md §5).
	Sensors: []apps.SensorUse{{Sensor: sensor.Sound, BytesPerSmp: 6}},
	Window:  time.Second,

	HeapBytes:  1_430_000_000, // §IV-E3: 1.43 GB model footprint
	StackBytes: 4096,
	MIPS:       4683, // §IV-E3: per second of audio
	Heavy:      true,
	// Memory-bound decode: the CPU sustains a fraction of peak throughput,
	// so converting one second of audio occupies ~0.9 s of CPU time. This
	// is what makes A11's app-specific compute dominate its energy (78% in
	// Fig. 12a) and leaves the CPU no room to sleep — the reason Batching
	// yields only ~5% for heavy-weight apps.
	EffectiveMIPS: 5200,
}

// App is the speech-to-text workload.
type App struct {
	gen        *sensor.AudioSpeech
	recognizer *speech.Recognizer
	utterance  []sensor.AudioWord
}

var _ apps.App = (*App)(nil)

// vocabulary is the keyword set the recognizer is trained on.
var vocabulary = []sensor.AudioWord{
	sensor.WordYes, sensor.WordNo, sensor.WordStop, sensor.WordGo,
}

// New returns the workload speaking the given utterance, one word per
// window (defaults to a fixed four-word sequence when empty).
func New(seed int64, utterance ...sensor.AudioWord) (*App, error) {
	if len(utterance) == 0 {
		utterance = []sensor.AudioWord{
			sensor.WordYes, sensor.WordStop, sensor.WordGo, sensor.WordNo,
		}
	}
	frontend, err := speech.NewFrontend(audioRate)
	if err != nil {
		return nil, fmt.Errorf("speech2text: %w", err)
	}
	templates := make([]speech.Template, 0, len(vocabulary))
	for _, w := range vocabulary {
		// Template audio is rendered from a reference speaker (seed 0).
		ref := sensor.NewAudioSpeech(0, audioRate, samplesPerWord, 0, w)
		pcm := make([]float64, samplesPerWord)
		for i := range pcm {
			pcm[i] = ref.PCMAt(i)
		}
		feats, err := frontend.Features(pcm)
		if err != nil {
			return nil, fmt.Errorf("speech2text: template %s: %w", w, err)
		}
		if len(feats) == 0 {
			return nil, fmt.Errorf("speech2text: template %s produced no frames", w)
		}
		templates = append(templates, speech.Template{Word: w.String(), Features: feats})
	}
	recognizer, err := speech.NewRecognizer(frontend, templates)
	if err != nil {
		return nil, fmt.Errorf("speech2text: %w", err)
	}
	// Sensor noise sits near RMS 20; spoken formants near 3000. The floor
	// keeps silent windows from being segmented as utterances.
	recognizer.MinRMS = 300
	return &App{
		gen:        sensor.NewAudioSpeech(seed, audioRate, samplesPerWord, gapSamples, utterance...),
		recognizer: recognizer,
		utterance:  utterance,
	}, nil
}

// Spec returns the workload description.
func (a *App) Spec() apps.Spec { return spec }

// Source returns the sound stream.
func (a *App) Source(id sensor.ID) (sensor.Source, error) {
	if id != sensor.Sound {
		return nil, fmt.Errorf("%w: %s", apps.ErrUnknownSensor, id)
	}
	return a.gen, nil
}

// TrueWord reports the ground-truth word spoken in window w.
func (a *App) TrueWord(w int) sensor.AudioWord {
	if w < 0 || w >= len(a.utterance) {
		return sensor.WordSilence
	}
	return a.utterance[w]
}

// Compute decodes the window's audio to text.
func (a *App) Compute(in apps.WindowInput) (apps.Result, error) {
	raw := in.Samples[sensor.Sound]
	if len(raw) == 0 {
		return apps.Result{}, fmt.Errorf("speech2text: window %d has no audio", in.Window)
	}
	pcm := make([]float64, len(raw))
	for i, b := range raw {
		v, err := sensor.DecodePCM(b)
		if err != nil {
			return apps.Result{}, fmt.Errorf("speech2text: sample %d: %w", i, err)
		}
		pcm[i] = float64(v)
	}
	words, err := a.recognizer.Decode(pcm)
	if err != nil {
		return apps.Result{}, fmt.Errorf("speech2text: %w", err)
	}
	text := strings.Join(words, " ")
	return apps.Result{
		Summary:  fmt.Sprintf("transcript: %q", text),
		Upstream: []byte(text),
		Metrics:  map[string]float64{"words": float64(len(words))},
	}, nil
}
