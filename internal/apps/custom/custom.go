// Package custom builds user-defined workloads: pick sensors and rates,
// provide the computation, and get an apps.App the hub, the planner, and the
// experiments accept exactly like the paper's eleven. This is the extension
// point a downstream adopter uses to evaluate Batching/COM for *their* app
// before committing to an MCU port.
package custom

import (
	"errors"
	"fmt"
	"time"

	"iothub/internal/apps"
	"iothub/internal/sensor"
)

// ComputeFunc is the user-level task run once per QoS window.
type ComputeFunc func(in apps.WindowInput) (apps.Result, error)

// Builder assembles a custom workload.
type Builder struct {
	spec    apps.Spec
	sources map[sensor.ID]sensor.Source
	compute ComputeFunc
	err     error
}

// NewBuilder starts a workload definition. The ID should not collide with
// the Table II IDs (A1..A11) when run alongside catalog apps.
func NewBuilder(id apps.ID, name string) *Builder {
	return &Builder{
		spec: apps.Spec{
			ID:       id,
			Name:     name,
			Category: "Custom",
			Task:     "user-defined",
		},
		sources: make(map[sensor.ID]sensor.Source),
	}
}

func (b *Builder) fail(err error) *Builder {
	if b.err == nil {
		b.err = err
	}
	return b
}

// WithWindow sets the QoS period (must match any co-scheduled apps).
func (b *Builder) WithWindow(w time.Duration) *Builder {
	if w <= 0 {
		return b.fail(fmt.Errorf("custom: window %v", w))
	}
	b.spec.Window = w
	return b
}

// WithSensor attaches a sensor with a synthetic source. rateHz 0 uses the
// sensor's QoS default; bytesPerSample 0 uses the spec default.
func (b *Builder) WithSensor(id sensor.ID, src sensor.Source, rateHz float64, bytesPerSample int) *Builder {
	if src == nil {
		return b.fail(fmt.Errorf("custom: nil source for %s", id))
	}
	if _, ok := b.sources[id]; ok {
		return b.fail(fmt.Errorf("custom: sensor %s attached twice", id))
	}
	b.spec.Sensors = append(b.spec.Sensors, apps.SensorUse{
		Sensor: id, RateHz: rateHz, BytesPerSmp: bytesPerSample,
	})
	b.sources[id] = src
	return b
}

// WithDefaultSensor attaches a sensor with its package-default generator.
func (b *Builder) WithDefaultSensor(id sensor.ID, seed int64) *Builder {
	src, err := sensor.DefaultSource(id, seed)
	if err != nil {
		return b.fail(err)
	}
	return b.WithSensor(id, src, 0, 0)
}

// WithCharacterization sets the Figure 6 cost constants the simulator and
// the planner price the app with.
func (b *Builder) WithCharacterization(heapBytes, stackBytes int, mips float64) *Builder {
	b.spec.HeapBytes = heapBytes
	b.spec.StackBytes = stackBytes
	b.spec.MIPS = mips
	return b
}

// WithFPPenalty marks the computation floating-point heavy (>1 multiplies
// the MCU slowdown; the ESP8266 class has no FPU).
func (b *Builder) WithFPPenalty(penalty float64) *Builder {
	b.spec.FPPenalty = penalty
	return b
}

// Heavy marks the workload non-offloadable regardless of its numbers.
func (b *Builder) Heavy(effectiveMIPS float64) *Builder {
	b.spec.Heavy = true
	b.spec.EffectiveMIPS = effectiveMIPS
	return b
}

// WithCompute sets the user-level task.
func (b *Builder) WithCompute(fn ComputeFunc) *Builder {
	if fn == nil {
		return b.fail(errors.New("custom: nil compute"))
	}
	b.compute = fn
	return b
}

// Build validates and returns the workload.
func (b *Builder) Build() (apps.App, error) {
	if b.err != nil {
		return nil, b.err
	}
	if b.compute == nil {
		return nil, errors.New("custom: missing compute (use WithCompute)")
	}
	if b.spec.Window == 0 {
		// Default to the catalog's 1 s QoS window.
		b.spec.Window = time.Second
	}
	if err := b.spec.Validate(); err != nil {
		return nil, err
	}
	return &app{spec: b.spec, sources: b.sources, compute: b.compute}, nil
}

type app struct {
	spec    apps.Spec
	sources map[sensor.ID]sensor.Source
	compute ComputeFunc
}

var _ apps.App = (*app)(nil)

func (a *app) Spec() apps.Spec { return a.spec }

func (a *app) Source(id sensor.ID) (sensor.Source, error) {
	src, ok := a.sources[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", apps.ErrUnknownSensor, id)
	}
	return src, nil
}

func (a *app) Compute(in apps.WindowInput) (apps.Result, error) {
	return a.compute(in)
}
