package custom

import (
	"fmt"
	"testing"
	"time"

	"iothub/internal/apps"
	"iothub/internal/core"
	"iothub/internal/dsp"
	"iothub/internal/hub"
	"iothub/internal/sensor"
)

// newTiltMonitor builds a simple custom workload: 100 Hz accelerometer,
// mean-tilt computation.
func newTiltMonitor(t *testing.T) apps.App {
	t.Helper()
	a, err := NewBuilder("C1", "tilt monitor").
		WithDefaultSensor(sensor.Accelerometer, 5).
		WithCharacterization(8_000, 256, 2.5).
		WithCompute(func(in apps.WindowInput) (apps.Result, error) {
			zs := make([]float64, 0, len(in.Samples[sensor.Accelerometer]))
			for _, raw := range in.Samples[sensor.Accelerometer] {
				v, err := sensor.DecodeVec3(raw)
				if err != nil {
					return apps.Result{}, err
				}
				zs = append(zs, float64(v.Z))
			}
			mean := dsp.Mean(zs)
			return apps.Result{
				Summary: fmt.Sprintf("tilt %.0f milli-g over %d samples", mean, len(zs)),
				Metrics: map[string]float64{"meanZ": mean, "n": float64(len(zs))},
			}, nil
		}).
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return a
}

func TestCustomAppRunsUnderEverySingleAppScheme(t *testing.T) {
	for _, scheme := range []hub.Scheme{hub.Baseline, hub.Batching, hub.COM} {
		res, err := hub.Run(hub.Config{
			Apps: []apps.App{newTiltMonitor(t)}, Scheme: scheme, Windows: 2,
		})
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		outs := res.Outputs["C1"]
		if len(outs) != 2 {
			t.Fatalf("%v outputs = %d", scheme, len(outs))
		}
		if n := outs[0].Result.Metrics["n"]; n != 1000 {
			t.Errorf("%v samples = %v, want 1000 (sensor QoS default)", scheme, n)
		}
		if z := outs[0].Result.Metrics["meanZ"]; z < 800 || z > 1200 {
			t.Errorf("%v meanZ = %v", scheme, z)
		}
	}
}

func TestCustomAppWithRateOverride(t *testing.T) {
	src, err := sensor.DefaultSource(sensor.Accelerometer, 9)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewBuilder("C2", "slow tilt").
		WithSensor(sensor.Accelerometer, src, 50, 0).
		WithWindow(time.Second).
		WithCharacterization(4_000, 256, 1).
		WithCompute(func(in apps.WindowInput) (apps.Result, error) {
			return apps.Result{
				Summary: "ok",
				Metrics: map[string]float64{"n": float64(len(in.Samples[sensor.Accelerometer]))},
			}, nil
		}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := hub.Run(hub.Config{Apps: []apps.App{a}, Scheme: hub.Baseline, Windows: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Interrupts != 50 {
		t.Errorf("interrupts = %d, want 50", res.Interrupts)
	}
	if n := res.Outputs["C2"][0].Result.Metrics["n"]; n != 50 {
		t.Errorf("samples = %v, want 50", n)
	}
}

func TestCustomAppClassifiesAndPlans(t *testing.T) {
	light := newTiltMonitor(t)
	cls, err := core.Classify(light.Spec(), hub.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if !cls.Offloadable {
		t.Errorf("light custom app not offloadable: %v", cls.Reasons)
	}
	heavy, err := NewBuilder("C3", "heavy custom").
		WithDefaultSensor(sensor.Sound, 1).
		WithCharacterization(2_000_000_000, 4096, 3000).
		Heavy(5000).
		WithCompute(func(in apps.WindowInput) (apps.Result, error) {
			return apps.Result{Summary: "ok"}, nil
		}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	plan, err := core.PlanBCOM([]apps.App{light, heavy}, hub.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if plan.Assign["C1"] != hub.Offloaded || plan.Assign["C3"] != hub.Batched {
		t.Errorf("plan = %v", plan.Assign)
	}
}

func TestBuilderValidation(t *testing.T) {
	if _, err := NewBuilder("CX", "x").Build(); err == nil {
		t.Error("missing compute accepted")
	}
	noop := func(apps.WindowInput) (apps.Result, error) { return apps.Result{}, nil }
	if _, err := NewBuilder("CX", "x").WithCompute(noop).Build(); err == nil {
		t.Error("no sensors accepted")
	}
	if _, err := NewBuilder("CX", "x").
		WithSensor(sensor.Sound, nil, 0, 0).WithCompute(noop).Build(); err == nil {
		t.Error("nil source accepted")
	}
	if _, err := NewBuilder("CX", "x").
		WithDefaultSensor(sensor.Sound, 1).
		WithDefaultSensor(sensor.Sound, 2).
		WithCompute(noop).Build(); err == nil {
		t.Error("duplicate sensor accepted")
	}
	if _, err := NewBuilder("CX", "x").
		WithDefaultSensor(sensor.Sound, 1).
		WithWindow(-time.Second).
		WithCompute(noop).Build(); err == nil {
		t.Error("negative window accepted")
	}
	if _, err := NewBuilder("CX", "x").
		WithDefaultSensor(sensor.Sound, 1).
		WithCompute(nil).Build(); err == nil {
		t.Error("nil compute accepted")
	}
	if _, err := NewBuilder("", "x").
		WithDefaultSensor(sensor.Sound, 1).
		WithCompute(noop).Build(); err == nil {
		t.Error("empty ID accepted")
	}
}
