// Package jpegdec implements workload A9: the Security-domain JPEG decoder.
// Each window delivers one raw low-resolution camera frame; the workload
// compresses it and runs the decode pipeline — Huffman decode, dequantize,
// and the inverse DCT that Table II names as the user-level task — then
// verifies reconstruction fidelity.
package jpegdec

import (
	"fmt"
	"time"

	"iothub/internal/apps"
	"iothub/internal/jpegcodec"
	"iothub/internal/sensor"
)

// Quality is the compression quality used for the round trip.
const Quality = 85

// MinPSNR is the reconstruction fidelity the workload requires.
const MinPSNR = 25.0

// frame geometry inside the sensor's fixed-size payload.
const (
	frameWidth  = 96
	frameHeight = 84
)

var spec = apps.Spec{
	ID:       apps.JPEGDecoder,
	Name:     "JPEG Decoder",
	Category: "Security",
	Task:     "Inverse Discrete Cosine Transform (IDCT)",
	Sensors:  []apps.SensorUse{{Sensor: sensor.LowResImage}},
	Window:   time.Second,

	HeapBytes:  35900, // Fig. 6: the largest footprint of A1–A10
	StackBytes: 400,
	MIPS:       75.1,
}

// App is the JPEG-decoder workload.
type App struct {
	camera sensor.Source
}

var _ apps.App = (*App)(nil)

// New returns the workload with a deterministic camera.
func New(seed int64) (*App, error) {
	sp, err := sensor.Lookup(sensor.LowResImage)
	if err != nil {
		return nil, err
	}
	return &App{camera: sensor.FixedSize{
		Src: sensor.NewFrame(seed, frameWidth, frameHeight),
		N:   sp.SampleBytes,
	}}, nil
}

// Spec returns the workload description.
func (a *App) Spec() apps.Spec { return spec }

// Source returns the camera.
func (a *App) Source(id sensor.ID) (sensor.Source, error) {
	if id != sensor.LowResImage {
		return nil, fmt.Errorf("%w: %s", apps.ErrUnknownSensor, id)
	}
	return a.camera, nil
}

// Compute runs the codec round trip on the window's frame.
func (a *App) Compute(in apps.WindowInput) (apps.Result, error) {
	frames := in.Samples[sensor.LowResImage]
	if len(frames) == 0 {
		return apps.Result{}, fmt.Errorf("jpegdec: window %d has no frame", in.Window)
	}
	img, err := jpegcodec.FromRGB(frames[0], frameWidth, frameHeight)
	if err != nil {
		return apps.Result{}, fmt.Errorf("jpegdec: %w", err)
	}
	compressed, err := jpegcodec.Encode(img, Quality)
	if err != nil {
		return apps.Result{}, fmt.Errorf("jpegdec: encode: %w", err)
	}
	decoded, err := jpegcodec.Decode(compressed)
	if err != nil {
		return apps.Result{}, fmt.Errorf("jpegdec: decode: %w", err)
	}
	psnr, err := jpegcodec.PSNR(img, decoded)
	if err != nil {
		return apps.Result{}, fmt.Errorf("jpegdec: %w", err)
	}
	if psnr < MinPSNR {
		return apps.Result{}, fmt.Errorf("jpegdec: window %d PSNR %.1f dB below %.1f", in.Window, psnr, MinPSNR)
	}
	ratio := float64(len(frames[0])) / float64(len(compressed))
	return apps.Result{
		Summary:  fmt.Sprintf("decoded %dx%d frame: %.1f dB PSNR, %.1fx compression", frameWidth, frameHeight, psnr, ratio),
		Upstream: compressed,
		Metrics: map[string]float64{
			"psnrDB":          psnr,
			"compressedBytes": float64(len(compressed)),
			"ratio":           ratio,
		},
	}, nil
}
