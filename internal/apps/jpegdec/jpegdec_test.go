package jpegdec

import (
	"testing"

	"iothub/internal/apps"
	"iothub/internal/jpegcodec"
	"iothub/internal/sensor"
)

func TestRoundTripMeetsFidelity(t *testing.T) {
	a, err := New(61)
	if err != nil {
		t.Fatal(err)
	}
	in, err := apps.CollectWindow(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Compute(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics["psnrDB"] < MinPSNR {
		t.Errorf("PSNR = %v, want >= %v", res.Metrics["psnrDB"], MinPSNR)
	}
	if res.Metrics["ratio"] < 2 {
		t.Errorf("compression ratio = %v, want >= 2", res.Metrics["ratio"])
	}
	// The upstream payload must itself be a decodable JPEG stream.
	img, err := jpegcodec.Decode(res.Upstream)
	if err != nil {
		t.Fatalf("upstream stream: %v", err)
	}
	if img.Width != 96 || img.Height != 84 {
		t.Errorf("decoded %dx%d", img.Width, img.Height)
	}
}

func TestDistinctFramesPerWindow(t *testing.T) {
	a, err := New(61)
	if err != nil {
		t.Fatal(err)
	}
	r0, err := a.Compute(mustCollect(t, a, 0))
	if err != nil {
		t.Fatal(err)
	}
	r1, err := a.Compute(mustCollect(t, a, 1))
	if err != nil {
		t.Fatal(err)
	}
	if string(r0.Upstream) == string(r1.Upstream) {
		t.Error("windows 0 and 1 produced identical streams")
	}
}

func TestComputeRejectsEmptyWindow(t *testing.T) {
	a, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Compute(apps.WindowInput{Samples: map[sensor.ID][][]byte{}}); err == nil {
		t.Error("empty window accepted")
	}
	short := apps.WindowInput{Samples: map[sensor.ID][][]byte{
		sensor.LowResImage: {make([]byte, 100)},
	}}
	if _, err := a.Compute(short); err == nil {
		t.Error("short frame accepted")
	}
}

func TestSpecMatchesTableII(t *testing.T) {
	a, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	sp := a.Spec()
	irq, err := sp.InterruptsPerWindow()
	if err != nil || irq != 1 {
		t.Errorf("interrupts = %d, want 1", irq)
	}
	data, err := sp.DataBytesPerWindow()
	if err != nil || data != 24380 {
		t.Errorf("data = %d B, want 24380 (23.81 KB)", data)
	}
	// Fig. 6: JPEG has the largest memory footprint.
	if sp.MemoryBytes() != 36300 {
		t.Errorf("memory = %d, want 36300", sp.MemoryBytes())
	}
}

func mustCollect(t *testing.T, a apps.App, w int) apps.WindowInput {
	t.Helper()
	in, err := apps.CollectWindow(a, w)
	if err != nil {
		t.Fatal(err)
	}
	return in
}
