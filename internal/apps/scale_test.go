package apps_test

import (
	"testing"
	"time"

	"iothub/internal/apps"
	"iothub/internal/apps/stepcounter"
	"iothub/internal/sensor"
)

// fakeRateApp is a minimal App over the distance sensor (QoS 1000 Hz, max
// 5000 Hz) for exercising the rate-scaling clamps.
type fakeRateApp struct{ spec apps.Spec }

func (f *fakeRateApp) Spec() apps.Spec { return f.spec }
func (f *fakeRateApp) Source(id sensor.ID) (sensor.Source, error) {
	return nil, apps.ErrUnknownSensor
}
func (f *fakeRateApp) Compute(in apps.WindowInput) (apps.Result, error) {
	return apps.Result{Summary: "fake"}, nil
}

func newFakeRateApp() *fakeRateApp {
	return &fakeRateApp{spec: apps.Spec{
		ID: "AX", Name: "fake", Window: time.Second,
		Sensors: []apps.SensorUse{{Sensor: sensor.Distance}},
	}}
}

func TestScaleRatesScalesSamplesPerWindow(t *testing.T) {
	a, err := stepcounter.New(1)
	if err != nil {
		t.Fatal(err)
	}
	base, err := a.Spec().InterruptsPerWindow()
	if err != nil {
		t.Fatal(err)
	}
	half, err := apps.ScaleRates(a, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := half.Spec().InterruptsPerWindow()
	if err != nil {
		t.Fatal(err)
	}
	if got != base/2 {
		t.Errorf("x0.5 interrupts = %d, want %d", got, base/2)
	}
	// The wrapped app keeps delegating the computation.
	in, err := apps.CollectWindow(half, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := half.Compute(in); err != nil {
		t.Errorf("scaled app compute: %v", err)
	}
}

func TestScaleRatesIdentityAndValidation(t *testing.T) {
	a := newFakeRateApp()
	same, err := apps.ScaleRates(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	if same != apps.App(a) {
		t.Error("x1 did not return the app unchanged")
	}
	if _, err := apps.ScaleRates(a, 0); err == nil {
		t.Error("zero multiplier accepted")
	}
	if _, err := apps.ScaleRates(a, -2); err == nil {
		t.Error("negative multiplier accepted")
	}
}

func TestScaleRatesClamps(t *testing.T) {
	rate := func(a apps.App) float64 { return a.Spec().Sensors[0].RateHz }
	up, err := apps.ScaleRates(newFakeRateApp(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if got := rate(up); got != 5000 {
		t.Errorf("x100 rate = %v Hz, want clamped to max 5000", got)
	}
	down, err := apps.ScaleRates(newFakeRateApp(), 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if got := rate(down); got != 1 {
		t.Errorf("x1e-6 rate = %v Hz, want floored at 1 sample per 1 s window", got)
	}
	n, err := down.Spec().SamplesPerWindow(sensor.Distance)
	if err != nil || n != 1 {
		t.Errorf("floored samples/window = %d, %v; want 1", n, err)
	}
}

func TestScaleRatesKeepsSingleShotSensors(t *testing.T) {
	a := &fakeRateApp{spec: apps.Spec{
		ID: "AY", Name: "single-shot", Window: time.Second,
		Sensors: []apps.SensorUse{{Sensor: sensor.Fingerprint}},
	}}
	scaled, err := apps.ScaleRates(a, 7)
	if err != nil {
		t.Fatal(err)
	}
	if got := scaled.Spec().Sensors[0].RateHz; got != 0 {
		t.Errorf("single-shot rate = %v, want untouched 0", got)
	}
}
