package catalog

import (
	"math"
	"testing"

	"iothub/internal/apps"
	"iothub/internal/sensor"
)

func TestNewUnknownID(t *testing.T) {
	if _, err := New("A99", 1); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestAllSpecsValid(t *testing.T) {
	all, err := All(1)
	if err != nil {
		t.Fatalf("All: %v", err)
	}
	if len(all) != 11 {
		t.Fatalf("len = %d, want 11", len(all))
	}
	for _, a := range all {
		if err := a.Spec().Validate(); err != nil {
			t.Errorf("%s: %v", a.Spec().ID, err)
		}
	}
}

// TestTableIIInterrupts asserts the "# Interrupts" column of Table II
// exactly — the paper's per-window interrupt counts fall out of the sensor
// QoS rates.
func TestTableIIInterrupts(t *testing.T) {
	want := map[apps.ID]int{
		apps.CoAPServer:  2000,
		apps.StepCounter: 1000,
		apps.ArduinoJSON: 20,
		apps.M2X:         2220,
		apps.Blynk:       1221,
		apps.DropboxMgr:  2000,
		apps.Earthquake:  1000,
		apps.Heartbeat:   1000,
		apps.JPEGDecoder: 1,
		apps.Fingerprint: 1,
		apps.SpeechToTxt: 1000,
	}
	all, err := All(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range all {
		sp := a.Spec()
		got, err := sp.InterruptsPerWindow()
		if err != nil {
			t.Fatalf("%s: %v", sp.ID, err)
		}
		if got != want[sp.ID] {
			t.Errorf("%s interrupts = %d, want %d", sp.ID, got, want[sp.ID])
		}
	}
}

// TestTableIIDataVolume asserts the "Sensor Data (KB)" column of Table II.
// A5 deviates from the paper by 0.45 KB (the paper's own rows are not
// mutually consistent; see DESIGN.md §5) — we assert our derivation.
func TestTableIIDataVolume(t *testing.T) {
	wantBytes := map[apps.ID]int{
		apps.CoAPServer:  12000, // 11.72 KB
		apps.StepCounter: 12000, // 11.72 KB
		apps.ArduinoJSON: 160,   // 0.16 KB
		apps.M2X:         20960, // 20.47 KB
		apps.Blynk:       37340, // 36.46 KB (paper prints 36.91)
		apps.DropboxMgr:  12000, // 11.72 KB
		apps.Earthquake:  12000, // 11.72 KB
		apps.Heartbeat:   4000,  // 3.91 KB
		apps.JPEGDecoder: 24380, // 23.81 KB
		apps.Fingerprint: 512,   // 0.5 KB
		apps.SpeechToTxt: 6000,  // 5.86 KB
	}
	all, err := All(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range all {
		sp := a.Spec()
		got, err := sp.DataBytesPerWindow()
		if err != nil {
			t.Fatalf("%s: %v", sp.ID, err)
		}
		if got != wantBytes[sp.ID] {
			t.Errorf("%s data volume = %d B, want %d B", sp.ID, got, wantBytes[sp.ID])
		}
	}
}

// TestFigure6Averages asserts the characterization aggregates the paper
// states in §III-B1: 26.2 KB average memory and 47.45 average MIPS over
// A1–A10, with step-counter and heartbeat as compute extremes and
// earthquake/JPEG as memory extremes.
func TestFigure6Averages(t *testing.T) {
	light, err := Light(1)
	if err != nil {
		t.Fatal(err)
	}
	var memSum, mipsSum float64
	minMem, maxMem := math.Inf(1), math.Inf(-1)
	var minMemID, maxMemID apps.ID
	for _, a := range light {
		sp := a.Spec()
		mem := float64(sp.MemoryBytes())
		memSum += mem
		mipsSum += sp.MIPS
		if mem < minMem {
			minMem, minMemID = mem, sp.ID
		}
		if mem > maxMem {
			maxMem, maxMemID = mem, sp.ID
		}
	}
	if avg := memSum / 10 / 1000; math.Abs(avg-26.2) > 0.05 {
		t.Errorf("avg memory = %.2f KB, want 26.2", avg)
	}
	if avg := mipsSum / 10; math.Abs(avg-47.45) > 0.05 {
		t.Errorf("avg MIPS = %.2f, want 47.45", avg)
	}
	if minMemID != apps.Earthquake {
		t.Errorf("min memory app = %s, want A7 (earthquake)", minMemID)
	}
	if maxMemID != apps.JPEGDecoder {
		t.Errorf("max memory app = %s, want A9 (JPEG)", maxMemID)
	}
}

func TestComputeExtremes(t *testing.T) {
	light, err := Light(1)
	if err != nil {
		t.Fatal(err)
	}
	var minID, maxID apps.ID
	minV, maxV := math.Inf(1), math.Inf(-1)
	for _, a := range light {
		sp := a.Spec()
		if sp.MIPS < minV {
			minV, minID = sp.MIPS, sp.ID
		}
		if sp.MIPS > maxV {
			maxV, maxID = sp.MIPS, sp.ID
		}
	}
	if minID != apps.StepCounter || minV != 3.94 {
		t.Errorf("min MIPS = %s %.2f, want A2 3.94", minID, minV)
	}
	if maxID != apps.Heartbeat || maxV != 108.80 {
		t.Errorf("max MIPS = %s %.2f, want A8 108.80", maxID, maxV)
	}
}

// TestOnlyA11IsHeavy asserts the light/heavy split of Table II.
func TestOnlyA11IsHeavy(t *testing.T) {
	all, err := All(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range all {
		sp := a.Spec()
		if want := sp.ID == apps.SpeechToTxt; sp.Heavy != want {
			t.Errorf("%s Heavy = %v, want %v", sp.ID, sp.Heavy, want)
		}
	}
}

// TestAllAppsComputeOneWindow runs every workload's real computation over
// its first window of synthetic data.
func TestAllAppsComputeOneWindow(t *testing.T) {
	all, err := All(7)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range all {
		sp := a.Spec()
		in, err := apps.CollectWindow(a, 0)
		if err != nil {
			t.Fatalf("%s collect: %v", sp.ID, err)
		}
		res, err := a.Compute(in)
		if err != nil {
			t.Fatalf("%s compute: %v", sp.ID, err)
		}
		if res.Summary == "" {
			t.Errorf("%s produced empty summary", sp.ID)
		}
	}
}

// TestSourcesRejectUndeclaredSensors checks the Source contract across the
// whole catalog.
func TestSourcesRejectUndeclaredSensors(t *testing.T) {
	all, err := All(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range all {
		if _, err := a.Source(sensor.HighResImage); err == nil {
			t.Errorf("%s accepted undeclared sensor", a.Spec().ID)
		}
		for _, u := range a.Spec().Sensors {
			if _, err := a.Source(u.Sensor); err != nil {
				t.Errorf("%s rejected declared sensor %s: %v", a.Spec().ID, u.Sensor, err)
			}
		}
	}
}
