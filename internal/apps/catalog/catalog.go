// Package catalog assembles the full Table II workload set (A1–A11) with
// deterministic default configurations, so the hub, experiments, and
// examples can instantiate any workload by ID.
package catalog

import (
	"fmt"

	"iothub/internal/apps"
	"iothub/internal/apps/blynk"
	"iothub/internal/apps/coapserver"
	"iothub/internal/apps/dropboxmgr"
	"iothub/internal/apps/earthquake"
	"iothub/internal/apps/fingerprint"
	"iothub/internal/apps/heartbeat"
	"iothub/internal/apps/jpegdec"
	"iothub/internal/apps/jsonfmt"
	"iothub/internal/apps/m2x"
	"iothub/internal/apps/speech2text"
	"iothub/internal/apps/stepcounter"
)

// LightIDs lists the ten light-weight workloads in Table II order.
var LightIDs = []apps.ID{
	apps.CoAPServer, apps.StepCounter, apps.ArduinoJSON, apps.M2X,
	apps.Blynk, apps.DropboxMgr, apps.Earthquake, apps.Heartbeat,
	apps.JPEGDecoder, apps.Fingerprint,
}

// AllIDs lists all eleven workloads in Table II order.
var AllIDs = append(append([]apps.ID(nil), LightIDs...), apps.SpeechToTxt)

// New instantiates a workload by Table II ID with its deterministic default
// configuration, derived from seed.
func New(id apps.ID, seed int64) (apps.App, error) {
	switch id {
	case apps.CoAPServer:
		return coapserver.New(seed)
	case apps.StepCounter:
		return stepcounter.New(seed)
	case apps.ArduinoJSON:
		return jsonfmt.New(seed)
	case apps.M2X:
		return m2x.New(seed)
	case apps.Blynk:
		return blynk.New(seed)
	case apps.DropboxMgr:
		return dropboxmgr.New(seed)
	case apps.Earthquake:
		// A quake burst early in the second window keeps both outcomes
		// (quiet and triggered) exercised in multi-window runs.
		return earthquake.New(seed, 1200)
	case apps.Heartbeat:
		// 72 BPM with one stretched interval at beat 3.
		return heartbeat.New(seed, 72, 3)
	case apps.JPEGDecoder:
		return jpegdec.New(seed)
	case apps.Fingerprint:
		// Three enrolled users; the scanner presents user 2's finger.
		return fingerprint.New(seed, 3, 2)
	case apps.SpeechToTxt:
		return speech2text.New(seed)
	default:
		return nil, fmt.Errorf("catalog: unknown workload %q", id)
	}
}

// Light instantiates A1–A10.
func Light(seed int64) ([]apps.App, error) {
	out := make([]apps.App, 0, len(LightIDs))
	for _, id := range LightIDs {
		a, err := New(id, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}

// All instantiates A1–A11.
func All(seed int64) ([]apps.App, error) {
	out, err := Light(seed)
	if err != nil {
		return nil, err
	}
	heavy, err := New(apps.SpeechToTxt, seed)
	if err != nil {
		return nil, err
	}
	return append(out, heavy), nil
}
