package blynk

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"
)

// Dashboard is the smartphone-side state the Blynk frames drive: the latest
// value per virtual pin and the most recent camera thumbnail. It decodes the
// same wire format the workload emits, closing the protocol loop.
type Dashboard struct {
	pins      map[byte]float64
	thumbnail []byte
	frames    int
}

// NewDashboard returns an empty dashboard.
func NewDashboard() *Dashboard {
	return &Dashboard{pins: make(map[byte]float64)}
}

// Frames reports how many frames have been applied.
func (d *Dashboard) Frames() int { return d.frames }

// Pin returns the latest value written to a virtual pin.
func (d *Dashboard) Pin(pin byte) (float64, bool) {
	v, ok := d.pins[pin]
	return v, ok
}

// Thumbnail returns the most recent camera tile (nil before the first).
func (d *Dashboard) Thumbnail() []byte {
	if d.thumbnail == nil {
		return nil
	}
	out := make([]byte, len(d.thumbnail))
	copy(out, d.thumbnail)
	return out
}

// Apply decodes a concatenation of Blynk frames and updates the dashboard.
func (d *Dashboard) Apply(stream []byte) error {
	for len(stream) > 0 {
		if len(stream) < 5 {
			return fmt.Errorf("blynk: truncated frame header (%d bytes)", len(stream))
		}
		cmd := stream[0]
		n := int(binary.BigEndian.Uint16(stream[3:5]))
		if len(stream) < 5+n {
			return fmt.Errorf("blynk: truncated frame body: want %d bytes", n)
		}
		body := stream[5 : 5+n]
		switch cmd {
		case cmdHardware:
			if err := d.applyPinWrite(body); err != nil {
				return err
			}
		case cmdImage:
			d.thumbnail = append([]byte(nil), body...)
		default:
			return fmt.Errorf("blynk: unknown command %d", cmd)
		}
		d.frames++
		stream = stream[5+n:]
	}
	return nil
}

// applyPinWrite parses a "vw\0<pin>\0<value>" body.
func (d *Dashboard) applyPinWrite(body []byte) error {
	parts := strings.Split(string(body), "\x00")
	if len(parts) != 3 || parts[0] != "vw" {
		return fmt.Errorf("blynk: malformed pin write %q", body)
	}
	pin, err := strconv.Atoi(parts[1])
	if err != nil || pin < 0 || pin > 255 {
		return fmt.Errorf("blynk: pin %q", parts[1])
	}
	v, err := strconv.ParseFloat(parts[2], 64)
	if err != nil {
		return fmt.Errorf("blynk: value %q: %v", parts[2], err)
	}
	d.pins[byte(pin)] = v
	return nil
}
