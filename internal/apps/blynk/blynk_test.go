package blynk

import (
	"testing"

	"iothub/internal/apps"
	"iothub/internal/sensor"
)

func TestEmitsParseableFrames(t *testing.T) {
	a, err := New(41)
	if err != nil {
		t.Fatal(err)
	}
	in, err := apps.CollectWindow(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Compute(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics["frames"] != 5 {
		t.Errorf("frames = %v, want 5 (4 pins + thumbnail)", res.Metrics["frames"])
	}
	n, err := ParseFrames(res.Upstream)
	if err != nil {
		t.Fatalf("ParseFrames: %v", err)
	}
	if n != 5 {
		t.Errorf("parsed %d frames, want 5", n)
	}
}

func TestParseFramesErrors(t *testing.T) {
	if _, err := ParseFrames([]byte{1, 2}); err == nil {
		t.Error("truncated header accepted")
	}
	if _, err := ParseFrames([]byte{20, 0, 1, 0, 10, 'x'}); err == nil {
		t.Error("truncated body accepted")
	}
	if n, err := ParseFrames(nil); err != nil || n != 0 {
		t.Errorf("empty stream: %d, %v", n, err)
	}
}

func TestThumbnailAveraging(t *testing.T) {
	// A uniform white frame must produce a uniform white thumbnail.
	rgb := make([]byte, frameWidth*frameHeight*3)
	for i := range rgb {
		rgb[i] = 200
	}
	thumb, err := thumbnail(rgb)
	if err != nil {
		t.Fatal(err)
	}
	if len(thumb) != thumbEdge*thumbEdge {
		t.Fatalf("thumbnail size = %d", len(thumb))
	}
	for i, p := range thumb {
		if p != 200 {
			t.Fatalf("pixel %d = %d, want 200", i, p)
		}
	}
	if _, err := thumbnail(rgb[:100]); err == nil {
		t.Error("short frame accepted")
	}
}

func TestComputeNeedsCameraFrame(t *testing.T) {
	a, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	in, err := apps.CollectWindow(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	in.Samples[sensor.LowResImage] = nil
	if _, err := a.Compute(in); err == nil {
		t.Error("missing camera frame accepted")
	}
}

func TestSpecMatchesTableII(t *testing.T) {
	a, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	sp := a.Spec()
	irq, err := sp.InterruptsPerWindow()
	if err != nil || irq != 1221 {
		t.Errorf("interrupts = %d, want 1221", irq)
	}
	if len(sp.Sensors) != 5 {
		t.Errorf("sensors = %d, want 5", len(sp.Sensors))
	}
}

func TestDashboardMirrorsComputeOutput(t *testing.T) {
	a, err := New(41)
	if err != nil {
		t.Fatal(err)
	}
	in, err := apps.CollectWindow(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Compute(in)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDashboard()
	if err := d.Apply(res.Upstream); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if d.Frames() != 5 {
		t.Errorf("frames = %d, want 5", d.Frames())
	}
	// Pin 0 is the barometer: ~101 kPa.
	p, ok := d.Pin(0)
	if !ok || p < 100000 || p > 103000 {
		t.Errorf("pressure pin = %v, %v", p, ok)
	}
	// Pin 2 is the accelerometer's Z mean: ~1000 milli-g.
	z, ok := d.Pin(2)
	if !ok || z < 800 || z > 1200 {
		t.Errorf("motion pin = %v, %v", z, ok)
	}
	if _, ok := d.Pin(9); ok {
		t.Error("unwritten pin reported a value")
	}
	thumb := d.Thumbnail()
	if len(thumb) != thumbEdge*thumbEdge {
		t.Errorf("thumbnail = %d bytes, want %d", len(thumb), thumbEdge*thumbEdge)
	}
}

func TestDashboardErrors(t *testing.T) {
	d := NewDashboard()
	if err := d.Apply([]byte{1, 2}); err == nil {
		t.Error("truncated header accepted")
	}
	if err := d.Apply(frame(99, 1, []byte("x"))); err == nil {
		t.Error("unknown command accepted")
	}
	if err := d.Apply(frame(cmdHardware, 1, []byte("nope"))); err == nil {
		t.Error("malformed pin write accepted")
	}
	if err := d.Apply(frame(cmdHardware, 1, []byte("vw\x00300\x001"))); err == nil {
		t.Error("out-of-range pin accepted")
	}
	if err := d.Apply(frame(cmdHardware, 1, []byte("vw\x001\x00abc"))); err == nil {
		t.Error("non-numeric value accepted")
	}
	if d.Thumbnail() != nil {
		t.Error("thumbnail before any image frame")
	}
}
