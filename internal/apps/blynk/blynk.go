// Package blynk implements workload A5: the Blynk smartphone-interaction
// platform client. It reads four environmental sensors plus the low-res
// camera and, per window, emits Blynk-style binary pin-update frames
// (command, message id, length, body) including a downsampled camera
// thumbnail for the phone dashboard.
package blynk

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"time"

	"iothub/internal/apps"
	"iothub/internal/dsp"
	"iothub/internal/sensor"
)

// Blynk protocol command codes (subset).
const (
	cmdHardware = 20 // virtual pin write
	cmdImage    = 21 // thumbnail blob (extension used by this workload)
)

// thumbEdge is the thumbnail edge length in pixels.
const thumbEdge = 8

var spec = apps.Spec{
	ID:       apps.Blynk,
	Name:     "Blynk",
	Category: "Smartphone Interactions",
	Task:     "Platform interacting with Smartphones",
	Sensors: []apps.SensorUse{
		{Sensor: sensor.Barometer},
		{Sensor: sensor.Temperature},
		{Sensor: sensor.Accelerometer},
		{Sensor: sensor.AirQuality},
		{Sensor: sensor.LowResImage},
	},
	Window: time.Second,

	HeapBytes:  34400,
	StackBytes: 400,
	MIPS:       58.3,
}

// frameWidth/frameHeight describe the raw camera geometry inside the
// sensor's fixed-size payload.
const (
	frameWidth  = 96
	frameHeight = 84
)

// App is the Blynk workload.
type App struct {
	sources map[sensor.ID]sensor.Source
	msgID   uint16
}

var _ apps.App = (*App)(nil)

// New returns the workload with deterministic inputs.
func New(seed int64) (*App, error) {
	sources := make(map[sensor.ID]sensor.Source, len(spec.Sensors))
	for i, u := range spec.Sensors {
		if u.Sensor == sensor.LowResImage {
			sp, err := sensor.Lookup(sensor.LowResImage)
			if err != nil {
				return nil, err
			}
			sources[u.Sensor] = sensor.FixedSize{
				Src: sensor.NewFrame(seed+int64(i), frameWidth, frameHeight),
				N:   sp.SampleBytes,
			}
			continue
		}
		src, err := sensor.DefaultSource(u.Sensor, seed+int64(i))
		if err != nil {
			return nil, fmt.Errorf("blynk: %w", err)
		}
		sources[u.Sensor] = src
	}
	return &App{sources: sources}, nil
}

// Spec returns the workload description.
func (a *App) Spec() apps.Spec { return spec }

// Source returns the signal for one of the five sensors.
func (a *App) Source(id sensor.ID) (sensor.Source, error) {
	src, ok := a.sources[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", apps.ErrUnknownSensor, id)
	}
	return src, nil
}

// virtualPin maps scalar sensors to dashboard pins.
var virtualPin = map[sensor.ID]byte{
	sensor.Barometer:     0,
	sensor.Temperature:   1,
	sensor.Accelerometer: 2,
	sensor.AirQuality:    3,
}

// Compute emits one pin-update frame per scalar sensor plus a thumbnail.
func (a *App) Compute(in apps.WindowInput) (apps.Result, error) {
	var out []byte
	frames := 0
	for _, u := range spec.Sensors[:4] {
		vals, err := scalarize(u.Sensor, in.Samples[u.Sensor])
		if err != nil {
			return apps.Result{}, fmt.Errorf("blynk: %s: %w", u.Sensor, err)
		}
		body := []byte("vw\x00" + strconv.Itoa(int(virtualPin[u.Sensor])) + "\x00" +
			strconv.FormatFloat(dsp.Mean(vals), 'f', 3, 64))
		a.msgID++
		out = append(out, frame(cmdHardware, a.msgID, body)...)
		frames++
	}
	imgs := in.Samples[sensor.LowResImage]
	if len(imgs) == 0 {
		return apps.Result{}, fmt.Errorf("blynk: window %d has no camera frame", in.Window)
	}
	thumb, err := thumbnail(imgs[0])
	if err != nil {
		return apps.Result{}, fmt.Errorf("blynk: %w", err)
	}
	a.msgID++
	out = append(out, frame(cmdImage, a.msgID, thumb)...)
	frames++

	return apps.Result{
		Summary:  fmt.Sprintf("%d Blynk frames (%d bytes)", frames, len(out)),
		Upstream: out,
		Metrics: map[string]float64{
			"frames":     float64(frames),
			"frameBytes": float64(len(out)),
		},
	}, nil
}

// frame packs one Blynk wire frame: cmd(1) | msgID(2) | len(2) | body.
func frame(cmd byte, msgID uint16, body []byte) []byte {
	out := make([]byte, 0, 5+len(body))
	out = append(out, cmd)
	out = binary.BigEndian.AppendUint16(out, msgID)
	out = binary.BigEndian.AppendUint16(out, uint16(len(body)))
	return append(out, body...)
}

// ParseFrames decodes a concatenation of Blynk frames (used by tests and the
// smartphone-side examples).
func ParseFrames(b []byte) (count int, err error) {
	for len(b) > 0 {
		if len(b) < 5 {
			return count, fmt.Errorf("blynk: truncated frame header (%d bytes)", len(b))
		}
		n := int(binary.BigEndian.Uint16(b[3:5]))
		if len(b) < 5+n {
			return count, fmt.Errorf("blynk: truncated frame body: want %d bytes", n)
		}
		b = b[5+n:]
		count++
	}
	return count, nil
}

// thumbnail block-averages the raw RGB frame to an 8×8 grayscale tile.
func thumbnail(rgb []byte) ([]byte, error) {
	need := frameWidth * frameHeight * 3
	if len(rgb) < need {
		return nil, fmt.Errorf("blynk: frame %d bytes, need %d", len(rgb), need)
	}
	out := make([]byte, thumbEdge*thumbEdge)
	cellW := frameWidth / thumbEdge
	cellH := frameHeight / thumbEdge
	for ty := 0; ty < thumbEdge; ty++ {
		for tx := 0; tx < thumbEdge; tx++ {
			var sum, n int
			for y := ty * cellH; y < (ty+1)*cellH; y++ {
				for x := tx * cellW; x < (tx+1)*cellW; x++ {
					o := (y*frameWidth + x) * 3
					sum += int(rgb[o]) + int(rgb[o+1]) + int(rgb[o+2])
					n += 3
				}
			}
			out[ty*thumbEdge+tx] = byte(sum / n)
		}
	}
	return out, nil
}

func scalarize(id sensor.ID, raw [][]byte) ([]float64, error) {
	sp, err := sensor.Lookup(id)
	if err != nil {
		return nil, err
	}
	out := make([]float64, 0, len(raw))
	for i, smp := range raw {
		var v float64
		switch {
		case id == sensor.Accelerometer:
			vec, err := sensor.DecodeVec3(smp)
			if err != nil {
				return nil, fmt.Errorf("sample %d: %w", i, err)
			}
			v = float64(vec.Z)
		case sp.SampleBytes == 4:
			iv, err := sensor.DecodeI32(smp)
			if err != nil {
				return nil, fmt.Errorf("sample %d: %w", i, err)
			}
			v = float64(iv)
		default:
			fv, err := sensor.DecodeF64(smp)
			if err != nil {
				return nil, fmt.Errorf("sample %d: %w", i, err)
			}
			v = fv
		}
		out = append(out, v)
	}
	return out, nil
}
