// Package stepcounter implements workload A2: the Health Care step counter
// the paper uses as its running example (Fig. 2b). It samples the
// accelerometer at 1 kHz for one second and runs a step-detection algorithm
// over the 1000-sample buffer.
package stepcounter

import (
	"fmt"
	"time"

	"iothub/internal/apps"
	"iothub/internal/dsp"
	"iothub/internal/sensor"
)

// StepRateHz is the walking cadence of the synthetic pedestrian.
const StepRateHz = 2

var spec = apps.Spec{
	ID:       apps.StepCounter,
	Name:     "Step counter",
	Category: "Health Care",
	Task:     "Step-detection Algorithm",
	Sensors:  []apps.SensorUse{{Sensor: sensor.Accelerometer}},
	Window:   time.Second,

	HeapBytes:  20100,
	StackBytes: 400,
	MIPS:       3.94,
}

// App is the step-counter workload.
type App struct {
	walk *sensor.AccelWalk
}

var _ apps.App = (*App)(nil)

// New returns a step counter fed by a deterministic walking signal.
func New(seed int64) (*App, error) {
	sp, err := sensor.Lookup(sensor.Accelerometer)
	if err != nil {
		return nil, err
	}
	return &App{walk: sensor.NewAccelWalk(seed, sp.QoSRateHz, StepRateHz)}, nil
}

// Spec returns the workload description.
func (a *App) Spec() apps.Spec { return spec }

// Source returns the accelerometer signal.
func (a *App) Source(id sensor.ID) (sensor.Source, error) {
	if id != sensor.Accelerometer {
		return nil, fmt.Errorf("%w: %s", apps.ErrUnknownSensor, id)
	}
	return a.walk, nil
}

// TrueSteps reports the ground-truth step count for the first n samples.
func (a *App) TrueSteps(n int) int { return a.walk.TrueSteps(n) }

// Compute runs the step-detection algorithm of Fig. 2b: decode the vertical
// axis, remove gravity, smooth, and count positive-going zero crossings of
// the oscillation.
func (a *App) Compute(in apps.WindowInput) (apps.Result, error) {
	raw := in.Samples[sensor.Accelerometer]
	if len(raw) == 0 {
		return apps.Result{}, fmt.Errorf("stepcounter: window %d has no samples", in.Window)
	}
	z := make([]float64, len(raw))
	for i, b := range raw {
		v, err := sensor.DecodeVec3(b)
		if err != nil {
			return apps.Result{}, fmt.Errorf("stepcounter: sample %d: %w", i, err)
		}
		z[i] = float64(v.Z)
	}
	detrended := dsp.Detrend(z)
	smooth, err := dsp.LowPass(detrended, 0.05)
	if err != nil {
		return apps.Result{}, fmt.Errorf("stepcounter: %w", err)
	}
	steps := dsp.ZeroCrossingsUp(smooth)
	return apps.Result{
		Summary: fmt.Sprintf("%d steps", steps),
		Metrics: map[string]float64{"steps": float64(steps)},
	}, nil
}
