package stepcounter

import (
	"testing"

	"iothub/internal/apps"
	"iothub/internal/sensor"
)

func TestSpecMatchesTableII(t *testing.T) {
	a, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	sp := a.Spec()
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	irq, err := sp.InterruptsPerWindow()
	if err != nil || irq != 1000 {
		t.Errorf("interrupts = %d, want 1000", irq)
	}
	data, err := sp.DataBytesPerWindow()
	if err != nil || data != 12000 {
		t.Errorf("data = %d B, want 12000", data)
	}
	if sp.Heavy {
		t.Error("step counter marked heavy")
	}
}

func TestCountsStepsAccurately(t *testing.T) {
	a, err := New(42)
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 3; w++ {
		in, err := apps.CollectWindow(a, w)
		if err != nil {
			t.Fatal(err)
		}
		res, err := a.Compute(in)
		if err != nil {
			t.Fatalf("window %d: %v", w, err)
		}
		got := int(res.Metrics["steps"])
		want := StepRateHz // 2 steps per 1 s window
		if got < want-1 || got > want+1 {
			t.Errorf("window %d steps = %d, want %d±1", w, got, want)
		}
	}
}

func TestGroundTruthHelper(t *testing.T) {
	a, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.TrueSteps(3000); got != 6 {
		t.Errorf("TrueSteps(3000) = %d, want 6", got)
	}
}

func TestComputeErrors(t *testing.T) {
	a, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Compute(apps.WindowInput{Samples: map[sensor.ID][][]byte{}}); err == nil {
		t.Error("empty window accepted")
	}
	bad := apps.WindowInput{Samples: map[sensor.ID][][]byte{
		sensor.Accelerometer: {make([]byte, 3)},
	}}
	if _, err := a.Compute(bad); err == nil {
		t.Error("malformed sample accepted")
	}
}

func TestSourceContract(t *testing.T) {
	a, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Source(sensor.Sound); err == nil {
		t.Error("undeclared sensor accepted")
	}
	src, err := a.Source(sensor.Accelerometer)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(src.Sample(0)); got != 12 {
		t.Errorf("sample size = %d, want 12", got)
	}
}
