// Package apps defines the workload abstraction shared by the eleven IoT
// applications of the paper's Table II and the calibration data that drives
// their cost model inside the simulator.
//
// Each workload lives in its own subpackage (internal/apps/stepcounter, ...)
// and implements App: it declares its sensors and per-window cost (Spec),
// supplies deterministic synthetic sensor sources with known ground truth,
// and implements the real user-level computation over the raw samples the
// hub delivers. Package internal/apps/catalog assembles the full A1–A11 set.
package apps

import (
	"errors"
	"fmt"
	"time"

	"iothub/internal/sensor"
)

// ID names a workload from Table II ("A1".."A11").
type ID string

// Workload IDs from Table II.
const (
	CoAPServer  ID = "A1"
	StepCounter ID = "A2"
	ArduinoJSON ID = "A3"
	M2X         ID = "A4"
	Blynk       ID = "A5"
	DropboxMgr  ID = "A6"
	Earthquake  ID = "A7"
	Heartbeat   ID = "A8"
	JPEGDecoder ID = "A9"
	Fingerprint ID = "A10"
	SpeechToTxt ID = "A11"
)

// SensorUse binds a workload to one sensor, optionally overriding the
// formatted sample size (Table II's A11 ships 6-byte audio samples over the
// 4-byte sound sensor default; see DESIGN.md §5) or the sampling rate (apps
// that need a sensor below its QoS default — BEAM downsamples the shared
// stream for them).
type SensorUse struct {
	Sensor      sensor.ID
	BytesPerSmp int     // 0 = sensor spec default
	RateHz      float64 // 0 = sensor spec QoS rate
}

// SampleBytes resolves the effective per-sample size.
func (u SensorUse) SampleBytes() (int, error) {
	if u.BytesPerSmp > 0 {
		return u.BytesPerSmp, nil
	}
	sp, err := sensor.Lookup(u.Sensor)
	if err != nil {
		return 0, err
	}
	return sp.SampleBytes, nil
}

// Spec describes a workload: identity, sensing needs, and the
// characterization constants behind Figure 6 and the cost model.
type Spec struct {
	ID       ID
	Name     string
	Category string
	Task     string // the Table II "User-level Tasks" column
	Sensors  []SensorUse
	// Window is the QoS period: one user-level output per window.
	Window time.Duration

	// Characterization (Figure 6): memory footprint and average compute
	// demand in million instructions per window-second.
	HeapBytes  int
	StackBytes int
	MIPS       float64

	// FPPenalty multiplies the MCU slowdown for floating-point-heavy code
	// (the ESP8266 L106 has no FPU); 0 or 1 means no extra penalty.
	FPPenalty float64

	// Heavy marks workloads whose compute or memory demands exceed any MCU
	// (A11); they can never be offloaded.
	Heavy bool
	// EffectiveMIPS caps the CPU throughput this workload actually achieves
	// (memory-bound heavy apps run far below peak); 0 = the CPU's full rate.
	EffectiveMIPS float64
}

// MemoryBytes is the workload's resident footprint (heap + stack).
func (s Spec) MemoryBytes() int { return s.HeapBytes + s.StackBytes }

// Validate checks internal consistency.
func (s Spec) Validate() error {
	if s.ID == "" || s.Name == "" {
		return errors.New("apps: spec missing identity")
	}
	if len(s.Sensors) == 0 {
		return fmt.Errorf("apps: %s uses no sensors", s.ID)
	}
	if s.Window <= 0 {
		return fmt.Errorf("apps: %s window %v", s.ID, s.Window)
	}
	if s.MIPS < 0 || s.HeapBytes < 0 || s.StackBytes < 0 {
		return fmt.Errorf("apps: %s negative characterization", s.ID)
	}
	seen := make(map[sensor.ID]bool, len(s.Sensors))
	for _, u := range s.Sensors {
		sp, err := sensor.Lookup(u.Sensor)
		if err != nil {
			return fmt.Errorf("apps: %s: %w", s.ID, err)
		}
		if seen[u.Sensor] {
			return fmt.Errorf("apps: %s lists %s twice", s.ID, u.Sensor)
		}
		seen[u.Sensor] = true
		if u.RateHz < 0 {
			return fmt.Errorf("apps: %s: negative rate for %s", s.ID, u.Sensor)
		}
		if u.RateHz > 0 && sp.MaxRateHz > 0 && u.RateHz > sp.MaxRateHz {
			return fmt.Errorf("apps: %s: rate %v Hz exceeds %s max %v Hz",
				s.ID, u.RateHz, u.Sensor, sp.MaxRateHz)
		}
	}
	return nil
}

// SamplesPerWindow reports how many samples the given sensor delivers per
// window at the app's effective rate (the use's RateHz override, or the
// sensor's QoS rate).
func (s Spec) SamplesPerWindow(id sensor.ID) (int, error) {
	for _, u := range s.Sensors {
		if u.Sensor == id {
			sp, err := sensor.Lookup(id)
			if err != nil {
				return 0, err
			}
			if u.RateHz > 0 {
				sp.QoSRateHz = u.RateHz
			}
			return sp.SamplesPerWindow(s.Window), nil
		}
	}
	return 0, fmt.Errorf("apps: %s does not use %s", s.ID, id)
}

// InterruptsPerWindow is the Table II "# Interrupts" column: one per sample
// across all sensors in the baseline scheme.
func (s Spec) InterruptsPerWindow() (int, error) {
	total := 0
	for _, u := range s.Sensors {
		n, err := s.SamplesPerWindow(u.Sensor)
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

// DataBytesPerWindow is the Table II "Sensor Data" column.
func (s Spec) DataBytesPerWindow() (int, error) {
	total := 0
	for _, u := range s.Sensors {
		n, err := s.SamplesPerWindow(u.Sensor)
		if err != nil {
			return 0, err
		}
		b, err := u.SampleBytes()
		if err != nil {
			return 0, err
		}
		total += n * b
	}
	return total, nil
}

// CPUComputeTime is the per-window execution time on the main CPU given its
// peak throughput, honoring EffectiveMIPS for memory-bound workloads.
func (s Spec) CPUComputeTime(cpuMIPS float64) (time.Duration, error) {
	if cpuMIPS <= 0 {
		return 0, fmt.Errorf("apps: cpu MIPS %v", cpuMIPS)
	}
	rate := cpuMIPS
	if s.EffectiveMIPS > 0 && s.EffectiveMIPS < rate {
		rate = s.EffectiveMIPS
	}
	demand := s.MIPS * s.Window.Seconds() // million instructions per window
	return time.Duration(demand / rate * float64(time.Second)), nil
}

// WindowInput is the sensor data delivered to Compute for one window: raw
// formatted samples per sensor, in sampling order.
type WindowInput struct {
	Window  int
	Samples map[sensor.ID][][]byte
}

// Result is one window's user-level output.
type Result struct {
	// Summary is a one-line human-readable outcome ("12 steps").
	Summary string
	// Upstream is the byte payload the app would push to its cloud/phone
	// endpoint (empty for purely local outputs).
	Upstream []byte
	// Metrics carries app-specific numbers for assertions and reports.
	Metrics map[string]float64
}

// App is one IoT workload.
type App interface {
	// Spec returns the workload's static description. It must be valid and
	// constant for the app's lifetime.
	Spec() Spec
	// Source returns the synthetic signal source for one of the declared
	// sensors. The hub reads samples from it on the app's QoS schedule.
	Source(id sensor.ID) (sensor.Source, error)
	// Compute runs the user-level task over one window of samples.
	Compute(in WindowInput) (Result, error)
}

// ErrUnknownSensor is returned by Source for sensors a workload never
// declared.
var ErrUnknownSensor = errors.New("apps: sensor not used by this app")

// CollectWindow pulls one window's samples from the app's sources — the
// helper tests and the offload executor use to assemble Compute inputs.
// Window w covers sample indices [w*n, (w+1)*n) per sensor.
func CollectWindow(a App, w int) (WindowInput, error) {
	spec := a.Spec()
	in := WindowInput{Window: w, Samples: make(map[sensor.ID][][]byte, len(spec.Sensors))}
	for _, u := range spec.Sensors {
		n, err := spec.SamplesPerWindow(u.Sensor)
		if err != nil {
			return WindowInput{}, err
		}
		src, err := a.Source(u.Sensor)
		if err != nil {
			return WindowInput{}, err
		}
		samples := make([][]byte, 0, n)
		for i := 0; i < n; i++ {
			samples = append(samples, src.Sample(w*n+i))
		}
		in.Samples[u.Sensor] = samples
	}
	return in, nil
}
