// Package coapserver implements workload A1: a Building Automation CoAP
// server. It samples the light and sound sensors at 1 kHz and, once per
// window, serves the aggregated observations to a constrained client as
// CoAP request/response exchanges over the RFC 7252 wire format.
package coapserver

import (
	"fmt"
	"time"

	"iothub/internal/apps"
	"iothub/internal/coapmsg"
	"iothub/internal/dsp"
	"iothub/internal/jsonlite"
	"iothub/internal/sensor"
)

var spec = apps.Spec{
	ID:       apps.CoAPServer,
	Name:     "CoAP Server",
	Category: "Building Automation",
	Task:     "Constrained Application Protocol",
	Sensors: []apps.SensorUse{
		{Sensor: sensor.Light},
		{Sensor: sensor.Sound},
	},
	Window: time.Second,

	HeapBytes:  23600,
	StackBytes: 400,
	MIPS:       35.2,
}

// resources maps CoAP Uri-Paths to the sensor backing them.
var resources = map[string]sensor.ID{
	"light": sensor.Light,
	"sound": sensor.Sound,
}

// App is the CoAP-server workload.
type App struct {
	light     *sensor.Scalar
	sound     *sensor.Scalar
	msgID     uint16
	observers *coapmsg.ObserveRegistry
}

var _ apps.App = (*App)(nil)

// New returns the workload with deterministic environmental inputs.
func New(seed int64) (*App, error) {
	return &App{
		light:     sensor.NewScalar(seed, sensor.ScalarLight),
		sound:     sensor.NewScalar(seed+1, sensor.ScalarSoundLevel),
		observers: coapmsg.NewObserveRegistry(),
	}, nil
}

// Spec returns the workload description.
func (a *App) Spec() apps.Spec { return spec }

// Source returns the requested environmental signal.
func (a *App) Source(id sensor.ID) (sensor.Source, error) {
	switch id {
	case sensor.Light:
		return a.light, nil
	case sensor.Sound:
		return a.sound, nil
	default:
		return nil, fmt.Errorf("%w: %s", apps.ErrUnknownSensor, id)
	}
}

// historyBlockSZX selects 64-byte blocks for the blockwise history fetch.
const historyBlockSZX = 2

// Compute aggregates the window and serves one GET per resource plus a
// blockwise (RFC 7959) fetch of the full history document: each request is
// marshaled, unmarshaled at the server, dispatched by Uri-Path, and answered
// with a piggybacked 2.05 Content JSON payload.
func (a *App) Compute(in apps.WindowInput) (apps.Result, error) {
	var served []byte
	exchanges := 0
	exchange := func(req *coapmsg.Message) (*coapmsg.Message, error) {
		wire, err := req.Marshal()
		if err != nil {
			return nil, fmt.Errorf("coapserver: marshal request: %w", err)
		}
		parsed, err := coapmsg.Unmarshal(wire)
		if err != nil {
			return nil, fmt.Errorf("coapserver: parse request: %w", err)
		}
		reply, err := a.serve(parsed, in)
		if err != nil {
			return nil, err
		}
		replyWire, err := reply.Marshal()
		if err != nil {
			return nil, fmt.Errorf("coapserver: marshal reply: %w", err)
		}
		// Frame each reply with a 2-byte length so the stream is
		// self-delimiting over a reliable transport (RFC 8323 style).
		served = append(served, byte(len(replyWire)>>8), byte(len(replyWire)))
		served = append(served, replyWire...)
		exchanges++
		parsedReply, err := coapmsg.Unmarshal(replyWire)
		if err != nil {
			return nil, fmt.Errorf("coapserver: parse reply: %w", err)
		}
		return parsedReply, nil
	}

	for _, path := range []string{"light", "sound", "missing"} {
		a.msgID++
		req := &coapmsg.Message{
			Type:      coapmsg.Confirmable,
			Code:      coapmsg.CodeGET,
			MessageID: a.msgID,
			Token:     []byte{byte(in.Window), byte(exchanges)},
		}
		req.AddOption(coapmsg.OptUriPath, []byte("sensors"))
		req.AddOption(coapmsg.OptUriPath, []byte(path))
		if _, err := exchange(req); err != nil {
			return apps.Result{}, err
		}
	}

	// Observe (RFC 7641): the building dashboard registers for light
	// updates in window 0; every later window pushes one notification per
	// active relation.
	observeNotes := 0
	if in.Window == 0 {
		a.msgID++
		reg := &coapmsg.Message{
			Type:      coapmsg.Confirmable,
			Code:      coapmsg.CodeGET,
			MessageID: a.msgID,
			Token:     []byte{0x0B, 0x5E},
		}
		reg.AddOption(coapmsg.OptUriPath, []byte("sensors"))
		reg.AddOption(coapmsg.OptUriPath, []byte("light"))
		if err := reg.SetObserve(coapmsg.ObserveRegister); err != nil {
			return apps.Result{}, fmt.Errorf("coapserver: %w", err)
		}
		if _, err := exchange(reg); err != nil {
			return apps.Result{}, err
		}
	} else {
		payload, err := a.observationPayload(in)
		if err != nil {
			return apps.Result{}, err
		}
		notes, err := a.observers.Notify("light", &a.msgID, payload)
		if err != nil {
			return apps.Result{}, fmt.Errorf("coapserver: notify: %w", err)
		}
		for _, note := range notes {
			wire, err := note.Marshal()
			if err != nil {
				return apps.Result{}, fmt.Errorf("coapserver: marshal notification: %w", err)
			}
			served = append(served, byte(len(wire)>>8), byte(len(wire)))
			served = append(served, wire...)
			exchanges++
			observeNotes++
		}
	}

	// Blockwise fetch of /sensors/history — the full per-sample document is
	// far beyond a constrained client's MTU.
	var asm coapmsg.Assembler
	blocks := 0
	for !asm.Done() {
		if blocks > 10_000 {
			return apps.Result{}, fmt.Errorf("coapserver: runaway blockwise transfer")
		}
		a.msgID++
		req := &coapmsg.Message{
			Type:      coapmsg.Confirmable,
			Code:      coapmsg.CodeGET,
			MessageID: a.msgID,
			Token:     []byte{byte(in.Window), 0xB},
		}
		req.AddOption(coapmsg.OptUriPath, []byte("sensors"))
		req.AddOption(coapmsg.OptUriPath, []byte("history"))
		blockVal, err := asm.Next(historyBlockSZX).Marshal()
		if err != nil {
			return apps.Result{}, fmt.Errorf("coapserver: %w", err)
		}
		req.AddOption(coapmsg.OptBlock2, blockVal)
		reply, err := exchange(req)
		if err != nil {
			return apps.Result{}, err
		}
		if reply.Code != coapmsg.CodeContent {
			return apps.Result{}, fmt.Errorf("coapserver: history block %d: %v", blocks, reply.Code)
		}
		if err := asm.Add(reply); err != nil {
			return apps.Result{}, fmt.Errorf("coapserver: history block %d: %w", blocks, err)
		}
		blocks++
	}
	if _, err := jsonlite.Parse(asm.Bytes()); err != nil {
		return apps.Result{}, fmt.Errorf("coapserver: assembled history invalid: %w", err)
	}

	return apps.Result{
		Summary: fmt.Sprintf("served %d CoAP exchanges (%d history blocks, %d notifications, %d bytes)",
			exchanges, blocks, observeNotes, len(served)),
		Upstream: served,
		Metrics: map[string]float64{
			"exchanges":     float64(exchanges),
			"blocks":        float64(blocks),
			"notifications": float64(observeNotes),
			"observers":     float64(a.observers.Len()),
			"historyBytes":  float64(len(asm.Bytes())),
			"replyBytes":    float64(len(served)),
		},
	}, nil
}

// observationPayload is the compact per-notification state of the light
// resource.
func (a *App) observationPayload(in apps.WindowInput) ([]byte, error) {
	values, err := decodeScalars(sensor.Light, in.Samples[sensor.Light])
	if err != nil {
		return nil, fmt.Errorf("coapserver: observation: %w", err)
	}
	b := jsonlite.NewBuilder(64)
	b.BeginObject().
		Key("window").Int(int64(in.Window)).
		Key("lux").Num(dsp.Mean(values)).
		EndObject()
	return b.Bytes()
}

// history renders the window's light readings as one large JSON document.
func (a *App) history(in apps.WindowInput) ([]byte, error) {
	values, err := decodeScalars(sensor.Light, in.Samples[sensor.Light])
	if err != nil {
		return nil, fmt.Errorf("coapserver: history: %w", err)
	}
	b := jsonlite.NewBuilder(4096)
	b.BeginObject().Key("resource").Str("history").Key("lux").BeginArray()
	for _, v := range values {
		b.Num(float64(int64(v*10)) / 10)
	}
	b.EndArray().EndObject()
	return b.Bytes()
}

// SplitReplies splits a length-framed reply stream back into individual
// CoAP messages (used by clients and tests).
func SplitReplies(b []byte) ([][]byte, error) {
	var out [][]byte
	for len(b) > 0 {
		if len(b) < 2 {
			return nil, fmt.Errorf("coapserver: truncated frame header")
		}
		n := int(b[0])<<8 | int(b[1])
		if len(b) < 2+n {
			return nil, fmt.Errorf("coapserver: truncated frame body: want %d bytes", n)
		}
		out = append(out, b[2:2+n])
		b = b[2+n:]
	}
	return out, nil
}

// serve dispatches a parsed request against the sensor resources.
func (a *App) serve(req *coapmsg.Message, in apps.WindowInput) (*coapmsg.Message, error) {
	path := req.PathOptions()
	if len(path) != 2 || path[0] != "sensors" {
		return coapmsg.NewReply(req, coapmsg.CodeBadReq, coapmsg.FormatText, nil), nil
	}
	if path[1] == "history" {
		doc, err := a.history(in)
		if err != nil {
			return nil, err
		}
		blk, found, err := req.BlockOption(coapmsg.OptBlock2)
		if err != nil {
			return coapmsg.NewReply(req, coapmsg.CodeBadReq, coapmsg.FormatText, nil), nil
		}
		if !found {
			blk = coapmsg.Block{SZX: historyBlockSZX}
		}
		return coapmsg.ServeBlock2(req, coapmsg.CodeContent, coapmsg.FormatJSON, doc, blk)
	}
	id, ok := resources[path[1]]
	if !ok {
		return coapmsg.NewReply(req, coapmsg.CodeNotFound, coapmsg.FormatText, nil), nil
	}
	if _, err := req.ObserveValue(); err == nil {
		payload, err := a.observationPayload(in)
		if err != nil {
			return nil, err
		}
		return a.observers.HandleRequest(req, path[1], payload)
	}
	values, err := decodeScalars(id, in.Samples[id])
	if err != nil {
		return nil, fmt.Errorf("coapserver: %s: %w", id, err)
	}
	b := jsonlite.NewBuilder(128)
	b.BeginObject().
		Key("resource").Str(path[1]).
		Key("n").Int(int64(len(values))).
		Key("mean").Num(dsp.Mean(values)).
		Key("max").Num(maxOf(values)).
		EndObject()
	payload, err := b.Bytes()
	if err != nil {
		return nil, fmt.Errorf("coapserver: payload: %w", err)
	}
	return coapmsg.NewReply(req, coapmsg.CodeContent, coapmsg.FormatJSON, payload), nil
}

func decodeScalars(id sensor.ID, raw [][]byte) ([]float64, error) {
	sp, err := sensor.Lookup(id)
	if err != nil {
		return nil, err
	}
	out := make([]float64, 0, len(raw))
	for i, b := range raw {
		var v float64
		if sp.SampleBytes == 4 {
			iv, err := sensor.DecodeI32(b)
			if err != nil {
				return nil, fmt.Errorf("sample %d: %w", i, err)
			}
			v = float64(iv)
		} else {
			fv, err := sensor.DecodeF64(b)
			if err != nil {
				return nil, fmt.Errorf("sample %d: %w", i, err)
			}
			v = fv
		}
		out = append(out, v)
	}
	return out, nil
}

func maxOf(xs []float64) float64 {
	best := 0.0
	for i, x := range xs {
		if i == 0 || x > best {
			best = x
		}
	}
	return best
}
