package coapserver

import (
	"testing"

	"iothub/internal/apps"
	"iothub/internal/coapmsg"
	"iothub/internal/jsonlite"
)

func computeWindow(t *testing.T, a *App, w int) apps.Result {
	t.Helper()
	in, err := apps.CollectWindow(a, w)
	if err != nil {
		t.Fatalf("collect: %v", err)
	}
	res, err := a.Compute(in)
	if err != nil {
		t.Fatalf("compute: %v", err)
	}
	return res
}

func TestServesParseableCoAPReplies(t *testing.T) {
	a, err := New(21)
	if err != nil {
		t.Fatal(err)
	}
	res := computeWindow(t, a, 0)
	blocks := int(res.Metrics["blocks"])
	if blocks < 2 {
		t.Fatalf("blocks = %d, want a multi-block history", blocks)
	}
	// Window 0: 3 resource GETs + 1 observe registration + history blocks.
	if got := int(res.Metrics["exchanges"]); got != 4+blocks {
		t.Fatalf("exchanges = %d, want 4 + %d blocks", got, blocks)
	}
	frames, err := SplitReplies(res.Upstream)
	if err != nil {
		t.Fatalf("SplitReplies: %v", err)
	}
	if len(frames) != 4+blocks {
		t.Fatalf("frames = %d, want %d", len(frames), 4+blocks)
	}
	wantCodes := []coapmsg.Code{coapmsg.CodeContent, coapmsg.CodeContent, coapmsg.CodeNotFound}
	for i, f := range frames[:3] {
		reply, err := coapmsg.Unmarshal(f)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if reply.Code != wantCodes[i] {
			t.Errorf("frame %d code = %v, want %v", i, reply.Code, wantCodes[i])
		}
		if reply.Type != coapmsg.Acknowledgement {
			t.Errorf("frame %d type = %v, want ACK", i, reply.Type)
		}
	}
	// Frame 3 is the observe registration confirmation.
	regReply, err := coapmsg.Unmarshal(frames[3])
	if err != nil {
		t.Fatalf("registration reply: %v", err)
	}
	if _, err := regReply.ObserveValue(); err != nil {
		t.Errorf("registration reply missing Observe: %v", err)
	}
	if res.Metrics["observers"] != 1 {
		t.Errorf("observers = %v, want 1", res.Metrics["observers"])
	}
	// History frames carry Block2; the final one has More=false.
	for i, f := range frames[4:] {
		reply, err := coapmsg.Unmarshal(f)
		if err != nil {
			t.Fatalf("history frame %d: %v", i, err)
		}
		blk, found, err := reply.BlockOption(coapmsg.OptBlock2)
		if err != nil || !found {
			t.Fatalf("history frame %d missing Block2 (%v)", i, err)
		}
		if int(blk.Num) != i {
			t.Errorf("history frame %d numbered %d", i, blk.Num)
		}
		wantMore := i != blocks-1
		if blk.More != wantMore {
			t.Errorf("history frame %d More = %v, want %v", i, blk.More, wantMore)
		}
	}
	if _, err := SplitReplies(res.Upstream[:1]); err == nil {
		t.Error("truncated header accepted")
	}
	if _, err := SplitReplies(res.Upstream[:5]); err == nil {
		t.Error("truncated body accepted")
	}
}

func TestHistoryDocumentIsCompleteJSON(t *testing.T) {
	a, err := New(21)
	if err != nil {
		t.Fatal(err)
	}
	res := computeWindow(t, a, 0)
	if res.Metrics["historyBytes"] < 1000 {
		t.Errorf("history = %v bytes, want a large document", res.Metrics["historyBytes"])
	}
	in, err := apps.CollectWindow(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := a.history(in)
	if err != nil {
		t.Fatal(err)
	}
	v, err := jsonlite.Parse(doc)
	if err != nil {
		t.Fatalf("history not valid JSON: %v", err)
	}
	lux, ok := v.(map[string]any)["lux"].([]any)
	if !ok || len(lux) != 1000 {
		t.Errorf("lux array = %d entries, want 1000", len(lux))
	}
}

func TestReplyPayloadIsAggregatedJSON(t *testing.T) {
	a, err := New(21)
	if err != nil {
		t.Fatal(err)
	}
	in, err := apps.CollectWindow(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	req := &coapmsg.Message{Type: coapmsg.Confirmable, Code: coapmsg.CodeGET, MessageID: 9}
	req.AddOption(coapmsg.OptUriPath, []byte("sensors"))
	req.AddOption(coapmsg.OptUriPath, []byte("light"))
	reply, err := a.serve(req, in)
	if err != nil {
		t.Fatal(err)
	}
	v, err := jsonlite.Parse(reply.Payload)
	if err != nil {
		t.Fatalf("payload: %v", err)
	}
	doc := v.(map[string]any)
	if doc["resource"] != "light" || doc["n"] != 1000.0 {
		t.Errorf("payload = %v", doc)
	}
	mean, ok := doc["mean"].(float64)
	if !ok || mean < 100 || mean > 600 {
		t.Errorf("mean = %v, want plausible lux", doc["mean"])
	}
}

func TestServeErrorPaths(t *testing.T) {
	a, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	in, err := apps.CollectWindow(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	miss := &coapmsg.Message{Type: coapmsg.Confirmable, Code: coapmsg.CodeGET, MessageID: 1}
	miss.AddOption(coapmsg.OptUriPath, []byte("sensors"))
	miss.AddOption(coapmsg.OptUriPath, []byte("nonexistent"))
	reply, err := a.serve(miss, in)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Code != coapmsg.CodeNotFound {
		t.Errorf("missing resource code = %v, want 4.04", reply.Code)
	}
	bad := &coapmsg.Message{Type: coapmsg.Confirmable, Code: coapmsg.CodeGET, MessageID: 2}
	reply, err = a.serve(bad, in)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Code != coapmsg.CodeBadReq {
		t.Errorf("pathless request code = %v, want 4.00", reply.Code)
	}
}

func TestMessageIDsAdvanceAcrossWindows(t *testing.T) {
	a, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	computeWindow(t, a, 0)
	frames, err := SplitReplies(computeWindow(t, a, 1).Upstream)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := coapmsg.Unmarshal(frames[0])
	if err != nil {
		t.Fatal(err)
	}
	if r1.MessageID <= 3 {
		t.Errorf("window 1 first message id = %d, want > 3", r1.MessageID)
	}
}

func TestSpecMatchesTableII(t *testing.T) {
	a, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	irq, err := a.Spec().InterruptsPerWindow()
	if err != nil || irq != 2000 {
		t.Errorf("interrupts = %d, want 2000", irq)
	}
}

func TestObserveNotificationsInLaterWindows(t *testing.T) {
	a, err := New(21)
	if err != nil {
		t.Fatal(err)
	}
	computeWindow(t, a, 0) // registers one observer
	res := computeWindow(t, a, 1)
	if res.Metrics["notifications"] != 1 {
		t.Fatalf("notifications = %v, want 1", res.Metrics["notifications"])
	}
	frames, err := SplitReplies(res.Upstream)
	if err != nil {
		t.Fatal(err)
	}
	// Frame 3 of window 1 is the notification (after the 3 resource GETs).
	note, err := coapmsg.Unmarshal(frames[3])
	if err != nil {
		t.Fatal(err)
	}
	seq, err := note.ObserveValue()
	if err != nil {
		t.Fatalf("notification missing Observe: %v", err)
	}
	if seq < 2 {
		t.Errorf("sequence = %d", seq)
	}
	if string(note.Token) != "\x0b\x5e" {
		t.Errorf("token = %x, want the registrant's", note.Token)
	}
	v, err := jsonlite.Parse(note.Payload)
	if err != nil {
		t.Fatalf("notification payload: %v", err)
	}
	if v.(map[string]any)["window"] != 1.0 {
		t.Errorf("payload = %v", v)
	}
	// Window 2's notification advances the sequence.
	res2 := computeWindow(t, a, 2)
	frames2, err := SplitReplies(res2.Upstream)
	if err != nil {
		t.Fatal(err)
	}
	note2, err := coapmsg.Unmarshal(frames2[3])
	if err != nil {
		t.Fatal(err)
	}
	seq2, err := note2.ObserveValue()
	if err != nil {
		t.Fatal(err)
	}
	if seq2 <= seq {
		t.Errorf("sequence %d then %d, want increasing", seq, seq2)
	}
}
