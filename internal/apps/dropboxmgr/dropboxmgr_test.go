package dropboxmgr

import (
	"testing"

	"iothub/internal/apps"
	"iothub/internal/httplite"
	"iothub/internal/jsonlite"
)

func compute(t *testing.T, a *App, w int) apps.Result {
	t.Helper()
	in, err := apps.CollectWindow(a, w)
	if err != nil {
		t.Fatalf("collect: %v", err)
	}
	res, err := a.Compute(in)
	if err != nil {
		t.Fatalf("compute: %v", err)
	}
	return res
}

func TestFirstWindowUploadsEverything(t *testing.T) {
	a, err := New(51)
	if err != nil {
		t.Fatal(err)
	}
	res := compute(t, a, 0)
	// 12 KB + section headers → 12 blocks of 1 KB.
	if res.Metrics["blocks"] < 12 || res.Metrics["blocks"] > 13 {
		t.Errorf("blocks = %v, want 12..13", res.Metrics["blocks"])
	}
	if res.Metrics["changedBlocks"] != res.Metrics["blocks"] {
		t.Errorf("first sync uploads %v of %v blocks, want all",
			res.Metrics["changedBlocks"], res.Metrics["blocks"])
	}
}

func TestDeltaSyncUploadsOnlyChanges(t *testing.T) {
	a, err := New(51)
	if err != nil {
		t.Fatal(err)
	}
	compute(t, a, 0)
	res := compute(t, a, 1)
	// New window: fresh sensor data, so most blocks change again — but the
	// delta logic must compare against window 0's sums, not re-upload by
	// default. Verify by syncing the *same* window twice.
	_ = res
	in, err := apps.CollectWindow(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	first, err := a.Compute(in)
	if err != nil {
		t.Fatal(err)
	}
	if first.Metrics["changedBlocks"] == 0 {
		t.Error("fresh window produced zero changed blocks")
	}
	second, err := a.Compute(in)
	if err != nil {
		t.Fatal(err)
	}
	if second.Metrics["changedBlocks"] != 0 {
		t.Errorf("re-sync of identical window changed %v blocks, want 0",
			second.Metrics["changedBlocks"])
	}
}

func TestUploadRequestCarriesManifestAndBlocks(t *testing.T) {
	a, err := New(51)
	if err != nil {
		t.Fatal(err)
	}
	res := compute(t, a, 0)
	req, err := httplite.ParseRequest(res.Upstream)
	if err != nil {
		t.Fatalf("upload not valid HTTP: %v", err)
	}
	if req.Method != "POST" || req.Host != "content.dropboxapi.com" {
		t.Errorf("request %s to %s", req.Method, req.Host)
	}
	if req.Headers["Authorization"] == "" {
		t.Error("Authorization header missing")
	}
	v, err := jsonlite.Parse([]byte(req.Headers["Dropbox-API-Arg"]))
	if err != nil {
		t.Fatalf("manifest header: %v", err)
	}
	doc := v.(map[string]any)
	if doc["path"] != "/recordings/window-00000.bin" {
		t.Errorf("path = %v", doc["path"])
	}
	blocks, ok := doc["blocks"].([]any)
	if !ok || float64(len(blocks)) != res.Metrics["blocks"] {
		t.Errorf("manifest blocks = %v, metrics %v", len(blocks), res.Metrics["blocks"])
	}
	// The body carries exactly the changed blocks' bytes.
	wantBody := int(res.Metrics["changedBlocks"]) * BlockBytes
	slack := BlockBytes // final partial block
	if len(req.Body) > wantBody || len(req.Body) < wantBody-slack {
		t.Errorf("body = %d bytes, want ~%d", len(req.Body), wantBody)
	}
}

func TestNoUploadWhenNothingChanged(t *testing.T) {
	a, err := New(51)
	if err != nil {
		t.Fatal(err)
	}
	in, err := apps.CollectWindow(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Compute(in); err != nil {
		t.Fatal(err)
	}
	res, err := a.Compute(in) // identical content: delta sync sends nothing
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Upstream) != 0 {
		t.Errorf("re-sync produced %d upstream bytes, want 0", len(res.Upstream))
	}
}

func TestSpecMatchesTableII(t *testing.T) {
	a, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	sp := a.Spec()
	irq, err := sp.InterruptsPerWindow()
	if err != nil || irq != 2000 {
		t.Errorf("interrupts = %d, want 2000", irq)
	}
	data, err := sp.DataBytesPerWindow()
	if err != nil || data != 12000 {
		t.Errorf("data = %d, want 12000", data)
	}
}
