// Package dropboxmgr implements workload A6: the Web Control "Dropbox
// Manager". It records the sound and distance sensors, packs each window
// into a content-addressed file object (fixed-size blocks with rolling
// checksums), and computes the delta-sync manifest against the previously
// uploaded version — upload only the blocks whose checksums changed.
package dropboxmgr

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"time"

	"iothub/internal/apps"
	"iothub/internal/httplite"
	"iothub/internal/jsonlite"
	"iothub/internal/sensor"
)

// BlockBytes is the sync block size.
const BlockBytes = 1024

var spec = apps.Spec{
	ID:       apps.DropboxMgr,
	Name:     "Dropbox Manager",
	Category: "Web Control",
	Task:     "File Sync, Upload, etc.",
	Sensors: []apps.SensorUse{
		{Sensor: sensor.Sound},
		{Sensor: sensor.Distance},
	},
	Window: time.Second,

	HeapBytes:  28200,
	StackBytes: 400,
	MIPS:       41.9,
}

// App is the Dropbox-manager workload.
type App struct {
	sound    *sensor.Scalar
	distance *sensor.Scalar
	prev     []uint32 // block checksums of the last synced window
}

var _ apps.App = (*App)(nil)

// New returns the workload with deterministic inputs.
func New(seed int64) (*App, error) {
	return &App{
		sound:    sensor.NewScalar(seed, sensor.ScalarSoundLevel),
		distance: sensor.NewScalar(seed+1, sensor.ScalarDistance),
	}, nil
}

// Spec returns the workload description.
func (a *App) Spec() apps.Spec { return spec }

// Source returns the requested signal.
func (a *App) Source(id sensor.ID) (sensor.Source, error) {
	switch id {
	case sensor.Sound:
		return a.sound, nil
	case sensor.Distance:
		return a.distance, nil
	default:
		return nil, fmt.Errorf("%w: %s", apps.ErrUnknownSensor, id)
	}
}

// Compute packs the window into a file image, blocks it, computes the delta
// against the previous sync, and builds the real upload call: a POST whose
// body carries only the changed blocks and whose Dropbox-API-Arg header
// carries the JSON manifest.
func (a *App) Compute(in apps.WindowInput) (apps.Result, error) {
	file := packFile(in)
	sums := blockChecksums(file)
	var changedIdx []int
	for i, s := range sums {
		if i >= len(a.prev) || a.prev[i] != s {
			changedIdx = append(changedIdx, i)
		}
	}
	manifest, err := buildManifest(in.Window, len(file), sums, len(changedIdx))
	if err != nil {
		return apps.Result{}, fmt.Errorf("dropboxmgr: %w", err)
	}
	a.prev = sums

	var body []byte
	for _, i := range changedIdx {
		lo := i * BlockBytes
		hi := lo + BlockBytes
		if hi > len(file) {
			hi = len(file)
		}
		body = append(body, file[lo:hi]...)
	}
	var wire []byte
	if len(changedIdx) > 0 {
		req := &httplite.Request{
			Method: "POST",
			Path:   "/2/files/upload_session/append_v2",
			Host:   "content.dropboxapi.com",
			Headers: map[string]string{
				"Authorization":   "Bearer sim-token",
				"Content-Type":    "application/octet-stream",
				"Dropbox-API-Arg": string(manifest),
			},
			Body: body,
		}
		if wire, err = req.Marshal(); err != nil {
			return apps.Result{}, fmt.Errorf("dropboxmgr: marshal upload: %w", err)
		}
		// The service's acknowledgement closes the loop.
		if _, err := httplite.ParseRequest(wire); err != nil {
			return apps.Result{}, fmt.Errorf("dropboxmgr: self-check: %w", err)
		}
	}
	return apps.Result{
		Summary: fmt.Sprintf("file %d B in %d blocks, %d uploaded (%d B on the wire)",
			len(file), len(sums), len(changedIdx), len(wire)),
		Upstream: wire,
		Metrics: map[string]float64{
			"fileBytes":     float64(len(file)),
			"blocks":        float64(len(sums)),
			"changedBlocks": float64(len(changedIdx)),
			"wireBytes":     float64(len(wire)),
		},
	}, nil
}

// packFile serializes the window's raw samples into one file image with a
// small header per sensor section.
func packFile(in apps.WindowInput) []byte {
	var out []byte
	for _, u := range spec.Sensors {
		samples := in.Samples[u.Sensor]
		out = append(out, []byte(u.Sensor)...)
		out = binary.LittleEndian.AppendUint32(out, uint32(len(samples)))
		for _, s := range samples {
			out = append(out, s...)
		}
	}
	return out
}

// blockChecksums computes one CRC32 per fixed-size block.
func blockChecksums(file []byte) []uint32 {
	n := (len(file) + BlockBytes - 1) / BlockBytes
	out := make([]uint32, 0, n)
	for i := 0; i < n; i++ {
		lo := i * BlockBytes
		hi := lo + BlockBytes
		if hi > len(file) {
			hi = len(file)
		}
		out = append(out, crc32.ChecksumIEEE(file[lo:hi]))
	}
	return out
}

func buildManifest(window, fileBytes int, sums []uint32, changed int) ([]byte, error) {
	b := jsonlite.NewBuilder(512)
	b.BeginObject().
		Key("path").Str(fmt.Sprintf("/recordings/window-%05d.bin", window)).
		Key("bytes").Int(int64(fileBytes)).
		Key("changed").Int(int64(changed)).
		Key("blocks").BeginArray()
	for _, s := range sums {
		b.Int(int64(s))
	}
	b.EndArray().EndObject()
	return b.Bytes()
}
