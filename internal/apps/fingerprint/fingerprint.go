// Package fingerprint implements workload A10: the Security-domain
// fingerprint register. Each window delivers one 512-byte signature from the
// optical reader; the workload identifies it against the enrolled set
// (Table II: "Fingerprint Enroll, Identify, etc").
package fingerprint

import (
	"errors"
	"fmt"
	"time"

	"iothub/internal/apps"
	"iothub/internal/fpmatch"
	"iothub/internal/sensor"
)

var spec = apps.Spec{
	ID:       apps.Fingerprint,
	Name:     "Fingerprint Register",
	Category: "Security",
	Task:     "Fingerprint Enroll, Identify, etc",
	Sensors:  []apps.SensorUse{{Sensor: sensor.Fingerprint}},
	Window:   time.Second,

	HeapBytes:  29400,
	StackBytes: 400,
	MIPS:       5.0,
}

// App is the fingerprint workload.
type App struct {
	db         *fpmatch.DB
	scanner    *sensor.Signature
	autoEnroll bool
	nextUser   int
}

var _ apps.App = (*App)(nil)

// New returns the workload with fingers 1..enrolled pre-registered and a
// scanner presenting scanFinger's prints.
func New(seed int64, enrolled, scanFinger int) (*App, error) {
	if enrolled < 1 {
		return nil, fmt.Errorf("fingerprint: enrolled %d, want >= 1", enrolled)
	}
	db, err := fpmatch.NewDB(0)
	if err != nil {
		return nil, err
	}
	for f := 1; f <= enrolled; f++ {
		if err := db.Enroll(fmt.Sprintf("user-%d", f), sensor.FingerTemplate(f)); err != nil {
			return nil, fmt.Errorf("fingerprint: enroll %d: %w", f, err)
		}
	}
	return &App{db: db, scanner: sensor.NewSignature(seed, scanFinger), nextUser: enrolled + 1}, nil
}

// NewAutoEnroll returns the workload in registration mode (the Table II
// task's "Enroll" path): a scan that matches nobody is enrolled as a new
// user, so the first window registers the finger and later windows identify
// it.
func NewAutoEnroll(seed int64, scanFinger int) (*App, error) {
	db, err := fpmatch.NewDB(0)
	if err != nil {
		return nil, err
	}
	return &App{
		db:         db,
		scanner:    sensor.NewSignature(seed, scanFinger),
		autoEnroll: true,
		nextUser:   1,
	}, nil
}

// Spec returns the workload description.
func (a *App) Spec() apps.Spec { return spec }

// Source returns the signature scanner.
func (a *App) Source(id sensor.ID) (sensor.Source, error) {
	if id != sensor.Fingerprint {
		return nil, fmt.Errorf("%w: %s", apps.ErrUnknownSensor, id)
	}
	return a.scanner, nil
}

// Compute identifies the window's scan against the enrolled set.
func (a *App) Compute(in apps.WindowInput) (apps.Result, error) {
	scans := in.Samples[sensor.Fingerprint]
	if len(scans) == 0 {
		return apps.Result{}, fmt.Errorf("fingerprint: window %d has no scan", in.Window)
	}
	name, score, err := a.db.Identify(scans[0])
	switch {
	case errors.Is(err, fpmatch.ErrNoMatch) && a.autoEnroll:
		user := fmt.Sprintf("user-%d", a.nextUser)
		if err := a.db.Enroll(user, scans[0]); err != nil {
			return apps.Result{}, fmt.Errorf("fingerprint: enroll: %w", err)
		}
		a.nextUser++
		return apps.Result{
			Summary:  fmt.Sprintf("enrolled %s (best prior %.3f)", user, score),
			Upstream: []byte(user),
			Metrics:  map[string]float64{"matched": 0, "enrolled": 1, "score": score},
		}, nil
	case errors.Is(err, fpmatch.ErrNoMatch):
		return apps.Result{
			Summary: fmt.Sprintf("no match (best %.3f)", score),
			Metrics: map[string]float64{"matched": 0, "score": score},
		}, nil
	case err != nil:
		return apps.Result{}, fmt.Errorf("fingerprint: %w", err)
	default:
		return apps.Result{
			Summary:  fmt.Sprintf("identified %s (%.3f)", name, score),
			Upstream: []byte(name),
			Metrics:  map[string]float64{"matched": 1, "score": score},
		}, nil
	}
}
