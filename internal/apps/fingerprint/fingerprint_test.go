package fingerprint

import (
	"testing"

	"iothub/internal/apps"
	"iothub/internal/sensor"
)

func TestIdentifiesEnrolledFinger(t *testing.T) {
	a, err := New(71, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	in, err := apps.CollectWindow(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Compute(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics["matched"] != 1 {
		t.Fatalf("no match: %s", res.Summary)
	}
	if string(res.Upstream) != "user-2" {
		t.Errorf("identified %q, want user-2", res.Upstream)
	}
	if res.Metrics["score"] < 0.95 {
		t.Errorf("score = %v, want >= 0.95", res.Metrics["score"])
	}
}

func TestRejectsUnenrolledFinger(t *testing.T) {
	a, err := New(71, 2, 9) // finger 9 not in {1, 2}
	if err != nil {
		t.Fatal(err)
	}
	in, err := apps.CollectWindow(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Compute(in)
	if err != nil {
		t.Fatalf("no-match should not be an error: %v", err)
	}
	if res.Metrics["matched"] != 0 {
		t.Errorf("impostor matched: %s", res.Summary)
	}
}

func TestNewValidatesEnrollment(t *testing.T) {
	if _, err := New(1, 0, 1); err == nil {
		t.Error("zero enrollment accepted")
	}
}

func TestComputeRejectsEmptyWindow(t *testing.T) {
	a, err := New(1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Compute(apps.WindowInput{Samples: map[sensor.ID][][]byte{}}); err == nil {
		t.Error("empty window accepted")
	}
}

func TestSpecMatchesTableII(t *testing.T) {
	a, err := New(1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	sp := a.Spec()
	irq, err := sp.InterruptsPerWindow()
	if err != nil || irq != 1 {
		t.Errorf("interrupts = %d, want 1", irq)
	}
	data, err := sp.DataBytesPerWindow()
	if err != nil || data != 512 {
		t.Errorf("data = %d B, want 512 (0.5 KB)", data)
	}
}

func TestAutoEnrollThenIdentify(t *testing.T) {
	a, err := NewAutoEnroll(91, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Window 0: the empty database matches nothing, so the scan enrolls.
	in0, err := apps.CollectWindow(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	res0, err := a.Compute(in0)
	if err != nil {
		t.Fatal(err)
	}
	if res0.Metrics["enrolled"] != 1 {
		t.Fatalf("window 0: %s", res0.Summary)
	}
	if string(res0.Upstream) != "user-1" {
		t.Errorf("enrolled as %q", res0.Upstream)
	}
	// Window 1: a fresh scan of the same finger now identifies.
	in1, err := apps.CollectWindow(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	res1, err := a.Compute(in1)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Metrics["matched"] != 1 || string(res1.Upstream) != "user-1" {
		t.Errorf("window 1: %s", res1.Summary)
	}
	if res1.Metrics["enrolled"] == 1 {
		t.Error("window 1 re-enrolled an identified finger")
	}
}
