package apps_test

import (
	"testing"
	"time"

	"iothub/internal/apps"
	"iothub/internal/apps/stepcounter"
	"iothub/internal/sensor"
)

func TestSensorUseSampleBytes(t *testing.T) {
	u := apps.SensorUse{Sensor: sensor.Sound}
	got, err := u.SampleBytes()
	if err != nil || got != 4 {
		t.Errorf("default = %d, %v", got, err)
	}
	u.BytesPerSmp = 6
	got, err = u.SampleBytes()
	if err != nil || got != 6 {
		t.Errorf("override = %d, %v", got, err)
	}
	bad := apps.SensorUse{Sensor: "S99"}
	if _, err := bad.SampleBytes(); err == nil {
		t.Error("unknown sensor accepted")
	}
}

func TestSpecValidate(t *testing.T) {
	good := apps.Spec{
		ID: "AX", Name: "x",
		Sensors: []apps.SensorUse{{Sensor: sensor.Sound}},
		Window:  time.Second,
	}
	if err := good.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	cases := map[string]func(*apps.Spec){
		"missing id":       func(s *apps.Spec) { s.ID = "" },
		"no sensors":       func(s *apps.Spec) { s.Sensors = nil },
		"zero window":      func(s *apps.Spec) { s.Window = 0 },
		"negative mips":    func(s *apps.Spec) { s.MIPS = -1 },
		"unknown sensor":   func(s *apps.Spec) { s.Sensors = []apps.SensorUse{{Sensor: "S99"}} },
		"duplicate sensor": func(s *apps.Spec) { s.Sensors = append(s.Sensors, s.Sensors[0]) },
	}
	for name, mutate := range cases {
		s := good
		s.Sensors = append([]apps.SensorUse(nil), good.Sensors...)
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestSpecDerivedQuantities(t *testing.T) {
	s := apps.Spec{
		ID: "AX", Name: "x",
		Sensors: []apps.SensorUse{
			{Sensor: sensor.Accelerometer},
			{Sensor: sensor.Barometer},
		},
		Window: time.Second,
		MIPS:   24,
	}
	n, err := s.SamplesPerWindow(sensor.Accelerometer)
	if err != nil || n != 1000 {
		t.Errorf("accel samples = %d, %v", n, err)
	}
	if _, err := s.SamplesPerWindow(sensor.Sound); err == nil {
		t.Error("unused sensor accepted")
	}
	irq, err := s.InterruptsPerWindow()
	if err != nil || irq != 1010 {
		t.Errorf("interrupts = %d, %v", irq, err)
	}
	bytes, err := s.DataBytesPerWindow()
	if err != nil || bytes != 1000*12+10*8 {
		t.Errorf("bytes = %d, %v", bytes, err)
	}
	ct, err := s.CPUComputeTime(24000)
	if err != nil || ct != time.Millisecond {
		t.Errorf("compute time = %v, %v", ct, err)
	}
	if _, err := s.CPUComputeTime(0); err == nil {
		t.Error("zero MIPS accepted")
	}
}

func TestSpecEffectiveMIPSCap(t *testing.T) {
	s := apps.Spec{
		ID: "AY", Name: "y",
		Sensors:       []apps.SensorUse{{Sensor: sensor.Sound}},
		Window:        time.Second,
		MIPS:          6000,
		EffectiveMIPS: 6000,
	}
	ct, err := s.CPUComputeTime(24000)
	if err != nil {
		t.Fatal(err)
	}
	if ct != time.Second {
		t.Errorf("memory-bound compute time = %v, want 1s", ct)
	}
}

func TestCollectWindowPullsCorrectIndices(t *testing.T) {
	app, err := stepcounter.New(5)
	if err != nil {
		t.Fatal(err)
	}
	w0, err := apps.CollectWindow(app, 0)
	if err != nil {
		t.Fatalf("CollectWindow: %v", err)
	}
	if got := len(w0.Samples[sensor.Accelerometer]); got != 1000 {
		t.Fatalf("window 0 samples = %d", got)
	}
	w1, err := apps.CollectWindow(app, 1)
	if err != nil {
		t.Fatal(err)
	}
	src, err := app.Source(sensor.Accelerometer)
	if err != nil {
		t.Fatal(err)
	}
	want := src.Sample(1000)
	got := w1.Samples[sensor.Accelerometer][0]
	for i := range want {
		if got[i] != want[i] {
			t.Fatal("window 1 does not start at sample 1000")
		}
	}
}
