// Package jsonfmt implements workload A3: the ArduinoJson protocol-library
// benchmark. It reads the barometer and temperature sensors at 10 Hz and
// formats the window's readings into a JSON document (string-to-double
// conversion and buffer management dominate — tiny data, pure formatting).
package jsonfmt

import (
	"fmt"
	"time"

	"iothub/internal/apps"
	"iothub/internal/jsonlite"
	"iothub/internal/sensor"
)

var spec = apps.Spec{
	ID:       apps.ArduinoJSON,
	Name:     "arduinoJSON",
	Category: "Protocol Library",
	Task:     "JSON Formatting",
	Sensors: []apps.SensorUse{
		{Sensor: sensor.Barometer},
		{Sensor: sensor.Temperature},
	},
	Window: time.Second,

	HeapBytes:  17800,
	StackBytes: 400,
	MIPS:       7.2,
}

// App is the JSON-formatting workload.
type App struct {
	pressure *sensor.Scalar
	temp     *sensor.Scalar
}

var _ apps.App = (*App)(nil)

// New returns the workload with deterministic environmental inputs.
func New(seed int64) (*App, error) {
	return &App{
		pressure: sensor.NewScalar(seed, sensor.ScalarPressure),
		temp:     sensor.NewScalar(seed+1, sensor.ScalarTemperature),
	}, nil
}

// Spec returns the workload description.
func (a *App) Spec() apps.Spec { return spec }

// Source returns the requested environmental signal.
func (a *App) Source(id sensor.ID) (sensor.Source, error) {
	switch id {
	case sensor.Barometer:
		return a.pressure, nil
	case sensor.Temperature:
		return a.temp, nil
	default:
		return nil, fmt.Errorf("%w: %s", apps.ErrUnknownSensor, id)
	}
}

// Compute formats the window's readings as a JSON document and validates it
// by parsing it back.
func (a *App) Compute(in apps.WindowInput) (apps.Result, error) {
	b := jsonlite.NewBuilder(512)
	b.BeginObject().
		Key("window").Int(int64(in.Window)).
		Key("readings").BeginObject()
	count := 0
	for _, entry := range []struct {
		key string
		id  sensor.ID
	}{
		{"pressure_pa", sensor.Barometer},
		{"temperature_c", sensor.Temperature},
	} {
		b.Key(entry.key).BeginArray()
		for i, raw := range in.Samples[entry.id] {
			v, err := sensor.DecodeF64(raw)
			if err != nil {
				return apps.Result{}, fmt.Errorf("jsonfmt: %s sample %d: %w", entry.id, i, err)
			}
			b.Num(v)
			count++
		}
		b.EndArray()
	}
	b.EndObject().EndObject()
	doc, err := b.Bytes()
	if err != nil {
		return apps.Result{}, fmt.Errorf("jsonfmt: build: %w", err)
	}
	if _, err := jsonlite.Parse(doc); err != nil {
		return apps.Result{}, fmt.Errorf("jsonfmt: self-check: %w", err)
	}
	return apps.Result{
		Summary:  fmt.Sprintf("formatted %d readings into %d bytes", count, len(doc)),
		Upstream: doc,
		Metrics: map[string]float64{
			"readings": float64(count),
			"docBytes": float64(len(doc)),
		},
	}, nil
}
