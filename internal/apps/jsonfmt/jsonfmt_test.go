package jsonfmt

import (
	"testing"

	"iothub/internal/apps"
	"iothub/internal/jsonlite"
	"iothub/internal/sensor"
)

func TestFormatsWindowToValidJSON(t *testing.T) {
	a, err := New(11)
	if err != nil {
		t.Fatal(err)
	}
	in, err := apps.CollectWindow(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Compute(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics["readings"] != 20 {
		t.Errorf("readings = %v, want 20 (10 Hz × 2 sensors)", res.Metrics["readings"])
	}
	v, err := jsonlite.Parse(res.Upstream)
	if err != nil {
		t.Fatalf("output not valid JSON: %v", err)
	}
	doc, ok := v.(map[string]any)
	if !ok {
		t.Fatalf("document is %T", v)
	}
	readings, ok := doc["readings"].(map[string]any)
	if !ok {
		t.Fatalf("readings missing: %v", doc)
	}
	pressures, ok := readings["pressure_pa"].([]any)
	if !ok || len(pressures) != 10 {
		t.Errorf("pressure array = %v", readings["pressure_pa"])
	}
	if p, ok := pressures[0].(float64); !ok || p < 100000 || p > 103000 {
		t.Errorf("pressure value = %v", pressures[0])
	}
}

func TestWindowIndexInDocument(t *testing.T) {
	a, err := New(11)
	if err != nil {
		t.Fatal(err)
	}
	in, err := apps.CollectWindow(a, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Compute(in)
	if err != nil {
		t.Fatal(err)
	}
	v, err := jsonlite.Parse(res.Upstream)
	if err != nil {
		t.Fatal(err)
	}
	if w := v.(map[string]any)["window"]; w != 7.0 {
		t.Errorf("window = %v, want 7", w)
	}
}

func TestComputeRejectsBadSamples(t *testing.T) {
	a, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	in := apps.WindowInput{Samples: map[sensor.ID][][]byte{
		sensor.Barometer: {make([]byte, 2)},
	}}
	if _, err := a.Compute(in); err == nil {
		t.Error("malformed sample accepted")
	}
}

func TestSpecTiny(t *testing.T) {
	a, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	sp := a.Spec()
	data, err := sp.DataBytesPerWindow()
	if err != nil || data != 160 {
		t.Errorf("data = %d B, want 160 (Table II: 0.16 KB)", data)
	}
	irq, err := sp.InterruptsPerWindow()
	if err != nil || irq != 20 {
		t.Errorf("interrupts = %d, want 20", irq)
	}
}
