package report

import (
	"strings"
	"testing"
)

func sample() *Table {
	t := &Table{
		Title:  "Demo",
		Header: []string{"app", "energy", "saving"},
		Notes:  []string{"synthetic"},
	}
	t.AddRow("A2", Millijoules(2.555), Percent(0.52))
	t.AddRow("A11", Millijoules(4.9), Percent(0.05))
	return t
}

func TestASCIIAlignment(t *testing.T) {
	out := sample().ASCII()
	if !strings.Contains(out, "Demo") {
		t.Error("title missing")
	}
	lines := strings.Split(out, "\n")
	var header, row string
	for i, l := range lines {
		if strings.HasPrefix(l, "app") {
			header = l
			row = lines[i+2]
			break
		}
	}
	if header == "" {
		t.Fatalf("no header in output:\n%s", out)
	}
	if strings.Index(header, "energy") != strings.Index(row, "2555.0")-0 &&
		!strings.Contains(row, "2555.0 mJ") {
		t.Errorf("row misaligned: %q", row)
	}
	if !strings.Contains(out, "note: synthetic") {
		t.Error("note missing")
	}
}

func TestCSVEscaping(t *testing.T) {
	tab := &Table{Header: []string{"a", "b"}}
	tab.AddRow(`has,comma`, `has"quote`)
	out := tab.CSV()
	want := "a,b\n\"has,comma\",\"has\"\"quote\"\n"
	if out != want {
		t.Errorf("CSV = %q, want %q", out, want)
	}
}

func TestMarkdown(t *testing.T) {
	out := sample().Markdown()
	if !strings.Contains(out, "### Demo") {
		t.Error("markdown title missing")
	}
	if !strings.Contains(out, "| app | energy | saving |") {
		t.Errorf("markdown header missing:\n%s", out)
	}
	if !strings.Contains(out, "| --- | --- | --- |") {
		t.Error("markdown separator missing")
	}
	if !strings.Contains(out, "*synthetic*") {
		t.Error("markdown note missing")
	}
}

func TestCellFormats(t *testing.T) {
	if Cell("x") != "x" || Cell(42) != "42" || Cell(1.5) != "1.50" || Cell(true) != "true" {
		t.Error("Cell formatting wrong")
	}
	if Percent(0.1234) != "12.3%" {
		t.Errorf("Percent = %q", Percent(0.1234))
	}
	if Millijoules(0.0021) != "2.1 mJ" {
		t.Errorf("Millijoules = %q", Millijoules(0.0021))
	}
}

func TestEmptyTable(t *testing.T) {
	empty := &Table{}
	if out := empty.ASCII(); out != "" {
		t.Errorf("empty ASCII = %q", out)
	}
	if out := empty.CSV(); out != "" {
		t.Errorf("empty CSV = %q", out)
	}
}

func TestBarChartASCII(t *testing.T) {
	c := &BarChart{Title: "Savings", Width: 10}
	c.Add("Batching", 0.5, "50%")
	c.Add("COM", 1.0, "100%")
	c.Add("None", 0, "0%")
	out := c.ASCII()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Savings" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.Contains(lines[2], "#####") || strings.Contains(lines[2], "######") {
		t.Errorf("half bar wrong: %q", lines[2])
	}
	if !strings.Contains(lines[3], "##########") {
		t.Errorf("full bar wrong: %q", lines[3])
	}
	if strings.Contains(lines[4], "#") {
		t.Errorf("zero bar drawn: %q", lines[4])
	}
	if !strings.HasSuffix(lines[3], "100%") {
		t.Errorf("annotation missing: %q", lines[3])
	}
}

func TestBarChartTinyPositiveVisible(t *testing.T) {
	c := &BarChart{Width: 10}
	c.Add("big", 1000, "")
	c.Add("tiny", 0.001, "")
	out := c.ASCII()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if !strings.Contains(lines[1], "#") {
		t.Errorf("tiny positive value invisible: %q", lines[1])
	}
}

func TestBarChartEmpty(t *testing.T) {
	var c BarChart
	if c.ASCII() != "" {
		t.Error("empty chart rendered")
	}
}
