package report

import (
	"fmt"
	"strings"
)

// BarRow is one horizontal bar.
type BarRow struct {
	Label string
	Value float64
	// Annotation is printed after the bar ("52.4%", "2.28x", ...).
	Annotation string
}

// BarChart renders labeled values as horizontal ASCII bars, scaled to the
// largest value — the terminal rendition of the paper's bar figures.
type BarChart struct {
	Title string
	Rows  []BarRow
	// Width is the bar column width in characters (default 40).
	Width int
	Notes []string
}

// Add appends one bar.
func (c *BarChart) Add(label string, value float64, annotation string) {
	c.Rows = append(c.Rows, BarRow{Label: label, Value: value, Annotation: annotation})
}

// ASCII renders the chart.
func (c *BarChart) ASCII() string {
	if len(c.Rows) == 0 {
		return ""
	}
	width := c.Width
	if width <= 0 {
		width = 40
	}
	maxVal := 0.0
	labelW := 0
	for _, r := range c.Rows {
		if r.Value > maxVal {
			maxVal = r.Value
		}
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
	}
	if maxVal <= 0 {
		maxVal = 1
	}
	var b strings.Builder
	if c.Title != "" {
		b.WriteString(c.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", len(c.Title)))
		b.WriteByte('\n')
	}
	for _, r := range c.Rows {
		n := int(r.Value / maxVal * float64(width))
		if n < 0 {
			n = 0
		}
		if r.Value > 0 && n == 0 {
			n = 1 // visible sliver for tiny positive values
		}
		fmt.Fprintf(&b, "%-*s |%s%s %s\n",
			labelW, r.Label,
			strings.Repeat("#", n), strings.Repeat(" ", width-n),
			r.Annotation)
	}
	for _, n := range c.Notes {
		b.WriteString("note: ")
		b.WriteString(n)
		b.WriteByte('\n')
	}
	return b.String()
}
