package report

import "strconv"

// AggRow is one streaming-aggregate line (the fleet engine's per-metric
// summary): distribution moments plus quantile-sketch estimates.
type AggRow struct {
	Metric string
	Count  int64
	Mean   float64
	Std    float64
	Min    float64
	P50    float64
	P95    float64
	P99    float64
	Max    float64
}

// Sig formats a float with six significant digits — aggregate values span
// microjoules to joules, so fixed decimals would truncate either end.
func Sig(v float64) string {
	return strconv.FormatFloat(v, 'g', 6, 64)
}

// AggregateTable renders aggregate rows in the caller's order.
func AggregateTable(title string, rows []AggRow) *Table {
	t := &Table{
		Title:  title,
		Header: []string{"metric", "n", "mean", "std", "min", "p50", "p95", "p99", "max"},
	}
	for _, r := range rows {
		t.AddRow(r.Metric, strconv.FormatInt(r.Count, 10),
			Sig(r.Mean), Sig(r.Std), Sig(r.Min),
			Sig(r.P50), Sig(r.P95), Sig(r.P99), Sig(r.Max))
	}
	return t
}
