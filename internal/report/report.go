// Package report renders experiment results as aligned ASCII tables and CSV
// — the output layer for cmd/experiments and EXPERIMENTS.md.
package report

import (
	"fmt"
	"strconv"
	"strings"
)

// Table is a simple labeled grid.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	// Notes are printed under the table (paper references, caveats).
	Notes []string
}

// AddRow appends a row of already formatted cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Cell formats a value for a table cell: floats get 2 decimals, percentages
// are the caller's concern.
func Cell(v any) string {
	switch x := v.(type) {
	case string:
		return x
	case int:
		return strconv.Itoa(x)
	case float64:
		return strconv.FormatFloat(x, 'f', 2, 64)
	default:
		return fmt.Sprintf("%v", x)
	}
}

// Percent formats a 0..1 fraction as "12.3%".
func Percent(f float64) string {
	return strconv.FormatFloat(f*100, 'f', 1, 64) + "%"
}

// Millijoules formats joules as "123.4 mJ".
func Millijoules(j float64) string {
	return strconv.FormatFloat(j*1e3, 'f', 1, 64) + " mJ"
}

// ASCII renders the table with aligned columns.
func (t *Table) ASCII() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", len(t.Title)))
		b.WriteByte('\n')
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", pad))
		}
		b.WriteByte('\n')
	}
	if len(t.Header) > 0 {
		writeRow(t.Header)
		total := 0
		for _, w := range widths {
			total += w + 2
		}
		b.WriteString(strings.Repeat("-", total))
		b.WriteByte('\n')
	}
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		b.WriteString("note: ")
		b.WriteString(n)
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the table as RFC 4180 comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	if len(t.Header) > 0 {
		writeRow(t.Header)
	}
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavored markdown table (used to
// regenerate EXPERIMENTS.md).
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString("### ")
		b.WriteString(t.Title)
		b.WriteString("\n\n")
	}
	row := func(cells []string) {
		b.WriteString("| ")
		b.WriteString(strings.Join(cells, " | "))
		b.WriteString(" |\n")
	}
	if len(t.Header) > 0 {
		row(t.Header)
		seps := make([]string, len(t.Header))
		for i := range seps {
			seps[i] = "---"
		}
		row(seps)
	}
	for _, r := range t.Rows {
		row(r)
	}
	for _, n := range t.Notes {
		b.WriteString("\n*")
		b.WriteString(n)
		b.WriteString("*\n")
	}
	return b.String()
}
