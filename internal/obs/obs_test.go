package obs

import (
	"encoding/json"
	"strings"
	"testing"

	"iothub/internal/sim"
)

func TestNilRecorderNoOps(t *testing.T) {
	var r *Recorder
	r.Inc(InterruptsRaised)
	r.Add(UARTBytes, 10)
	r.Store(CPUTicksActive, 5)
	r.SetMax(MCUBufferHighWater, 7)
	r.Span("cpu", "work", 0, 1)
	r.Note("crash", "detail")
	r.EnableTracing()
	r.Bind(nil)
	r.SetFlightLen(4)
	if r.Enabled() {
		t.Fatal("nil recorder reports Enabled")
	}
	if r.Tracing() {
		t.Fatal("nil recorder reports Tracing")
	}
	if got := r.Get(InterruptsRaised); got != 0 {
		t.Fatalf("nil Get = %d", got)
	}
	if r.Spans() != nil || r.FlightEvents() != nil {
		t.Fatal("nil recorder returned data")
	}
	var b strings.Builder
	if err := WriteCounters(&b, r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "interrupts_raised") {
		t.Fatalf("WriteCounters on nil recorder missing names:\n%s", b.String())
	}
}

// The disabled layer must be free on the hot path: a nil recorder's methods
// are one branch each, never an allocation.
func TestNilRecorderZeroAllocs(t *testing.T) {
	var r *Recorder
	got := testing.AllocsPerRun(200, func() {
		r.Inc(InterruptsRaised)
		r.Add(UARTBytes, 12)
		r.SetMax(MCUBufferHighWater, 64)
		r.Span("cpu", "work", 0, 1)
		if r.Enabled() {
			r.Note("never", "reached")
		}
	})
	if got != 0 {
		t.Fatalf("nil recorder allocates %.1f per op set, want 0", got)
	}
}

func TestCounterOps(t *testing.T) {
	r := NewRecorder()
	r.Inc(InterruptsRaised)
	r.Inc(InterruptsRaised)
	r.Add(UARTBytes, 100)
	r.Store(CPUTicksActive, 42)
	r.Store(CPUTicksActive, 41) // Store overwrites
	r.SetMax(MCUBufferHighWater, 10)
	r.SetMax(MCUBufferHighWater, 5) // lower value ignored
	for c, want := range map[Counter]uint64{
		InterruptsRaised:   2,
		UARTBytes:          100,
		CPUTicksActive:     41,
		MCUBufferHighWater: 10,
		RadioBursts:        0,
	} {
		if got := r.Get(c); got != want {
			t.Errorf("%s = %d, want %d", c, got, want)
		}
	}
}

func TestCounterNamesDenseAndUnique(t *testing.T) {
	seen := make(map[string]Counter)
	for _, c := range Counters() {
		name := c.String()
		if name == "" || strings.HasPrefix(name, "counter(") {
			t.Fatalf("counter %d has no name", int(c))
		}
		if prev, dup := seen[name]; dup {
			t.Fatalf("counters %d and %d share name %q", int(prev), int(c), name)
		}
		seen[name] = c
	}
	if Counter(9999).String() != "counter(9999)" {
		t.Fatal("out-of-range counter name")
	}
}

func TestSpansRequireTracing(t *testing.T) {
	r := NewRecorder()
	r.Span("cpu", "work", 0, 10)
	if len(r.Spans()) != 0 {
		t.Fatal("span recorded while tracing disabled")
	}
	r.EnableTracing()
	if !r.Tracing() {
		t.Fatal("Tracing false after EnableTracing")
	}
	r.Span("cpu", "work", 0, 10)
	r.Span("mcu", "exec", 5, 9)
	spans := r.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0] != (Span{Track: "cpu", Name: "work", Start: 0, End: 10}) {
		t.Fatalf("span[0] = %+v", spans[0])
	}
}

func TestFlightRingWraps(t *testing.T) {
	r := NewRecorder()
	r.SetFlightLen(3)
	clk := sim.NewScheduler()
	r.Bind(clk)
	for i := 0; i < 5; i++ {
		r.Note("tick", string(rune('a'+i)))
	}
	evs := r.FlightEvents()
	if len(evs) != 3 {
		t.Fatalf("ring holds %d, want 3", len(evs))
	}
	got := evs[0].Detail + evs[1].Detail + evs[2].Detail
	if got != "cde" {
		t.Fatalf("oldest-first order = %q, want cde", got)
	}
}

func TestFlightDisabled(t *testing.T) {
	r := NewRecorder()
	r.SetFlightLen(0)
	r.Note("tick", "x")
	if r.FlightEvents() != nil {
		t.Fatal("disabled ring recorded an event")
	}
}

func TestWriteFlightJSONLines(t *testing.T) {
	r := NewRecorder()
	r.Note("crash", "mcu M1")
	r.Note("reboot", "")
	var b strings.Builder
	if err := WriteFlight(&b, r); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), b.String())
	}
	var ev FlightEvent
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if ev.Kind != "crash" || ev.Detail != "mcu M1" {
		t.Fatalf("round-trip = %+v", ev)
	}
}

func TestChromeTraceRoundTrip(t *testing.T) {
	r := NewRecorder()
	r.EnableTracing()
	r.Span("cpu", "DataCollection", 1000, 3000)
	r.Span("mcu", "exec", 1500, 2500)
	r.Span("cpu", "Interrupt", 4000, 4500)
	var b strings.Builder
	if err := WriteChromeTrace(&b, r); err != nil {
		t.Fatal(err)
	}
	var doc TraceDocument
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	// 2 metadata events (cpu, mcu tracks) + 3 spans.
	if len(doc.TraceEvents) != 5 {
		t.Fatalf("got %d events, want 5", len(doc.TraceEvents))
	}
	meta := doc.TraceEvents[0]
	if meta.Ph != "M" || meta.Name != "thread_name" || meta.Args["name"] != "cpu" {
		t.Fatalf("first metadata event = %+v", meta)
	}
	first := doc.TraceEvents[2]
	if first.Ph != "X" || first.Name != "DataCollection" || first.Ts != 1.0 || first.Dur != 2.0 {
		t.Fatalf("first span event = %+v", first)
	}
	// cpu spans share a tid distinct from mcu's.
	if doc.TraceEvents[2].Tid != doc.TraceEvents[4].Tid || doc.TraceEvents[2].Tid == doc.TraceEvents[3].Tid {
		t.Fatal("track→tid mapping wrong")
	}
	// Re-encoding the parsed document reproduces the bytes (round-trip).
	var b2 strings.Builder
	enc := json.NewEncoder(&b2)
	enc.SetIndent("", " ")
	if err := enc.Encode(&doc); err != nil {
		t.Fatal(err)
	}
	if b2.String() != b.String() {
		t.Fatal("trace JSON does not round-trip byte-identically")
	}
}

func TestSpanCapCounted(t *testing.T) {
	r := NewRecorder()
	r.EnableTracing()
	r.spans = make([]Span, maxSpans) // simulate a full buffer
	r.Span("cpu", "over", 0, 1)
	if r.SpansDropped() != 1 {
		t.Fatalf("SpansDropped = %d, want 1", r.SpansDropped())
	}
	doc := BuildTrace(r)
	if doc.SpansDropped != 1 {
		t.Fatal("trace document does not report truncation")
	}
}

func TestWriteCountersFormat(t *testing.T) {
	r := NewRecorder()
	r.Add(UARTBytes, 1234)
	var b strings.Builder
	if err := WriteCounters(&b, r); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != int(numCounters) {
		t.Fatalf("got %d lines, want %d", len(lines), int(numCounters))
	}
	found := false
	for _, l := range lines {
		f := strings.Fields(l)
		if len(f) != 2 {
			t.Fatalf("malformed line %q", l)
		}
		if f[0] == "uart_bytes" && f[1] == "1234" {
			found = true
		}
	}
	if !found {
		t.Fatalf("uart_bytes 1234 not in dump:\n%s", b.String())
	}
}

func TestGaugesSnapshotAndPrometheus(t *testing.T) {
	g := NewGauges()
	g.StartSweep(64, 4)
	g.WorkerBusy(+1)
	g.WorkerBusy(+1)
	g.WorkerBusy(-1)
	for i := 0; i < 10; i++ {
		g.ScenarioDone(i == 3) // one error
	}
	g.SetFingerprint("deadbeef")
	s := g.Read()
	if s.Total != 64 || s.Done != 10 || s.Errors != 1 || s.WorkersBusy != 1 || s.Workers != 4 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.Fingerprint != "deadbeef" {
		t.Fatalf("fingerprint = %q", s.Fingerprint)
	}
	text := g.PrometheusText()
	for _, want := range []string{
		"# TYPE iothub_fleet_scenarios_total gauge",
		"iothub_fleet_scenarios_total 64",
		"iothub_fleet_scenarios_done 10",
		"iothub_fleet_scenarios_errors 1",
		"iothub_fleet_workers 4",
		"iothub_fleet_workers_busy 1",
		`iothub_fleet_aggregate_fingerprint_info{fingerprint="deadbeef"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestNilGaugesNoOps(t *testing.T) {
	var g *Gauges
	g.StartSweep(1, 1)
	g.ScenarioDone(false)
	g.WorkerBusy(+1)
	g.SetFingerprint("x")
	if s := g.Read(); s != (Snapshot{}) {
		t.Fatalf("nil gauges snapshot = %+v", s)
	}
}

func TestMetricsServerScrape(t *testing.T) {
	g := NewGauges()
	g.StartSweep(8, 2)
	g.ScenarioDone(false)
	srv, err := StartMetricsServer("127.0.0.1:0", g)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	body, err := Scrape(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body, "iothub_fleet_scenarios_done 1") {
		t.Fatalf("scrape body missing gauge:\n%s", body)
	}
	// The per-second gauge moves with the wall clock between renders; the
	// remaining series must match a direct render exactly.
	stable := func(text string) string {
		var keep []string
		for _, l := range strings.Split(text, "\n") {
			if !strings.Contains(l, "per_second") {
				keep = append(keep, l)
			}
		}
		return strings.Join(keep, "\n")
	}
	if stable(body) != stable(g.PrometheusText()) {
		t.Fatal("scrape body differs from direct render")
	}
}

func TestMetricsServerNotFound(t *testing.T) {
	srv, err := StartMetricsServer("127.0.0.1:0", NewGauges())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := scrapeRaw(srv.Addr(), "/nope"); err == nil {
		t.Fatal("want error for unknown path")
	}
}
