// Live sweep gauges and their Prometheus text-format export. Unlike the
// Recorder — per-run, single-threaded, virtual-time — Gauges are fleet-wide,
// concurrent, and wall-clock: the worker pool updates them from many
// goroutines while the metrics server scrapes them from another.

package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Gauges is the live state of one fleet sweep, exported in Prometheus text
// format. All fields are safe for concurrent update and scrape.
type Gauges struct {
	total   atomic.Int64
	done    atomic.Int64
	errors  atomic.Int64
	busy    atomic.Int64 // workers currently executing a scenario
	workers atomic.Int64 // pool size

	// Coordinator/worker service (fleetd) state. Zero for in-process sweeps.
	shardsTotal   atomic.Int64
	shardsDone    atomic.Int64
	leasesActive  atomic.Int64
	leaseExpiries atomic.Int64 // leases lost to missed heartbeats → shard reassignments
	submitDupes   atomic.Int64 // idempotency hits: retried/duplicated submissions ignored
	degradeLevel  atomic.Int64 // coordinator degradation-ladder level
	workersLive   atomic.Int64 // workers heard from within the liveness window

	// In-situ meter totals across the sweep's runs (zero when no scenario
	// arms a MeterModel) — observer cost on /metrics, per the self-metering
	// mandate: the measurement layer reports what measuring costs.
	meterSamples atomic.Int64
	meterDropped atomic.Int64
	meterCycles  atomic.Int64
	meterFlushes atomic.Int64
	meterBytes   atomic.Int64

	// Battery ledger totals across the sweep's runs (zero when no scenario
	// arms a power.Supply): brownout count, gated virtual time, and harvest
	// energy credited.
	battBrownouts atomic.Int64
	battDownNs    atomic.Int64
	battHarvestUJ atomic.Int64

	mu          sync.Mutex
	start       time.Time
	fingerprint string
}

// NewGauges returns zeroed gauges with the rate clock started.
func NewGauges() *Gauges {
	return &Gauges{start: time.Now()}
}

// StartSweep records the sweep's size and pool width and restarts the rate
// clock.
func (g *Gauges) StartSweep(total, workers int) {
	if g == nil {
		return
	}
	g.total.Store(int64(total))
	g.workers.Store(int64(workers))
	g.mu.Lock()
	g.start = time.Now()
	g.mu.Unlock()
}

// ScenarioDone accounts one completed scenario (failed = errored run).
func (g *Gauges) ScenarioDone(failed bool) {
	if g == nil {
		return
	}
	g.done.Add(1)
	if failed {
		g.errors.Add(1)
	}
}

// WorkerBusy moves a worker in (+1) or out (-1) of the executing state —
// the pool-occupancy gauge.
func (g *Gauges) WorkerBusy(delta int) {
	if g == nil {
		return
	}
	g.busy.Add(int64(delta))
}

// SetFingerprint publishes the aggregate fingerprint as of the latest
// collector checkpoint.
func (g *Gauges) SetFingerprint(fp string) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.fingerprint = fp
	g.mu.Unlock()
}

// ShardsCreated accounts n new shards in the coordinator's plan (splits on
// degradation add more).
func (g *Gauges) ShardsCreated(n int) {
	if g == nil {
		return
	}
	g.shardsTotal.Add(int64(n))
}

// ShardDone accounts one shard whose results were accepted.
func (g *Gauges) ShardDone() {
	if g == nil {
		return
	}
	g.shardsDone.Add(1)
}

// LeaseActive moves a shard lease in (+1) or out (-1) of the outstanding
// state.
func (g *Gauges) LeaseActive(delta int) {
	if g == nil {
		return
	}
	g.leasesActive.Add(int64(delta))
}

// LeaseExpired accounts one lease deadline miss (= one shard reassignment).
func (g *Gauges) LeaseExpired() {
	if g == nil {
		return
	}
	g.leaseExpiries.Add(1)
}

// SubmitDuplicate accounts one submission ignored by the idempotency check
// (a retried or chaos-duplicated RPC for a shard already folded or retired).
func (g *Gauges) SubmitDuplicate() {
	if g == nil {
		return
	}
	g.submitDupes.Add(1)
}

// SetDegradeLevel publishes the coordinator's degradation-ladder level.
func (g *Gauges) SetDegradeLevel(level int) {
	if g == nil {
		return
	}
	g.degradeLevel.Store(int64(level))
}

// SetWorkersLive publishes how many workers are inside the liveness window.
func (g *Gauges) SetWorkersLive(n int) {
	if g == nil {
		return
	}
	g.workersLive.Store(int64(n))
}

// MeterObserved folds one completed run's in-situ meter accounting into the
// sweep totals (all-zero calls from unobserved runs are free no-ops).
func (g *Gauges) MeterObserved(samples, dropped, cycles, flushes, bytes int64) {
	if g == nil || samples|dropped|cycles|flushes|bytes == 0 {
		return
	}
	g.meterSamples.Add(samples)
	g.meterDropped.Add(dropped)
	g.meterCycles.Add(cycles)
	g.meterFlushes.Add(flushes)
	g.meterBytes.Add(bytes)
}

// PowerObserved folds one completed run's battery ledger accounting into the
// sweep totals (all-zero calls from mains-powered runs are free no-ops).
func (g *Gauges) PowerObserved(brownouts, downNs, harvestMicroJ int64) {
	if g == nil || brownouts|downNs|harvestMicroJ == 0 {
		return
	}
	g.battBrownouts.Add(brownouts)
	g.battDownNs.Add(downNs)
	g.battHarvestUJ.Add(harvestMicroJ)
}

// Snapshot is one consistent read of the gauges.
type Snapshot struct {
	Total, Done, Errors int64
	WorkersBusy         int64
	Workers             int64
	// RatePerSec is completed scenarios per wall-clock second since
	// StartSweep; ETASeconds extrapolates the remainder (0 when done or
	// when no rate is established yet).
	RatePerSec  float64
	ETASeconds  float64
	Fingerprint string
	// Coordinator/worker service state (zero for in-process sweeps).
	ShardsTotal, ShardsDone   int64
	LeasesActive              int64
	LeaseExpiries             int64
	SubmitDuplicates          int64
	DegradeLevel, WorkersLive int64
	// In-situ meter totals (zero when no scenario armed a MeterModel).
	MeterSamples, MeterDropped            int64
	MeterCycles, MeterFlushes, MeterBytes int64
	// Battery ledger totals (zero when no scenario armed a power.Supply).
	BatteryBrownouts, BatteryDownNs, BatteryHarvestUJ int64
}

// Read takes a snapshot.
func (g *Gauges) Read() Snapshot {
	if g == nil {
		return Snapshot{}
	}
	g.mu.Lock()
	start, fp := g.start, g.fingerprint
	g.mu.Unlock()
	s := Snapshot{
		Total:            g.total.Load(),
		Done:             g.done.Load(),
		Errors:           g.errors.Load(),
		WorkersBusy:      g.busy.Load(),
		Workers:          g.workers.Load(),
		Fingerprint:      fp,
		ShardsTotal:      g.shardsTotal.Load(),
		ShardsDone:       g.shardsDone.Load(),
		LeasesActive:     g.leasesActive.Load(),
		LeaseExpiries:    g.leaseExpiries.Load(),
		SubmitDuplicates: g.submitDupes.Load(),
		DegradeLevel:     g.degradeLevel.Load(),
		WorkersLive:      g.workersLive.Load(),
		MeterSamples:     g.meterSamples.Load(),
		MeterDropped:     g.meterDropped.Load(),
		MeterCycles:      g.meterCycles.Load(),
		MeterFlushes:     g.meterFlushes.Load(),
		MeterBytes:       g.meterBytes.Load(),
		BatteryBrownouts: g.battBrownouts.Load(),
		BatteryDownNs:    g.battDownNs.Load(),
		BatteryHarvestUJ: g.battHarvestUJ.Load(),
	}
	elapsed := time.Since(start).Seconds()
	if elapsed > 0 && s.Done > 0 {
		s.RatePerSec = float64(s.Done) / elapsed
		if left := s.Total - s.Done; left > 0 && s.RatePerSec > 0 {
			s.ETASeconds = float64(left) / s.RatePerSec
		}
	}
	return s
}

// promGauge writes one fully annotated Prometheus series.
func promGauge(w io.Writer, name, help string, value float64) error {
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, value)
	return err
}

// WritePrometheus renders the gauges in Prometheus exposition text format
// (version 0.0.4), the payload behind iotfleet's -metrics-addr endpoint.
func (g *Gauges) WritePrometheus(w io.Writer) error {
	s := g.Read()
	series := []struct {
		name, help string
		value      float64
	}{
		{"iothub_fleet_scenarios_total", "Scenarios in the expanded sweep.", float64(s.Total)},
		{"iothub_fleet_scenarios_done", "Scenarios completed (resumed ones included).", float64(s.Done)},
		{"iothub_fleet_scenarios_errors", "Scenarios whose run errored.", float64(s.Errors)},
		{"iothub_fleet_scenarios_per_second", "Completion rate over the sweep so far.", s.RatePerSec},
		{"iothub_fleet_workers", "Worker pool size.", float64(s.Workers)},
		{"iothub_fleet_workers_busy", "Workers currently executing a scenario.", float64(s.WorkersBusy)},
		{"iothub_fleetd_shards_total", "Shards in the coordinator's plan (splits included).", float64(s.ShardsTotal)},
		{"iothub_fleetd_shards_done", "Shards whose results were accepted and folded.", float64(s.ShardsDone)},
		{"iothub_fleetd_leases_active", "Shard leases currently outstanding.", float64(s.LeasesActive)},
		{"iothub_fleetd_lease_expiries_total", "Lease deadline misses (= shard reassignments).", float64(s.LeaseExpiries)},
		{"iothub_fleetd_submit_duplicates_total", "Submissions ignored by the idempotency check.", float64(s.SubmitDuplicates)},
		{"iothub_fleetd_degrade_level", "Coordinator degradation-ladder level.", float64(s.DegradeLevel)},
		{"iothub_fleetd_workers_live", "Workers heard from within the liveness window.", float64(s.WorkersLive)},
		{"iothub_meter_samples_total", "In-situ meter samples taken across the sweep's runs.", float64(s.MeterSamples)},
		{"iothub_meter_dropped_samples_total", "In-situ meter samples lost to RAM pressure or MCU reboots.", float64(s.MeterDropped)},
		{"iothub_meter_cpu_cycles_total", "MCU cycles the in-situ meters consumed.", float64(s.MeterCycles)},
		{"iothub_meter_flushes_total", "In-situ meter buffer flushes.", float64(s.MeterFlushes)},
		{"iothub_meter_bytes_total", "Record bytes the in-situ meters persisted.", float64(s.MeterBytes)},
		{"iothub_battery_brownouts_total", "SoC-zero power gates across the sweep's runs.", float64(s.BatteryBrownouts)},
		{"iothub_battery_brownout_ns_total", "Virtual nanoseconds spent power-gated.", float64(s.BatteryDownNs)},
		{"iothub_battery_harvested_uj_total", "Harvest energy credited to batteries, in microjoules.", float64(s.BatteryHarvestUJ)},
	}
	for _, sr := range series {
		if err := promGauge(w, sr.name, sr.help, sr.value); err != nil {
			return err
		}
	}
	fp := s.Fingerprint
	if fp == "" {
		fp = "none"
	}
	_, err := fmt.Fprintf(w,
		"# HELP iothub_fleet_aggregate_fingerprint_info Aggregate-state fingerprint as of the latest checkpoint.\n"+
			"# TYPE iothub_fleet_aggregate_fingerprint_info gauge\n"+
			"iothub_fleet_aggregate_fingerprint_info{fingerprint=%q} 1\n", fp)
	return err
}

// PrometheusText renders WritePrometheus into a string (scrape handler and
// tests).
func (g *Gauges) PrometheusText() string {
	var b strings.Builder
	_ = g.WritePrometheus(&b)
	return b.String()
}
