// MetricsServer: a Prometheus scrape endpoint on httplite's server loop.
// The fleet CLI and fleetd coordinator are the intended client surfaces —
// one GET /metrics per connection, text exposition format out — so the
// embedded wire layer is a better fit than net/http: no mux, no keep-alive
// state, and the same hardened parser the simulated REST workloads and the
// fleetd RPC already exercise.

package obs

import (
	"fmt"
	"strings"
	"time"

	"iothub/internal/httplite"
)

// serverIOTimeout bounds how long one scrape may hold a connection.
const serverIOTimeout = 5 * time.Second

// MetricsServer serves a Gauges set at GET /metrics, one request per
// connection.
type MetricsServer struct {
	srv *httplite.Server
}

// StartMetricsServer binds addr (e.g. ":9090" or "127.0.0.1:0") and serves
// g until Close.
func StartMetricsServer(addr string, g *Gauges) (*MetricsServer, error) {
	srv, err := httplite.Serve(addr, MetricsHandler(g))
	if err != nil {
		return nil, fmt.Errorf("obs: metrics listen %s: %w", addr, err)
	}
	return &MetricsServer{srv: srv}, nil
}

// MetricsHandler is the GET /metrics endpoint as a composable httplite
// handler, so servers with richer routing (the fleetd coordinator) can mount
// the same scrape surface the standalone MetricsServer exposes.
func MetricsHandler(g *Gauges) httplite.Handler {
	return func(req *httplite.Request) httplite.Reply {
		if req.Method != "GET" || strings.SplitN(req.Path, "?", 2)[0] != "/metrics" {
			return httplite.Reply{Status: 404, Reason: "Not Found",
				Headers: map[string]string{"Content-Type": "text/plain; charset=utf-8"},
				Body:    []byte("not found\n")}
		}
		return httplite.Reply{Status: 200, Reason: "OK",
			Headers: map[string]string{"Content-Type": "text/plain; version=0.0.4; charset=utf-8"},
			Body:    []byte(g.PrometheusText())}
	}
}

// Addr is the bound address (useful with ":0").
func (s *MetricsServer) Addr() string { return s.srv.Addr() }

// Close stops the listener and waits for in-flight scrapes.
func (s *MetricsServer) Close() error { return s.srv.Close() }

// Scrape fetches the metrics endpoint at addr once and returns the
// exposition body — the self-check iotfleet runs after a sweep, and what CI
// greps.
func Scrape(addr string) (string, error) {
	return scrapeRaw(addr, "/metrics")
}

func scrapeRaw(addr, path string) (string, error) {
	resp, err := httplite.Do(addr, &httplite.Request{Method: "GET", Path: path}, serverIOTimeout)
	if err != nil {
		return "", fmt.Errorf("obs: scrape %s: %w", addr, err)
	}
	if resp.Status != 200 {
		return "", fmt.Errorf("obs: scrape status %d", resp.Status)
	}
	return string(resp.Body), nil
}
