// MetricsServer: a Prometheus scrape endpoint built on net.Listen and
// internal/httplite. The fleet CLI is the only intended client surface —
// one GET /metrics per connection, text exposition format out — so the
// embedded wire layer is a better fit than net/http: no mux, no keep-alive
// state, and the same parser the simulated REST workloads already exercise.

package obs

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"

	"iothub/internal/httplite"
)

// serverReadLimit bounds request memory per connection.
const serverReadLimit = 16 * 1024

// serverIOTimeout bounds how long one scrape may hold a connection.
const serverIOTimeout = 5 * time.Second

// MetricsServer serves a Gauges set at GET /metrics, one request per
// connection.
type MetricsServer struct {
	gauges *Gauges
	ln     net.Listener
	wg     sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// StartMetricsServer binds addr (e.g. ":9090" or "127.0.0.1:0") and serves
// g until Close.
func StartMetricsServer(addr string, g *Gauges) (*MetricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: metrics listen %s: %w", addr, err)
	}
	s := &MetricsServer{gauges: g, ln: ln}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr is the bound address (useful with ":0").
func (s *MetricsServer) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and waits for in-flight scrapes.
func (s *MetricsServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *MetricsServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// serveConn handles one request/response exchange. Errors are answered when
// possible and otherwise dropped: a broken scraper must not affect the sweep.
func (s *MetricsServer) serveConn(conn net.Conn) {
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(serverIOTimeout))
	raw, err := readRequestBytes(conn)
	if err != nil {
		respond(conn, 400, "Bad Request", "text/plain; charset=utf-8", []byte("bad request\n"))
		return
	}
	req, err := httplite.ParseRequest(raw)
	if err != nil {
		respond(conn, 400, "Bad Request", "text/plain; charset=utf-8", []byte("bad request\n"))
		return
	}
	if req.Method != "GET" || strings.SplitN(req.Path, "?", 2)[0] != "/metrics" {
		respond(conn, 404, "Not Found", "text/plain; charset=utf-8", []byte("not found\n"))
		return
	}
	respond(conn, 200, "OK", "text/plain; version=0.0.4; charset=utf-8",
		[]byte(s.gauges.PrometheusText()))
}

// readRequestBytes reads one request head (terminated by \r\n\r\n), bounded
// by serverReadLimit. Scrape requests carry no body.
func readRequestBytes(conn net.Conn) ([]byte, error) {
	buf := make([]byte, 0, 1024)
	chunk := make([]byte, 512)
	for {
		n, err := conn.Read(chunk)
		buf = append(buf, chunk[:n]...)
		if bytes.Contains(buf, []byte("\r\n\r\n")) {
			return buf, nil
		}
		if len(buf) > serverReadLimit {
			return nil, fmt.Errorf("obs: request too large")
		}
		if err != nil {
			return nil, err
		}
	}
}

func respond(conn net.Conn, status int, reason, contentType string, body []byte) {
	raw, err := httplite.MarshalResponse(status, reason, map[string]string{
		"Content-Type": contentType,
		"Connection":   "close",
	}, body)
	if err != nil {
		return
	}
	_, _ = conn.Write(raw)
}

// Scrape fetches the metrics endpoint at addr once and returns the
// exposition body — the self-check iotfleet runs after a sweep, and what CI
// greps.
func Scrape(addr string) (string, error) {
	return scrapeRaw(addr, "/metrics")
}

func scrapeRaw(addr, path string) (string, error) {
	conn, err := net.DialTimeout("tcp", addr, serverIOTimeout)
	if err != nil {
		return "", fmt.Errorf("obs: scrape dial %s: %w", addr, err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(serverIOTimeout))
	req := &httplite.Request{Method: "GET", Path: path, Host: addr}
	raw, err := req.Marshal()
	if err != nil {
		return "", err
	}
	if _, err := conn.Write(raw); err != nil {
		return "", fmt.Errorf("obs: scrape write: %w", err)
	}
	respBytes, err := io.ReadAll(io.LimitReader(conn, 1<<20))
	if err != nil {
		return "", fmt.Errorf("obs: scrape read: %w", err)
	}
	resp, err := httplite.ParseResponse(respBytes)
	if err != nil {
		return "", fmt.Errorf("obs: scrape parse: %w", err)
	}
	if resp.Status != 200 {
		return "", fmt.Errorf("obs: scrape status %d", resp.Status)
	}
	return string(resp.Body), nil
}
