// Package obs is the simulator's observability layer — the software analog
// of the paper's measurement apparatus. Where package energy plays the role
// of the Monsoon power monitor (exact energy integration), obs plays the
// role of the oprofile-instrumented kernel the paper pairs it with (§III):
// a registry of monotonic hardware counters, a span tracer that records the
// paper's four routines on the virtual timeline, and a bounded flight
// recorder of notable hub events for post-mortem analysis.
//
// The whole layer hangs off a nil-able *Recorder threaded through hub.Params
// and fleet.Options. Every method is a no-op on a nil receiver, so the
// disabled configuration costs one nil check per call site, allocates
// nothing, and — because the Recorder only ever observes, never schedules —
// a run with observability enabled produces byte-identical simulation output
// to one without. This is the paper's constraint that measurement must not
// perturb the system, enforced by tests in internal/hub.
//
// Exporters: WriteChromeTrace emits spans as Chrome trace-event JSON
// (loadable in Perfetto or chrome://tracing), WriteCounters dumps the
// registry as aligned text, WriteFlight dumps the flight ring as JSON lines,
// and Gauges/MetricsServer (prom.go, server.go) serve live fleet-sweep state
// in Prometheus text format.
package obs

import (
	"fmt"
	"io"

	"iothub/internal/sim"
)

// Counter identifies one monotonic hardware counter in the registry — the
// virtual oprofile's event set. The enum is dense: counters live in a fixed
// array, so Inc/Add on an enabled recorder is a bounds check and an integer
// add, and on a nil recorder a single branch.
type Counter int

// The counter registry. Groups mirror where the increments come from:
// the event kernel (sim), the CPU power-state machine (cpu), the interrupt
// and UART path (mcu, link, hub), the uplink radios, and the fault engine.
const (
	// SimEventsScheduled / SimEventsCancelled count event-kernel traffic —
	// the DES analog of oprofile's interrupt-descriptor statistics.
	SimEventsScheduled Counter = iota
	SimEventsCancelled
	// CPUTicksActive .. CPUTicksWaking are per-power-state residency in
	// virtual nanoseconds (oprofile's per-state CPU_CLK samples).
	CPUTicksActive
	CPUTicksWFI
	CPUTicksSleep
	CPUTicksDeepSleep
	CPUTicksWaking
	// CPUWakes counts sleep→active transitions.
	CPUWakes
	// InterruptsRaised counts MCU→CPU interrupts fielded (Table II's
	// per-workload interrupt counts); InterruptsCoalesced counts samples
	// that crossed without raising their own interrupt — batched samples
	// and BEAM's extra sharers of one per-sample interrupt.
	InterruptsRaised
	InterruptsCoalesced
	// UARTFrames / UARTBytes count link frames and payload bytes on the
	// wire (retransmissions included); UARTStalls counts loss timeouts the
	// sender waited out; UARTRetransmits counts re-sent frames.
	UARTFrames
	UARTBytes
	UARTStalls
	UARTRetransmits
	// MCUBufferHighWater is the peak MCU RAM allocation in bytes (max,
	// not sum); MCUCrashes counts injected reboots.
	MCUBufferHighWater
	MCUCrashes
	// SensorReads counts read attempts (retries included); SamplesDropped
	// counts reads abandoned after exhausting retries.
	SensorReads
	SamplesDropped
	// BatchFlushes counts bulk transfers of MCU-buffered windows.
	BatchFlushes
	// RadioBursts / RadioBytes count uplink transmissions and their
	// payload bytes across both radios; UpstreamBytes counts the window
	// outputs those bursts carried.
	RadioBursts
	RadioBytes
	UpstreamBytes
	// FaultActivations counts fault-engine rule firings (probe hits plus
	// self-firing events that actually ran).
	FaultActivations
	// EdgeUploads / EdgeUploadBytes count window uploads shipped to the
	// edge tier and their payload bytes; EdgeColdStarts counts container
	// init warmups; EdgeUpstreamBytes counts window outputs that egressed
	// directly from the edge instead of a hub radio.
	EdgeUploads
	EdgeUploadBytes
	EdgeColdStarts
	EdgeUpstreamBytes
	// MeterSamples / MeterDroppedSamples count the in-situ meter's readings
	// taken and lost (RAM pressure, MCU reboots); MeterCPUCycles is the MCU
	// cycle budget the instrument consumed; MeterFlushes / MeterBytes count
	// buffer flushes and the record bytes they persisted. All zero unless a
	// MeterModel is armed (see meter.go).
	MeterSamples
	MeterDroppedSamples
	MeterCPUCycles
	MeterFlushes
	MeterBytes
	// BatteryBrownouts / BatteryBrownoutTimeNs count SoC-zero power gates and
	// the virtual time spent gated; BatterySoCPermille is the final state of
	// charge in thousandths of usable capacity; BatteryHarvestedMicroJ is the
	// harvest energy actually credited. All zero unless a power.Supply is
	// armed (see internal/hub/power.go).
	BatteryBrownouts
	BatteryBrownoutTimeNs
	BatterySoCPermille
	BatteryHarvestedMicroJ

	numCounters
)

// counterNames are the oprofile-style labels, indexed by Counter. Names are
// stable: they appear in -counters output, DESIGN.md, and tests.
var counterNames = [numCounters]string{
	SimEventsScheduled:     "sim_events_scheduled",
	SimEventsCancelled:     "sim_events_cancelled",
	CPUTicksActive:         "cpu_ticks_active_ns",
	CPUTicksWFI:            "cpu_ticks_wfi_ns",
	CPUTicksSleep:          "cpu_ticks_sleep_ns",
	CPUTicksDeepSleep:      "cpu_ticks_deepsleep_ns",
	CPUTicksWaking:         "cpu_ticks_waking_ns",
	CPUWakes:               "cpu_wakes",
	InterruptsRaised:       "interrupts_raised",
	InterruptsCoalesced:    "interrupts_coalesced",
	UARTFrames:             "uart_frames",
	UARTBytes:              "uart_bytes",
	UARTStalls:             "uart_stalls",
	UARTRetransmits:        "uart_retransmits",
	MCUBufferHighWater:     "mcu_buffer_highwater_bytes",
	MCUCrashes:             "mcu_crashes",
	SensorReads:            "sensor_reads",
	SamplesDropped:         "samples_dropped",
	BatchFlushes:           "batch_flushes",
	RadioBursts:            "radio_bursts",
	RadioBytes:             "radio_bytes",
	UpstreamBytes:          "upstream_bytes",
	FaultActivations:       "fault_activations",
	EdgeUploads:            "edge_uploads",
	EdgeUploadBytes:        "edge_upload_bytes",
	EdgeColdStarts:         "edge_cold_starts",
	EdgeUpstreamBytes:      "edge_upstream_bytes",
	MeterSamples:           "meter_samples",
	MeterDroppedSamples:    "meter_dropped_samples",
	MeterCPUCycles:         "meter_cpu_cycles",
	MeterFlushes:           "meter_flushes",
	MeterBytes:             "meter_bytes",
	BatteryBrownouts:       "battery_brownouts",
	BatteryBrownoutTimeNs:  "battery_brownout_ns",
	BatterySoCPermille:     "battery_soc_permille",
	BatteryHarvestedMicroJ: "battery_harvested_uj",
}

// String returns the counter's oprofile-style name.
func (c Counter) String() string {
	if c >= 0 && c < numCounters {
		return counterNames[c]
	}
	return fmt.Sprintf("counter(%d)", int(c))
}

// Counters lists every counter in registry (dump) order.
func Counters() []Counter {
	out := make([]Counter, numCounters)
	for i := range out {
		out[i] = Counter(i)
	}
	return out
}

// Span is one completed routine or phase on the virtual timeline. Track
// names the component row it renders on ("cpu", "mcu", "link", "radio:mcu",
// "hub", "app:A2"); Name is the slice label (a routine name, "window 3",
// "reboot", ...).
type Span struct {
	Track string
	Name  string
	Start sim.Time
	End   sim.Time
}

// FlightEvent is one entry of the bounded post-mortem ring.
type FlightEvent struct {
	At     sim.Time `json:"at_ns"`
	Kind   string   `json:"kind"`
	Detail string   `json:"detail,omitempty"`
}

// maxSpans bounds span memory on pathological runs; spans past the cap are
// counted, not stored, and WriteChromeTrace reports the truncation.
const maxSpans = 1 << 20

// defaultFlightLen is the flight ring's default capacity.
const defaultFlightLen = 256

// Recorder is one run's observability state: the counter registry, the span
// buffer, and the flight ring. A nil *Recorder is the disabled layer —
// every method no-ops — and is the value production hot paths see.
//
// A Recorder is bound to one simulation's virtual clock by hub.Run; it is
// not safe for concurrent use (the simulator is single-threaded by design).
type Recorder struct {
	clock *sim.Scheduler

	counters [numCounters]uint64

	tracing      bool
	spans        []Span
	spansDropped uint64

	flight     []FlightEvent
	flightNext int
	flightLen  int
}

// NewRecorder returns an enabled recorder with counters and the flight ring
// armed; call EnableTracing to also record spans.
func NewRecorder() *Recorder {
	return &Recorder{flightLen: defaultFlightLen}
}

// EnableTracing turns on the span tracer (off by default: spans cost memory
// proportional to run length, counters do not).
func (r *Recorder) EnableTracing() {
	if r == nil {
		return
	}
	r.tracing = true
	if r.spans == nil {
		r.spans = make([]Span, 0, 1024)
	}
}

// SetFlightLen resizes the flight ring (entries already recorded are
// dropped); n < 1 disables the ring.
func (r *Recorder) SetFlightLen(n int) {
	if r == nil {
		return
	}
	r.flight = nil
	r.flightNext = 0
	r.flightLen = n
}

// Enabled reports whether the recorder is live. Call sites that must format
// detail strings guard on this so the disabled path allocates nothing.
func (r *Recorder) Enabled() bool { return r != nil }

// Tracing reports whether the span tracer is armed.
func (r *Recorder) Tracing() bool { return r != nil && r.tracing }

// Bind attaches the recorder to a run's virtual clock; hub.Run calls it so
// flight events carry virtual timestamps. Binding a nil recorder no-ops.
func (r *Recorder) Bind(clock *sim.Scheduler) {
	if r == nil {
		return
	}
	r.clock = clock
}

// now is the bound clock's instant (0 before Bind).
func (r *Recorder) now() sim.Time {
	if r.clock == nil {
		return 0
	}
	return r.clock.Now()
}

// Inc adds one to counter c.
func (r *Recorder) Inc(c Counter) {
	if r == nil {
		return
	}
	r.counters[c]++
}

// Add adds n to counter c.
func (r *Recorder) Add(c Counter, n uint64) {
	if r == nil {
		return
	}
	r.counters[c] += n
}

// Store sets counter c to v — used when a component keeps its own running
// total (the event kernel, CPU residency) and the hub copies it in at
// collect time.
func (r *Recorder) Store(c Counter, v uint64) {
	if r == nil {
		return
	}
	r.counters[c] = v
}

// SetMax raises counter c to v if v is larger (high-water marks).
func (r *Recorder) SetMax(c Counter, v uint64) {
	if r == nil {
		return
	}
	if v > r.counters[c] {
		r.counters[c] = v
	}
}

// Get reads counter c (0 on a nil recorder).
func (r *Recorder) Get(c Counter) uint64 {
	if r == nil {
		return 0
	}
	return r.counters[c]
}

// Span records one completed span. Only stored while tracing; the nil /
// non-tracing paths cost one branch. Callers pass static or pre-existing
// strings so the disabled path performs no formatting.
func (r *Recorder) Span(track, name string, start, end sim.Time) {
	if r == nil || !r.tracing {
		return
	}
	if len(r.spans) >= maxSpans {
		r.spansDropped++
		return
	}
	r.spans = append(r.spans, Span{Track: track, Name: name, Start: start, End: end})
}

// Spans returns the recorded spans (the live slice; callers must not
// mutate). SpansDropped reports how many fell past the cap.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	return r.spans
}

// SpansDropped reports spans discarded at the maxSpans cap.
func (r *Recorder) SpansDropped() uint64 {
	if r == nil {
		return 0
	}
	return r.spansDropped
}

// Note appends one event to the flight ring at the current virtual time.
// The detail string is formatted by the caller, guarded on Enabled, so the
// disabled layer never pays for it.
func (r *Recorder) Note(kind, detail string) {
	if r == nil || r.flightLen < 1 {
		return
	}
	ev := FlightEvent{At: r.now(), Kind: kind, Detail: detail}
	if len(r.flight) < r.flightLen {
		r.flight = append(r.flight, ev)
		return
	}
	r.flight[r.flightNext] = ev
	r.flightNext = (r.flightNext + 1) % r.flightLen
}

// FlightEvents returns the ring's contents oldest-first.
func (r *Recorder) FlightEvents() []FlightEvent {
	if r == nil || len(r.flight) == 0 {
		return nil
	}
	out := make([]FlightEvent, 0, len(r.flight))
	out = append(out, r.flight[r.flightNext:]...)
	out = append(out, r.flight[:r.flightNext]...)
	return out
}

// WriteCounters dumps the registry as aligned "name value" lines in enum
// order — the -counters output and the golden-test surface.
func WriteCounters(w io.Writer, r *Recorder) error {
	for _, c := range Counters() {
		if _, err := fmt.Fprintf(w, "%-28s %d\n", c.String(), r.Get(c)); err != nil {
			return err
		}
	}
	return nil
}

// WriteFlight dumps the flight ring as JSON lines, oldest first — the
// post-mortem record to read after an invariant failure.
func WriteFlight(w io.Writer, r *Recorder) error {
	for _, ev := range r.FlightEvents() {
		if _, err := fmt.Fprintf(w, `{"at_ns":%d,"kind":%q,"detail":%q}`+"\n", int64(ev.At), ev.Kind, ev.Detail); err != nil {
			return err
		}
	}
	return nil
}
