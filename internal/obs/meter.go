// The in-situ measurement model: what it costs to *take* the measurements
// the rest of this package records. The Recorder is the paper's idealized
// external instrument — a Monsoon monitor on the power rail plus an oprofile
// kernel whose overhead the authors subtract out — and the hub proves it
// never perturbs a run. Real deployments have no such luxury: "Eco: In Situ
// Power Measurement on Low-end IoT Systems" and "Evaluating Task Execution
// Performance Under Energy Measurement Overhead" both show on-device meters
// spending CPU cycles, RAM, and energy of the very board they observe. A
// MeterModel prices that observer: the hub schedules its samples as real DES
// events on the MCU, so measurement contends with app work and the observer
// effect becomes a first-class, per-scheme result (see hub/meter.go and the
// abl-observer ablation).
package obs

import (
	"fmt"
	"strings"
	"time"
)

// MCUClockHz is the observed board's core clock (ESP8266: 80 MHz); it
// converts a meter's per-sample cycle budget into MCU busy time, so
// meter_cpu_cycles counts literal cycles of the paper's testbed part.
const MCUClockHz = 80_000_000

// MeterModel describes one in-situ measurement instrument. The zero value is
// the External preset: a free bench instrument outside the device's power
// envelope — today's asymptote, byte-identical to running unobserved. Every
// field is serializable so fleet sweeps and the optimizer can sweep sampling
// rates like any other scenario axis.
type MeterModel struct {
	// RateHz is the sampling rate in Hz of *virtual* time (the instrument
	// samples the simulated timeline, not the host clock). 0 disarms the
	// meter entirely.
	RateHz float64 `json:"rateHz,omitempty"`
	// PerSampleCycles is the MCU driver work per sample — ADC setup, the
	// conversion wait, fixed-point scaling — in cycles at MCUClockHz. The
	// work executes on the MCU's FIFO core, so it delays app work behind it.
	PerSampleCycles int64 `json:"perSampleCycles,omitempty"`
	// PerSampleRAM is the bytes each buffered sample record holds against
	// the MCU's usable RAM until the next flush (visible in the RAM
	// high-water mark, and gone when a crash wipes the RAM).
	PerSampleRAM int `json:"perSampleRam,omitempty"`
	// SenseJ is the analog front-end energy per sample (shunt amplifier +
	// ADC conversion), deposited on the dedicated "meter" energy track.
	SenseJ float64 `json:"senseJoules,omitempty"`
	// FlushEvery flushes the sample buffer after this many samples (0 =
	// never flush: records are kept resident, costing RAM only).
	FlushEvery int `json:"flushEvery,omitempty"`
	// FlushCycles is the MCU work per flush — the UART/flash driver pushing
	// the buffered records out — in cycles at MCUClockHz.
	FlushCycles int64 `json:"flushCycles,omitempty"`
	// FlushBytes is the persisted record size per sample; a flush writes
	// FlushBytes × buffered samples (counted in meter_bytes).
	FlushBytes int `json:"flushBytes,omitempty"`
	// HookCycles arms event-triggered attribution, the second half of a real
	// energy profiler: besides the timed samples, the instrument snoops the
	// MCU's interrupt line and logs one record per raised interrupt (reading
	// the ADC, timestamping, classifying the running task, appending to the
	// buffer) at this cycle cost. 0 = timer-only sampling. This is where the
	// probe effect becomes workload-shaped: the hook's cost scales with the
	// host's event rate, and per-sample schemes raise orders of magnitude
	// more interrupts than batched ones.
	HookCycles int64 `json:"hookCycles,omitempty"`
	// DutyOn/DutyOff duty-cycle the instrument Eco-style: sample for DutyOn
	// attempts (timed ticks and event hooks alike), power down for DutyOff,
	// repeat. Both zero = continuous.
	DutyOn  int `json:"dutyOn,omitempty"`
	DutyOff int `json:"dutyOff,omitempty"`
}

// External is the zero-cost bench instrument outside the device — the
// configuration every energy number in the paper (and this repo's golden
// corpus) assumes. It never arms, so runs under it are byte-identical to
// unobserved runs.
func External() MeterModel { return MeterModel{} }

// Insitu is a continuously sampling on-device meter calibrated after the
// shunt-resistor + ADC instruments of the measurement-overhead literature:
// 1600 cycles (20 µs at 80 MHz) of driver work and 2 µJ of conversion energy
// per timed sample, 8-byte records buffered in MCU RAM, flushed to local
// flash every 64 samples at 40k cycles (0.5 ms) per flush; plus per-event
// attribution at 8000 cycles (100 µs) per raised interrupt — the oprofile
// half of the rig, which reads the ADC and classifies the interrupting task
// so energy can be attributed per app.
func Insitu(rateHz float64) MeterModel {
	return MeterModel{
		RateHz:          rateHz,
		PerSampleCycles: 1600,
		PerSampleRAM:    8,
		SenseJ:          2e-6,
		FlushEvery:      64,
		FlushCycles:     40_000,
		FlushBytes:      8,
		HookCycles:      8000,
	}
}

// Eco is Insitu duty-cycled 1-in-4 — sample one tick, power down for three —
// the Eco paper's low-duty operating point: the same instrument at a quarter
// of the samples, a quarter of the overhead, and 4× the aliasing.
func Eco(rateHz float64) MeterModel {
	m := Insitu(rateHz)
	m.DutyOn, m.DutyOff = 1, 3
	return m
}

// Preset resolves a CLI preset name ("external", "insitu", "eco") at the
// given sampling rate. External ignores the rate: a bench instrument costs
// the device nothing at any rate.
func Preset(name string, rateHz float64) (MeterModel, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "external":
		m := External()
		m.RateHz = rateHz
		return m, nil
	case "insitu":
		return Insitu(rateHz), nil
	case "eco":
		return Eco(rateHz), nil
	}
	return MeterModel{}, fmt.Errorf("obs: unknown meter preset %q (want external, insitu, or eco)", name)
}

// Armed reports whether the model actually observes: a positive sampling
// rate AND some nonzero cost. A disarmed meter is fully inert — the hub
// schedules no events and registers no track for it — which is what makes
// rate→0 (and External at any rate) reproduce unobserved runs byte for byte,
// counters included.
func (m MeterModel) Armed() bool {
	if m.RateHz <= 0 {
		return false
	}
	perSample := m.PerSampleCycles > 0 || m.PerSampleRAM > 0 || m.SenseJ > 0
	flush := m.FlushEvery > 0 && (m.FlushCycles > 0 || m.FlushBytes > 0)
	return perSample || flush || m.HookCycles > 0
}

// Validate rejects physically meaningless models.
func (m MeterModel) Validate() error {
	if m.RateHz < 0 {
		return fmt.Errorf("obs: meter rate %g Hz", m.RateHz)
	}
	if m.RateHz > 1e8 {
		return fmt.Errorf("obs: meter rate %g Hz above the %d Hz clock", m.RateHz, MCUClockHz)
	}
	if m.PerSampleCycles < 0 || m.FlushCycles < 0 || m.HookCycles < 0 {
		return fmt.Errorf("obs: negative meter cycle budget")
	}
	if m.PerSampleRAM < 0 || m.FlushBytes < 0 {
		return fmt.Errorf("obs: negative meter byte budget")
	}
	if m.SenseJ < 0 {
		return fmt.Errorf("obs: negative meter sense energy")
	}
	if m.FlushEvery < 0 {
		return fmt.Errorf("obs: meter FlushEvery %d", m.FlushEvery)
	}
	if m.DutyOn < 0 || m.DutyOff < 0 {
		return fmt.Errorf("obs: negative meter duty phase")
	}
	if m.DutyOn == 0 && m.DutyOff > 0 {
		return fmt.Errorf("obs: meter duty cycle %d/%d never samples", m.DutyOn, m.DutyOff)
	}
	return nil
}

// Period is the virtual-time sampling interval (0 when disarmed by rate).
func (m MeterModel) Period() time.Duration {
	if m.RateHz <= 0 {
		return 0
	}
	return time.Duration(float64(time.Second) / m.RateHz)
}

// PerSampleTime converts the per-sample cycle budget into MCU busy time.
func (m MeterModel) PerSampleTime() time.Duration { return cyclesToTime(m.PerSampleCycles) }

// FlushTime converts the per-flush cycle budget into MCU busy time.
func (m MeterModel) FlushTime() time.Duration { return cyclesToTime(m.FlushCycles) }

// HookTime converts the per-event attribution budget into MCU busy time.
func (m MeterModel) HookTime() time.Duration { return cyclesToTime(m.HookCycles) }

func cyclesToTime(c int64) time.Duration {
	return time.Duration(c * int64(time.Second) / MCUClockHz)
}
