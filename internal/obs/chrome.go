// Chrome trace-event export: the span tracer's Perfetto-loadable output.
// The format is the Trace Event Format's JSON-object flavor — an object with
// a "traceEvents" array of complete ("X") events plus thread-name metadata
// ("M") events — which chrome://tracing and ui.perfetto.dev both ingest.
// Timestamps are virtual microseconds (the format's native unit); the
// emitted bytes are a pure function of the recorded spans, so traces diff
// cleanly and golden files stay stable.

package obs

import (
	"encoding/json"
	"io"
)

// TraceEvent is one entry of the trace-event JSON. Exported so tests (and
// downstream tools) can round-trip emitted traces through encoding/json.
type TraceEvent struct {
	Name string `json:"name"`
	// Ph is the event phase: "X" for complete spans, "M" for metadata.
	Ph  string `json:"ph"`
	Pid int    `json:"pid"`
	Tid int    `json:"tid"`
	// Ts and Dur are virtual microseconds (fractional: the simulator is
	// nanosecond-resolution).
	Ts  float64 `json:"ts"`
	Dur float64 `json:"dur,omitempty"`
	Cat string  `json:"cat,omitempty"`
	// Args carries metadata payloads (the thread name for "M" events).
	Args map[string]string `json:"args,omitempty"`
}

// TraceDocument is the top-level trace-event JSON object.
type TraceDocument struct {
	TraceEvents []TraceEvent `json:"traceEvents"`
	// DisplayTimeUnit hints the viewer's ruler; virtual runs are ms-scale.
	DisplayTimeUnit string `json:"displayTimeUnit,omitempty"`
	// SpansDropped reports truncation at the recorder's span cap — absent
	// from healthy traces.
	SpansDropped uint64 `json:"spansDropped,omitempty"`
}

// micros converts virtual nanoseconds to the format's microsecond unit.
func micros(t int64) float64 { return float64(t) / 1e3 }

// BuildTrace assembles the trace document from a recorder's spans: one tid
// per distinct track in first-seen order, thread-name metadata first, then
// every span as a complete event in recorded order.
func BuildTrace(r *Recorder) *TraceDocument {
	spans := r.Spans()
	doc := &TraceDocument{
		TraceEvents:     make([]TraceEvent, 0, len(spans)+8),
		DisplayTimeUnit: "ms",
		SpansDropped:    r.SpansDropped(),
	}
	tids := make(map[string]int)
	order := make([]string, 0, 8)
	for _, s := range spans {
		if _, ok := tids[s.Track]; !ok {
			tids[s.Track] = len(order) + 1
			order = append(order, s.Track)
		}
	}
	for _, track := range order {
		doc.TraceEvents = append(doc.TraceEvents, TraceEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: tids[track],
			Args: map[string]string{"name": track},
		})
	}
	for _, s := range spans {
		doc.TraceEvents = append(doc.TraceEvents, TraceEvent{
			Name: s.Name, Ph: "X", Pid: 1, Tid: tids[s.Track],
			Ts: micros(int64(s.Start)), Dur: micros(int64(s.End - s.Start)),
			Cat: "sim",
		})
	}
	return doc
}

// WriteChromeTrace emits the recorder's spans as trace-event JSON. The
// output is deterministic byte-for-byte for a deterministic run.
func WriteChromeTrace(w io.Writer, r *Recorder) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(BuildTrace(r))
}
