package obs

import (
	"strings"
	"testing"
	"time"
)

func TestMeterPresets(t *testing.T) {
	ext, err := Preset("external", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if ext.Armed() {
		t.Errorf("External at 1 kHz arms: a bench instrument must stay free at any rate")
	}
	ins, err := Preset("InSitu", 250)
	if err != nil {
		t.Fatal(err)
	}
	if !ins.Armed() || ins.RateHz != 250 || ins != Insitu(250) {
		t.Errorf("insitu preset mismatch: %+v", ins)
	}
	eco, err := Preset("eco", 250)
	if err != nil {
		t.Fatal(err)
	}
	if eco.DutyOn != 1 || eco.DutyOff != 3 {
		t.Errorf("eco duty cycle = %d/%d, want 1/3", eco.DutyOn, eco.DutyOff)
	}
	if _, err := Preset("monsoon", 1); err == nil || !strings.Contains(err.Error(), "monsoon") {
		t.Errorf("unknown preset error = %v", err)
	}
}

func TestMeterArmed(t *testing.T) {
	cases := []struct {
		name string
		m    MeterModel
		want bool
	}{
		{"zero", MeterModel{}, false},
		{"rate only", MeterModel{RateHz: 100}, false},
		{"cost only", MeterModel{PerSampleCycles: 100}, false},
		{"rate+cycles", MeterModel{RateHz: 100, PerSampleCycles: 100}, true},
		{"rate+ram", MeterModel{RateHz: 100, PerSampleRAM: 8}, true},
		{"rate+sense", MeterModel{RateHz: 100, SenseJ: 1e-6}, true},
		{"rate+hook", MeterModel{RateHz: 100, HookCycles: 100}, true},
		{"rate+flush", MeterModel{RateHz: 100, FlushEvery: 64, FlushBytes: 8}, true},
		{"flush never fires", MeterModel{RateHz: 100, FlushEvery: 64}, false},
		{"insitu", Insitu(10), true},
		{"eco", Eco(10), true},
	}
	for _, tc := range cases {
		if got := tc.m.Armed(); got != tc.want {
			t.Errorf("%s: Armed() = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestMeterValidate(t *testing.T) {
	good := []MeterModel{{}, External(), Insitu(1000), Eco(1), {RateHz: 1e8}}
	for _, m := range good {
		if err := m.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v", m, err)
		}
	}
	bad := []MeterModel{
		{RateHz: -1},
		{RateHz: 2e8},
		{PerSampleCycles: -1},
		{FlushCycles: -1},
		{HookCycles: -1},
		{PerSampleRAM: -1},
		{FlushBytes: -1},
		{SenseJ: -1},
		{FlushEvery: -1},
		{DutyOn: -1},
		{DutyOff: 3}, // off without on never samples
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted an invalid model", m)
		}
	}
}

func TestMeterTimes(t *testing.T) {
	m := MeterModel{RateHz: 1000, PerSampleCycles: 1600, FlushCycles: 40_000, HookCycles: 8000}
	if got := m.Period(); got != time.Millisecond {
		t.Errorf("Period = %v, want 1ms", got)
	}
	if got := m.PerSampleTime(); got != 20*time.Microsecond {
		t.Errorf("PerSampleTime = %v, want 20µs (1600 cycles at 80 MHz)", got)
	}
	if got := m.FlushTime(); got != 500*time.Microsecond {
		t.Errorf("FlushTime = %v, want 500µs", got)
	}
	if got := m.HookTime(); got != 100*time.Microsecond {
		t.Errorf("HookTime = %v, want 100µs", got)
	}
	if got := (MeterModel{}).Period(); got != 0 {
		t.Errorf("disarmed Period = %v, want 0", got)
	}
}

func TestGaugesMeterObserved(t *testing.T) {
	g := NewGauges()
	g.MeterObserved(0, 0, 0, 0, 0) // all-zero fold-in is a no-op
	g.MeterObserved(100, 2, 160_000, 1, 512)
	g.MeterObserved(50, 0, 80_000, 1, 256)
	s := g.Read()
	if s.MeterSamples != 150 || s.MeterDropped != 2 || s.MeterCycles != 240_000 ||
		s.MeterFlushes != 2 || s.MeterBytes != 768 {
		t.Errorf("meter snapshot = %+v", s)
	}
	text := g.PrometheusText()
	for _, want := range []string{
		"iothub_meter_samples_total 150",
		"iothub_meter_dropped_samples_total 2",
		"iothub_meter_cpu_cycles_total 240000",
		"iothub_meter_flushes_total 2",
		"iothub_meter_bytes_total 768",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Prometheus text missing %q", want)
		}
	}
	var nilG *Gauges
	nilG.MeterObserved(1, 1, 1, 1, 1) // nil-safe like every other gauge
}
