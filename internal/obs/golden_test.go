package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestChromeTraceGolden pins the exporter's exact bytes for a fixed span
// set: the trace-event output is part of the tool contract (CI validates
// dumped traces against it, and committed traces must diff cleanly), so any
// byte change here is a deliberate format change, re-blessed with -update.
func TestChromeTraceGolden(t *testing.T) {
	r := NewRecorder()
	r.EnableTracing()
	r.Span("cpu", "DataCollection", 0, 1500)
	r.Span("mcu", "Interrupt", 1500, 1548)
	r.Span("cpu", "DataTransfer", 1548, 12000)
	r.Span("link", "frame", 2000, 9000)
	r.Span("hub", "Baseline", 0, 12000)

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, r); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden_trace.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/obs -run TestChromeTraceGolden -update` to bless)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace bytes diverge from %s:\ngot:\n%s\nwant:\n%s", golden, buf.Bytes(), want)
	}
}
