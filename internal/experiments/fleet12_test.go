package experiments

import (
	"testing"

	"iothub/internal/fleet"
)

func TestFleetFig12SpecShape(t *testing.T) {
	spec := FleetFig12Spec()
	scens, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// 1 single-app combo x 2 schemes + 2 multi-app combos x 4 schemes, each
	// at 3 rates.
	if len(scens) != 30 {
		t.Fatalf("spec expands to %d scenarios, want 30", len(scens))
	}
	tags := map[string]bool{}
	for _, s := range scens {
		if s.Tag == "" {
			t.Fatalf("untagged scenario %s", s.Label())
		}
		if tags[s.Tag] {
			t.Fatalf("duplicate tag %s", s.Tag)
		}
		tags[s.Tag] = true
		if !s.SkipAppCompute {
			t.Errorf("%s runs real computations; the sweep is energy-only", s.Tag)
		}
	}
	if !tags["A11+A6|BCOM|q0.5"] || !tags["A11|Batching|q2"] {
		t.Errorf("expected tags missing from %v", tags)
	}
}

func TestAblFleet12SavingsVsRate(t *testing.T) {
	if testing.Short() {
		t.Skip("30-scenario sweep is slow for -short")
	}
	res := mustRun(t, AblFleet12)
	// At the paper-default rate the sweep must reproduce Fig. 12's ordering:
	// batching saves a little on A11 alone, BCOM saves more on the combos.
	if v := res.Values["Batching:A11:q1"]; v <= 0 || v > 0.3 {
		t.Errorf("A11 batching saving = %.3f, want small positive (paper: ~5%%)", v)
	}
	for _, combo := range []string{"A11+A6", "A11+A6+A1"} {
		if v := res.Values["BCOM:"+combo+":q1"]; v <= 0 {
			t.Errorf("%s BCOM saving = %.3f, want positive (paper: ~9-10%%)", combo, v)
		}
		if res.Values["BCOM:"+combo+":q1"] < res.Values["Batching:A11:q1"]-0.05 {
			t.Errorf("%s BCOM (%.3f) should not trail A11 batching (%.3f) by much",
				combo, res.Values["BCOM:"+combo+":q1"], res.Values["Batching:A11:q1"])
		}
	}
	// Baseline energy grows with the sampling rate for every combo.
	for _, combo := range []string{"A11", "A11+A6", "A11+A6+A1"} {
		lo := res.Values["base:"+combo+":q0.5"]
		mid := res.Values["base:"+combo+":q1"]
		hi := res.Values["base:"+combo+":q2"]
		if !(lo < mid && mid < hi) {
			t.Errorf("%s baseline energy not increasing with rate: %.4f, %.4f, %.4f", combo, lo, mid, hi)
		}
	}
	// The sweep is a fleet job: running it through the engine twice (any
	// worker count) yields identical aggregates.
	a, err := fleet.Run(FleetFig12Spec(), fleet.Options{Workers: 1, MaxScenarios: 6})
	if err != nil {
		t.Fatal(err)
	}
	b, err := fleet.Run(FleetFig12Spec(), fleet.Options{Workers: 3, MaxScenarios: 6})
	if err != nil {
		t.Fatal(err)
	}
	if a.Agg.Fingerprint() != b.Agg.Fingerprint() {
		t.Error("fleet12 prefix aggregates diverge across worker counts")
	}
}
