// The harvest ablation: what happens to the scheme comparison when the hub
// stops being mains-powered? Every paper figure assumes an infinite energy
// budget — schemes are ranked by joules consumed. AblHarvest reruns the
// golden-corpus pairings on a small battery fed by a deterministic harvest
// trace (internal/power) and ranks schemes by what a deployment actually
// feels: survival time. Hungry schemes hit the brownout wall mid-run and
// drop samples while the board is dark; frugal ones ride the harvest income
// to the horizon with charge to spare.
package experiments

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"iothub/internal/apps"
	"iothub/internal/core"
	"iothub/internal/fleet"
	"iothub/internal/hub"
	"iothub/internal/power"
	"iothub/internal/report"
)

// harvestSupply is the shared power envelope every scheme runs under: a coin
// cell sized between the frugal and the hungry schemes' appetites (over three
// windows COM draws ~1.6 J and BCOM ~16.5 J, so a 5.4 J usable pack splits
// the field), topped up by the office harvest preset. Derate is pinned to 1
// so the usable-joules number in the table is exactly capacity × voltage.
func harvestSupply() (power.Supply, error) {
	office, err := power.Preset("office")
	if err != nil {
		return power.Supply{}, err
	}
	return power.Supply{
		Battery: power.Battery{CapacityMAh: 0.5, Volts: 3, DerateFraction: 1},
		Harvest: office,
	}, nil
}

// runPowered executes one golden-corpus pairing on a supply, planning the
// BCOM partition when the scheme needs one (the battery-armed sibling of
// runObserved).
func runPowered(scheme hub.Scheme, ids []apps.ID, sup *power.Supply) (*hub.RunResult, error) {
	list, err := newApps(ids...)
	if err != nil {
		return nil, err
	}
	cfg := hub.Config{
		Apps: list, Scheme: scheme, Windows: Windows,
		SkipAppCompute: true, Power: sup,
	}
	if scheme == hub.BCOM {
		plan, err := core.PlanBCOM(list, hub.DefaultParams())
		if err != nil {
			return nil, err
		}
		cfg.Assign = plan.Assign
	}
	return hub.Run(cfg)
}

// AblHarvest ranks the golden-corpus schemes by survival time on one shared
// battery + harvest trace. Four properties are enforced, not just printed
// (the make harvest-smoke gate):
//
//  1. Contrast: at this calibration at least one scheme browns out before
//     the horizon and at least one survives to it — the supply genuinely
//     separates the field instead of starving or sparing everyone.
//  2. Consistency: a survivor's survival time equals the horizon and it
//     records zero brownouts; a brownout scheme's survival falls short of
//     the horizon.
//  3. Replay: every pairing run twice yields byte-identical results —
//     brownout, recharge, and recollection are deterministic physics.
//  4. Worker independence: the same six scenarios pushed through the fleet
//     engine produce byte-identical per-scenario records at parallelism 1
//     and 4 — survival metrics aggregate like any other metric.
func AblHarvest() (*Result, error) {
	sup, err := harvestSupply()
	if err != nil {
		return nil, err
	}
	usable, err := sup.Battery.UsableJoules()
	if err != nil {
		return nil, err
	}

	type outcome struct {
		key string
		res *hub.RunResult
	}
	var outcomes []outcome
	for _, sc := range observerScenarios() {
		res, err := runPowered(sc.scheme, sc.ids, &sup)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sc.key, err)
		}
		// Property 3: the supply ledger is physics, not noise — an identical
		// rerun reproduces every brownout and recollection byte for byte.
		again, err := runPowered(sc.scheme, sc.ids, &sup)
		if err != nil {
			return nil, fmt.Errorf("%s rerun: %w", sc.key, err)
		}
		if err := sameRun(res, again); err != nil {
			return nil, fmt.Errorf("%s: battery-armed rerun diverged: %w", sc.key, err)
		}
		outcomes = append(outcomes, outcome{sc.key, res})
	}

	// Properties 1 and 2: the calibration separates the field, and the
	// survival numbers mean what they claim.
	brownouts, survivors := 0, 0
	for _, o := range outcomes {
		r := o.res
		horizon := r.Window * time.Duration(Windows)
		if r.Brownouts > 0 {
			brownouts++
			if r.BatterySurvival >= horizon {
				return nil, fmt.Errorf("%s: browned out yet survival %v >= horizon %v",
					o.key, r.BatterySurvival, horizon)
			}
		} else {
			survivors++
			if r.BatterySurvival != horizon {
				return nil, fmt.Errorf("%s: no brownout yet survival %v != horizon %v",
					o.key, r.BatterySurvival, horizon)
			}
			if r.BrownoutTime != 0 {
				return nil, fmt.Errorf("%s: no brownout yet %v of downtime", o.key, r.BrownoutTime)
			}
		}
	}
	if brownouts == 0 || survivors == 0 {
		return nil, fmt.Errorf("harvest calibration lost its contrast: %d brownouts, %d survivors (want >= 1 of each)",
			brownouts, survivors)
	}

	// Property 4: survival ranks identically for any worker count. The six
	// pairings run through the fleet engine at parallelism 1 and 4; records
	// are compared byte for byte (encoding/json sorts the metric maps).
	var scens []hub.Scenario
	for _, sc := range observerScenarios() {
		scens = append(scens, hub.Scenario{
			Apps: sc.ids, Scheme: sc.scheme, Windows: Windows,
			SkipAppCompute: true, Power: &sup, Tag: sc.key,
			Seed: fleet.ScenarioSeed(Seed, len(scens)),
		})
	}
	serial, err := fleet.RunRange(scens, 0, len(scens), 1)
	if err != nil {
		return nil, err
	}
	wide, err := fleet.RunRange(scens, 0, len(scens), 4)
	if err != nil {
		return nil, err
	}
	js, _ := json.Marshal(serial)
	jw, _ := json.Marshal(wide)
	if string(js) != string(jw) {
		return nil, fmt.Errorf("fleet records differ between 1 and 4 workers:\n  1: %.300s\n  4: %.300s", js, jw)
	}
	for _, d := range serial {
		if d.Err != "" {
			return nil, fmt.Errorf("fleet scenario %s failed: %s", d.Label, d.Err)
		}
	}

	// Rank by survival (longest first), breaking ties by the charge left in
	// the pack, then by name so the table is a total order.
	sort.SliceStable(outcomes, func(i, j int) bool {
		a, b := outcomes[i].res, outcomes[j].res
		if a.BatterySurvival != b.BatterySurvival {
			return a.BatterySurvival > b.BatterySurvival
		}
		if a.BatterySoCJ != b.BatterySoCJ {
			return a.BatterySoCJ > b.BatterySoCJ
		}
		return outcomes[i].key < outcomes[j].key
	})

	t := &report.Table{
		Title: fmt.Sprintf("Ablation: scheme survival on a %.2f J battery + office harvest (%d windows)",
			usable, Windows),
		Header: []string{"rank", "scheme", "survival", "brownouts", "downtime", "final SoC", "harvested", "delivered"},
		Notes: []string{
			"survival = time to first brownout, or the full horizon for schemes that never brown out;",
			"the energy ranking (joules) and the survival ranking disagree exactly where brownout downtime",
			"costs delivered samples — a battery deployment optimizes for the latter",
		},
	}
	values := map[string]float64{}
	for i, o := range outcomes {
		r := o.res
		soc := 0.0
		if r.BatteryCapacityJ > 0 {
			soc = r.BatterySoCJ / r.BatteryCapacityJ
		}
		delivered := float64(r.DeliveredSamples) / float64(r.ScheduledSamples)
		values["survival:"+o.key] = r.BatterySurvival.Seconds()
		values["brownouts:"+o.key] = float64(r.Brownouts)
		values["soc:"+o.key] = soc
		values["harvested:"+o.key] = r.BatteryHarvestJ
		values["delivered:"+o.key] = delivered
		t.AddRow(fmt.Sprintf("%d", i+1), o.key,
			r.BatterySurvival.String(),
			report.Cell(r.Brownouts),
			r.BrownoutTime.String(),
			report.Percent(soc),
			report.Cell(r.BatteryHarvestJ),
			report.Percent(delivered))
	}
	values["usableJ"] = usable
	values["brownoutSchemes"] = float64(brownouts)
	values["survivorSchemes"] = float64(survivors)
	return &Result{ID: "abl-harvest", Title: t.Title, Table: t, Values: values}, nil
}
