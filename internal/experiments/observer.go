// The observer-effect ablation: what does in-situ measurement do to the very
// numbers it measures? Every paper figure in this repo assumes the External
// meter — a bench instrument outside the device's power envelope. AblObserver
// re-runs the scheme comparison with an on-device instrument (obs.MeterModel)
// armed at increasing sampling rates and reports how much each scheme's
// energy and latency inflate under observation.
package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"

	"iothub/internal/apps"
	"iothub/internal/core"
	"iothub/internal/hub"
	"iothub/internal/obs"
	"iothub/internal/report"
)

// observerRates are the in-situ sampling rates the ablation sweeps (Hz of
// virtual time). 1 kHz matches the Eco paper's upper operating point.
var observerRates = []float64{10, 100, 1000}

// observerScenarios mirrors the golden corpus's scheme/app pairings, so the
// ablation observes exactly the workloads the byte-pinned corpus runs.
func observerScenarios() []struct {
	key    string
	scheme hub.Scheme
	ids    []apps.ID
} {
	return []struct {
		key    string
		scheme hub.Scheme
		ids    []apps.ID
	}{
		{"baseline", hub.Baseline, []apps.ID{apps.StepCounter}},
		{"batching", hub.Batching, []apps.ID{apps.StepCounter}},
		{"com", hub.COM, []apps.ID{apps.CoAPServer}},
		{"bcom", hub.BCOM, []apps.ID{apps.SpeechToTxt, apps.DropboxMgr}},
		{"beam", hub.BEAM, []apps.ID{apps.StepCounter, apps.Earthquake}},
		{"ecom", hub.ECOM, []apps.ID{apps.SpeechToTxt, apps.CoAPServer}},
	}
}

// runObserved executes one scheme/app pairing under the given meter (nil =
// unobserved), planning the BCOM partition when the scheme needs one.
func runObserved(scheme hub.Scheme, ids []apps.ID, m *obs.MeterModel) (*hub.RunResult, error) {
	list, err := newApps(ids...)
	if err != nil {
		return nil, err
	}
	cfg := hub.Config{
		Apps: list, Scheme: scheme, Windows: Windows,
		SkipAppCompute: true, Meter: m,
	}
	if scheme == hub.BCOM {
		plan, err := core.PlanBCOM(list, hub.DefaultParams())
		if err != nil {
			return nil, err
		}
		cfg.Assign = plan.Assign
	}
	return hub.Run(cfg)
}

// AblObserver quantifies the observer effect per scheme: each golden-corpus
// scheme runs unobserved, then under the Insitu meter at increasing sampling
// rates, and the table reports the energy and busy-latency inflation the
// instrument itself causes. Three properties are enforced, not just printed
// (the make observer-smoke gate):
//
//  1. Asymptote: the External preset (and rate→0) reproduces the unobserved
//     run byte for byte — the instrument's mere existence costs nothing.
//  2. Monotonicity: within a scheme, energy inflation strictly grows with
//     the sampling rate.
//  3. Ordering: per-sample schemes (Baseline, COM) inflate strictly more
//     than Batching at the same rate — the instrument's event-attribution
//     hook fires on every raised interrupt, and per-sample execution raises
//     orders of magnitude more of them than batched execution.
func AblObserver() (*Result, error) {
	t := &report.Table{
		Title:  "Ablation: observer effect of in-situ measurement (Insitu preset)",
		Header: []string{"scheme", "rate", "samples", "dropped", "Δ energy", "Δ busy latency"},
		Notes: []string{
			"Δ columns compare against the same workload with no meter armed (the External asymptote);",
			"timed samples cost every scheme alike, but the attribution hook fires per raised interrupt —",
			"per-sample schemes trigger it per reading, batched schemes only per flush",
		},
	}
	values := map[string]float64{}
	maxRate := observerRates[len(observerRates)-1]
	inflAtMax := map[string]float64{}
	for _, sc := range observerScenarios() {
		base, err := runObserved(sc.scheme, sc.ids, nil)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sc.key, err)
		}

		// Property 1: a bench instrument at any rate is byte-identical to no
		// instrument at all.
		ext := obs.External()
		ext.RateHz = maxRate
		free, err := runObserved(sc.scheme, sc.ids, &ext)
		if err != nil {
			return nil, fmt.Errorf("%s external: %w", sc.key, err)
		}
		if err := sameRun(base, free); err != nil {
			return nil, fmt.Errorf("%s: external meter at %g Hz perturbed the run: %w", sc.key, maxRate, err)
		}

		prev := 0.0
		for i, rate := range observerRates {
			m := obs.Insitu(rate)
			res, err := runObserved(sc.scheme, sc.ids, &m)
			if err != nil {
				return nil, fmt.Errorf("%s @%g Hz: %w", sc.key, rate, err)
			}
			eInfl := res.TotalJoules()/base.TotalJoules() - 1
			lInfl := float64(res.BusyLatency())/float64(base.BusyLatency()) - 1
			// Property 2: more observation costs strictly more energy.
			if i > 0 && eInfl <= prev {
				return nil, fmt.Errorf("%s: energy inflation not monotone: %.4f%% @%g Hz <= %.4f%% @%g Hz",
					sc.key, eInfl*100, rate, prev*100, observerRates[i-1])
			}
			prev = eInfl
			if rate == maxRate {
				inflAtMax[sc.key] = eInfl
			}
			rkey := fmt.Sprintf("%s:%.0fHz", sc.key, rate)
			values["energy:"+rkey] = eInfl
			values["latency:"+rkey] = lInfl
			values["samples:"+rkey] = float64(res.MeterSamples)
			values["dropped:"+rkey] = float64(res.MeterDroppedSamples)
			t.AddRow(sc.key, fmt.Sprintf("%.0f Hz", rate),
				report.Cell(res.MeterSamples), report.Cell(res.MeterDroppedSamples),
				report.Percent(eInfl), report.Percent(lInfl))
		}
	}
	// Property 3: the observer effect is scheme-dependent, and in the
	// direction the contention model predicts.
	for _, per := range []string{"baseline", "com"} {
		if inflAtMax[per] <= inflAtMax["batching"] {
			return nil, fmt.Errorf("observer-effect ordering violated: %s inflates %.4f%% <= batching %.4f%% at %g Hz",
				per, inflAtMax[per]*100, inflAtMax["batching"]*100, maxRate)
		}
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"at %g Hz: baseline +%.2f%%, com +%.2f%% vs batching +%.2f%% — the instrument distorts the very comparison it measures",
		maxRate, inflAtMax["baseline"]*100, inflAtMax["com"]*100, inflAtMax["batching"]*100))
	return &Result{ID: "abl-observer", Title: t.Title, Table: t, Values: values}, nil
}

// sameRun compares two runs' canonical JSON byte for byte (encoding/json
// sorts map keys, so equal marshalings mean equal results).
func sameRun(a, b *hub.RunResult) error {
	ja, err := json.Marshal(a)
	if err != nil {
		return err
	}
	jb, err := json.Marshal(b)
	if err != nil {
		return err
	}
	if !bytes.Equal(ja, jb) {
		return fmt.Errorf("results differ:\n  a: %.200s\n  b: %.200s", ja, jb)
	}
	return nil
}
