// Ablations: parameter sweeps over the design choices DESIGN.md calls out.
// They are not paper figures — they probe *why* the paper's results look the
// way they do and where they stop holding.
package experiments

import (
	"fmt"

	"iothub/internal/apps"
	"iothub/internal/apps/catalog"
	"iothub/internal/energy"
	"iothub/internal/faults"
	"iothub/internal/hub"
	"iothub/internal/report"
	"iothub/internal/sensor"
	"iothub/internal/trace"
)

// Ablations lists the ablation studies (run via cmd/experiments -id abl-*).
func Ablations() []Experiment {
	return []Experiment{
		{ID: "abl-batchram", Title: "Ablation: batching vs MCU RAM", Run: AblBatchRAM},
		{ID: "abl-link", Title: "Ablation: link bandwidth sweep", Run: AblLinkBandwidth},
		{ID: "abl-governor", Title: "Ablation: idle-governor contribution", Run: AblGovernor},
		{ID: "abl-slowdown", Title: "Ablation: MCU slowdown vs COM speedup", Run: AblMCUSlowdown},
		{ID: "abl-dma", Title: "Ablation: DMA link (§IV-F future work)", Run: AblDMA},
		{ID: "abl-faults", Title: "Ablation: sensor read-failure injection", Run: AblFaults},
		{ID: "abl-chaos", Title: "Ablation: hardware fault injection vs energy and QoS", Run: AblChaos},
		{ID: "abl-profile", Title: "Ablation: measured Go implementations vs calibration", Run: AblProfile},
		{ID: "abl-fleet12", Title: "Ablation: Fig. 12 savings vs QoS rate (fleet sweep)", Run: AblFleet12},
		{ID: "abl-observer", Title: "Ablation: observer effect of in-situ measurement", Run: AblObserver},
		{ID: "abl-harvest", Title: "Ablation: scheme survival on battery + harvest power", Run: AblHarvest},
	}
}

// runWith executes a scenario under modified hardware parameters.
func runWith(params hub.Params, scheme hub.Scheme, ids ...apps.ID) (*hub.RunResult, error) {
	list, err := newApps(ids...)
	if err != nil {
		return nil, err
	}
	return hub.Run(hub.Config{
		Apps: list, Scheme: scheme, Windows: Windows, Params: &params,
		SkipAppCompute: true,
	})
}

// AblBatchRAM sweeps the MCU's usable RAM and shows how batching degrades to
// per-chunk flushing as the buffer shrinks (the "limited capacity buffers"
// of the paper's abstract). Workload: M2X (20.5 KB per window).
func AblBatchRAM() (*Result, error) {
	base, err := runWith(hub.DefaultParams(), hub.Baseline, apps.M2X)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:  "Ablation: batching saving vs usable MCU RAM (M2X, 20.5 KB/window)",
		Header: []string{"usable RAM", "flushes/window", "interrupts/window", "saving"},
		Notes: []string{
			"small buffers force early flushes (more interrupts) yet preserve most of the saving:",
			"the CPU still sleeps between flushes — consistent with abl-governor, sleep dominates interrupt reduction",
		},
	}
	values := map[string]float64{}
	for _, kb := range []int{1, 2, 4, 8, 16, 32, 64} {
		params := hub.DefaultParams()
		params.MCU.ReservedBytes = params.MCU.RAMBytes - kb*1024
		res, err := runWith(params, hub.Batching, apps.M2X)
		if err != nil {
			return nil, err
		}
		saving := 1 - res.TotalJoules()/base.TotalJoules()
		key := fmt.Sprintf("saving:%dKB", kb)
		values[key] = saving
		values[fmt.Sprintf("flushes:%dKB", kb)] = float64(res.BatchFlushes) / Windows
		t.AddRow(fmt.Sprintf("%d KB", kb),
			report.Cell(float64(res.BatchFlushes)/Windows),
			report.Cell(float64(res.Interrupts)/Windows),
			report.Percent(saving))
	}
	return &Result{ID: "abl-batchram", Title: t.Title, Table: t, Values: values}, nil
}

// AblLinkBandwidth sweeps the wire bandwidth: a faster link shrinks the data
// transfer routine that both Batching and COM attack, so their advantage
// over Baseline narrows.
func AblLinkBandwidth() (*Result, error) {
	t := &report.Table{
		Title:  "Ablation: scheme savings vs link bandwidth (step counter)",
		Header: []string{"bandwidth", "baseline mJ/win", "batching saving", "COM saving"},
	}
	values := map[string]float64{}
	for _, kbps := range []float64{29, 58, 117, 234, 468, 936} {
		params := hub.DefaultParams()
		params.Link.BytesPerSec = kbps * 1000
		base, err := runWith(params, hub.Baseline, apps.StepCounter)
		if err != nil {
			return nil, err
		}
		bat, err := runWith(params, hub.Batching, apps.StepCounter)
		if err != nil {
			return nil, err
		}
		com, err := runWith(params, hub.COM, apps.StepCounter)
		if err != nil {
			return nil, err
		}
		bs := 1 - bat.TotalJoules()/base.TotalJoules()
		cs := 1 - com.TotalJoules()/base.TotalJoules()
		key := fmt.Sprintf("%.0fKBps", kbps)
		values["batching:"+key] = bs
		values["com:"+key] = cs
		t.AddRow(fmt.Sprintf("%.0f KB/s", kbps),
			report.Cell(perWindow(base)*1000),
			report.Percent(bs), report.Percent(cs))
	}
	return &Result{ID: "abl-link", Title: t.Title, Table: t, Values: values}, nil
}

// AblGovernor isolates where Batching's saving comes from by disabling the
// CPU's ability to sleep (SleepW = WFIW): what remains is purely the
// interrupt/transfer amortization. The paper attributes most of the saving
// to the CPU sleeping longer (§III-A observation 1).
func AblGovernor() (*Result, error) {
	t := &report.Table{
		Title:  "Ablation: batching saving with and without CPU sleep (step counter)",
		Header: []string{"configuration", "batching saving"},
	}
	values := map[string]float64{}
	normal := hub.DefaultParams()
	noSleep := hub.DefaultParams()
	noSleep.CPU.SleepW = noSleep.CPU.WFIW
	noSleep.CPU.DeepSleepW = noSleep.CPU.WFIW
	for _, cfg := range []struct {
		label  string
		params hub.Params
		key    string
	}{
		{"sleep enabled (default)", normal, "withSleep"},
		{"sleep disabled (stall-only)", noSleep, "withoutSleep"},
	} {
		base, err := runWith(cfg.params, hub.Baseline, apps.StepCounter)
		if err != nil {
			return nil, err
		}
		bat, err := runWith(cfg.params, hub.Batching, apps.StepCounter)
		if err != nil {
			return nil, err
		}
		saving := 1 - bat.TotalJoules()/base.TotalJoules()
		values[cfg.key] = saving
		t.AddRow(cfg.label, report.Percent(saving))
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"sleeping contributes %.0f of the %.0f percentage points (§III-A: observation 1 dominates observation 2)",
		(values["withSleep"]-values["withoutSleep"])*100, values["withSleep"]*100))
	return &Result{ID: "abl-governor", Title: t.Title, Table: t, Values: values}, nil
}

// AblMCUSlowdown sweeps the MCU's slowdown factor: as the MCU gets slower,
// COM's speedup shrinks and more apps cross below 1x (the paper's A3/A8
// regime expands).
func AblMCUSlowdown() (*Result, error) {
	t := &report.Table{
		Title:  "Ablation: COM speedup vs MCU slowdown factor",
		Header: []string{"slowdown", "avg speedup", "apps slower than baseline"},
	}
	values := map[string]float64{}
	ids := []apps.ID{
		apps.CoAPServer, apps.StepCounter, apps.ArduinoJSON, apps.M2X,
		apps.DropboxMgr, apps.Earthquake, apps.Heartbeat, apps.Fingerprint,
	}
	for _, slow := range []float64{5, 19, 40, 80, 160} {
		params := hub.DefaultParams()
		params.MCU.BaseSlowdown = slow
		var sum float64
		slower := 0
		for _, id := range ids {
			base, err := runWith(params, hub.Baseline, id)
			if err != nil {
				return nil, err
			}
			com, err := runWith(params, hub.COM, id)
			if err != nil {
				return nil, err
			}
			sp := float64(base.BusyLatency()) / float64(com.BusyLatency())
			sum += sp
			if sp < 1 {
				slower++
			}
		}
		avg := sum / float64(len(ids))
		key := fmt.Sprintf("%.0fx", slow)
		values["avg:"+key] = avg
		values["slower:"+key] = float64(slower)
		t.AddRow(fmt.Sprintf("%.0fx", slow), fmt.Sprintf("%.2fx", avg), report.Cell(slower))
	}
	return &Result{ID: "abl-slowdown", Title: t.Title, Table: t, Values: values}, nil
}

// AblDMA evaluates the paper's §IV-F future-work proposal: a DMA engine on
// the MCU link, so the CPU no longer baby-sits transfers. It targets exactly
// the regime the paper says software schemes fail in — heavy-weight apps.
func AblDMA() (*Result, error) {
	t := &report.Table{
		Title:  "Ablation: DMA link vs software transfers (§IV-F)",
		Header: []string{"scenario", "scheme", "no DMA (mJ/win)", "DMA (mJ/win)", "DMA saving"},
	}
	values := map[string]float64{}
	scenarios := []struct {
		label  string
		scheme hub.Scheme
		ids    []apps.ID
	}{
		{"A2 baseline", hub.Baseline, []apps.ID{apps.StepCounter}},
		{"A11+A6 baseline", hub.Baseline, []apps.ID{apps.SpeechToTxt, apps.DropboxMgr}},
		{"A11+A6 batching", hub.Batching, []apps.ID{apps.SpeechToTxt, apps.DropboxMgr}},
	}
	for _, sc := range scenarios {
		plain, err := runWith(hub.DefaultParams(), sc.scheme, sc.ids...)
		if err != nil {
			return nil, err
		}
		dmaParams := hub.DefaultParams()
		dmaParams.DMA = true
		dma, err := runWith(dmaParams, sc.scheme, sc.ids...)
		if err != nil {
			return nil, err
		}
		saving := 1 - dma.TotalJoules()/plain.TotalJoules()
		key := sc.label
		values[key] = saving
		t.AddRow(sc.label, sc.scheme.String(),
			report.Cell(perWindow(plain)*1000),
			report.Cell(perWindow(dma)*1000),
			report.Percent(saving))
	}
	t.Notes = append(t.Notes,
		"DMA attacks the CPU-side transfer cost directly, which is why the paper proposes it for heavy-weight workloads")
	return &Result{ID: "abl-dma", Title: t.Title, Table: t, Values: values}, nil
}

// AblFaults sweeps injected sensor-failure rates (§II-B Task I: availability
// checks can fail) and measures the retry overhead on collection energy and
// the delivery loss once retries exhaust.
func AblFaults() (*Result, error) {
	t := &report.Table{
		Title:  "Ablation: sensor read failures vs energy and delivery (step counter, Baseline)",
		Header: []string{"fail every", "retries/window", "dropped/window", "collection mJ/win", "total mJ/win"},
		Notes:  []string{"failures cost a full re-read; exhausted retries shrink the window"},
	}
	values := map[string]float64{}
	for _, n := range []int{0, 100, 10, 2, 1} {
		list, err := newApps(apps.StepCounter)
		if err != nil {
			return nil, err
		}
		cfg := hub.Config{
			Apps: list, Scheme: hub.Baseline, Windows: Windows, SkipAppCompute: true,
		}
		if n > 0 {
			cfg.Faults = &hub.FaultPlan{
				ReadFailEvery: map[sensor.ID]int{sensor.Accelerometer: n},
				MaxRetries:    1,
			}
		}
		res, err := hub.Run(cfg)
		if err != nil {
			return nil, err
		}
		label := "never"
		if n > 0 {
			label = fmt.Sprintf("1 in %d", n)
		}
		coll := res.Energy[energy.DataCollection] / Windows
		values[fmt.Sprintf("retries:%d", n)] = float64(res.ReadRetries) / Windows
		values[fmt.Sprintf("dropped:%d", n)] = float64(res.DroppedSamples) / Windows
		values[fmt.Sprintf("collection:%d", n)] = coll
		t.AddRow(label,
			report.Cell(float64(res.ReadRetries)/Windows),
			report.Cell(float64(res.DroppedSamples)/Windows),
			report.Cell(coll*1000),
			report.Cell(perWindow(res)*1000))
	}
	return &Result{ID: "abl-faults", Title: t.Title, Table: t, Values: values}, nil
}

// AblChaos drives the full-hub fault engine (internal/faults) across one
// scenario per hardware layer and reports what each class of fault costs in
// energy and QoS, and how the resilience layer absorbs it. Every run passes
// the post-simulation invariant checker — injected faults consume energy,
// they never make it vanish.
func AblChaos() (*Result, error) {
	type scenario struct {
		key      string
		label    string
		scheme   hub.Scheme
		ids      []apps.ID
		schedule string
		pol      *hub.ResiliencePolicy
	}
	scenarios := []scenario{
		{key: "clean", label: "clean (baseline A2)",
			scheme: hub.Baseline, ids: []apps.ID{apps.StepCounter}},
		{key: "corrupt", label: "link corrupt p=0.02",
			scheme: hub.Baseline, ids: []apps.ID{apps.StepCounter},
			schedule: "seed=7; link-corrupt:prob=0.02"},
		{key: "corruptloss", label: "corrupt p=0.02 + loss p=0.005",
			scheme: hub.Baseline, ids: []apps.ID{apps.StepCounter},
			schedule: "seed=7; link-corrupt:prob=0.02; link-loss:prob=0.005"},
		{key: "sensor", label: "sensor slow x4 + stuck",
			scheme: hub.Baseline, ids: []apps.ID{apps.StepCounter},
			schedule: "seed=7; sensor-slow:every=100,factor=4; sensor-stuck:every=97"},
		{key: "crash", label: "MCU crash + watchdog degrade (COM A6)",
			scheme: hub.COM, ids: []apps.ID{apps.Heartbeat},
			schedule: "seed=7; mcu-crash:at=1100ms,for=150ms"},
		{key: "outage", label: "uplink outage, 100 B buffer (COM A7)",
			scheme: hub.COM, ids: []apps.ID{apps.ArduinoJSON},
			schedule: "seed=7; radio-outage:at=900ms,for=1500ms",
			pol:      &hub.ResiliencePolicy{RadioBufferBytes: 100, DegradeOnCrash: false}},
		{key: "everything", label: "all of the above (batching A2)",
			scheme: hub.Batching, ids: []apps.ID{apps.StepCounter},
			schedule: "seed=7; link-corrupt:prob=0.02; link-loss:prob=0.005; " +
				"sensor-slow:every=100,factor=4; sensor-stuck:every=97; " +
				"mcu-crash:at=1100ms,for=150ms; radio-outage:on=radio:main,at=900ms,for=600ms"},
	}
	t := &report.Table{
		Title:  "Ablation: injected hardware faults vs energy and QoS (3 windows)",
		Header: []string{"scenario", "mJ/win", "Δ energy", "delivered", "QoS viol", "retx", "crashes", "degraded"},
		Notes: []string{
			"Δ energy compares against the same workload with no schedule attached;",
			"every row passed the run-invariant checker: retries, reboots and re-reads all burn accounted energy",
		},
	}
	values := map[string]float64{}
	run := func(sc scenario, schedule *faults.Schedule, pol *hub.ResiliencePolicy) (*hub.RunResult, error) {
		list, err := newApps(sc.ids...)
		if err != nil {
			return nil, err
		}
		return hub.Run(hub.Config{
			Apps: list, Scheme: sc.scheme, Windows: Windows,
			FaultSchedule: schedule, Resilience: pol,
		})
	}
	for _, sc := range scenarios {
		var schedule *faults.Schedule
		if sc.schedule != "" {
			var err error
			if schedule, err = faults.ParseSchedule(sc.schedule); err != nil {
				return nil, fmt.Errorf("%s: %w", sc.key, err)
			}
		}
		clean, err := run(sc, nil, nil)
		if err != nil {
			return nil, err
		}
		res, err := run(sc, schedule, sc.pol)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sc.key, err)
		}
		delta := res.TotalJoules()/clean.TotalJoules() - 1
		delivered := float64(res.DeliveredSamples) / float64(res.ScheduledSamples)
		values["mj:"+sc.key] = perWindow(res) * 1000
		values["delta:"+sc.key] = delta
		values["delivered:"+sc.key] = delivered
		values["qos:"+sc.key] = float64(res.QoSViolations)
		values["retx:"+sc.key] = float64(res.LinkRetransmits)
		values["crashes:"+sc.key] = float64(res.MCUCrashes)
		values["degraded:"+sc.key] = float64(len(res.Degradations))
		values["radiodrops:"+sc.key] = float64(res.RadioDroppedBursts)
		t.AddRow(sc.label,
			report.Cell(perWindow(res)*1000),
			report.Percent(delta),
			report.Percent(delivered),
			report.Cell(res.QoSViolations),
			report.Cell(res.LinkRetransmits),
			report.Cell(res.MCUCrashes),
			report.Cell(len(res.Degradations)))
	}
	return &Result{ID: "abl-chaos", Title: t.Title, Table: t, Values: values}, nil
}

// AblProfile measures the real Go implementations with the oprofile-analog
// profiler and sets them beside the Figure 6 calibration constants. The
// calibration drives the energy model (it describes the paper's embedded C
// code); this table documents how our substitutes actually behave.
func AblProfile() (*Result, error) {
	t := &report.Table{
		Title: "Ablation: measured Go implementations vs Figure 6 calibration",
		Header: []string{
			"app", "calibrated heap (KB)", "measured alloc (KB/win)",
			"calibrated MIPS", "measured wall (ms/win)",
		},
		Notes: []string{
			"measured columns profile this repo's Go code on the build machine;",
			"the simulator prices apps with the calibrated columns (the paper's embedded implementations)",
		},
	}
	values := map[string]float64{}
	light, err := catalog.Light(Seed)
	if err != nil {
		return nil, err
	}
	for _, a := range light {
		sp := a.Spec()
		prof, err := trace.ProfileCompute(a, 2)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sp.ID, err)
		}
		values["alloc:"+string(sp.ID)] = prof.AllocBytesPerWindow
		values["wallMs:"+string(sp.ID)] = prof.WallPerWindow.Seconds() * 1000
		t.AddRow(string(sp.ID),
			report.Cell(float64(sp.MemoryBytes())/1000),
			report.Cell(prof.AllocBytesPerWindow/1000),
			report.Cell(sp.MIPS),
			fmt.Sprintf("%.2f", prof.WallPerWindow.Seconds()*1000))
	}
	return &Result{ID: "abl-profile", Title: t.Title, Table: t, Values: values}, nil
}
