package experiments

import (
	"fmt"

	"iothub/internal/apps"
	"iothub/internal/fleet"
	"iothub/internal/hub"
	"iothub/internal/report"
)

// fig12Combos are Figure 12's heavy-weight app mixes.
var fig12Combos = []struct {
	Key string
	IDs []apps.ID
}{
	{"A11", []apps.ID{apps.SpeechToTxt}},
	{"A11+A6", []apps.ID{apps.SpeechToTxt, apps.DropboxMgr}},
	{"A11+A6+A1", []apps.ID{apps.SpeechToTxt, apps.DropboxMgr, apps.CoAPServer}},
}

// fig12Rates are the QoS sampling-rate multipliers the sweep explores: half,
// paper-default, and double rate.
var fig12Rates = []float64{0.5, 1, 2}

// FleetFig12Spec reproduces Figure 12 as a fleet sweep extended along the
// sampling-rate axis: every heavy-weight combo under every applicable scheme
// at half/default/double QoS rates. Each scenario is tagged
// "<combo>|<scheme>|q<rate>" so the aggregates keep the cells separate.
// Multi-app combos add BEAM and BCOM exactly as Fig. 12 does.
func FleetFig12Spec() fleet.Spec {
	var scens []hub.Scenario
	for _, c := range fig12Combos {
		schemes := []hub.Scheme{hub.Baseline, hub.Batching}
		if len(c.IDs) > 1 {
			schemes = append(schemes, hub.BEAM, hub.BCOM)
		}
		for _, s := range schemes {
			for _, q := range fig12Rates {
				scens = append(scens, hub.Scenario{
					Apps: c.IDs, Scheme: s, Windows: Windows, QoSMult: q,
					SkipAppCompute: true,
					Tag:            fmt.Sprintf("%s|%v|q%g", c.Key, s, q),
				})
			}
		}
	}
	return fleet.Spec{Seed: Seed, Scenarios: scens}
}

// AblFleet12 runs the FleetFig12Spec sweep through the fleet engine and
// reports per-scheme energy savings against Baseline for every (combo, rate)
// cell — the savings-vs-sampling-rate view of Figure 12.
func AblFleet12() (*Result, error) {
	spec := FleetFig12Spec()
	res, err := fleet.Run(spec, fleet.Options{})
	if err != nil {
		return nil, err
	}
	if res.Agg.Errors > 0 {
		return nil, fmt.Errorf("experiments: fleet12: %d of %d scenarios failed: %+v",
			res.Agg.Errors, res.Completed, res.Failed)
	}
	mean := func(combo string, scheme hub.Scheme, q float64) (float64, error) {
		key := fmt.Sprintf("%s|%v|q%g/total", combo, scheme, q)
		m := res.Agg.Metric(key)
		if m == nil {
			return 0, fmt.Errorf("experiments: fleet12: no aggregate %q", key)
		}
		return m.Mean(), nil
	}
	t := &report.Table{
		Title:  "Ablation: Fig. 12 savings vs QoS sampling rate (fleet sweep)",
		Header: []string{"scenario", "rate", "baseline mJ/win", "batching", "BEAM", "BCOM"},
		Notes: []string{
			fmt.Sprintf("%d scenarios aggregated by the fleet engine (deterministic for any worker count)", res.Scenarios),
			"savings are relative to the same combo and rate under Baseline; single-app rows have no BEAM/BCOM",
		},
	}
	values := map[string]float64{}
	for _, c := range fig12Combos {
		for _, q := range fig12Rates {
			base, err := mean(c.Key, hub.Baseline, q)
			if err != nil {
				return nil, err
			}
			row := []string{c.Key, fmt.Sprintf("x%g", q), report.Cell(base * 1000)}
			schemes := []hub.Scheme{hub.Batching, hub.BEAM, hub.BCOM}
			for _, s := range schemes {
				if len(c.IDs) == 1 && s != hub.Batching {
					row = append(row, "-")
					continue
				}
				tot, err := mean(c.Key, s, q)
				if err != nil {
					return nil, err
				}
				saving := 1 - tot/base
				values[fmt.Sprintf("%v:%s:q%g", s, c.Key, q)] = saving
				row = append(row, report.Percent(saving))
			}
			values[fmt.Sprintf("base:%s:q%g", c.Key, q)] = base
			t.AddRow(row...)
		}
	}
	return &Result{ID: "abl-fleet12", Title: t.Title, Table: t, Values: values}, nil
}
