package experiments

import (
	"errors"
	"strings"
	"testing"
)

// band asserts a value lies inside [lo, hi] — the tolerance bands encode the
// paper's headline numbers with room for the simulator substitution.
func band(t *testing.T, values map[string]float64, key string, lo, hi float64) {
	t.Helper()
	v, ok := values[key]
	if !ok {
		t.Fatalf("value %q missing", key)
	}
	if v < lo || v > hi {
		t.Errorf("%s = %.3f, want [%.3f, %.3f]", key, v, lo, hi)
	}
}

func mustRun(t *testing.T, f func() (*Result, error)) *Result {
	t.Helper()
	res, err := f()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Table == nil || len(res.Table.Rows) == 0 {
		t.Fatal("experiment produced no table rows")
	}
	return res
}

func TestAllAndByID(t *testing.T) {
	all := All()
	if len(all) != 14 {
		t.Fatalf("experiments = %d, want 14 (12 figures-worth + 2 tables)", len(all))
	}
	for _, e := range all {
		got, err := ByID(e.ID)
		if err != nil || got.ID != e.ID {
			t.Errorf("ByID(%s): %v", e.ID, err)
		}
	}
	if _, err := ByID("fig99"); !errors.Is(err, ErrUnknown) {
		t.Errorf("unknown id err = %v", err)
	}
}

func TestTable1(t *testing.T) {
	res := mustRun(t, Table1)
	if res.Values["sensors"] != 11 {
		t.Errorf("sensors = %v, want 11", res.Values["sensors"])
	}
}

// TestTable2MatchesPaperExactly pins the interrupt counts and data volumes
// of Table II.
func TestTable2MatchesPaperExactly(t *testing.T) {
	res := mustRun(t, Table2)
	wantIrq := map[string]float64{
		"A1": 2000, "A2": 1000, "A3": 20, "A4": 2220, "A5": 1221,
		"A6": 2000, "A7": 1000, "A8": 1000, "A9": 1, "A10": 1, "A11": 1000,
	}
	for id, want := range wantIrq {
		if got := res.Values["irq:"+id]; got != want {
			t.Errorf("irq %s = %v, want %v", id, got, want)
		}
	}
	wantBytes := map[string]float64{
		"A2": 12000, "A3": 160, "A4": 20960, "A8": 4000, "A9": 24380,
		"A10": 512, "A11": 6000,
	}
	for id, want := range wantBytes {
		if got := res.Values["bytes:"+id]; got != want {
			t.Errorf("bytes %s = %v, want %v", id, got, want)
		}
	}
}

func TestFig1IdleRatio(t *testing.T) {
	res := mustRun(t, Fig1)
	band(t, res.Values, "ratio", 7, 13) // paper: 9.5x
}

func TestFig3Shape(t *testing.T) {
	res := mustRun(t, Fig3)
	// M2X costs more than SC (paper: 9071 vs 1902 mJ; our substrate
	// compresses the gap but preserves the ordering).
	band(t, res.Values, "m2xOverSC", 1.1, 6)
	// Concurrent baseline ~ sum of individuals, BEAM saves a modest slice.
	band(t, res.Values, "beamSaving", 0.05, 0.35) // paper: 9%
	// §II-C: 70-80% transfer, 10-12% interrupt, <5% collection+compute.
	band(t, res.Values, "xferFracSC", 0.70, 0.90)
	band(t, res.Values, "irqFracSC", 0.05, 0.15)
	band(t, res.Values, "collFracSC", 0.01, 0.08)
}

func TestFig4TransferSplit(t *testing.T) {
	res := mustRun(t, Fig4)
	band(t, res.Values, "cpuShare", 0.70, 0.85)  // paper: 77%
	band(t, res.Values, "mcuShare", 0.08, 0.20)  // paper: 13%
	band(t, res.Values, "wireShare", 0.05, 0.15) // paper: 10%
}

func TestFig5SleepFractions(t *testing.T) {
	res := mustRun(t, Fig5)
	// Baseline: the CPU never sleeps (gaps below break-even).
	band(t, res.Values, "baselineSleepFraction", 0, 0.01)
	// Batching: the CPU sleeps ~93% of the time (Fig. 7 caption).
	band(t, res.Values, "batchingSleepFraction", 0.85, 0.97)
}

func TestFig6Characterization(t *testing.T) {
	res := mustRun(t, Fig6)
	band(t, res.Values, "avgMemKB", 26.15, 26.25) // paper: 26.2 KB
	band(t, res.Values, "avgMIPS", 47.40, 47.50)  // paper: 47.45
	band(t, res.Values, "mips:A2", 3.94, 3.94)
	band(t, res.Values, "mips:A8", 108.80, 108.80)
}

func TestFig7Batching(t *testing.T) {
	res := mustRun(t, Fig7)
	band(t, res.Values, "saving", 0.45, 0.70) // paper: 63% for SC
	if res.Values["baselineInterrupts"] != 1000 || res.Values["batchingInterrupts"] != 1 {
		t.Errorf("interrupt reduction %v -> %v, want 1000 -> 1",
			res.Values["baselineInterrupts"], res.Values["batchingInterrupts"])
	}
}

func TestFig8Timing(t *testing.T) {
	res := mustRun(t, Fig8)
	band(t, res.Values, "baselineMs", 280, 400) // paper: ~342 ms
	band(t, res.Values, "comMs", 80, 160)       // paper: ~122 ms
}

func TestFig9ThreeSchemes(t *testing.T) {
	res := mustRun(t, Fig9)
	band(t, res.Values, "batchingFrac", 0.30, 0.60)
	band(t, res.Values, "comFrac", 0.05, 0.30) // paper: 27% for SC
	if res.Values["comFrac"] >= res.Values["batchingFrac"] {
		t.Error("COM not below Batching")
	}
}

func TestFig10Averages(t *testing.T) {
	res := mustRun(t, Fig10)
	band(t, res.Values, "avgBatchingSaving", 0.35, 0.60) // paper: 52%
	band(t, res.Values, "avgCOMSaving", 0.65, 0.90)      // paper: 85%
	// Per-app shape: every app saves with COM; batching can be ~0 for
	// single-shot sensors (A9/A10) but never negative.
	for _, id := range []string{"A1", "A2", "A3", "A4", "A5", "A6", "A7", "A8", "A9", "A10"} {
		if v := res.Values["com:"+id]; v <= 0.1 {
			t.Errorf("COM saving for %s = %.2f, want > 0.1", id, v)
		}
		if v := res.Values["batching:"+id]; v < -0.01 {
			t.Errorf("batching saving for %s = %.2f, want >= 0", id, v)
		}
	}
}

func TestFig11MultiApp(t *testing.T) {
	res := mustRun(t, Fig11)
	band(t, res.Values, "avgBEAMSaving", 0.15, 0.40)    // paper: 29%
	band(t, res.Values, "avgOffloadSaving", 0.60, 0.95) // paper: 70%
	// A2+A7 (full sensor overlap at 1 kHz) must be among BEAM's best pairs;
	// A3 pairs (20 shared samples) must be its worst.
	if res.Values["beam:A2+A7"] <= res.Values["beam:A3+A5"] {
		t.Error("BEAM: full-overlap pair not better than tiny-overlap pair")
	}
	band(t, res.Values, "beam:A2+A7", 0.20, 0.55) // paper: 48.2%
	band(t, res.Values, "beam:A3+A5", 0.0, 0.10)
	// Offload always beats BEAM (the paper's takeaway).
	for _, combo := range []string{"A2+A7", "A2+A5", "A2+A4+A5+A7"} {
		if res.Values["com:"+combo] <= res.Values["beam:"+combo] {
			t.Errorf("offload not above BEAM for %s", combo)
		}
	}
}

func TestFig12HeavyWeight(t *testing.T) {
	res := mustRun(t, Fig12)
	// A11's compute dominates its baseline (paper: 78%).
	band(t, res.Values, "A11:computeFraction", 0.65, 0.90)
	// Batching helps the heavy app only marginally (paper: 5%).
	band(t, res.Values, "A11:Batching", 0.02, 0.20)
	// Mixed scenarios: BEAM < Batching < BCOM, all far below the
	// light-only savings (paper: 2% / 7% / 9%; our simulator overshoots
	// the absolute numbers, the ordering is the claim).
	if !(res.Values["A11+A6:BEAM"] < res.Values["A11+A6:Batching"]) {
		t.Error("A11+A6: BEAM not below Batching")
	}
	if !(res.Values["A11+A6:Batching"] < res.Values["A11+A6:BCOM"]+0.001) {
		t.Error("A11+A6: Batching above BCOM")
	}
	if res.Values["A11+A6:BCOM"] > 0.45 {
		t.Errorf("A11+A6 BCOM saving %.2f too large for a heavy mix", res.Values["A11+A6:BCOM"])
	}
	if res.Values["A11+A6+A1:BCOM"] <= res.Values["A11+A6:BCOM"]-0.02 {
		t.Error("adding another light app did not increase BCOM savings")
	}
}

func TestFig13Speedup(t *testing.T) {
	res := mustRun(t, Fig13)
	band(t, res.Values, "avgSpeedup", 1.5, 3.0) // paper: 1.88x
	band(t, res.Values, "speedup:A3", 0.5, 1.0) // paper: 0.9x
	band(t, res.Values, "speedup:A8", 0.5, 1.0) // paper: 0.8x
	band(t, res.Values, "speedup:A2", 2.0, 4.5) // Fig. 8: ~2.8x
	// Exactly two apps slow down under COM.
	slow := 0
	for _, id := range []string{"A1", "A2", "A3", "A4", "A5", "A6", "A7", "A8", "A9", "A10"} {
		if res.Values["speedup:"+id] < 1 {
			slow++
		}
	}
	if slow != 2 {
		t.Errorf("%d apps slow down under COM, want 2 (A3, A8)", slow)
	}
}

func TestTablesRenderEverywhere(t *testing.T) {
	for _, e := range []Experiment{{ID: "table1", Run: Table1}, {ID: "fig6", Run: Fig6}} {
		res := mustRun(t, e.Run)
		if !strings.Contains(res.Table.ASCII(), res.Table.Header[0]) {
			t.Errorf("%s ASCII missing header", e.ID)
		}
		if !strings.Contains(res.Table.CSV(), ",") {
			t.Errorf("%s CSV empty", e.ID)
		}
		if !strings.Contains(res.Table.Markdown(), "| --- |") {
			t.Errorf("%s Markdown missing separator", e.ID)
		}
	}
}

func TestChartsAttachedToBarFigures(t *testing.T) {
	for _, f := range []func() (*Result, error){Fig10, Fig11, Fig13} {
		res := mustRun(t, f)
		if res.Chart == nil {
			t.Fatalf("%s missing chart", res.ID)
		}
		out := res.Chart.ASCII()
		if !strings.Contains(out, "#") {
			t.Errorf("%s chart empty:\n%s", res.ID, out)
		}
	}
}
