// Package experiments regenerates every table and figure of the paper's
// evaluation (§II, §IV) from the simulator. Each experiment returns both a
// rendered table and the key metrics as named values, so the CLI, the
// benchmark harness, and the test suite (which asserts the paper's headline
// numbers within tolerance bands) share one implementation.
package experiments

import (
	"errors"
	"fmt"
	"time"

	"iothub/internal/apps"
	"iothub/internal/apps/catalog"
	"iothub/internal/core"
	"iothub/internal/energy"
	"iothub/internal/hub"
	"iothub/internal/report"
	"iothub/internal/sensor"
	"iothub/internal/sim"
	"iothub/internal/trace"
)

// Windows is the number of QoS windows each scenario simulates; results are
// reported per window.
const Windows = 3

// Seed drives all synthetic signals, making every experiment reproducible.
const Seed = 1

// Result is one regenerated table or figure.
type Result struct {
	ID    string
	Title string
	Table *report.Table
	// Chart optionally renders the figure as ASCII bars (bar figures only).
	Chart *report.BarChart
	// Values carries the headline metrics by name for programmatic checks.
	Values map[string]float64
}

// Experiment is a runnable paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func() (*Result, error)
}

// All lists every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{ID: "table1", Title: "Table I: sensor specifications", Run: Table1},
		{ID: "table2", Title: "Table II: workload features", Run: Table2},
		{ID: "fig1", Title: "Figure 1: idle hub vs baseline energy", Run: Fig1},
		{ID: "fig3", Title: "Figure 3: SC/M2X energy breakdown and BEAM", Run: Fig3},
		{ID: "fig4", Title: "Figure 4: data transfer energy split", Run: Fig4},
		{ID: "fig5", Title: "Figure 5: power-state timelines", Run: Fig5},
		{ID: "fig6", Title: "Figure 6: memory usage and MIPS", Run: Fig6},
		{ID: "fig7", Title: "Figure 7: step counter Baseline vs Batching", Run: Fig7},
		{ID: "fig8", Title: "Figure 8: step counter timing breakdown", Run: Fig8},
		{ID: "fig9", Title: "Figure 9: step counter three schemes", Run: Fig9},
		{ID: "fig10", Title: "Figure 10: single-app energy, three schemes", Run: Fig10},
		{ID: "fig11", Title: "Figure 11: multi-app combos", Run: Fig11},
		{ID: "fig12", Title: "Figure 12: heavy-weight scenarios", Run: Fig12},
		{ID: "fig13", Title: "Figure 13: COM performance speedup", Run: Fig13},
	}
}

// ErrUnknown is returned by ByID for unknown experiment IDs.
var ErrUnknown = errors.New("experiments: unknown experiment")

// ByID finds an experiment or ablation by its ID ("fig10", "table2",
// "abl-dma", ...).
func ByID(id string) (Experiment, error) {
	for _, e := range append(All(), Ablations()...) {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("%w: %q", ErrUnknown, id)
}

// newApps instantiates catalog workloads.
func newApps(ids ...apps.ID) ([]apps.App, error) {
	out := make([]apps.App, 0, len(ids))
	for _, id := range ids {
		a, err := catalog.New(id, Seed)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}

// run executes one scenario and returns its result.
func run(scheme hub.Scheme, assign map[apps.ID]hub.Mode, ids ...apps.ID) (*hub.RunResult, error) {
	list, err := newApps(ids...)
	if err != nil {
		return nil, err
	}
	return hub.Run(hub.Config{
		Apps:    list,
		Scheme:  scheme,
		Assign:  assign,
		Windows: Windows,
	})
}

// perWindow normalizes a run's total energy to joules per window.
func perWindow(r *hub.RunResult) float64 {
	return r.TotalJoules() / Windows
}

// Table1 reproduces Table I from the sensor registry.
func Table1() (*Result, error) {
	t := &report.Table{
		Title: "Table I: sensor specifications",
		Header: []string{
			"id", "name", "bus", "read time", "power typ (mW)",
			"sample", "bytes", "QoS rate (Hz)", "MCU-friendly",
		},
	}
	for _, sp := range sensor.All() {
		t.AddRow(
			string(sp.ID), sp.Name, sp.Bus.String(), sp.ReadTime.String(),
			report.Cell(sp.PowerTyp*1000), sp.DataType, report.Cell(sp.SampleBytes),
			report.Cell(sp.QoSRateHz), report.Cell(sp.MCUFriendly),
		)
	}
	return &Result{
		ID: "table1", Title: t.Title, Table: t,
		Values: map[string]float64{"sensors": float64(len(sensor.All()))},
	}, nil
}

// Table2 reproduces Table II, with the per-window interrupt counts and data
// volumes computed by the model (tests assert they match the paper exactly).
func Table2() (*Result, error) {
	t := &report.Table{
		Title: "Table II: workload features",
		Header: []string{
			"id", "benchmark", "category", "sensors",
			"data (KB)", "# interrupts", "task",
		},
		Notes: []string{
			"A5 data volume is 36.46 KB vs the paper's 36.91 KB: the paper's own rows are inconsistent (DESIGN.md §5)",
		},
	}
	values := map[string]float64{}
	all, err := catalog.All(Seed)
	if err != nil {
		return nil, err
	}
	for _, a := range all {
		sp := a.Spec()
		irq, err := sp.InterruptsPerWindow()
		if err != nil {
			return nil, err
		}
		bytes, err := sp.DataBytesPerWindow()
		if err != nil {
			return nil, err
		}
		sensorsCol := ""
		for i, u := range sp.Sensors {
			if i > 0 {
				sensorsCol += ","
			}
			sensorsCol += string(u.Sensor)
		}
		t.AddRow(
			string(sp.ID), sp.Name, sp.Category, sensorsCol,
			report.Cell(float64(bytes)/1024), report.Cell(irq), sp.Task,
		)
		values["irq:"+string(sp.ID)] = float64(irq)
		values["bytes:"+string(sp.ID)] = float64(bytes)
	}
	return &Result{ID: "table2", Title: t.Title, Table: t, Values: values}, nil
}

// Fig1 reproduces Figure 1: the baseline execution of the ten light apps
// costs ~9.5x the idle hub.
func Fig1() (*Result, error) {
	idle, err := hub.RunIdle(time.Second, nil)
	if err != nil {
		return nil, err
	}
	var sum float64
	for _, id := range catalog.LightIDs {
		res, err := run(hub.Baseline, nil, id)
		if err != nil {
			return nil, err
		}
		sum += res.TotalJoules() / res.Duration.Seconds()
	}
	avg := sum / float64(len(catalog.LightIDs))
	ratio := avg / idle.TotalJoules()
	t := &report.Table{
		Title:  "Figure 1: energy of an idle hub vs the 10-app baseline average",
		Header: []string{"configuration", "power (W)", "normalized"},
		Notes:  []string{"paper: baseline = 9.5x idle"},
	}
	t.AddRow("idle hub", report.Cell(idle.TotalJoules()), "1.00x")
	t.AddRow("baseline (A1-A10 avg)", report.Cell(avg), fmt.Sprintf("%.1fx", ratio))
	return &Result{
		ID: "fig1", Title: t.Title, Table: t,
		Values: map[string]float64{"ratio": ratio, "idleWatts": idle.TotalJoules()},
	}, nil
}

// breakdownRow renders a run as the four-routine millijoule row the paper's
// stacked bars show.
func breakdownRow(t *report.Table, label string, r *hub.RunResult) {
	b := r.Energy
	t.AddRow(
		label,
		report.Millijoules(b[energy.DataCollection]/Windows),
		report.Millijoules(b[energy.Interrupt]/Windows),
		report.Millijoules(b[energy.DataTransfer]/Windows),
		report.Millijoules(b[energy.AppCompute]/Windows),
		report.Millijoules(b.Attributed()/Windows),
	)
}

var breakdownHeader = []string{
	"scenario", "collection", "interrupt", "transfer", "compute", "total",
}

// Fig3 reproduces Figure 3: SC and M2X alone, concurrent, and with BEAM.
func Fig3() (*Result, error) {
	sc, err := run(hub.Baseline, nil, apps.StepCounter)
	if err != nil {
		return nil, err
	}
	m2x, err := run(hub.Baseline, nil, apps.M2X)
	if err != nil {
		return nil, err
	}
	both, err := run(hub.Baseline, nil, apps.StepCounter, apps.M2X)
	if err != nil {
		return nil, err
	}
	beam, err := run(hub.BEAM, nil, apps.StepCounter, apps.M2X)
	if err != nil {
		return nil, err
	}
	t := &report.Table{Title: "Figure 3: energy breakdown, SC and M2X", Header: breakdownHeader}
	breakdownRow(t, "SC", sc)
	breakdownRow(t, "M2X", m2x)
	breakdownRow(t, "SC+M2X baseline", both)
	breakdownRow(t, "SC+M2X BEAM", beam)
	saving := 1 - beam.TotalJoules()/both.TotalJoules()
	t.Notes = append(t.Notes, fmt.Sprintf("BEAM saves %s (paper: 9%%; they share only the accelerometer)", report.Percent(saving)))
	return &Result{
		ID: "fig3", Title: t.Title, Table: t,
		Values: map[string]float64{
			"scJ":        perWindow(sc),
			"m2xJ":       perWindow(m2x),
			"bothJ":      perWindow(both),
			"beamSaving": saving,
			"m2xOverSC":  perWindow(m2x) / perWindow(sc),
			"xferFracSC": sc.Energy.Fraction(energy.DataTransfer),
			"irqFracSC":  sc.Energy.Fraction(energy.Interrupt),
			"collFracSC": sc.Energy.Fraction(energy.DataCollection),
		},
	}, nil
}

// Fig4 reproduces Figure 4: who consumes the data-transfer routine's energy —
// the CPU-side software stack, the MCU-side stack, or the physical wire.
func Fig4() (*Result, error) {
	res, err := run(hub.Baseline, nil, apps.StepCounter)
	if err != nil {
		return nil, err
	}
	p := hub.DefaultParams()
	cpuJ := res.CPUBusy[energy.DataTransfer].Seconds() * p.CPU.ActiveW
	mcuJ := res.MCUBusy[energy.DataTransfer].Seconds() * p.MCU.ActiveW
	wireJ := res.PerComponent["link"].Total()
	total := cpuJ + mcuJ + wireJ
	t := &report.Table{
		Title:  "Figure 4: energy split of the data transfer routine",
		Header: []string{"consumer", "energy", "share"},
		Notes:  []string{"paper: CPU 77%, MCU 13%, physical transfer 10%"},
	}
	t.AddRow("CPU software stack", report.Millijoules(cpuJ/Windows), report.Percent(cpuJ/total))
	t.AddRow("MCU software stack", report.Millijoules(mcuJ/Windows), report.Percent(mcuJ/total))
	t.AddRow("physical transfer", report.Millijoules(wireJ/Windows), report.Percent(wireJ/total))
	return &Result{
		ID: "fig4", Title: t.Title, Table: t,
		Values: map[string]float64{
			"cpuShare":  cpuJ / total,
			"mcuShare":  mcuJ / total,
			"wireShare": wireJ / total,
		},
	}, nil
}

// Fig5 reproduces Figure 5: CPU power-state timelines under Baseline and
// Batching for the step counter.
func Fig5() (*Result, error) {
	runTraced := func(scheme hub.Scheme) (*hub.RunResult, error) {
		list, err := newApps(apps.StepCounter)
		if err != nil {
			return nil, err
		}
		return hub.Run(hub.Config{Apps: list, Scheme: scheme, Windows: 2, TracePower: true})
	}
	base, err := runTraced(hub.Baseline)
	if err != nil {
		return nil, err
	}
	bat, err := runTraced(hub.Batching)
	if err != nil {
		return nil, err
	}
	p := hub.DefaultParams()
	end := sim.Time(2 * time.Second)
	baseSleep := trace.SleepFraction(base.Traces["cpu"], p.CPU.SleepW, end)
	batSleep := trace.SleepFraction(bat.Traces["cpu"], p.CPU.SleepW, end)
	t := &report.Table{
		Title:  "Figure 5: CPU power-state occupancy, step counter",
		Header: []string{"scheme", "active+stall", "asleep", "sleep fraction"},
		Notes: []string{
			"paper: Baseline keeps the CPU active the whole time; Batching lets it sleep ~93% of the window",
		},
	}
	row := func(label string, tr []energy.Sample, frac float64) {
		var awake, asleep time.Duration
		for w, d := range trace.Occupancy(tr, end) {
			if w <= p.CPU.SleepW {
				asleep += d
			} else {
				awake += d
			}
		}
		t.AddRow(label, awake.String(), asleep.String(), report.Percent(frac))
	}
	row("Baseline", base.Traces["cpu"], baseSleep)
	row("Batching", bat.Traces["cpu"], batSleep)
	return &Result{
		ID: "fig5", Title: t.Title, Table: t,
		Values: map[string]float64{
			"baselineSleepFraction": baseSleep,
			"batchingSleepFraction": batSleep,
		},
	}, nil
}

// Fig6 reproduces Figure 6: memory usage and MIPS per workload.
func Fig6() (*Result, error) {
	t := &report.Table{
		Title:  "Figure 6: memory usage and compute demand",
		Header: []string{"app", "heap (B)", "stack (B)", "memory (KB)", "MIPS"},
		Notes:  []string{"paper: avg 26.2 KB memory, avg 47.45 MIPS over A1-A10"},
	}
	light, err := catalog.Light(Seed)
	if err != nil {
		return nil, err
	}
	values := map[string]float64{}
	var memSum, mipsSum float64
	for _, a := range light {
		sp := a.Spec()
		t.AddRow(
			string(sp.ID), report.Cell(sp.HeapBytes), report.Cell(sp.StackBytes),
			report.Cell(float64(sp.MemoryBytes())/1000), report.Cell(sp.MIPS),
		)
		memSum += float64(sp.MemoryBytes())
		mipsSum += sp.MIPS
		values["mips:"+string(sp.ID)] = sp.MIPS
	}
	values["avgMemKB"] = memSum / 10 / 1000
	values["avgMIPS"] = mipsSum / 10
	t.AddRow("Avg.", "", "", report.Cell(values["avgMemKB"]), report.Cell(values["avgMIPS"]))
	return &Result{ID: "fig6", Title: t.Title, Table: t, Values: values}, nil
}

// Fig7 reproduces Figure 7: the step counter under Baseline vs Batching,
// normalized to Baseline.
func Fig7() (*Result, error) {
	base, err := run(hub.Baseline, nil, apps.StepCounter)
	if err != nil {
		return nil, err
	}
	bat, err := run(hub.Batching, nil, apps.StepCounter)
	if err != nil {
		return nil, err
	}
	t := normalizedTable("Figure 7: step counter, Baseline vs Batching", base,
		labeled{"Baseline", base}, labeled{"Batching", bat})
	saving := 1 - bat.TotalJoules()/base.TotalJoules()
	t.Notes = append(t.Notes,
		fmt.Sprintf("batching saves %s; interrupts drop %d -> %d per window (paper: 1000 -> 1, 63%% saving)",
			report.Percent(saving), base.Interrupts/Windows, bat.Interrupts/Windows))
	return &Result{
		ID: "fig7", Title: t.Title, Table: t,
		Values: map[string]float64{
			"saving":             saving,
			"baselineInterrupts": float64(base.Interrupts) / Windows,
			"batchingInterrupts": float64(bat.Interrupts) / Windows,
		},
	}, nil
}

// Fig8 reproduces Figure 8: per-window routine times for the step counter
// under Baseline and COM.
func Fig8() (*Result, error) {
	base, err := run(hub.Baseline, nil, apps.StepCounter)
	if err != nil {
		return nil, err
	}
	com, err := run(hub.COM, nil, apps.StepCounter)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:  "Figure 8: step counter timing breakdown (ms per window)",
		Header: []string{"scheme", "collection", "interrupt", "transfer", "compute", "total"},
		Notes:  []string{"paper: Baseline ~342 ms vs COM ~122 ms of routine time"},
	}
	rowMs := func(label string, r *hub.RunResult) float64 {
		lat := r.RoutineLatency()
		total := r.BusyLatency().Seconds() * 1000 / Windows
		t.AddRow(label,
			fmt.Sprintf("%.1f", lat[energy.DataCollection].Seconds()*1000/Windows),
			fmt.Sprintf("%.1f", lat[energy.Interrupt].Seconds()*1000/Windows),
			fmt.Sprintf("%.1f", lat[energy.DataTransfer].Seconds()*1000/Windows),
			fmt.Sprintf("%.1f", lat[energy.AppCompute].Seconds()*1000/Windows),
			fmt.Sprintf("%.1f", total),
		)
		return total
	}
	baseMs := rowMs("Baseline", base)
	comMs := rowMs("COM", com)
	return &Result{
		ID: "fig8", Title: t.Title, Table: t,
		Values: map[string]float64{"baselineMs": baseMs, "comMs": comMs},
	}, nil
}

// Fig9 reproduces Figure 9: the step counter under all three schemes.
func Fig9() (*Result, error) {
	base, err := run(hub.Baseline, nil, apps.StepCounter)
	if err != nil {
		return nil, err
	}
	bat, err := run(hub.Batching, nil, apps.StepCounter)
	if err != nil {
		return nil, err
	}
	com, err := run(hub.COM, nil, apps.StepCounter)
	if err != nil {
		return nil, err
	}
	t := normalizedTable("Figure 9: step counter, Baseline/Batching/COM", base,
		labeled{"Baseline", base}, labeled{"Batching", bat}, labeled{"COM", com})
	return &Result{
		ID: "fig9", Title: t.Title, Table: t,
		Values: map[string]float64{
			"batchingFrac": bat.TotalJoules() / base.TotalJoules(),
			"comFrac":      com.TotalJoules() / base.TotalJoules(),
		},
	}, nil
}

type labeled struct {
	label string
	run   *hub.RunResult
}

// normalizedTable renders runs as percent-of-baseline four-routine rows,
// matching the paper's normalized stacked bars.
func normalizedTable(title string, base *hub.RunResult, rows ...labeled) *report.Table {
	t := &report.Table{
		Title:  title,
		Header: []string{"scheme", "collection", "interrupt", "transfer", "compute", "total"},
	}
	ref := base.Energy.Attributed()
	for _, lr := range rows {
		b := lr.run.Energy
		t.AddRow(lr.label,
			report.Percent(b[energy.DataCollection]/ref),
			report.Percent(b[energy.Interrupt]/ref),
			report.Percent(b[energy.DataTransfer]/ref),
			report.Percent(b[energy.AppCompute]/ref),
			report.Percent(b.Attributed()/ref),
		)
	}
	return t
}

// Fig10 reproduces Figure 10: normalized energy for A1-A10 under the three
// schemes.
func Fig10() (*Result, error) {
	t := &report.Table{
		Title:  "Figure 10: single-app normalized energy (three schemes)",
		Header: []string{"app", "baseline", "batching", "COM", "batching saving", "COM saving"},
		Notes:  []string{"paper averages: Batching saves 52%, COM saves 85%"},
	}
	values := map[string]float64{}
	var batSum, comSum float64
	for _, id := range catalog.LightIDs {
		base, err := run(hub.Baseline, nil, id)
		if err != nil {
			return nil, err
		}
		bat, err := run(hub.Batching, nil, id)
		if err != nil {
			return nil, err
		}
		com, err := run(hub.COM, nil, id)
		if err != nil {
			return nil, err
		}
		bs := 1 - bat.TotalJoules()/base.TotalJoules()
		cs := 1 - com.TotalJoules()/base.TotalJoules()
		batSum += bs
		comSum += cs
		values["batching:"+string(id)] = bs
		values["com:"+string(id)] = cs
		t.AddRow(string(id), "100.0%",
			report.Percent(bat.TotalJoules()/base.TotalJoules()),
			report.Percent(com.TotalJoules()/base.TotalJoules()),
			report.Percent(bs), report.Percent(cs))
	}
	values["avgBatchingSaving"] = batSum / 10
	values["avgCOMSaving"] = comSum / 10
	t.AddRow("Avg.", "100.0%", "", "",
		report.Percent(values["avgBatchingSaving"]), report.Percent(values["avgCOMSaving"]))
	chart := &report.BarChart{Title: "COM saving per app (Fig. 10)"}
	for _, id := range catalog.LightIDs {
		v := values["com:"+string(id)]
		chart.Add(string(id), v, report.Percent(v))
	}
	return &Result{ID: "fig10", Title: t.Title, Table: t, Chart: chart, Values: values}, nil
}

// Combos lists the 14 sensor-sharing app mixes of Figure 11.
var Combos = [][]apps.ID{
	{apps.StepCounter, apps.Blynk},
	{apps.Blynk, apps.Earthquake},
	{apps.M2X, apps.Blynk},
	{apps.ArduinoJSON, apps.Blynk},
	{apps.StepCounter, apps.Earthquake},
	{apps.StepCounter, apps.M2X},
	{apps.M2X, apps.Earthquake},
	{apps.ArduinoJSON, apps.M2X},
	{apps.StepCounter, apps.Blynk, apps.Earthquake},
	{apps.StepCounter, apps.M2X, apps.Blynk},
	{apps.Blynk, apps.Earthquake, apps.M2X},
	{apps.ArduinoJSON, apps.M2X, apps.Blynk},
	{apps.StepCounter, apps.M2X, apps.Earthquake},
	{apps.StepCounter, apps.M2X, apps.Blynk, apps.Earthquake},
}

func comboLabel(ids []apps.ID) string {
	out := ""
	for i, id := range ids {
		if i > 0 {
			out += "+"
		}
		out += string(id)
	}
	return out
}

// Fig11 reproduces Figure 11: the 14 multi-app scenarios under Baseline,
// BEAM, and full offload (all Figure 11 apps are light-weight, so the
// paper's "BCOM" bars are COM).
func Fig11() (*Result, error) {
	t := &report.Table{
		Title:  "Figure 11: multi-app combos, normalized energy",
		Header: []string{"combo", "BEAM", "offload (BCOM)", "BEAM saving", "offload saving"},
		Notes:  []string{"paper averages: BEAM saves 29%, offload saves 70%"},
	}
	values := map[string]float64{}
	var beamSum, comSum float64
	for _, ids := range Combos {
		base, err := run(hub.Baseline, nil, ids...)
		if err != nil {
			return nil, err
		}
		beam, err := run(hub.BEAM, nil, ids...)
		if err != nil {
			return nil, err
		}
		com, err := run(hub.COM, nil, ids...)
		if err != nil {
			return nil, err
		}
		bs := 1 - beam.TotalJoules()/base.TotalJoules()
		cs := 1 - com.TotalJoules()/base.TotalJoules()
		beamSum += bs
		comSum += cs
		label := comboLabel(ids)
		values["beam:"+label] = bs
		values["com:"+label] = cs
		t.AddRow(label,
			report.Percent(beam.TotalJoules()/base.TotalJoules()),
			report.Percent(com.TotalJoules()/base.TotalJoules()),
			report.Percent(bs), report.Percent(cs))
	}
	values["avgBEAMSaving"] = beamSum / float64(len(Combos))
	values["avgOffloadSaving"] = comSum / float64(len(Combos))
	t.AddRow("Avg.", "", "",
		report.Percent(values["avgBEAMSaving"]), report.Percent(values["avgOffloadSaving"]))
	chart := &report.BarChart{Title: "BEAM saving per combo (Fig. 11)"}
	for _, ids := range Combos {
		label := comboLabel(ids)
		v := values["beam:"+label]
		chart.Add(label, v, report.Percent(v))
	}
	return &Result{ID: "fig11", Title: t.Title, Table: t, Chart: chart, Values: values}, nil
}

// Fig12 reproduces Figure 12: scenarios involving the heavy-weight A11.
func Fig12() (*Result, error) {
	t := &report.Table{
		Title:  "Figure 12: heavy-weight scenarios, normalized energy",
		Header: []string{"scenario", "scheme", "normalized", "saving"},
		Notes:  []string{"paper: A11 alone Batching saves 5%; A11+A6 BCOM 9%; A11+A6+A1 BCOM 10%"},
	}
	values := map[string]float64{}
	addScenario := func(key string, ids []apps.ID) error {
		base, err := run(hub.Baseline, nil, ids...)
		if err != nil {
			return err
		}
		addRow := func(scheme string, r *hub.RunResult) {
			frac := r.TotalJoules() / base.TotalJoules()
			t.AddRow(key, scheme, report.Percent(frac), report.Percent(1-frac))
			values[key+":"+scheme] = 1 - frac
		}
		bat, err := run(hub.Batching, nil, ids...)
		if err != nil {
			return err
		}
		t.AddRow(key, "Baseline", "100.0%", "0.0%")
		if len(ids) > 1 {
			beam, err := run(hub.BEAM, nil, ids...)
			if err != nil {
				return err
			}
			addRow("BEAM", beam)
		}
		addRow("Batching", bat)
		if len(ids) > 1 {
			list, err := newApps(ids...)
			if err != nil {
				return err
			}
			plan, err := core.PlanBCOM(list, hub.DefaultParams())
			if err != nil {
				return err
			}
			bcom, err := hub.Run(hub.Config{
				Apps: list, Scheme: hub.BCOM, Assign: plan.Assign, Windows: Windows,
			})
			if err != nil {
				return err
			}
			addRow("BCOM", bcom)
		}
		return nil
	}
	if err := addScenario("A11", []apps.ID{apps.SpeechToTxt}); err != nil {
		return nil, err
	}
	if err := addScenario("A11+A6", []apps.ID{apps.SpeechToTxt, apps.DropboxMgr}); err != nil {
		return nil, err
	}
	if err := addScenario("A11+A6+A1", []apps.ID{apps.SpeechToTxt, apps.DropboxMgr, apps.CoAPServer}); err != nil {
		return nil, err
	}
	// Fig. 12a also reports the baseline compute share of A11 (~78%).
	a11, err := run(hub.Baseline, nil, apps.SpeechToTxt)
	if err != nil {
		return nil, err
	}
	values["A11:computeFraction"] = a11.Energy.Fraction(energy.AppCompute)
	return &Result{ID: "fig12", Title: t.Title, Table: t, Values: values}, nil
}

// Fig13 reproduces Figure 13: COM's performance speedup over Baseline.
func Fig13() (*Result, error) {
	t := &report.Table{
		Title:  "Figure 13: COM performance speedup (routine time ratio)",
		Header: []string{"app", "baseline (ms)", "COM (ms)", "speedup"},
		Notes:  []string{"paper: average 1.88x; A3 ~0.9x and A8 ~0.8x slow down"},
	}
	values := map[string]float64{}
	var sum float64
	for _, id := range catalog.LightIDs {
		base, err := run(hub.Baseline, nil, id)
		if err != nil {
			return nil, err
		}
		com, err := run(hub.COM, nil, id)
		if err != nil {
			return nil, err
		}
		sp := float64(base.BusyLatency()) / float64(com.BusyLatency())
		sum += sp
		values["speedup:"+string(id)] = sp
		t.AddRow(string(id),
			fmt.Sprintf("%.1f", base.BusyLatency().Seconds()*1000/Windows),
			fmt.Sprintf("%.1f", com.BusyLatency().Seconds()*1000/Windows),
			fmt.Sprintf("%.2fx", sp))
	}
	values["avgSpeedup"] = sum / 10
	t.AddRow("Avg.", "", "", fmt.Sprintf("%.2fx", values["avgSpeedup"]))
	chart := &report.BarChart{Title: "COM speedup per app (Fig. 13)"}
	for _, id := range catalog.LightIDs {
		v := values["speedup:"+string(id)]
		chart.Add(string(id), v, fmt.Sprintf("%.2fx", v))
	}
	return &Result{ID: "fig13", Title: t.Title, Table: t, Chart: chart, Values: values}, nil
}
