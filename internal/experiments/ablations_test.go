package experiments

import "testing"

func TestAblationsListAndByID(t *testing.T) {
	abls := Ablations()
	if len(abls) != 11 {
		t.Fatalf("ablations = %d, want 11", len(abls))
	}
	for _, e := range abls {
		got, err := ByID(e.ID)
		if err != nil || got.ID != e.ID {
			t.Errorf("ByID(%s): %v", e.ID, err)
		}
	}
}

func TestAblBatchRAMResilience(t *testing.T) {
	res := mustRun(t, AblBatchRAM)
	// One window of M2X data is 20.5 KB: with 32 KB usable there is exactly
	// one flush per window; with 1 KB many.
	if res.Values["flushes:32KB"] != 1 {
		t.Errorf("flushes at 32KB = %v, want 1", res.Values["flushes:32KB"])
	}
	if res.Values["flushes:1KB"] < 10 {
		t.Errorf("flushes at 1KB = %v, want many", res.Values["flushes:1KB"])
	}
	// The headline finding: savings degrade only mildly under RAM pressure
	// because the CPU still sleeps between flushes.
	drop := res.Values["saving:32KB"] - res.Values["saving:1KB"]
	if drop < 0 || drop > 0.15 {
		t.Errorf("saving drop from 32KB to 1KB = %.3f, want small and nonnegative", drop)
	}
}

func TestAblLinkBandwidthTrends(t *testing.T) {
	res := mustRun(t, AblLinkBandwidth)
	// Batching's edge grows with bandwidth (the bulk transfer shrinks while
	// the baseline's per-sample framing overhead remains).
	if res.Values["batching:29KBps"] >= res.Values["batching:936KBps"] {
		t.Errorf("batching saving not increasing with bandwidth: %.2f vs %.2f",
			res.Values["batching:29KBps"], res.Values["batching:936KBps"])
	}
	// COM stays high everywhere — it eliminates the transfer entirely.
	for _, key := range []string{"com:29KBps", "com:117KBps", "com:936KBps"} {
		if res.Values[key] < 0.7 {
			t.Errorf("%s = %.2f, want >= 0.7", key, res.Values[key])
		}
	}
}

func TestAblGovernorSleepDominates(t *testing.T) {
	res := mustRun(t, AblGovernor)
	with := res.Values["withSleep"]
	without := res.Values["withoutSleep"]
	if without >= with {
		t.Fatalf("disabling sleep did not reduce savings: %.2f vs %.2f", without, with)
	}
	// The paper's §III-A split for the step counter: ~50 points from
	// sleeping vs ~13 from interrupt elimination. Sleep must contribute
	// more than half of the total saving.
	if with-without < with/2 {
		t.Errorf("sleep contributes %.2f of %.2f, want > half", with-without, with)
	}
	if without < 0.05 {
		t.Errorf("interrupt amortization alone = %.2f, want > 0.05", without)
	}
}

func TestAblMCUSlowdownMonotone(t *testing.T) {
	res := mustRun(t, AblMCUSlowdown)
	if res.Values["avg:5x"] <= res.Values["avg:160x"] {
		t.Error("speedup not decreasing with MCU slowdown")
	}
	if res.Values["slower:5x"] != 0 {
		t.Errorf("apps slower at 5x = %v, want 0", res.Values["slower:5x"])
	}
	if res.Values["slower:160x"] < 3 {
		t.Errorf("apps slower at 160x = %v, want >= 3", res.Values["slower:160x"])
	}
	// At the paper's 19x, exactly A3 and A8 are slower (Fig. 13).
	if res.Values["slower:19x"] != 2 {
		t.Errorf("apps slower at 19x = %v, want 2", res.Values["slower:19x"])
	}
}

func TestAblFaultsOverheadGrows(t *testing.T) {
	res := mustRun(t, AblFaults)
	// No faults: no retries, no drops.
	if res.Values["retries:0"] != 0 || res.Values["dropped:0"] != 0 {
		t.Errorf("clean run has retries=%v dropped=%v",
			res.Values["retries:0"], res.Values["dropped:0"])
	}
	// Collection energy grows monotonically with the failure rate.
	if !(res.Values["collection:0"] < res.Values["collection:10"] &&
		res.Values["collection:10"] < res.Values["collection:1"]) {
		t.Errorf("collection energy not increasing: %.4f, %.4f, %.4f",
			res.Values["collection:0"], res.Values["collection:10"], res.Values["collection:1"])
	}
	// Persistent failure (every attempt) drops the whole window.
	if res.Values["dropped:1"] != 1000 {
		t.Errorf("dropped at fail-every-1 = %v, want 1000", res.Values["dropped:1"])
	}
}

func TestAblChaosScenarios(t *testing.T) {
	res := mustRun(t, AblChaos)
	// The clean scenario is its own reference: zero energy delta, everything
	// delivered, nothing injected.
	if res.Values["delta:clean"] != 0 || res.Values["delivered:clean"] != 1 {
		t.Errorf("clean row: delta=%v delivered=%v, want 0 and 1",
			res.Values["delta:clean"], res.Values["delivered:clean"])
	}
	// Link corruption retransmits and costs energy; adding loss costs more.
	if res.Values["retx:corrupt"] == 0 || res.Values["delta:corrupt"] <= 0 {
		t.Errorf("corrupt row: retx=%v delta=%v, want both positive",
			res.Values["retx:corrupt"], res.Values["delta:corrupt"])
	}
	if res.Values["delta:corruptloss"] <= res.Values["delta:corrupt"] {
		t.Errorf("loss on top of corruption cheaper: %v vs %v",
			res.Values["delta:corruptloss"], res.Values["delta:corrupt"])
	}
	// Slow reads keep the sensor powered longer.
	if res.Values["delta:sensor"] <= 0 {
		t.Errorf("sensor row delta = %v, want positive", res.Values["delta:sensor"])
	}
	// The crash reboots once and the watchdog walks the ladder.
	if res.Values["crashes:crash"] != 1 || res.Values["degraded:crash"] < 1 {
		t.Errorf("crash row: crashes=%v degraded=%v, want 1 and >= 1",
			res.Values["crashes:crash"], res.Values["degraded:crash"])
	}
	// The bounded radio queue drops bursts during the outage.
	if res.Values["radiodrops:outage"] == 0 {
		t.Error("outage row dropped no bursts at a 100 B buffer")
	}
}

func TestAblDMASavings(t *testing.T) {
	res := mustRun(t, AblDMA)
	// DMA must help every scenario, and help the transfer-bound baseline
	// most.
	for key, v := range res.Values {
		if v <= 0 {
			t.Errorf("%s DMA saving = %.3f, want > 0", key, v)
		}
	}
	if res.Values["A2 baseline"] <= res.Values["A11+A6 batching"] {
		t.Error("DMA helps a batched heavy mix more than a transfer-bound baseline")
	}
}

func TestAblProfileMeasuresRealCode(t *testing.T) {
	res := mustRun(t, AblProfile)
	// Every app's real computation allocates something and takes time;
	// the JPEG codec is by far the hungriest of the ten.
	for _, id := range []string{"A2", "A9"} {
		if res.Values["alloc:"+id] <= 0 {
			t.Errorf("%s measured alloc = %v", id, res.Values["alloc:"+id])
		}
		if res.Values["wallMs:"+id] <= 0 {
			t.Errorf("%s measured wall = %v", id, res.Values["wallMs:"+id])
		}
	}
	if res.Values["alloc:A9"] < res.Values["alloc:A2"] {
		t.Errorf("JPEG (%v B) allocates less than step counter (%v B)",
			res.Values["alloc:A9"], res.Values["alloc:A2"])
	}
}

func TestAblHarvestSurvivalRanking(t *testing.T) {
	// AblHarvest enforces its own hard gates (contrast, consistency, replay,
	// worker independence) — mustRun failing IS the test. On top of that,
	// pin the headline physics of the current calibration.
	res := mustRun(t, AblHarvest)
	if res.Values["brownoutSchemes"] < 1 || res.Values["survivorSchemes"] < 1 {
		t.Fatalf("calibration lost contrast: %v brownouts, %v survivors",
			res.Values["brownoutSchemes"], res.Values["survivorSchemes"])
	}
	// The frugal schemes outlive the hungry ones: COM survives with the most
	// charge left, while BCOM — the energy tables' heavy-weight winner —
	// browns out first. The survival ranking is not the energy ranking.
	if res.Values["survival:com"] <= res.Values["survival:bcom"] {
		t.Errorf("com survives %vs <= bcom %vs",
			res.Values["survival:com"], res.Values["survival:bcom"])
	}
	if res.Values["brownouts:bcom"] < 1 {
		t.Errorf("bcom browned out %v times, want >= 1", res.Values["brownouts:bcom"])
	}
	if res.Values["soc:com"] <= res.Values["soc:batching"] {
		t.Errorf("com final SoC %v <= batching %v",
			res.Values["soc:com"], res.Values["soc:batching"])
	}
	// Brownout downtime costs delivered samples; survivors deliver in full.
	if res.Values["delivered:batching"] != 1 {
		t.Errorf("batching delivered %v, want 1 (it never browned out)",
			res.Values["delivered:batching"])
	}
	if res.Values["delivered:bcom"] >= 1 {
		t.Errorf("bcom delivered %v, want < 1 (it spent time dark)",
			res.Values["delivered:bcom"])
	}
}
