package edge

import (
	"math"
	"testing"
	"time"

	"iothub/internal/energy"
	"iothub/internal/sim"
)

func testParams() Params {
	return Params{
		CapacityMIPS: 1000,
		ActiveW:      2,
		InitPerMB:    1 * time.Millisecond,
		RTT:          10 * time.Millisecond,
		ResultCPU:    100 * time.Microsecond,
		Omega:        0.5,
		TRefSec:      5,
		ERefJoules:   5,
	}
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("DefaultParams invalid: %v", err)
	}
	bad := []func(*Params){
		func(p *Params) { p.CapacityMIPS = 0 },
		func(p *Params) { p.ActiveW = -1 },
		func(p *Params) { p.IdleW = -1 },
		func(p *Params) { p.InitPerMB = -time.Second },
		func(p *Params) { p.RTT = -time.Second },
		func(p *Params) { p.ResultCPU = -time.Second },
		func(p *Params) { p.Omega = 1.5 },
		func(p *Params) { p.TRefSec = 0 },
		func(p *Params) { p.ERefJoules = 0 },
	}
	for i, mut := range bad {
		p := DefaultParams()
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d passed validation", i)
		}
	}
}

func TestDerivedTimes(t *testing.T) {
	p := testParams()
	if got := p.InitTime(2 << 20); got != 2*time.Millisecond {
		t.Errorf("InitTime(2MB) = %v, want 2ms", got)
	}
	if got := p.ComputeTime(500); got != 500*time.Millisecond {
		t.Errorf("ComputeTime(500 MI) = %v, want 500ms", got)
	}
	// omega=0.5: objective is the mean of the normalized terms.
	if got := p.Objective(5*time.Second, 5); math.Abs(got-1) > 1e-12 {
		t.Errorf("Objective(TRef, ERef) = %v, want 1", got)
	}
}

// TestSubmitTiming pins the full trip: RTT/2 up, cold init + compute, RTT/2
// down, and the warm second submission skipping the init.
func TestSubmitTiming(t *testing.T) {
	sched := sim.NewScheduler()
	meter := energy.NewMeter(sched)
	e, err := New(sched, meter, "edge", testParams())
	if err != nil {
		t.Fatal(err)
	}
	var first, second sim.Time
	// 1 MB footprint -> 1ms init; 100 MI -> 100ms compute; RTT 10ms.
	if err := e.Submit("A", 1<<20, 100, func() { first = sched.Now() }); err != nil {
		t.Fatal(err)
	}
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if want := sim.Time(111 * time.Millisecond); first != want {
		t.Errorf("cold trip returned at %v, want %v", first, want)
	}
	if !e.Warm("A") || e.Warm("B") {
		t.Errorf("warm state: A=%v B=%v", e.Warm("A"), e.Warm("B"))
	}
	if err := e.Submit("A", 1<<20, 100, func() { second = sched.Now() }); err != nil {
		t.Fatal(err)
	}
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if want := first.Add(110 * time.Millisecond); second != want {
		t.Errorf("warm trip returned at %v, want %v", second, want)
	}
	if e.Jobs() != 2 || e.ColdStarts() != 1 {
		t.Errorf("jobs=%d coldStarts=%d, want 2 and 1", e.Jobs(), e.ColdStarts())
	}
}

// TestEnergyAttribution: the busy interval (init + compute) integrates
// ActiveW into AppCompute on the edge track; concurrent jobs stack.
func TestEnergyAttribution(t *testing.T) {
	sched := sim.NewScheduler()
	meter := energy.NewMeter(sched)
	e, err := New(sched, meter, "edge", testParams())
	if err != nil {
		t.Fatal(err)
	}
	// Two zero-footprint jobs, 100 MI each, submitted together: they overlap
	// exactly, so the track draws 2 jobs x 2 W for 100ms = 0.4 J.
	if err := e.Submit("A", 0, 100, nil); err != nil {
		t.Fatal(err)
	}
	if err := e.Submit("B", 0, 100, nil); err != nil {
		t.Fatal(err)
	}
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	bd := meter.Track("edge").Breakdown()
	if got, want := bd[energy.AppCompute], 0.4; math.Abs(got-want) > 1e-9 {
		t.Errorf("edge AppCompute = %v J, want %v", got, want)
	}
	if bd[energy.Idle] != 0 {
		t.Errorf("edge Idle = %v J, want 0 (IdleW=0)", bd[energy.Idle])
	}
}

func TestSubmitRejectsNegative(t *testing.T) {
	sched := sim.NewScheduler()
	meter := energy.NewMeter(sched)
	e, err := New(sched, meter, "edge", testParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Submit("A", -1, 1, nil); err == nil {
		t.Error("negative footprint accepted")
	}
	if err := e.Submit("A", 1, -1, nil); err == nil {
		t.Error("negative MI accepted")
	}
}
