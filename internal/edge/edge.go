// Package edge models the third compute tier above the hub: a remote
// container executor in the style of the ELCO simulation (container init
// cost per MB of footprint, transmit energy charged to the radio that
// carries the upload, round-trip latency on the virtual clock, and a
// weighted latency/energy objective).
//
// The tier is deliberately asymmetric to the hub's boards. The MCU sits
// below the CPU and saves energy by never waking it; the edge sits above
// and saves energy by never running the computation locally at all — the
// hub pays only the radio airtime for the window's samples plus a small
// driver/result cost, while the container's (much faster) execution is
// billed to its own "edge" energy track. A container is cold the first
// time an app lands on it: the init warmup is proportional to the app's
// resident footprint (the MHz/MB efficiency constant of the ELCO model),
// after which the container stays warm for the rest of the run.
//
// Like every other component model, the executor is pure discrete-event
// machinery over sim.Scheduler and energy.Meter: byte-identical results for
// a given scenario, no wall-clock anywhere.
package edge

import (
	"fmt"
	"time"

	"iothub/internal/energy"
	"iothub/internal/obs"
	"iothub/internal/sim"
)

// Params calibrates the edge tier.
type Params struct {
	// CapacityMIPS is the container slice's compute throughput. Edge
	// hardware is server-class: workloads run at their full instruction
	// demand (no EffectiveMIPS memory-bound cap as on the hub CPU).
	CapacityMIPS float64
	// ActiveW is the power the hub's energy ledger is billed while its
	// container computes (init included) — the per-execution energy
	// coefficient of the ELCO model expressed as watts at CapacityMIPS.
	ActiveW float64
	// IdleW is the idle draw of the hub's warm container slice. Providers
	// bill active time, so the default is 0; a nonzero value lands in the
	// Idle routine, which the energy comparisons exclude by construction
	// (Breakdown.Attributed).
	IdleW float64
	// InitPerMB is the cold-start container init warmup per MB of app
	// footprint (the SEC_CONT_INIT_EFFI MHz/MB constant, inverted into
	// time at CapacityMIPS).
	InitPerMB time.Duration
	// RTT is the hub<->edge network round trip; an upload pays RTT/2 up
	// and the result notification RTT/2 down.
	RTT time.Duration
	// ResultCPU is the hub-CPU cost to field the returned result.
	ResultCPU time.Duration
	// Omega weights the latency/energy objective: omega*(T/TRef) +
	// (1-omega)*(E/ERef). 0 optimizes energy only, 1 latency only.
	Omega float64
	// TRefSec / ERefJoules normalize the objective's two terms.
	TRefSec    float64
	ERefJoules float64
}

// DefaultParams is the edge calibration used throughout: a container slice
// 4x the hub CPU's throughput, billed ~1/4 the hub CPU's active power
// (amortized server + network infrastructure), with LAN-grade latency.
func DefaultParams() Params {
	return Params{
		CapacityMIPS: 96000,
		ActiveW:      1.2,
		IdleW:        0,
		InitPerMB:    100 * time.Microsecond,
		RTT:          20 * time.Millisecond,
		ResultCPU:    80 * time.Microsecond,
		Omega:        0.5,
		TRefSec:      5,
		ERefJoules:   5,
	}
}

// Validate checks the calibration for obvious inconsistencies.
func (p Params) Validate() error {
	if p.CapacityMIPS <= 0 {
		return fmt.Errorf("edge: CapacityMIPS %v", p.CapacityMIPS)
	}
	if p.ActiveW < 0 || p.IdleW < 0 {
		return fmt.Errorf("edge: negative power (active %v, idle %v)", p.ActiveW, p.IdleW)
	}
	if p.InitPerMB < 0 || p.RTT < 0 || p.ResultCPU < 0 {
		return fmt.Errorf("edge: negative duration (init/MB %v, rtt %v, result %v)", p.InitPerMB, p.RTT, p.ResultCPU)
	}
	if p.Omega < 0 || p.Omega > 1 {
		return fmt.Errorf("edge: omega %v outside [0,1]", p.Omega)
	}
	if p.TRefSec <= 0 || p.ERefJoules <= 0 {
		return fmt.Errorf("edge: non-positive objective references (T %v, E %v)", p.TRefSec, p.ERefJoules)
	}
	return nil
}

// InitTime is the cold-start warmup for an app of the given resident
// footprint.
func (p Params) InitTime(footprintBytes int) time.Duration {
	mb := float64(footprintBytes) / (1 << 20)
	return time.Duration(mb * float64(p.InitPerMB))
}

// ComputeTime is the container execution time for mi million instructions.
func (p Params) ComputeTime(mi float64) time.Duration {
	return time.Duration(mi / p.CapacityMIPS * float64(time.Second))
}

// Objective is the weighted latency/energy score: omega*(T/TRef) +
// (1-omega)*(E/ERef). Lower is better; the optimizer ranks plan candidates
// with it when neither latency nor energy alone decides.
func (p Params) Objective(latency time.Duration, joules float64) float64 {
	return p.Omega*(latency.Seconds()/p.TRefSec) + (1-p.Omega)*(joules/p.ERefJoules)
}

// Edge is the remote executor bound to one hub run's virtual clock and
// energy meter. Containers run concurrently (the machine behind the slice is
// big); the track integrates ActiveW per concurrently running job.
type Edge struct {
	params Params
	sched  *sim.Scheduler
	meter  *energy.Meter
	name   string
	track  *energy.Track
	rec    *obs.Recorder
	warm   map[string]bool
	active int
	// Jobs / ColdStarts are cumulative run statistics the hub's collector
	// reads back.
	jobs       int
	coldStarts int
}

// New binds an edge executor to the scheduler and a named meter track.
func New(sched *sim.Scheduler, meter *energy.Meter, name string, params Params) (*Edge, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	e := &Edge{
		params: params,
		sched:  sched,
		meter:  meter,
		name:   name,
		track:  meter.Track(name),
		warm:   make(map[string]bool),
	}
	e.track.Set(params.IdleW, energy.Idle)
	return e, nil
}

// Reset reinitializes the executor in place for a new run, exactly as New
// would construct it: the scheduler and meter must have been reset first,
// and the track is re-requested so it registers at this call's position in
// the meter's component order. Warm-container map capacity is kept.
func (e *Edge) Reset(params Params) error {
	if err := params.Validate(); err != nil {
		return err
	}
	e.params = params
	e.track = e.meter.Track(e.name)
	e.rec = nil
	clear(e.warm)
	e.active = 0
	e.jobs = 0
	e.coldStarts = 0
	e.track.Set(params.IdleW, energy.Idle)
	return nil
}

// Observe attaches an observability recorder (nil disables the layer).
func (e *Edge) Observe(rec *obs.Recorder) { e.rec = rec }

// Warm reports whether the app's container has already been initialized.
func (e *Edge) Warm(app string) bool { return e.warm[app] }

// Jobs and ColdStarts report cumulative executions and cold container inits.
func (e *Edge) Jobs() int       { return e.jobs }
func (e *Edge) ColdStarts() int { return e.coldStarts }

// Submit ships one window's computation to the app's container: RTT/2 up,
// a cold-start init proportional to the footprint on first use, the
// execution itself at CapacityMIPS, and RTT/2 back, after which done runs
// (at the instant the result notification reaches the hub's network
// interface). The payload's airtime is the caller's: the hub charges its
// radio before submitting, so transmit energy lands on the radio track
// exactly like any other burst. Like radio.Transmit, the whole trip is
// scheduled up-front, so every scheduler error surfaces here; the event
// callbacks only move the power level.
func (e *Edge) Submit(app string, footprintBytes int, mi float64, done func()) error {
	if mi < 0 {
		return fmt.Errorf("edge: negative compute demand %v MI", mi)
	}
	if footprintBytes < 0 {
		return fmt.Errorf("edge: negative footprint %d", footprintBytes)
	}
	e.jobs++
	var init time.Duration
	if !e.warm[app] {
		// The hub submits an app's windows in order, so the container's
		// warm/cold state at submission equals its state at arrival.
		e.warm[app] = true
		e.coldStarts++
		e.rec.Inc(obs.EdgeColdStarts)
		init = e.params.InitTime(footprintBytes)
	}
	busyStart := e.sched.Now().Add(e.params.RTT / 2)
	busyEnd := busyStart.Add(init + e.params.ComputeTime(mi))
	if _, err := e.sched.At(busyStart, e.begin); err != nil {
		return fmt.Errorf("edge: schedule arrival: %w", err)
	}
	if _, err := e.sched.At(busyEnd, func() {
		e.end()
		if e.rec.Tracing() {
			if init > 0 {
				e.rec.Span("edge", "init "+app, busyStart, busyStart.Add(init))
			}
			e.rec.Span("edge", "compute "+app, busyStart.Add(init), busyEnd)
		}
	}); err != nil {
		return fmt.Errorf("edge: schedule completion: %w", err)
	}
	if done != nil {
		if _, err := e.sched.At(busyEnd.Add(e.params.RTT/2), done); err != nil {
			return fmt.Errorf("edge: schedule result return: %w", err)
		}
	}
	return nil
}

// begin / end maintain the concurrency-aware power level: the track draws
// ActiveW per running job (attributed to AppCompute), falling back to IdleW
// when the slice drains.
func (e *Edge) begin() {
	e.active++
	e.track.Set(e.params.ActiveW*float64(e.active), energy.AppCompute)
}

func (e *Edge) end() {
	e.active--
	if e.active <= 0 {
		e.active = 0
		e.track.Set(e.params.IdleW, energy.Idle)
		return
	}
	e.track.Set(e.params.ActiveW*float64(e.active), energy.AppCompute)
}
