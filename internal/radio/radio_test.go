package radio

import (
	"math"
	"testing"
	"time"

	"iothub/internal/energy"
	"iothub/internal/sim"
)

func newRadio(t *testing.T, params Params) (*Radio, *sim.Scheduler, *energy.Meter) {
	t.Helper()
	s := sim.NewScheduler()
	m := energy.NewMeter(s)
	r, err := New(s, m, "radio", params)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return r, s, m
}

func TestParamsValidate(t *testing.T) {
	bad := DefaultMainParams()
	bad.BytesPerSec = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero goodput accepted")
	}
	bad = DefaultMainParams()
	bad.PerTxOverhead = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative overhead accepted")
	}
	bad = DefaultMainParams()
	bad.TxW, bad.IdleW = 0.1, 0.5
	if err := bad.Validate(); err == nil {
		t.Error("TxW < IdleW accepted")
	}
}

func TestTxDuration(t *testing.T) {
	r, _, _ := newRadio(t, Params{TxW: 1, IdleW: 0, BytesPerSec: 1000, PerTxOverhead: time.Millisecond})
	if got := r.TxDuration(0); got != 0 {
		t.Errorf("empty burst duration = %v", got)
	}
	if got := r.TxDuration(1000); got != time.Millisecond+time.Second {
		t.Errorf("1000B duration = %v", got)
	}
}

func TestTransmitEnergy(t *testing.T) {
	params := Params{TxW: 0.7, IdleW: 0, BytesPerSec: 1000, PerTxOverhead: 0}
	r, s, m := newRadio(t, params)
	done := false
	if err := r.Transmit(500, energy.AppCompute, func() { done = true }); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("done never ran")
	}
	got := m.Total()[energy.AppCompute]
	want := 0.7 * 0.5
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("tx energy = %v, want %v", got, want)
	}
}

func TestTransmitSerializesBursts(t *testing.T) {
	params := Params{TxW: 1, IdleW: 0, BytesPerSec: 1000, PerTxOverhead: 0}
	r, s, m := newRadio(t, params)
	var ends []sim.Time
	for i := 0; i < 3; i++ {
		if err := r.Transmit(100, energy.AppCompute, func() { ends = append(ends, s.Now()) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(ends) != 3 {
		t.Fatalf("ends = %d", len(ends))
	}
	if ends[2] != sim.Time(300*time.Millisecond) {
		t.Errorf("third burst ended at %v, want 300ms", ends[2])
	}
	// Exactly 300 ms of airtime at 1 W.
	if got := m.Total()[energy.AppCompute]; math.Abs(got-0.3) > 1e-9 {
		t.Errorf("airtime energy = %v, want 0.3", got)
	}
}

func TestTransmitZeroAndNegative(t *testing.T) {
	r, s, m := newRadio(t, DefaultMCUParams())
	ran := false
	if err := r.Transmit(0, energy.AppCompute, func() { ran = true }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("zero-byte done not invoked synchronously")
	}
	if err := r.Transmit(-1, energy.AppCompute, nil); err == nil {
		t.Error("negative payload accepted")
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Total()[energy.AppCompute]; got != 0 {
		t.Errorf("energy = %v, want 0", got)
	}
}

func TestIdleDraw(t *testing.T) {
	r, s, m := newRadio(t, DefaultMainParams())
	_ = r
	if err := s.RunUntil(sim.Time(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	got := m.Total()[energy.Idle]
	want := DefaultMainParams().IdleW * 2
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("idle energy = %v, want %v", got, want)
	}
}

func TestBackToBackKeepsTxLevel(t *testing.T) {
	params := Params{TxW: 1, IdleW: 0.1, BytesPerSec: 1000, PerTxOverhead: 0}
	r, s, m := newRadio(t, params)
	if err := r.Transmit(100, energy.AppCompute, nil); err != nil {
		t.Fatal(err)
	}
	if err := r.Transmit(100, energy.AppCompute, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntil(sim.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	b := m.Total()
	// 200 ms at 1 W, 800 ms idle at 0.1 W — the first burst's end must not
	// drop the level mid-queue.
	if math.Abs(b[energy.AppCompute]-0.2) > 1e-9 {
		t.Errorf("tx energy = %v, want 0.2", b[energy.AppCompute])
	}
	if math.Abs(b[energy.Idle]-0.08) > 1e-9 {
		t.Errorf("idle energy = %v, want 0.08", b[energy.Idle])
	}
}
