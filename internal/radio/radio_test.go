package radio

import (
	"math"
	"testing"
	"time"

	"iothub/internal/energy"
	"iothub/internal/sim"
)

func newRadio(t *testing.T, params Params) (*Radio, *sim.Scheduler, *energy.Meter) {
	t.Helper()
	s := sim.NewScheduler()
	m := energy.NewMeter(s)
	r, err := New(s, m, "radio", params)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return r, s, m
}

func TestParamsValidate(t *testing.T) {
	bad := DefaultMainParams()
	bad.BytesPerSec = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero goodput accepted")
	}
	bad = DefaultMainParams()
	bad.PerTxOverhead = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative overhead accepted")
	}
	bad = DefaultMainParams()
	bad.TxW, bad.IdleW = 0.1, 0.5
	if err := bad.Validate(); err == nil {
		t.Error("TxW < IdleW accepted")
	}
}

func TestTxDuration(t *testing.T) {
	r, _, _ := newRadio(t, Params{TxW: 1, IdleW: 0, BytesPerSec: 1000, PerTxOverhead: time.Millisecond})
	if got := r.TxDuration(0); got != 0 {
		t.Errorf("empty burst duration = %v", got)
	}
	if got := r.TxDuration(1000); got != time.Millisecond+time.Second {
		t.Errorf("1000B duration = %v", got)
	}
}

func TestTransmitEnergy(t *testing.T) {
	params := Params{TxW: 0.7, IdleW: 0, BytesPerSec: 1000, PerTxOverhead: 0}
	r, s, m := newRadio(t, params)
	done := false
	if err := r.Transmit(500, energy.AppCompute, func() { done = true }); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("done never ran")
	}
	got := m.Total()[energy.AppCompute]
	want := 0.7 * 0.5
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("tx energy = %v, want %v", got, want)
	}
}

func TestTransmitSerializesBursts(t *testing.T) {
	params := Params{TxW: 1, IdleW: 0, BytesPerSec: 1000, PerTxOverhead: 0}
	r, s, m := newRadio(t, params)
	var ends []sim.Time
	for i := 0; i < 3; i++ {
		if err := r.Transmit(100, energy.AppCompute, func() { ends = append(ends, s.Now()) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(ends) != 3 {
		t.Fatalf("ends = %d", len(ends))
	}
	if ends[2] != sim.Time(300*time.Millisecond) {
		t.Errorf("third burst ended at %v, want 300ms", ends[2])
	}
	// Exactly 300 ms of airtime at 1 W.
	if got := m.Total()[energy.AppCompute]; math.Abs(got-0.3) > 1e-9 {
		t.Errorf("airtime energy = %v, want 0.3", got)
	}
}

func TestTransmitZeroAndNegative(t *testing.T) {
	r, s, m := newRadio(t, DefaultMCUParams())
	ran := false
	if err := r.Transmit(0, energy.AppCompute, func() { ran = true }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("zero-byte done not invoked synchronously")
	}
	if err := r.Transmit(-1, energy.AppCompute, nil); err == nil {
		t.Error("negative payload accepted")
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Total()[energy.AppCompute]; got != 0 {
		t.Errorf("energy = %v, want 0", got)
	}
}

func TestIdleDraw(t *testing.T) {
	r, s, m := newRadio(t, DefaultMainParams())
	_ = r
	if err := s.RunUntil(sim.Time(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	got := m.Total()[energy.Idle]
	want := DefaultMainParams().IdleW * 2
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("idle energy = %v, want %v", got, want)
	}
}

func TestBackToBackKeepsTxLevel(t *testing.T) {
	params := Params{TxW: 1, IdleW: 0.1, BytesPerSec: 1000, PerTxOverhead: 0}
	r, s, m := newRadio(t, params)
	if err := r.Transmit(100, energy.AppCompute, nil); err != nil {
		t.Fatal(err)
	}
	if err := r.Transmit(100, energy.AppCompute, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntil(sim.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	b := m.Total()
	// 200 ms at 1 W, 800 ms idle at 0.1 W — the first burst's end must not
	// drop the level mid-queue.
	if math.Abs(b[energy.AppCompute]-0.2) > 1e-9 {
		t.Errorf("tx energy = %v, want 0.2", b[energy.AppCompute])
	}
	if math.Abs(b[energy.Idle]-0.08) > 1e-9 {
		t.Errorf("idle energy = %v, want 0.08", b[energy.Idle])
	}
}

func TestOutageDefersBurst(t *testing.T) {
	r, s, _ := newRadio(t, DefaultMCUParams())
	if err := r.AddOutage(sim.Time(0), sim.Time(50*time.Millisecond)); err != nil {
		t.Fatalf("AddOutage: %v", err)
	}
	var doneAt sim.Time
	if err := r.Transmit(300, energy.AppCompute, func() { doneAt = s.Now() }); err != nil {
		t.Fatalf("Transmit: %v", err)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := sim.Time(50 * time.Millisecond).Add(r.TxDuration(300))
	if doneAt != want {
		t.Errorf("burst finished at %v, want %v (deferred past the outage)", doneAt, want)
	}
	if r.Deferred() != 1 || r.DroppedBursts() != 0 {
		t.Errorf("deferred=%d dropped=%d, want 1 deferred", r.Deferred(), r.DroppedBursts())
	}
}

func TestBoundedQueueDropsOverflow(t *testing.T) {
	r, s, _ := newRadio(t, DefaultMCUParams())
	if err := r.AddOutage(sim.Time(0), sim.Time(100*time.Millisecond)); err != nil {
		t.Fatalf("AddOutage: %v", err)
	}
	r.SetQueueLimit(500)
	delivered := 0
	dropped := 0
	for i := 0; i < 3; i++ {
		if err := r.Transmit(300, energy.AppCompute, func() {
			if s.Now() == 0 {
				dropped++ // drop callbacks run synchronously at submit time
			} else {
				delivered++
			}
		}); err != nil {
			t.Fatalf("Transmit %d: %v", i, err)
		}
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// 500-byte buffer holds one 300-byte burst during the outage; the second
	// would overflow (600 > 500) and is dropped. The third arrives after the
	// first dequeues... it is submitted at t=0 too, so it also overflows.
	if r.DroppedBursts() != 2 || r.DroppedBytes() != 600 {
		t.Errorf("dropped %d bursts / %d bytes, want 2 / 600", r.DroppedBursts(), r.DroppedBytes())
	}
	if delivered != 1 || dropped != 2 {
		t.Errorf("delivered=%d dropped-callbacks=%d, want 1 and 2", delivered, dropped)
	}
}

func TestOutageFreePathUnchanged(t *testing.T) {
	a, sa, ma := newRadio(t, DefaultMainParams())
	b, sb, mb := newRadio(t, DefaultMainParams())
	if err := b.AddOutage(sim.Time(time.Hour), sim.Time(2*time.Hour)); err != nil {
		t.Fatalf("AddOutage: %v", err)
	}
	b.SetQueueLimit(10)
	for _, r := range []*Radio{a, b} {
		if err := r.Transmit(1000, energy.AppCompute, nil); err != nil {
			t.Fatalf("Transmit: %v", err)
		}
	}
	if err := sa.RunUntil(sim.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := sb.RunUntil(sim.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	if ea, eb := ma.Total().Total(), mb.Total().Total(); ea != eb {
		t.Errorf("energy diverged with an un-hit outage: %v vs %v", ea, eb)
	}
	if b.Deferred() != 0 || b.DroppedBursts() != 0 {
		t.Errorf("un-hit outage deferred=%d dropped=%d", b.Deferred(), b.DroppedBursts())
	}
}

func TestAddOutageRejectsEmptySpan(t *testing.T) {
	r, _, _ := newRadio(t, DefaultMainParams())
	if err := r.AddOutage(sim.Time(5), sim.Time(5)); err == nil {
		t.Error("empty outage accepted")
	}
	if err := r.AddOutage(sim.Time(-1), sim.Time(5)); err == nil {
		t.Error("negative outage accepted")
	}
}
