// Package radio models the hub's uplink network interfaces — the main
// board's WiFi NIC and the ESP8266's integrated radio. IoT apps exist to
// push their user-level outputs to a phone or cloud endpoint (§I), so the
// upstream burst that follows each window's computation is part of the
// system's energy story: on-CPU apps uplink through the main NIC, offloaded
// apps through the MCU's own radio.
//
// A transmission costs a fixed association/queueing overhead plus payload
// time at the effective uplink rate; the radio draws TxW for that span and
// IdleW otherwise. Host-CPU involvement is a small driver cost charged by
// the hub, not here (NICs DMA their frames).
package radio

import (
	"fmt"
	"time"

	"iothub/internal/energy"
	"iothub/internal/sim"
)

// Params are one radio's calibration constants.
type Params struct {
	// TxW is the draw while transmitting.
	TxW float64
	// IdleW is the draw while associated but idle.
	IdleW float64
	// BytesPerSec is the effective uplink goodput.
	BytesPerSec float64
	// PerTxOverhead is the fixed cost per burst (wakeup, contention,
	// association upkeep).
	PerTxOverhead time.Duration
}

// DefaultMainParams returns the Raspberry Pi 3B onboard WiFi calibration.
func DefaultMainParams() Params {
	return Params{
		TxW:           0.70,
		IdleW:         0.03,
		BytesPerSec:   1_250_000,
		PerTxOverhead: 2 * time.Millisecond,
	}
}

// DefaultMCUParams returns the ESP8266 integrated-radio calibration: lower
// goodput, similar transmit draw.
func DefaultMCUParams() Params {
	return Params{
		TxW:           0.66,
		IdleW:         0.02,
		BytesPerSec:   300_000,
		PerTxOverhead: 3 * time.Millisecond,
	}
}

// Validate checks the calibration.
func (p Params) Validate() error {
	if p.BytesPerSec <= 0 {
		return fmt.Errorf("radio: BytesPerSec %v", p.BytesPerSec)
	}
	if p.PerTxOverhead < 0 {
		return fmt.Errorf("radio: negative overhead %v", p.PerTxOverhead)
	}
	if p.TxW < p.IdleW {
		return fmt.Errorf("radio: TxW %v below IdleW %v", p.TxW, p.IdleW)
	}
	return nil
}

// Radio is one uplink instance with its own energy track.
type Radio struct {
	params Params
	sched  *sim.Scheduler
	track  *energy.Track
	// busyUntil serializes bursts on the single air interface.
	busyUntil sim.Time
}

// New returns an idle radio metered on the named track.
func New(sched *sim.Scheduler, meter *energy.Meter, name string, params Params) (*Radio, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	r := &Radio{params: params, sched: sched, track: meter.Track(name)}
	r.track.Set(params.IdleW, energy.Idle)
	return r, nil
}

// Params returns the radio's calibration constants.
func (r *Radio) Params() Params { return r.params }

// TxDuration is the airtime one burst of n bytes occupies.
func (r *Radio) TxDuration(n int) time.Duration {
	if n <= 0 {
		return 0
	}
	return r.params.PerTxOverhead +
		time.Duration(float64(n)/r.params.BytesPerSec*float64(time.Second))
}

// Transmit queues a burst of n bytes; done (may be nil) runs when the burst
// has left the air. Bursts serialize on the single interface. Airtime energy
// is attributed to routine rt.
func (r *Radio) Transmit(n int, rt energy.Routine, done func()) error {
	if n < 0 {
		return fmt.Errorf("radio: negative payload %d", n)
	}
	d := r.TxDuration(n)
	start := r.sched.Now()
	if r.busyUntil > start {
		start = r.busyUntil
	}
	end := start.Add(d)
	r.busyUntil = end
	if d == 0 {
		if done != nil {
			done()
		}
		return nil
	}
	if _, err := r.sched.At(start, func() { r.track.Set(r.params.TxW, rt) }); err != nil {
		return fmt.Errorf("radio: schedule tx start: %w", err)
	}
	_, err := r.sched.At(end, func() {
		// A back-to-back burst may already have re-raised the power level;
		// only drop to idle when this burst is the last queued.
		if r.busyUntil == end {
			r.track.Set(r.params.IdleW, energy.Idle)
		}
		if done != nil {
			done()
		}
	})
	if err != nil {
		return fmt.Errorf("radio: schedule tx end: %w", err)
	}
	return nil
}

// Track exposes the radio's energy track.
func (r *Radio) Track() *energy.Track { return r.track }
