// Package radio models the hub's uplink network interfaces — the main
// board's WiFi NIC and the ESP8266's integrated radio. IoT apps exist to
// push their user-level outputs to a phone or cloud endpoint (§I), so the
// upstream burst that follows each window's computation is part of the
// system's energy story: on-CPU apps uplink through the main NIC, offloaded
// apps through the MCU's own radio.
//
// A transmission costs a fixed association/queueing overhead plus payload
// time at the effective uplink rate; the radio draws TxW for that span and
// IdleW otherwise. Host-CPU involvement is a small driver cost charged by
// the hub, not here (NICs DMA their frames).
package radio

import (
	"fmt"
	"time"

	"iothub/internal/energy"
	"iothub/internal/obs"
	"iothub/internal/sim"
)

// Params are one radio's calibration constants.
type Params struct {
	// TxW is the draw while transmitting.
	TxW float64
	// IdleW is the draw while associated but idle.
	IdleW float64
	// BytesPerSec is the effective uplink goodput.
	BytesPerSec float64
	// PerTxOverhead is the fixed cost per burst (wakeup, contention,
	// association upkeep).
	PerTxOverhead time.Duration
}

// DefaultMainParams returns the Raspberry Pi 3B onboard WiFi calibration.
func DefaultMainParams() Params {
	return Params{
		TxW:           0.70,
		IdleW:         0.03,
		BytesPerSec:   1_250_000,
		PerTxOverhead: 2 * time.Millisecond,
	}
}

// DefaultMCUParams returns the ESP8266 integrated-radio calibration: lower
// goodput, similar transmit draw.
func DefaultMCUParams() Params {
	return Params{
		TxW:           0.66,
		IdleW:         0.02,
		BytesPerSec:   300_000,
		PerTxOverhead: 3 * time.Millisecond,
	}
}

// Validate checks the calibration.
func (p Params) Validate() error {
	if p.BytesPerSec <= 0 {
		return fmt.Errorf("radio: BytesPerSec %v", p.BytesPerSec)
	}
	if p.PerTxOverhead < 0 {
		return fmt.Errorf("radio: negative overhead %v", p.PerTxOverhead)
	}
	if p.TxW < p.IdleW {
		return fmt.Errorf("radio: TxW %v below IdleW %v", p.TxW, p.IdleW)
	}
	return nil
}

// outage is one span the radio is off the air (fault injection).
type outage struct{ from, until sim.Time }

// Radio is one uplink instance with its own energy track.
type Radio struct {
	params Params
	sched  *sim.Scheduler
	meter  *energy.Meter
	track  *energy.Track
	name   string // track name, doubles as the span track ("radio:main")
	obs    *obs.Recorder
	// busyUntil serializes bursts on the single air interface.
	busyUntil sim.Time

	// Fault-injection state: outage windows defer bursts, the bounded queue
	// drops what the buffer cannot hold while waiting.
	outages       []outage
	queueLimit    int
	queuedBytes   int
	deferred      int
	droppedBursts int
	droppedBytes  int
}

// New returns an idle radio metered on the named track.
func New(sched *sim.Scheduler, meter *energy.Meter, name string, params Params) (*Radio, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	r := &Radio{params: params, sched: sched, meter: meter, track: meter.Track(name), name: name}
	r.track.Set(params.IdleW, energy.Idle)
	return r, nil
}

// Reset reinitializes the radio in place for a new run, exactly as New would
// construct it: the scheduler and meter must have been reset first, and the
// track is re-requested so it registers at this call's position in the
// meter's component order. Outage-list capacity is kept.
func (r *Radio) Reset(params Params) error {
	if err := params.Validate(); err != nil {
		return err
	}
	r.params = params
	r.track = r.meter.Track(r.name)
	r.obs = nil
	r.busyUntil = 0
	r.outages = r.outages[:0]
	r.queueLimit = 0
	r.queuedBytes = 0
	r.deferred = 0
	r.droppedBursts = 0
	r.droppedBytes = 0
	r.track.Set(params.IdleW, energy.Idle)
	return nil
}

// Observe attaches an observability recorder: burst/byte counters and
// airtime spans. A nil recorder costs one branch per burst.
func (r *Radio) Observe(rec *obs.Recorder) { r.obs = rec }

// Params returns the radio's calibration constants.
func (r *Radio) Params() Params { return r.params }

// TxDuration is the airtime one burst of n bytes occupies.
func (r *Radio) TxDuration(n int) time.Duration {
	if n <= 0 {
		return 0
	}
	return r.params.PerTxOverhead +
		time.Duration(float64(n)/r.params.BytesPerSec*float64(time.Second))
}

// AddOutage takes the radio off the air for [from, until): bursts that would
// start inside the span wait it out in the driver queue (bounded by
// SetQueueLimit). Outages must be added before the affected instants.
func (r *Radio) AddOutage(from, until sim.Time) error {
	if until <= from || from < 0 {
		return fmt.Errorf("radio: outage [%v, %v) is empty or negative", from, until)
	}
	r.outages = append(r.outages, outage{from: from, until: until})
	// Keep sorted by start so deferral resolves in one forward pass.
	for i := len(r.outages) - 1; i > 0 && r.outages[i].from < r.outages[i-1].from; i-- {
		r.outages[i], r.outages[i-1] = r.outages[i-1], r.outages[i]
	}
	return nil
}

// SetQueueLimit bounds the bytes the driver buffers for bursts waiting out
// an outage; 0 means unbounded. Bursts that would overflow the buffer are
// dropped and accounted.
func (r *Radio) SetQueueLimit(bytes int) { r.queueLimit = bytes }

// Deferred counts bursts that waited out at least one outage.
func (r *Radio) Deferred() int { return r.deferred }

// DroppedBursts counts bursts dropped at the bounded queue.
func (r *Radio) DroppedBursts() int { return r.droppedBursts }

// DroppedBytes counts payload bytes dropped at the bounded queue.
func (r *Radio) DroppedBytes() int { return r.droppedBytes }

// Transmit queues a burst of n bytes; done (may be nil) runs when the burst
// has left the air. Bursts serialize on the single interface. Airtime energy
// is attributed to routine rt.
func (r *Radio) Transmit(n int, rt energy.Routine, done func()) error {
	if n < 0 {
		return fmt.Errorf("radio: negative payload %d", n)
	}
	d := r.TxDuration(n)
	start := r.sched.Now()
	if r.busyUntil > start {
		start = r.busyUntil
	}
	// An outage defers the burst to the moment the radio is back; the
	// payload sits in the (bounded) driver queue in the meantime. A burst
	// submitted while the radio is down is buffered even when earlier queued
	// bursts already pushed its airtime past the outage.
	now := r.sched.Now()
	waited := false
	for _, o := range r.outages {
		down := func(t sim.Time) bool { return t >= o.from && t < o.until }
		if down(now) || down(start) {
			waited = true
			if start < o.until {
				start = o.until
			}
		}
	}
	if waited {
		if r.queueLimit > 0 && r.queuedBytes+n > r.queueLimit {
			r.droppedBursts++
			r.droppedBytes += n
			if done != nil {
				done()
			}
			return nil
		}
		r.deferred++
		r.queuedBytes += n
		if _, err := r.sched.At(start, func() { r.queuedBytes -= n }); err != nil {
			return fmt.Errorf("radio: schedule dequeue: %w", err)
		}
	}
	end := start.Add(d)
	r.busyUntil = end
	r.obs.Inc(obs.RadioBursts)
	if n > 0 {
		r.obs.Add(obs.RadioBytes, uint64(n))
	}
	r.obs.Span(r.name, "burst", start, end)
	if d == 0 {
		if done != nil {
			done()
		}
		return nil
	}
	if _, err := r.sched.At(start, func() { r.track.Set(r.params.TxW, rt) }); err != nil {
		return fmt.Errorf("radio: schedule tx start: %w", err)
	}
	_, err := r.sched.At(end, func() {
		// A back-to-back burst may already have re-raised the power level;
		// only drop to idle when this burst is the last queued.
		if r.busyUntil == end {
			r.track.Set(r.params.IdleW, energy.Idle)
		}
		if done != nil {
			done()
		}
	})
	if err != nil {
		return fmt.Errorf("radio: schedule tx end: %w", err)
	}
	return nil
}

// Track exposes the radio's energy track.
func (r *Radio) Track() *energy.Track { return r.track }
