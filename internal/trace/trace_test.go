package trace

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"iothub/internal/apps/stepcounter"
	"iothub/internal/energy"
	"iothub/internal/sim"
)

func ms(n int64) sim.Time { return sim.Time(time.Duration(n) * time.Millisecond) }

func sampleTrace() []energy.Sample {
	return []energy.Sample{
		{At: 0, Watts: 5, R: energy.DataTransfer},
		{At: ms(100), Watts: 0.35, R: energy.DataTransfer},
		{At: ms(900), Watts: 5, R: energy.AppCompute},
	}
}

func TestOccupancy(t *testing.T) {
	occ := Occupancy(sampleTrace(), ms(1000))
	if got := occ[5.0]; got != 200*time.Millisecond {
		t.Errorf("active dwell = %v, want 200ms", got)
	}
	if got := occ[0.35]; got != 800*time.Millisecond {
		t.Errorf("sleep dwell = %v, want 800ms", got)
	}
	if len(Occupancy(nil, ms(10))) != 0 {
		t.Error("empty trace produced occupancy")
	}
	if len(Occupancy(sampleTrace(), 0)) != 0 {
		t.Error("zero end produced occupancy")
	}
}

func TestOccupancyIgnoresSamplesPastEnd(t *testing.T) {
	occ := Occupancy(sampleTrace(), ms(500))
	if got := occ[5.0]; got != 100*time.Millisecond {
		t.Errorf("active dwell = %v, want 100ms", got)
	}
	if got := occ[0.35]; got != 400*time.Millisecond {
		t.Errorf("sleep dwell = %v, want 400ms", got)
	}
}

func TestResample(t *testing.T) {
	wave, err := Resample(sampleTrace(), 100*time.Millisecond, ms(1000))
	if err != nil {
		t.Fatal(err)
	}
	if len(wave) != 10 {
		t.Fatalf("bins = %d, want 10", len(wave))
	}
	if math.Abs(wave[0]-5) > 1e-9 {
		t.Errorf("bin 0 = %v, want 5", wave[0])
	}
	if math.Abs(wave[5]-0.35) > 1e-9 {
		t.Errorf("bin 5 = %v, want 0.35", wave[5])
	}
	if math.Abs(wave[9]-5) > 1e-9 {
		t.Errorf("bin 9 = %v, want 5", wave[9])
	}
}

func TestResampleAveragesWithinBin(t *testing.T) {
	samples := []energy.Sample{
		{At: 0, Watts: 4},
		{At: ms(50), Watts: 0},
	}
	wave, err := Resample(samples, 100*time.Millisecond, ms(100))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(wave[0]-2) > 1e-9 {
		t.Errorf("bin = %v, want 2 (half at 4 W)", wave[0])
	}
}

func TestResampleValidation(t *testing.T) {
	if _, err := Resample(nil, 0, ms(1)); err == nil {
		t.Error("zero step accepted")
	}
	if _, err := Resample(nil, time.Millisecond, 0); err == nil {
		t.Error("zero end accepted")
	}
	wave, err := Resample(nil, time.Millisecond, ms(5))
	if err != nil || len(wave) != 5 {
		t.Errorf("empty trace: %v, %d bins", err, len(wave))
	}
}

func TestSleepFraction(t *testing.T) {
	// 800 ms at 0.35 W out of 1 s, threshold 0.5 W.
	got := SleepFraction(sampleTrace(), 0.5, ms(1000))
	if math.Abs(got-0.8) > 1e-9 {
		t.Errorf("sleep fraction = %v, want 0.8", got)
	}
	if SleepFraction(nil, 1, 0) != 0 {
		t.Error("degenerate input not zero")
	}
}

func TestRenderASCII(t *testing.T) {
	out := RenderASCII([]float64{5, 0.3, 5}, 4)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d, want 5 (4 rows + axis)", len(lines))
	}
	if lines[0] != "# #" {
		t.Errorf("top row = %q, want %q", lines[0], "# #")
	}
	if lines[3] != "###" {
		t.Errorf("bottom row = %q, want %q", lines[3], "###")
	}
	if RenderASCII(nil, 3) != "" {
		t.Error("empty waveform rendered")
	}
	if RenderASCII([]float64{0, 0}, 2) == "" {
		t.Error("all-zero waveform not rendered")
	}
}

func TestLevels(t *testing.T) {
	got := Levels(sampleTrace())
	want := []float64{0.35, 5}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("Levels = %v, want %v", got, want)
	}
}

func TestProfileCompute(t *testing.T) {
	a, err := stepcounter.New(3)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := ProfileCompute(a, 2)
	if err != nil {
		t.Fatalf("ProfileCompute: %v", err)
	}
	if prof.ID != "A2" || prof.Windows != 2 {
		t.Errorf("profile = %+v", prof)
	}
	if prof.AllocBytesPerWindow <= 0 {
		t.Error("no allocations measured for a real computation")
	}
	if prof.WallPerWindow <= 0 {
		t.Error("no wall time measured")
	}
	if _, err := ProfileCompute(a, 0); err == nil {
		t.Error("zero windows accepted")
	}
}

// Property: resampling conserves energy — the sum of bin-average power times
// the step equals the exact integral of the piecewise-constant trace over
// the covered span.
func TestPropertyResampleConservesEnergy(t *testing.T) {
	f := func(levels []uint8, dwellMs []uint8, stepMs uint8) bool {
		n := len(levels)
		if len(dwellMs) < n {
			n = len(dwellMs)
		}
		if n == 0 {
			return true
		}
		step := time.Duration(int(stepMs)%20+1) * time.Millisecond
		var samples []energy.Sample
		at := sim.Time(0)
		for i := 0; i < n; i++ {
			samples = append(samples, energy.Sample{At: at, Watts: float64(levels[i]) / 10})
			at = at.Add(time.Duration(int(dwellMs[i])%50+1) * time.Millisecond)
		}
		end := at
		bins := int(int64(end) / int64(step))
		if bins == 0 {
			return true
		}
		covered := sim.Time(int64(bins) * int64(step))
		wave, err := Resample(samples, step, end)
		if err != nil {
			return false
		}
		var binned float64
		for _, w := range wave {
			binned += w * step.Seconds()
		}
		// Exact integral over [0, covered).
		var exact float64
		for i, s := range samples {
			segEnd := covered
			if i+1 < len(samples) && samples[i+1].At < covered {
				segEnd = samples[i+1].At
			}
			if segEnd > s.At && s.At < covered {
				hi := segEnd
				if hi > covered {
					hi = covered
				}
				exact += s.Watts * (hi - s.At).Duration().Seconds()
			}
		}
		return math.Abs(binned-exact) < 1e-9*(1+exact)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
