package trace

import (
	"testing"
	"time"

	"iothub/internal/energy"
)

// Edge cases around degenerate windows: zero-duration analyses, traces with
// a single power segment, and analysis windows extending past the recorded
// trace (the final level persists).

func TestZeroDurationAnalyses(t *testing.T) {
	tr := sampleTrace()
	if got := SleepFraction(tr, 1, 0); got != 0 {
		t.Errorf("SleepFraction over zero window = %v, want 0", got)
	}
	if got := SleepFraction(tr, 1, ms(-5)); got != 0 {
		t.Errorf("SleepFraction over negative window = %v, want 0", got)
	}
	if _, err := Resample(tr, 10*time.Millisecond, 0); err == nil {
		t.Error("Resample accepted a zero-duration window")
	}
	if _, err := Resample(tr, 10*time.Millisecond, ms(-1)); err == nil {
		t.Error("Resample accepted a negative window")
	}
	if _, err := Resample(tr, 0, ms(100)); err == nil {
		t.Error("Resample accepted a zero step")
	}
	if _, err := Resample(tr, -time.Millisecond, ms(100)); err == nil {
		t.Error("Resample accepted a negative step")
	}
}

func TestSingleSegmentTrace(t *testing.T) {
	tr := []energy.Sample{{At: 0, Watts: 2, R: energy.Idle}}
	occ := Occupancy(tr, ms(250))
	if got := occ[2.0]; got != 250*time.Millisecond {
		t.Errorf("single segment dwell = %v, want the whole 250ms window", got)
	}
	wave, err := Resample(tr, 50*time.Millisecond, ms(250))
	if err != nil {
		t.Fatal(err)
	}
	if len(wave) != 5 {
		t.Fatalf("waveform bins = %d, want 5", len(wave))
	}
	for i, w := range wave {
		if w != 2 {
			t.Errorf("bin %d = %v, want constant 2 W", i, w)
		}
	}
	if got := SleepFraction(tr, 2, ms(250)); got != 1 {
		t.Errorf("SleepFraction at threshold = %v, want 1 (level == threshold sleeps)", got)
	}
	if got := SleepFraction(tr, 1.9, ms(250)); got != 0 {
		t.Errorf("SleepFraction below level = %v, want 0", got)
	}
}

// A single segment that starts mid-window: the gap before the first sample
// carries zero power.
func TestSingleSegmentStartingLate(t *testing.T) {
	tr := []energy.Sample{{At: ms(100), Watts: 4, R: energy.Idle}}
	wave, err := Resample(tr, 100*time.Millisecond, ms(300))
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 4, 4}
	for i := range want {
		if wave[i] != want[i] {
			t.Errorf("bin %d = %v, want %v", i, wave[i], want[i])
		}
	}
	occ := Occupancy(tr, ms(300))
	if got := occ[4.0]; got != 200*time.Millisecond {
		t.Errorf("late segment dwell = %v, want 200ms", got)
	}
}

// An analysis window far longer than the trace: the last recorded level
// extends to the window's end in every analysis.
func TestWindowLargerThanTrace(t *testing.T) {
	tr := sampleTrace() // last sample at 900ms (5 W)
	end := ms(10_000)
	occ := Occupancy(tr, end)
	if got := occ[5.0]; got != (100+9_100)*time.Millisecond {
		t.Errorf("extended dwell at 5 W = %v, want 9.2s", got)
	}
	wave, err := Resample(tr, time.Second, end)
	if err != nil {
		t.Fatal(err)
	}
	if len(wave) != 10 {
		t.Fatalf("bins = %d, want 10", len(wave))
	}
	for i := 1; i < 10; i++ {
		if wave[i] != 5 {
			t.Errorf("bin %d = %v, want the final level 5 W", i, wave[i])
		}
	}
	// 100ms at 5W + 800ms at 0.35W + 100ms at 5W in the first second.
	if first := wave[0]; first != (0.1*5+0.8*0.35+0.1*5)/1 {
		t.Errorf("bin 0 = %v, want 1.28", first)
	}
	frac := SleepFraction(tr, 1, end)
	if want := 0.08; frac != want { // 800ms of 10s at/below 1 W
		t.Errorf("SleepFraction = %v, want %v", frac, want)
	}
}

// The final partial resample step is dropped, even when it is the only step.
func TestResampleDropsPartialStep(t *testing.T) {
	tr := []energy.Sample{{At: 0, Watts: 3, R: energy.Idle}}
	wave, err := Resample(tr, 300*time.Millisecond, ms(700))
	if err != nil {
		t.Fatal(err)
	}
	if len(wave) != 2 {
		t.Errorf("bins = %d, want 2 (100ms remainder dropped)", len(wave))
	}
	wave, err = Resample(tr, time.Second, ms(700))
	if err != nil {
		t.Fatal(err)
	}
	if len(wave) != 0 {
		t.Errorf("bins = %d, want 0 when the step exceeds the window", len(wave))
	}
	// Empty trace: defined waveform of zeros.
	wave, err = Resample(nil, 100*time.Millisecond, ms(300))
	if err != nil {
		t.Fatal(err)
	}
	if len(wave) != 3 || wave[0] != 0 || wave[2] != 0 {
		t.Errorf("empty-trace waveform = %v, want three zero bins", wave)
	}
}
