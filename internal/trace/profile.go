package trace

import (
	"fmt"
	"runtime"
	"time"

	"iothub/internal/apps"
)

// Profile is the measured cost of one workload's real Go implementation —
// the analog of the paper's oprofile counters, but over our substitutes.
// These measurements document the *actual* implementations; the simulator's
// energy model runs on the calibrated Figure 6 constants instead, because
// the paper's costs describe its embedded C implementations, not ours.
type Profile struct {
	ID apps.ID
	// AllocBytesPerWindow is the average heap allocated by one Compute call.
	AllocBytesPerWindow float64
	// WallPerWindow is the average wall-clock time of one Compute call on
	// the build machine.
	WallPerWindow time.Duration
	// Windows is how many windows were measured.
	Windows int
}

// ProfileCompute measures windows of the app's real computation: collect the
// synthetic inputs, then time and memory-profile Compute itself.
func ProfileCompute(a apps.App, windows int) (Profile, error) {
	if windows < 1 {
		return Profile{}, fmt.Errorf("trace: windows %d", windows)
	}
	spec := a.Spec()
	inputs := make([]apps.WindowInput, 0, windows)
	for w := 0; w < windows; w++ {
		in, err := apps.CollectWindow(a, w)
		if err != nil {
			return Profile{}, fmt.Errorf("trace: collect window %d: %w", w, err)
		}
		inputs = append(inputs, in)
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for _, in := range inputs {
		if _, err := a.Compute(in); err != nil {
			return Profile{}, fmt.Errorf("trace: compute window %d: %w", in.Window, err)
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	return Profile{
		ID:                  spec.ID,
		AllocBytesPerWindow: float64(after.TotalAlloc-before.TotalAlloc) / float64(windows),
		WallPerWindow:       elapsed / time.Duration(windows),
		Windows:             windows,
	}, nil
}
