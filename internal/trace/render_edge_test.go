package trace

import (
	"strings"
	"testing"

	"iothub/internal/energy"
)

// Degenerate renderer inputs: the ASCII chart and level extraction must stay
// well-formed on empty traces, single samples, one-row charts, and the
// (nonsensical but possible) negative-watts sample.

func TestLevelsEmpty(t *testing.T) {
	if got := Levels(nil); len(got) != 0 {
		t.Errorf("Levels(nil) = %v, want empty", got)
	}
	if got := Levels([]energy.Sample{}); len(got) != 0 {
		t.Errorf("Levels([]) = %v, want empty", got)
	}
}

func TestLevelsSingleSample(t *testing.T) {
	got := Levels([]energy.Sample{{At: 0, Watts: 1.25, R: energy.Idle}})
	if len(got) != 1 || got[0] != 1.25 {
		t.Errorf("Levels = %v, want [1.25]", got)
	}
}

func TestLevelsNegativeWattsSortFirst(t *testing.T) {
	got := Levels([]energy.Sample{
		{At: 0, Watts: 2, R: energy.Idle},
		{At: ms(1), Watts: -0.5, R: energy.Idle},
		{At: ms(2), Watts: 2, R: energy.Idle},
	})
	if len(got) != 2 || got[0] != -0.5 || got[1] != 2 {
		t.Errorf("Levels = %v, want [-0.5 2]", got)
	}
}

func TestRenderASCIIHeightOne(t *testing.T) {
	out := RenderASCII([]float64{0, 3, 0.001}, 1)
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("height-1 chart has %d lines, want chart row + axis:\n%s", len(lines), out)
	}
	// Any nonzero power is visible on the bottom row, zero is blank.
	if lines[0] != " ##" {
		t.Errorf("chart row = %q, want \" ##\"", lines[0])
	}
	if lines[1] != "---" {
		t.Errorf("axis = %q, want \"---\"", lines[1])
	}
}

func TestRenderASCIIHeightZeroOrNegative(t *testing.T) {
	if out := RenderASCII([]float64{1, 2}, 0); out != "" {
		t.Errorf("height 0 rendered %q, want empty", out)
	}
	if out := RenderASCII([]float64{1, 2}, -3); out != "" {
		t.Errorf("negative height rendered %q, want empty", out)
	}
}

func TestRenderASCIISingleBin(t *testing.T) {
	out := RenderASCII([]float64{4}, 3)
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("chart has %d lines, want 3 rows + axis:\n%s", len(lines), out)
	}
	for i, line := range lines[:3] {
		if line != "#" {
			t.Errorf("row %d = %q, want full bar", i, line)
		}
	}
}

func TestRenderASCIINegativeWatts(t *testing.T) {
	// A negative bin never paints, and must not disturb its neighbors.
	out := RenderASCII([]float64{-1, 2}, 2)
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("chart has %d lines:\n%s", len(lines), out)
	}
	if lines[0] != " #" || lines[1] != " #" {
		t.Errorf("rows = %q %q, want \" #\" twice", lines[0], lines[1])
	}
	if strings.Contains(lines[0]+lines[1], "-") {
		t.Errorf("negative bin leaked into the chart:\n%s", out)
	}
}
