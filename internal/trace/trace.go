// Package trace post-processes recorded power timelines — the analysis layer
// over the Monsoon-style traces that package energy captures. It produces
// the power-state occupancy and resampled waveforms behind Figure 5 and an
// ASCII rendering for the CLI tools.
package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"iothub/internal/energy"
	"iothub/internal/sim"
)

// Occupancy reports how long a component dwelt at each power level over
// [0, end). Samples beyond end are ignored; the last level extends to end.
func Occupancy(samples []energy.Sample, end sim.Time) map[float64]time.Duration {
	out := make(map[float64]time.Duration)
	if len(samples) == 0 || end <= 0 {
		return out
	}
	for i, s := range samples {
		if s.At >= end {
			break
		}
		until := end
		if i+1 < len(samples) && samples[i+1].At < end {
			until = samples[i+1].At
		}
		if until > s.At {
			out[s.Watts] += (until - s.At).Duration()
		}
	}
	return out
}

// Resample converts a piecewise-constant trace into a fixed-step waveform of
// average watts per step over [0, end). The final partial step is dropped.
func Resample(samples []energy.Sample, step time.Duration, end sim.Time) ([]float64, error) {
	if step <= 0 {
		return nil, fmt.Errorf("trace: step %v", step)
	}
	if end <= 0 {
		return nil, fmt.Errorf("trace: end %v", end)
	}
	n := int(int64(end) / int64(step))
	out := make([]float64, n)
	if len(samples) == 0 {
		return out, nil
	}
	si := 0
	for bin := 0; bin < n; bin++ {
		binStart := sim.Time(int64(bin) * int64(step))
		binEnd := binStart.Add(step)
		var joules float64
		t := binStart
		for t < binEnd {
			// Advance to the sample governing instant t.
			for si+1 < len(samples) && samples[si+1].At <= t {
				si++
			}
			segEnd := binEnd
			if si+1 < len(samples) && samples[si+1].At < segEnd {
				segEnd = samples[si+1].At
			}
			w := 0.0
			if samples[si].At <= t {
				w = samples[si].Watts
			}
			joules += w * (segEnd - t).Duration().Seconds()
			t = segEnd
		}
		out[bin] = joules / step.Seconds()
	}
	return out, nil
}

// SleepFraction reports the fraction of [0, end) a component spent at or
// below the given power threshold — e.g. "the CPU can sleep for 93% of the
// time" in Fig. 7's caption.
func SleepFraction(samples []energy.Sample, threshold float64, end sim.Time) float64 {
	if end <= 0 {
		return 0
	}
	var asleep time.Duration
	for w, d := range Occupancy(samples, end) {
		if w <= threshold {
			asleep += d
		}
	}
	return asleep.Seconds() / end.Duration().Seconds()
}

// RenderASCII draws a waveform as a fixed-height bar chart, one column per
// sample, for terminal display of Figure 5 timelines.
func RenderASCII(waveform []float64, height int) string {
	if len(waveform) == 0 || height < 1 {
		return ""
	}
	maxW := 0.0
	for _, w := range waveform {
		maxW = math.Max(maxW, w)
	}
	if maxW == 0 {
		maxW = 1
	}
	var b strings.Builder
	for row := height; row >= 1; row-- {
		cut := maxW * (float64(row) - 0.5) / float64(height)
		for _, w := range waveform {
			// Any nonzero draw is visible on the bottom row so low power
			// states don't vanish next to active peaks.
			if w >= cut || (row == 1 && w > 0) {
				b.WriteByte('#')
			} else {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	b.WriteString(strings.Repeat("-", len(waveform)))
	b.WriteByte('\n')
	return b.String()
}

// Levels lists the distinct power levels of a trace in ascending order —
// handy for mapping levels back to named power states in reports.
func Levels(samples []energy.Sample) []float64 {
	seen := make(map[float64]bool)
	for _, s := range samples {
		seen[s.Watts] = true
	}
	out := make([]float64, 0, len(seen))
	for w := range seen {
		out = append(out, w)
	}
	sort.Float64s(out)
	return out
}
