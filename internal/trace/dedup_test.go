package trace

import (
	"math"
	"testing"
	"time"

	"iothub/internal/energy"
	"iothub/internal/sim"
)

// withDuplicates re-inserts the redundant samples that energy.Track.Set now
// dedups: for every sample, a copy at a later instant with identical
// (watts, routine) — exactly what chatty pre-dedup traces contained.
func withDuplicates(samples []energy.Sample) []energy.Sample {
	out := make([]energy.Sample, 0, 2*len(samples))
	for i, s := range samples {
		out = append(out, s)
		dup := s
		dup.At += 200 * sim.Time(time.Microsecond)
		if i+1 < len(samples) && samples[i+1].At <= dup.At {
			continue // no room before the next transition
		}
		out = append(out, dup)
	}
	return out
}

// TestResampleOccupancyUnchangedByDedup is the regression for trace dedup:
// a deduped trace and its duplicate-bearing equivalent describe the same
// piecewise-constant waveform, so Resample, Occupancy, and SleepFraction
// must be identical on both.
func TestResampleOccupancyUnchangedByDedup(t *testing.T) {
	s := sim.NewScheduler()
	m := energy.NewMeter(s)
	tr := m.Track("cpu")
	tr.EnableTrace()
	levels := []struct {
		w float64
		r energy.Routine
		d time.Duration
	}{
		{2.1, energy.AppCompute, time.Millisecond},
		{2.1, energy.AppCompute, time.Millisecond}, // redundant report
		{0.094, energy.Idle, 3 * time.Millisecond},
		{0.094, energy.Idle, 2 * time.Millisecond}, // redundant report
		{1.2, energy.DataTransfer, time.Millisecond},
		{2.1, energy.AppCompute, 2 * time.Millisecond},
	}
	for _, lv := range levels {
		tr.Set(lv.w, lv.r)
		if err := s.RunUntil(s.Now().Add(lv.d)); err != nil {
			t.Fatal(err)
		}
	}
	deduped := tr.TraceSamples()
	for i := 1; i < len(deduped); i++ {
		if deduped[i].Watts == deduped[i-1].Watts && deduped[i].R == deduped[i-1].R {
			t.Fatalf("Track recorded consecutive identical samples at %d", i)
		}
	}
	noisy := withDuplicates(deduped)
	if len(noisy) == len(deduped) {
		t.Fatal("test is vacuous: no duplicates inserted")
	}
	end := s.Now()

	const step = 500 * time.Microsecond
	wantWave, err := Resample(noisy, step, end)
	if err != nil {
		t.Fatal(err)
	}
	gotWave, err := Resample(deduped, step, end)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotWave) != len(wantWave) {
		t.Fatalf("Resample lengths differ: %d vs %d", len(gotWave), len(wantWave))
	}
	for i := range gotWave {
		if math.Abs(gotWave[i]-wantWave[i]) > 1e-12 {
			t.Errorf("Resample bin %d: deduped %v, with duplicates %v", i, gotWave[i], wantWave[i])
		}
	}

	wantOcc := Occupancy(noisy, end)
	gotOcc := Occupancy(deduped, end)
	if len(gotOcc) != len(wantOcc) {
		t.Fatalf("Occupancy levels differ: %v vs %v", gotOcc, wantOcc)
	}
	for w, d := range wantOcc {
		if gotOcc[w] != d {
			t.Errorf("Occupancy[%v] = %v, want %v", w, gotOcc[w], d)
		}
	}

	if a, b := SleepFraction(deduped, 0.1, end), SleepFraction(noisy, 0.1, end); a != b {
		t.Errorf("SleepFraction differs: deduped %v, with duplicates %v", a, b)
	}
}
