// Package cpu models the IoT hub's main-board processor — the Raspberry Pi
// 3B of the paper's testbed — as a power-state machine with a work queue.
//
// The model has four resident states plus a wake transition:
//
//   - Active: executing a routine (5 W).
//   - WFI: clock-gated busy-wait between closely spaced events (1.2 W). The
//     paper's baseline CPU "is in the active mode all the time" because
//     per-sample gaps are below the sleep break-even; WFI is that stalling
//     state, and its energy is charged to the routine the CPU stalls for.
//   - Sleep: suspend (0.5 W), worth entering only when the expected idle gap
//     exceeds the break-even derived from the wake cost (§III-A's 1.14 ms
//     analysis, recomputed from this model's constants).
//   - DeepSleep: power-gated (0.15 W), only entered when the scheme declares
//     the CPU fully freed (COM), with a longer wake latency.
//
// Work items are serialized FIFO; waking charges the transition power to the
// routine that caused the wake, exactly like the paper's 4 mJ wake overhead.
package cpu

import (
	"errors"
	"fmt"
	"time"

	"iothub/internal/energy"
	"iothub/internal/obs"
	"iothub/internal/sim"
)

// State is the processor's power state.
type State int

// Processor power states.
const (
	Active State = iota + 1
	WFI
	Sleep
	DeepSleep
	Waking
)

// String names the state.
func (s State) String() string {
	switch s {
	case Active:
		return "Active"
	case WFI:
		return "WFI"
	case Sleep:
		return "Sleep"
	case DeepSleep:
		return "DeepSleep"
	case Waking:
		return "Waking"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Params are the processor's calibration constants (DESIGN.md §4).
type Params struct {
	MIPS          float64       // per-core instruction throughput, million instr/s
	Cores         int           // concurrent work items (Pi 3B: 4)
	ActiveW       float64       // chip draw while any core executes
	WFIW          float64       // stalling between events
	SleepW        float64       // suspended
	DeepSleepW    float64       // power-gated
	TransitionW   float64       // average draw while waking
	WakeFromSleep time.Duration // sleep → active latency
	WakeFromDeep  time.Duration // deep sleep → active latency
	DeepGapMin    time.Duration // minimum gap before deep sleep is considered
}

// DefaultParams returns the Raspberry Pi 3B calibration.
func DefaultParams() Params {
	return Params{
		MIPS:          24_000,
		Cores:         4,
		ActiveW:       5.0,
		WFIW:          1.5,
		SleepW:        0.35,
		DeepSleepW:    0.18,
		TransitionW:   2.5,
		WakeFromSleep: 1600 * time.Microsecond,
		WakeFromDeep:  5 * time.Millisecond,
		DeepGapMin:    50 * time.Millisecond,
	}
}

// SleepBreakEven is the idle gap above which suspending beats stalling:
// the wake overhead divided by the power saved relative to WFI.
func (p Params) SleepBreakEven() time.Duration {
	saved := p.WFIW - p.SleepW
	if saved <= 0 {
		return time.Duration(1<<62 - 1)
	}
	overhead := p.TransitionW * p.WakeFromSleep.Seconds()
	return time.Duration(overhead / saved * float64(time.Second))
}

type workItem struct {
	d       time.Duration
	r       energy.Routine
	done    sim.Done
	startAt sim.Time // execution start, for routine spans
}

// Ops for the CPU's own scheduled events (see OnEvent).
const (
	opWake = iota + 1 // wake transition completed
	opEnd             // work item finished; I0 is the in-flight slot
)

// CPU is one main-board processor instance with two execution lanes that
// mirror how a Linux hub actually schedules this work:
//
//   - The IO lane (capacity 1) runs interrupt handling and data transfers —
//     the kernel's IRQ + UART driver path is serialized, so concurrent apps'
//     per-sample transfers queue behind each other.
//   - The compute lane (capacity Cores-1, at least 1) runs app-specific
//     computations, which parallelize across the remaining cores.
//
// The chip draws ActiveW whenever any lane is busy (one power rail). When
// lanes overlap, the draw is attributed to AppCompute — the compute item is
// the long-running occupant; IO slices are interleaved noise within it.
type CPU struct {
	sched  *sim.Scheduler
	meter  *energy.Meter
	name   string
	track  *energy.Track
	params Params
	state  State

	// Work queues are ring buffers: the head index advances on pop instead
	// of reslicing, so a drained queue's backing array is reused forever.
	queueIO      []workItem
	ioHead       int
	queueCompute []workItem
	computeHead  int
	ioBusy       bool
	ioRoutine    energy.Routine
	computeBusy  int

	// In-flight items live in a slot pool so the completion event carries
	// only a slot index (no per-event closure); the compute lane runs items
	// concurrently, so more than one slot can be occupied.
	inflight     []workItem
	inflightFree []int32

	busy  map[energy.Routine]time.Duration
	wakes int

	obs *obs.Recorder
	// Residency accounting: virtual time spent in each power state, settled
	// on every transition. Always on — one subtraction per state change.
	resid     [Waking + 1]time.Duration
	lastTrans sim.Time
}

// isIO reports whether a routine executes on the serialized IO lane.
func isIO(r energy.Routine) bool {
	return r == energy.Interrupt || r == energy.DataTransfer
}

func validateParams(params Params) error {
	if params.MIPS <= 0 {
		return fmt.Errorf("cpu: MIPS = %v, want > 0", params.MIPS)
	}
	if params.Cores < 1 {
		return fmt.Errorf("cpu: Cores = %d, want >= 1", params.Cores)
	}
	return nil
}

// New returns an idle (WFI) processor metered on the named track.
func New(sched *sim.Scheduler, meter *energy.Meter, name string, params Params) (*CPU, error) {
	if err := validateParams(params); err != nil {
		return nil, err
	}
	c := &CPU{
		sched:  sched,
		meter:  meter,
		name:   name,
		track:  meter.Track(name),
		params: params,
		state:  WFI,
		busy:   make(map[energy.Routine]time.Duration),
	}
	c.track.Set(params.WFIW, energy.Idle)
	return c, nil
}

// Reset reinitializes the processor in place for a new run, exactly as New
// would construct it: the scheduler and meter must have been reset first,
// and the track is re-requested so it registers at this call's position in
// the meter's component order. Queue, slot, and busy-map capacity is kept.
func (c *CPU) Reset(params Params) error {
	if err := validateParams(params); err != nil {
		return err
	}
	c.track = c.meter.Track(c.name)
	c.params = params
	c.state = WFI
	c.queueIO = c.queueIO[:0]
	c.ioHead = 0
	c.queueCompute = c.queueCompute[:0]
	c.computeHead = 0
	c.ioBusy = false
	c.ioRoutine = 0
	c.computeBusy = 0
	for i := range c.inflight {
		c.inflight[i] = workItem{}
	}
	c.inflight = c.inflight[:0]
	c.inflightFree = c.inflightFree[:0]
	clear(c.busy)
	c.wakes = 0
	c.obs = nil
	c.resid = [Waking + 1]time.Duration{}
	c.lastTrans = 0
	c.track.Set(params.WFIW, energy.Idle)
	return nil
}

// Observe attaches an observability recorder: routine spans are emitted at
// work completion. A nil recorder (the default) costs one branch per call.
func (c *CPU) Observe(r *obs.Recorder) { c.obs = r }

// setState moves the power-state machine, settling residency for the state
// being left.
func (c *CPU) setState(s State) {
	now := c.sched.Now()
	c.resid[c.state] += time.Duration(now - c.lastTrans)
	c.lastTrans = now
	c.state = s
}

// Residency reports cumulative virtual time per power state, including the
// still-open occupancy of the current state.
func (c *CPU) Residency() map[State]time.Duration {
	out := make(map[State]time.Duration, len(c.resid))
	for s := Active; s <= Waking; s++ {
		d := c.resid[s]
		if s == c.state {
			d += time.Duration(c.sched.Now() - c.lastTrans)
		}
		if d > 0 {
			out[s] = d
		}
	}
	return out
}

// Params returns the processor's calibration constants.
func (c *CPU) Params() Params { return c.params }

// State reports the current power state.
func (c *CPU) State() State { return c.state }

// Busy reports whether work is executing or queued.
func (c *CPU) Busy() bool {
	return c.ioBusy || c.computeBusy > 0 || c.ioQueued() > 0 || c.computeQueued() > 0
}

func (c *CPU) ioQueued() int      { return len(c.queueIO) - c.ioHead }
func (c *CPU) computeQueued() int { return len(c.queueCompute) - c.computeHead }

// computeCapacity is the number of concurrent compute-lane items.
func (c *CPU) computeCapacity() int {
	if c.params.Cores <= 1 {
		return 1
	}
	return c.params.Cores - 1
}

// Wakes reports how many sleep→active transitions have occurred.
func (c *CPU) Wakes() int { return c.wakes }

// ComputeTime converts a demand in million instructions to execution time at
// this processor's throughput.
func (c *CPU) ComputeTime(millionInstr float64) time.Duration {
	return time.Duration(millionInstr / c.params.MIPS * float64(time.Second))
}

// BusyByRoutine returns cumulative execution (not stall) time per routine.
func (c *CPU) BusyByRoutine() map[energy.Routine]time.Duration {
	out := make(map[energy.Routine]time.Duration, len(c.busy))
	for r, d := range c.busy {
		out[r] = d
	}
	return out
}

// Exec queues d of work attributed to routine r; done (may be nil) runs when
// the work completes. Interrupt and DataTransfer work serializes on the IO
// lane; everything else parallelizes on the compute lane. If the processor
// is sleeping, the wake transition is charged to r and delays the work.
func (c *CPU) Exec(d time.Duration, r energy.Routine, done func()) error {
	return c.ExecCall(d, r, sim.Call(done))
}

// ExecCall is Exec taking the completion as a pre-bound sim.Done — the
// allocation-free form for hot paths that would otherwise close over state.
func (c *CPU) ExecCall(d time.Duration, r energy.Routine, done sim.Done) error {
	if d < 0 {
		return fmt.Errorf("cpu: negative work duration %v", d)
	}
	item := workItem{d: d, r: r, done: done}
	if isIO(r) {
		c.queueIO = append(c.queueIO, item)
	} else {
		c.queueCompute = append(c.queueCompute, item)
	}
	return c.maybeStart()
}

func (c *CPU) maybeStart() error {
	if c.ioQueued() == 0 && c.computeQueued() == 0 {
		return nil
	}
	switch c.state {
	case Waking:
		// Dispatch resumes when the wake transition completes.
		return nil
	case Sleep, DeepSleep:
		wake := c.params.WakeFromSleep
		if c.state == DeepSleep {
			wake = c.params.WakeFromDeep
		}
		wakeFor := energy.AppCompute
		if c.ioQueued() > 0 {
			wakeFor = c.queueIO[c.ioHead].r
		}
		c.setState(Waking)
		c.wakes++
		c.track.Set(c.params.TransitionW, wakeFor)
		if _, err := c.sched.AfterCall(wake, c, sim.Arg{Op: opWake}); err != nil {
			return fmt.Errorf("cpu: schedule wake: %w", err)
		}
		return nil
	default:
		if !c.ioBusy && c.ioQueued() > 0 {
			item := c.popIO()
			c.ioBusy = true
			c.ioRoutine = item.r
			if err := c.beginWork(item); err != nil {
				return err
			}
		}
		for c.computeBusy < c.computeCapacity() && c.computeQueued() > 0 {
			item := c.popCompute()
			c.computeBusy++
			if err := c.beginWork(item); err != nil {
				return err
			}
		}
		return nil
	}
}

func (c *CPU) popIO() workItem {
	item := c.queueIO[c.ioHead]
	c.queueIO[c.ioHead] = workItem{}
	c.ioHead++
	if c.ioHead == len(c.queueIO) {
		c.queueIO = c.queueIO[:0]
		c.ioHead = 0
	}
	return item
}

func (c *CPU) popCompute() workItem {
	item := c.queueCompute[c.computeHead]
	c.queueCompute[c.computeHead] = workItem{}
	c.computeHead++
	if c.computeHead == len(c.queueCompute) {
		c.queueCompute = c.queueCompute[:0]
		c.computeHead = 0
	}
	return item
}

// OnEvent dispatches the processor's own scheduled events — wake completion
// and work completion — without a per-event closure. Scheduling in a DES
// only fails on programming errors; failures stop the run.
func (c *CPU) OnEvent(a sim.Arg) {
	switch a.Op {
	case opWake:
		c.setState(WFI)
		if err := c.maybeStart(); err != nil {
			c.sched.Stop()
		}
	case opEnd:
		slot := int(a.I0)
		item := c.inflight[slot]
		c.inflight[slot] = workItem{}
		c.inflightFree = append(c.inflightFree, int32(slot))
		c.endWork(item)
	}
}

func (c *CPU) beginWork(item workItem) error {
	c.setState(Active)
	c.setActivePower()
	item.startAt = c.sched.Now()
	var slot int
	if n := len(c.inflightFree); n > 0 {
		slot = int(c.inflightFree[n-1])
		c.inflightFree = c.inflightFree[:n-1]
		c.inflight[slot] = item
	} else {
		slot = len(c.inflight)
		c.inflight = append(c.inflight, item)
	}
	_, err := c.sched.AfterCall(item.d, c, sim.Arg{Op: opEnd, I0: int64(slot)})
	if err != nil {
		return fmt.Errorf("cpu: schedule work end: %w", err)
	}
	return nil
}

// setActivePower re-attributes the chip's active draw: compute work wins
// over interleaved IO slices.
func (c *CPU) setActivePower() {
	switch {
	case c.computeBusy > 0:
		c.track.Set(c.params.ActiveW, energy.AppCompute)
	case c.ioBusy:
		c.track.Set(c.params.ActiveW, c.ioRoutine)
	}
}

func (c *CPU) endWork(item workItem) {
	c.busy[item.r] += item.d
	c.obs.Span("cpu", item.r.String(), item.startAt, c.sched.Now())
	if isIO(item.r) {
		c.ioBusy = false
	} else {
		c.computeBusy--
	}
	if c.ioBusy || c.computeBusy > 0 {
		c.setActivePower()
	} else if c.ioQueued() == 0 && c.computeQueued() == 0 {
		// Default to stalling; the scheme's done callback typically refines
		// this with an Idle call carrying the expected gap.
		c.setState(WFI)
		c.track.Set(c.params.WFIW, energy.Idle)
	}
	item.done.Invoke()
	if err := c.maybeStart(); err != nil {
		c.sched.Stop()
	}
}

// ErrBusy is returned by Idle when work is executing or queued.
var ErrBusy = errors.New("cpu: busy")

// Idle tells the governor the processor has nothing to do for roughly gap.
// It picks the cheapest state whose wake cost the gap amortizes: WFI below
// the break-even, Sleep above it, DeepSleep when allowDeep and the gap
// clears DeepGapMin. The idle draw is charged to routine r (the paper
// charges baseline stalls to DataTransfer and COM idleness to AppCompute).
func (c *CPU) Idle(gap time.Duration, r energy.Routine, allowDeep bool) error {
	if c.Busy() {
		return ErrBusy
	}
	switch {
	case allowDeep && gap >= c.params.DeepGapMin:
		c.setState(DeepSleep)
		c.track.Set(c.params.DeepSleepW, r)
	case gap > c.params.SleepBreakEven():
		c.setState(Sleep)
		c.track.Set(c.params.SleepW, r)
	default:
		c.setState(WFI)
		c.track.Set(c.params.WFIW, r)
	}
	return nil
}

// ForceState pins the processor into a state regardless of the governor —
// used to model the idle hub (everything suspended) and for tests.
func (c *CPU) ForceState(s State, r energy.Routine) error {
	if c.Busy() {
		return ErrBusy
	}
	var w float64
	switch s {
	case Active:
		w = c.params.ActiveW
	case WFI:
		w = c.params.WFIW
	case Sleep:
		w = c.params.SleepW
	case DeepSleep:
		w = c.params.DeepSleepW
	default:
		return fmt.Errorf("cpu: cannot force state %v", s)
	}
	c.setState(s)
	c.track.Set(w, r)
	return nil
}

// Track exposes the processor's energy track (for trace capture).
func (c *CPU) Track() *energy.Track { return c.track }
