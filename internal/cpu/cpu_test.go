package cpu

import (
	"errors"
	"math"
	"testing"
	"time"

	"iothub/internal/energy"
	"iothub/internal/sim"
)

func newCPU(t *testing.T) (*CPU, *sim.Scheduler, *energy.Meter) {
	t.Helper()
	s := sim.NewScheduler()
	m := energy.NewMeter(s)
	c, err := New(s, m, "cpu", DefaultParams())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c, s, m
}

func run(t *testing.T, s *sim.Scheduler) {
	t.Helper()
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestNewRejectsZeroMIPS(t *testing.T) {
	s := sim.NewScheduler()
	if _, err := New(s, energy.NewMeter(s), "cpu", Params{}); err == nil {
		t.Error("zero MIPS accepted")
	}
}

func TestExecChargesActivePower(t *testing.T) {
	c, s, m := newCPU(t)
	done := false
	if err := c.Exec(100*time.Millisecond, energy.AppCompute, func() { done = true }); err != nil {
		t.Fatalf("Exec: %v", err)
	}
	run(t, s)
	if !done {
		t.Fatal("done callback never ran")
	}
	got := m.Total()[energy.AppCompute]
	want := c.Params().ActiveW * 0.1
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("AppCompute energy = %v, want %v", got, want)
	}
	if c.State() != WFI {
		t.Errorf("post-work state = %v, want WFI", c.State())
	}
}

func TestExecSerializesFIFO(t *testing.T) {
	c, s, _ := newCPU(t)
	var order []int
	var at []sim.Time
	for i := 0; i < 3; i++ {
		i := i
		err := c.Exec(10*time.Millisecond, energy.DataTransfer, func() {
			order = append(order, i)
			at = append(at, s.Now())
		})
		if err != nil {
			t.Fatalf("Exec: %v", err)
		}
	}
	run(t, s)
	if len(order) != 3 || order[0] != 0 || order[2] != 2 {
		t.Fatalf("order = %v", order)
	}
	if at[2] != sim.Time(30*time.Millisecond) {
		t.Errorf("third item ended at %v, want 30ms", at[2])
	}
}

func TestExecRejectsNegativeDuration(t *testing.T) {
	c, _, _ := newCPU(t)
	if err := c.Exec(-1, energy.AppCompute, nil); err == nil {
		t.Error("negative duration accepted")
	}
}

func TestIdlePicksWFIForShortGap(t *testing.T) {
	c, _, _ := newCPU(t)
	if err := c.Idle(500*time.Microsecond, energy.DataTransfer, false); err != nil {
		t.Fatalf("Idle: %v", err)
	}
	if c.State() != WFI {
		t.Errorf("state = %v, want WFI (gap below break-even %v)", c.State(), c.Params().SleepBreakEven())
	}
}

func TestIdlePicksSleepForLongGap(t *testing.T) {
	c, _, _ := newCPU(t)
	if err := c.Idle(20*time.Millisecond, energy.DataTransfer, false); err != nil {
		t.Fatalf("Idle: %v", err)
	}
	if c.State() != Sleep {
		t.Errorf("state = %v, want Sleep", c.State())
	}
}

func TestIdlePicksDeepSleepOnlyWhenAllowed(t *testing.T) {
	c, _, _ := newCPU(t)
	if err := c.Idle(time.Second, energy.AppCompute, false); err != nil {
		t.Fatalf("Idle: %v", err)
	}
	if c.State() != Sleep {
		t.Errorf("state = %v, want Sleep without allowDeep", c.State())
	}
	if err := c.Idle(time.Second, energy.AppCompute, true); err != nil {
		t.Fatalf("Idle: %v", err)
	}
	if c.State() != DeepSleep {
		t.Errorf("state = %v, want DeepSleep", c.State())
	}
}

func TestIdleWhileBusyFails(t *testing.T) {
	c, s, _ := newCPU(t)
	if err := c.Exec(time.Millisecond, energy.AppCompute, nil); err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if err := c.Idle(time.Second, energy.Idle, false); !errors.Is(err, ErrBusy) {
		t.Errorf("Idle while busy = %v, want ErrBusy", err)
	}
	run(t, s)
}

func TestWakeFromSleepChargesTransition(t *testing.T) {
	c, s, m := newCPU(t)
	if err := c.Idle(time.Second, energy.DataTransfer, false); err != nil {
		t.Fatalf("Idle: %v", err)
	}
	// Sleep for 100 ms of virtual time, then new work arrives.
	if _, err := s.After(100*time.Millisecond, func() {
		if err := c.Exec(10*time.Millisecond, energy.Interrupt, nil); err != nil {
			t.Errorf("Exec: %v", err)
		}
	}); err != nil {
		t.Fatalf("After: %v", err)
	}
	run(t, s)
	p := c.Params()
	b := m.Total()
	wantSleep := p.SleepW * 0.1
	wantIrq := p.TransitionW*p.WakeFromSleep.Seconds() + p.ActiveW*0.01
	if math.Abs(b[energy.DataTransfer]-wantSleep) > 1e-9 {
		t.Errorf("sleep energy = %v, want %v", b[energy.DataTransfer], wantSleep)
	}
	if math.Abs(b[energy.Interrupt]-wantIrq) > 1e-9 {
		t.Errorf("wake+work energy = %v, want %v", b[energy.Interrupt], wantIrq)
	}
	if c.Wakes() != 1 {
		t.Errorf("Wakes = %d, want 1", c.Wakes())
	}
	// Work completion is delayed by the wake latency.
	if got, want := s.Now(), sim.Time(100*time.Millisecond+p.WakeFromSleep+10*time.Millisecond); got != want {
		t.Errorf("end time = %v, want %v", got, want)
	}
}

func TestSleepBreakEvenMatchesPaperShape(t *testing.T) {
	p := DefaultParams()
	be := p.SleepBreakEven()
	// 2.5 W × 1.6 ms / (1.2 − 0.5) W ≈ 5.7 ms: longer than the 1 ms sample
	// period (so Baseline never sleeps) and far shorter than a batching
	// window (so Batching always sleeps).
	if be <= time.Millisecond {
		t.Errorf("break-even %v too short: baseline would sleep between samples", be)
	}
	if be >= 100*time.Millisecond {
		t.Errorf("break-even %v too long: batching would never sleep", be)
	}
}

func TestSleepBreakEvenDegenerate(t *testing.T) {
	p := DefaultParams()
	p.SleepW = p.WFIW // no saving: break-even should be effectively infinite
	if got := p.SleepBreakEven(); got < time.Hour {
		t.Errorf("degenerate break-even = %v, want huge", got)
	}
}

func TestComputeTime(t *testing.T) {
	c, _, _ := newCPU(t)
	if got := c.ComputeTime(24_000); got != time.Second {
		t.Errorf("ComputeTime(24000 MI) = %v, want 1s", got)
	}
	if got := c.ComputeTime(24); got != time.Millisecond {
		t.Errorf("ComputeTime(24 MI) = %v, want 1ms", got)
	}
}

func TestBusyByRoutine(t *testing.T) {
	c, s, _ := newCPU(t)
	if err := c.Exec(5*time.Millisecond, energy.Interrupt, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Exec(7*time.Millisecond, energy.DataTransfer, nil); err != nil {
		t.Fatal(err)
	}
	run(t, s)
	b := c.BusyByRoutine()
	if b[energy.Interrupt] != 5*time.Millisecond || b[energy.DataTransfer] != 7*time.Millisecond {
		t.Errorf("BusyByRoutine = %v", b)
	}
}

func TestDoneCallbackCanChainExec(t *testing.T) {
	c, s, _ := newCPU(t)
	var second sim.Time
	err := c.Exec(time.Millisecond, energy.Interrupt, func() {
		if err := c.Exec(time.Millisecond, energy.DataTransfer, func() { second = s.Now() }); err != nil {
			t.Errorf("chained Exec: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	run(t, s)
	if second != sim.Time(2*time.Millisecond) {
		t.Errorf("chained work ended at %v, want 2ms", second)
	}
}

func TestForceState(t *testing.T) {
	c, s, m := newCPU(t)
	if err := c.ForceState(Sleep, energy.Idle); err != nil {
		t.Fatalf("ForceState: %v", err)
	}
	if err := s.RunUntil(sim.Time(time.Second)); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	got := m.Total()[energy.Idle]
	if math.Abs(got-c.Params().SleepW) > 1e-9 {
		t.Errorf("idle-hub energy = %v, want %v", got, c.Params().SleepW)
	}
	if err := c.ForceState(Waking, energy.Idle); err == nil {
		t.Error("ForceState(Waking) accepted")
	}
}

func TestStateString(t *testing.T) {
	cases := map[State]string{
		Active: "Active", WFI: "WFI", Sleep: "Sleep",
		DeepSleep: "DeepSleep", Waking: "Waking", State(42): "State(42)",
	}
	for st, want := range cases {
		if got := st.String(); got != want {
			t.Errorf("State(%d) = %q, want %q", int(st), got, want)
		}
	}
}
