package energy

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"iothub/internal/sim"
)

const eps = 1e-12

func advance(t *testing.T, s *sim.Scheduler, d time.Duration) {
	t.Helper()
	if err := s.RunUntil(s.Now().Add(d)); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
}

func TestTrackIntegratesConstantPower(t *testing.T) {
	s := sim.NewScheduler()
	m := NewMeter(s)
	cpu := m.Track("cpu")
	cpu.Set(5, AppCompute)
	advance(t, s, 2*time.Second)
	b := cpu.Breakdown()
	if got := b[AppCompute]; math.Abs(got-10) > eps {
		t.Errorf("AppCompute = %v J, want 10", got)
	}
}

func TestTrackSplitsAcrossRoutines(t *testing.T) {
	s := sim.NewScheduler()
	m := NewMeter(s)
	cpu := m.Track("cpu")
	cpu.Set(4, DataTransfer)
	advance(t, s, 500*time.Millisecond)
	cpu.Set(2, Interrupt)
	advance(t, s, 250*time.Millisecond)
	cpu.Set(0, Idle)
	advance(t, s, time.Second)
	b := cpu.Breakdown()
	if got := b[DataTransfer]; math.Abs(got-2.0) > eps {
		t.Errorf("DataTransfer = %v, want 2.0", got)
	}
	if got := b[Interrupt]; math.Abs(got-0.5) > eps {
		t.Errorf("Interrupt = %v, want 0.5", got)
	}
	if got := b.Total(); math.Abs(got-2.5) > eps {
		t.Errorf("Total = %v, want 2.5", got)
	}
}

func TestTrackZeroPowerBeforeFirstSet(t *testing.T) {
	s := sim.NewScheduler()
	m := NewMeter(s)
	cpu := m.Track("cpu")
	advance(t, s, time.Second)
	cpu.Set(1, AppCompute)
	advance(t, s, time.Second)
	b := cpu.Breakdown()
	if got := b.Total(); math.Abs(got-1) > eps {
		t.Errorf("Total = %v, want 1 (first second at 0 W)", got)
	}
}

func TestTrackCreatedMidRunStartsAtNow(t *testing.T) {
	s := sim.NewScheduler()
	m := NewMeter(s)
	advance(t, s, time.Second)
	late := m.Track("late")
	late.Set(3, AppCompute)
	advance(t, s, time.Second)
	if got := late.Breakdown().Total(); math.Abs(got-3) > eps {
		t.Errorf("Total = %v, want 3 (no retroactive charge)", got)
	}
}

func TestMeterTotalSumsComponents(t *testing.T) {
	s := sim.NewScheduler()
	m := NewMeter(s)
	m.Track("cpu").Set(5, AppCompute)
	m.Track("mcu").Set(1, DataCollection)
	advance(t, s, time.Second)
	total := m.Total()
	if got := total[AppCompute]; math.Abs(got-5) > eps {
		t.Errorf("AppCompute = %v, want 5", got)
	}
	if got := total[DataCollection]; math.Abs(got-1) > eps {
		t.Errorf("DataCollection = %v, want 1", got)
	}
	by := m.ByComponent()
	if math.Abs(by["cpu"]-5) > eps || math.Abs(by["mcu"]-1) > eps {
		t.Errorf("ByComponent = %v", by)
	}
}

func TestMeterTrackIsIdempotent(t *testing.T) {
	s := sim.NewScheduler()
	m := NewMeter(s)
	a := m.Track("cpu")
	b := m.Track("cpu")
	if a != b {
		t.Fatal("Track returned distinct tracks for the same name")
	}
	if got := len(m.Components()); got != 1 {
		t.Errorf("Components len = %d, want 1", got)
	}
}

func TestComponentsOrderStable(t *testing.T) {
	s := sim.NewScheduler()
	m := NewMeter(s)
	m.Track("b")
	m.Track("a")
	m.Track("c")
	got := m.Components()
	want := []string{"b", "a", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Components = %v, want %v", got, want)
		}
	}
}

func TestBreakdownFractionAndAttributed(t *testing.T) {
	b := Breakdown{DataTransfer: 8, Interrupt: 1, AppCompute: 1, Idle: 10}
	if got := b.Attributed(); math.Abs(got-10) > eps {
		t.Errorf("Attributed = %v, want 10", got)
	}
	if got := b.Fraction(DataTransfer); math.Abs(got-0.8) > eps {
		t.Errorf("Fraction(DataTransfer) = %v, want 0.8", got)
	}
	if got := b.Fraction(Idle); got != 0 {
		t.Errorf("Fraction(Idle) = %v, want 0", got)
	}
	var empty Breakdown
	if got := empty.Fraction(AppCompute); got != 0 {
		t.Errorf("empty Fraction = %v, want 0", got)
	}
}

func TestBreakdownAddScale(t *testing.T) {
	a := Breakdown{DataTransfer: 1, Interrupt: 2}
	b := Breakdown{DataTransfer: 3, AppCompute: 4}
	sum := a.Add(b)
	if sum[DataTransfer] != 4 || sum[Interrupt] != 2 || sum[AppCompute] != 4 {
		t.Errorf("Add = %v", sum)
	}
	sc := sum.Scale(0.5)
	if sc[DataTransfer] != 2 || sc[Interrupt] != 1 || sc[AppCompute] != 2 {
		t.Errorf("Scale = %v", sc)
	}
}

func TestBreakdownString(t *testing.T) {
	b := Breakdown{DataTransfer: 0.001}
	if got := b.String(); got != "DataTransfer=1.00mJ" {
		t.Errorf("String = %q", got)
	}
	var empty Breakdown
	if got := empty.String(); got != "(empty)" {
		t.Errorf("empty String = %q", got)
	}
}

func TestRoutineString(t *testing.T) {
	cases := map[Routine]string{
		DataCollection: "DataCollection",
		Interrupt:      "Interrupt",
		DataTransfer:   "DataTransfer",
		AppCompute:     "AppCompute",
		Idle:           "Idle",
		Routine(42):    "Routine(42)",
	}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(r), got, want)
		}
	}
}

func TestTraceRecordsTransitions(t *testing.T) {
	s := sim.NewScheduler()
	m := NewMeter(s)
	cpu := m.Track("cpu")
	cpu.Set(5, AppCompute)
	cpu.EnableTrace()
	advance(t, s, time.Millisecond)
	cpu.Set(1.5, Idle)
	advance(t, s, time.Millisecond)
	cpu.Set(5, Interrupt)
	got := cpu.TraceSamples()
	if len(got) != 3 {
		t.Fatalf("trace len = %d, want 3 (initial + 2 transitions)", len(got))
	}
	if got[0].Watts != 5 || got[1].Watts != 1.5 || got[2].Watts != 5 {
		t.Errorf("trace watts = %v", got)
	}
	if got[1].At != sim.Time(time.Millisecond) {
		t.Errorf("second sample at %v, want 1ms", got[1].At)
	}
	cpu.EnableTrace() // idempotent
	if len(cpu.TraceSamples()) != 3 {
		t.Error("EnableTrace twice duplicated samples")
	}
}

// Property: total energy equals power × elapsed time for any sequence of
// power levels with random dwell times, regardless of routine labels.
func TestPropertyEnergyConservation(t *testing.T) {
	f := func(levels []uint8, dwellMicros []uint16) bool {
		n := len(levels)
		if len(dwellMicros) < n {
			n = len(dwellMicros)
		}
		s := sim.NewScheduler()
		m := NewMeter(s)
		tr := m.Track("c")
		var want float64
		for i := 0; i < n; i++ {
			w := float64(levels[i]) / 10
			d := time.Duration(dwellMicros[i]) * time.Microsecond
			tr.Set(w, Routines[i%len(Routines)])
			if err := s.RunUntil(s.Now().Add(d)); err != nil {
				return false
			}
			want += w * d.Seconds()
		}
		got := tr.Breakdown().Total()
		return math.Abs(got-want) < 1e-9*(1+math.Abs(want))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Breakdown is monotone — taking it twice without advancing time
// returns identical values, and advancing time at positive power never
// decreases the total.
func TestPropertyBreakdownMonotone(t *testing.T) {
	f := func(steps []uint8) bool {
		s := sim.NewScheduler()
		m := NewMeter(s)
		tr := m.Track("c")
		tr.Set(1, AppCompute)
		prev := 0.0
		for _, st := range steps {
			if err := s.RunUntil(s.Now().Add(time.Duration(st) * time.Microsecond)); err != nil {
				return false
			}
			b1 := tr.Breakdown().Total()
			b2 := tr.Breakdown().Total()
			if b1 != b2 {
				return false
			}
			if b1 < prev {
				return false
			}
			prev = b1
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
