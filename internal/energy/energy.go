// Package energy implements the power/energy accounting used throughout the
// simulator — the software analog of the Monsoon power monitor the paper
// attaches to the IoT hub's power-delivery socket.
//
// Each hardware component (CPU, MCU, link, individual sensors) owns a Track.
// The component reports every power-level change as it happens on the virtual
// timeline; the meter integrates power over time and attributes the resulting
// energy to one of the paper's four routines (plus Idle). A Breakdown can be
// taken at any instant and is exact: no sampling error, because the power
// waveform is piecewise constant between reported transitions.
//
// The accounting is designed to be invisible to the workload it measures:
// Routine is a dense enum, so a Track accrues joules into a fixed array, a
// power transition (Track.Set) performs zero allocations, and a redundant
// transition (same watts, same routine) is a no-op that neither settles nor
// records a duplicate trace sample.
package energy

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"iothub/internal/sim"
)

// Routine identifies which of the paper's execution routines energy is
// attributed to (§II-B). Idle covers time outside any app's window.
type Routine int

const (
	// DataCollection is sensor reading and driver formatting on the MCU.
	DataCollection Routine = iota + 1
	// Interrupt is MCU→CPU interrupt raising and CPU interrupt handling.
	Interrupt
	// DataTransfer is moving sensor data over the link, including CPU time
	// spent stalling for sensor data (the paper charges stalls here, §III-A).
	DataTransfer
	// AppCompute is the app-specific user-level computation.
	AppCompute
	// Idle is baseline draw outside any attributable routine.
	Idle
)

// routineSlots sizes the dense per-routine arrays: slot 0 is reserved (it
// carries a Breakdown's presence mask), slots 1..5 are the Routines.
const routineSlots = int(Idle) + 1

// Routines lists all routines in display order.
var Routines = []Routine{DataCollection, Interrupt, DataTransfer, AppCompute, Idle}

// String returns the paper's label for the routine.
func (r Routine) String() string {
	switch r {
	case DataCollection:
		return "DataCollection"
	case Interrupt:
		return "Interrupt"
	case DataTransfer:
		return "DataTransfer"
	case AppCompute:
		return "AppCompute"
	case Idle:
		return "Idle"
	default:
		return fmt.Sprintf("Routine(%d)", int(r))
	}
}

// MarshalText encodes the routine as its display label, so routine-keyed
// maps (busy-time tables) serialize to JSON with readable keys instead of
// bare integers.
func (r Routine) MarshalText() ([]byte, error) { return []byte(r.String()), nil }

// UnmarshalText is the inverse of MarshalText.
func (r *Routine) UnmarshalText(text []byte) error {
	for _, known := range Routines {
		if known.String() == string(text) {
			*r = known
			return nil
		}
	}
	return fmt.Errorf("energy: unknown routine %q", text)
}

// Sample is one point of a recorded power trace.
type Sample struct {
	At    sim.Time
	Watts float64
	R     Routine
}

// Track accumulates the energy of a single component. Joules accrue into a
// fixed per-routine array — the hot path (Set/settle) touches no maps and
// performs no allocations.
type Track struct {
	name    string
	clock   *sim.Scheduler
	lastAt  sim.Time
	watts   float64
	routine Routine
	joules  [routineSlots]float64
	touched uint8 // bit r set once routine r has accrued an interval
	trace   []Sample
	tracing bool
	gen     uint32 // meter generation this track is live in
}

// Meter owns the tracks of all components on one virtual timeline.
//
// A meter can be reset and reused across simulation runs: Reset bumps a
// generation counter and empties the live views, while the tracks map keeps
// every Track ever created as a pool. The next Track(name) call for a pooled
// name reinitializes that Track in place (retaining its trace capacity) and
// re-registers it, so a reused meter behaves — and serializes — exactly like
// a fresh one as long as tracks are re-registered in the same order.
type Meter struct {
	clock  *sim.Scheduler
	tracks map[string]*Track // pool: every track ever created, live or stale
	order  []string          // creation order of live tracks, for Components
	sorted []*Track          // name-sorted live tracks; Total's summation order
	gen    uint32            // bumped by Reset; tracks with gen != this are stale
}

// NewMeter returns a meter bound to the given virtual clock.
func NewMeter(clock *sim.Scheduler) *Meter {
	return &Meter{clock: clock, tracks: make(map[string]*Track)}
}

// Track returns the named component track, creating it (at zero watts,
// routine Idle) on first use. After a Reset, the first call for a previously
// seen name revives the pooled Track in place instead of allocating.
func (m *Meter) Track(name string) *Track {
	if tr, ok := m.tracks[name]; ok {
		if tr.gen != m.gen {
			tr.revive(m.gen, m.clock.Now())
			m.register(tr)
		}
		return tr
	}
	tr := &Track{
		name:    name,
		clock:   m.clock,
		lastAt:  m.clock.Now(),
		routine: Idle,
		gen:     m.gen,
	}
	m.tracks[name] = tr
	m.register(tr)
	return tr
}

// register adds tr to the live views: creation order and the sorted slice.
func (m *Meter) register(tr *Track) {
	m.order = append(m.order, tr.name)
	// Keep the sorted view incrementally so Total never re-sorts: insert at
	// the track's rank among existing names. Sorted summation order keeps
	// Meter.Total's float accumulation bit-identical run to run.
	i := sort.Search(len(m.sorted), func(i int) bool { return m.sorted[i].name >= tr.name })
	m.sorted = append(m.sorted, nil)
	copy(m.sorted[i+1:], m.sorted[i:])
	m.sorted[i] = tr
}

// revive reinitializes a pooled track to the fresh-construction state,
// retaining only the trace buffer's capacity.
func (tr *Track) revive(gen uint32, now sim.Time) {
	tr.gen = gen
	tr.lastAt = now
	tr.watts = 0
	tr.routine = Idle
	tr.joules = [routineSlots]float64{}
	tr.touched = 0
	if tr.trace != nil {
		tr.trace = tr.trace[:0]
	}
	tr.tracing = false
}

// Reset prepares the meter for a new run on the (also reset) clock: the live
// track views are emptied and the generation counter bumps, invalidating
// every outstanding *Track. Tracks stay pooled — re-requesting the same
// names in the same order reproduces a fresh meter without allocating.
func (m *Meter) Reset() {
	m.gen++
	m.order = m.order[:0]
	for i := range m.sorted {
		m.sorted[i] = nil
	}
	m.sorted = m.sorted[:0]
}

// Components lists track names in creation order.
func (m *Meter) Components() []string {
	out := make([]string, len(m.order))
	copy(out, m.order)
	return out
}

// Set reports that the component now draws watts attributed to routine r.
// The interval since the previous report is integrated at the previous
// level. Reporting the level already in effect records no duplicate trace
// sample, so chatty callers don't bloat traces; it still settles at the
// report instant, keeping the float accumulation grouping (and therefore
// every serialized joule) bit-identical whether or not callers dedup
// themselves.
func (tr *Track) Set(watts float64, r Routine) {
	if watts == tr.watts && r == tr.routine {
		tr.settle()
		return
	}
	tr.settle()
	tr.watts = watts
	tr.routine = r
	if tr.tracing {
		tr.trace = append(tr.trace, Sample{At: tr.clock.Now(), Watts: watts, R: r})
	}
}

// Deposit attributes j joules to routine r at the current instant — a point
// mass on the waveform for costs that are energies, not power levels (an ADC
// conversion, a flash write burst). The interval so far is settled first, so
// deposits never disturb the piecewise-constant integration or the trace.
func (tr *Track) Deposit(j float64, r Routine) {
	tr.settle()
	tr.joules[r] += j
	tr.touched |= 1 << uint(r)
}

// Watts reports the component's current power draw.
func (tr *Track) Watts() float64 { return tr.watts }

// Routine reports the routine the current draw is attributed to.
func (tr *Track) Routine() Routine { return tr.routine }

// settle integrates energy up to the current instant.
func (tr *Track) settle() {
	now := tr.clock.Now()
	dt := now - tr.lastAt
	if dt > 0 {
		tr.joules[tr.routine] += tr.watts * float64(dt) / float64(time.Second)
		tr.touched |= 1 << uint(tr.routine)
	}
	tr.lastAt = now
}

// EnableTrace starts recording every power transition (plus an initial
// sample) so a power-state timeline (Figure 5) can be rendered afterwards.
// The buffer is preallocated; consecutive identical samples never appear
// because Set dedups redundant transitions.
func (tr *Track) EnableTrace() {
	if tr.tracing {
		return
	}
	tr.tracing = true
	if tr.trace == nil {
		tr.trace = make([]Sample, 0, 256)
	}
	tr.trace = append(tr.trace, Sample{At: tr.clock.Now(), Watts: tr.watts, R: tr.routine})
}

// TraceSamples returns a copy of the recorded power trace.
func (tr *Track) TraceSamples() []Sample {
	out := make([]Sample, len(tr.trace))
	copy(out, tr.trace)
	return out
}

// Breakdown is energy per routine, in joules, backed by a dense array:
// index r holds routine r's joules. Index 0 is reserved — it stores a small
// presence bitmask distinguishing "accrued exactly zero joules" (e.g. a 0 W
// idle stretch) from "never ran", which keeps serialized breakdowns
// byte-identical to the old map representation. Construct literals with
// routine-keyed indices (Breakdown{DataTransfer: 8}) or NewBreakdown; use
// Get/Has to read entries of unknown provenance safely.
type Breakdown []float64

// NewBreakdown returns an empty full-size breakdown that can be indexed by
// any Routine.
func NewBreakdown() Breakdown { return make(Breakdown, routineSlots) }

// Get reports routine r's joules (0 when absent). Unlike direct indexing it
// is safe on short or nil breakdowns.
func (b Breakdown) Get(r Routine) float64 {
	if i := int(r); i > 0 && i < len(b) {
		return b[i]
	}
	return 0
}

// Has reports whether routine r has an entry: either a nonzero value or a
// zero explicitly accrued (presence bit set).
func (b Breakdown) Has(r Routine) bool {
	i := int(r)
	if i <= 0 || i >= len(b) {
		return false
	}
	return b[i] != 0 || b.mask()&(1<<uint(i)) != 0
}

func (b Breakdown) mask() uint64 {
	if len(b) == 0 {
		return 0
	}
	return uint64(b[0])
}

// Total sums all routines. Summation follows the fixed Routines order so
// identical breakdowns always total to the bit-identical float.
func (b Breakdown) Total() float64 {
	var sum float64
	for _, r := range Routines {
		sum += b.Get(r)
	}
	return sum
}

// Attributed sums all routines except Idle — the energy the paper's
// normalized figures account for.
func (b Breakdown) Attributed() float64 {
	return b.Total() - b.Get(Idle)
}

// Fraction reports routine r's share of the attributed (non-idle) energy,
// or 0 when nothing was attributed.
func (b Breakdown) Fraction(r Routine) float64 {
	att := b.Attributed()
	if att <= 0 {
		return 0
	}
	if r == Idle {
		return 0
	}
	return b.Get(r) / att
}

// Add returns the element-wise sum of b and other. Routines whose sum is
// zero are absent from the result.
func (b Breakdown) Add(other Breakdown) Breakdown {
	out := NewBreakdown()
	for _, r := range Routines {
		if v := b.Get(r) + other.Get(r); v != 0 {
			out[r] = v
		}
	}
	return out
}

// Scale returns b with every entry multiplied by k. Presence is preserved:
// entries of b remain entries of the result.
func (b Breakdown) Scale(k float64) Breakdown {
	out := NewBreakdown()
	var mask uint64
	for _, r := range Routines {
		if b.Has(r) {
			out[r] = b.Get(r) * k
			mask |= 1 << uint(r)
		}
	}
	out[0] = float64(mask)
	return out
}

// String formats the breakdown in millijoules for logs and CLI output.
func (b Breakdown) String() string {
	s := ""
	for _, r := range Routines {
		if b.Has(r) {
			if s != "" {
				s += " "
			}
			s += fmt.Sprintf("%s=%.2fmJ", r, b.Get(r)*1e3)
		}
	}
	if s == "" {
		return "(empty)"
	}
	return s
}

// MarshalJSON keeps the historical JSON shape: an object keyed by routine
// label, lexically sorted, with one entry per present routine.
func (b Breakdown) MarshalJSON() ([]byte, error) {
	m := make(map[string]float64, len(Routines))
	for _, r := range Routines {
		if b.Has(r) {
			m[r.String()] = b.Get(r)
		}
	}
	return json.Marshal(m)
}

// UnmarshalJSON is the inverse of MarshalJSON; explicit zero entries survive
// the round trip.
func (b *Breakdown) UnmarshalJSON(data []byte) error {
	var m map[string]float64
	if err := json.Unmarshal(data, &m); err != nil {
		return err
	}
	out := NewBreakdown()
	var mask uint64
	for k, v := range m {
		var r Routine
		if err := r.UnmarshalText([]byte(k)); err != nil {
			return err
		}
		out[r] = v
		mask |= 1 << uint(r)
	}
	out[0] = float64(mask)
	*b = out
	return nil
}

// Breakdown integrates up to now and returns the component's per-routine
// energy so far.
func (tr *Track) Breakdown() Breakdown {
	return tr.BreakdownInto(nil)
}

// BreakdownInto is Breakdown reusing dst's storage when it has capacity —
// the zero-allocation variant for callers polling a track in a loop.
func (tr *Track) BreakdownInto(dst Breakdown) Breakdown {
	tr.settle()
	if cap(dst) < routineSlots {
		dst = NewBreakdown()
	}
	dst = dst[:routineSlots]
	copy(dst, tr.joules[:])
	dst[0] = float64(tr.touched)
	return dst
}

// Total integrates up to now and returns the meter-wide per-routine energy
// summed over all components, accumulated in name order (the incrementally
// maintained sorted view — no per-call sort or re-keying).
func (m *Meter) Total() Breakdown {
	out := NewBreakdown()
	var mask uint64
	for _, tr := range m.sorted {
		tr.settle()
		mask |= uint64(tr.touched)
		for _, r := range Routines {
			if tr.touched&(1<<uint(r)) != 0 {
				out[r] += tr.joules[r]
			}
		}
	}
	out[0] = float64(mask)
	return out
}

// TotalJoules integrates every live track up to now and returns the
// meter-wide energy as one scalar, without materializing a Breakdown — the
// allocation-free form for callers that poll the meter, like the battery
// ledger settling at every tick. Summation runs over the same name-sorted
// track order as Total, so the value is a deterministic function of the
// run — identical across replays and arena reuse.
func (m *Meter) TotalJoules() float64 {
	var sum float64
	for _, tr := range m.sorted {
		tr.settle()
		for _, r := range Routines {
			if tr.touched&(1<<uint(r)) != 0 {
				sum += tr.joules[r]
			}
		}
	}
	return sum
}

// ByComponent integrates up to now and returns per-component totals (all
// routines summed), keyed by track name. Only live tracks are reported —
// after a Reset, pooled tracks that have not been re-requested are invisible.
func (m *Meter) ByComponent() map[string]float64 {
	out := make(map[string]float64, len(m.order))
	for _, name := range m.order {
		out[name] = m.tracks[name].Breakdown().Total()
	}
	return out
}
