// Package energy implements the power/energy accounting used throughout the
// simulator — the software analog of the Monsoon power monitor the paper
// attaches to the IoT hub's power-delivery socket.
//
// Each hardware component (CPU, MCU, link, individual sensors) owns a Track.
// The component reports every power-level change as it happens on the virtual
// timeline; the meter integrates power over time and attributes the resulting
// energy to one of the paper's four routines (plus Idle). A Breakdown can be
// taken at any instant and is exact: no sampling error, because the power
// waveform is piecewise constant between reported transitions.
package energy

import (
	"fmt"
	"sort"
	"time"

	"iothub/internal/sim"
)

// Routine identifies which of the paper's execution routines energy is
// attributed to (§II-B). Idle covers time outside any app's window.
type Routine int

const (
	// DataCollection is sensor reading and driver formatting on the MCU.
	DataCollection Routine = iota + 1
	// Interrupt is MCU→CPU interrupt raising and CPU interrupt handling.
	Interrupt
	// DataTransfer is moving sensor data over the link, including CPU time
	// spent stalling for sensor data (the paper charges stalls here, §III-A).
	DataTransfer
	// AppCompute is the app-specific user-level computation.
	AppCompute
	// Idle is baseline draw outside any attributable routine.
	Idle
)

// Routines lists all routines in display order.
var Routines = []Routine{DataCollection, Interrupt, DataTransfer, AppCompute, Idle}

// String returns the paper's label for the routine.
func (r Routine) String() string {
	switch r {
	case DataCollection:
		return "DataCollection"
	case Interrupt:
		return "Interrupt"
	case DataTransfer:
		return "DataTransfer"
	case AppCompute:
		return "AppCompute"
	case Idle:
		return "Idle"
	default:
		return fmt.Sprintf("Routine(%d)", int(r))
	}
}

// MarshalText encodes the routine as its display label, so routine-keyed
// maps (Breakdown, busy-time tables) serialize to JSON with readable keys
// instead of bare integers.
func (r Routine) MarshalText() ([]byte, error) { return []byte(r.String()), nil }

// UnmarshalText is the inverse of MarshalText.
func (r *Routine) UnmarshalText(text []byte) error {
	for _, known := range Routines {
		if known.String() == string(text) {
			*r = known
			return nil
		}
	}
	return fmt.Errorf("energy: unknown routine %q", text)
}

// Sample is one point of a recorded power trace.
type Sample struct {
	At    sim.Time
	Watts float64
	R     Routine
}

// Track accumulates the energy of a single component.
type Track struct {
	name    string
	clock   *sim.Scheduler
	lastAt  sim.Time
	watts   float64
	routine Routine
	joules  map[Routine]float64
	trace   []Sample
	tracing bool
}

// Meter owns the tracks of all components on one virtual timeline.
type Meter struct {
	clock  *sim.Scheduler
	tracks map[string]*Track
	order  []string
}

// NewMeter returns a meter bound to the given virtual clock.
func NewMeter(clock *sim.Scheduler) *Meter {
	return &Meter{clock: clock, tracks: make(map[string]*Track)}
}

// Track returns the named component track, creating it (at zero watts,
// routine Idle) on first use.
func (m *Meter) Track(name string) *Track {
	if tr, ok := m.tracks[name]; ok {
		return tr
	}
	tr := &Track{
		name:    name,
		clock:   m.clock,
		lastAt:  m.clock.Now(),
		routine: Idle,
		joules:  make(map[Routine]float64),
	}
	m.tracks[name] = tr
	m.order = append(m.order, name)
	return tr
}

// Components lists track names in creation order.
func (m *Meter) Components() []string {
	out := make([]string, len(m.order))
	copy(out, m.order)
	return out
}

// Set reports that the component now draws watts attributed to routine r.
// The interval since the previous report is integrated at the previous level.
func (tr *Track) Set(watts float64, r Routine) {
	tr.settle()
	tr.watts = watts
	tr.routine = r
	if tr.tracing {
		tr.trace = append(tr.trace, Sample{At: tr.clock.Now(), Watts: watts, R: r})
	}
}

// Watts reports the component's current power draw.
func (tr *Track) Watts() float64 { return tr.watts }

// Routine reports the routine the current draw is attributed to.
func (tr *Track) Routine() Routine { return tr.routine }

// settle integrates energy up to the current instant.
func (tr *Track) settle() {
	now := tr.clock.Now()
	dt := now - tr.lastAt
	if dt > 0 {
		tr.joules[tr.routine] += tr.watts * float64(dt) / float64(time.Second)
	}
	tr.lastAt = now
}

// EnableTrace starts recording every Set call (plus an initial sample) so a
// power-state timeline (Figure 5) can be rendered afterwards.
func (tr *Track) EnableTrace() {
	if tr.tracing {
		return
	}
	tr.tracing = true
	tr.trace = append(tr.trace, Sample{At: tr.clock.Now(), Watts: tr.watts, R: tr.routine})
}

// TraceSamples returns a copy of the recorded power trace.
func (tr *Track) TraceSamples() []Sample {
	out := make([]Sample, len(tr.trace))
	copy(out, tr.trace)
	return out
}

// Breakdown is energy per routine, in joules.
type Breakdown map[Routine]float64

// Total sums all routines. Summation follows the fixed Routines order so
// identical breakdowns always total to the bit-identical float.
func (b Breakdown) Total() float64 {
	var sum float64
	for _, r := range Routines {
		sum += b[r]
	}
	return sum
}

// Attributed sums all routines except Idle — the energy the paper's
// normalized figures account for.
func (b Breakdown) Attributed() float64 {
	return b.Total() - b[Idle]
}

// Fraction reports routine r's share of the attributed (non-idle) energy,
// or 0 when nothing was attributed.
func (b Breakdown) Fraction(r Routine) float64 {
	att := b.Attributed()
	if att <= 0 {
		return 0
	}
	if r == Idle {
		return 0
	}
	return b[r] / att
}

// Add returns the element-wise sum of b and other.
func (b Breakdown) Add(other Breakdown) Breakdown {
	out := make(Breakdown, len(Routines))
	for _, r := range Routines {
		if v := b[r] + other[r]; v != 0 {
			out[r] = v
		}
	}
	return out
}

// Scale returns b with every entry multiplied by k.
func (b Breakdown) Scale(k float64) Breakdown {
	out := make(Breakdown, len(b))
	for r, v := range b {
		out[r] = v * k
	}
	return out
}

// String formats the breakdown in millijoules for logs and CLI output.
func (b Breakdown) String() string {
	s := ""
	for _, r := range Routines {
		if v, ok := b[r]; ok {
			if s != "" {
				s += " "
			}
			s += fmt.Sprintf("%s=%.2fmJ", r, v*1e3)
		}
	}
	if s == "" {
		return "(empty)"
	}
	return s
}

// Breakdown integrates up to now and returns the component's per-routine
// energy so far.
func (tr *Track) Breakdown() Breakdown {
	tr.settle()
	out := make(Breakdown, len(tr.joules))
	for r, j := range tr.joules {
		out[r] = j
	}
	return out
}

// Total integrates up to now and returns the meter-wide per-routine energy
// summed over all components.
func (m *Meter) Total() Breakdown {
	out := make(Breakdown, len(Routines))
	names := make([]string, 0, len(m.tracks))
	for name := range m.tracks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		for r, j := range m.tracks[name].Breakdown() {
			out[r] += j
		}
	}
	return out
}

// ByComponent integrates up to now and returns per-component totals (all
// routines summed), keyed by track name.
func (m *Meter) ByComponent() map[string]float64 {
	out := make(map[string]float64, len(m.tracks))
	for name, tr := range m.tracks {
		out[name] = tr.Breakdown().Total()
	}
	return out
}
