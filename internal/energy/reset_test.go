package energy

import (
	"encoding/json"
	"testing"
	"time"

	"iothub/internal/sim"
)

// exerciseMeter drives a small two-component workload and returns the
// serialized totals, per-component map, components order, and cpu trace —
// everything a RunResult derives from a meter.
func exerciseMeter(t *testing.T, s *sim.Scheduler, m *Meter) (string, map[string]float64, []string, []Sample) {
	t.Helper()
	cpu := m.Track("cpu")
	cpu.EnableTrace()
	link := m.Track("link")
	if _, err := s.After(time.Millisecond, func() { cpu.Set(0.4, AppCompute) }); err != nil {
		t.Fatal(err)
	}
	if _, err := s.After(2*time.Millisecond, func() {
		cpu.Set(0.1, Idle)
		link.Set(0.7, DataTransfer)
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.After(5*time.Millisecond, func() { link.Set(0, Idle) }); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	total, err := json.Marshal(m.Total())
	if err != nil {
		t.Fatal(err)
	}
	return string(total), m.ByComponent(), m.Components(), cpu.TraceSamples()
}

// TestMeterResetReproducesFresh pins the meter-reuse contract: after Reset
// (with the clock also reset), re-requesting the same tracks in the same
// order yields byte-identical totals, per-component maps, component order,
// and traces as a fresh meter.
func TestMeterResetReproducesFresh(t *testing.T) {
	fs := sim.NewScheduler()
	fresh := NewMeter(fs)
	wantTotal, wantBy, wantComps, wantTrace := exerciseMeter(t, fs, fresh)

	rs := sim.NewScheduler()
	reused := NewMeter(rs)
	exerciseMeter(t, rs, reused)
	rs.Reset()
	reused.Reset()
	gotTotal, gotBy, gotComps, gotTrace := exerciseMeter(t, rs, reused)

	if gotTotal != wantTotal {
		t.Errorf("reused Total = %s, fresh = %s", gotTotal, wantTotal)
	}
	if len(gotBy) != len(wantBy) {
		t.Fatalf("reused ByComponent has %d entries, fresh %d", len(gotBy), len(wantBy))
	}
	for name, want := range wantBy {
		if got, ok := gotBy[name]; !ok || got != want {
			t.Errorf("ByComponent[%q] = %v (present=%v), fresh %v", name, got, ok, want)
		}
	}
	if len(gotComps) != len(wantComps) {
		t.Fatalf("Components = %v, fresh %v", gotComps, wantComps)
	}
	for i := range gotComps {
		if gotComps[i] != wantComps[i] {
			t.Fatalf("Components = %v, fresh %v", gotComps, wantComps)
		}
	}
	if len(gotTrace) != len(wantTrace) {
		t.Fatalf("trace has %d samples, fresh %d", len(gotTrace), len(wantTrace))
	}
	for i := range gotTrace {
		if gotTrace[i] != wantTrace[i] {
			t.Errorf("trace[%d] = %+v, fresh %+v", i, gotTrace[i], wantTrace[i])
		}
	}
}

// TestMeterResetPoolsTracks pins the pooling mechanics: the revived Track is
// the same object (no allocation), and stale tracks never re-registered stay
// invisible to Components/ByComponent/Total.
func TestMeterResetPoolsTracks(t *testing.T) {
	s := sim.NewScheduler()
	m := NewMeter(s)
	a := m.Track("a")
	m.Track("b").Set(1.0, AppCompute)
	if _, err := s.After(time.Millisecond, func() {}); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}

	s.Reset()
	m.Reset()
	a2 := m.Track("a")
	if a2 != a {
		t.Error("Track(\"a\") after Reset returned a new object, want pooled")
	}
	if a2.Watts() != 0 || a2.Routine() != Idle {
		t.Errorf("revived track state = (%v W, %v), want fresh (0, Idle)", a2.Watts(), a2.Routine())
	}
	if got := a2.Breakdown().Total(); got != 0 {
		t.Errorf("revived track carries %v J from the previous run", got)
	}

	comps := m.Components()
	if len(comps) != 1 || comps[0] != "a" {
		t.Errorf("Components = %v, want [a] (b is stale)", comps)
	}
	if by := m.ByComponent(); len(by) != 1 {
		t.Errorf("ByComponent = %v, want only the live track", by)
	}
	if total := m.Total().Total(); total != 0 {
		t.Errorf("Total = %v J, want 0 (stale track b must not contribute)", total)
	}
}

// TestMeterResetZeroAlloc pins the payoff: Reset plus re-requesting pooled
// tracks allocates nothing.
func TestMeterResetZeroAlloc(t *testing.T) {
	s := sim.NewScheduler()
	m := NewMeter(s)
	names := []string{"cpu", "mcu", "link", "radio:main", "radio:mcu"}
	for _, n := range names {
		m.Track(n)
	}
	got := testing.AllocsPerRun(100, func() {
		m.Reset()
		for _, n := range names {
			m.Track(n).Set(0.5, AppCompute)
		}
	})
	if got != 0 {
		t.Errorf("Reset + %d pooled Track calls allocate %v per run, want 0", len(names), got)
	}
}
