package energy

import (
	"testing"
	"time"

	"iothub/internal/sim"
)

// TestSetZeroAlloc pins the meter's hot-path contract: a power transition
// (and a redundant re-report) allocates nothing — joules accrue into the
// track's fixed per-routine array.
func TestSetZeroAlloc(t *testing.T) {
	s := sim.NewScheduler()
	m := NewMeter(s)
	tr := m.Track("cpu")
	tick := sim.Time(0)
	got := testing.AllocsPerRun(200, func() {
		tick = tick.Add(time.Microsecond)
		if err := s.RunUntil(tick); err != nil {
			t.Fatal(err)
		}
		tr.Set(3.5, AppCompute)
		tr.Set(3.5, AppCompute) // redundant re-report: settles, no trace, no alloc
		tr.Set(0.4, Idle)
	})
	if got != 0 {
		t.Errorf("Track.Set allocates %v per run, want 0", got)
	}
}

// TestBreakdownIntoZeroAlloc pins the zero-allocation read path: reusing the
// caller's buffer, BreakdownInto settles and copies without allocating.
func TestBreakdownIntoZeroAlloc(t *testing.T) {
	s := sim.NewScheduler()
	m := NewMeter(s)
	tr := m.Track("cpu")
	tr.Set(2, DataTransfer)
	buf := NewBreakdown()
	tick := sim.Time(0)
	got := testing.AllocsPerRun(200, func() {
		tick = tick.Add(time.Microsecond)
		if err := s.RunUntil(tick); err != nil {
			t.Fatal(err)
		}
		buf = tr.BreakdownInto(buf)
		if buf.Get(DataTransfer) <= 0 {
			t.Fatal("no energy accrued")
		}
	})
	if got != 0 {
		t.Errorf("Track.BreakdownInto allocates %v per run, want 0", got)
	}
}

// TestBreakdownIntoMatchesBreakdown keeps the convenience and the pooled
// read paths interchangeable.
func TestBreakdownIntoMatchesBreakdown(t *testing.T) {
	s := sim.NewScheduler()
	m := NewMeter(s)
	tr := m.Track("c")
	tr.Set(1.5, Interrupt)
	if err := s.RunUntil(sim.Time(time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	tr.Set(0, Idle)
	if err := s.RunUntil(sim.Time(2 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	a := tr.Breakdown()
	b := tr.BreakdownInto(make(Breakdown, 0, 16))
	for _, r := range Routines {
		if a.Get(r) != b.Get(r) || a.Has(r) != b.Has(r) {
			t.Errorf("%v: Breakdown %v/%v != BreakdownInto %v/%v", r, a.Get(r), a.Has(r), b.Get(r), b.Has(r))
		}
	}
	if !b.Has(Idle) || b.Get(Idle) != 0 {
		t.Errorf("explicit zero-joule Idle stretch lost: has=%v get=%v", b.Has(Idle), b.Get(Idle))
	}
}

// TestTraceDedup verifies that redundant Set calls do not append duplicate
// samples while real transitions still do.
func TestTraceDedup(t *testing.T) {
	s := sim.NewScheduler()
	m := NewMeter(s)
	tr := m.Track("cpu")
	tr.EnableTrace()
	advanceTo := func(d time.Duration) {
		if err := s.RunUntil(sim.Time(d)); err != nil {
			t.Fatal(err)
		}
	}
	tr.Set(1, AppCompute)
	advanceTo(1 * time.Millisecond)
	tr.Set(1, AppCompute) // duplicate: dropped
	advanceTo(2 * time.Millisecond)
	tr.Set(1, AppCompute) // duplicate: dropped
	advanceTo(3 * time.Millisecond)
	tr.Set(2, AppCompute) // level change: kept
	tr.Set(2, Interrupt)  // routine change at same watts: kept
	got := tr.TraceSamples()
	if len(got) != 4 {
		t.Fatalf("trace has %d samples, want 4 (initial + transition + level + routine)", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Watts == got[i-1].Watts && got[i].R == got[i-1].R {
			t.Errorf("consecutive identical samples at %d: %+v", i, got[i])
		}
	}
}

// TestBreakdownJSONRoundTrip checks MarshalJSON keeps the historical object
// shape (lexical keys, explicit zeros preserved) and survives a round trip.
func TestBreakdownJSONRoundTrip(t *testing.T) {
	s := sim.NewScheduler()
	m := NewMeter(s)
	tr := m.Track("link")
	// 0 W idle stretch: accrues an explicit zero entry, like the real link.
	if err := s.RunUntil(sim.Time(time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	tr.Set(2, DataTransfer)
	if err := s.RunUntil(sim.Time(2 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	b := tr.Breakdown()
	blob, err := b.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	want := `{"DataTransfer":0.002,"Idle":0}`
	if string(blob) != want {
		t.Errorf("MarshalJSON = %s, want %s", blob, want)
	}
	var back Breakdown
	if err := back.UnmarshalJSON(blob); err != nil {
		t.Fatal(err)
	}
	for _, r := range Routines {
		if back.Get(r) != b.Get(r) || back.Has(r) != b.Has(r) {
			t.Errorf("%v: round trip %v/%v != original %v/%v", r, back.Get(r), back.Has(r), b.Get(r), b.Has(r))
		}
	}
	if err := back.UnmarshalJSON([]byte(`{"NoSuchRoutine":1}`)); err == nil {
		t.Error("UnmarshalJSON accepted an unknown routine")
	}
}
