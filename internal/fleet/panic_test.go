package fleet

import (
	"fmt"
	"strings"
	"testing"

	"iothub/internal/apps"
	"iothub/internal/hub"
)

// TestWorkerPanicBecomesScenarioError proves a panicking scenario fails
// alone — carrying its label and seed in the error — while the rest of the
// sweep completes and aggregates normally.
func TestWorkerPanicBecomesScenarioError(t *testing.T) {
	spec := Spec{Seed: 11, Scenarios: []hub.Scenario{
		{Apps: []apps.ID{apps.StepCounter}, Scheme: hub.Baseline, Windows: 1, Seed: 101, SkipAppCompute: true},
		{Apps: []apps.ID{apps.M2X}, Scheme: hub.Baseline, Windows: 1, Seed: 102, SkipAppCompute: true},
		{Apps: []apps.ID{apps.StepCounter}, Scheme: hub.Batching, Windows: 1, Seed: 103, SkipAppCompute: true},
	}}

	bomb := spec.Scenarios[1].Label()
	orig := execScenario
	execScenario = func(a *hub.Arena, s hub.Scenario) (*hub.RunResult, error) {
		if s.Label() == bomb && s.Seed == 102 {
			panic(fmt.Sprintf("injected fault in %s", s.Label()))
		}
		return orig(a, s)
	}
	defer func() { execScenario = orig }()

	res, err := Run(spec, Options{Workers: 1})
	if err != nil {
		t.Fatalf("sweep aborted instead of isolating the panic: %v", err)
	}
	if res.Completed != 3 {
		t.Fatalf("Completed = %d, want 3", res.Completed)
	}
	if len(res.Failed) != 1 {
		t.Fatalf("Failed = %+v, want exactly the panicking scenario", res.Failed)
	}
	f := res.Failed[0]
	if f.Index != 1 || f.Label != bomb {
		t.Errorf("failed scenario = index %d label %q, want index 1 label %q", f.Index, f.Label, bomb)
	}
	for _, frag := range []string{"panicked", bomb, "seed 102", "injected fault"} {
		if !strings.Contains(f.Err, frag) {
			t.Errorf("panic error %q missing %q", f.Err, frag)
		}
	}
	if res.Agg.Errors != 1 {
		t.Errorf("Agg.Errors = %d, want 1", res.Agg.Errors)
	}
	// The two survivors ran on the same worker arena around the panic; both
	// must have aggregated real metrics.
	if m := res.Agg.Metric("Baseline/total"); m == nil || m.Count() != 1 {
		t.Errorf("Baseline survivor missing from aggregates; keys = %v", res.Agg.Keys())
	}
	if m := res.Agg.Metric("Batching/total"); m == nil || m.Count() != 1 {
		t.Errorf("Batching survivor missing from aggregates; keys = %v", res.Agg.Keys())
	}
}

// TestRunRangePanicBecomesRecordError proves the shard primitive isolates a
// panic the same way: the record carries the error, the shard completes.
func TestRunRangePanicBecomesRecordError(t *testing.T) {
	scens := []hub.Scenario{
		{Apps: []apps.ID{apps.StepCounter}, Scheme: hub.Baseline, Windows: 1, Seed: 201, SkipAppCompute: true},
		{Apps: []apps.ID{apps.M2X}, Scheme: hub.Baseline, Windows: 1, Seed: 202, SkipAppCompute: true},
	}
	orig := execScenario
	execScenario = func(a *hub.Arena, s hub.Scenario) (*hub.RunResult, error) {
		if s.Seed == 202 {
			panic("boom")
		}
		return orig(a, s)
	}
	defer func() { execScenario = orig }()

	records, err := RunRange(scens, 0, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if records[0].Err != "" || records[0].Metrics == nil {
		t.Errorf("healthy record = %+v", records[0])
	}
	if !strings.Contains(records[1].Err, "panicked") || !strings.Contains(records[1].Err, "seed 202") {
		t.Errorf("panic record error = %q", records[1].Err)
	}
}
