package fleet

import (
	"encoding/json"
	"math"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"iothub/internal/apps"
	"iothub/internal/hub"
	"iothub/internal/obs"
)

// testSpec is a small sweep over light apps: 2 mixes x 2 schemes x 2 QoS
// multipliers = 8 scenarios, windows=1, computations skipped for speed.
func testSpec() Spec {
	return Spec{
		Seed: 7,
		Grid: &Grid{
			Apps:           [][]apps.ID{{apps.StepCounter}, {apps.M2X}},
			Schemes:        []string{"baseline", "batching"},
			Windows:        []int{1},
			QoS:            []float64{0.5, 1},
			SkipAppCompute: true,
		},
	}
}

func TestExpandOrderAndSeeds(t *testing.T) {
	spec := testSpec()
	scens, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(scens) != 8 {
		t.Fatalf("expanded to %d scenarios, want 8", len(scens))
	}
	// Fixed nesting: apps outermost, then schemes, windows, qos, faults.
	wantFirst := []string{
		"A2/Baseline/w1/q0.5", "A2/Baseline/w1", "A2/Batching/w1/q0.5", "A2/Batching/w1",
		"A4/Baseline/w1/q0.5", "A4/Baseline/w1",
	}
	for i, want := range wantFirst {
		if got := scens[i].Label(); got != want {
			t.Errorf("scenario %d = %s, want %s", i, got, want)
		}
	}
	again, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for i := range scens {
		if scens[i].Seed == 0 {
			t.Errorf("scenario %d has no derived seed", i)
		}
		if scens[i].Seed != again[i].Seed {
			t.Errorf("scenario %d seed unstable: %d vs %d", i, scens[i].Seed, again[i].Seed)
		}
		if scens[i].Seed != ScenarioSeed(spec.Seed, i) {
			t.Errorf("scenario %d seed %d != ScenarioSeed %d", i, scens[i].Seed, ScenarioSeed(spec.Seed, i))
		}
	}
	// Explicit scenarios keep a nonzero seed verbatim and derive a zero one.
	spec.Scenarios = []hub.Scenario{
		{Apps: []apps.ID{apps.StepCounter}, Scheme: hub.COM, Windows: 1, Seed: 99},
		{Apps: []apps.ID{apps.StepCounter}, Scheme: hub.COM, Windows: 1},
	}
	scens, err = spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if scens[8].Seed != 99 {
		t.Errorf("explicit seed overwritten: %d", scens[8].Seed)
	}
	if scens[9].Seed != ScenarioSeed(spec.Seed, 9) {
		t.Errorf("zero-seed explicit scenario got %d, want derived %d", scens[9].Seed, ScenarioSeed(spec.Seed, 9))
	}
}

// TestExpandMeterAxis pins the meters grid axis: it nests innermost, the
// zero model expands to a meter-free scenario (so old grids are unchanged),
// and an armed model lands in the label and survives spec JSON.
func TestExpandMeterAxis(t *testing.T) {
	spec := testSpec()
	spec.Grid.QoS = []float64{1}
	spec.Grid.Meters = []obs.MeterModel{{}, obs.Insitu(100)}
	scens, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(scens) != 8 {
		t.Fatalf("expanded to %d scenarios, want 8 (2 mixes x 2 schemes x 2 meters)", len(scens))
	}
	wantFirst := []string{
		"A2/Baseline/w1", "A2/Baseline/w1/m100",
		"A2/Batching/w1", "A2/Batching/w1/m100",
	}
	for i, want := range wantFirst {
		if got := scens[i].Label(); got != want {
			t.Errorf("scenario %d = %s, want %s", i, got, want)
		}
	}
	if scens[0].Meter != nil {
		t.Errorf("zero meter model should expand meter-free, got %+v", scens[0].Meter)
	}
	if scens[1].Meter == nil || scens[1].Meter.RateHz != 100 {
		t.Errorf("armed meter lost in expansion: %+v", scens[1].Meter)
	}
	// The meter axis round-trips through spec JSON.
	blob, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseSpec(strings.NewReader(string(blob)))
	if err != nil {
		t.Fatal(err)
	}
	rescens, err := back.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for i := range scens {
		if scens[i].Label() != rescens[i].Label() {
			t.Errorf("scenario %d label changed across spec JSON: %s vs %s", i, scens[i].Label(), rescens[i].Label())
		}
	}
}

func TestLoadSpecSmoke(t *testing.T) {
	spec, err := LoadSpec("testdata/smoke.json")
	if err != nil {
		t.Fatal(err)
	}
	scens, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(scens) != 8 {
		t.Errorf("smoke spec expands to %d scenarios, want 8", len(scens))
	}
}

// The tentpole determinism guarantee: the same spec aggregates to
// byte-identical state no matter how many workers raced over it.
func TestFleetDeterministicAcrossWorkers(t *testing.T) {
	one, err := Run(testSpec(), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	four, err := Run(testSpec(), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if one.Completed != 8 || four.Completed != 8 {
		t.Fatalf("completed %d / %d, want 8 / 8", one.Completed, four.Completed)
	}
	if a, b := one.Agg.Fingerprint(), four.Agg.Fingerprint(); a != b {
		t.Errorf("aggregates diverge across worker counts: %s vs %s", a, b)
	}
	key := "Baseline/total"
	ma, mb := one.Agg.Metric(key), four.Agg.Metric(key)
	if ma == nil || mb == nil {
		t.Fatalf("missing %s aggregate (keys %v)", key, one.Agg.Keys())
	}
	if ma.Mean() != mb.Mean() || ma.Quantile(0.95) != mb.Quantile(0.95) {
		t.Errorf("%s: mean %v/%v p95 %v/%v", key, ma.Mean(), mb.Mean(), ma.Quantile(0.95), mb.Quantile(0.95))
	}
	if ma.Count() != 4 {
		t.Errorf("%s count = %d, want 4 (2 mixes x 2 qos)", key, ma.Count())
	}
}

// Any scenario lifted out of the fleet re-runs standalone with identical
// metrics: seeds derive from (fleet seed, index) alone.
func TestStandaloneReplayMatchesFleet(t *testing.T) {
	spec := testSpec()
	dir := t.TempDir()
	journal := filepath.Join(dir, "fleet.jsonl")
	if _, err := Run(spec, Options{Workers: 3, Journal: journal}); err != nil {
		t.Fatal(err)
	}
	scens, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	header := Header(spec, scens)
	tags := make([]string, len(scens))
	for i, s := range scens {
		tags[i] = Tag(s)
	}
	replay, err := ReadJournal(journal, header, tags)
	if err != nil {
		t.Fatal(err)
	}
	done := replay.Done
	if len(done) != len(scens) {
		t.Fatalf("journal holds %d scenarios, want %d", len(done), len(scens))
	}
	if len(replay.Warnings) != 0 || replay.Truncated() {
		t.Fatalf("clean journal read produced warnings %v (truncated %v)", replay.Warnings, replay.Truncated())
	}
	for _, i := range []int{0, 3, 7} {
		res, err := RunScenario(scens[i])
		if err != nil {
			t.Fatalf("standalone %s: %v", scens[i].Label(), err)
		}
		standalone := Metrics(res, scens[i].Windows)
		for name, want := range done[i].Metrics {
			if got := standalone[name]; got != want {
				t.Errorf("scenario %d %s: standalone %s = %v, in-fleet %v",
					i, scens[i].Label(), name, got, want)
			}
		}
	}
}

// An interrupted sweep resumed from its journal lands on the same final
// aggregates as an uninterrupted one.
func TestResumeMatchesUninterrupted(t *testing.T) {
	straight, err := Run(testSpec(), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	journal := filepath.Join(t.TempDir(), "fleet.jsonl")
	partial, err := Run(testSpec(), Options{Workers: 2, Journal: journal, MaxScenarios: 3})
	if err != nil {
		t.Fatal(err)
	}
	if partial.Completed != 3 {
		t.Fatalf("partial run completed %d, want 3", partial.Completed)
	}
	resumed, err := Run(testSpec(), Options{Workers: 2, Journal: journal, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Resumed != 3 || resumed.Completed != 8 {
		t.Fatalf("resumed %d / completed %d, want 3 / 8", resumed.Resumed, resumed.Completed)
	}
	if a, b := straight.Agg.Fingerprint(), resumed.Agg.Fingerprint(); a != b {
		t.Errorf("resumed aggregates diverge from uninterrupted: %s vs %s", a, b)
	}
	// Resuming a finished sweep is a no-op replay with identical aggregates.
	again, err := Run(testSpec(), Options{Workers: 2, Journal: journal, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if again.Resumed != 8 || again.Agg.Fingerprint() != straight.Agg.Fingerprint() {
		t.Errorf("replay of finished journal: resumed %d fp match %v",
			again.Resumed, again.Agg.Fingerprint() == straight.Agg.Fingerprint())
	}
}

func TestResumeRejectsDifferentSpec(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "fleet.jsonl")
	if _, err := Run(testSpec(), Options{Workers: 1, Journal: journal, MaxScenarios: 2}); err != nil {
		t.Fatal(err)
	}
	other := testSpec()
	other.Seed = 8
	_, err := Run(other, Options{Workers: 1, Journal: journal, Resume: true})
	if err == nil || !strings.Contains(err.Error(), "different sweep") {
		t.Errorf("resume under changed seed: err = %v, want different-sweep rejection", err)
	}
	if _, err := Run(testSpec(), Options{Resume: true}); err == nil {
		t.Error("resume without a journal path accepted")
	}
}

// Failing scenarios are accounted (Failed + Agg.Errors), don't poison the
// aggregates, and survive the journal round trip.
func TestErrorScenarioAccounting(t *testing.T) {
	spec := testSpec()
	spec.Grid = nil
	spec.Scenarios = []hub.Scenario{
		{Apps: []apps.ID{apps.StepCounter}, Scheme: hub.Baseline, Windows: 1, SkipAppCompute: true},
		{Apps: []apps.ID{"A99"}, Scheme: hub.Baseline, Windows: 1},
		{Apps: []apps.ID{apps.M2X}, Scheme: hub.Batching, Windows: 1, SkipAppCompute: true},
	}
	journal := filepath.Join(t.TempDir(), "fleet.jsonl")
	res, err := Run(spec, Options{Workers: 2, Journal: journal})
	if err != nil {
		t.Fatal(err)
	}
	if res.Agg.Errors != 1 || len(res.Failed) != 1 {
		t.Fatalf("errors %d / failed %v, want exactly the A99 scenario", res.Agg.Errors, res.Failed)
	}
	if res.Failed[0].Index != 1 || !strings.Contains(res.Failed[0].Err, "A99") {
		t.Errorf("failed = %+v, want index 1 mentioning A99", res.Failed[0])
	}
	if m := res.Agg.Metric("Baseline/total"); m == nil || m.Count() != 1 {
		t.Errorf("Baseline/total polluted by the failed scenario: %+v", m)
	}
	resumed, err := Run(spec, Options{Workers: 2, Journal: journal, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Agg.Fingerprint() != res.Agg.Fingerprint() {
		t.Error("journal replay of an errored sweep diverges")
	}
	if len(resumed.Failed) != 1 || resumed.Failed[0].Index != 1 {
		t.Errorf("resumed failure records = %+v", resumed.Failed)
	}
}

// Scenario tags redirect aggregation buckets (the Fig. 12 experiment keys
// rows by combo/scheme/rate rather than scheme alone).
func TestTagOverridesAggregationBucket(t *testing.T) {
	spec := Spec{Seed: 3, Scenarios: []hub.Scenario{
		{Apps: []apps.ID{apps.StepCounter}, Scheme: hub.Baseline, Windows: 1, SkipAppCompute: true, Tag: "mix/base/q1"},
	}}
	res, err := Run(spec, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m := res.Agg.Metric("mix/base/q1/total"); m == nil || m.Count() != 1 {
		t.Errorf("tagged bucket missing; keys = %v", res.Agg.Keys())
	}
}

// P² sketches track exact quantiles closely on a deterministic pseudo-random
// stream, and are exact below five observations.
func TestP2QuantileAccuracy(t *testing.T) {
	const n = 2000
	m := newMetric()
	var exact []float64
	x := uint64(42)
	for i := 0; i < n; i++ {
		x = splitmix64(x)
		v := float64(x%100000) / 1000 // uniform-ish [0, 100)
		m.Add(v)
		exact = append(exact, v)
	}
	sort.Float64s(exact)
	for _, p := range []float64{0.5, 0.95, 0.99} {
		want := exact[int(math.Ceil(p*n))-1]
		got := m.Quantile(p)
		if math.Abs(got-want) > 2.5 {
			t.Errorf("P%.0f = %v, exact %v (|err| > 2.5)", p*100, got, want)
		}
	}
	small := newMetric()
	for _, v := range []float64{5, 1, 9} {
		small.Add(v)
	}
	if got := small.Quantile(0.5); got != 5 {
		t.Errorf("small-sample P50 = %v, want exact 5", got)
	}
	if got := small.Quantile(0.99); got != 9 {
		t.Errorf("small-sample P99 = %v, want exact 9", got)
	}
	if w := small.Count(); w != 3 {
		t.Errorf("count = %d, want 3", w)
	}
	if small.Min() != 1 || small.Max() != 9 {
		t.Errorf("min/max = %v/%v, want 1/9", small.Min(), small.Max())
	}
}

func TestWelfordMoments(t *testing.T) {
	var w Welford
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(v)
	}
	if w.Mean != 5 {
		t.Errorf("mean = %v, want 5", w.Mean)
	}
	if got := w.Std(); math.Abs(got-2.138089935) > 1e-9 {
		t.Errorf("std = %v, want ~2.1381 (sample std)", got)
	}
}

func TestScenarioSeedSpread(t *testing.T) {
	seen := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		s := ScenarioSeed(7, i)
		if s == 0 || seen[s] {
			t.Fatalf("seed collision or zero at index %d: %d", i, s)
		}
		seen[s] = true
	}
	if ScenarioSeed(7, 3) == ScenarioSeed(8, 3) {
		t.Error("different fleet seeds produced the same scenario seed")
	}
}

func TestFleetRunsBCOM(t *testing.T) {
	if testing.Short() {
		t.Skip("BCOM planning over a multi-app mix is slow for -short")
	}
	spec := Spec{Seed: 1, Scenarios: []hub.Scenario{
		{Apps: []apps.ID{apps.SpeechToTxt, apps.DropboxMgr}, Scheme: hub.BCOM, Windows: 1, SkipAppCompute: true},
	}}
	res, err := Run(spec, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Agg.Errors != 0 {
		t.Fatalf("BCOM scenario failed: %+v", res.Failed)
	}
	if m := res.Agg.Metric("BCOM/total"); m == nil || m.Mean() <= 0 {
		t.Errorf("BCOM aggregate missing or nonpositive; keys %v", res.Agg.Keys())
	}
}

func TestProgressOutput(t *testing.T) {
	var sb strings.Builder
	if _, err := Run(testSpec(), Options{Workers: 2, Progress: &sb}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) == 0 {
		t.Fatalf("no progress lines:\n%s", sb.String())
	}
	// Every line is one JSON object; the last reports completion.
	type prog struct {
		Done       int     `json:"done"`
		Total      int     `json:"total"`
		Errors     int     `json:"errors"`
		RatePerSec float64 `json:"rate_per_sec"`
		ETASec     float64 `json:"eta_sec"`
	}
	var last prog
	for _, l := range lines {
		if err := json.Unmarshal([]byte(l), &last); err != nil {
			t.Fatalf("progress line %q is not JSON: %v", l, err)
		}
	}
	if last.Done != 8 || last.Total != 8 || last.Errors != 0 {
		t.Errorf("final progress = %+v, want done=8 total=8 errors=0", last)
	}
	if last.ETASec != 0 {
		t.Errorf("final ETA = %v, want 0 at completion", last.ETASec)
	}
}

func TestMetricsPerWindowNormalization(t *testing.T) {
	s := hub.Scenario{Apps: []apps.ID{apps.StepCounter}, Scheme: hub.Baseline, Windows: 2, Seed: 5, SkipAppCompute: true}
	res, err := RunScenario(s)
	if err != nil {
		t.Fatal(err)
	}
	m := Metrics(res, 2)
	if got, want := m["total"], res.Energy.Attributed()/2; got != want {
		t.Errorf("total = %v, want per-window %v", got, want)
	}
	var sum float64
	for _, name := range []string{"collection", "interrupt", "transfer", "compute"} {
		sum += m[name]
	}
	if math.Abs(sum-m["total"]) > 1e-9*m["total"] {
		t.Errorf("routine metrics sum %v != total %v", sum, m["total"])
	}
}
