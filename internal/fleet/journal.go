package fleet

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"

	"iothub/internal/hub"
)

// The journal is a JSON-lines file: one header line naming the fleet, then
// one "done" line per completed scenario in strict index order (the reorder
// buffer guarantees the order), with periodic "snap" lines carrying the
// aggregator fingerprint for corruption detection. Because metrics are
// float64s serialized by encoding/json (shortest round-trip representation),
// replaying a journal rebuilds bit-identical aggregates.
type journalLine struct {
	Fleet *journalHeader `json:"fleet,omitempty"`
	Done  *journalDone   `json:"done,omitempty"`
	Snap  *journalSnap   `json:"snap,omitempty"`
}

type journalHeader struct {
	Seed      int64  `json:"seed"`
	Scenarios int    `json:"scenarios"`
	Spec      string `json:"spec"` // fingerprint of the expanded scenario sequence
}

type journalDone struct {
	Index   int                `json:"i"`
	Label   string             `json:"label"`
	Metrics map[string]float64 `json:"m,omitempty"`
	Err     string             `json:"err,omitempty"`
}

type journalSnap struct {
	Applied int    `json:"applied"`
	FP      string `json:"fp"`
}

// snapEvery controls how often aggregate-fingerprint snapshots are written.
const snapEvery = 16

// journalWriter appends lines to an open journal, flushing after every line
// so an interrupt loses at most the line being written.
type journalWriter struct {
	f *os.File
	w *bufio.Writer
}

func newJournalWriter(path string, header journalHeader, fresh bool) (*journalWriter, error) {
	flags := os.O_CREATE | os.O_WRONLY | os.O_APPEND
	if fresh {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("fleet: journal: %w", err)
	}
	jw := &journalWriter{f: f, w: bufio.NewWriter(f)}
	if fresh {
		if err := jw.write(journalLine{Fleet: &header}); err != nil {
			f.Close()
			return nil, err
		}
	}
	return jw, nil
}

func (jw *journalWriter) write(line journalLine) error {
	blob, err := json.Marshal(line)
	if err != nil {
		return fmt.Errorf("fleet: journal: %w", err)
	}
	if _, err := jw.w.Write(append(blob, '\n')); err != nil {
		return fmt.Errorf("fleet: journal: %w", err)
	}
	if err := jw.w.Flush(); err != nil {
		return fmt.Errorf("fleet: journal: %w", err)
	}
	return nil
}

func (jw *journalWriter) close() error {
	if err := jw.w.Flush(); err != nil {
		jw.f.Close()
		return err
	}
	return jw.f.Close()
}

// readJournal parses an existing journal and validates it against the
// current fleet identity: the header must match the expanded spec, done
// lines must be sequential from zero, and every snapshot fingerprint must
// agree with replaying the done lines up to it (tags[i] is scenario i's
// aggregation tag). It returns the completed records in index order.
func readJournal(path string, want journalHeader, tags []string) ([]journalDone, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("fleet: journal: %w", err)
	}
	defer f.Close()

	var (
		done     []journalDone
		sawHead  bool
		replayed = NewAggregator()
	)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		var line journalLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return nil, fmt.Errorf("fleet: journal line %d: %w", lineNo, err)
		}
		switch {
		case line.Fleet != nil:
			if sawHead {
				return nil, fmt.Errorf("fleet: journal line %d: duplicate header", lineNo)
			}
			sawHead = true
			if *line.Fleet != want {
				return nil, fmt.Errorf("fleet: journal is for a different sweep (header %+v, want %+v)", *line.Fleet, want)
			}
		case line.Done != nil:
			if !sawHead {
				return nil, fmt.Errorf("fleet: journal line %d: done before header", lineNo)
			}
			d := *line.Done
			if d.Index != len(done) {
				return nil, fmt.Errorf("fleet: journal line %d: scenario %d out of order (want %d)",
					lineNo, d.Index, len(done))
			}
			if d.Index >= len(tags) {
				return nil, fmt.Errorf("fleet: journal line %d: scenario %d beyond the spec's %d",
					lineNo, d.Index, len(tags))
			}
			if d.Err != "" {
				replayed.ApplyError()
			} else {
				replayed.Apply(tags[d.Index], d.Metrics)
			}
			done = append(done, d)
		case line.Snap != nil:
			if line.Snap.Applied != len(done) {
				return nil, fmt.Errorf("fleet: journal line %d: snapshot at %d but %d scenarios done",
					lineNo, line.Snap.Applied, len(done))
			}
			if fp := replayed.Fingerprint(); fp != line.Snap.FP {
				return nil, fmt.Errorf("fleet: journal line %d: snapshot fingerprint %s != replayed %s (journal corrupt?)",
					lineNo, line.Snap.FP, fp)
			}
		default:
			return nil, fmt.Errorf("fleet: journal line %d: unrecognized record", lineNo)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("fleet: journal: %w", err)
	}
	if !sawHead {
		return nil, fmt.Errorf("fleet: journal has no header")
	}
	return done, nil
}

// specFingerprint hashes the expanded scenario sequence (labels and seeds)
// so a journal refuses to resume under a different spec.
func specFingerprint(scens []hub.Scenario) string {
	h := uint64(1469598103934665603) // FNV-1a 64 offset basis
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
		h ^= '|'
		h *= 1099511628211
	}
	for _, s := range scens {
		mix(s.Label())
		mix(strconv.FormatInt(s.Seed, 10))
		mix(s.Tag)
	}
	return fmt.Sprintf("%016x", h)
}
