package fleet

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"iothub/internal/hub"
)

// The journal is a JSON-lines file: one header line naming the fleet, then
// one "done" line per completed scenario in strict index order (the reorder
// buffer guarantees the order), with periodic "snap" lines carrying the
// aggregator fingerprint for corruption detection. Because metrics are
// float64s serialized by encoding/json (shortest round-trip representation),
// replaying a journal rebuilds bit-identical aggregates.
//
// The journal API is exported because two engines write the same format: the
// in-process fleet.Run collector and the fleetd coordinator (which folds
// shard submissions instead of worker outcomes, but checkpoints and resumes
// identically).
type journalLine struct {
	Fleet *JournalHeader `json:"fleet,omitempty"`
	Done  *DoneRecord    `json:"done,omitempty"`
	Snap  *journalSnap   `json:"snap,omitempty"`
}

// JournalHeader names the sweep a journal belongs to; resume refuses a
// journal whose header disagrees with the spec being run.
type JournalHeader struct {
	Seed      int64  `json:"seed"`
	Scenarios int    `json:"scenarios"`
	Spec      string `json:"spec"` // fingerprint of the expanded scenario sequence
}

// Header builds the journal identity of a spec's expansion.
func Header(spec Spec, scens []hub.Scenario) JournalHeader {
	return JournalHeader{Seed: spec.Seed, Scenarios: len(scens), Spec: SpecFingerprint(scens)}
}

// DoneRecord is one completed scenario: its index, human label, extracted
// metrics (nil for a failed run) and error text ("" for a successful one).
// It is both the journal's "done" line and the payload fleetd workers submit.
type DoneRecord struct {
	Index   int                `json:"i"`
	Label   string             `json:"label"`
	Metrics map[string]float64 `json:"m,omitempty"`
	Err     string             `json:"err,omitempty"`
}

type journalSnap struct {
	Applied int    `json:"applied"`
	FP      string `json:"fp"`
}

// SnapEvery is how often (in applied scenarios) aggregate-fingerprint
// snapshots are written.
const SnapEvery = 16

// maxJournalLine bounds one record's size when reading.
const maxJournalLine = 1 << 22

// JournalWriter appends lines to an open journal, flushing after every line
// so an interrupt loses at most the line being written.
type JournalWriter struct {
	f *os.File
	w *bufio.Writer
}

// NewJournalWriter opens (fresh=true: truncates and writes the header;
// fresh=false: appends to) the journal at path.
func NewJournalWriter(path string, header JournalHeader, fresh bool) (*JournalWriter, error) {
	flags := os.O_CREATE | os.O_WRONLY | os.O_APPEND
	if fresh {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("fleet: journal: %w", err)
	}
	jw := &JournalWriter{f: f, w: bufio.NewWriter(f)}
	if fresh {
		if err := jw.write(journalLine{Fleet: &header}); err != nil {
			f.Close()
			return nil, err
		}
	}
	return jw, nil
}

// WriteDone appends one completed-scenario record.
func (jw *JournalWriter) WriteDone(d DoneRecord) error {
	return jw.write(journalLine{Done: &d})
}

// WriteSnap appends an aggregate-fingerprint checkpoint.
func (jw *JournalWriter) WriteSnap(applied int, fp string) error {
	return jw.write(journalLine{Snap: &journalSnap{Applied: applied, FP: fp}})
}

func (jw *JournalWriter) write(line journalLine) error {
	blob, err := json.Marshal(line)
	if err != nil {
		return fmt.Errorf("fleet: journal: %w", err)
	}
	if _, err := jw.w.Write(append(blob, '\n')); err != nil {
		return fmt.Errorf("fleet: journal: %w", err)
	}
	if err := jw.w.Flush(); err != nil {
		return fmt.Errorf("fleet: journal: %w", err)
	}
	return nil
}

// Close flushes and closes the journal file.
func (jw *JournalWriter) Close() error {
	if err := jw.w.Flush(); err != nil {
		jw.f.Close()
		return err
	}
	return jw.f.Close()
}

// JournalReplay is the validated content of an existing journal.
type JournalReplay struct {
	// Done holds the completed records in index order.
	Done []DoneRecord
	// Warnings lists non-fatal conditions tolerated during the read — today
	// only a truncated final record (writer crashed mid-write).
	Warnings []string
	// ValidBytes is the offset just past the last complete, newline-terminated
	// record; TotalBytes is the file size. They differ exactly when a partial
	// final record was skipped.
	ValidBytes int64
	TotalBytes int64
}

// Truncated reports whether the journal carries a partial final record.
func (r *JournalReplay) Truncated() bool { return r.ValidBytes < r.TotalBytes }

// DropPartialTail truncates the journal file back to the last complete
// record, making it safe to append to. A no-op when nothing was truncated.
func (r *JournalReplay) DropPartialTail(path string) error {
	if !r.Truncated() {
		return nil
	}
	if err := os.Truncate(path, r.ValidBytes); err != nil {
		return fmt.Errorf("fleet: journal: drop partial tail: %w", err)
	}
	r.TotalBytes = r.ValidBytes
	return nil
}

// ReadJournal parses an existing journal and validates it against the
// current fleet identity: the header must match the expanded spec, done
// lines must be sequential from zero, and every snapshot fingerprint must
// agree with replaying the done lines up to it (tags[i] is scenario i's
// aggregation tag).
//
// A partial final record — the signature of a crash mid-write — is skipped
// with a warning rather than an error: the journal flushes line-atomically,
// so an unterminated tail can only be the record that was being written when
// the process died, and the sweep simply re-runs that scenario. Anything
// malformed before the final record is real corruption and still fails.
func ReadJournal(path string, want JournalHeader, tags []string) (*JournalReplay, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("fleet: journal: %w", err)
	}
	defer f.Close()

	replay := &JournalReplay{}
	var (
		sawHead  bool
		replayed = NewAggregator()
	)
	r := bufio.NewReaderSize(f, 1<<16)
	lineNo := 0
	for {
		line, err := r.ReadString('\n')
		if err == io.EOF {
			replay.TotalBytes = replay.ValidBytes + int64(len(line))
			if len(line) > 0 {
				replay.Warnings = append(replay.Warnings,
					fmt.Sprintf("journal line %d: skipping %d-byte partial record (crash mid-write?); resuming from the last complete record",
						lineNo+1, len(line)))
			}
			break
		}
		if err != nil {
			return nil, fmt.Errorf("fleet: journal: %w", err)
		}
		lineNo++
		if len(line) > maxJournalLine {
			return nil, fmt.Errorf("fleet: journal line %d: record of %d bytes", lineNo, len(line))
		}
		var rec journalLine
		if jerr := json.Unmarshal([]byte(strings.TrimSuffix(line, "\n")), &rec); jerr != nil {
			return nil, fmt.Errorf("fleet: journal line %d: %w", lineNo, jerr)
		}
		switch {
		case rec.Fleet != nil:
			if sawHead {
				return nil, fmt.Errorf("fleet: journal line %d: duplicate header", lineNo)
			}
			sawHead = true
			if *rec.Fleet != want {
				return nil, fmt.Errorf("fleet: journal is for a different sweep (header %+v, want %+v)", *rec.Fleet, want)
			}
		case rec.Done != nil:
			if !sawHead {
				return nil, fmt.Errorf("fleet: journal line %d: done before header", lineNo)
			}
			d := *rec.Done
			if d.Index != len(replay.Done) {
				return nil, fmt.Errorf("fleet: journal line %d: scenario %d out of order (want %d)",
					lineNo, d.Index, len(replay.Done))
			}
			if d.Index >= len(tags) {
				return nil, fmt.Errorf("fleet: journal line %d: scenario %d beyond the spec's %d",
					lineNo, d.Index, len(tags))
			}
			if d.Err != "" {
				replayed.ApplyError()
			} else {
				replayed.Apply(tags[d.Index], d.Metrics)
			}
			replay.Done = append(replay.Done, d)
		case rec.Snap != nil:
			if rec.Snap.Applied != len(replay.Done) {
				return nil, fmt.Errorf("fleet: journal line %d: snapshot at %d but %d scenarios done",
					lineNo, rec.Snap.Applied, len(replay.Done))
			}
			if fp := replayed.Fingerprint(); fp != rec.Snap.FP {
				return nil, fmt.Errorf("fleet: journal line %d: snapshot fingerprint %s != replayed %s (journal corrupt?)",
					lineNo, rec.Snap.FP, fp)
			}
		default:
			return nil, fmt.Errorf("fleet: journal line %d: unrecognized record", lineNo)
		}
		replay.ValidBytes += int64(len(line))
	}
	if !sawHead {
		return nil, fmt.Errorf("fleet: journal has no header")
	}
	return replay, nil
}

// SpecFingerprint hashes the expanded scenario sequence (labels, seeds, and
// tags) so a journal refuses to resume — and a fleetd worker refuses to
// execute — under a different spec.
func SpecFingerprint(scens []hub.Scenario) string {
	h := uint64(1469598103934665603) // FNV-1a 64 offset basis
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
		h ^= '|'
		h *= 1099511628211
	}
	for _, s := range scens {
		mix(s.Label())
		mix(strconv.FormatInt(s.Seed, 10))
		mix(s.Tag)
	}
	return fmt.Sprintf("%016x", h)
}
