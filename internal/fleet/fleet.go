package fleet

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"iothub/internal/core"
	"iothub/internal/hub"
	"iothub/internal/obs"
	"iothub/internal/scheme"
)

// Options tune one sweep execution without changing what it computes: the
// same spec yields byte-identical aggregates under any Options.
type Options struct {
	// Workers is the pool size (0 = Spec.Workers, then GOMAXPROCS).
	Workers int
	// Journal is the checkpoint file path ("" = no journal).
	Journal string
	// Resume replays an existing journal at Journal and continues from the
	// first unfinished scenario. Without Resume an existing journal is
	// truncated and the sweep starts over.
	Resume bool
	// Progress, when non-nil, receives coarse progress lines.
	Progress io.Writer
	// MaxScenarios, when > 0, stops the sweep after that many scenarios
	// have been applied (counting resumed ones) and leaves the journal
	// resumable — the hook the interrupt-and-resume tests use.
	MaxScenarios int
	// Gauges, when non-nil, receives live sweep state (scenarios done,
	// worker occupancy, aggregate fingerprints) — the backing store of
	// iotfleet's Prometheus endpoint. Nil allocates a private set so
	// progress lines always carry rate and ETA.
	Gauges *obs.Gauges
}

// ScenarioError records one failed scenario; the sweep keeps going.
type ScenarioError struct {
	Index int
	Label string
	Err   string
}

// Result is a completed (or MaxScenarios-truncated) sweep.
type Result struct {
	// Agg holds the streaming aggregates in scenario-index order.
	Agg *Aggregator
	// Scenarios is the expanded sweep size; Completed counts scenarios
	// applied this run plus any resumed from the journal; Resumed counts
	// only the latter.
	Scenarios int
	Completed int
	Resumed   int
	// Failed lists scenarios whose run errored (also counted in
	// Agg.Errors). Failures seen only in a resumed journal prefix carry the
	// journal's recorded error text.
	Failed []ScenarioError
	// Warnings lists non-fatal conditions tolerated during the run, e.g. a
	// journal whose final record was truncated by a crash mid-write.
	Warnings []string
}

// RunScenario materializes and executes one scenario, planning the partition
// when the scheme's registry entry calls for one — BCOM today, any future
// partitioned scheme without changes here (this is the planner-aware sibling
// of hub.RunScenario). It runs in a throwaway arena, so the result owns its
// storage outright.
func RunScenario(s hub.Scenario) (*hub.RunResult, error) {
	return RunScenarioIn(hub.NewArena(), s)
}

// RunScenarioIn is RunScenario executing in a caller-owned arena — what the
// fleet workers run, one arena per worker, so back-to-back scenarios reuse
// the scheduler, meter, and device stack instead of reconstructing them. The
// returned result is only valid until the arena's next run (see the
// retention contract in hub's arena); callers that keep it must Clone it.
func RunScenarioIn(a *hub.Arena, s hub.Scenario) (*hub.RunResult, error) {
	cfg, err := s.Config()
	if err != nil {
		return nil, err
	}
	def, err := scheme.Lookup(s.Scheme)
	if err != nil {
		return nil, err
	}
	if def.RequiresAssign() && cfg.Assign == nil {
		// A scenario carrying its own explicit partition (Hybrid plans, or a
		// pinned BCOM split) runs it verbatim; only a nil Assign invokes the
		// planner's admission test.
		plan, err := core.PlanBCOM(cfg.Apps, hub.DefaultParams())
		if err != nil {
			return nil, err
		}
		cfg.Assign = plan.Assign
	}
	return a.Run(cfg)
}

// execScenario is the worker pool's execution function, a seam the panic
// recovery tests swap to inject failures.
var execScenario = RunScenarioIn

// safeRun executes one scenario in *ap and converts a panic into a scenario
// error carrying the label and seed, so one pathological scenario fails
// alone instead of killing the whole sweep. A panic leaves the arena in an
// unknowable mid-run state, so it is replaced with a fresh one.
func safeRun(ap **hub.Arena, s hub.Scenario) (r *hub.RunResult, err error) {
	defer func() {
		if p := recover(); p != nil {
			*ap = hub.NewArena()
			r = nil
			err = fmt.Errorf("fleet: scenario %s (seed %d) panicked: %v", s.Label(), s.Seed, p)
		}
	}()
	return execScenario(*ap, s)
}

// Run executes the sweep: Expand the spec, run every not-yet-journaled
// scenario on the worker pool, and fold results into the aggregator in
// strict scenario-index order (a reorder buffer holds early finishers), so
// the final aggregates are byte-identical for any worker count.
func Run(spec Spec, opt Options) (*Result, error) {
	scens, err := spec.Expand()
	if err != nil {
		return nil, err
	}
	workers := opt.Workers
	if workers == 0 {
		workers = spec.Workers
	}
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		return nil, fmt.Errorf("fleet: %d workers, want >= 1", workers)
	}

	gauges := opt.Gauges
	if gauges == nil {
		gauges = obs.NewGauges()
	}
	gauges.StartSweep(len(scens), workers)

	header := Header(spec, scens)
	tags := make([]string, len(scens))
	for i, s := range scens {
		tags[i] = Tag(s)
	}

	res := &Result{Agg: NewAggregator(), Scenarios: len(scens)}

	// Resume: replay the journal prefix into the aggregator. A partial final
	// record (crash mid-write) is dropped from the file so appending stays
	// line-atomic, and the scenario simply re-runs.
	var resumed []DoneRecord
	if opt.Resume {
		if opt.Journal == "" {
			return nil, fmt.Errorf("fleet: resume requested without a journal path")
		}
		replay, err := ReadJournal(opt.Journal, header, tags)
		if err != nil {
			return nil, err
		}
		if err := replay.DropPartialTail(opt.Journal); err != nil {
			return nil, err
		}
		res.Warnings = append(res.Warnings, replay.Warnings...)
		resumed = replay.Done
		for _, d := range resumed {
			if d.Err != "" {
				res.Agg.ApplyError()
				res.Failed = append(res.Failed, ScenarioError{Index: d.Index, Label: d.Label, Err: d.Err})
			} else {
				res.Agg.Apply(tags[d.Index], d.Metrics)
			}
			gauges.ScenarioDone(d.Err != "")
		}
		res.Resumed = len(resumed)
		res.Completed = len(resumed)
	}
	next := len(resumed) // first scenario index still to run

	var jw *JournalWriter
	if opt.Journal != "" {
		jw, err = NewJournalWriter(opt.Journal, header, !opt.Resume)
		if err != nil {
			return nil, err
		}
		defer jw.Close()
	}

	limit := len(scens)
	if opt.MaxScenarios > 0 && opt.MaxScenarios < limit {
		limit = opt.MaxScenarios
	}
	if next >= limit {
		gauges.SetFingerprint(res.Agg.Fingerprint())
		progress(opt.Progress, res, len(scens), gauges)
		return res, nil
	}

	type outcome struct {
		index   int
		metrics map[string]float64
		err     string
	}
	indices := make(chan int)
	outcomes := make(chan outcome, workers)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One arena per worker: scenarios on this goroutine reuse the
			// same scheduler/meter/device stack run after run. Metrics is
			// extracted before the next run recycles the result's storage.
			arena := hub.NewArena()
			for i := range indices {
				s := scens[i]
				gauges.WorkerBusy(+1)
				r, err := safeRun(&arena, s)
				gauges.WorkerBusy(-1)
				if err != nil {
					outcomes <- outcome{index: i, err: err.Error()}
					continue
				}
				gauges.MeterObserved(int64(r.MeterSamples), int64(r.MeterDroppedSamples),
					r.MeterCycles, int64(r.MeterFlushes), int64(r.MeterBytes))
				gauges.PowerObserved(int64(r.Brownouts), int64(r.BrownoutTime),
					int64(r.BatteryHarvestJ*1e6))
				outcomes <- outcome{index: i, metrics: Metrics(r, s.Windows)}
			}
		}()
	}
	go func() {
		for i := next; i < limit; i++ {
			indices <- i
		}
		close(indices)
		wg.Wait()
		close(outcomes)
	}()

	// Collector: apply outcomes in index order via a reorder buffer. The
	// journal therefore also stays in index order, which keeps resume a
	// straight prefix replay.
	pending := map[int]outcome{}
	var firstJournalErr error
	for o := range outcomes {
		pending[o.index] = o
		for {
			ready, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			d := DoneRecord{Index: ready.index, Label: scens[ready.index].Label(),
				Metrics: ready.metrics, Err: ready.err}
			if ready.err != "" {
				res.Agg.ApplyError()
				res.Failed = append(res.Failed, ScenarioError{Index: ready.index, Label: d.Label, Err: ready.err})
			} else {
				res.Agg.Apply(tags[ready.index], ready.metrics)
			}
			res.Completed++
			next++
			gauges.ScenarioDone(ready.err != "")
			if jw != nil && firstJournalErr == nil {
				if err := jw.WriteDone(d); err != nil {
					firstJournalErr = err
				}
			}
			if res.Completed%SnapEvery == 0 || res.Completed == len(scens) {
				fp := res.Agg.Fingerprint()
				gauges.SetFingerprint(fp)
				if jw != nil && firstJournalErr == nil {
					if err := jw.WriteSnap(res.Completed, fp); err != nil {
						firstJournalErr = err
					}
				}
			}
			progress(opt.Progress, res, len(scens), gauges)
		}
	}
	if len(pending) != 0 {
		return nil, fmt.Errorf("fleet: internal: %d outcomes stuck in the reorder buffer", len(pending))
	}
	if firstJournalErr != nil {
		return nil, firstJournalErr
	}
	return res, nil
}

// RunRange executes scenarios [start, end) of an expanded sequence with up
// to parallelism scenarios in flight and returns their records in index
// order — the shard-execution primitive fleetd workers run. Results are
// independent of parallelism (each scenario is self-seeded and records are
// assembled positionally).
func RunRange(scens []hub.Scenario, start, end, parallelism int) ([]DoneRecord, error) {
	if start < 0 || end > len(scens) || start > end {
		return nil, fmt.Errorf("fleet: range [%d, %d) outside 0..%d", start, end, len(scens))
	}
	if parallelism < 1 {
		parallelism = 1
	}
	records := make([]DoneRecord, end-start)
	indices := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			arena := hub.NewArena()
			for i := range indices {
				d := DoneRecord{Index: i, Label: scens[i].Label()}
				if r, err := safeRun(&arena, scens[i]); err != nil {
					d.Err = err.Error()
				} else {
					d.Metrics = Metrics(r, scens[i].Windows)
				}
				records[i-start] = d
			}
		}()
	}
	for i := start; i < end; i++ {
		indices <- i
	}
	close(indices)
	wg.Wait()
	return records, nil
}

// progress prints a structured one-line JSON status at ~1/16 completion
// steps (and at the end) so long sweeps stay observable without flooding the
// terminal and CI logs stay machine-parseable.
func progress(w io.Writer, res *Result, total int, g *obs.Gauges) {
	if w == nil {
		return
	}
	step := total / 16
	if step < 1 {
		step = 1
	}
	if res.Completed%step != 0 && res.Completed != total {
		return
	}
	s := g.Read()
	fmt.Fprintf(w, `{"done":%d,"total":%d,"errors":%d,"rate_per_sec":%.2f,"eta_sec":%.1f}`+"\n",
		res.Completed, total, res.Agg.Errors, s.RatePerSec, s.ETASeconds)
}
