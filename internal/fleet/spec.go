// Package fleet executes thousands of independent hub scenarios across a
// bounded worker pool and streams their energy metrics into constant-memory
// aggregates — the sweep engine behind the paper's parameter-space figures
// (savings vs sampling rate, scheme comparisons across app mixes).
//
// Three guarantees shape the design:
//
//  1. Determinism: every scenario's seed derives from the fleet seed and the
//     scenario's index (splitmix64), so any single scenario re-runs
//     standalone bit-for-bit; and aggregates are applied strictly in
//     scenario-index order through a reorder buffer, so the final numbers
//     are byte-identical whether the sweep ran on 1 worker or N.
//  2. Constant memory: per-metric state is an online Welford accumulator
//     plus fixed-size P² quantile sketches — O(metrics), not O(scenarios).
//  3. Resumability: a JSON-lines journal records each completed scenario's
//     metrics in index order; an interrupted sweep replays the journal and
//     continues, landing on the same final aggregates as an uninterrupted
//     run.
package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"iothub/internal/apps"
	"iothub/internal/hub"
	"iothub/internal/obs"
	"iothub/internal/power"
)

// Grid declares a cartesian sweep: every combination of app mix, scheme,
// window count, QoS multiplier, and fault schedule becomes one scenario.
// Empty QoS means the paper-default rate (x1); empty Faults means fault-free.
type Grid struct {
	// Apps lists the app mixes to sweep, each a set of Table II IDs run
	// concurrently on one hub.
	Apps [][]apps.ID `json:"apps"`
	// Schemes names the execution schemes, parsed against the scheme
	// registry via hub.ParseScheme ("baseline", "batching", "com",
	// "bcom", "beam").
	Schemes []string `json:"schemes"`
	// Windows lists QoS-window counts per run.
	Windows []int `json:"windows"`
	// QoS lists sampling-rate multipliers (defaults to [1]).
	QoS []float64 `json:"qos,omitempty"`
	// Faults lists fault schedules in faults.ParseSchedule text form
	// (defaults to [""], i.e. fault-free).
	Faults []string `json:"faults,omitempty"`
	// Meters lists in-situ meter models to sweep (defaults to the free
	// external meter, i.e. unobserved runs).
	Meters []obs.MeterModel `json:"meters,omitempty"`
	// Power lists battery/harvest supplies to sweep (the innermost axis;
	// defaults to mains power, i.e. unconstrained runs).
	Power []power.Supply `json:"power,omitempty"`
	// SkipAppCompute applies to every grid scenario (pure-energy sweeps).
	SkipAppCompute bool `json:"skipCompute,omitempty"`
}

// Spec is the declarative input of a fleet sweep: a seed, an optional
// cartesian grid, and an optional explicit scenario list. Expand flattens it
// into the fleet's scenario sequence.
type Spec struct {
	// Seed is the fleet master seed; per-scenario seeds derive from it.
	Seed int64 `json:"seed"`
	// Workers is the default pool size (0 = GOMAXPROCS); the -workers flag
	// and Options.Workers override it.
	Workers int `json:"workers,omitempty"`
	// Grid, when present, contributes its full cartesian product.
	Grid *Grid `json:"grid,omitempty"`
	// Scenarios are appended after the grid. A scenario with Seed 0 gets a
	// derived seed like grid scenarios do; a nonzero Seed is kept verbatim.
	Scenarios []hub.Scenario `json:"scenarios,omitempty"`
}

// ParseSpec reads a JSON sweep spec.
func ParseSpec(r io.Reader) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("fleet: parse spec: %w", err)
	}
	return s, nil
}

// LoadSpec reads a JSON sweep spec from a file.
func LoadSpec(path string) (Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return Spec{}, fmt.Errorf("fleet: %w", err)
	}
	defer f.Close()
	return ParseSpec(f)
}

// Expand flattens the spec into its scenario sequence in a fixed order —
// grid first (apps, then schemes, then windows, then QoS, then faults,
// innermost last), then the explicit list — assigning each scenario its
// derived seed. The order is part of the fleet's deterministic identity:
// index i always names the same scenario.
func (s Spec) Expand() ([]hub.Scenario, error) {
	var out []hub.Scenario
	if s.Grid != nil {
		g := *s.Grid
		if len(g.Apps) == 0 || len(g.Schemes) == 0 || len(g.Windows) == 0 {
			return nil, fmt.Errorf("fleet: grid needs apps, schemes, and windows")
		}
		qos := g.QoS
		if len(qos) == 0 {
			qos = []float64{1}
		}
		fault := g.Faults
		if len(fault) == 0 {
			fault = []string{""}
		}
		meters := g.Meters
		if len(meters) == 0 {
			meters = []obs.MeterModel{{}}
		}
		supplies := g.Power
		if len(supplies) == 0 {
			supplies = []power.Supply{{}}
		}
		for _, mix := range g.Apps {
			for _, name := range g.Schemes {
				scheme, err := hub.ParseScheme(name)
				if err != nil {
					return nil, fmt.Errorf("fleet: grid: %w", err)
				}
				for _, w := range g.Windows {
					if w < 1 {
						return nil, fmt.Errorf("fleet: grid: windows %d, want >= 1", w)
					}
					for _, q := range qos {
						for _, f := range fault {
							for mi := range meters {
								for pi := range supplies {
									sc := hub.Scenario{
										Apps: mix, Scheme: scheme, Windows: w,
										QoSMult: q, Faults: f,
										SkipAppCompute: g.SkipAppCompute,
									}
									// The zero model is the default external
									// meter: leave it nil so meter-free grids
									// expand (and serialize) exactly as before.
									if meters[mi] != (obs.MeterModel{}) {
										sc.Meter = &meters[mi]
									}
									// Same for the zero supply: nil means
									// mains power, so battery-free grids
									// expand exactly as before.
									if supplies[pi] != (power.Supply{}) {
										sc.Power = &supplies[pi]
									}
									out = append(out, sc)
								}
							}
						}
					}
				}
			}
		}
	}
	out = append(out, s.Scenarios...)
	if len(out) == 0 {
		return nil, fmt.Errorf("fleet: spec expands to no scenarios")
	}
	for i := range out {
		if out[i].Seed == 0 {
			out[i].Seed = ScenarioSeed(s.Seed, i)
		}
	}
	return out, nil
}

// ScenarioSeed derives scenario index i's seed from the fleet seed with one
// splitmix64 step over a seed/index mix. It is a pure function — a scenario
// lifted out of a fleet re-runs standalone with the identical seed.
func ScenarioSeed(fleetSeed int64, i int) int64 {
	x := uint64(fleetSeed)*0x9e3779b97f4a7c15 + uint64(i) + 1
	seed := int64(splitmix64(splitmix64(x)))
	if seed == 0 {
		seed = 1 // keep "seed 0" free to mean "derive one" in specs
	}
	return seed
}

// splitmix64 is the output-mixing half of the reference splitmix64 PRNG
// (same constants as internal/faults); one call is a full avalanche.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
