package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"iothub/internal/energy"
	"iothub/internal/hub"
)

// MetricNames are the per-run metrics extracted from every scenario, in
// report order: the four per-window energy stages and their total (joules per
// window), the QoS-facing pair the optimizer constrains on — mean output
// latency (seconds past window close) and the run's QoS violation count — and
// the battery-ledger trio (survival seconds, brownout count, final SoC
// fraction), present only for power-armed runs so mains sweeps aggregate
// exactly as before. Each aggregate key is "<tag>/<metric>" where tag is the
// scenario's Tag (or its scheme name when untagged).
var MetricNames = []string{"collection", "interrupt", "transfer", "compute", "total", "latency", "qos",
	"survival", "brownouts", "soc"}

// Metrics extracts a run's per-window energy numbers (joules per window) and
// its latency/QoS observations. Power-armed runs additionally report their
// battery ledger; Apply skips metric names absent from the map, so the
// conditional keys never perturb a mains-powered sweep's aggregates.
func Metrics(res *hub.RunResult, windows int) map[string]float64 {
	w := float64(windows)
	if w <= 0 {
		w = 1
	}
	m := map[string]float64{
		"collection": res.Energy[energy.DataCollection] / w,
		"interrupt":  res.Energy[energy.Interrupt] / w,
		"transfer":   res.Energy[energy.DataTransfer] / w,
		"compute":    res.Energy[energy.AppCompute] / w,
		"total":      res.Energy.Attributed() / w,
		"latency":    res.OutputLatency().Mean.Seconds(),
		"qos":        float64(res.QoSViolations),
	}
	if res.BatteryCapacityJ > 0 {
		m["survival"] = res.BatterySurvival.Seconds()
		m["brownouts"] = float64(res.Brownouts)
		m["soc"] = res.BatterySoCJ / res.BatteryCapacityJ
	}
	return m
}

// Tag is the aggregation bucket a scenario's metrics land in.
func Tag(s hub.Scenario) string {
	if s.Tag != "" {
		return s.Tag
	}
	return s.Scheme.String()
}

// Welford is an online mean/variance accumulator (Welford's algorithm):
// numerically stable, O(1) per observation, and a pure function of the
// observation sequence.
type Welford struct {
	N    int64
	Mean float64
	m2   float64
	Min  float64
	Max  float64
}

// Add folds one observation in.
func (w *Welford) Add(x float64) {
	w.N++
	if w.N == 1 {
		w.Min, w.Max = x, x
	} else {
		if x < w.Min {
			w.Min = x
		}
		if x > w.Max {
			w.Max = x
		}
	}
	d := x - w.Mean
	w.Mean += d / float64(w.N)
	w.m2 += d * (x - w.Mean)
}

// Std is the sample standard deviation (0 for fewer than two observations).
func (w *Welford) Std() float64 {
	if w.N < 2 {
		return 0
	}
	return math.Sqrt(w.m2 / float64(w.N-1))
}

// p2 is the P² single-quantile estimator (Jain & Chlamtac 1985): five
// markers track the quantile without storing observations. Estimates are a
// deterministic function of the observation sequence, which the fleet's
// in-index-order aggregation relies on.
type p2 struct {
	p      float64
	filled int        // observations seen, up to 5
	n      [5]float64 // marker positions (1-based)
	np     [5]float64 // desired positions
	dn     [5]float64 // desired-position increments
	q      [5]float64 // marker heights
}

func newP2(p float64) *p2 {
	s := &p2{p: p}
	s.dn = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return s
}

func (s *p2) add(x float64) {
	if s.filled < 5 {
		s.q[s.filled] = x
		s.filled++
		if s.filled == 5 {
			sort.Float64s(s.q[:])
			for i := 0; i < 5; i++ {
				s.n[i] = float64(i + 1)
				s.np[i] = 1 + 4*s.dn[i]
			}
		}
		return
	}
	// Find the cell x falls in and clamp the extreme markers.
	var k int
	switch {
	case x < s.q[0]:
		s.q[0], k = x, 0
	case x < s.q[1]:
		k = 0
	case x < s.q[2]:
		k = 1
	case x < s.q[3]:
		k = 2
	case x <= s.q[4]:
		k = 3
	default:
		s.q[4], k = x, 3
	}
	for i := k + 1; i < 5; i++ {
		s.n[i]++
	}
	for i := 0; i < 5; i++ {
		s.np[i] += s.dn[i]
	}
	// Nudge the three interior markers toward their desired positions with
	// piecewise-parabolic (fallback linear) interpolation.
	for i := 1; i <= 3; i++ {
		d := s.np[i] - s.n[i]
		if (d >= 1 && s.n[i+1]-s.n[i] > 1) || (d <= -1 && s.n[i-1]-s.n[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1
			}
			qp := s.parabolic(i, sign)
			if s.q[i-1] < qp && qp < s.q[i+1] {
				s.q[i] = qp
			} else {
				s.q[i] = s.linear(i, sign)
			}
			s.n[i] += sign
		}
	}
}

func (s *p2) parabolic(i int, d float64) float64 {
	return s.q[i] + d/(s.n[i+1]-s.n[i-1])*
		((s.n[i]-s.n[i-1]+d)*(s.q[i+1]-s.q[i])/(s.n[i+1]-s.n[i])+
			(s.n[i+1]-s.n[i]-d)*(s.q[i]-s.q[i-1])/(s.n[i]-s.n[i-1]))
}

func (s *p2) linear(i int, d float64) float64 {
	return s.q[i] + d*(s.q[int(float64(i)+d)]-s.q[i])/(s.n[int(float64(i)+d)]-s.n[i])
}

// value is the current quantile estimate. Under five observations it falls
// back to the exact order statistic (nearest-rank over the sorted prefix).
func (s *p2) value() float64 {
	if s.filled == 0 {
		return 0
	}
	if s.filled < 5 {
		tmp := make([]float64, s.filled)
		copy(tmp, s.q[:s.filled])
		sort.Float64s(tmp)
		idx := int(math.Ceil(s.p*float64(s.filled))) - 1
		if idx < 0 {
			idx = 0
		}
		return tmp[idx]
	}
	return s.q[2]
}

// Quantiles the fleet tracks per metric.
var quantilePs = []float64{0.50, 0.95, 0.99}

// Metric is the streaming aggregate of one "<tag>/<metric>" series: Welford
// moments plus P50/P95/P99 P² sketches. Fixed size regardless of how many
// scenarios feed it.
type Metric struct {
	w       Welford
	sketch  [3]*p2
	samples int
}

func newMetric() *Metric {
	m := &Metric{}
	for i, p := range quantilePs {
		m.sketch[i] = newP2(p)
	}
	return m
}

// Add folds one per-scenario observation in.
func (m *Metric) Add(x float64) {
	m.w.Add(x)
	for _, s := range m.sketch {
		s.add(x)
	}
	m.samples++
}

// Count, Mean, Std, Min, Max expose the Welford moments.
func (m *Metric) Count() int64 { return m.w.N }
func (m *Metric) Mean() float64 {
	return m.w.Mean
}
func (m *Metric) Std() float64 { return m.w.Std() }
func (m *Metric) Min() float64 { return m.w.Min }
func (m *Metric) Max() float64 { return m.w.Max }

// Quantile reports the P² estimate for one of the tracked quantiles
// (0.50, 0.95, 0.99).
func (m *Metric) Quantile(p float64) float64 {
	for i, kp := range quantilePs {
		if kp == p {
			return m.sketch[i].value()
		}
	}
	return math.NaN()
}

// Aggregator folds per-scenario metrics into per-(tag, metric) streaming
// aggregates. It is not goroutine-safe: the fleet collector owns it and
// applies observations strictly in scenario-index order.
type Aggregator struct {
	metrics map[string]*Metric
	// Runs and Errors count scenarios folded in and scenarios that failed.
	Runs   int
	Errors int
}

// NewAggregator returns an empty aggregator.
func NewAggregator() *Aggregator {
	return &Aggregator{metrics: map[string]*Metric{}}
}

// Apply folds one scenario's extracted metrics into the tag's aggregates.
func (a *Aggregator) Apply(tag string, m map[string]float64) {
	a.Runs++
	for _, name := range MetricNames {
		v, ok := m[name]
		if !ok {
			continue
		}
		key := tag + "/" + name
		mt := a.metrics[key]
		if mt == nil {
			mt = newMetric()
			a.metrics[key] = mt
		}
		mt.Add(v)
	}
}

// ApplyError accounts a failed scenario (it contributes to no metric).
func (a *Aggregator) ApplyError() {
	a.Runs++
	a.Errors++
}

// Keys lists the aggregate keys in sorted order.
func (a *Aggregator) Keys() []string {
	keys := make([]string, 0, len(a.metrics))
	for k := range a.metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Metric returns the aggregate for a key, or nil.
func (a *Aggregator) Metric(key string) *Metric { return a.metrics[key] }

// JSON renders the aggregates as deterministic JSON: keys sorted, floats in
// Go's shortest round-trip form, no map iteration anywhere. Two aggregators
// that saw the same observations in the same order render byte-identical
// JSON — the artifact the service-smoke and chaos harnesses diff against a
// single-process run.
func (a *Aggregator) JSON() []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, `{"runs":%d,"errors":%d,"fingerprint":%q,"metrics":{`, a.Runs, a.Errors, a.Fingerprint())
	num := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for i, k := range a.Keys() {
		if i > 0 {
			b.WriteByte(',')
		}
		m := a.metrics[k]
		key, _ := json.Marshal(k)
		fmt.Fprintf(&b, `%s:{"n":%d,"mean":%s,"std":%s,"min":%s,"max":%s,"p50":%s,"p95":%s,"p99":%s}`,
			key, m.Count(), num(m.Mean()), num(m.Std()), num(m.Min()), num(m.Max()),
			num(m.Quantile(0.50)), num(m.Quantile(0.95)), num(m.Quantile(0.99)))
	}
	b.WriteString("}}\n")
	return b.Bytes()
}

// Fingerprint hashes the aggregator's complete state (bit-exact float
// representations included) into a short hex token. Two aggregators that saw
// the same observations in the same order fingerprint identically — the
// fleet's workers=1 vs workers=N and resume-vs-uninterrupted checks compare
// these.
func (a *Aggregator) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "runs=%d errors=%d", a.Runs, a.Errors)
	for _, k := range a.Keys() {
		m := a.metrics[k]
		fmt.Fprintf(&b, "|%s:%d:%x:%x:%x:%x", k, m.w.N,
			math.Float64bits(m.w.Mean), math.Float64bits(m.w.m2),
			math.Float64bits(m.w.Min), math.Float64bits(m.w.Max))
		for _, s := range m.sketch {
			fmt.Fprintf(&b, ":%d", s.filled)
			for i := 0; i < 5; i++ {
				fmt.Fprintf(&b, ",%x,%x", math.Float64bits(s.n[i]), math.Float64bits(s.q[i]))
			}
		}
	}
	h := uint64(1469598103934665603) // FNV-1a 64 offset basis
	for i := 0; i < b.Len(); i++ {
		h ^= uint64(b.String()[i])
		h *= 1099511628211
	}
	return fmt.Sprintf("%016x", h)
}
