package fleet

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// journalFor runs a partial sweep and returns the journal path plus the
// spec's header/tags, ready for corruption experiments.
func journalFor(t *testing.T, maxScenarios int) (string, JournalHeader, []string) {
	t.Helper()
	spec := testSpec()
	journal := filepath.Join(t.TempDir(), "fleet.jsonl")
	if _, err := Run(spec, Options{Workers: 2, Journal: journal, MaxScenarios: maxScenarios}); err != nil {
		t.Fatal(err)
	}
	scens, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	tags := make([]string, len(scens))
	for i, s := range scens {
		tags[i] = Tag(s)
	}
	return journal, Header(spec, scens), tags
}

// A crash mid-write leaves a partial final line. Resume skips it with a
// warning, truncates it out of the file, and still lands on the aggregates
// of an uninterrupted run.
func TestResumeToleratesTruncatedFinalLine(t *testing.T) {
	straight, err := Run(testSpec(), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	journal, header, tags := journalFor(t, 5)
	intact, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the crash: a done record cut off mid-JSON, no newline.
	partial := []byte(`{"done":{"i":5,"label":"A4/Baseline/w1","m":{"coll`)
	if err := os.WriteFile(journal, append(intact, partial...), 0o644); err != nil {
		t.Fatal(err)
	}

	replay, err := ReadJournal(journal, header, tags)
	if err != nil {
		t.Fatalf("truncated final line rejected: %v", err)
	}
	if len(replay.Done) != 5 {
		t.Fatalf("replayed %d records, want the 5 complete ones", len(replay.Done))
	}
	if !replay.Truncated() || len(replay.Warnings) != 1 || !strings.Contains(replay.Warnings[0], "partial record") {
		t.Fatalf("truncation not surfaced: truncated=%v warnings=%v", replay.Truncated(), replay.Warnings)
	}

	resumed, err := Run(testSpec(), Options{Workers: 2, Journal: journal, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Resumed != 5 || resumed.Completed != 8 {
		t.Fatalf("resumed %d / completed %d, want 5 / 8", resumed.Resumed, resumed.Completed)
	}
	if len(resumed.Warnings) != 1 {
		t.Errorf("resume warnings = %v, want the partial-record warning", resumed.Warnings)
	}
	if resumed.Agg.Fingerprint() != straight.Agg.Fingerprint() {
		t.Error("aggregates diverge after tolerating a truncated final line")
	}
	// The partial tail was dropped before appending, so the healed journal
	// replays cleanly end to end.
	again, err := ReadJournal(journal, header, tags)
	if err != nil {
		t.Fatalf("healed journal rejected: %v", err)
	}
	if len(again.Done) != 8 || again.Truncated() || len(again.Warnings) != 0 {
		t.Errorf("healed journal: %d records, truncated=%v, warnings=%v",
			len(again.Done), again.Truncated(), again.Warnings)
	}
}

// A garbage line anywhere before the final record is corruption, not a
// crash signature — it must fail loudly.
func TestResumeRejectsCorruptMidFileLine(t *testing.T) {
	journal, header, tags := journalFor(t, 5)
	blob, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSuffix(blob, []byte("\n")), []byte("\n"))
	if len(lines) < 4 {
		t.Fatalf("journal too short to corrupt: %d lines", len(lines))
	}
	lines[2] = []byte(`{"done":{"i":1,"label":"A2/Baseline/w1"`) // cut mid-record
	if err := os.WriteFile(journal, append(bytes.Join(lines, []byte("\n")), '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadJournal(journal, header, tags); err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("corrupt mid-file line: err = %v, want a line-3 parse failure", err)
	}
}

// A journal for a structurally different spec (not just another seed) is
// refused by the spec fingerprint in the header.
func TestResumeRejectsDifferentGridShape(t *testing.T) {
	journal, _, _ := journalFor(t, 5)
	other := testSpec()
	other.Grid.Schemes = []string{"baseline", "com"} // same size, different scenarios
	_, err := Run(other, Options{Workers: 1, Journal: journal, Resume: true})
	if err == nil || !strings.Contains(err.Error(), "different sweep") {
		t.Errorf("resume under a different grid: err = %v, want different-sweep rejection", err)
	}
}

// A journal claiming more scenarios than the spec expands to is rejected:
// the done index runs past the tag table.
func TestResumeRejectsJournalBeyondSpec(t *testing.T) {
	journal, header, tags := journalFor(t, 8) // complete journal for 8 scenarios
	extra := `{"done":{"i":8,"label":"phantom","m":{"total":1}}}` + "\n"
	f, err := os.OpenFile(journal, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(extra); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := ReadJournal(journal, header, tags); err == nil || !strings.Contains(err.Error(), "beyond the spec's") {
		t.Errorf("oversized journal: err = %v, want beyond-the-spec rejection", err)
	}
}

// A snapshot whose fingerprint disagrees with the replayed prefix (bit-level
// corruption of an earlier metric) is rejected even though every line parses.
func TestResumeRejectsFingerprintMismatch(t *testing.T) {
	journal, header, tags := journalFor(t, 8)
	blob, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one metric value in the first done record without breaking JSON.
	lines := bytes.Split(blob, []byte("\n"))
	var rec journalLine
	if err := json.Unmarshal(lines[1], &rec); err != nil || rec.Done == nil {
		t.Fatalf("line 2 is not a done record: %v", err)
	}
	rec.Done.Metrics["total"] *= 1.5
	fixed, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	lines[1] = fixed
	if err := os.WriteFile(journal, bytes.Join(lines, []byte("\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadJournal(journal, header, tags); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("bit-corrupted journal: err = %v, want snapshot fingerprint mismatch", err)
	}
}

// RunRange is the worker-side shard primitive: its records must equal the
// slice an in-process sweep would journal, for any parallelism.
func TestRunRangeMatchesSweep(t *testing.T) {
	spec := testSpec()
	scens, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	journal := filepath.Join(t.TempDir(), "fleet.jsonl")
	if _, err := Run(spec, Options{Workers: 1, Journal: journal}); err != nil {
		t.Fatal(err)
	}
	tags := make([]string, len(scens))
	for i, s := range scens {
		tags[i] = Tag(s)
	}
	replay, err := ReadJournal(journal, Header(spec, scens), tags)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 3} {
		records, err := RunRange(scens, 2, 7, par)
		if err != nil {
			t.Fatal(err)
		}
		if len(records) != 5 {
			t.Fatalf("parallelism %d: %d records, want 5", par, len(records))
		}
		for k, rec := range records {
			want := replay.Done[2+k]
			if rec.Index != want.Index || rec.Label != want.Label || rec.Err != want.Err {
				t.Errorf("parallelism %d record %d: %+v, want %+v", par, k, rec, want)
			}
			for name, v := range want.Metrics {
				if rec.Metrics[name] != v {
					t.Errorf("parallelism %d record %d metric %s: %v, want %v", par, k, name, rec.Metrics[name], v)
				}
			}
		}
	}
	if _, err := RunRange(scens, 5, 3, 1); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := RunRange(scens, 0, len(scens)+1, 1); err == nil {
		t.Error("out-of-bounds range accepted")
	}
}

// Aggregator JSON is deterministic across worker counts and is valid JSON.
func TestAggregatorJSONDeterministic(t *testing.T) {
	one, err := Run(testSpec(), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	four, err := Run(testSpec(), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	a, b := one.Agg.JSON(), four.Agg.JSON()
	if !bytes.Equal(a, b) {
		t.Errorf("aggregate JSON diverges across worker counts:\n%s\nvs\n%s", a, b)
	}
	var doc struct {
		Runs        int                           `json:"runs"`
		Errors      int                           `json:"errors"`
		Fingerprint string                        `json:"fingerprint"`
		Metrics     map[string]map[string]float64 `json:"metrics"`
	}
	if err := json.Unmarshal(a, &doc); err != nil {
		t.Fatalf("aggregate JSON does not parse: %v\n%s", err, a)
	}
	if doc.Runs != 8 || doc.Fingerprint != one.Agg.Fingerprint() {
		t.Errorf("runs=%d fingerprint=%q, want 8 / %q", doc.Runs, doc.Fingerprint, one.Agg.Fingerprint())
	}
	if m := doc.Metrics["Baseline/total"]; m == nil || m["n"] != 4 {
		t.Errorf("Baseline/total = %v", doc.Metrics["Baseline/total"])
	}
}
