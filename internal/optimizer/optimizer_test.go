package optimizer

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"iothub/internal/apps"
	"iothub/internal/fleet"
	"iothub/internal/hub"
	"iothub/internal/scheme"
)

// testSpec is the search the package tests drive: the heavy speech app next
// to the offloadable step counter, fault-free, zero tolerated QoS violations.
func testSpec() Spec {
	return Spec{
		Apps:    []apps.ID{apps.SpeechToTxt, apps.StepCounter},
		Windows: 2, Seed: 7, MaxQoSViolations: 0, SkipAppCompute: true,
	}
}

func TestEnumerate(t *testing.T) {
	mix := []apps.ID{"A11", "A2"}
	heavy := map[apps.ID]bool{"A11": true}
	// A11 skips Offloaded (3 choices), A2 keeps all 4: 12 compositions.
	kept, skipped := enumerate(mix, heavy, 0)
	if len(kept) != 12 || skipped != 0 {
		t.Fatalf("enumerate = %d kept, %d skipped, want 12, 0", len(kept), skipped)
	}
	seen := map[string]bool{}
	for _, c := range kept {
		if seen[c.tag] {
			t.Errorf("duplicate tag %q", c.tag)
		}
		seen[c.tag] = true
		if c.assign["A11"] == scheme.Offloaded {
			t.Errorf("heavy app enumerated Offloaded: %q", c.tag)
		}
	}
	// Stride sampling keeps the first tuple and bounds the count.
	capped, dropped := enumerate(mix, heavy, 5)
	if len(capped) > 5 || len(capped)+dropped != 12 {
		t.Fatalf("capped enumerate = %d kept, %d skipped", len(capped), dropped)
	}
	if capped[0].tag != kept[0].tag {
		t.Errorf("sampling dropped the first tuple")
	}
}

// TestSearchDeterministicAndBeatsBuiltins runs the full search twice: the
// emitted plans must be byte-identical, the winner must hold the paper mix's
// expected composition (heavy app to the edge, light app to the MCU), and it
// must beat every feasible paper scheme on energy.
func TestSearchDeterministicAndBeatsBuiltins(t *testing.T) {
	p1, err := Run(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Run(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	b1, err := json.MarshalIndent(p1, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	b2, err := json.MarshalIndent(p2, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("same spec emitted different plans (%d vs %d bytes)", len(b1), len(b2))
	}

	if !p1.BeatsBuiltins {
		t.Errorf("winner %q (%.4f J/win) does not beat the paper schemes: %+v",
			p1.Winner.Tag, p1.Winner.EnergyPerWindow, p1.Builtins)
	}
	if p1.Winner.Assign[apps.SpeechToTxt] != scheme.Uploaded {
		t.Errorf("winner sends %s to %v, want Uploaded", apps.SpeechToTxt, p1.Winner.Assign[apps.SpeechToTxt])
	}
	if len(p1.Pareto) == 0 {
		t.Error("empty Pareto front")
	}
	// The front is sorted by energy and contains the winner.
	foundWinner := false
	for i, e := range p1.Pareto {
		if i > 0 && e.EnergyPerWindow < p1.Pareto[i-1].EnergyPerWindow {
			t.Errorf("Pareto front not sorted by energy at %d", i)
		}
		if e.Tag == p1.Winner.Tag {
			foundWinner = true
		}
	}
	if !foundWinner {
		t.Error("winner missing from its own Pareto front")
	}

	// The plan replays byte-for-byte.
	if _, err := CheckReplay(p1, 2); err != nil {
		t.Errorf("CheckReplay: %v", err)
	}
	corrupt := *p1
	corrupt.ReplayAggregates = strings.Replace(p1.ReplayAggregates, "mean", "maen", 1)
	if _, err := CheckReplay(&corrupt, 2); err == nil {
		t.Error("CheckReplay accepted corrupted aggregates")
	}
}

// TestECOMMatchesSearchedHybrid pins the satellite guarantee of registering
// the winner: executing the searched composition through the Hybrid vehicle
// and through the registered ECOM derivation yields byte-identical fleet
// aggregates — the registry path adds nothing and loses nothing.
func TestECOMMatchesSearchedHybrid(t *testing.T) {
	mix := []apps.ID{apps.SpeechToTxt, apps.StepCounter}
	assign := map[apps.ID]scheme.Mode{
		apps.SpeechToTxt: scheme.Uploaded,
		apps.StepCounter: scheme.Offloaded,
	}
	run := func(s hub.Scenario) []byte {
		t.Helper()
		res, err := fleet.Run(fleet.Spec{Seed: 3, Scenarios: []hub.Scenario{s}},
			fleet.Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Failed) != 0 {
			t.Fatalf("scenario failed: %+v", res.Failed)
		}
		return res.Agg.JSON()
	}
	// Same Tag on both so the aggregate keys coincide; same derived seed
	// because both sit at index 0 of a seed-3 fleet.
	viaECOM := run(hub.Scenario{Apps: mix, Scheme: hub.ECOM, Windows: 2,
		SkipAppCompute: true, Tag: "pin"})
	viaHybrid := run(hub.Scenario{Apps: mix, Scheme: hub.Hybrid, Windows: 2,
		SkipAppCompute: true, Tag: "pin", Assign: assign})
	if !bytes.Equal(viaECOM, viaHybrid) {
		t.Errorf("ECOM and searched Hybrid diverge:\necom:   %s\nhybrid: %s", viaECOM, viaHybrid)
	}
}

var update = flag.Bool("update", false, "rewrite the committed example plan")

// TestExamplePlanGolden pins the committed example search end to end: the
// spec in testdata/example.json must emit exactly the committed plan (the
// artifact `iotfleet optimize` wrote and `make opt-smoke` re-verifies), and
// that plan must beat every paper scheme.
func TestExamplePlanGolden(t *testing.T) {
	blob, err := os.ReadFile(filepath.Join("testdata", "example.json"))
	if err != nil {
		t.Fatal(err)
	}
	var spec Spec
	if err := json.Unmarshal(blob, &spec); err != nil {
		t.Fatal(err)
	}
	plan, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.MarshalIndent(plan, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	goldenPath := filepath.Join("testdata", "example.plan.json")
	if *update {
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing committed plan (run with -update or `iotfleet optimize`): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("search diverged from the committed plan (%d vs %d bytes); "+
			"regenerate with -update ONLY for a deliberate semantic change", len(got), len(want))
	}
	if !plan.BeatsBuiltins {
		t.Error("committed example plan does not beat the paper schemes")
	}
	if _, err := CheckReplay(plan, 0); err != nil {
		t.Errorf("committed plan replay: %v", err)
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{},
		{Apps: []apps.ID{"A2"}},
		{Apps: []apps.ID{"A2"}, Windows: 1, MaxQoSViolations: -1},
		{Apps: []apps.ID{"A2"}, Windows: 1, Omega: 2},
	}
	for i, s := range bad {
		if err := s.validate(); err == nil {
			t.Errorf("spec %d passed validation", i)
		}
	}
	if _, err := Run(Spec{Apps: []apps.ID{"A99"}, Windows: 1}); err == nil {
		t.Error("unknown app accepted")
	}
}
