// Package optimizer searches the scheme-composition space for an app mix: it
// enumerates per-app mode assignments (local per-sample, batched, offloaded,
// edge-uploaded), evaluates every candidate — alongside the registered fixed
// schemes — through the fleet engine with deterministic seeding, and emits
// the minimum-energy feasible plan plus the latency/energy Pareto front.
//
// Where internal/core's planner runs BCOM's fixed admission test (offload
// what fits the MCU, batch the rest), the optimizer treats composition as a
// search problem: any hybrid placement is a candidate, the fleet engine is
// the evaluator, and feasibility is judged on observed QoS, not a static
// budget. The winning composition can be executed two ways that are provably
// identical: as a Hybrid scenario carrying the plan's Assign, or — once a
// search result is promoted to a registered scheme, as ECOM was — by name.
//
// Determinism is end to end: candidate enumeration order is a pure function
// of the spec, every scenario's seed derives from the spec seed and its
// index (fleet.ScenarioSeed), and the emitted plan embeds a replay spec with
// those seeds pinned, so re-running the winner's scenarios through any fleet
// reproduces the recorded aggregates byte for byte.
package optimizer

import (
	"fmt"
	"sort"
	"strings"

	"iothub/internal/apps"
	"iothub/internal/apps/catalog"
	"iothub/internal/edge"
	"iothub/internal/fleet"
	"iothub/internal/hub"
	"iothub/internal/scheme"
)

// Spec declares one search: the app mix, the evaluation conditions, and the
// QoS constraints a feasible plan must hold.
type Spec struct {
	// Apps is the mix to optimize, by Table II ID.
	Apps []apps.ID `json:"apps"`
	// Windows is the number of QoS windows each evaluation simulates.
	Windows int `json:"windows"`
	// Seed is the search's master seed; every scenario seed derives from it.
	Seed int64 `json:"seed"`
	// QoSMult scales sampling rates (0 or 1 = paper defaults).
	QoSMult float64 `json:"qos,omitempty"`
	// Faults lists the fault schedules each candidate is evaluated under
	// (compact text form; empty = fault-free only). A candidate's metrics
	// aggregate across all its fault variants.
	Faults []string `json:"faults,omitempty"`
	// MaxQoSViolations is the feasibility ceiling on a run's QoS violation
	// count (a candidate is infeasible if any evaluation exceeds it).
	MaxQoSViolations float64 `json:"maxQosViolations"`
	// MaxMeanLatencySec, when > 0, additionally bounds the mean output
	// latency (seconds past window close) of every evaluation.
	MaxMeanLatencySec float64 `json:"maxMeanLatencySec,omitempty"`
	// Omega overrides the edge tier's latency/energy objective weight for
	// ranking ties (0 = keep the edge default).
	Omega float64 `json:"omega,omitempty"`
	// MaxCandidates, when > 0, caps enumeration by deterministic stride
	// sampling over the full composition space.
	MaxCandidates int `json:"maxCandidates,omitempty"`
	// Workers sizes the evaluation pool (0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// SkipAppCompute evaluates energy/timing only (the usual setting).
	SkipAppCompute bool `json:"skipCompute,omitempty"`
}

// Evaluated is one scored design point — a fixed scheme or a searched
// composition — with its aggregated metrics across the spec's fault variants.
type Evaluated struct {
	// Tag is the point's aggregation label ("scheme:com" or "cand:...").
	Tag string `json:"tag"`
	// Scheme executes the point; searched compositions run as Hybrid.
	Scheme scheme.Scheme `json:"scheme"`
	// Assign is the per-app partition (nil for fixed schemes, which derive
	// their own).
	Assign map[apps.ID]scheme.Mode `json:"assign,omitempty"`
	// EnergyPerWindow is the mean attributed energy per window (joules).
	EnergyPerWindow float64 `json:"energyPerWindow"`
	// MeanLatencySec is the mean output latency (seconds past window close).
	MeanLatencySec float64 `json:"meanLatencySec"`
	// MaxQoSViolations is the worst evaluation's QoS violation count.
	MaxQoSViolations float64 `json:"maxQosViolations"`
	// Objective is the weighted latency/energy score used for tie-breaking.
	Objective float64 `json:"objective"`
	// Feasible: every evaluation ran and held the spec's QoS constraints.
	Feasible bool `json:"feasible"`
	// Error carries the first failure when an evaluation errored.
	Error string `json:"error,omitempty"`
}

// Plan is the search's emitted artifact.
type Plan struct {
	// Spec echoes the search input.
	Spec Spec `json:"spec"`
	// Winner is the minimum-energy feasible composition.
	Winner Evaluated `json:"winner"`
	// Builtins are the registered fixed schemes' scores under the same
	// conditions (infeasible ones included, marked).
	Builtins []Evaluated `json:"builtins"`
	// Pareto is the latency/energy front over feasible compositions, sorted
	// by ascending energy (no point on it is dominated by another).
	Pareto []Evaluated `json:"pareto"`
	// BeatsBuiltins: the winner's energy is strictly below every feasible
	// paper scheme (Baseline, Batching, COM, BCOM, BEAM).
	BeatsBuiltins bool `json:"beatsBuiltins"`
	// Candidates counts enumerated compositions (after any MaxCandidates
	// sampling); Skipped counts compositions sampling dropped.
	Candidates int `json:"candidates"`
	Skipped    int `json:"skipped,omitempty"`
	// Replay re-runs the winner's evaluation scenarios standalone: seeds are
	// pinned to the values the search derived, so any fleet reproduces
	// ReplayAggregates byte for byte.
	Replay fleet.Spec `json:"replay"`
	// ReplayAggregates is the canonical fleet aggregate JSON of the replay.
	ReplayAggregates string `json:"replayAggregates"`
}

// paperSchemes are the five hand-coded schemes the winner must beat for
// BeatsBuiltins (ECOM is excluded: it IS a registered search result).
var paperSchemes = map[scheme.Scheme]bool{
	scheme.Baseline: true, scheme.Batching: true, scheme.COM: true,
	scheme.BCOM: true, scheme.BEAM: true,
}

// modeChoices are the per-app assignment alternatives, in enumeration order.
var modeChoices = []scheme.Mode{scheme.PerSample, scheme.Batched, scheme.Offloaded, scheme.Uploaded}

// candidate is one enumerated composition.
type candidate struct {
	assign map[apps.ID]scheme.Mode
	tag    string
}

// validate checks the spec.
func (s Spec) validate() error {
	if len(s.Apps) == 0 {
		return fmt.Errorf("optimizer: spec lists no apps")
	}
	if s.Windows < 1 {
		return fmt.Errorf("optimizer: windows %d, want >= 1", s.Windows)
	}
	if s.MaxQoSViolations < 0 {
		return fmt.Errorf("optimizer: negative MaxQoSViolations")
	}
	if s.Omega < 0 || s.Omega > 1 {
		return fmt.Errorf("optimizer: omega %v outside [0,1]", s.Omega)
	}
	return nil
}

// enumerate lists the composition space in deterministic order: the mode
// tuple is a base-|modes| counter over the app list (first app cycles
// fastest), heavy apps skip Offloaded (the MCU cannot hold them — the same
// reject Hybrid's validator would issue). When cap > 0 bounds the space,
// enumeration stride-samples: every ceil(n/cap)-th tuple, always including
// the first.
func enumerate(mix []apps.ID, heavy map[apps.ID]bool, cap int) (kept []candidate, skipped int) {
	choices := make([][]scheme.Mode, len(mix))
	total := 1
	for i, id := range mix {
		for _, m := range modeChoices {
			if m == scheme.Offloaded && heavy[id] {
				continue
			}
			choices[i] = append(choices[i], m)
		}
		total *= len(choices[i])
	}
	stride := 1
	if cap > 0 && total > cap {
		stride = (total + cap - 1) / cap
	}
	idx := make([]int, len(mix))
	for n := 0; n < total; n++ {
		if n%stride != 0 {
			skipped++
		} else {
			assign := make(map[apps.ID]scheme.Mode, len(mix))
			parts := make([]string, len(mix))
			for i, id := range mix {
				assign[id] = choices[i][idx[i]]
				parts[i] = fmt.Sprintf("%s=%s", id, assign[id])
			}
			kept = append(kept, candidate{assign: assign, tag: "cand:" + strings.Join(parts, ",")})
		}
		for i := 0; i < len(idx); i++ {
			idx[i]++
			if idx[i] < len(choices[i]) {
				break
			}
			idx[i] = 0
		}
	}
	return kept, skipped
}

// faultVariants returns the spec's fault schedules, defaulting to fault-free.
func (s Spec) faultVariants() []string {
	if len(s.Faults) == 0 {
		return []string{""}
	}
	return s.Faults
}

// scenariosFor builds the evaluation scenario for one design point under one
// fault schedule.
func (s Spec) scenarioFor(sch scheme.Scheme, assign map[apps.ID]scheme.Mode, tag, fault string) hub.Scenario {
	return hub.Scenario{
		Apps: s.Apps, Scheme: sch, Windows: s.Windows,
		QoSMult: s.QoSMult, Faults: fault, Assign: assign,
		SkipAppCompute: s.SkipAppCompute, Tag: tag,
	}
}

// Run executes the search and emits the plan.
func Run(spec Spec) (*Plan, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	heavy := make(map[apps.ID]bool, len(spec.Apps))
	for _, id := range spec.Apps {
		a, err := catalog.New(id, 1)
		if err != nil {
			return nil, fmt.Errorf("optimizer: %w", err)
		}
		heavy[id] = a.Spec().Heavy
	}

	// The evaluation sweep: every registered fixed scheme (Hybrid excluded —
	// it has no derivation of its own) first, then every candidate, each
	// under every fault variant. Order is part of the plan's identity: seeds
	// derive from scenario index.
	var builtinsOrder []scheme.Scheme
	for _, d := range scheme.All() {
		if d.Scheme() == scheme.Hybrid {
			continue
		}
		builtinsOrder = append(builtinsOrder, d.Scheme())
	}
	cands, skipped := enumerate(spec.Apps, heavy, spec.MaxCandidates)
	faults := spec.faultVariants()

	var scens []hub.Scenario
	scenIndex := map[string][]int{} // tag -> scenario indices (for replay)
	add := func(s hub.Scenario) {
		scenIndex[s.Tag] = append(scenIndex[s.Tag], len(scens))
		scens = append(scens, s)
	}
	for _, sch := range builtinsOrder {
		for _, f := range faults {
			add(spec.scenarioFor(sch, nil, "scheme:"+strings.ToLower(sch.String()), f))
		}
	}
	for _, c := range cands {
		for _, f := range faults {
			add(spec.scenarioFor(scheme.Hybrid, c.assign, c.tag, f))
		}
	}

	sweep := fleet.Spec{Seed: spec.Seed, Scenarios: scens}
	res, err := fleet.Run(sweep, fleet.Options{Workers: spec.Workers})
	if err != nil {
		return nil, fmt.Errorf("optimizer: evaluation sweep: %w", err)
	}
	failedTag := map[string]string{}
	for _, f := range res.Failed {
		tag := fleet.Tag(scens[f.Index])
		if _, ok := failedTag[tag]; !ok {
			failedTag[tag] = f.Err
		}
	}

	ep := edge.DefaultParams()
	if spec.Omega > 0 {
		ep.Omega = spec.Omega
	}
	score := func(tag string, sch scheme.Scheme, assign map[apps.ID]scheme.Mode) Evaluated {
		e := Evaluated{Tag: tag, Scheme: sch, Assign: assign}
		if msg, failed := failedTag[tag]; failed {
			e.Error = msg
			return e
		}
		energy := res.Agg.Metric(tag + "/total")
		latency := res.Agg.Metric(tag + "/latency")
		qos := res.Agg.Metric(tag + "/qos")
		if energy == nil || latency == nil || qos == nil {
			e.Error = "no metrics aggregated"
			return e
		}
		e.EnergyPerWindow = energy.Mean()
		e.MeanLatencySec = latency.Mean()
		e.MaxQoSViolations = qos.Max()
		e.Objective = ep.Omega*(e.MeanLatencySec/ep.TRefSec) + (1-ep.Omega)*(e.EnergyPerWindow/ep.ERefJoules)
		e.Feasible = e.MaxQoSViolations <= spec.MaxQoSViolations &&
			(spec.MaxMeanLatencySec <= 0 || e.MeanLatencySec <= spec.MaxMeanLatencySec)
		return e
	}

	plan := &Plan{Spec: spec, Candidates: len(cands), Skipped: skipped}
	for _, sch := range builtinsOrder {
		plan.Builtins = append(plan.Builtins, score("scheme:"+strings.ToLower(sch.String()), sch, nil))
	}
	evaluated := make([]Evaluated, 0, len(cands))
	for _, c := range cands {
		evaluated = append(evaluated, score(c.tag, scheme.Hybrid, c.assign))
	}

	// Winner: minimum energy over feasible compositions; ties fall to the
	// objective, then latency, then tag (all deterministic).
	better := func(a, b Evaluated) bool {
		if a.EnergyPerWindow != b.EnergyPerWindow {
			return a.EnergyPerWindow < b.EnergyPerWindow
		}
		if a.Objective != b.Objective {
			return a.Objective < b.Objective
		}
		if a.MeanLatencySec != b.MeanLatencySec {
			return a.MeanLatencySec < b.MeanLatencySec
		}
		return a.Tag < b.Tag
	}
	var winner *Evaluated
	for i := range evaluated {
		if !evaluated[i].Feasible {
			continue
		}
		if winner == nil || better(evaluated[i], *winner) {
			winner = &evaluated[i]
		}
	}
	if winner == nil {
		return nil, fmt.Errorf("optimizer: no feasible composition among %d candidates (QoS ceiling %v)",
			len(cands), spec.MaxQoSViolations)
	}
	plan.Winner = *winner

	// Pareto front over feasible compositions: a point survives if no other
	// feasible point is at least as good on both axes and better on one.
	var feas []Evaluated
	for _, e := range evaluated {
		if e.Feasible {
			feas = append(feas, e)
		}
	}
	for _, e := range feas {
		dominated := false
		for _, o := range feas {
			if o.Tag == e.Tag {
				continue
			}
			if o.EnergyPerWindow <= e.EnergyPerWindow && o.MeanLatencySec <= e.MeanLatencySec &&
				(o.EnergyPerWindow < e.EnergyPerWindow || o.MeanLatencySec < e.MeanLatencySec) {
				dominated = true
				break
			}
		}
		if !dominated {
			plan.Pareto = append(plan.Pareto, e)
		}
	}
	sort.Slice(plan.Pareto, func(i, j int) bool {
		if plan.Pareto[i].EnergyPerWindow != plan.Pareto[j].EnergyPerWindow {
			return plan.Pareto[i].EnergyPerWindow < plan.Pareto[j].EnergyPerWindow
		}
		return plan.Pareto[i].Tag < plan.Pareto[j].Tag
	})

	plan.BeatsBuiltins = true
	for _, b := range plan.Builtins {
		if !paperSchemes[b.Scheme] || !b.Feasible {
			continue
		}
		if plan.Winner.EnergyPerWindow >= b.EnergyPerWindow {
			plan.BeatsBuiltins = false
		}
	}

	// Replay spec: the winner's evaluation scenarios with their derived
	// seeds pinned, so the recorded aggregates reproduce byte for byte in
	// any fleet — the property `iotfleet optimize -check-replay` verifies.
	replay := fleet.Spec{Seed: spec.Seed}
	for _, i := range scenIndex[plan.Winner.Tag] {
		s := scens[i]
		s.Seed = fleet.ScenarioSeed(spec.Seed, i)
		replay.Scenarios = append(replay.Scenarios, s)
	}
	plan.Replay = replay
	rres, err := fleet.Run(replay, fleet.Options{Workers: spec.Workers})
	if err != nil {
		return nil, fmt.Errorf("optimizer: replay sweep: %w", err)
	}
	plan.ReplayAggregates = string(rres.Agg.JSON())
	return plan, nil
}

// CheckReplay re-runs a plan's embedded replay spec and verifies the
// aggregates reproduce byte for byte. It returns the fresh aggregate JSON.
func CheckReplay(p *Plan, workers int) ([]byte, error) {
	if len(p.Replay.Scenarios) == 0 {
		return nil, fmt.Errorf("optimizer: plan has no replay scenarios")
	}
	res, err := fleet.Run(p.Replay, fleet.Options{Workers: workers})
	if err != nil {
		return nil, err
	}
	got := res.Agg.JSON()
	if string(got) != p.ReplayAggregates {
		return got, fmt.Errorf("optimizer: replay diverged from plan aggregates (%d vs %d bytes)",
			len(got), len(p.ReplayAggregates))
	}
	return got, nil
}
