package hub

import (
	"fmt"
	"time"

	"iothub/internal/cpu"
	"iothub/internal/edge"
	"iothub/internal/link"
	"iothub/internal/mcu"
	"iothub/internal/obs"
	"iothub/internal/power"
	"iothub/internal/radio"
)

// Params bundles the full hardware calibration of the hub (DESIGN.md §4).
type Params struct {
	CPU  cpu.Params
	MCU  mcu.Params
	Link link.Params
	// CPUIrqHandle is the CPU time to field one MCU interrupt: priority
	// check, acknowledge, context switch (Fig. 8: 1000 interrupts = 48 ms).
	CPUIrqHandle time.Duration
	// ResultBytes is the size of an offloaded app's end-to-end result
	// notification to the CPU. Bulk upstream payloads leave through the
	// MCU's own radio (the ESP8266 is a WiFi part), so only the summary
	// crosses the link under COM.
	ResultBytes int
	// DMA models the paper's §IV-F future-work hardware: a DMA engine on
	// the link, so transfers cost the CPU only DMASetup instead of staying
	// busy for the whole wire time. The MCU and wire still do the work.
	DMA bool
	// DMASetup is the CPU cost to program one DMA descriptor.
	DMASetup time.Duration
	// MainRadio is the main board's WiFi uplink; on-CPU apps push their
	// window outputs through it.
	MainRadio radio.Params
	// MCURadio is the ESP8266's integrated radio; offloaded apps uplink
	// directly from the MCU (§III-B4's "system wide" benefit).
	MCURadio radio.Params
	// UplinkDriverCPU is the host-side driver cost to hand one burst to its
	// radio (the NIC DMAs the frames).
	UplinkDriverCPU time.Duration
	// Edge calibrates the upload-compute tier (container capacity, init
	// warmup, RTT, objective weights); only consulted when a policy places
	// a computation OnEdge.
	Edge edge.Params
	// Obs is the run's observability recorder (counters, spans, flight ring).
	// Nil — the default — disables the layer at the cost of one branch per
	// instrumentation point; the recorder only observes, never schedules, so
	// simulation output is identical either way.
	Obs *obs.Recorder `json:"-"`
	// Meter is the in-situ measurement instrument (DESIGN.md §13). Unlike
	// Obs it is a physical model, not a software probe: when armed, its
	// sampling runs as scheduled DES events on the MCU and costs real energy.
	// The zero value is the free external bench meter — runs under it are
	// byte-identical to unobserved runs, counters included.
	Meter obs.MeterModel
	// Power is the supply side of the ledger (DESIGN.md §14): a finite
	// battery plus a deterministic harvest trace, settled as scheduled DES
	// events against the meter's demand. The zero value is mains power —
	// runs under it are byte-identical to every pre-power result.
	Power power.Supply
}

// DefaultParams returns the Raspberry Pi 3B + ESP8266 calibration.
func DefaultParams() Params {
	return Params{
		CPU:             cpu.DefaultParams(),
		MCU:             mcu.DefaultParams(),
		Link:            link.DefaultParams(),
		CPUIrqHandle:    48 * time.Microsecond,
		ResultBytes:     32,
		DMASetup:        10 * time.Microsecond,
		MainRadio:       radio.DefaultMainParams(),
		MCURadio:        radio.DefaultMCUParams(),
		UplinkDriverCPU: 50 * time.Microsecond,
		Edge:            edge.DefaultParams(),
	}
}

// Validate checks the calibration for obvious inconsistencies.
func (p Params) Validate() error {
	if p.CPUIrqHandle <= 0 {
		return fmt.Errorf("hub: CPUIrqHandle %v", p.CPUIrqHandle)
	}
	if p.ResultBytes <= 0 {
		return fmt.Errorf("hub: ResultBytes %d", p.ResultBytes)
	}
	if p.CPU.MIPS <= 0 || p.MCU.BaseSlowdown <= 0 || p.Link.BytesPerSec <= 0 {
		return fmt.Errorf("hub: incomplete hardware params")
	}
	if err := p.MainRadio.Validate(); err != nil {
		return fmt.Errorf("hub: main radio: %w", err)
	}
	if err := p.MCURadio.Validate(); err != nil {
		return fmt.Errorf("hub: mcu radio: %w", err)
	}
	if p.UplinkDriverCPU < 0 {
		return fmt.Errorf("hub: negative UplinkDriverCPU")
	}
	if err := p.Edge.Validate(); err != nil {
		return fmt.Errorf("hub: edge: %w", err)
	}
	if err := p.Meter.Validate(); err != nil {
		return fmt.Errorf("hub: meter: %w", err)
	}
	if err := p.Power.Validate(); err != nil {
		return fmt.Errorf("hub: power: %w", err)
	}
	return nil
}
