package hub

import (
	"fmt"
	"math"

	"iothub/internal/energy"
)

// invariantEps absorbs float summation noise in the energy ledger.
const invariantEps = 1e-9

// CheckInvariants verifies the physical bookkeeping of a completed run:
//
//   - Energy conservation: the hub-wide per-routine energy equals the sum of
//     the per-component breakdowns — no joule appears or vanishes, faults
//     included — and no component recorded negative energy.
//   - Time sanity: no negative busy durations; the CPU's serialized IO lane
//     (interrupt + transfer) and the single-core MCU each fit inside the
//     run's duration; the compute lane fits its core count.
//   - Output sanity: every window result lies on the run's timeline, each
//     app reports each window at most once, and — in fault-free runs —
//     windows complete in order with monotone timestamps (faults may
//     legitimately reorder completions via re-collection and retries).
//   - Sample bookkeeping: every planned or re-collected read is accounted
//     as delivered, dropped, or deliberately skipped — exactly once.
//
// hub.Run calls this after every simulation (every experiment doubles as a
// regression oracle); iotsim -check surfaces it on the CLI.
func (r *RunResult) CheckInvariants() error {
	if r.Duration < 0 || r.Window < 0 {
		return fmt.Errorf("negative duration %v or window %v", r.Duration, r.Window)
	}

	// Energy conservation across components, per routine and in total.
	sum := energy.NewBreakdown()
	for name, bd := range r.PerComponent {
		for _, rt := range energy.Routines {
			if !bd.Has(rt) {
				continue
			}
			j := bd.Get(rt)
			if j < -invariantEps {
				return fmt.Errorf("component %s: negative %v energy %g J", name, rt, j)
			}
			sum[rt] += j
		}
	}
	for _, rt := range energy.Routines {
		if r.Energy.Has(rt) {
			if j := r.Energy.Get(rt); math.Abs(j-sum.Get(rt)) > invariantEps {
				return fmt.Errorf("energy not conserved for %v: hub-wide %g J, components sum to %g J", rt, j, sum.Get(rt))
			}
		}
		if j := sum.Get(rt); j != 0 && math.Abs(j-r.Energy.Get(rt)) > invariantEps {
			return fmt.Errorf("energy not conserved for %v: components %g J, hub-wide %g J", rt, j, r.Energy.Get(rt))
		}
	}

	// Busy-time sanity.
	var ioBusy, cpuCompute, mcuBusy float64
	for rt, d := range r.CPUBusy {
		if d < 0 {
			return fmt.Errorf("negative CPU busy %v for %v", d, rt)
		}
		if rt == energy.Interrupt || rt == energy.DataTransfer {
			ioBusy += d.Seconds()
		} else {
			cpuCompute += d.Seconds()
		}
	}
	for rt, d := range r.MCUBusy {
		if d < 0 {
			return fmt.Errorf("negative MCU busy %v for %v", d, rt)
		}
		mcuBusy += d.Seconds()
	}
	dur := r.Duration.Seconds()
	if len(r.CPUBusy) > 0 && ioBusy > dur+invariantEps {
		return fmt.Errorf("CPU IO lane busy %.9fs exceeds run duration %.9fs", ioBusy, dur)
	}
	if len(r.MCUBusy) > 0 && mcuBusy > dur+invariantEps {
		return fmt.Errorf("single-core MCU busy %.9fs exceeds run duration %.9fs", mcuBusy, dur)
	}

	// Output timeline sanity.
	faulty := r.faulty()
	outputs := 0
	for id, outs := range r.Outputs {
		seen := make(map[int]bool, len(outs))
		for i, wr := range outs {
			outputs++
			if wr.Window < 0 {
				return fmt.Errorf("%s: negative window index %d", id, wr.Window)
			}
			if wr.At < 0 || wr.At.Duration() > r.Duration {
				return fmt.Errorf("%s window %d: result at %v outside run [0, %v]", id, wr.Window, wr.At, r.Duration)
			}
			if seen[wr.Window] {
				return fmt.Errorf("%s: window %d reported twice", id, wr.Window)
			}
			seen[wr.Window] = true
			if !faulty && i > 0 {
				prev := outs[i-1]
				if wr.Window < prev.Window || wr.At < prev.At {
					return fmt.Errorf("%s: fault-free windows out of order (%d@%v after %d@%v)",
						id, wr.Window, wr.At, prev.Window, prev.At)
				}
			}
		}
	}
	if r.QoSViolations < 0 || r.QoSViolations > outputs {
		return fmt.Errorf("QoS violations %d outside [0, %d outputs]", r.QoSViolations, outputs)
	}

	// Sample ledger: planned + re-collected reads all end up somewhere.
	for name, n := range map[string]int{
		"ScheduledSamples": r.ScheduledSamples, "DeliveredSamples": r.DeliveredSamples,
		"DroppedSamples": r.DroppedSamples, "RecollectedSamples": r.RecollectedSamples,
		"DownshiftSkipped": r.DownshiftSkipped, "ReadRetries": r.ReadRetries,
		"Interrupts": r.Interrupts, "BytesTransferred": r.BytesTransferred,
		"LinkRetransmits": r.LinkRetransmits, "LinkAbortedTransfers": r.LinkAbortedTransfers,
		"MCUCrashes": r.MCUCrashes, "RadioDroppedBytes": r.RadioDroppedBytes,
	} {
		if n < 0 {
			return fmt.Errorf("negative counter %s = %d", name, n)
		}
	}
	if in, out := r.ScheduledSamples+r.RecollectedSamples,
		r.DeliveredSamples+r.DroppedSamples+r.DownshiftSkipped; in != out {
		return fmt.Errorf("sample ledger broken: %d scheduled+recollected, %d delivered+dropped+skipped", in, out)
	}

	// Battery ledger sanity (power-armed runs only).
	if r.BatteryCapacityJ > 0 {
		if r.BatterySoCJ < -invariantEps || r.BatterySoCJ > r.BatteryCapacityJ+invariantEps {
			return fmt.Errorf("battery SoC %g J outside [0, %g J]", r.BatterySoCJ, r.BatteryCapacityJ)
		}
		if r.BatteryMinSoCJ < -invariantEps || r.BatteryMinSoCJ > r.BatterySoCJ+invariantEps {
			return fmt.Errorf("battery min SoC %g J outside [0, final %g J]", r.BatteryMinSoCJ, r.BatterySoCJ)
		}
		if r.BatteryHarvestJ < 0 || r.Brownouts < 0 || r.BrownoutTime < 0 || r.BatterySurvival < 0 {
			return fmt.Errorf("negative battery counter (harvest %g J, %d brownouts, %v down, %v survival)",
				r.BatteryHarvestJ, r.Brownouts, r.BrownoutTime, r.BatterySurvival)
		}
		if r.Brownouts == 0 && r.BrownoutTime != 0 {
			return fmt.Errorf("brownout time %v with no brownouts", r.BrownoutTime)
		}
	}
	return nil
}

// faulty reports whether anything happened that may legitimately reorder
// window completions (retries, drops, crashes, re-collection, link loss).
func (r *RunResult) faulty() bool {
	return r.ReadRetries > 0 || r.DroppedSamples > 0 || r.MCUCrashes > 0 ||
		r.RecollectedSamples > 0 || r.DownshiftSkipped > 0 ||
		r.LinkCorruptFrames > 0 || r.LinkLostFrames > 0 || r.LinkAbortedTransfers > 0 ||
		r.RadioDroppedBursts > 0 || r.RadioDeferred > 0 || r.SlowReads > 0 ||
		r.Brownouts > 0
}
