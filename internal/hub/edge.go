package hub

// edgeCompute dispatches a window's app-specific computation to the upload
// tier: the batched window payload (already landed at the CPU) goes up the
// main radio as one burst, the edge container runs the computation, and the
// small completion callback re-enters finishWindow after the downlink leg.
// The hub's costs are the driver handoff and the airtime; the dominant
// compute energy moves to the edge's own meter track ("edge").

import (
	"iothub/internal/energy"
	"iothub/internal/obs"
)

func (r *runner) edgeCompute(st *appState, w int) {
	payload := st.uploadBytes[w]
	delete(st.uploadBytes, w)
	r.res.EdgeUploads++
	r.res.EdgeUploadBytes += payload
	r.obs.Inc(obs.EdgeUploads)
	r.obs.Add(obs.EdgeUploadBytes, uint64(payload))

	submit := func() {
		if !r.edge.Warm(string(st.spec.ID)) {
			r.res.EdgeColdStarts++
		}
		err := r.edge.Submit(string(st.spec.ID), st.spec.MemoryBytes(), st.edgeMI, func() {
			// Result notification: a small host-side driver slice to field
			// the edge's completion message, then the window closes.
			err := r.cpu.Exec(r.params.Edge.ResultCPU, energy.DataTransfer, func() {
				r.finishWindow(st, w)
				r.governCPU()
			})
			if err != nil {
				r.fail(err)
			}
		})
		if err != nil {
			r.fail(err)
		}
	}

	// The host hands the burst to its radio for the driver cost; zero-byte
	// windows (every sample dropped) skip the airtime but still compute.
	err := r.cpu.Exec(r.params.UplinkDriverCPU, energy.DataTransfer, func() { r.governCPU() })
	if err != nil {
		r.fail(err)
		return
	}
	if payload == 0 {
		submit()
		return
	}
	if err := r.mainRadio.Transmit(payload, energy.DataTransfer, func() { submit() }); err != nil {
		r.fail(err)
	}
}
