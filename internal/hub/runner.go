package hub

import (
	"fmt"
	"time"

	"iothub/internal/apps"
	"iothub/internal/cpu"
	"iothub/internal/energy"
	"iothub/internal/faults"
	"iothub/internal/link"
	"iothub/internal/mcu"
	"iothub/internal/obs"
	"iothub/internal/radio"
	"iothub/internal/sensor"
	"iothub/internal/sim"
)

// modeChange is one degradation step: mode applies from fromWindow on.
type modeChange struct {
	fromWindow int
	mode       Mode
}

// batchRef identifies one sample resident in the MCU batch buffer, so a
// crash can re-collect exactly what the RAM held.
type batchRef struct {
	s *stream
	k int
}

// appState is one app's runtime bookkeeping.
type appState struct {
	app  apps.App
	spec apps.Spec
	mode Mode

	// modeChanges records degradation steps; in-flight windows keep the
	// mode they started with (see modeFor).
	modeChanges []modeChange
	// batchRefs tracks the samples currently resident in the MCU batch
	// buffer (cleared on flush, re-collected on crash).
	batchRefs []batchRef
	// offloadInFlight marks windows whose MCU computation has been
	// dispatched but not finished — a crash re-enters their budget check.
	offloadInFlight map[int]bool

	// cpuComputeTime / mcuComputeTime are the per-window app-specific
	// computation costs on each processor.
	cpuComputeTime time.Duration
	mcuComputeTime time.Duration

	// samplesPerWindow across all of the app's streams.
	samplesPerWindow int
	// readsDone / delivered count per-window progress; expected starts at
	// samplesPerWindow and shrinks when fault injection drops samples.
	readsDone map[int]int // window -> samples formatted at the MCU
	delivered map[int]int // window -> samples landed at the CPU
	expected  map[int]int // window -> samples still anticipated
	// fired guards against double-triggering a window's computation when
	// drops rearrange completion order.
	fired map[int]bool

	// Batched-mode buffer state.
	batchFill      int
	batchAllocd    int
	pendingFlushes map[int]int // window -> in-flight bulk transfers

	results []WindowResult
}

// consumerLink attaches one app to a stream. Under BEAM a stream runs at
// the fastest consumer's rate and slower consumers take every stride-th
// sample (BEAM's downsampling for rate-mismatched sharers).
type consumerLink struct {
	st     *appState
	stride int
}

// wants reports whether the consumer takes the stream's k-th sample.
func (l consumerLink) wants(k int) bool { return k%l.stride == 0 }

// stream is one physical sampling schedule: a sensor read sequence feeding
// one or more apps (more than one only under BEAM).
type stream struct {
	id        sensor.ID
	spec      sensor.Spec
	bytes     int
	perWindow int
	period    time.Duration
	track     *energy.Track
	consumers []consumerLink
	// attempts counts read attempts for deterministic fault injection.
	attempts int
	// retriesInWindow / downshifted drive the resilience layer's
	// rate-downshift: once a window's retries blow the budget, every other
	// remaining read of the stream is skipped.
	retriesInWindow map[int]int
	downshifted     map[int]bool
}

// expectedFor reports how many samples window w still anticipates.
func (st *appState) expectedFor(w int) int {
	if _, ok := st.expected[w]; !ok {
		st.expected[w] = st.samplesPerWindow
	}
	return st.expected[w]
}

// modeFor resolves the app's mode for window w: the base mode unless a
// degradation step took effect at or before w.
func (st *appState) modeFor(w int) Mode {
	mode := st.mode
	for _, ch := range st.modeChanges {
		if ch.fromWindow <= w {
			mode = ch.mode
		}
	}
	return mode
}

type runner struct {
	cfg    Config
	params Params
	window time.Duration

	sched     *sim.Scheduler
	meter     *energy.Meter
	cpu       *cpu.CPU
	mcu       *mcu.MCU
	link      *link.Link
	mainRadio *radio.Radio
	mcuRadio  *radio.Radio
	// obs is the run's observability recorder; nil (the default) makes every
	// instrumentation point a single-branch no-op.
	obs *obs.Recorder

	states  []*appState
	streams []*stream

	// gapHint is the expected CPU idle gap between events, used by the
	// governor after each completed work item.
	gapHint time.Duration
	// allowDeep is true when every app is offloaded (the CPU is fully
	// freed, §III-B4).
	allowDeep bool

	// Fault-injection machinery; all nil/zero when no schedule is active.
	engine *faults.Engine
	pol    *ResiliencePolicy
	// linkFaulty short-circuits the reliable link path when no link rules
	// exist, keeping the wire byte-identical to the fault-free run.
	linkFaulty bool
	// horizon is the run's nominal end (Windows × window): self-firing
	// fault events and watchdog probes are only scheduled inside it so the
	// event queue still drains.
	horizon time.Duration
	// offloadNeed is the MCU RAM reserved for offloaded app footprints,
	// re-reserved after a crash wipes the RAM.
	offloadNeed int
	// lastDegradedCrash ensures the watchdog takes one ladder step per
	// crash, however many probes see the same dead MCU.
	lastDegradedCrash int

	res    *RunResult
	runErr error
}

// Run executes the configured scenario and returns its aggregated result.
func Run(cfg Config) (*RunResult, error) {
	params, err := cfg.validate()
	if err != nil {
		return nil, err
	}
	modes, err := cfg.modes()
	if err != nil {
		return nil, err
	}
	r := &runner{cfg: cfg, params: params, window: cfg.Apps[0].Spec().Window}
	r.sched = sim.NewScheduler()
	r.meter = energy.NewMeter(r.sched)
	if r.cpu, err = cpu.New(r.sched, r.meter, "cpu", params.CPU); err != nil {
		return nil, err
	}
	if r.mcu, err = mcu.New(r.sched, r.meter, "mcu", params.MCU); err != nil {
		return nil, err
	}
	if r.link, err = link.New(r.sched, r.meter, "link", params.Link); err != nil {
		return nil, err
	}
	if r.mainRadio, err = radio.New(r.sched, r.meter, "radio:main", params.MainRadio); err != nil {
		return nil, err
	}
	if r.mcuRadio, err = radio.New(r.sched, r.meter, "radio:mcu", params.MCURadio); err != nil {
		return nil, err
	}
	r.obs = params.Obs
	r.obs.Bind(r.sched)
	r.cpu.Observe(r.obs)
	r.mcu.Observe(r.obs)
	r.link.Observe(r.obs)
	r.mainRadio.Observe(r.obs)
	r.mcuRadio.Observe(r.obs)
	if cfg.TracePower {
		r.cpu.Track().EnableTrace()
		r.mcu.Track().EnableTrace()
	}
	r.res = &RunResult{
		Scheme:       cfg.Scheme,
		Modes:        modes,
		Outputs:      make(map[apps.ID][]WindowResult, len(cfg.Apps)),
		PerComponent: make(map[string]energy.Breakdown),
	}
	if err := r.build(modes); err != nil {
		return nil, err
	}
	if err := r.armFaults(); err != nil {
		return nil, err
	}
	r.prime()
	if err := r.scheduleAll(); err != nil {
		return nil, err
	}
	if err := r.sched.Run(); err != nil {
		if r.runErr != nil {
			return nil, r.runErr
		}
		return nil, err
	}
	if r.runErr != nil {
		return nil, r.runErr
	}
	r.collect()
	if err := r.res.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("hub: run invariant violated: %w", err)
	}
	return r.res, nil
}

// armFaults compiles the fault schedule and wires the self-firing fault
// events, the watchdog, and the radio-side buffers. With an inactive
// schedule everything stays nil and the run is byte-identical to a
// fault-free one.
func (r *runner) armFaults() error {
	r.horizon = time.Duration(r.cfg.Windows) * r.window
	engine, err := faults.NewEngine(r.cfg.FaultSchedule)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrConfig, err)
	}
	r.engine = engine
	r.pol = r.cfg.Resilience
	if engine == nil && r.pol == nil {
		return nil
	}
	if r.pol == nil {
		r.pol = DefaultResilience()
	}
	r.linkFaulty = engine.HasKind(faults.LinkCorrupt, faults.LinkLoss)

	// Radio outages and bounded buffering.
	radios := []struct {
		target string
		rad    *radio.Radio
	}{{"radio:main", r.mainRadio}, {"radio:mcu", r.mcuRadio}}
	for _, rr := range radios {
		target, rad := rr.target, rr.rad
		evs := engine.TimedEvents(faults.RadioOutage, target, r.horizon)
		if len(evs) > 0 && r.pol.RadioBufferBytes > 0 {
			rad.SetQueueLimit(r.pol.RadioBufferBytes)
		}
		for _, ev := range evs {
			if err := rad.AddOutage(ev.At, ev.At.Add(ev.Rule.Duration)); err != nil {
				return fmt.Errorf("%w: %v", ErrConfig, err)
			}
			r.obs.Inc(obs.FaultActivations)
			if r.obs.Enabled() {
				r.obs.Note("radio-outage", fmt.Sprintf("%s off air %v..%v", target, ev.At, ev.At.Add(ev.Rule.Duration)))
			}
		}
	}

	// MCU crashes fire at schedule instants; the watchdog (when enabled)
	// detects the dead board and walks the degradation ladder.
	crashes := engine.TimedEvents(faults.MCUCrash, "mcu", r.horizon)
	for _, ev := range crashes {
		d := ev.Rule.Duration
		if _, err := r.sched.At(ev.At, func() { r.onMCUCrash(d) }); err != nil {
			return err
		}
	}
	if len(crashes) > 0 && r.pol.WatchdogInterval > 0 {
		for at := r.pol.WatchdogInterval; at <= r.horizon; at += r.pol.WatchdogInterval {
			if _, err := r.sched.At(sim.Time(at), r.watchdogProbe); err != nil {
				return err
			}
		}
	}
	return nil
}

// fail aborts the simulation with an error (used from event callbacks).
func (r *runner) fail(err error) {
	if r.runErr == nil {
		r.runErr = err
	}
	r.sched.Stop()
}

// windowFault lazily creates the per-window fault record; fault-free runs
// keep the map nil.
func (r *runner) windowFault(w int) *WindowFaults {
	if r.res.WindowFaults == nil {
		r.res.WindowFaults = make(map[int]*WindowFaults)
	}
	wf := r.res.WindowFaults[w]
	if wf == nil {
		wf = &WindowFaults{}
		r.res.WindowFaults[w] = wf
	}
	return wf
}

// windowAt is the window index the virtual instant falls in.
func (r *runner) windowAt(t sim.Time) int { return int(t / sim.Time(r.window)) }

// onMCUCrash injects one MCU reboot: resident batch samples are lost and
// must be re-collected, in-flight offloaded windows re-enter the time-budget
// check, and (watchdog disabled) the degradation ladder steps immediately.
func (r *runner) onMCUCrash(d time.Duration) {
	if !r.mcu.Alive() {
		return // absorbed by an ongoing reboot
	}
	now := r.sched.Now()
	if d <= 0 {
		d = r.params.MCU.RebootTime
	}
	r.windowFault(r.windowAt(now)).Crashes++
	r.obs.Inc(obs.FaultActivations)
	if r.obs.Enabled() {
		r.obs.Note("mcu-crash", fmt.Sprintf("window %d, reboot %v", r.windowAt(now), d))
	}

	// Everything resident in batch RAM is gone: rewind the owning windows'
	// read progress and queue re-reads for after the reboot.
	var redo []batchRef
	for _, st := range r.states {
		for _, ref := range st.batchRefs {
			w := ref.k / ref.s.perWindow
			st.readsDone[w]--
			redo = append(redo, ref)
		}
		r.res.RecollectedSamples += len(st.batchRefs)
		if len(st.batchRefs) > 0 {
			r.windowFault(r.windowAt(now)).Recollected += len(st.batchRefs)
		}
		st.batchRefs = nil
		// The buffer bytes evaporate with the RAM; zeroing the counters
		// keeps flushBatch from freeing bytes that no longer exist.
		st.batchFill = 0
		st.batchAllocd = 0

		// Offloaded windows whose computation was in flight restart from
		// scratch after the reboot — re-enter the MCU time-budget check.
		for w := range st.offloadInFlight {
			r.checkOffloadBudget(st, w, now.Add(d))
		}
	}
	if err := r.mcu.Crash(d, func() { r.afterReboot(redo) }); err != nil {
		r.fail(err)
		return
	}
	if r.pol != nil && r.pol.DegradeOnCrash && r.pol.WatchdogInterval <= 0 {
		r.lastDegradedCrash = r.mcu.Crashes()
		r.degradeAll("mcu crash")
	}
}

// afterReboot re-reserves the offload footprint (the binary reloads from
// flash) and re-issues the reads the crash destroyed, serialized so each
// stream's bus transactions do not overlap.
func (r *runner) afterReboot(redo []batchRef) {
	if r.offloadNeed > 0 && r.anyOffloadedAhead() {
		if err := r.mcu.Alloc(r.offloadNeed); err != nil {
			r.fail(err)
			return
		}
	}
	for i, ref := range redo {
		ref := ref
		delay := time.Duration(i) * ref.s.spec.ReadTime
		if _, err := r.sched.After(delay, func() { r.startRead(ref.s, ref.k) }); err != nil {
			r.fail(err)
			return
		}
	}
}

// anyOffloadedAhead reports whether any app still runs offloaded in the
// current or a future window.
func (r *runner) anyOffloadedAhead() bool {
	from := r.windowAt(r.sched.Now())
	for _, st := range r.states {
		for w := from; w < r.cfg.Windows; w++ {
			if st.modeFor(w) == Offloaded {
				return true
			}
		}
	}
	return false
}

// checkOffloadBudget re-enters the planner's MCU time-budget check for an
// offloaded window: will the (re)computation still meet the QoS deadline?
func (r *runner) checkOffloadBudget(st *appState, w int, earliestStart sim.Time) {
	r.res.OffloadBudgetChecks++
	deadline := sim.Time(int64(w+3) * int64(r.window))
	if earliestStart.Add(st.mcuComputeTime) > deadline {
		r.res.OffloadBudgetMisses++
	}
}

// watchdogProbe checks MCU liveness; a dead board walks the degradation
// ladder once per crash.
func (r *runner) watchdogProbe() {
	if r.mcu.Alive() || r.pol == nil || !r.pol.DegradeOnCrash {
		return
	}
	if r.lastDegradedCrash >= r.mcu.Crashes() {
		return
	}
	r.lastDegradedCrash = r.mcu.Crashes()
	r.degradeAll("watchdog: mcu dead")
}

// degradeAll steps every app one rung down the scheme ladder (Offloaded →
// Batched → PerSample) starting at the next window; in-flight windows keep
// the mode they started with.
func (r *runner) degradeAll(reason string) {
	wNext := r.windowAt(r.sched.Now()) + 1
	if wNext >= r.cfg.Windows {
		return // no future window left to protect
	}
	changed := false
	for _, st := range r.states {
		from := st.modeFor(wNext)
		var to Mode
		switch from {
		case Offloaded:
			to = Batched
		case Batched:
			to = PerSample
		default:
			continue // PerSample is the ladder's floor
		}
		st.modeChanges = append(st.modeChanges, modeChange{fromWindow: wNext, mode: to})
		r.res.Degradations = append(r.res.Degradations, Degradation{
			Window: wNext, App: st.spec.ID, From: from, To: to, Reason: reason,
		})
		r.windowFault(wNext).Degradations++
		if r.obs.Enabled() {
			r.obs.Note("degrade", fmt.Sprintf("%s %v->%v from window %d: %s", st.spec.ID, from, to, wNext, reason))
		}
		changed = true
	}
	if changed {
		r.retuneGovernor(wNext)
	}
}

// retuneGovernor recomputes the CPU idle policy after a degradation: a
// formerly all-offloaded hub now fields interrupts again.
func (r *runner) retuneGovernor(w int) {
	allOffloaded := true
	minGap := r.window
	for _, st := range r.states {
		if st.modeFor(w) != Offloaded {
			allOffloaded = false
		}
	}
	for _, s := range r.streams {
		for _, l := range s.consumers {
			if l.st.modeFor(w) == PerSample && s.period*time.Duration(l.stride) < minGap {
				minGap = s.period
			}
		}
	}
	r.gapHint = minGap
	r.allowDeep = allOffloaded
}

// build constructs app states and streams.
func (r *runner) build(modes map[apps.ID]Mode) error {
	allOffloaded := true
	minGap := r.window

	for _, a := range r.cfg.Apps {
		sp := a.Spec()
		st := &appState{
			app:             a,
			spec:            sp,
			mode:            modes[sp.ID],
			readsDone:       make(map[int]int),
			delivered:       make(map[int]int),
			expected:        make(map[int]int),
			fired:           make(map[int]bool),
			pendingFlushes:  make(map[int]int),
			offloadInFlight: make(map[int]bool),
		}
		ct, err := sp.CPUComputeTime(r.params.CPU.MIPS)
		if err != nil {
			return err
		}
		st.cpuComputeTime = ct
		// Offload cost uses the app's full-rate CPU time (EffectiveMIPS
		// models CPU-side memory-boundness; the MCU slowdown is separate).
		fullRate := sp.MIPS * sp.Window.Seconds() / r.params.CPU.MIPS
		st.mcuComputeTime = r.mcu.OffloadTime(
			time.Duration(fullRate*float64(time.Second)), sp.FPPenalty)
		n, err := sp.InterruptsPerWindow()
		if err != nil {
			return err
		}
		st.samplesPerWindow = n
		if st.mode != Offloaded {
			allOffloaded = false
		}
		r.states = append(r.states, st)

		if st.mode == Offloaded {
			for _, u := range sp.Sensors {
				sspec, err := sensor.Lookup(u.Sensor)
				if err != nil {
					return err
				}
				if !sspec.MCUFriendly {
					return fmt.Errorf("%w: %s needs MCU-unfriendly sensor %s", ErrUnoffloadable, sp.ID, u.Sensor)
				}
			}
		}
	}

	// Offloaded apps are bound into one sequentially executed MCU binary
	// (§III-B3), so their working sets time-share the RAM: reserve the
	// largest footprint plus its widest sample as a streaming buffer.
	offloadNeed := 0
	offloadID := apps.ID("")
	for _, st := range r.states {
		if st.mode != Offloaded {
			continue
		}
		need := st.spec.MemoryBytes()
		widest := 0
		for _, u := range st.spec.Sensors {
			b, err := u.SampleBytes()
			if err != nil {
				return err
			}
			if b > widest {
				widest = b
			}
		}
		need += widest
		if need > offloadNeed {
			offloadNeed, offloadID = need, st.spec.ID
		}
	}
	if offloadNeed > 0 {
		if err := r.mcu.Alloc(offloadNeed); err != nil {
			return fmt.Errorf("%w: %s: %v", ErrUnoffloadable, offloadID, err)
		}
	}
	r.offloadNeed = offloadNeed

	// Build streams. Under BEAM, per-sample streams of the same sensor are
	// shared across apps (at the fastest consumer's rate, with slower
	// consumers downsampling); otherwise every (app, sensor) pair gets its
	// own.
	if r.cfg.Scheme == BEAM {
		if err := r.buildSharedStreams(); err != nil {
			return err
		}
	} else {
		for _, st := range r.states {
			for _, u := range st.spec.Sensors {
				sspec, err := sensor.Lookup(u.Sensor)
				if err != nil {
					return err
				}
				bytes, err := u.SampleBytes()
				if err != nil {
					return err
				}
				perWindow, err := st.spec.SamplesPerWindow(u.Sensor)
				if err != nil {
					return err
				}
				s := &stream{
					id:        u.Sensor,
					spec:      sspec,
					bytes:     bytes,
					perWindow: perWindow,
					track:     r.meter.Track(fmt.Sprintf("sensor:%s:%s", u.Sensor, st.spec.ID)),
					consumers: []consumerLink{{st: st, stride: 1}},
				}
				s.period = r.window / time.Duration(s.perWindow)
				r.streams = append(r.streams, s)
			}
		}
	}
	for _, s := range r.streams {
		for _, l := range s.consumers {
			if l.st.mode == PerSample && s.period*time.Duration(l.stride) < minGap {
				minGap = s.period
			}
		}
	}
	r.gapHint = minGap
	r.allowDeep = allOffloaded
	return nil
}

// buildSharedStreams groups every sensor's users into one stream running at
// the fastest requested rate; slower consumers take strided samples. Rates
// must divide evenly (BEAM downsamples by integer factors).
func (r *runner) buildSharedStreams() error {
	type user struct {
		st        *appState
		perWindow int
		bytes     int
	}
	order := make([]sensor.ID, 0, 8)
	bySensor := make(map[sensor.ID][]user)
	for _, st := range r.states {
		for _, u := range st.spec.Sensors {
			perWindow, err := st.spec.SamplesPerWindow(u.Sensor)
			if err != nil {
				return err
			}
			bytes, err := u.SampleBytes()
			if err != nil {
				return err
			}
			if _, ok := bySensor[u.Sensor]; !ok {
				order = append(order, u.Sensor)
			}
			bySensor[u.Sensor] = append(bySensor[u.Sensor], user{st: st, perWindow: perWindow, bytes: bytes})
		}
	}
	for _, id := range order {
		users := bySensor[id]
		sspec, err := sensor.Lookup(id)
		if err != nil {
			return err
		}
		s := &stream{
			id:    id,
			spec:  sspec,
			track: r.meter.Track(fmt.Sprintf("sensor:%s", id)),
		}
		for _, u := range users {
			if u.perWindow > s.perWindow {
				s.perWindow = u.perWindow
			}
			if u.bytes > s.bytes {
				s.bytes = u.bytes
			}
		}
		for _, u := range users {
			if s.perWindow%u.perWindow != 0 {
				return fmt.Errorf("%w: BEAM cannot share %s between rates %d and %d per window",
					ErrConfig, id, s.perWindow, u.perWindow)
			}
			s.consumers = append(s.consumers, consumerLink{st: u.st, stride: s.perWindow / u.perWindow})
		}
		s.period = r.window / time.Duration(s.perWindow)
		r.streams = append(r.streams, s)
	}
	return nil
}

// prime sets the CPU's initial idle policy so window 0 is steady-state.
func (r *runner) prime() {
	routine := energy.DataTransfer
	gap := r.gapHint
	if r.allowDeep {
		routine = energy.AppCompute
		gap = r.window
	}
	if err := r.cpu.Idle(gap, routine, r.allowDeep); err != nil {
		r.fail(err)
	}
}

// scheduleAll enqueues every sensor read of the run.
func (r *runner) scheduleAll() error {
	for _, s := range r.streams {
		total := s.perWindow * r.cfg.Windows
		r.res.ScheduledSamples += total
		for k := 0; k < total; k++ {
			s := s
			k := k
			at := sim.Time(int64(k) * int64(s.period))
			if _, err := r.sched.At(at, func() { r.startRead(s, k) }); err != nil {
				return err
			}
		}
	}
	return nil
}

// startRead powers the sensor for its bus transaction, then has the MCU
// check/format the sample (DataCollection). A failed availability check
// (fault injection) costs the full attempt and is retried; exhausted retries
// drop the sample. A stream that blew its window's retry budget has been
// rate-downshifted: every other remaining read is skipped so the deadline
// survives.
func (r *runner) startRead(s *stream, k int) {
	w := k / s.perWindow
	if s.downshifted[w] && (k%s.perWindow)%2 == 1 {
		r.res.DownshiftSkipped++
		for _, l := range s.consumers {
			if !l.wants(k) {
				continue
			}
			l.st.expected[w] = l.st.expectedFor(w) - 1
			r.maybeComplete(l.st, w)
		}
		return
	}
	r.attemptRead(s, k, 0)
}

func (r *runner) attemptRead(s *stream, k, retriesUsed int) {
	s.attempts++
	r.obs.Inc(obs.SensorReads)
	failed := false
	if n := r.cfg.Faults.failEvery(s.id); n > 0 && s.attempts%n == 0 {
		failed = true
	}
	readTime := s.spec.ReadTime
	if r.engine != nil {
		now := r.sched.Now()
		if rule, ok := r.engine.Fires(faults.SensorSlow, string(s.id), now); ok {
			factor := rule.Factor
			if factor < 1 {
				factor = 1
			}
			readTime = time.Duration(float64(readTime) * factor)
			r.res.SlowReads++
		}
		if _, ok := r.engine.Fires(faults.SensorStuck, string(s.id), now); ok {
			// A stuck sensor re-delivers its previous value: timing and
			// energy are unchanged, the staleness is accounted. (The apps'
			// inputs come from synthetic sources; see the package note.)
			r.res.StuckSamples++
		}
	}
	s.track.Set(s.spec.PowerTyp, energy.DataCollection)
	_, err := r.sched.After(readTime, func() {
		s.track.Set(0, energy.Idle)
		err := r.mcu.Exec(r.params.MCU.PerReadCPU, energy.DataCollection, func() {
			switch {
			case !failed:
				r.sampleReady(s, k)
			case retriesUsed < r.cfg.Faults.maxRetries():
				r.res.ReadRetries++
				r.noteRetry(s, k)
				r.attemptRead(s, k, retriesUsed+1)
			default:
				r.dropSample(s, k)
			}
		})
		if err != nil {
			r.fail(err)
		}
	})
	if err != nil {
		r.fail(err)
	}
}

// noteRetry feeds the per-window fault record and the rate-downshift budget.
func (r *runner) noteRetry(s *stream, k int) {
	w := k / s.perWindow
	r.windowFault(w).Retries++
	if r.pol == nil || r.pol.RetryBudgetPerWindow <= 0 {
		return
	}
	if s.retriesInWindow == nil {
		s.retriesInWindow = make(map[int]int)
		s.downshifted = make(map[int]bool)
	}
	s.retriesInWindow[w]++
	if s.retriesInWindow[w] > r.pol.RetryBudgetPerWindow && !s.downshifted[w] {
		s.downshifted[w] = true
		r.res.RateDownshifts++
		if r.obs.Enabled() {
			r.obs.Note("rate-downshift", fmt.Sprintf("%s window %d over retry budget", s.id, w))
		}
	}
}

// dropSample abandons a sample: every consumer's window expectation shrinks
// and completion is re-checked (the drop may have been the last straw).
// Functional note: the apps' Compute inputs are regenerated from their
// synthetic sources, so drops affect energy/timing accounting, not the
// computed outputs (real apps tolerate missing samples; see DESIGN.md).
func (r *runner) dropSample(s *stream, k int) {
	r.res.DroppedSamples++
	r.obs.Inc(obs.SamplesDropped)
	w := k / s.perWindow
	r.windowFault(w).Drops++
	if r.obs.Enabled() {
		r.obs.Note("sample-drop", fmt.Sprintf("%s sample %d (window %d)", s.id, k, w))
	}
	for _, l := range s.consumers {
		if !l.wants(k) {
			continue
		}
		l.st.expected[w] = l.st.expectedFor(w) - 1
		r.maybeComplete(l.st, w)
	}
}

// maybeComplete fires a window's downstream step once all still-expected
// samples have progressed far enough for the app's mode in that window.
func (r *runner) maybeComplete(st *appState, w int) {
	if st.fired[w] {
		return
	}
	want := st.expectedFor(w)
	switch st.modeFor(w) {
	case PerSample:
		if st.delivered[w] >= want {
			st.fired[w] = true
			r.cpuCompute(st, w)
		}
	case Batched:
		if st.readsDone[w] >= want {
			st.fired[w] = true
			r.flushBatch(st, w, true)
		}
	case Offloaded:
		if st.readsDone[w] >= want {
			st.fired[w] = true
			r.offloadCompute(st, w)
		}
	}
}

// sampleReady dispatches a formatted sample according to each consumer's
// mode for the sample's window. Under BEAM a per-sample stream has multiple
// consumers but pays for one interrupt and one transfer.
func (r *runner) sampleReady(s *stream, k int) {
	w := k / s.perWindow
	r.res.DeliveredSamples++
	perSample := 0
	for _, l := range s.consumers {
		if !l.wants(k) {
			continue
		}
		st := l.st
		st.readsDone[w]++
		switch st.modeFor(w) {
		case PerSample:
			perSample++
		case Batched:
			r.batchSample(st, s, w, k)
			r.maybeComplete(st, w)
		case Offloaded:
			r.maybeComplete(st, w)
		}
	}
	if perSample > 0 {
		// BEAM's extra sharers ride the single interrupt: coalesced.
		if perSample > 1 {
			r.obs.Add(obs.InterruptsCoalesced, uint64(perSample-1))
		}
		r.interruptAndTransfer(s, k, w)
	}
}

// transferToCPU moves n payload bytes over the link and calls done when the
// transfer finishes, reporting whether the payload was delivered (always
// true on the fault-free wire; injected corruption/loss may exhaust the
// retry policy). Without DMA the CPU is busy for the whole transfer — wire
// time, retransmissions, timeouts, and backoff included — (the baseline
// hardware of the paper); with DMA (§IV-F ablation) it only programs a
// descriptor and the wire signals completion.
func (r *runner) transferToCPU(n int, done func(delivered bool)) {
	d, delivered, err := r.linkSend(n)
	if err != nil {
		r.fail(err)
		return
	}
	r.res.BytesTransferred += n
	if err := r.mcu.Exec(d, energy.DataTransfer, nil); err != nil {
		r.fail(err)
		return
	}
	finish := func() {
		done(delivered)
		r.governCPU()
	}
	if r.params.DMA {
		if err := r.cpu.Exec(r.params.DMASetup, energy.DataTransfer, nil); err != nil {
			r.fail(err)
			return
		}
		if _, err := r.sched.After(d, finish); err != nil {
			r.fail(err)
		}
		return
	}
	if err := r.cpu.Exec(d, energy.DataTransfer, finish); err != nil {
		r.fail(err)
	}
}

// linkSend puts n bytes on the wire, taking the reliable (CRC + bounded
// retransmission) path only when link faults are actually injected.
func (r *runner) linkSend(n int) (time.Duration, bool, error) {
	if !r.linkFaulty {
		d, err := r.link.Transmit(n, energy.DataTransfer)
		return d, true, err
	}
	rep, err := r.link.TransmitReliable(n, energy.DataTransfer, r.pol.LinkRetry,
		func(int) link.Outcome {
			now := r.sched.Now()
			_, corrupt := r.engine.Fires(faults.LinkCorrupt, "link", now)
			_, lost := r.engine.Fires(faults.LinkLoss, "link", now)
			switch {
			case lost:
				return link.TxLost
			case corrupt:
				return link.TxCorrupt
			default:
				return link.TxOK
			}
		})
	r.res.LinkRetransmits += rep.Attempts - 1
	r.res.LinkCorruptFrames += rep.Corrupted
	r.res.LinkLostFrames += rep.Lost
	if err == nil && !rep.Delivered {
		r.res.LinkAbortedTransfers++
		if r.obs.Enabled() {
			r.obs.Note("link-abort", fmt.Sprintf("%d bytes undelivered after %d attempts", n, rep.Attempts))
		}
	}
	return rep.Duration, rep.Delivered, err
}

// interruptAndTransfer is the Baseline/BEAM per-sample path: MCU raises the
// interrupt, the CPU fields it and pulls the sample over the link. An
// undelivered sample (link faults past the retry budget) shrinks the
// window's expectation — the window completes with fewer samples, exactly
// like a collection-stage drop.
func (r *runner) interruptAndTransfer(s *stream, k, w int) {
	err := r.mcu.Exec(r.params.MCU.IrqRaise, energy.Interrupt, func() {
		r.res.Interrupts++
		r.obs.Inc(obs.InterruptsRaised)
		err := r.cpu.Exec(r.params.CPUIrqHandle, energy.Interrupt, func() {
			r.transferToCPU(s.bytes, func(delivered bool) {
				for _, l := range s.consumers {
					if l.st.modeFor(w) != PerSample || !l.wants(k) {
						continue
					}
					if delivered {
						l.st.delivered[w]++
					} else {
						l.st.expected[w] = l.st.expectedFor(w) - 1
					}
					r.maybeComplete(l.st, w)
				}
			})
		})
		if err != nil {
			r.fail(err)
		}
	})
	if err != nil {
		r.fail(err)
	}
}

// batchSample appends a sample to the app's MCU-side batch, flushing early
// when the MCU RAM cannot hold more — or, under an armed resilience policy,
// already when RAM pressure crosses the escalation threshold. The final
// flush of a window is triggered by maybeComplete once all expected samples
// have been read.
func (r *runner) batchSample(st *appState, s *stream, w int, k int) {
	if r.pol != nil && r.pol.FlushAtRAMFrac > 0 && st.batchFill > 0 {
		if float64(r.mcu.RAMUsed()+s.bytes) > r.pol.FlushAtRAMFrac*float64(r.params.MCU.UsableRAM()) {
			r.res.EarlyFlushes++
			r.flushBatch(st, w, false)
		}
	}
	if err := r.mcu.Alloc(s.bytes); err != nil {
		// RAM pressure: flush what we have, then retry the allocation for
		// this sample against the freed space.
		r.flushBatch(st, w, false)
		if err := r.mcu.Alloc(s.bytes); err != nil {
			// The sample alone exceeds the free buffer (e.g. a camera frame
			// next to a large offloaded footprint): it cannot be batched at
			// all, so stream it through as its own immediate flush.
			st.batchFill += s.bytes
			r.flushBatch(st, w, false)
			return
		}
	}
	st.batchAllocd += s.bytes
	st.batchFill += s.bytes
	st.batchRefs = append(st.batchRefs, batchRef{s: s, k: k})
	// A batched sample crosses in a later bulk transfer, raising no
	// interrupt of its own.
	r.obs.Inc(obs.InterruptsCoalesced)
}

// flushBatch raises one interrupt and bulk-transfers the app's batch. The
// final flush of a window triggers the CPU-side computation — even when
// link faults swallowed a bulk frame past the retry budget: the window then
// computes on what arrived (the loss is visible in LinkAbortedTransfers).
func (r *runner) flushBatch(st *appState, w int, final bool) {
	fill := st.batchFill
	alloc := st.batchAllocd
	st.batchFill = 0
	st.batchAllocd = 0
	st.batchRefs = nil
	if fill == 0 && !final {
		return
	}
	// The transfer engine drains the buffer as it transmits, so the RAM is
	// reusable for new samples as soon as the flush is initiated.
	if err := r.mcu.Free(alloc); err != nil {
		r.fail(err)
		return
	}
	st.pendingFlushes[w]++
	err := r.mcu.Exec(r.params.MCU.IrqRaise, energy.Interrupt, func() {
		r.res.Interrupts++
		r.res.BatchFlushes++
		r.obs.Inc(obs.InterruptsRaised)
		r.obs.Inc(obs.BatchFlushes)
		err := r.cpu.Exec(r.params.CPUIrqHandle, energy.Interrupt, func() {
			r.transferToCPU(fill, func(bool) {
				st.pendingFlushes[w]--
				if final && st.pendingFlushes[w] == 0 {
					r.cpuCompute(st, w)
				}
			})
		})
		if err != nil {
			r.fail(err)
		}
	})
	if err != nil {
		r.fail(err)
	}
}

// cpuCompute runs the app-specific computation on the CPU.
func (r *runner) cpuCompute(st *appState, w int) {
	err := r.cpu.Exec(st.cpuComputeTime, energy.AppCompute, func() {
		r.finishWindow(st, w)
		r.governCPU()
	})
	if err != nil {
		r.fail(err)
	}
}

// offloadCompute runs the app-specific computation on the MCU, then sends
// the small result notification to the CPU. Dispatch enters the MCU
// time-budget check (the planner's admission test, re-entered after an MCU
// reboot restarts the computation). A result notification the link swallows
// past the retry budget leaves the window without an output — the loss is
// visible in LinkAbortedTransfers and the missing Outputs entry.
func (r *runner) offloadCompute(st *appState, w int) {
	r.checkOffloadBudget(st, w, r.sched.Now())
	st.offloadInFlight[w] = true
	err := r.mcu.Exec(st.mcuComputeTime, energy.AppCompute, func() {
		delete(st.offloadInFlight, w)
		err := r.mcu.Exec(r.params.MCU.IrqRaise, energy.Interrupt, func() {
			r.res.Interrupts++
			r.obs.Inc(obs.InterruptsRaised)
			err := r.cpu.Exec(r.params.CPUIrqHandle, energy.Interrupt, func() {
				r.transferToCPU(r.params.ResultBytes, func(delivered bool) {
					if delivered {
						r.finishWindow(st, w)
					}
				})
			})
			if err != nil {
				r.fail(err)
			}
		})
		if err != nil {
			r.fail(err)
		}
	})
	if err != nil {
		r.fail(err)
	}
}

// finishWindow records the app's window result and checks QoS.
func (r *runner) finishWindow(st *appState, w int) {
	wr := WindowResult{Window: w, At: r.sched.Now()}
	if !r.cfg.SkipAppCompute {
		in, err := apps.CollectWindow(st.app, w)
		if err != nil {
			r.fail(err)
			return
		}
		res, err := st.app.Compute(in)
		if err != nil {
			r.fail(fmt.Errorf("hub: %s window %d: %w", st.spec.ID, w, err))
			return
		}
		wr.Result = res
	}
	deadline := sim.Time(int64(w+3) * int64(r.window))
	if wr.At > deadline {
		r.res.QoSViolations++
		if r.obs.Enabled() {
			r.obs.Note("qos-violation", fmt.Sprintf("%s window %d finished %v past deadline", st.spec.ID, w, (wr.At-deadline)))
		}
	}
	if r.obs.Tracing() {
		// Per-app window span: the window's sampling start to its output.
		r.obs.Span("app:"+string(st.spec.ID), fmt.Sprintf("window %d", w),
			sim.Time(int64(w)*int64(r.window)), wr.At)
	}
	st.results = append(st.results, wr)
	r.uplink(st, w, wr.Result.Upstream)
}

// uplink pushes a window's output to the network: apps that ran the window
// offloaded transmit through the MCU's own radio, everything else through
// the main board WiFi. The host pays a small driver cost; the NIC handles
// the airtime.
func (r *runner) uplink(st *appState, w int, payload []byte) {
	if len(payload) == 0 {
		return
	}
	r.res.UpstreamBytes += len(payload)
	r.obs.Add(obs.UpstreamBytes, uint64(len(payload)))
	if st.modeFor(w) == Offloaded {
		if err := r.mcu.Exec(r.params.UplinkDriverCPU, energy.AppCompute, nil); err != nil {
			r.fail(err)
			return
		}
		if err := r.mcuRadio.Transmit(len(payload), energy.AppCompute, nil); err != nil {
			r.fail(err)
		}
		return
	}
	err := r.cpu.Exec(r.params.UplinkDriverCPU, energy.AppCompute, func() { r.governCPU() })
	if err != nil {
		r.fail(err)
		return
	}
	if err := r.mainRadio.Transmit(len(payload), energy.AppCompute, nil); err != nil {
		r.fail(err)
	}
}

// governCPU applies the idle policy after CPU work drains.
func (r *runner) governCPU() {
	routine := energy.DataTransfer
	gap := r.gapHint
	if r.allowDeep {
		routine = energy.AppCompute
		gap = r.window
	}
	if err := r.cpu.Idle(gap, routine, r.allowDeep); err != nil && !errorsIsBusy(err) {
		r.fail(err)
	}
}

func errorsIsBusy(err error) bool {
	return err == cpu.ErrBusy || err == mcu.ErrBusy
}

// collect finalizes the result after the event queue drains.
func (r *runner) collect() {
	r.collectObs()
	r.res.Energy = r.meter.Total()
	for _, name := range r.meter.Components() {
		r.res.PerComponent[name] = r.meter.Track(name).Breakdown()
	}
	r.res.CPUBusy = r.cpu.BusyByRoutine()
	r.res.MCUBusy = r.mcu.BusyByRoutine()
	r.res.CPUWakes = r.cpu.Wakes()
	r.res.MCUCrashes = r.mcu.Crashes()
	r.res.RadioDeferred = r.mainRadio.Deferred() + r.mcuRadio.Deferred()
	r.res.RadioDroppedBursts = r.mainRadio.DroppedBursts() + r.mcuRadio.DroppedBursts()
	r.res.RadioDroppedBytes = r.mainRadio.DroppedBytes() + r.mcuRadio.DroppedBytes()
	r.res.Duration = r.sched.Now().Duration()
	r.res.Window = r.window
	for _, st := range r.states {
		r.res.Outputs[st.spec.ID] = st.results
	}
	if r.cfg.TracePower {
		r.res.Traces = map[string][]energy.Sample{
			"cpu": r.cpu.Track().TraceSamples(),
			"mcu": r.mcu.Track().TraceSamples(),
		}
	}
}

// collectObs copies component-kept running totals into the recorder — the
// event kernel's traffic, CPU residency and wakes, MCU high-water and
// crashes, fault-engine probe hits — and closes the run-level scheme span.
func (r *runner) collectObs() {
	if !r.obs.Enabled() {
		return
	}
	scheduled, cancelled := r.sched.Stats()
	r.obs.Store(obs.SimEventsScheduled, scheduled)
	r.obs.Store(obs.SimEventsCancelled, cancelled)
	stateCounter := map[cpu.State]obs.Counter{
		cpu.Active:    obs.CPUTicksActive,
		cpu.WFI:       obs.CPUTicksWFI,
		cpu.Sleep:     obs.CPUTicksSleep,
		cpu.DeepSleep: obs.CPUTicksDeepSleep,
		cpu.Waking:    obs.CPUTicksWaking,
	}
	for s, d := range r.cpu.Residency() {
		if c, ok := stateCounter[s]; ok {
			r.obs.Store(c, uint64(d))
		}
	}
	r.obs.Store(obs.CPUWakes, uint64(r.cpu.Wakes()))
	r.obs.SetMax(obs.MCUBufferHighWater, uint64(r.mcu.RAMHighWater()))
	r.obs.Store(obs.MCUCrashes, uint64(r.mcu.Crashes()))
	r.obs.Add(obs.FaultActivations, r.engine.Activations())
	r.obs.Span("hub", r.cfg.Scheme.String(), 0, r.sched.Now())
}

// RunIdle measures the idle hub (Figure 1's reference): CPU suspended, MCU
// idle, no sensing, for the given duration.
func RunIdle(d time.Duration, params *Params) (*RunResult, error) {
	p := DefaultParams()
	if params != nil {
		p = *params
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	sched := sim.NewScheduler()
	meter := energy.NewMeter(sched)
	c, err := cpu.New(sched, meter, "cpu", p.CPU)
	if err != nil {
		return nil, err
	}
	if _, err := mcu.New(sched, meter, "mcu", p.MCU); err != nil {
		return nil, err
	}
	// An idle hub has nothing pending at all: the CPU power-gates into its
	// deepest state and the MCU idles (Fig. 1's reference point).
	if err := c.ForceState(cpu.DeepSleep, energy.Idle); err != nil {
		return nil, err
	}
	if err := sched.RunUntil(sim.Time(d)); err != nil {
		return nil, err
	}
	res := &RunResult{
		Energy:       meter.Total(),
		PerComponent: make(map[string]energy.Breakdown),
		Duration:     d,
		Outputs:      make(map[apps.ID][]WindowResult),
	}
	for _, name := range meter.Components() {
		res.PerComponent[name] = meter.Track(name).Breakdown()
	}
	return res, nil
}
