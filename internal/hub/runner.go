package hub

// The runner is a scheme-agnostic event conductor. Every scheme-dependent
// decision — interrupt vs buffer vs hold on a fresh sample, per-sample vs
// coalesced vs result-only transfer, CPU vs MCU computation, which progress
// gate closes a window — is delegated to the active per-app scheme.Policy;
// the conductor only executes the verdicts against the hardware models, so
// run timing and energy depend on the policies' decisions, never on how a
// scheme happens to be spelled. Fault injection and resilience live in
// chaos.go; the decision seams themselves in internal/scheme.

import (
	"fmt"
	"time"

	"iothub/internal/apps"
	"iothub/internal/cpu"
	"iothub/internal/edge"
	"iothub/internal/energy"
	"iothub/internal/faults"
	"iothub/internal/link"
	"iothub/internal/mcu"
	"iothub/internal/obs"
	"iothub/internal/power"
	"iothub/internal/radio"
	"iothub/internal/scheme"
	"iothub/internal/sensor"
	"iothub/internal/sim"
)

type runner struct {
	cfg    Config
	params Params
	window time.Duration

	sched     *sim.Scheduler
	meter     *energy.Meter
	cpu       *cpu.CPU
	mcu       *mcu.MCU
	link      *link.Link
	mainRadio *radio.Radio
	mcuRadio  *radio.Radio
	// edge is the upload-compute tier; nil unless some app's base policy
	// places its computation OnEdge, so local-only runs never pay for (or
	// meter) the third tier.
	edge *edge.Edge
	// obs is the run's observability recorder; nil (the default) makes every
	// instrumentation point a single-branch no-op.
	obs *obs.Recorder

	states  []*appState
	streams []*stream

	// gapHint is the expected CPU idle gap between events, used by the
	// governor after each completed work item.
	gapHint time.Duration
	// allowDeep is true when every app is offloaded (the CPU is fully
	// freed, §III-B4).
	allowDeep bool

	// Fault-injection machinery (chaos.go); all nil/zero when no schedule
	// is active.
	engine *faults.Engine
	pol    *ResiliencePolicy
	// linkFaulty short-circuits the reliable link path when no link rules
	// exist, keeping the wire byte-identical to the fault-free run.
	linkFaulty bool
	// horizon is the run's nominal end (Windows × window): self-firing
	// fault events and watchdog probes are only scheduled inside it so the
	// event queue still drains.
	horizon time.Duration
	// offloadNeed is the MCU RAM reserved for offloaded app footprints,
	// re-reserved after a crash wipes the RAM.
	offloadNeed int
	// lastDegradedCrash ensures the watchdog takes one ladder step per
	// crash, however many probes see the same dead MCU.
	lastDegradedCrash int

	// xfers is the slot pool of in-flight Interrupt + Data Transfer chains
	// (events.go); events carry slot indices instead of closures.
	xfers    []xfer
	xferFree []int32

	// In-situ meter runtime (meter.go); all zero unless params.Meter is
	// armed, so unobserved runs stay byte-identical.
	meterOn      bool
	meterPeriod  time.Duration
	meterSampleT time.Duration // MCU busy time per timed sample
	meterFlushT  time.Duration // MCU busy time per flush
	meterHookT   time.Duration // MCU busy time per event-attribution hook
	meterTrack   *energy.Track
	meterIdx     int64 // tick index since arm or reboot (duty-cycle phase)
	meterPend    int   // samples buffered since the last flush
	meterAllocd  int   // MCU RAM the meter currently holds
	meterGen     int64 // bumped on crash: outstanding flush completions go stale

	// Supply/demand power ledger runtime (power.go); all zero unless
	// params.Power is armed, so mains-powered runs stay byte-identical.
	powerOn        bool
	battCapJ       float64 // usable capacity in joules
	battSoCJ       float64 // current state of charge
	battMinJ       float64 // low-water mark over the run
	battHarvestJ   float64 // harvest energy actually credited (cap-clipped)
	battDemandJ    float64 // meter-wide joules at the last settle
	battHarvestW   float64 // harvest income level currently in force
	battDegradeJ   float64 // SoC that takes one ladder step (0 disables)
	battRecoverJ   float64 // SoC that reboots a browned-out board
	battPrevSoC    float64 // SoC at the previous tick (terminal detection)
	battPeriod     time.Duration
	battLastAt     sim.Time // instant of the last settle
	battBrownoutAt sim.Time // start of the open brownout interval
	battDegraded   bool     // the SoC ladder step fires once per run
	battBrownout   bool
	battTrack      *energy.Track
	battSteps      []power.Step // compiled harvest trace (cached across runs)
	battTraceSrc   string       // cache key: the Harvest spec battSteps compiled from
	battTraceHzn   time.Duration
	battRedo       []battRedo // batch refs a brownout wiped, redone at restore

	// Arena pools (arena.go): scrubbed per-run objects recycled across runs.
	// All empty on a fresh runner, so first use constructs exactly what the
	// pre-arena Run constructed.
	statePool  []*appState
	streamPool []*stream
	uploadPool []map[int]int
	edgePool   *edge.Edge

	res    *RunResult
	runErr error
}

// Run executes the configured scenario and returns its aggregated result.
// It is a single-shot arena run: the result owns its storage outright.
func Run(cfg Config) (*RunResult, error) {
	return NewArena().Run(cfg)
}

// fail aborts the simulation with an error (used from event callbacks).
func (r *runner) fail(err error) {
	if r.runErr == nil {
		r.runErr = err
	}
	r.sched.Stop()
}

// windowAt is the window index the virtual instant falls in.
func (r *runner) windowAt(t sim.Time) int { return int(t / sim.Time(r.window)) }

// build constructs app states and materializes the scheme's stream topology.
func (r *runner) build(pols map[apps.ID]scheme.Policy) error {
	allOffloaded := true
	minGap := r.window

	for _, a := range r.cfg.Apps {
		sp := a.Spec()
		st := r.getState()
		st.app = a
		st.spec = sp
		st.mode = pols[sp.ID].Mode()
		ct, err := sp.CPUComputeTime(r.params.CPU.MIPS)
		if err != nil {
			return err
		}
		st.cpuComputeTime = ct
		// Offload cost uses the app's full-rate CPU time (EffectiveMIPS
		// models CPU-side memory-boundness; the MCU slowdown is separate).
		fullRate := sp.MIPS * sp.Window.Seconds() / r.params.CPU.MIPS
		st.mcuComputeTime = r.mcu.OffloadTime(
			time.Duration(fullRate*float64(time.Second)), sp.FPPenalty)
		n, err := sp.InterruptsPerWindow()
		if err != nil {
			return err
		}
		st.samplesPerWindow = n
		if st.policy().PlaceCompute() != scheme.OnMCU {
			allOffloaded = false
		}
		if st.policy().PlaceCompute() == scheme.OnEdge {
			st.uploadBytes = r.getUploadMap()
			// The edge container is server-class: no EffectiveMIPS cap, the
			// app's full per-window instruction demand is the workload.
			st.edgeMI = sp.MIPS * sp.Window.Seconds()
		}
		r.states = append(r.states, st)

		if st.policy().PlaceCompute() == scheme.OnMCU {
			for _, u := range sp.Sensors {
				sspec, err := sensor.Lookup(u.Sensor)
				if err != nil {
					return err
				}
				if !sspec.MCUFriendly {
					return fmt.Errorf("%w: %s needs MCU-unfriendly sensor %s", ErrUnoffloadable, sp.ID, u.Sensor)
				}
			}
		}
	}

	// Offloaded apps are bound into one sequentially executed MCU binary
	// (§III-B3), so their working sets time-share the RAM: reserve the
	// largest footprint plus its widest sample as a streaming buffer.
	offloadNeed := 0
	offloadID := apps.ID("")
	for _, st := range r.states {
		if st.policy().PlaceCompute() != scheme.OnMCU {
			continue
		}
		need := st.spec.MemoryBytes()
		widest := 0
		for _, u := range st.spec.Sensors {
			b, err := u.SampleBytes()
			if err != nil {
				return err
			}
			if b > widest {
				widest = b
			}
		}
		need += widest
		if need > offloadNeed {
			offloadNeed, offloadID = need, st.spec.ID
		}
	}
	if offloadNeed > 0 {
		if err := r.mcu.Alloc(offloadNeed); err != nil {
			return fmt.Errorf("%w: %s: %v", ErrUnoffloadable, offloadID, err)
		}
	}
	r.offloadNeed = offloadNeed

	// Bring up the edge tier only when some placement needs it, so runs with
	// purely local schemes stay byte-identical to the pre-edge engine. A
	// reused arena revives its pooled executor at the same point, keeping the
	// "edge" track's position in the meter's component order.
	for _, st := range r.states {
		if st.policy().PlaceCompute() != scheme.OnEdge {
			continue
		}
		if r.edgePool != nil {
			if err := r.edgePool.Reset(r.params.Edge); err != nil {
				return err
			}
		} else {
			e, err := edge.New(r.sched, r.meter, "edge", r.params.Edge)
			if err != nil {
				return err
			}
			r.edgePool = e
		}
		r.edgePool.Observe(r.obs)
		r.edge = r.edgePool
		break
	}

	// Materialize the scheme's stream topology (dedicated per-(app, sensor)
	// streams, or BEAM's shared ones) and bind it to the event kernel.
	def, err := scheme.Lookup(r.cfg.Scheme)
	if err != nil {
		return err
	}
	plan, err := def.PlanStreams(r.cfg.schemeView())
	if err != nil {
		return err
	}
	byID := make(map[apps.ID]*appState, len(r.states))
	for _, st := range r.states {
		byID[st.spec.ID] = st
	}
	for _, ss := range plan {
		s := r.getStream()
		s.id = ss.Sensor
		s.spec = ss.Spec
		s.bytes = ss.Bytes
		s.perWindow = ss.PerWindow
		s.period = ss.Period
		s.track = r.meter.Track(ss.Track)
		for _, c := range ss.Consumers {
			s.consumers = append(s.consumers, consumerLink{st: byID[c.App], stride: c.Stride})
		}
		r.streams = append(r.streams, s)
	}
	for _, s := range r.streams {
		for _, l := range s.consumers {
			if l.st.policy().OnSampleReady() == scheme.Interrupt && s.period*time.Duration(l.stride) < minGap {
				minGap = s.period
			}
		}
	}
	r.gapHint = minGap
	r.allowDeep = allOffloaded
	return nil
}

// prime sets the CPU's initial idle policy so window 0 is steady-state.
func (r *runner) prime() {
	routine := energy.DataTransfer
	gap := r.gapHint
	if r.allowDeep {
		routine = energy.AppCompute
		gap = r.window
	}
	if err := r.cpu.Idle(gap, routine, r.allowDeep); err != nil {
		r.fail(err)
	}
}

// scheduleAll enqueues every sensor read of the run.
func (r *runner) scheduleAll() error {
	for _, s := range r.streams {
		total := s.perWindow * r.cfg.Windows
		r.res.ScheduledSamples += total
		for k := 0; k < total; k++ {
			at := sim.Time(int64(k) * int64(s.period))
			if _, err := r.sched.AtCall(at, r, sim.Arg{Op: opStartRead, P0: s, I0: int64(k)}); err != nil {
				return err
			}
		}
	}
	return nil
}

// startRead powers the sensor for its bus transaction, then has the MCU
// check/format the sample (DataCollection). A failed availability check
// (fault injection) costs the full attempt and is retried; exhausted retries
// drop the sample. A stream that blew its window's retry budget has been
// rate-downshifted: every other remaining read is skipped so the deadline
// survives.
func (r *runner) startRead(s *stream, k int) {
	if r.battBrownout {
		// The board is power-gated: the sensor is unpowered, the read never
		// happens, and no energy is spent. Accounted as an ordinary drop so
		// the sample ledger stays balanced however long the outage lasts.
		r.dropSample(s, k)
		return
	}
	w := k / s.perWindow
	if s.downshifted[w] && (k%s.perWindow)%2 == 1 {
		r.res.DownshiftSkipped++
		for _, l := range s.consumers {
			if !l.wants(k) {
				continue
			}
			l.st.expected[w] = l.st.expectedFor(w) - 1
			r.maybeComplete(l.st, w)
		}
		return
	}
	r.attemptRead(s, k, 0)
}

func (r *runner) attemptRead(s *stream, k, retriesUsed int) {
	s.attempts++
	r.obs.Inc(obs.SensorReads)
	failed := false
	if n := r.cfg.Faults.failEvery(s.id); n > 0 && s.attempts%n == 0 {
		failed = true
	}
	readTime := s.spec.ReadTime
	if r.engine != nil {
		now := r.sched.Now()
		if rule, ok := r.engine.Fires(faults.SensorSlow, string(s.id), now); ok {
			factor := rule.Factor
			if factor < 1 {
				factor = 1
			}
			readTime = time.Duration(float64(readTime) * factor)
			r.res.SlowReads++
		}
		if _, ok := r.engine.Fires(faults.SensorStuck, string(s.id), now); ok {
			// A stuck sensor re-delivers its previous value: timing and
			// energy are unchanged, the staleness is accounted. (The apps'
			// inputs come from synthetic sources; see the package note.)
			r.res.StuckSamples++
		}
	}
	s.track.Set(s.spec.PowerTyp, energy.DataCollection)
	// The bus-done and formatted steps are typed events (events.go): the
	// stream rides in P0, the sample index in I0, and retries/failed packed
	// into I1, so the per-sample chain allocates nothing.
	ctx := int64(retriesUsed) << 1
	if failed {
		ctx |= 1
	}
	_, err := r.sched.AfterCall(readTime, r, sim.Arg{Op: opReadBusDone, P0: s, I0: int64(k), I1: ctx})
	if err != nil {
		r.fail(err)
	}
}

// dropSample abandons a sample: every consumer's window expectation shrinks
// and completion is re-checked (the drop may have been the last straw).
// Functional note: the apps' Compute inputs are regenerated from their
// synthetic sources, so drops affect energy/timing accounting, not the
// computed outputs (real apps tolerate missing samples; see DESIGN.md).
func (r *runner) dropSample(s *stream, k int) {
	r.res.DroppedSamples++
	r.obs.Inc(obs.SamplesDropped)
	w := k / s.perWindow
	r.windowFault(w).Drops++
	if r.obs.Enabled() {
		r.obs.Note("sample-drop", fmt.Sprintf("%s sample %d (window %d)", s.id, k, w))
	}
	for _, l := range s.consumers {
		if !l.wants(k) {
			continue
		}
		l.st.expected[w] = l.st.expectedFor(w) - 1
		r.maybeComplete(l.st, w)
	}
}

// maybeComplete fires a window's downstream step once the progress counter
// named by the policy's close gate has caught up with every still-expected
// sample.
func (r *runner) maybeComplete(st *appState, w int) {
	if st.fired[w] {
		return
	}
	pol := st.policyFor(w)
	progress := st.delivered[w]
	if pol.OnWindowClose() == scheme.AwaitCollection {
		progress = st.readsDone[w]
	}
	if progress < st.expectedFor(w) {
		return
	}
	st.fired[w] = true
	r.closeWindow(st, w, pol)
}

// closeWindow executes the policy's transfer plan for a completed window: a
// coalesced plan still owes its final bulk flush; per-sample and result-only
// plans go straight to the computation placement.
func (r *runner) closeWindow(st *appState, w int, pol scheme.Policy) {
	if pol.PlanTransfer() == scheme.CoalescedTransfer {
		r.flushBatch(st, w, true)
		return
	}
	r.placeCompute(st, w, pol)
}

// placeCompute dispatches the window's app-specific computation to the
// processor the policy chose.
func (r *runner) placeCompute(st *appState, w int, pol scheme.Policy) {
	if pol.PlaceCompute() == scheme.OnMCU {
		r.offloadCompute(st, w)
		return
	}
	if pol.PlaceCompute() == scheme.OnEdge {
		r.edgeCompute(st, w)
		return
	}
	r.cpuCompute(st, w)
}

// sampleReady dispatches a formatted sample according to each consumer's
// policy for the sample's window. Under a shared topology (BEAM) a
// per-sample stream has multiple consumers but pays for one interrupt and
// one transfer.
func (r *runner) sampleReady(s *stream, k int) {
	w := k / s.perWindow
	r.res.DeliveredSamples++
	interrupting := 0
	for _, l := range s.consumers {
		if !l.wants(k) {
			continue
		}
		st := l.st
		st.readsDone[w]++
		switch st.policyFor(w).OnSampleReady() {
		case scheme.Interrupt:
			interrupting++
		case scheme.Buffer:
			r.batchSample(st, s, w, k)
			r.maybeComplete(st, w)
		case scheme.Hold:
			r.maybeComplete(st, w)
		}
	}
	if interrupting > 0 {
		// The extra sharers ride the single interrupt: coalesced.
		if interrupting > 1 {
			r.obs.Add(obs.InterruptsCoalesced, uint64(interrupting-1))
		}
		r.interruptAndTransfer(s, k, w)
	}
}

// cpuCompute runs the app-specific computation on the CPU.
func (r *runner) cpuCompute(st *appState, w int) {
	err := r.cpu.ExecCall(st.cpuComputeTime, energy.AppCompute,
		sim.Done{CB: r, Arg: sim.Arg{Op: opComputeDone, P0: st, I0: int64(w)}})
	if err != nil {
		r.fail(err)
	}
}

// offloadCompute runs the app-specific computation on the MCU, then sends
// the small result notification to the CPU (the result-only transfer plan).
// Dispatch enters the MCU time-budget check (the planner's admission test,
// re-entered after an MCU reboot restarts the computation). A result
// notification the link swallows past the retry budget leaves the window
// without an output — the loss is visible in LinkAbortedTransfers and the
// missing Outputs entry.
func (r *runner) offloadCompute(st *appState, w int) {
	r.checkOffloadBudget(st, w, r.sched.Now())
	st.offloadInFlight[w] = true
	err := r.mcu.ExecCall(st.mcuComputeTime, energy.AppCompute,
		sim.Done{CB: r, Arg: sim.Arg{Op: opOffloadDone, P0: st, I0: int64(w)}})
	if err != nil {
		r.fail(err)
	}
}

// finishWindow records the app's window result and checks QoS.
func (r *runner) finishWindow(st *appState, w int) {
	wr := WindowResult{Window: w, At: r.sched.Now()}
	if !r.cfg.SkipAppCompute {
		in, err := apps.CollectWindow(st.app, w)
		if err != nil {
			r.fail(err)
			return
		}
		res, err := st.app.Compute(in)
		if err != nil {
			r.fail(fmt.Errorf("hub: %s window %d: %w", st.spec.ID, w, err))
			return
		}
		wr.Result = res
	}
	deadline := sim.Time(int64(w+3) * int64(r.window))
	if wr.At > deadline {
		r.res.QoSViolations++
		if r.obs.Enabled() {
			r.obs.Note("qos-violation", fmt.Sprintf("%s window %d finished %v past deadline", st.spec.ID, w, (wr.At-deadline)))
		}
	}
	if r.obs.Tracing() {
		// Per-app window span: the window's sampling start to its output.
		r.obs.Span("app:"+string(st.spec.ID), fmt.Sprintf("window %d", w),
			sim.Time(int64(w)*int64(r.window)), wr.At)
	}
	st.results = append(st.results, wr)
	r.uplink(st, w, wr.Result.Upstream)
}

// uplink pushes a window's output to the network: apps whose policy placed
// the window's computation on the MCU transmit through the MCU's own radio,
// everything else through the main board WiFi. The host pays a small driver
// cost; the NIC handles the airtime.
func (r *runner) uplink(st *appState, w int, payload []byte) {
	if len(payload) == 0 {
		return
	}
	r.res.UpstreamBytes += len(payload)
	r.obs.Add(obs.UpstreamBytes, uint64(len(payload)))
	if st.policyFor(w).PlaceCompute() == scheme.OnEdge {
		// The result already lives in the edge container; it egresses from
		// the edge's own network, costing the hub nothing.
		r.res.EdgeUpstreamBytes += len(payload)
		r.obs.Add(obs.EdgeUpstreamBytes, uint64(len(payload)))
		return
	}
	if st.policyFor(w).PlaceCompute() == scheme.OnMCU {
		if err := r.mcu.Exec(r.params.UplinkDriverCPU, energy.AppCompute, nil); err != nil {
			r.fail(err)
			return
		}
		if err := r.mcuRadio.Transmit(len(payload), energy.AppCompute, nil); err != nil {
			r.fail(err)
		}
		return
	}
	err := r.cpu.ExecCall(r.params.UplinkDriverCPU, energy.AppCompute,
		sim.Done{CB: r, Arg: sim.Arg{Op: opGovern}})
	if err != nil {
		r.fail(err)
		return
	}
	if err := r.mainRadio.Transmit(len(payload), energy.AppCompute, nil); err != nil {
		r.fail(err)
	}
}

// governCPU applies the idle policy after CPU work drains.
func (r *runner) governCPU() {
	routine := energy.DataTransfer
	gap := r.gapHint
	if r.allowDeep {
		routine = energy.AppCompute
		gap = r.window
	}
	if err := r.cpu.Idle(gap, routine, r.allowDeep); err != nil && !errorsIsBusy(err) {
		r.fail(err)
	}
}

func errorsIsBusy(err error) bool {
	return err == cpu.ErrBusy || err == mcu.ErrBusy
}
