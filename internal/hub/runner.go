package hub

import (
	"fmt"
	"time"

	"iothub/internal/apps"
	"iothub/internal/cpu"
	"iothub/internal/energy"
	"iothub/internal/link"
	"iothub/internal/mcu"
	"iothub/internal/radio"
	"iothub/internal/sensor"
	"iothub/internal/sim"
)

// appState is one app's runtime bookkeeping.
type appState struct {
	app  apps.App
	spec apps.Spec
	mode Mode

	// cpuComputeTime / mcuComputeTime are the per-window app-specific
	// computation costs on each processor.
	cpuComputeTime time.Duration
	mcuComputeTime time.Duration

	// samplesPerWindow across all of the app's streams.
	samplesPerWindow int
	// readsDone / delivered count per-window progress; expected starts at
	// samplesPerWindow and shrinks when fault injection drops samples.
	readsDone map[int]int // window -> samples formatted at the MCU
	delivered map[int]int // window -> samples landed at the CPU
	expected  map[int]int // window -> samples still anticipated
	// fired guards against double-triggering a window's computation when
	// drops rearrange completion order.
	fired map[int]bool

	// Batched-mode buffer state.
	batchFill      int
	batchAllocd    int
	pendingFlushes map[int]int // window -> in-flight bulk transfers

	results []WindowResult
}

// consumerLink attaches one app to a stream. Under BEAM a stream runs at
// the fastest consumer's rate and slower consumers take every stride-th
// sample (BEAM's downsampling for rate-mismatched sharers).
type consumerLink struct {
	st     *appState
	stride int
}

// wants reports whether the consumer takes the stream's k-th sample.
func (l consumerLink) wants(k int) bool { return k%l.stride == 0 }

// stream is one physical sampling schedule: a sensor read sequence feeding
// one or more apps (more than one only under BEAM).
type stream struct {
	id        sensor.ID
	spec      sensor.Spec
	bytes     int
	perWindow int
	period    time.Duration
	track     *energy.Track
	consumers []consumerLink
	// attempts counts read attempts for deterministic fault injection.
	attempts int
}

// expectedFor reports how many samples window w still anticipates.
func (st *appState) expectedFor(w int) int {
	if _, ok := st.expected[w]; !ok {
		st.expected[w] = st.samplesPerWindow
	}
	return st.expected[w]
}

type runner struct {
	cfg    Config
	params Params
	window time.Duration

	sched     *sim.Scheduler
	meter     *energy.Meter
	cpu       *cpu.CPU
	mcu       *mcu.MCU
	link      *link.Link
	mainRadio *radio.Radio
	mcuRadio  *radio.Radio

	states  []*appState
	streams []*stream

	// gapHint is the expected CPU idle gap between events, used by the
	// governor after each completed work item.
	gapHint time.Duration
	// allowDeep is true when every app is offloaded (the CPU is fully
	// freed, §III-B4).
	allowDeep bool

	res    *RunResult
	runErr error
}

// Run executes the configured scenario and returns its aggregated result.
func Run(cfg Config) (*RunResult, error) {
	params, err := cfg.validate()
	if err != nil {
		return nil, err
	}
	modes, err := cfg.modes()
	if err != nil {
		return nil, err
	}
	r := &runner{cfg: cfg, params: params, window: cfg.Apps[0].Spec().Window}
	r.sched = sim.NewScheduler()
	r.meter = energy.NewMeter(r.sched)
	if r.cpu, err = cpu.New(r.sched, r.meter, "cpu", params.CPU); err != nil {
		return nil, err
	}
	if r.mcu, err = mcu.New(r.sched, r.meter, "mcu", params.MCU); err != nil {
		return nil, err
	}
	if r.link, err = link.New(r.sched, r.meter, "link", params.Link); err != nil {
		return nil, err
	}
	if r.mainRadio, err = radio.New(r.sched, r.meter, "radio:main", params.MainRadio); err != nil {
		return nil, err
	}
	if r.mcuRadio, err = radio.New(r.sched, r.meter, "radio:mcu", params.MCURadio); err != nil {
		return nil, err
	}
	if cfg.TracePower {
		r.cpu.Track().EnableTrace()
		r.mcu.Track().EnableTrace()
	}
	r.res = &RunResult{
		Scheme:       cfg.Scheme,
		Modes:        modes,
		Outputs:      make(map[apps.ID][]WindowResult, len(cfg.Apps)),
		PerComponent: make(map[string]energy.Breakdown),
	}
	if err := r.build(modes); err != nil {
		return nil, err
	}
	r.prime()
	if err := r.scheduleAll(); err != nil {
		return nil, err
	}
	if err := r.sched.Run(); err != nil {
		if r.runErr != nil {
			return nil, r.runErr
		}
		return nil, err
	}
	if r.runErr != nil {
		return nil, r.runErr
	}
	r.collect()
	return r.res, nil
}

// fail aborts the simulation with an error (used from event callbacks).
func (r *runner) fail(err error) {
	if r.runErr == nil {
		r.runErr = err
	}
	r.sched.Stop()
}

// build constructs app states and streams.
func (r *runner) build(modes map[apps.ID]Mode) error {
	allOffloaded := true
	minGap := r.window

	for _, a := range r.cfg.Apps {
		sp := a.Spec()
		st := &appState{
			app:            a,
			spec:           sp,
			mode:           modes[sp.ID],
			readsDone:      make(map[int]int),
			delivered:      make(map[int]int),
			expected:       make(map[int]int),
			fired:          make(map[int]bool),
			pendingFlushes: make(map[int]int),
		}
		ct, err := sp.CPUComputeTime(r.params.CPU.MIPS)
		if err != nil {
			return err
		}
		st.cpuComputeTime = ct
		// Offload cost uses the app's full-rate CPU time (EffectiveMIPS
		// models CPU-side memory-boundness; the MCU slowdown is separate).
		fullRate := sp.MIPS * sp.Window.Seconds() / r.params.CPU.MIPS
		st.mcuComputeTime = r.mcu.OffloadTime(
			time.Duration(fullRate*float64(time.Second)), sp.FPPenalty)
		n, err := sp.InterruptsPerWindow()
		if err != nil {
			return err
		}
		st.samplesPerWindow = n
		if st.mode != Offloaded {
			allOffloaded = false
		}
		r.states = append(r.states, st)

		if st.mode == Offloaded {
			for _, u := range sp.Sensors {
				sspec, err := sensor.Lookup(u.Sensor)
				if err != nil {
					return err
				}
				if !sspec.MCUFriendly {
					return fmt.Errorf("%w: %s needs MCU-unfriendly sensor %s", ErrUnoffloadable, sp.ID, u.Sensor)
				}
			}
		}
	}

	// Offloaded apps are bound into one sequentially executed MCU binary
	// (§III-B3), so their working sets time-share the RAM: reserve the
	// largest footprint plus its widest sample as a streaming buffer.
	offloadNeed := 0
	offloadID := apps.ID("")
	for _, st := range r.states {
		if st.mode != Offloaded {
			continue
		}
		need := st.spec.MemoryBytes()
		widest := 0
		for _, u := range st.spec.Sensors {
			b, err := u.SampleBytes()
			if err != nil {
				return err
			}
			if b > widest {
				widest = b
			}
		}
		need += widest
		if need > offloadNeed {
			offloadNeed, offloadID = need, st.spec.ID
		}
	}
	if offloadNeed > 0 {
		if err := r.mcu.Alloc(offloadNeed); err != nil {
			return fmt.Errorf("%w: %s: %v", ErrUnoffloadable, offloadID, err)
		}
	}

	// Build streams. Under BEAM, per-sample streams of the same sensor are
	// shared across apps (at the fastest consumer's rate, with slower
	// consumers downsampling); otherwise every (app, sensor) pair gets its
	// own.
	if r.cfg.Scheme == BEAM {
		if err := r.buildSharedStreams(); err != nil {
			return err
		}
	} else {
		for _, st := range r.states {
			for _, u := range st.spec.Sensors {
				sspec, err := sensor.Lookup(u.Sensor)
				if err != nil {
					return err
				}
				bytes, err := u.SampleBytes()
				if err != nil {
					return err
				}
				perWindow, err := st.spec.SamplesPerWindow(u.Sensor)
				if err != nil {
					return err
				}
				s := &stream{
					id:        u.Sensor,
					spec:      sspec,
					bytes:     bytes,
					perWindow: perWindow,
					track:     r.meter.Track(fmt.Sprintf("sensor:%s:%s", u.Sensor, st.spec.ID)),
					consumers: []consumerLink{{st: st, stride: 1}},
				}
				s.period = r.window / time.Duration(s.perWindow)
				r.streams = append(r.streams, s)
			}
		}
	}
	for _, s := range r.streams {
		for _, l := range s.consumers {
			if l.st.mode == PerSample && s.period*time.Duration(l.stride) < minGap {
				minGap = s.period
			}
		}
	}
	r.gapHint = minGap
	r.allowDeep = allOffloaded
	return nil
}

// buildSharedStreams groups every sensor's users into one stream running at
// the fastest requested rate; slower consumers take strided samples. Rates
// must divide evenly (BEAM downsamples by integer factors).
func (r *runner) buildSharedStreams() error {
	type user struct {
		st        *appState
		perWindow int
		bytes     int
	}
	order := make([]sensor.ID, 0, 8)
	bySensor := make(map[sensor.ID][]user)
	for _, st := range r.states {
		for _, u := range st.spec.Sensors {
			perWindow, err := st.spec.SamplesPerWindow(u.Sensor)
			if err != nil {
				return err
			}
			bytes, err := u.SampleBytes()
			if err != nil {
				return err
			}
			if _, ok := bySensor[u.Sensor]; !ok {
				order = append(order, u.Sensor)
			}
			bySensor[u.Sensor] = append(bySensor[u.Sensor], user{st: st, perWindow: perWindow, bytes: bytes})
		}
	}
	for _, id := range order {
		users := bySensor[id]
		sspec, err := sensor.Lookup(id)
		if err != nil {
			return err
		}
		s := &stream{
			id:    id,
			spec:  sspec,
			track: r.meter.Track(fmt.Sprintf("sensor:%s", id)),
		}
		for _, u := range users {
			if u.perWindow > s.perWindow {
				s.perWindow = u.perWindow
			}
			if u.bytes > s.bytes {
				s.bytes = u.bytes
			}
		}
		for _, u := range users {
			if s.perWindow%u.perWindow != 0 {
				return fmt.Errorf("%w: BEAM cannot share %s between rates %d and %d per window",
					ErrConfig, id, s.perWindow, u.perWindow)
			}
			s.consumers = append(s.consumers, consumerLink{st: u.st, stride: s.perWindow / u.perWindow})
		}
		s.period = r.window / time.Duration(s.perWindow)
		r.streams = append(r.streams, s)
	}
	return nil
}

// prime sets the CPU's initial idle policy so window 0 is steady-state.
func (r *runner) prime() {
	routine := energy.DataTransfer
	gap := r.gapHint
	if r.allowDeep {
		routine = energy.AppCompute
		gap = r.window
	}
	if err := r.cpu.Idle(gap, routine, r.allowDeep); err != nil {
		r.fail(err)
	}
}

// scheduleAll enqueues every sensor read of the run.
func (r *runner) scheduleAll() error {
	for _, s := range r.streams {
		total := s.perWindow * r.cfg.Windows
		for k := 0; k < total; k++ {
			s := s
			k := k
			at := sim.Time(int64(k) * int64(s.period))
			if _, err := r.sched.At(at, func() { r.startRead(s, k) }); err != nil {
				return err
			}
		}
	}
	return nil
}

// startRead powers the sensor for its bus transaction, then has the MCU
// check/format the sample (DataCollection). A failed availability check
// (fault injection) costs the full attempt and is retried; exhausted retries
// drop the sample.
func (r *runner) startRead(s *stream, k int) {
	r.attemptRead(s, k, 0)
}

func (r *runner) attemptRead(s *stream, k, retriesUsed int) {
	s.attempts++
	failed := false
	if n := r.cfg.Faults.failEvery(s.id); n > 0 && s.attempts%n == 0 {
		failed = true
	}
	s.track.Set(s.spec.PowerTyp, energy.DataCollection)
	_, err := r.sched.After(s.spec.ReadTime, func() {
		s.track.Set(0, energy.Idle)
		err := r.mcu.Exec(r.params.MCU.PerReadCPU, energy.DataCollection, func() {
			switch {
			case !failed:
				r.sampleReady(s, k)
			case retriesUsed < r.cfg.Faults.maxRetries():
				r.res.ReadRetries++
				r.attemptRead(s, k, retriesUsed+1)
			default:
				r.dropSample(s, k)
			}
		})
		if err != nil {
			r.fail(err)
		}
	})
	if err != nil {
		r.fail(err)
	}
}

// dropSample abandons a sample: every consumer's window expectation shrinks
// and completion is re-checked (the drop may have been the last straw).
// Functional note: the apps' Compute inputs are regenerated from their
// synthetic sources, so drops affect energy/timing accounting, not the
// computed outputs (real apps tolerate missing samples; see DESIGN.md).
func (r *runner) dropSample(s *stream, k int) {
	r.res.DroppedSamples++
	w := k / s.perWindow
	for _, l := range s.consumers {
		if !l.wants(k) {
			continue
		}
		l.st.expected[w] = l.st.expectedFor(w) - 1
		r.maybeComplete(l.st, w)
	}
}

// maybeComplete fires a window's downstream step once all still-expected
// samples have progressed far enough for the app's mode.
func (r *runner) maybeComplete(st *appState, w int) {
	if st.fired[w] {
		return
	}
	want := st.expectedFor(w)
	switch st.mode {
	case PerSample:
		if st.delivered[w] >= want {
			st.fired[w] = true
			r.cpuCompute(st, w)
		}
	case Batched:
		if st.readsDone[w] >= want {
			st.fired[w] = true
			r.flushBatch(st, w, true)
		}
	case Offloaded:
		if st.readsDone[w] >= want {
			st.fired[w] = true
			r.offloadCompute(st, w)
		}
	}
}

// sampleReady dispatches a formatted sample according to each consumer's
// mode. Under BEAM a per-sample stream has multiple consumers but pays for
// one interrupt and one transfer.
func (r *runner) sampleReady(s *stream, k int) {
	w := k / s.perWindow
	perSample := false
	for _, l := range s.consumers {
		if !l.wants(k) {
			continue
		}
		st := l.st
		st.readsDone[w]++
		switch st.mode {
		case PerSample:
			perSample = true
		case Batched:
			r.batchSample(st, s, w)
			r.maybeComplete(st, w)
		case Offloaded:
			r.maybeComplete(st, w)
		}
	}
	if perSample {
		r.interruptAndTransfer(s, k, w)
	}
}

// transferToCPU moves n payload bytes over the link and calls done when the
// data has landed at the CPU. Without DMA the CPU is busy for the whole
// transfer (the baseline hardware of the paper); with DMA (§IV-F ablation)
// it only programs a descriptor and the wire signals completion.
func (r *runner) transferToCPU(n int, done func()) {
	d, err := r.link.Transmit(n, energy.DataTransfer)
	if err != nil {
		r.fail(err)
		return
	}
	r.res.BytesTransferred += n
	if err := r.mcu.Exec(d, energy.DataTransfer, nil); err != nil {
		r.fail(err)
		return
	}
	finish := func() {
		done()
		r.governCPU()
	}
	if r.params.DMA {
		if err := r.cpu.Exec(r.params.DMASetup, energy.DataTransfer, nil); err != nil {
			r.fail(err)
			return
		}
		if _, err := r.sched.After(d, finish); err != nil {
			r.fail(err)
		}
		return
	}
	if err := r.cpu.Exec(d, energy.DataTransfer, finish); err != nil {
		r.fail(err)
	}
}

// interruptAndTransfer is the Baseline/BEAM per-sample path: MCU raises the
// interrupt, the CPU fields it and pulls the sample over the link.
func (r *runner) interruptAndTransfer(s *stream, k, w int) {
	err := r.mcu.Exec(r.params.MCU.IrqRaise, energy.Interrupt, func() {
		r.res.Interrupts++
		err := r.cpu.Exec(r.params.CPUIrqHandle, energy.Interrupt, func() {
			r.transferToCPU(s.bytes, func() {
				for _, l := range s.consumers {
					if l.st.mode != PerSample || !l.wants(k) {
						continue
					}
					l.st.delivered[w]++
					r.maybeComplete(l.st, w)
				}
			})
		})
		if err != nil {
			r.fail(err)
		}
	})
	if err != nil {
		r.fail(err)
	}
}

// batchSample appends a sample to the app's MCU-side batch, flushing early
// when the MCU RAM cannot hold more. The final flush of a window is
// triggered by maybeComplete once all expected samples have been read.
func (r *runner) batchSample(st *appState, s *stream, w int) {
	if err := r.mcu.Alloc(s.bytes); err != nil {
		// RAM pressure: flush what we have, then retry the allocation for
		// this sample against the freed space.
		r.flushBatch(st, w, false)
		if err := r.mcu.Alloc(s.bytes); err != nil {
			// The sample alone exceeds the free buffer (e.g. a camera frame
			// next to a large offloaded footprint): it cannot be batched at
			// all, so stream it through as its own immediate flush.
			st.batchFill += s.bytes
			r.flushBatch(st, w, false)
			return
		}
	}
	st.batchAllocd += s.bytes
	st.batchFill += s.bytes
}

// flushBatch raises one interrupt and bulk-transfers the app's batch. The
// final flush of a window triggers the CPU-side computation.
func (r *runner) flushBatch(st *appState, w int, final bool) {
	fill := st.batchFill
	alloc := st.batchAllocd
	st.batchFill = 0
	st.batchAllocd = 0
	if fill == 0 && !final {
		return
	}
	// The transfer engine drains the buffer as it transmits, so the RAM is
	// reusable for new samples as soon as the flush is initiated.
	if err := r.mcu.Free(alloc); err != nil {
		r.fail(err)
		return
	}
	st.pendingFlushes[w]++
	err := r.mcu.Exec(r.params.MCU.IrqRaise, energy.Interrupt, func() {
		r.res.Interrupts++
		r.res.BatchFlushes++
		err := r.cpu.Exec(r.params.CPUIrqHandle, energy.Interrupt, func() {
			r.transferToCPU(fill, func() {
				st.pendingFlushes[w]--
				if final && st.pendingFlushes[w] == 0 {
					r.cpuCompute(st, w)
				}
			})
		})
		if err != nil {
			r.fail(err)
		}
	})
	if err != nil {
		r.fail(err)
	}
}

// cpuCompute runs the app-specific computation on the CPU.
func (r *runner) cpuCompute(st *appState, w int) {
	err := r.cpu.Exec(st.cpuComputeTime, energy.AppCompute, func() {
		r.finishWindow(st, w)
		r.governCPU()
	})
	if err != nil {
		r.fail(err)
	}
}

// offloadCompute runs the app-specific computation on the MCU, then sends
// the small result notification to the CPU.
func (r *runner) offloadCompute(st *appState, w int) {
	err := r.mcu.Exec(st.mcuComputeTime, energy.AppCompute, func() {
		err := r.mcu.Exec(r.params.MCU.IrqRaise, energy.Interrupt, func() {
			r.res.Interrupts++
			err := r.cpu.Exec(r.params.CPUIrqHandle, energy.Interrupt, func() {
				r.transferToCPU(r.params.ResultBytes, func() {
					r.finishWindow(st, w)
				})
			})
			if err != nil {
				r.fail(err)
			}
		})
		if err != nil {
			r.fail(err)
		}
	})
	if err != nil {
		r.fail(err)
	}
}

// finishWindow records the app's window result and checks QoS.
func (r *runner) finishWindow(st *appState, w int) {
	wr := WindowResult{Window: w, At: r.sched.Now()}
	if !r.cfg.SkipAppCompute {
		in, err := apps.CollectWindow(st.app, w)
		if err != nil {
			r.fail(err)
			return
		}
		res, err := st.app.Compute(in)
		if err != nil {
			r.fail(fmt.Errorf("hub: %s window %d: %w", st.spec.ID, w, err))
			return
		}
		wr.Result = res
	}
	deadline := sim.Time(int64(w+3) * int64(r.window))
	if wr.At > deadline {
		r.res.QoSViolations++
	}
	st.results = append(st.results, wr)
	r.uplink(st, wr.Result.Upstream)
}

// uplink pushes a window's output to the network: offloaded apps transmit
// through the MCU's own radio, everything else through the main board WiFi.
// The host pays a small driver cost; the NIC handles the airtime.
func (r *runner) uplink(st *appState, payload []byte) {
	if len(payload) == 0 {
		return
	}
	r.res.UpstreamBytes += len(payload)
	if st.mode == Offloaded {
		if err := r.mcu.Exec(r.params.UplinkDriverCPU, energy.AppCompute, nil); err != nil {
			r.fail(err)
			return
		}
		if err := r.mcuRadio.Transmit(len(payload), energy.AppCompute, nil); err != nil {
			r.fail(err)
		}
		return
	}
	err := r.cpu.Exec(r.params.UplinkDriverCPU, energy.AppCompute, func() { r.governCPU() })
	if err != nil {
		r.fail(err)
		return
	}
	if err := r.mainRadio.Transmit(len(payload), energy.AppCompute, nil); err != nil {
		r.fail(err)
	}
}

// governCPU applies the idle policy after CPU work drains.
func (r *runner) governCPU() {
	routine := energy.DataTransfer
	gap := r.gapHint
	if r.allowDeep {
		routine = energy.AppCompute
		gap = r.window
	}
	if err := r.cpu.Idle(gap, routine, r.allowDeep); err != nil && !errorsIsBusy(err) {
		r.fail(err)
	}
}

func errorsIsBusy(err error) bool {
	return err == cpu.ErrBusy || err == mcu.ErrBusy
}

// collect finalizes the result after the event queue drains.
func (r *runner) collect() {
	r.res.Energy = r.meter.Total()
	for _, name := range r.meter.Components() {
		r.res.PerComponent[name] = r.meter.Track(name).Breakdown()
	}
	r.res.CPUBusy = r.cpu.BusyByRoutine()
	r.res.MCUBusy = r.mcu.BusyByRoutine()
	r.res.CPUWakes = r.cpu.Wakes()
	r.res.Duration = r.sched.Now().Duration()
	r.res.Window = r.window
	for _, st := range r.states {
		r.res.Outputs[st.spec.ID] = st.results
	}
	if r.cfg.TracePower {
		r.res.Traces = map[string][]energy.Sample{
			"cpu": r.cpu.Track().TraceSamples(),
			"mcu": r.mcu.Track().TraceSamples(),
		}
	}
}

// RunIdle measures the idle hub (Figure 1's reference): CPU suspended, MCU
// idle, no sensing, for the given duration.
func RunIdle(d time.Duration, params *Params) (*RunResult, error) {
	p := DefaultParams()
	if params != nil {
		p = *params
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	sched := sim.NewScheduler()
	meter := energy.NewMeter(sched)
	c, err := cpu.New(sched, meter, "cpu", p.CPU)
	if err != nil {
		return nil, err
	}
	if _, err := mcu.New(sched, meter, "mcu", p.MCU); err != nil {
		return nil, err
	}
	// An idle hub has nothing pending at all: the CPU power-gates into its
	// deepest state and the MCU idles (Fig. 1's reference point).
	if err := c.ForceState(cpu.DeepSleep, energy.Idle); err != nil {
		return nil, err
	}
	if err := sched.RunUntil(sim.Time(d)); err != nil {
		return nil, err
	}
	res := &RunResult{
		Energy:       meter.Total(),
		PerComponent: make(map[string]energy.Breakdown),
		Duration:     d,
		Outputs:      make(map[apps.ID][]WindowResult),
	}
	for _, name := range meter.Components() {
		res.PerComponent[name] = meter.Track(name).Breakdown()
	}
	return res, nil
}
