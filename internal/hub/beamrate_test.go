package hub

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"iothub/internal/apps"
	"iothub/internal/sensor"
)

// slowAccelApp is a minimal workload sampling the accelerometer below its
// QoS default — the rate-mismatched sharer BEAM must downsample for.
type slowAccelApp struct {
	rateHz float64
	src    sensor.Source
}

func newSlowAccelApp(rateHz float64) (*slowAccelApp, error) {
	src, err := sensor.DefaultSource(sensor.Accelerometer, 5)
	if err != nil {
		return nil, err
	}
	return &slowAccelApp{rateHz: rateHz, src: src}, nil
}

func (a *slowAccelApp) Spec() apps.Spec {
	return apps.Spec{
		ID:       "AX",
		Name:     "slow tilt monitor",
		Category: "Test",
		Task:     "mean tilt",
		Sensors: []apps.SensorUse{
			{Sensor: sensor.Accelerometer, RateHz: a.rateHz},
		},
		Window:     time.Second,
		HeapBytes:  1024,
		StackBytes: 128,
		MIPS:       1,
	}
}

func (a *slowAccelApp) Source(id sensor.ID) (sensor.Source, error) {
	if id != sensor.Accelerometer {
		return nil, apps.ErrUnknownSensor
	}
	return a.src, nil
}

func (a *slowAccelApp) Compute(in apps.WindowInput) (apps.Result, error) {
	n := len(in.Samples[sensor.Accelerometer])
	return apps.Result{
		Summary: fmt.Sprintf("%d tilt samples", n),
		Metrics: map[string]float64{"n": float64(n)},
	}, nil
}

var _ apps.App = (*slowAccelApp)(nil)

func TestSpecRateOverride(t *testing.T) {
	a, err := newSlowAccelApp(100)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Spec().Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	n, err := a.Spec().SamplesPerWindow(sensor.Accelerometer)
	if err != nil || n != 100 {
		t.Errorf("samples = %d, want 100", n)
	}
	irq, err := a.Spec().InterruptsPerWindow()
	if err != nil || irq != 100 {
		t.Errorf("interrupts = %d, want 100", irq)
	}
}

func TestSpecRejectsExcessiveRate(t *testing.T) {
	bad := apps.Spec{
		ID: "AY", Name: "y", Window: time.Second,
		Sensors: []apps.SensorUse{{Sensor: sensor.Barometer, RateHz: 10_000}},
	}
	if err := bad.Validate(); err == nil {
		t.Error("rate above sensor max accepted")
	}
	neg := apps.Spec{
		ID: "AZ", Name: "z", Window: time.Second,
		Sensors: []apps.SensorUse{{Sensor: sensor.Barometer, RateHz: -1}},
	}
	if err := neg.Validate(); err == nil {
		t.Error("negative rate accepted")
	}
}

func TestBEAMSharesAcrossRates(t *testing.T) {
	slow, err := newSlowAccelApp(100)
	if err != nil {
		t.Fatal(err)
	}
	fast := newApps(t, apps.StepCounter)[0]
	res := mustRun(t, Config{Apps: []apps.App{fast, slow}, Scheme: BEAM, Windows: 2})
	// One shared stream at 1 kHz: 1000 interrupts/window, not 1100.
	if res.Interrupts != 2000 {
		t.Errorf("interrupts = %d, want 2000 (shared at the fast rate)", res.Interrupts)
	}
	// Both apps complete every window.
	if got := len(res.Outputs["AX"]); got != 2 {
		t.Fatalf("slow app outputs = %d, want 2", got)
	}
	// The slow app saw its strided share of the window's data.
	if n := res.Outputs["AX"][0].Result.Metrics["n"]; n != 100 {
		t.Errorf("slow app samples = %v, want 100", n)
	}
	if got := len(res.Outputs[apps.StepCounter]); got != 2 {
		t.Errorf("fast app outputs = %d, want 2", got)
	}
}

func TestBEAMBaselineDuplicatesAcrossRates(t *testing.T) {
	slow, err := newSlowAccelApp(100)
	if err != nil {
		t.Fatal(err)
	}
	fast := newApps(t, apps.StepCounter)[0]
	res := mustRun(t, Config{Apps: []apps.App{fast, slow}, Scheme: Baseline, Windows: 1})
	if res.Interrupts != 1100 {
		t.Errorf("baseline interrupts = %d, want 1100 (independent streams)", res.Interrupts)
	}
}

func TestBEAMRejectsIndivisibleRates(t *testing.T) {
	odd, err := newSlowAccelApp(300) // 1000 % 300 != 0
	if err != nil {
		t.Fatal(err)
	}
	fast := newApps(t, apps.StepCounter)[0]
	_, err = Run(Config{Apps: []apps.App{fast, odd}, Scheme: BEAM, Windows: 1})
	if !errors.Is(err, ErrConfig) {
		t.Errorf("err = %v, want ErrConfig for indivisible rates", err)
	}
}
