package hub

import (
	"testing"
	"testing/quick"

	"iothub/internal/apps"
	"iothub/internal/apps/catalog"
	"iothub/internal/energy"
)

// TestPropertySchemeInvariants runs randomized subsets of the light
// workloads under every automatic scheme and checks cross-scheme invariants
// the paper's whole argument rests on:
//
//  1. Baseline interrupts equal the Table II per-window counts.
//  2. Batching never raises more interrupts than Baseline, COM never more
//     than Batching (+ result notifications).
//  3. Energy: COM <= Batching <= Baseline (within a sliver of tolerance for
//     apps batching cannot help).
//  4. Every app produces one output per window under every scheme.
func TestPropertySchemeInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized simulation sweep")
	}
	f := func(mask uint16) bool {
		ids := subset(mask)
		if len(ids) == 0 || len(ids) > 3 {
			return true // keep runtimes bounded; quick tries many masks
		}
		const windows = 2
		results := make(map[Scheme]*RunResult, 3)
		for _, scheme := range []Scheme{Baseline, Batching, COM} {
			list := make([]apps.App, 0, len(ids))
			for _, id := range ids {
				a, err := catalog.New(id, 3)
				if err != nil {
					return false
				}
				list = append(list, a)
			}
			res, err := Run(Config{Apps: list, Scheme: scheme, Windows: windows, SkipAppCompute: true})
			if err != nil {
				t.Logf("%v %v: %v", ids, scheme, err)
				return false
			}
			results[scheme] = res
		}

		wantIrq := 0
		for _, id := range ids {
			a, err := catalog.New(id, 3)
			if err != nil {
				return false
			}
			n, err := a.Spec().InterruptsPerWindow()
			if err != nil {
				return false
			}
			wantIrq += n
		}
		if results[Baseline].Interrupts != windows*wantIrq {
			t.Logf("%v: baseline irq %d != %d", ids, results[Baseline].Interrupts, windows*wantIrq)
			return false
		}
		if results[Batching].Interrupts > results[Baseline].Interrupts {
			return false
		}
		if results[COM].Interrupts != windows*len(ids) {
			t.Logf("%v: COM irq %d != %d", ids, results[COM].Interrupts, windows*len(ids))
			return false
		}

		base := results[Baseline].TotalJoules()
		bat := results[Batching].TotalJoules()
		com := results[COM].TotalJoules()
		if bat > base*1.01 || com > bat*1.01 {
			t.Logf("%v: energy ordering base=%.3f bat=%.3f com=%.3f", ids, base, bat, com)
			return false
		}

		for scheme, res := range results {
			for _, id := range ids {
				if len(res.Outputs[id]) != windows {
					t.Logf("%v %v: %s outputs %d", ids, scheme, id, len(res.Outputs[id]))
					return false
				}
			}
			if res.QoSViolations != 0 {
				t.Logf("%v %v: qos violations %d", ids, scheme, res.QoSViolations)
				return false
			}
			var nonIdle float64
			for _, r := range []energy.Routine{
				energy.DataCollection, energy.Interrupt, energy.DataTransfer, energy.AppCompute,
			} {
				nonIdle += res.Energy[r]
			}
			if nonIdle <= 0 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// subset decodes a bitmask over the light workload catalog.
func subset(mask uint16) []apps.ID {
	var out []apps.ID
	for i, id := range catalog.LightIDs {
		if mask&(1<<uint(i)) != 0 {
			out = append(out, id)
		}
	}
	return out
}
