// Tests for the in-situ meter runtime: the asymptote identity against the
// committed golden corpus (a disarmed instrument is byte-for-byte invisible),
// arena-reuse determinism with a live meter, the chaos interaction (an MCU
// crash drops the buffered burst instead of panicking or double-counting),
// and the exact sample/flush arithmetic of the counters.
//
// External test package, like the golden corpus harness it reuses: BCOM
// needs the planner in internal/core.
package hub_test

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"iothub/internal/apps"
	"iothub/internal/faults"
	"iothub/internal/hub"
	"iothub/internal/obs"
)

// runMetered executes one golden-corpus entry with the given meter model and
// returns the same three byte streams the corpus pins.
func runMetered(t *testing.T, ids []apps.ID, scheme hub.Scheme, chaos string, m *obs.MeterModel) (result, counters, trace []byte) {
	t.Helper()
	rec := obs.NewRecorder()
	rec.EnableTracing()
	cfg := obsConfig(t, ids, scheme, 2, rec)
	cfg.Meter = m
	if chaos != "" {
		schedule, err := faults.ParseSchedule(chaos)
		if err != nil {
			t.Fatal(err)
		}
		cfg.FaultSchedule = schedule
	}
	res, err := hub.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	var cbuf, tbuf bytes.Buffer
	if err := obs.WriteCounters(&cbuf, rec); err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteChromeTrace(&tbuf, rec); err != nil {
		t.Fatal(err)
	}
	return append(blob, '\n'), cbuf.Bytes(), tbuf.Bytes()
}

// mustGolden reads a committed golden file (no -update path: this test pins
// against the corpus as committed — if it only passes after regeneration,
// the asymptote is broken).
func mustGolden(t *testing.T, name string) []byte {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("testdata", "golden", name))
	if err != nil {
		t.Fatalf("missing golden: %v", err)
	}
	return b
}

// TestMeterAsymptoteGolden is the convergence check the meter model promises:
// a zero-cost meter and the External preset reproduce the committed golden
// corpus — result JSON, counter registry, and trace digest — byte for byte,
// across every scheme, clean and under chaos. The instrument's mere presence
// in the config costs nothing; only its costs do.
func TestMeterAsymptoteGolden(t *testing.T) {
	ext := obs.External()
	ext.RateHz = 1000 // a bench instrument samples for free at any rate
	zero := obs.MeterModel{RateHz: 500}
	for _, tc := range goldenCases() {
		for _, m := range []struct {
			label string
			model obs.MeterModel
		}{{"external", ext}, {"zerocost", zero}} {
			t.Run(tc.name+"/"+m.label, func(t *testing.T) {
				model := m.model
				result, counters, trace := runMetered(t, tc.ids, tc.scheme, tc.chaos, &model)
				if want := mustGolden(t, tc.name+".result.json"); !bytes.Equal(result, want) {
					t.Errorf("result JSON diverged from golden under a disarmed meter")
				}
				if want := mustGolden(t, tc.name+".counters.txt"); !bytes.Equal(counters, want) {
					t.Errorf("counters diverged from golden under a disarmed meter:\ngot:\n%s\nwant:\n%s", counters, want)
				}
				digest := fmt.Sprintf("sha256:%x %d bytes\n", sha256.Sum256(trace), len(trace))
				if want := mustGolden(t, tc.name+".trace.sha256"); digest != string(want) {
					t.Errorf("trace digest diverged from golden under a disarmed meter:\ngot:  %swant: %s", digest, want)
				}
			})
		}
	}
}

// TestMeterArenaReuse pins arena-reuse determinism with a live instrument: a
// metered run in a reused arena — warmed by runs of other schemes, with and
// without meters — must be byte-identical to the same scenario in a fresh
// arena, result and counters both. The meter track must revive in the same
// registration order construction created it.
func TestMeterArenaReuse(t *testing.T) {
	m := obs.Insitu(500)
	metered := hub.Scenario{
		Apps: []apps.ID{apps.StepCounter}, Scheme: hub.Baseline,
		Windows: 2, Seed: 7, SkipAppCompute: true, Meter: &m,
	}
	other := hub.Scenario{
		Apps: []apps.ID{apps.StepCounter}, Scheme: hub.Batching,
		Windows: 1, Seed: 3, SkipAppCompute: true,
	}
	snap := func(r *hub.RunResult, err error) string {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		blob, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		return string(blob)
	}
	fresh := snap(hub.NewArena().RunScenario(metered))
	arena := hub.NewArena()
	snap(arena.RunScenario(other))   // dirty the arena meter-free
	snap(arena.RunScenario(metered)) // first metered reuse
	snap(arena.RunScenario(other))   // meter state must fully reset
	reused := snap(arena.RunScenario(metered))
	if fresh != reused {
		t.Errorf("metered run diverges between fresh and reused arenas:\nfresh:  %.300s\nreused: %.300s", fresh, reused)
	}
}

// TestMeterChaosCrash pins the crash interaction: an MCU reboot under an
// armed meter drops the buffered records as one burst (no panic, no
// double-count) and the run stays deterministic and invariant-clean.
func TestMeterChaosCrash(t *testing.T) {
	m := obs.Insitu(1000)
	run := func() *hub.RunResult {
		t.Helper()
		cfg := obsConfig(t, []apps.ID{apps.StepCounter}, hub.Baseline, 2, nil)
		cfg.Meter = &m
		schedule, err := faults.ParseSchedule(goldenChaos)
		if err != nil {
			t.Fatal(err)
		}
		cfg.FaultSchedule = schedule
		res, err := hub.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := run()
	if res.MCUCrashes == 0 {
		t.Fatalf("chaos schedule injected no crash")
	}
	if res.MeterDroppedSamples == 0 {
		t.Errorf("MCU crash dropped no meter samples (want the buffered burst + reboot-window readings)")
	}
	if res.MeterSamples == 0 {
		t.Errorf("meter took no samples under chaos")
	}
	a, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(run())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("metered chaos run is not deterministic")
	}
}

// TestMeterCountersAnalytic checks the instrument's arithmetic exactly: a
// timer-only meter at rate f over w windows takes f·w samples and flushes
// every FlushEvery of them; duty-cycling keeps one attempt in DutyOn+DutyOff;
// the event hook adds one sample per raised interrupt.
func TestMeterCountersAnalytic(t *testing.T) {
	t.Run("timed", func(t *testing.T) {
		m := obs.Insitu(100)
		m.HookCycles = 0
		rec := obs.NewRecorder()
		cfg := obsConfig(t, []apps.ID{apps.StepCounter}, hub.Batching, 2, rec)
		cfg.Meter = &m
		res, err := hub.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		const samples = 200 // 100 Hz x 2 s
		flushes := samples / m.FlushEvery
		if res.MeterSamples != samples || res.MeterFlushes != flushes {
			t.Errorf("samples/flushes = %d/%d, want %d/%d", res.MeterSamples, res.MeterFlushes, samples, flushes)
		}
		if want := flushes * m.FlushEvery * m.FlushBytes; res.MeterBytes != want {
			t.Errorf("MeterBytes = %d, want %d", res.MeterBytes, want)
		}
		if want := samples*m.PerSampleCycles + int64(flushes)*m.FlushCycles; res.MeterCycles != want {
			t.Errorf("MeterCycles = %d, want %d", res.MeterCycles, want)
		}
		if res.MeterDroppedSamples != 0 {
			t.Errorf("dropped %d samples in a clean run", res.MeterDroppedSamples)
		}
		expectCounter(t, rec, obs.MeterSamples, samples)
		expectCounter(t, rec, obs.MeterFlushes, uint64(flushes))
		expectCounter(t, rec, obs.MeterBytes, uint64(flushes*m.FlushEvery*m.FlushBytes))
		expectCounter(t, rec, obs.MeterCPUCycles, uint64(samples*m.PerSampleCycles+int64(flushes)*m.FlushCycles))
		expectCounter(t, rec, obs.MeterDroppedSamples, 0)
	})
	t.Run("duty", func(t *testing.T) {
		m := obs.Eco(100)
		m.HookCycles = 0
		cfg := obsConfig(t, []apps.ID{apps.StepCounter}, hub.Batching, 2, nil)
		cfg.Meter = &m
		res, err := hub.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// 200 attempts, 1-in-4 duty: only idx % 4 == 0 samples.
		if want := 200 / (m.DutyOn + m.DutyOff); res.MeterSamples != want {
			t.Errorf("duty-cycled samples = %d, want %d", res.MeterSamples, want)
		}
	})
	t.Run("hook", func(t *testing.T) {
		m := obs.MeterModel{RateHz: 1, HookCycles: 800}
		cfg := obsConfig(t, []apps.ID{apps.StepCounter}, hub.Baseline, 2, nil)
		cfg.Meter = &m
		res, err := hub.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		timed := 2 // 1 Hz x 2 s
		if want := res.Interrupts + timed; res.MeterSamples != want {
			t.Errorf("hooked samples = %d, want one per interrupt + %d timed = %d", res.MeterSamples, timed, want)
		}
		if want := int64(res.Interrupts) * m.HookCycles; res.MeterCycles != want {
			t.Errorf("MeterCycles = %d, want %d (hooks only: timed samples cost 0 here)", res.MeterCycles, want)
		}
	})
}

// TestMeterScenarioRoundTrip pins the serialization surface fleet sweeps
// depend on: a scenario's meter survives the JSON round trip and shows in
// the label; a meter-free scenario serializes exactly as before.
func TestMeterScenarioRoundTrip(t *testing.T) {
	m := obs.Eco(250)
	s := hub.Scenario{
		Apps: []apps.ID{apps.StepCounter}, Scheme: hub.Batching,
		Windows: 2, Seed: 9, Meter: &m,
	}
	blob, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back hub.Scenario
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Meter == nil || *back.Meter != m {
		t.Errorf("meter did not survive the round trip: %+v", back.Meter)
	}
	if want := "A2/Batching/w2/m250"; s.Label() != want {
		t.Errorf("Label() = %q, want %q", s.Label(), want)
	}
	s.Meter = nil
	plain, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(plain, []byte("meter")) {
		t.Errorf("meter-free scenario leaks a meter field: %s", plain)
	}
}
