// Observability-layer tests at the hub level: the counter registry must
// reproduce the paper's Table II interrupt/transfer arithmetic analytically,
// and an armed recorder must never perturb the simulation (same JSON bytes
// with and without one). External test package: BCOM needs the planner in
// internal/core, which itself imports hub.
package hub_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"iothub/internal/apps"
	"iothub/internal/apps/catalog"
	"iothub/internal/core"
	"iothub/internal/faults"
	"iothub/internal/hub"
	"iothub/internal/obs"
	"iothub/internal/sensor"
)

// obsConfig builds a fresh single- or multi-app config (apps are stateful, so
// every run needs new instances) with an optional armed recorder.
func obsConfig(t *testing.T, ids []apps.ID, scheme hub.Scheme, windows int, rec *obs.Recorder) hub.Config {
	t.Helper()
	var list []apps.App
	for _, id := range ids {
		a, err := catalog.New(id, 1)
		if err != nil {
			t.Fatal(err)
		}
		list = append(list, a)
	}
	cfg := hub.Config{Apps: list, Scheme: scheme, Windows: windows}
	if scheme == hub.BCOM {
		plan, err := core.PlanBCOM(list, hub.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		cfg.Assign = plan.Assign
	}
	if rec != nil {
		p := hub.DefaultParams()
		p.Obs = rec
		cfg.Params = &p
	}
	return cfg
}

// expectCounter asserts one registry value.
func expectCounter(t *testing.T, rec *obs.Recorder, c obs.Counter, want uint64) {
	t.Helper()
	if got := rec.Get(c); got != want {
		t.Errorf("%s = %d, want %d", c, got, want)
	}
}

// TestObsCountersAnalyticBaseline checks the Table II arithmetic for the
// step counter (A2) under Baseline: every sample raises exactly one
// interrupt and crosses the link once, so the counters must equal
// samplesPerWindow x windows (and the sample-size product for bytes),
// matching the paper's oprofile interrupt counts for per-sample execution.
func TestObsCountersAnalyticBaseline(t *testing.T) {
	const windows = 3
	rec := obs.NewRecorder()
	cfg := obsConfig(t, []apps.ID{apps.StepCounter}, hub.Baseline, windows, rec)

	spec := cfg.Apps[0].Spec()
	spw, err := spec.SamplesPerWindow(sensor.Accelerometer)
	if err != nil {
		t.Fatal(err)
	}
	sampleBytes, err := spec.Sensors[0].SampleBytes()
	if err != nil {
		t.Fatal(err)
	}
	samples := uint64(spw * windows)

	res, err := hub.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	expectCounter(t, rec, obs.SensorReads, samples)
	expectCounter(t, rec, obs.InterruptsRaised, samples)
	expectCounter(t, rec, obs.InterruptsCoalesced, 0)
	expectCounter(t, rec, obs.UARTFrames, samples)
	expectCounter(t, rec, obs.UARTBytes, samples*uint64(sampleBytes))
	expectCounter(t, rec, obs.UARTRetransmits, 0)
	expectCounter(t, rec, obs.BatchFlushes, 0)
	expectCounter(t, rec, obs.MCUCrashes, 0)
	expectCounter(t, rec, obs.SamplesDropped, 0)
	expectCounter(t, rec, obs.FaultActivations, 0)

	// Cross-check against the run result's own accounting.
	if got := rec.Get(obs.InterruptsRaised); got != uint64(res.Interrupts) {
		t.Errorf("interrupts_raised = %d, RunResult.Interrupts = %d", got, res.Interrupts)
	}
	if got := rec.Get(obs.UARTBytes); got != uint64(res.BytesTransferred) {
		t.Errorf("uart_bytes = %d, RunResult.BytesTransferred = %d", got, res.BytesTransferred)
	}
	if got := rec.Get(obs.UpstreamBytes); got != uint64(res.UpstreamBytes) {
		t.Errorf("upstream_bytes = %d, RunResult.UpstreamBytes = %d", got, res.UpstreamBytes)
	}
	if got := rec.Get(obs.CPUWakes); got != uint64(res.CPUWakes) {
		t.Errorf("cpu_wakes = %d, RunResult.CPUWakes = %d", got, res.CPUWakes)
	}
	if rec.Get(obs.SimEventsScheduled) == 0 {
		t.Error("sim_events_scheduled = 0, want > 0")
	}

	// CPU state residency must partition the run exactly: every nanosecond
	// of virtual time is in exactly one power state.
	var resid uint64
	for _, c := range []obs.Counter{obs.CPUTicksActive, obs.CPUTicksWFI,
		obs.CPUTicksSleep, obs.CPUTicksDeepSleep, obs.CPUTicksWaking} {
		resid += rec.Get(c)
	}
	if resid != uint64(res.Duration) {
		t.Errorf("residency sum = %d ns, run duration = %d ns", resid, res.Duration)
	}
}

// TestObsCountersBatching checks the coalescing arithmetic: under Batching
// every sample is buffered (coalesced) and only flushes raise interrupts.
func TestObsCountersBatching(t *testing.T) {
	const windows = 2
	rec := obs.NewRecorder()
	cfg := obsConfig(t, []apps.ID{apps.StepCounter}, hub.Batching, windows, rec)
	spw, err := cfg.Apps[0].Spec().SamplesPerWindow(sensor.Accelerometer)
	if err != nil {
		t.Fatal(err)
	}
	res, err := hub.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.BatchFlushes == 0 {
		t.Fatal("batching run reported zero flushes")
	}
	expectCounter(t, rec, obs.BatchFlushes, uint64(res.BatchFlushes))
	expectCounter(t, rec, obs.InterruptsRaised, uint64(res.Interrupts))
	expectCounter(t, rec, obs.InterruptsCoalesced, uint64(spw*windows))
	if raised := rec.Get(obs.InterruptsRaised); raised >= uint64(spw*windows) {
		t.Errorf("interrupts_raised = %d, want far fewer than %d samples", raised, spw*windows)
	}
}

// TestObsCountersBEAMSharing checks stream sharing: two apps on the same
// accelerometer stream mean every shared delivery beyond the first is a
// coalesced interrupt.
func TestObsCountersBEAMSharing(t *testing.T) {
	rec := obs.NewRecorder()
	cfg := obsConfig(t, []apps.ID{apps.StepCounter, apps.Earthquake}, hub.BEAM, 2, rec)
	res, err := hub.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Get(obs.InterruptsCoalesced) == 0 {
		t.Error("interrupts_coalesced = 0, want > 0 for a shared stream")
	}
	expectCounter(t, rec, obs.InterruptsRaised, uint64(res.Interrupts))
}

// TestObsRecorderDoesNotPerturb is the measurement-does-not-perturb
// guarantee: the full run result marshals to byte-identical JSON whether the
// recorder (with tracing and flight ring armed) is attached or not, across
// every scheme and under chaos.
func TestObsRecorderDoesNotPerturb(t *testing.T) {
	cases := []struct {
		name   string
		ids    []apps.ID
		scheme hub.Scheme
		chaos  string
	}{
		{"baseline", []apps.ID{apps.StepCounter}, hub.Baseline, ""},
		{"batching", []apps.ID{apps.StepCounter}, hub.Batching, ""},
		{"com", []apps.ID{apps.CoAPServer}, hub.COM, ""},
		{"bcom", []apps.ID{apps.SpeechToTxt, apps.DropboxMgr}, hub.BCOM, ""},
		{"beam", []apps.ID{apps.StepCounter, apps.Earthquake}, hub.BEAM, ""},
		{"chaos", []apps.ID{apps.StepCounter}, hub.Baseline,
			"seed=7; link-corrupt:prob=0.05; mcu-crash:at=700ms,for=80ms"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run := func(rec *obs.Recorder) []byte {
				cfg := obsConfig(t, tc.ids, tc.scheme, 2, rec)
				if tc.chaos != "" {
					schedule, err := faults.ParseSchedule(tc.chaos)
					if err != nil {
						t.Fatal(err)
					}
					cfg.FaultSchedule = schedule
				}
				res, err := hub.Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				blob, err := json.Marshal(res)
				if err != nil {
					t.Fatal(err)
				}
				return blob
			}
			bare := run(nil)
			rec := obs.NewRecorder()
			rec.EnableTracing()
			instrumented := run(rec)
			if !bytes.Equal(bare, instrumented) {
				t.Errorf("instrumented run diverged from bare run:\nbare:         %.200s\ninstrumented: %.200s",
					bare, instrumented)
			}
			if rec.Get(obs.SensorReads) == 0 {
				t.Error("instrumented run recorded no sensor reads")
			}
		})
	}
}

// TestObsTraceFromRun runs an instrumented simulation and validates its
// Chrome trace-event export: parseable, deterministic, and carrying the
// expected tracks.
func TestObsTraceFromRun(t *testing.T) {
	render := func() ([]byte, *obs.Recorder) {
		rec := obs.NewRecorder()
		rec.EnableTracing()
		cfg := obsConfig(t, []apps.ID{apps.StepCounter}, hub.Baseline, 1, rec)
		if _, err := hub.Run(cfg); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := obs.WriteChromeTrace(&buf, rec); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), rec
	}
	blob, rec := render()
	again, _ := render()
	if !bytes.Equal(blob, again) {
		t.Error("trace export is not deterministic across identical runs")
	}

	var doc obs.TraceDocument
	if err := json.Unmarshal(blob, &doc); err != nil {
		t.Fatalf("trace does not parse: %v", err)
	}
	if doc.SpansDropped != 0 {
		t.Errorf("SpansDropped = %d, want 0", doc.SpansDropped)
	}
	tracks := map[string]bool{}
	var complete int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			tracks[ev.Args["name"]] = true
		case "X":
			complete++
			if ev.Ts < 0 || ev.Dur < 0 {
				t.Fatalf("event %q has negative ts/dur: %+v", ev.Name, ev)
			}
			if ev.Pid != 1 || ev.Tid < 1 {
				t.Fatalf("event %q has bad pid/tid: %+v", ev.Name, ev)
			}
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	for _, want := range []string{"cpu", "mcu", "link", "hub", "app:A2"} {
		if !tracks[want] {
			t.Errorf("trace is missing track %q (have %v)", want, tracks)
		}
	}
	if complete != len(rec.Spans()) {
		t.Errorf("%d complete events, recorder holds %d spans", complete, len(rec.Spans()))
	}
	if complete == 0 {
		t.Fatal("trace has no complete events")
	}
	// The run-spanning hub span is present and named after the scheme.
	var hubSpan bool
	for _, s := range rec.Spans() {
		if s.Track == "hub" && strings.Contains(s.Name, "Baseline") {
			hubSpan = true
		}
	}
	if !hubSpan {
		t.Error("no hub/Baseline run span recorded")
	}
}
