package hub

import (
	"testing"

	"iothub/internal/apps"
	"iothub/internal/apps/catalog"
)

// benchScheme runs one step-counter window per iteration under the scheme —
// the cost of simulating one QoS window end to end.
func benchScheme(b *testing.B, scheme Scheme) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		a, err := catalog.New(apps.StepCounter, 1)
		if err != nil {
			b.Fatal(err)
		}
		_, err = Run(Config{
			Apps: []apps.App{a}, Scheme: scheme, Windows: 1, SkipAppCompute: true,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunBaselineWindow(b *testing.B) { benchScheme(b, Baseline) }
func BenchmarkRunBatchingWindow(b *testing.B) { benchScheme(b, Batching) }
func BenchmarkRunCOMWindow(b *testing.B)      { benchScheme(b, COM) }

// BenchmarkRunFourAppBEAM measures the heaviest multi-app simulation shape.
func BenchmarkRunFourAppBEAM(b *testing.B) {
	ids := []apps.ID{apps.StepCounter, apps.M2X, apps.Blynk, apps.Earthquake}
	for i := 0; i < b.N; i++ {
		var list []apps.App
		for _, id := range ids {
			a, err := catalog.New(id, 1)
			if err != nil {
				b.Fatal(err)
			}
			list = append(list, a)
		}
		if _, err := Run(Config{Apps: list, Scheme: BEAM, Windows: 1, SkipAppCompute: true}); err != nil {
			b.Fatal(err)
		}
	}
}
