package hub

// Typed event dispatch for the conductor's hot paths. Every per-sample step
// of a run — read scheduling, bus/format completion, the interrupt+transfer
// chain, compute completion — used to close over its context, allocating a
// fresh closure per event. The runner now implements sim.Callback once: the
// op discriminates the step and the context rides in the sim.Arg (stream or
// appState pointer in P0, indices packed into I0/I1), so a steady-state run
// schedules thousands of events without a single allocation. Cold paths
// (fault arming, crash recovery, edge submission) keep their closures — they
// fire at most a handful of times per run and untouched code is untouched
// behavior.

import (
	"iothub/internal/energy"
	"iothub/internal/obs"
	"iothub/internal/scheme"
	"iothub/internal/sim"
)

// Runner event ops. The read chain carries (stream, k) plus retries/failed
// packed into I1; the transfer chain carries an index into the xfer pool.
const (
	opStartRead     = iota + 1 // P0 *stream, I0 sample index
	opReadBusDone              // sensor bus transaction done; MCU formats next
	opReadFormatted            // MCU formatting done; dispatch, retry, or drop
	opXferRaised               // I0 xfer slot: interrupt raised at the MCU
	opXferHandled              // I0 xfer slot: CPU fielded it, wire next
	opXferDone                 // I0 xfer slot: payload crossed, run continuation
	opComputeDone              // P0 *appState, I0 window: CPU computation done
	opOffloadDone              // P0 *appState, I0 window: MCU computation done
	opGovern                   // re-apply the CPU idle policy
	opMeterTick                // in-situ meter sampling instant (meter.go)
	opMeterFlushed             // I0 sample count, I1 crash generation: flush done
	opPowerTick                // supply ledger settlement instant (power.go)
	opPowerStep                // I0 step index: harvest trace level change
)

// OnEvent dispatches the runner's typed events (see the ops above).
func (r *runner) OnEvent(a sim.Arg) {
	switch a.Op {
	case opStartRead:
		r.startRead(a.P0.(*stream), int(a.I0))
	case opReadBusDone:
		s := a.P0.(*stream)
		s.track.Set(0, energy.Idle)
		err := r.mcu.ExecCall(r.params.MCU.PerReadCPU, energy.DataCollection,
			sim.Done{CB: r, Arg: sim.Arg{Op: opReadFormatted, P0: s, I0: a.I0, I1: a.I1}})
		if err != nil {
			r.fail(err)
		}
	case opReadFormatted:
		s := a.P0.(*stream)
		k := int(a.I0)
		retriesUsed, failed := int(a.I1>>1), a.I1&1 != 0
		switch {
		case !failed:
			r.sampleReady(s, k)
		case retriesUsed < r.cfg.Faults.maxRetries():
			r.res.ReadRetries++
			r.noteRetry(s, k)
			r.attemptRead(s, k, retriesUsed+1)
		default:
			r.dropSample(s, k)
		}
	case opXferRaised:
		r.xferRaised(int(a.I0))
	case opXferHandled:
		r.xferHandled(int(a.I0))
	case opXferDone:
		r.xferDone(int(a.I0))
	case opComputeDone:
		r.finishWindow(a.P0.(*appState), int(a.I0))
		r.governCPU()
	case opOffloadDone:
		st := a.P0.(*appState)
		w := int(a.I0)
		delete(st.offloadInFlight, w)
		r.startXfer(r.allocXfer(xfer{kind: xfResult, n: r.params.ResultBytes, st: st, w: w}))
	case opGovern:
		r.governCPU()
	case opMeterTick:
		r.meterTick()
	case opMeterFlushed:
		r.meterFlushed(int(a.I0), a.I1)
	case opPowerTick:
		r.powerTick()
	case opPowerStep:
		r.powerStep(int(a.I0))
	}
}

// xfer kinds: what the transfer's completion continues into.
const (
	xfSample = iota + 1 // per-sample pull: update consumers' delivery state
	xfBatch             // coalesced flush: stage upload bytes, maybe compute
	xfResult            // offload result notification: finish the window
)

// xfer is one in-flight Interrupt + Data Transfer chain. Instances live in
// the runner's slot pool; events reference them by index so the whole chain
// is allocation-free.
type xfer struct {
	kind      int
	n         int // payload bytes
	s         *stream
	st        *appState
	k, w      int
	fill      int
	final     bool
	delivered bool
}

// allocXfer stores x in a free pool slot (or grows the pool) and returns its
// index.
func (r *runner) allocXfer(x xfer) int {
	if n := len(r.xferFree); n > 0 {
		slot := int(r.xferFree[n-1])
		r.xferFree = r.xferFree[:n-1]
		r.xfers[slot] = x
		return slot
	}
	r.xfers = append(r.xfers, x)
	return len(r.xfers) - 1
}

// startXfer begins the shared Interrupt + Data Transfer chain for the slot:
// the MCU raises one interrupt, the CPU fields it, and the payload crosses
// the link. Every transfer plan — per-sample, coalesced flush, result
// notification — reduces to this chain with a different payload.
func (r *runner) startXfer(slot int) {
	err := r.mcu.ExecCall(r.params.MCU.IrqRaise, energy.Interrupt,
		sim.Done{CB: r, Arg: sim.Arg{Op: opXferRaised, I0: int64(slot)}})
	if err != nil {
		r.fail(err)
	}
}

// xferRaised accounts the interrupt and dispatches the CPU's handler.
func (r *runner) xferRaised(slot int) {
	x := &r.xfers[slot]
	r.res.Interrupts++
	r.obs.Inc(obs.InterruptsRaised)
	r.meterOnInterrupt()
	if x.kind == xfBatch {
		r.res.BatchFlushes++
		r.obs.Inc(obs.BatchFlushes)
	}
	err := r.cpu.ExecCall(r.params.CPUIrqHandle, energy.Interrupt,
		sim.Done{CB: r, Arg: sim.Arg{Op: opXferHandled, I0: int64(slot)}})
	if err != nil {
		r.fail(err)
	}
}

// xferHandled moves the payload over the link. Without DMA the CPU is busy
// for the whole transfer — wire time, retransmissions, timeouts, and backoff
// included (the baseline hardware of the paper); with DMA (§IV-F ablation)
// it only programs a descriptor and the wire signals completion.
func (r *runner) xferHandled(slot int) {
	x := &r.xfers[slot]
	d, delivered, err := r.linkSend(x.n)
	if err != nil {
		r.fail(err)
		return
	}
	x.delivered = delivered
	r.res.BytesTransferred += x.n
	if err := r.mcu.ExecCall(d, energy.DataTransfer, sim.Done{}); err != nil {
		r.fail(err)
		return
	}
	doneArg := sim.Arg{Op: opXferDone, I0: int64(slot)}
	if r.params.DMA {
		if err := r.cpu.ExecCall(r.params.DMASetup, energy.DataTransfer, sim.Done{}); err != nil {
			r.fail(err)
			return
		}
		if _, err := r.sched.AfterCall(d, r, doneArg); err != nil {
			r.fail(err)
		}
		return
	}
	if err := r.cpu.ExecCall(d, energy.DataTransfer, sim.Done{CB: r, Arg: doneArg}); err != nil {
		r.fail(err)
	}
}

// xferDone releases the slot and runs the transfer's continuation, then
// re-applies the CPU idle policy (exactly the old chain's finish order).
func (r *runner) xferDone(slot int) {
	x := r.xfers[slot]
	r.xfers[slot] = xfer{}
	r.xferFree = append(r.xferFree, int32(slot))
	switch x.kind {
	case xfSample:
		// An undelivered sample (link faults past the retry budget) shrinks
		// the window's expectation — the window completes with fewer samples,
		// exactly like a collection-stage drop.
		for _, l := range x.s.consumers {
			if l.st.policyFor(x.w).OnSampleReady() != scheme.Interrupt || !l.wants(x.k) {
				continue
			}
			if x.delivered {
				l.st.delivered[x.w]++
			} else {
				l.st.expected[x.w] = l.st.expectedFor(x.w) - 1
			}
			r.maybeComplete(l.st, x.w)
		}
	case xfBatch:
		// Uploaded-mode windows stage their delivered bytes for the edge
		// upload; a frame the link swallowed never reaches the batch the
		// radio will carry up.
		if x.delivered && x.st.uploadBytes != nil {
			x.st.uploadBytes[x.w] += x.fill
		}
		x.st.pendingFlushes[x.w]--
		if x.final && x.st.pendingFlushes[x.w] == 0 {
			// Re-resolve the placement: a window degraded Uploaded→Batched
			// computes locally, not on a tier the ladder just abandoned.
			r.placeCompute(x.st, x.w, x.st.policyFor(x.w))
		}
	case xfResult:
		// A result notification the link swallowed past the retry budget
		// leaves the window without an output — the loss is visible in
		// LinkAbortedTransfers and the missing Outputs entry.
		if x.delivered {
			r.finishWindow(x.st, x.w)
		}
	}
	r.governCPU()
}
