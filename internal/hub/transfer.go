package hub

// The Interrupt + Data Transfer entry points: every transfer plan a policy
// can choose — per-sample, coalesced batch flush, result-only notification —
// allocates an xfer pool slot and enters the shared chain in events.go. The
// wire-level fault handling (linkSend) lives in chaos.go.

import (
	"iothub/internal/obs"
)

// interruptAndTransfer is the per-sample path (SampleAction Interrupt): the
// MCU raises the interrupt, the CPU fields it and pulls the sample over the
// link. Delivery bookkeeping happens in the chain's continuation (xfSample).
func (r *runner) interruptAndTransfer(s *stream, k, w int) {
	r.startXfer(r.allocXfer(xfer{kind: xfSample, n: s.bytes, s: s, k: k, w: w}))
}

// batchSample appends a sample to the app's MCU-side batch, flushing early
// when the MCU RAM cannot hold more — or, under an armed resilience policy,
// already when RAM pressure crosses the escalation threshold. The final
// flush of a window is triggered by maybeComplete once all expected samples
// have been read.
func (r *runner) batchSample(st *appState, s *stream, w int, k int) {
	if r.pol != nil && r.pol.FlushAtRAMFrac > 0 && st.batchFill > 0 {
		if float64(r.mcu.RAMUsed()+s.bytes) > r.pol.FlushAtRAMFrac*float64(r.params.MCU.UsableRAM()) {
			r.res.EarlyFlushes++
			r.flushBatch(st, w, false)
		}
	}
	if err := r.mcu.Alloc(s.bytes); err != nil {
		// RAM pressure: flush what we have, then retry the allocation for
		// this sample against the freed space.
		r.flushBatch(st, w, false)
		if err := r.mcu.Alloc(s.bytes); err != nil {
			// The sample alone exceeds the free buffer (e.g. a camera frame
			// next to a large offloaded footprint): it cannot be batched at
			// all, so stream it through as its own immediate flush.
			st.batchFill += s.bytes
			r.flushBatch(st, w, false)
			return
		}
	}
	st.batchAllocd += s.bytes
	st.batchFill += s.bytes
	st.batchRefs = append(st.batchRefs, batchRef{s: s, k: k})
	// A buffered sample crosses in a later bulk transfer, raising no
	// interrupt of its own.
	r.obs.Inc(obs.InterruptsCoalesced)
}

// flushBatch raises one interrupt and bulk-transfers the app's batch — the
// coalesced transfer plan. The final flush of a window triggers the CPU-side
// computation — even when link faults swallowed a bulk frame past the retry
// budget: the window then computes on what arrived (the loss is visible in
// LinkAbortedTransfers). Completion bookkeeping lives in the chain's
// continuation (xfBatch).
func (r *runner) flushBatch(st *appState, w int, final bool) {
	fill := st.batchFill
	alloc := st.batchAllocd
	st.batchFill = 0
	st.batchAllocd = 0
	st.batchRefs = st.batchRefs[:0]
	if fill == 0 && !final {
		return
	}
	// The transfer engine drains the buffer as it transmits, so the RAM is
	// reusable for new samples as soon as the flush is initiated.
	if err := r.mcu.Free(alloc); err != nil {
		r.fail(err)
		return
	}
	st.pendingFlushes[w]++
	r.startXfer(r.allocXfer(xfer{kind: xfBatch, n: fill, st: st, w: w, fill: fill, final: final}))
}
