package hub

// The Interrupt + Data Transfer chains: every transfer plan a policy can
// choose — per-sample, coalesced batch flush, result-only notification —
// reduces to raiseAndTransfer with a different payload size. The wire-level
// fault handling (linkSend) lives in chaos.go.

import (
	"iothub/internal/energy"
	"iothub/internal/obs"
	"iothub/internal/scheme"
)

// transferToCPU moves n payload bytes over the link and calls done when the
// transfer finishes, reporting whether the payload was delivered (always
// true on the fault-free wire; injected corruption/loss may exhaust the
// retry policy). Without DMA the CPU is busy for the whole transfer — wire
// time, retransmissions, timeouts, and backoff included — (the baseline
// hardware of the paper); with DMA (§IV-F ablation) it only programs a
// descriptor and the wire signals completion.
func (r *runner) transferToCPU(n int, done func(delivered bool)) {
	d, delivered, err := r.linkSend(n)
	if err != nil {
		r.fail(err)
		return
	}
	r.res.BytesTransferred += n
	if err := r.mcu.Exec(d, energy.DataTransfer, nil); err != nil {
		r.fail(err)
		return
	}
	finish := func() {
		done(delivered)
		r.governCPU()
	}
	if r.params.DMA {
		if err := r.cpu.Exec(r.params.DMASetup, energy.DataTransfer, nil); err != nil {
			r.fail(err)
			return
		}
		if _, err := r.sched.After(d, finish); err != nil {
			r.fail(err)
		}
		return
	}
	if err := r.cpu.Exec(d, energy.DataTransfer, finish); err != nil {
		r.fail(err)
	}
}

// raiseAndTransfer is the shared Interrupt + Data Transfer chain: the raiser
// raises one interrupt, the handler fields it, and n payload bytes cross the
// link. extra (optional) runs inside the interrupt accounting, before the
// handler dispatch; done receives delivery status. Every transfer plan —
// per-sample, coalesced flush, result notification — reduces to this chain
// with different n.
func (r *runner) raiseAndTransfer(raiser, handler worker, n int, extra func(), done func(delivered bool)) {
	err := raiser.Exec(r.params.MCU.IrqRaise, energy.Interrupt, func() {
		r.res.Interrupts++
		r.obs.Inc(obs.InterruptsRaised)
		if extra != nil {
			extra()
		}
		err := handler.Exec(r.params.CPUIrqHandle, energy.Interrupt, func() {
			r.transferToCPU(n, done)
		})
		if err != nil {
			r.fail(err)
		}
	})
	if err != nil {
		r.fail(err)
	}
}

// interruptAndTransfer is the per-sample path (SampleAction Interrupt): the
// MCU raises the interrupt, the CPU fields it and pulls the sample over the
// link. An undelivered sample (link faults past the retry budget) shrinks
// the window's expectation — the window completes with fewer samples,
// exactly like a collection-stage drop.
func (r *runner) interruptAndTransfer(s *stream, k, w int) {
	r.raiseAndTransfer(r.mcu, r.cpu, s.bytes, nil, func(delivered bool) {
		for _, l := range s.consumers {
			if l.st.policyFor(w).OnSampleReady() != scheme.Interrupt || !l.wants(k) {
				continue
			}
			if delivered {
				l.st.delivered[w]++
			} else {
				l.st.expected[w] = l.st.expectedFor(w) - 1
			}
			r.maybeComplete(l.st, w)
		}
	})
}

// batchSample appends a sample to the app's MCU-side batch, flushing early
// when the MCU RAM cannot hold more — or, under an armed resilience policy,
// already when RAM pressure crosses the escalation threshold. The final
// flush of a window is triggered by maybeComplete once all expected samples
// have been read.
func (r *runner) batchSample(st *appState, s *stream, w int, k int) {
	if r.pol != nil && r.pol.FlushAtRAMFrac > 0 && st.batchFill > 0 {
		if float64(r.mcu.RAMUsed()+s.bytes) > r.pol.FlushAtRAMFrac*float64(r.params.MCU.UsableRAM()) {
			r.res.EarlyFlushes++
			r.flushBatch(st, w, false)
		}
	}
	if err := r.mcu.Alloc(s.bytes); err != nil {
		// RAM pressure: flush what we have, then retry the allocation for
		// this sample against the freed space.
		r.flushBatch(st, w, false)
		if err := r.mcu.Alloc(s.bytes); err != nil {
			// The sample alone exceeds the free buffer (e.g. a camera frame
			// next to a large offloaded footprint): it cannot be batched at
			// all, so stream it through as its own immediate flush.
			st.batchFill += s.bytes
			r.flushBatch(st, w, false)
			return
		}
	}
	st.batchAllocd += s.bytes
	st.batchFill += s.bytes
	st.batchRefs = append(st.batchRefs, batchRef{s: s, k: k})
	// A buffered sample crosses in a later bulk transfer, raising no
	// interrupt of its own.
	r.obs.Inc(obs.InterruptsCoalesced)
}

// flushBatch raises one interrupt and bulk-transfers the app's batch — the
// coalesced transfer plan. The final flush of a window triggers the CPU-side
// computation — even when link faults swallowed a bulk frame past the retry
// budget: the window then computes on what arrived (the loss is visible in
// LinkAbortedTransfers).
func (r *runner) flushBatch(st *appState, w int, final bool) {
	fill := st.batchFill
	alloc := st.batchAllocd
	st.batchFill = 0
	st.batchAllocd = 0
	st.batchRefs = nil
	if fill == 0 && !final {
		return
	}
	// The transfer engine drains the buffer as it transmits, so the RAM is
	// reusable for new samples as soon as the flush is initiated.
	if err := r.mcu.Free(alloc); err != nil {
		r.fail(err)
		return
	}
	st.pendingFlushes[w]++
	r.raiseAndTransfer(r.mcu, r.cpu, fill, func() {
		r.res.BatchFlushes++
		r.obs.Inc(obs.BatchFlushes)
	}, func(delivered bool) {
		// Uploaded-mode windows stage their delivered bytes for the edge
		// upload; a frame the link swallowed never reaches the batch the
		// radio will carry up.
		if delivered && st.uploadBytes != nil {
			st.uploadBytes[w] += fill
		}
		st.pendingFlushes[w]--
		if final && st.pendingFlushes[w] == 0 {
			// Re-resolve the placement: a window degraded Uploaded→Batched
			// computes locally, not on a tier the ladder just abandoned.
			r.placeCompute(st, w, st.policyFor(w))
		}
	})
}
