package hub

// Result finalization: aggregate the drained run into a RunResult, mirror
// component-kept totals into the observability recorder, and the idle-hub
// reference measurement.

import (
	"fmt"
	"time"

	"iothub/internal/apps"
	"iothub/internal/cpu"
	"iothub/internal/energy"
	"iothub/internal/mcu"
	"iothub/internal/obs"
	"iothub/internal/sim"
)

// collect finalizes the result after the event queue drains. The power
// ledger settles first so its final counters are visible to the recorder.
func (r *runner) collect() {
	r.collectPower()
	r.collectObs()
	r.res.Energy = r.meter.Total()
	for _, name := range r.meter.Components() {
		r.res.PerComponent[name] = r.meter.Track(name).Breakdown()
	}
	r.res.CPUBusy = r.cpu.BusyByRoutine()
	r.res.MCUBusy = r.mcu.BusyByRoutine()
	r.res.CPUWakes = r.cpu.Wakes()
	r.res.MCUCrashes = r.mcu.Crashes()
	r.res.RadioDeferred = r.mainRadio.Deferred() + r.mcuRadio.Deferred()
	r.res.RadioDroppedBursts = r.mainRadio.DroppedBursts() + r.mcuRadio.DroppedBursts()
	r.res.RadioDroppedBytes = r.mainRadio.DroppedBytes() + r.mcuRadio.DroppedBytes()
	r.res.Duration = r.sched.Now().Duration()
	r.res.Window = r.window
	for _, st := range r.states {
		r.res.Outputs[st.spec.ID] = st.results
	}
	if r.cfg.TracePower {
		r.res.Traces = map[string][]energy.Sample{
			"cpu": r.cpu.Track().TraceSamples(),
			"mcu": r.mcu.Track().TraceSamples(),
		}
	}
}

// collectObs copies component-kept running totals into the recorder — the
// event kernel's traffic, CPU residency and wakes, MCU high-water and
// crashes, fault-engine probe hits — and closes the run-level scheme span.
func (r *runner) collectObs() {
	if !r.obs.Enabled() {
		return
	}
	scheduled, cancelled := r.sched.Stats()
	r.obs.Store(obs.SimEventsScheduled, scheduled)
	r.obs.Store(obs.SimEventsCancelled, cancelled)
	stateCounter := map[cpu.State]obs.Counter{
		cpu.Active:    obs.CPUTicksActive,
		cpu.WFI:       obs.CPUTicksWFI,
		cpu.Sleep:     obs.CPUTicksSleep,
		cpu.DeepSleep: obs.CPUTicksDeepSleep,
		cpu.Waking:    obs.CPUTicksWaking,
	}
	for s, d := range r.cpu.Residency() {
		if c, ok := stateCounter[s]; ok {
			r.obs.Store(c, uint64(d))
		}
	}
	r.obs.Store(obs.CPUWakes, uint64(r.cpu.Wakes()))
	r.obs.SetMax(obs.MCUBufferHighWater, uint64(r.mcu.RAMHighWater()))
	r.obs.Store(obs.MCUCrashes, uint64(r.mcu.Crashes()))
	r.obs.Add(obs.FaultActivations, r.engine.Activations())
	if r.powerOn {
		r.obs.Store(obs.BatteryBrownouts, uint64(r.res.Brownouts))
		r.obs.Store(obs.BatteryBrownoutTimeNs, uint64(r.res.BrownoutTime))
		if r.battCapJ > 0 {
			r.obs.Store(obs.BatterySoCPermille, uint64(r.battSoCJ/r.battCapJ*1000))
		}
		r.obs.Store(obs.BatteryHarvestedMicroJ, uint64(r.battHarvestJ*1e6))
	}
	r.obs.Span("hub", r.cfg.Scheme.String(), 0, r.sched.Now())
}

// RunIdle measures the idle hub (Figure 1's reference): CPU suspended, MCU
// idle, no sensing, for the given duration.
func RunIdle(d time.Duration, params *Params) (*RunResult, error) {
	p := DefaultParams()
	if params != nil {
		p = *params
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	sched := sim.NewScheduler()
	meter := energy.NewMeter(sched)
	c, err := cpu.New(sched, meter, "cpu", p.CPU)
	if err != nil {
		return nil, err
	}
	if _, err := mcu.New(sched, meter, "mcu", p.MCU); err != nil {
		return nil, err
	}
	// An idle hub has nothing pending at all: the CPU power-gates into its
	// deepest state and the MCU idles (Fig. 1's reference point).
	if err := c.ForceState(cpu.DeepSleep, energy.Idle); err != nil {
		return nil, err
	}
	if err := sched.RunUntil(sim.Time(d)); err != nil {
		return nil, err
	}
	res := &RunResult{
		Energy:       meter.Total(),
		PerComponent: make(map[string]energy.Breakdown),
		Duration:     d,
		Outputs:      make(map[apps.ID][]WindowResult),
	}
	for _, name := range meter.Components() {
		res.PerComponent[name] = meter.Track(name).Breakdown()
	}
	return res, nil
}
