package hub

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"iothub/internal/apps"
	"iothub/internal/energy"
	"iothub/internal/faults"
	"iothub/internal/link"
	"iothub/internal/sensor"
)

// TestChaosZeroScheduleByteIdentical: attaching an empty fault schedule must
// not perturb a single bit of the result — the fault-free fast paths are the
// exact fault-free code.
func TestChaosZeroScheduleByteIdentical(t *testing.T) {
	for _, scheme := range []Scheme{Baseline, Batching, COM} {
		clean := mustRun(t, Config{Apps: newApps(t, apps.Heartbeat), Scheme: scheme, Windows: 2})
		armed := mustRun(t, Config{
			Apps: newApps(t, apps.Heartbeat), Scheme: scheme, Windows: 2,
			FaultSchedule: &faults.Schedule{Seed: 99},
		})
		if !reflect.DeepEqual(clean, armed) {
			t.Errorf("%v: empty schedule changed the run result", scheme)
		}
		if armed.WindowFaults != nil {
			t.Errorf("%v: fault-free run allocated WindowFaults", scheme)
		}
	}
}

// TestChaosDeterministicPerSeed: a full chaos mix replays bit-identically
// from the same seed.
func TestChaosDeterministicPerSeed(t *testing.T) {
	cfg := func() Config {
		return Config{
			Apps: newApps(t, apps.StepCounter), Scheme: Batching, Windows: 2,
			FaultSchedule: &faults.Schedule{Seed: 7, Rules: []faults.Rule{
				{Kind: faults.LinkCorrupt, Target: "link", Trigger: faults.Trigger{Prob: 0.05}},
				{Kind: faults.LinkLoss, Target: "link", Trigger: faults.Trigger{EveryNth: 50}},
				{Kind: faults.MCUCrash, Target: "mcu",
					Trigger:  faults.Trigger{At: []time.Duration{700 * time.Millisecond}},
					Duration: 80 * time.Millisecond},
				{Kind: faults.SensorSlow, Trigger: faults.Trigger{EveryNth: 100}, Factor: 3},
				{Kind: faults.SensorStuck, Trigger: faults.Trigger{EveryNth: 97}},
				{Kind: faults.RadioOutage, Target: "radio:main",
					Trigger:  faults.Trigger{At: []time.Duration{900 * time.Millisecond}},
					Duration: 300 * time.Millisecond},
			}},
		}
	}
	a, b := mustRun(t, cfg()), mustRun(t, cfg())
	if !reflect.DeepEqual(a, b) {
		t.Error("identical seeds produced different chaos runs")
	}
	if a.MCUCrashes != 1 {
		t.Errorf("crashes = %d, want 1", a.MCUCrashes)
	}
	if a.LinkRetransmits == 0 || a.SlowReads == 0 || a.StuckSamples == 0 {
		t.Errorf("fault mix underfired: retx=%d slow=%d stuck=%d",
			a.LinkRetransmits, a.SlowReads, a.StuckSamples)
	}
	if a.RecollectedSamples == 0 {
		t.Error("mid-window crash recollected nothing")
	}
}

// TestChaosLinkRetriesCostEnergy: every retransmission occupies the wire and
// shows up as extra transfer energy — corrupted frames do not travel free.
func TestChaosLinkRetriesCostEnergy(t *testing.T) {
	clean := mustRun(t, Config{
		Apps: newApps(t, apps.StepCounter), Scheme: Baseline, Windows: 1, SkipAppCompute: true,
	})
	faulty := mustRun(t, Config{
		Apps: newApps(t, apps.StepCounter), Scheme: Baseline, Windows: 1, SkipAppCompute: true,
		FaultSchedule: &faults.Schedule{Seed: 1, Rules: []faults.Rule{
			{Kind: faults.LinkCorrupt, Target: "link", Trigger: faults.Trigger{EveryNth: 4}},
		}},
	})
	if faulty.LinkRetransmits == 0 || faulty.LinkCorruptFrames != faulty.LinkRetransmits {
		t.Errorf("retx = %d, corrupt = %d; want equal and positive",
			faulty.LinkRetransmits, faulty.LinkCorruptFrames)
	}
	if faulty.LinkAbortedTransfers != 0 {
		t.Errorf("aborted = %d; a single retry always recovers an every-4th fault",
			faulty.LinkAbortedTransfers)
	}
	if faulty.Energy[energy.DataTransfer] <= clean.Energy[energy.DataTransfer] {
		t.Errorf("transfer energy %.4f J with retransmissions not above clean %.4f J",
			faulty.Energy[energy.DataTransfer], clean.Energy[energy.DataTransfer])
	}
	if got := len(faulty.Outputs[apps.StepCounter]); got != 1 {
		t.Errorf("outputs = %d, want 1", got)
	}
}

// TestChaosLinkLossAbortsPastRetryBudget: a wire that swallows every frame
// exhausts the retry budget; windows complete on the samples that never
// arrived (expectation shrinks, exactly like collection-stage drops).
func TestChaosLinkLossAbortsPastRetryBudget(t *testing.T) {
	res := mustRun(t, Config{
		Apps: newApps(t, apps.StepCounter), Scheme: Baseline, Windows: 1, SkipAppCompute: true,
		FaultSchedule: &faults.Schedule{Seed: 1, Rules: []faults.Rule{
			{Kind: faults.LinkLoss, Target: "link", Trigger: faults.Trigger{EveryNth: 1}},
		}},
		Resilience: &ResiliencePolicy{
			LinkRetry: link.RetryPolicy{MaxRetries: 1, Backoff: 100 * time.Microsecond, Factor: 2},
		},
	})
	if res.LinkAbortedTransfers != 1000 {
		t.Errorf("aborted transfers = %d, want 1000 (every sample)", res.LinkAbortedTransfers)
	}
	if res.LinkLostFrames != 2000 {
		t.Errorf("lost frames = %d, want 2000 (first try + one retry each)", res.LinkLostFrames)
	}
	if got := len(res.Outputs[apps.StepCounter]); got != 1 {
		t.Errorf("outputs = %d, want 1 (window completes despite total loss)", got)
	}
}

// TestChaosMCUCrashRecollectsBatch: a reboot wipes the in-RAM batch; the hub
// rewinds the owning window's progress and re-collects, and the per-window
// accounting records where the damage landed.
func TestChaosMCUCrashRecollectsBatch(t *testing.T) {
	clean := mustRun(t, Config{
		Apps: newApps(t, apps.StepCounter), Scheme: Batching, Windows: 2, SkipAppCompute: true,
	})
	res := mustRun(t, Config{
		Apps: newApps(t, apps.StepCounter), Scheme: Batching, Windows: 2, SkipAppCompute: true,
		FaultSchedule: &faults.Schedule{Seed: 1, Rules: []faults.Rule{
			{Kind: faults.MCUCrash, Target: "mcu",
				Trigger:  faults.Trigger{At: []time.Duration{500 * time.Millisecond}},
				Duration: 50 * time.Millisecond},
		}},
	})
	if res.MCUCrashes != 1 {
		t.Fatalf("crashes = %d, want 1", res.MCUCrashes)
	}
	if res.RecollectedSamples < 100 || res.RecollectedSamples > 1000 {
		t.Errorf("recollected = %d, want a mid-window batch worth", res.RecollectedSamples)
	}
	wf := res.WindowFaults[0]
	if wf == nil || wf.Crashes != 1 || wf.Recollected != res.RecollectedSamples {
		t.Errorf("window 0 fault record = %+v, want the crash and its re-collection", wf)
	}
	if got := len(res.Outputs[apps.StepCounter]); got != 2 {
		t.Errorf("outputs = %d, want 2", got)
	}
	// Re-collection re-runs sensor reads: collection energy must rise.
	if res.Energy[energy.DataCollection] <= clean.Energy[energy.DataCollection] {
		t.Error("re-collection after the crash cost no collection energy")
	}
}

// TestChaosWatchdogDegradesScheme: a crash long enough for the watchdog to
// observe walks every app one rung down the ladder (COM -> Batching) starting
// at the next window; in-flight windows keep their mode.
func TestChaosWatchdogDegradesScheme(t *testing.T) {
	res := mustRun(t, Config{
		Apps: newApps(t, apps.Heartbeat), Scheme: COM, Windows: 4,
		FaultSchedule: &faults.Schedule{Seed: 1, Rules: []faults.Rule{
			{Kind: faults.MCUCrash, Target: "mcu",
				Trigger:  faults.Trigger{At: []time.Duration{1100 * time.Millisecond}},
				Duration: 150 * time.Millisecond},
		}},
	})
	if len(res.Degradations) != 1 {
		t.Fatalf("degradations = %+v, want exactly one", res.Degradations)
	}
	d := res.Degradations[0]
	if d.App != apps.Heartbeat || d.From != Offloaded || d.To != Batched {
		t.Errorf("degradation = %+v, want Offloaded -> Batched", d)
	}
	if d.Window != 2 {
		t.Errorf("degradation from window %d, want 2 (crash lands in window 1)", d.Window)
	}
	if !strings.Contains(d.Reason, "watchdog") {
		t.Errorf("reason = %q, want the watchdog", d.Reason)
	}
	if res.WindowFaults[2].Degradations != 1 {
		t.Errorf("window 2 degradation count = %d", res.WindowFaults[2].Degradations)
	}
	if got := len(res.Outputs[apps.Heartbeat]); got != 4 {
		t.Errorf("outputs = %d, want 4 (all windows complete across the ladder step)", got)
	}
}

// TestChaosEdgeDegradesToLocal: the ladder's Uploaded rung falls back to
// local batching — after the watchdog observes a crash, later windows
// compute on the hub CPU, not on a tier the run just abandoned, and every
// window still produces an output.
func TestChaosEdgeDegradesToLocal(t *testing.T) {
	res := mustRun(t, Config{
		Apps: newApps(t, apps.SpeechToTxt), Scheme: ECOM, Windows: 4, SkipAppCompute: true,
		FaultSchedule: &faults.Schedule{Seed: 1, Rules: []faults.Rule{
			{Kind: faults.MCUCrash, Target: "mcu",
				Trigger:  faults.Trigger{At: []time.Duration{1100 * time.Millisecond}},
				Duration: 150 * time.Millisecond},
		}},
	})
	if len(res.Degradations) != 1 {
		t.Fatalf("degradations = %+v, want exactly one", res.Degradations)
	}
	d := res.Degradations[0]
	if d.App != apps.SpeechToTxt || d.From != Uploaded || d.To != Batched {
		t.Errorf("degradation = %+v, want Uploaded -> Batched", d)
	}
	if got := len(res.Outputs[apps.SpeechToTxt]); got != 4 {
		t.Errorf("outputs = %d, want 4 (degraded windows compute locally)", got)
	}
	// Only the pre-degradation windows reached the edge.
	if res.EdgeUploads >= 4 || res.EdgeUploads < 1 {
		t.Errorf("edge uploads = %d, want some but not all 4 windows", res.EdgeUploads)
	}
	if res.EdgeColdStarts != 1 {
		t.Errorf("cold starts = %d, want 1", res.EdgeColdStarts)
	}
}

// TestChaosOffloadRebootReentersBudgetCheck: an offloaded window whose
// computation an MCU reboot restarts must pass the planner's time-budget
// check again — and a long enough outage turns the re-check into a miss and
// a QoS violation.
func TestChaosOffloadRebootReentersBudgetCheck(t *testing.T) {
	noDegrade := func() *ResiliencePolicy {
		return &ResiliencePolicy{
			LinkRetry:      link.RetryPolicy{MaxRetries: 3, Backoff: 500 * time.Microsecond, Factor: 2},
			DegradeOnCrash: false,
		}
	}
	crashFor := func(d time.Duration) *faults.Schedule {
		return &faults.Schedule{Seed: 1, Rules: []faults.Rule{
			{Kind: faults.MCUCrash, Target: "mcu",
				Trigger:  faults.Trigger{At: []time.Duration{1100 * time.Millisecond}},
				Duration: d},
		}}
	}

	// Short reboot: window 0's computation (in flight at 1.1s) restarts and
	// re-enters the check; the deadline still holds.
	res := mustRun(t, Config{
		Apps: newApps(t, apps.Heartbeat), Scheme: COM, Windows: 2,
		FaultSchedule: crashFor(50 * time.Millisecond), Resilience: noDegrade(),
	})
	if res.OffloadBudgetChecks != 3 {
		t.Errorf("budget checks = %d, want 3 (two dispatches + one post-reboot re-check)",
			res.OffloadBudgetChecks)
	}
	if res.OffloadBudgetMisses != 0 || res.QoSViolations != 0 {
		t.Errorf("misses = %d, QoS violations = %d; a 50 ms reboot fits the deadline",
			res.OffloadBudgetMisses, res.QoSViolations)
	}
	if got := len(res.Outputs[apps.Heartbeat]); got != 2 {
		t.Errorf("outputs = %d, want 2 (computation survives the reboot)", got)
	}

	// A reboot outlasting the deadline: the re-check flags the miss and the
	// late window lands as a QoS violation.
	late := mustRun(t, Config{
		Apps: newApps(t, apps.Heartbeat), Scheme: COM, Windows: 2,
		FaultSchedule: crashFor(2500 * time.Millisecond), Resilience: noDegrade(),
	})
	if late.OffloadBudgetMisses == 0 {
		t.Error("2.5 s reboot: budget re-check flagged no miss")
	}
	if late.QoSViolations == 0 {
		t.Error("2.5 s reboot: no QoS violation recorded")
	}
	if got := len(late.Outputs[apps.Heartbeat]); got != 2 {
		t.Errorf("outputs = %d, want 2 (late, but delivered)", got)
	}
}

// TestChaosOffloadRebootBudgetCheckBCOM: the budget re-check also covers the
// mixed BCOM partition — only the offloaded app's in-flight window re-enters
// it (the crash at 1.02 s lands inside dropboxmgr's window-0 computation).
func TestChaosOffloadRebootBudgetCheckBCOM(t *testing.T) {
	res := mustRun(t, Config{
		Apps:   newApps(t, apps.SpeechToTxt, apps.DropboxMgr),
		Scheme: BCOM,
		Assign: map[apps.ID]Mode{
			apps.SpeechToTxt: Batched,
			apps.DropboxMgr:  Offloaded,
		},
		Windows: 2,
		FaultSchedule: &faults.Schedule{Seed: 1, Rules: []faults.Rule{
			{Kind: faults.MCUCrash, Target: "mcu",
				Trigger:  faults.Trigger{At: []time.Duration{1020 * time.Millisecond}},
				Duration: 50 * time.Millisecond},
		}},
		Resilience: &ResiliencePolicy{DegradeOnCrash: false},
	})
	if res.MCUCrashes != 1 {
		t.Fatalf("crashes = %d, want 1", res.MCUCrashes)
	}
	if res.OffloadBudgetChecks != 3 {
		t.Errorf("budget checks = %d, want 3 (dropboxmgr: two dispatches + re-check)",
			res.OffloadBudgetChecks)
	}
	for _, id := range []apps.ID{apps.SpeechToTxt, apps.DropboxMgr} {
		if got := len(res.Outputs[id]); got != 2 {
			t.Errorf("%s outputs = %d, want 2", id, got)
		}
	}
}

// TestChaosRadioOutageDefersAndDrops: bursts submitted during an uplink
// outage wait in the driver queue; a bounded queue drops the overflow and
// accounts every byte.
func TestChaosRadioOutageDefersAndDrops(t *testing.T) {
	outage := &faults.Schedule{Seed: 1, Rules: []faults.Rule{
		{Kind: faults.RadioOutage, Target: "radio:main",
			Trigger:  faults.Trigger{At: []time.Duration{900 * time.Millisecond}},
			Duration: 1500 * time.Millisecond},
	}}
	deferred := mustRun(t, Config{
		Apps: newApps(t, apps.ArduinoJSON), Scheme: Baseline, Windows: 2,
		FaultSchedule: outage,
	})
	if deferred.UpstreamBytes == 0 {
		t.Fatal("no upstream traffic to disturb")
	}
	if deferred.RadioDeferred != 2 {
		t.Errorf("deferred bursts = %d, want 2 (both window uplinks inside the outage)",
			deferred.RadioDeferred)
	}
	if deferred.RadioDroppedBursts != 0 {
		t.Errorf("dropped = %d with the default 4 KB buffer", deferred.RadioDroppedBursts)
	}

	dropped := mustRun(t, Config{
		Apps: newApps(t, apps.ArduinoJSON), Scheme: Baseline, Windows: 2,
		FaultSchedule: outage,
		Resilience:    &ResiliencePolicy{RadioBufferBytes: 100},
	})
	if dropped.RadioDroppedBursts != 2 {
		t.Errorf("dropped bursts = %d, want 2 (100 B queue holds neither document)",
			dropped.RadioDroppedBursts)
	}
	if dropped.RadioDroppedBytes != dropped.UpstreamBytes {
		t.Errorf("dropped %d of %d upstream bytes, want all of them",
			dropped.RadioDroppedBytes, dropped.UpstreamBytes)
	}
}

// TestChaosRetryBudgetDownshiftsRate: blowing the per-window retry budget
// halves the stream's remaining rate for that window, trading samples for
// the deadline; the sample ledger still balances (checked by Run itself).
func TestChaosRetryBudgetDownshiftsRate(t *testing.T) {
	res := mustRun(t, Config{
		Apps: newApps(t, apps.StepCounter), Scheme: Baseline, Windows: 2, SkipAppCompute: true,
		Faults: &FaultPlan{ReadFailEvery: map[sensor.ID]int{sensor.Accelerometer: 5}},
		Resilience: &ResiliencePolicy{
			LinkRetry:            link.RetryPolicy{MaxRetries: 3, Backoff: 500 * time.Microsecond, Factor: 2},
			RetryBudgetPerWindow: 10,
		},
	})
	if res.RateDownshifts != 2 {
		t.Errorf("downshifts = %d, want 2 (one per window)", res.RateDownshifts)
	}
	if res.DownshiftSkipped < 100 {
		t.Errorf("skipped = %d, want a few hundred (every other remaining sample)",
			res.DownshiftSkipped)
	}
	if got := len(res.Outputs[apps.StepCounter]); got != 2 {
		t.Errorf("outputs = %d, want 2", got)
	}
}

// TestChaosNoRetriesSentinel: FaultPlan.MaxRetries 0 means "use the default
// single retry"; the explicit NoRetries sentinel is how a plan disables
// retries entirely.
func TestChaosNoRetriesSentinel(t *testing.T) {
	none := mustRun(t, Config{
		Apps: newApps(t, apps.StepCounter), Scheme: Baseline, Windows: 1, SkipAppCompute: true,
		Faults: &FaultPlan{
			ReadFailEvery: map[sensor.ID]int{sensor.Accelerometer: 1},
			MaxRetries:    NoRetries,
		},
	})
	if none.ReadRetries != 0 {
		t.Errorf("retries = %d with NoRetries, want 0", none.ReadRetries)
	}
	if none.DroppedSamples != 1000 {
		t.Errorf("dropped = %d, want 1000 (every read fails, none retried)", none.DroppedSamples)
	}

	def := mustRun(t, Config{
		Apps: newApps(t, apps.StepCounter), Scheme: Baseline, Windows: 1, SkipAppCompute: true,
		Faults: &FaultPlan{
			ReadFailEvery: map[sensor.ID]int{sensor.Accelerometer: 1},
			MaxRetries:    0, // zero value still means one retry
		},
	})
	if def.ReadRetries != 1000 {
		t.Errorf("retries = %d with the zero value, want 1000 (one per sample)", def.ReadRetries)
	}
}

// TestChaosBEAMSharedRetryCostOnce: under BEAM two apps share one physical
// accelerometer stream; a failed read's retry must charge the re-read work
// once, not once per subscriber. The MCU's per-read formatting time is the
// exact per-attempt cost (sensor-track wattage overlaps between back-to-back
// reads, so busy time is the unambiguous ledger).
func TestChaosBEAMSharedRetryCostOnce(t *testing.T) {
	collectBusy := func(res *RunResult) time.Duration {
		return res.MCUBusy[energy.DataCollection]
	}
	plan := func() *FaultPlan {
		return &FaultPlan{ReadFailEvery: map[sensor.ID]int{sensor.Accelerometer: 10}}
	}
	pair := func() []apps.App { return newApps(t, apps.StepCounter, apps.Earthquake) }

	soloClean := mustRun(t, Config{
		Apps: newApps(t, apps.StepCounter), Scheme: Baseline, Windows: 2, SkipAppCompute: true,
	})
	soloFaulty := mustRun(t, Config{
		Apps: newApps(t, apps.StepCounter), Scheme: Baseline, Windows: 2, SkipAppCompute: true,
		Faults: plan(),
	})
	beamClean := mustRun(t, Config{
		Apps: pair(), Scheme: BEAM, Windows: 2, SkipAppCompute: true,
	})
	beamFaulty := mustRun(t, Config{
		Apps: pair(), Scheme: BEAM, Windows: 2, SkipAppCompute: true, Faults: plan(),
	})

	// The shared stream sees the same attempt sequence as the solo one, so
	// the retry count matches — it is per physical read, not per subscriber.
	if beamFaulty.ReadRetries == 0 || beamFaulty.ReadRetries != soloFaulty.ReadRetries {
		t.Errorf("BEAM retries = %d, solo retries = %d; want equal and positive",
			beamFaulty.ReadRetries, soloFaulty.ReadRetries)
	}
	soloCost := collectBusy(soloFaulty) - collectBusy(soloClean)
	beamCost := collectBusy(beamFaulty) - collectBusy(beamClean)
	if soloCost <= 0 {
		t.Fatalf("solo retry cost = %v, want positive", soloCost)
	}
	if beamCost != soloCost {
		t.Errorf("shared-stream retry cost %v != solo cost %v (charged per subscriber?)",
			beamCost, soloCost)
	}
}
