package hub

import (
	"fmt"
	"strconv"
	"strings"

	"iothub/internal/apps"
	"iothub/internal/apps/catalog"
	"iothub/internal/faults"
	"iothub/internal/obs"
	"iothub/internal/power"
	"iothub/internal/scheme"
)

// Scenario is a self-contained, serializable description of one hub run: the
// value type fleet sweeps are made of. Unlike Config it holds no live App
// instances — apps are named by Table II ID and instantiated from Seed at
// run time, so the same Scenario value re-runs bit-for-bit anywhere (in a
// fleet worker, from a journal, or standalone via RunScenario).
type Scenario struct {
	// Apps lists the concurrent workloads by Table II ID ("A2", "A11", ...).
	Apps []apps.ID `json:"apps"`
	// Scheme is the execution scheme. BCOM scenarios need the planner and
	// are executed by fleet.RunScenario (hub cannot depend on the planner).
	Scheme Scheme `json:"scheme"`
	// Windows is the number of QoS windows to simulate.
	Windows int `json:"windows"`
	// Seed drives the apps' synthetic signals (and, via the fleet engine, is
	// derived deterministically from the fleet seed and scenario index).
	Seed int64 `json:"seed"`
	// QoSMult scales every sensor's sampling rate (0 or 1 = paper defaults);
	// see apps.ScaleRates for the clamping rules.
	QoSMult float64 `json:"qos,omitempty"`
	// Faults is a fault schedule in faults.ParseSchedule's compact text form
	// ("" = fault-free run).
	Faults string `json:"faults,omitempty"`
	// Assign is an explicit per-app mode partition for schemes that require
	// one. A Hybrid scenario carries the optimizer-searched composition here;
	// a BCOM scenario usually leaves it nil and lets fleet.RunScenario supply
	// the planner's partition. Serialized by mode name, keys sorted, so
	// scenario JSON stays canonical.
	Assign map[apps.ID]Mode `json:"assign,omitempty"`
	// SkipAppCompute skips the real user-level computations (energy/timing
	// are still modeled) — the usual setting for pure-energy sweeps.
	SkipAppCompute bool `json:"skipCompute,omitempty"`
	// Meter arms an in-situ measurement instrument for the run (DESIGN.md
	// §13); nil is the free external meter, today's asymptote. Serialized so
	// fleet sweeps and the optimizer can sweep sampling rates.
	Meter *obs.MeterModel `json:"meter,omitempty"`
	// Power arms a finite battery + deterministic harvest supply for the run
	// (DESIGN.md §14); nil is mains power, today's asymptote. Serialized so
	// fleet sweeps can grid over supply scenarios.
	Power *power.Supply `json:"power,omitempty"`
	// Tag optionally overrides the scenario's aggregation label; empty means
	// the fleet aggregates this run under its scheme name.
	Tag string `json:"tag,omitempty"`
}

// Label is the scenario's human-readable identity in fleet progress and
// error reports: "A11+A6/BCOM/w3/q0.5" (+ "/chaos" when faults are injected).
func (s Scenario) Label() string {
	var b strings.Builder
	for i, id := range s.Apps {
		if i > 0 {
			b.WriteByte('+')
		}
		b.WriteString(string(id))
	}
	fmt.Fprintf(&b, "/%v/w%d", s.Scheme, s.Windows)
	if s.QoSMult != 0 && s.QoSMult != 1 {
		b.WriteString("/q")
		b.WriteString(strconv.FormatFloat(s.QoSMult, 'g', -1, 64))
	}
	if s.Faults != "" {
		b.WriteString("/chaos")
	}
	if s.Meter != nil && s.Meter.Armed() {
		b.WriteString("/m")
		b.WriteString(strconv.FormatFloat(s.Meter.RateHz, 'g', -1, 64))
	}
	if s.Power != nil && s.Power.Armed() {
		b.WriteString("/b")
		b.WriteString(strconv.FormatFloat(s.Power.Battery.CapacityMAh, 'g', -1, 64))
	}
	return b.String()
}

// Config materializes the scenario: apps are instantiated from the catalog
// with the scenario seed, rates are scaled, and the fault schedule is
// compiled. BCOM scenarios come back with a nil Assign — the caller supplies
// the planner's partition (fleet.RunScenario does).
func (s Scenario) Config() (Config, error) {
	if len(s.Apps) == 0 {
		return Config{}, fmt.Errorf("%w: scenario lists no apps", ErrConfig)
	}
	cfg := Config{
		Scheme:         s.Scheme,
		Windows:        s.Windows,
		Assign:         s.Assign,
		SkipAppCompute: s.SkipAppCompute,
		Meter:          s.Meter,
		Power:          s.Power,
	}
	for _, id := range s.Apps {
		a, err := catalog.New(id, s.Seed)
		if err != nil {
			return Config{}, fmt.Errorf("%w: %v", ErrConfig, err)
		}
		if s.QoSMult != 0 && s.QoSMult != 1 {
			if a, err = apps.ScaleRates(a, s.QoSMult); err != nil {
				return Config{}, fmt.Errorf("%w: %v", ErrConfig, err)
			}
		}
		cfg.Apps = append(cfg.Apps, a)
	}
	if s.Faults != "" {
		schedule, err := faults.ParseSchedule(s.Faults)
		if err != nil {
			return Config{}, fmt.Errorf("%w: %v", ErrConfig, err)
		}
		cfg.FaultSchedule = schedule
	}
	return cfg, nil
}

// RunScenario materializes and executes the scenario. Schemes that require
// an explicit partition (BCOM, Hybrid) must carry one in Assign to run here;
// without it they need the internal/core planner, which sits above this
// package — use fleet.RunScenario for those.
func RunScenario(s Scenario) (*RunResult, error) {
	cfg, err := s.Config()
	if err != nil {
		return nil, err
	}
	def, err := scheme.Lookup(s.Scheme)
	if err != nil {
		return nil, err
	}
	if def.RequiresAssign() && s.Assign == nil {
		return nil, fmt.Errorf("%w: %v scenario %s needs an assignment (use fleet.RunScenario, or set Assign)", ErrConfig, s.Scheme, s.Label())
	}
	return Run(cfg)
}
