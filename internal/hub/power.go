package hub

// The supply-side power ledger runtime: the hub-side execution of
// power.Supply (DESIGN.md §14). Where the meter (demand side) only records
// what the components draw, the ledger closes the loop: a finite battery is
// drawn down by the meter's demand, credited by a deterministic harvest
// trace, and its state of charge feeds back into execution — one scheme
// ladder step when the charge crosses the low-SoC threshold, and a physics
// brownout (the MCU power-gates with no scheduled recovery) when it reaches
// zero. Recharge — if the harvest can outpace the surviving draw — reboots
// the board and re-collects what the outage destroyed, composing with the
// chaos layer's crash machinery through the same mcu seam.
//
// Settlement runs as scheduled DES events: a periodic opPowerTick at the
// supply's ledger rate, plus one opPowerStep per harvest trace level change
// (the trace is compiled once and cached across arena reuses). Battery
// self-discharge is modeled as a real draw on a dedicated "battery" energy
// track, so leakage flows through the meter's conservation ledger and stays
// separable in PerComponent.
//
// A disarmed supply (no battery) arms nothing: no events, no track, no
// counters. Mains power therefore recovers the unobserved run byte for byte,
// which TestBatteryAsymptoteGolden pins against the committed golden corpus.

import (
	"fmt"
	"time"

	"iothub/internal/energy"
	"iothub/internal/obs"
	"iothub/internal/power"
	"iothub/internal/sim"
)

// battRedo identifies one batch-resident sample a brownout wiped. Unlike the
// chaos layer's crash path, the rewind/re-collection accounting is deferred
// to restore time: a terminal brownout (the harvest never lifts the charge
// back) must leave the sample ledger balanced, so nothing is rewound until
// the board actually comes back to redo the work.
type battRedo struct {
	st *appState
	s  *stream
	k  int
}

// armPower brings up the supply ledger. Called after armMeter (the "battery"
// track must register at a fixed pipeline point, fresh arena or reused) and
// after armFaults (it reads the run horizon and the resilience policy's SoC
// thresholds).
func (r *runner) armPower() error {
	s := &r.params.Power
	r.powerOn = s.Armed()
	if !r.powerOn {
		return nil
	}
	capJ, err := s.Battery.UsableJoules()
	if err != nil {
		return fmt.Errorf("%w: %v", ErrConfig, err)
	}
	r.battCapJ = capJ
	soc := capJ
	if s.Battery.InitialSoC > 0 {
		soc = capJ * s.Battery.InitialSoC
	}
	r.battSoCJ = soc
	r.battMinJ = soc
	r.battPrevSoC = soc
	// A battery-armed, fault-free run still needs SoC thresholds; the
	// power-only default policy keeps every fault-side knob inert.
	if r.pol == nil {
		r.pol = defaultPowerResilience()
	}
	r.battDegradeJ = r.pol.SoCDegradeFrac * capJ
	r.battRecoverJ = r.pol.SoCRecoverFrac * capJ
	r.battPeriod = s.LedgerPeriod()
	r.battTrack = r.meter.Track("battery")
	if s.Battery.LeakageW > 0 {
		r.battTrack.Set(s.Battery.LeakageW, energy.Idle)
	}
	// Compile the harvest trace, cached across arena reuses keyed on the
	// spec text and horizon so steady-state sweeps never re-parse.
	if s.Harvest != r.battTraceSrc || r.horizon != r.battTraceHzn {
		r.battSteps = r.battSteps[:0]
		if s.Harvest != "" {
			tr, err := power.ParseTrace(s.Harvest)
			if err != nil {
				return fmt.Errorf("%w: %v", ErrConfig, err)
			}
			r.battSteps = tr.AppendSteps(r.battSteps, r.horizon)
		}
		r.battTraceSrc = s.Harvest
		r.battTraceHzn = r.horizon
	}
	for i, stp := range r.battSteps {
		if stp.At == 0 {
			r.battHarvestW = stp.Watts
			continue
		}
		if _, err := r.sched.AtCall(sim.Time(stp.At), r, sim.Arg{Op: opPowerStep, I0: int64(i)}); err != nil {
			return err
		}
	}
	_, err = r.sched.AtCall(sim.Time(r.battPeriod), r, sim.Arg{Op: opPowerTick})
	return err
}

// powerSettle brings the ledger up to now: the interval's metered demand is
// drawn from the charge, the harvest level's income is credited (clipped at
// capacity — a full battery sheds the surplus), and the charge clamps at
// zero (the deficit inside one settlement interval is the discretization the
// ledger rate bounds).
func (r *runner) powerSettle(now sim.Time) {
	dt := (now - r.battLastAt).Duration().Seconds()
	r.battLastAt = now
	demand := r.meter.TotalJoules()
	drawn := demand - r.battDemandJ
	r.battDemandJ = demand
	soc := r.battSoCJ - drawn
	if income := r.battHarvestW * dt; income > 0 {
		credited := income
		if soc+credited > r.battCapJ {
			credited = r.battCapJ - soc
			if credited < 0 {
				credited = 0
			}
		}
		r.battHarvestJ += credited
		soc += credited
	}
	if soc < 0 {
		soc = 0
	}
	r.battSoCJ = soc
	if soc < r.battMinJ {
		r.battMinJ = soc
	}
}

// powerCheck applies the SoC feedback after a settle: one scheme ladder step
// the first time the charge crosses the degrade threshold, a brownout at
// zero, and — while browned out — the reboot once the harvest lifts the
// charge past the recovery threshold.
func (r *runner) powerCheck(now sim.Time) {
	if !r.battBrownout {
		if !r.battDegraded && r.battDegradeJ > 0 && r.battSoCJ <= r.battDegradeJ {
			r.battDegraded = true
			r.degradeAll("soc low")
		}
		if r.battSoCJ <= 0 {
			r.onBrownout(now)
		}
		return
	}
	if r.battSoCJ > r.battRecoverJ {
		r.onRecharge(now)
	}
}

// powerTick is one periodic settlement instant. Inside the run horizon the
// tick always re-arms; past it, it keeps ticking only while a brownout is
// open and the charge actually climbed over the last interval — the harvest
// trace is constant past the horizon, so a flat or falling charge there is a
// terminal brownout and the board stays down.
func (r *runner) powerTick() {
	now := r.sched.Now()
	r.powerSettle(now)
	r.powerCheck(now)
	next := now.Add(r.battPeriod)
	if next <= sim.Time(r.horizon) || (r.battBrownout && r.battSoCJ > r.battPrevSoC) {
		if _, err := r.sched.AtCall(next, r, sim.Arg{Op: opPowerTick}); err != nil {
			r.fail(err)
			return
		}
	}
	r.battPrevSoC = r.battSoCJ
}

// powerStep switches the harvest income to the trace's next level, settling
// the outgoing level's interval first so each level is credited exactly over
// its own span.
func (r *runner) powerStep(i int) {
	now := r.sched.Now()
	r.powerSettle(now)
	r.battHarvestW = r.battSteps[i].Watts
	r.powerCheck(now)
}

// onBrownout power-gates the board at SoC zero. Batch-resident samples are
// stashed (their RAM evaporates with the gate) but NOT yet rewound or
// counted re-collected — that accounting belongs to the restore, which may
// never come. The in-situ meter's buffer lives in the same RAM and drops in
// one burst, exactly as under a crash.
func (r *runner) onBrownout(now sim.Time) {
	r.battBrownout = true
	r.battBrownoutAt = now
	r.res.Brownouts++
	if r.res.Brownouts == 1 {
		r.res.BatterySurvival = now.Duration()
	}
	r.obs.Inc(obs.BatteryBrownouts)
	if r.obs.Enabled() {
		r.obs.Note("brownout", fmt.Sprintf("SoC zero in window %d", r.windowAt(now)))
	}
	for _, st := range r.states {
		for _, ref := range st.batchRefs {
			r.battRedo = append(r.battRedo, battRedo{st: st, s: ref.s, k: ref.k})
		}
		st.batchRefs = st.batchRefs[:0]
		st.batchFill = 0
		st.batchAllocd = 0
	}
	r.meterOnCrash()
	if err := r.mcu.PowerGate(); err != nil {
		r.fail(err)
	}
}

// onRecharge ends the brownout interval and reboots the board through the
// same seam a crash uses — an alive callback absorbed from an overlapping
// injected crash runs first, so the board reboots exactly once. The reboot
// itself draws RebootW: if the harvest cannot carry that, the ledger gates
// the board again mid-reboot and the cycle repeats at the next recharge.
func (r *runner) onRecharge(now sim.Time) {
	r.battBrownout = false
	r.res.BrownoutTime += (now - r.battBrownoutAt).Duration()
	if r.obs.Enabled() {
		r.obs.Note("recharge", fmt.Sprintf("SoC back above %.3g J after %v", r.battRecoverJ, (now-r.battBrownoutAt).Duration()))
	}
	if err := r.mcu.PowerRestore(r.afterRecharge); err != nil {
		r.fail(err)
	}
}

// afterRecharge runs once the rebooted board is alive again. Only here does
// the deferred re-collection accounting apply — the outage's lost samples
// rewind their windows' progress and count as re-collected, mirroring the
// crash path — because only now is the redo actually going to happen: a
// brownout that re-opens mid-reboot holds this callback with the gate, so
// nothing is ever rewound twice. The offload footprint is re-reserved (the
// binary reloads from flash) unless an absorbed crash's own alive callback
// already did, and in-flight offloaded windows re-enter the planner's
// time-budget check.
func (r *runner) afterRecharge() {
	now := r.sched.Now()
	if n := len(r.battRedo); n > 0 {
		for _, ref := range r.battRedo {
			ref.st.readsDone[ref.k/ref.s.perWindow]--
		}
		r.res.RecollectedSamples += n
		r.windowFault(r.windowAt(now)).Recollected += n
	}
	// RAMUsed < offloadNeed means the footprint is not resident: the chained
	// crash callback (if any) ran a moment ago in this same instant, so no
	// other allocation can have landed in between.
	if r.offloadNeed > 0 && r.mcu.RAMUsed() < r.offloadNeed && r.anyOffloadedAhead() {
		if err := r.mcu.Alloc(r.offloadNeed); err != nil {
			r.fail(err)
			return
		}
	}
	for _, st := range r.states {
		for w := range st.offloadInFlight {
			r.checkOffloadBudget(st, w, now)
		}
	}
	for i, ref := range r.battRedo {
		ref := ref
		delay := time.Duration(i) * ref.s.spec.ReadTime
		if _, err := r.sched.After(delay, func() { r.startRead(ref.s, ref.k) }); err != nil {
			r.fail(err)
			return
		}
	}
	r.battRedo = r.battRedo[:0]
}

// collectPower finalizes the ledger into the result: one last settle at the
// drained clock, the open brownout interval (a terminal brownout never saw
// its restore), and — because a terminal brownout strands whatever was
// mid-flight on the gated board (queued formatting, unfired re-reads) — the
// stranded samples are accounted as dropped so the sample ledger balances.
func (r *runner) collectPower() {
	if !r.powerOn {
		return
	}
	now := r.sched.Now()
	r.powerSettle(now)
	r.res.BatteryCapacityJ = r.battCapJ
	r.res.BatterySoCJ = r.battSoCJ
	r.res.BatteryMinSoCJ = r.battMinJ
	r.res.BatteryHarvestJ = r.battHarvestJ
	if r.battBrownout {
		r.res.BrownoutTime += (now - r.battBrownoutAt).Duration()
		stranded := r.res.ScheduledSamples + r.res.RecollectedSamples -
			r.res.DeliveredSamples - r.res.DroppedSamples - r.res.DownshiftSkipped
		if stranded > 0 {
			r.res.DroppedSamples += stranded
		}
	}
	if r.res.Brownouts == 0 {
		r.res.BatterySurvival = r.horizon
	}
}
