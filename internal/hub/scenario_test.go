package hub

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"iothub/internal/apps"
	"iothub/internal/apps/catalog"
)

func TestScenarioLabel(t *testing.T) {
	cases := []struct {
		s    Scenario
		want string
	}{
		{Scenario{Apps: []apps.ID{apps.StepCounter}, Scheme: Baseline, Windows: 3}, "A2/Baseline/w3"},
		{Scenario{Apps: []apps.ID{apps.SpeechToTxt, apps.DropboxMgr}, Scheme: BCOM, Windows: 3, QoSMult: 0.5}, "A11+A6/BCOM/w3/q0.5"},
		{Scenario{Apps: []apps.ID{apps.StepCounter}, Scheme: Batching, Windows: 1, QoSMult: 1, Faults: "link-loss:prob=0.1"}, "A2/Batching/w1/chaos"},
	}
	for _, c := range cases {
		if got := c.s.Label(); got != c.want {
			t.Errorf("Label() = %q, want %q", got, c.want)
		}
	}
}

func TestScenarioConfigErrors(t *testing.T) {
	for name, s := range map[string]Scenario{
		"no apps":     {Scheme: Baseline, Windows: 1},
		"unknown app": {Apps: []apps.ID{"A99"}, Scheme: Baseline, Windows: 1, Seed: 1},
		"bad qos":     {Apps: []apps.ID{apps.StepCounter}, Scheme: Baseline, Windows: 1, Seed: 1, QoSMult: -1},
		"bad faults":  {Apps: []apps.ID{apps.StepCounter}, Scheme: Baseline, Windows: 1, Seed: 1, Faults: "warp-core:breach"},
	} {
		if _, err := s.Config(); !errors.Is(err, ErrConfig) {
			t.Errorf("%s: Config() err = %v, want ErrConfig", name, err)
		}
	}
}

func TestRunScenarioRejectsBCOM(t *testing.T) {
	s := Scenario{Apps: []apps.ID{apps.SpeechToTxt, apps.DropboxMgr}, Scheme: BCOM, Windows: 1, Seed: 1}
	_, err := RunScenario(s)
	if !errors.Is(err, ErrConfig) || !strings.Contains(err.Error(), "assignment") {
		t.Errorf("RunScenario(BCOM) err = %v, want ErrConfig asking for an assignment", err)
	}
}

// A partitioned scenario carrying its own explicit Assign runs standalone —
// the property optimizer plan replay rests on — and the partition survives a
// JSON round trip with mode-name encoding.
func TestScenarioAssignRoundTrip(t *testing.T) {
	s := Scenario{
		Apps: []apps.ID{apps.SpeechToTxt, apps.StepCounter}, Scheme: Hybrid,
		Windows: 1, Seed: 1, SkipAppCompute: true,
		Assign: map[apps.ID]Mode{apps.SpeechToTxt: Uploaded, apps.StepCounter: Offloaded},
	}
	blob, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), `"A11":"Uploaded"`) {
		t.Errorf("assign not serialized by mode name: %s", blob)
	}
	var back Scenario
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Assign[apps.SpeechToTxt] != Uploaded || back.Assign[apps.StepCounter] != Offloaded {
		t.Fatalf("assign did not round-trip: %v", back.Assign)
	}
	got, err := RunScenario(back)
	if err != nil {
		t.Fatal(err)
	}
	if got.EdgeUploads == 0 || got.Modes[apps.SpeechToTxt] != Uploaded {
		t.Errorf("replayed hybrid scenario did not reach the edge: uploads=%d modes=%v",
			got.EdgeUploads, got.Modes)
	}
}

// A scenario run must be bit-for-bit the run of its hand-built config — the
// property the fleet engine's standalone-replay guarantee rests on.
func TestRunScenarioMatchesExplicitConfig(t *testing.T) {
	s := Scenario{
		Apps: []apps.ID{apps.StepCounter}, Scheme: Batching, Windows: 2, Seed: 42,
		Faults: "seed=5; link-corrupt:every=60",
	}
	got, err := RunScenario(s)
	if err != nil {
		t.Fatal(err)
	}
	a, err := catalog.New(apps.StepCounter, 42)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := Scenario{Apps: []apps.ID{apps.StepCounter}, Scheme: Batching, Windows: 2, Seed: 42,
		Faults: "seed=5; link-corrupt:every=60"}.Config()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Apps) != 1 || cfg.Apps[0].Spec().ID != a.Spec().ID {
		t.Fatalf("Config() apps = %v", cfg.Apps)
	}
	want, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Energy.Attributed() != want.Energy.Attributed() {
		t.Errorf("energy %v != %v", got.Energy.Attributed(), want.Energy.Attributed())
	}
	if got.Duration != want.Duration || got.LinkRetransmits != want.LinkRetransmits {
		t.Errorf("run stats diverge: %v/%d vs %v/%d",
			got.Duration, got.LinkRetransmits, want.Duration, want.LinkRetransmits)
	}
}
