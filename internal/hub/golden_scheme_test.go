// Golden differential corpus for the scheme-policy refactor: every execution
// scheme, clean and under chaos, with an armed observability recorder, pinned
// byte-for-byte. The corpus was recorded before the hub runner was decomposed
// into the internal/scheme policy engine; the refactor is only legitimate
// while these bytes — RunResult JSON, hardware counters, and routine traces —
// stay identical, which proves the paper-reproduction energy tables are
// untouched. Regenerate (only for a deliberate semantic change) with:
//
//	go test ./internal/hub -run Golden -update
//
// External test package: BCOM needs the planner in internal/core, which
// itself imports hub.
package hub_test

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"iothub/internal/apps"
	"iothub/internal/faults"
	"iothub/internal/hub"
	"iothub/internal/obs"
)

var update = flag.Bool("update", false, "rewrite the golden scheme corpus")

// goldenChaos is the fault schedule shared by every chaotic corpus entry: a
// lossy link plus one mid-run MCU crash, enough to exercise retransmission,
// batch re-collection, and the degradation ladder deterministically.
const goldenChaos = "seed=7; link-corrupt:prob=0.05; mcu-crash:at=700ms,for=80ms"

// goldenCases enumerates the corpus: all schemes x clean/chaos. App mixes
// match the obs perturbation tests (BCOM gets one offloadable and one heavy
// app so the planner splits them; BEAM shares the accelerometer; ECOM pairs
// the heavy app with an offloadable one so the edge tier and the MCU are both
// exercised, and its chaos run drives the Uploaded→Batched degradation).
func goldenCases() []struct {
	name   string
	ids    []apps.ID
	scheme hub.Scheme
	chaos  string
} {
	type tc = struct {
		name   string
		ids    []apps.ID
		scheme hub.Scheme
		chaos  string
	}
	var cases []tc
	for _, base := range []tc{
		{"baseline", []apps.ID{apps.StepCounter}, hub.Baseline, ""},
		{"batching", []apps.ID{apps.StepCounter}, hub.Batching, ""},
		{"com", []apps.ID{apps.CoAPServer}, hub.COM, ""},
		{"bcom", []apps.ID{apps.SpeechToTxt, apps.DropboxMgr}, hub.BCOM, ""},
		{"beam", []apps.ID{apps.StepCounter, apps.Earthquake}, hub.BEAM, ""},
		{"ecom", []apps.ID{apps.SpeechToTxt, apps.CoAPServer}, hub.ECOM, ""},
	} {
		cases = append(cases, base)
		chaotic := base
		chaotic.name += "_chaos"
		chaotic.chaos = goldenChaos
		cases = append(cases, chaotic)
	}
	return cases
}

// runGolden executes one corpus entry twice — bare and obs-armed — asserts
// the armed run does not perturb the result, and returns the three byte
// streams the corpus pins: result JSON, counter registry, Chrome trace.
func runGolden(t *testing.T, ids []apps.ID, scheme hub.Scheme, chaos string) (result, counters, trace []byte) {
	t.Helper()
	run := func(rec *obs.Recorder) []byte {
		cfg := obsConfig(t, ids, scheme, 2, rec)
		if chaos != "" {
			schedule, err := faults.ParseSchedule(chaos)
			if err != nil {
				t.Fatal(err)
			}
			cfg.FaultSchedule = schedule
		}
		res, err := hub.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return append(blob, '\n')
	}
	bare := run(nil)
	rec := obs.NewRecorder()
	rec.EnableTracing()
	armed := run(rec)
	if !bytes.Equal(bare, armed) {
		t.Fatalf("armed recorder perturbed the run:\nbare:  %.200s\narmed: %.200s", bare, armed)
	}
	var cbuf, tbuf bytes.Buffer
	if err := obs.WriteCounters(&cbuf, rec); err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteChromeTrace(&tbuf, rec); err != nil {
		t.Fatal(err)
	}
	return bare, cbuf.Bytes(), tbuf.Bytes()
}

// checkGolden compares one byte stream against its committed golden file,
// rewriting it under -update.
func checkGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update to record): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s diverged from golden (%d vs %d bytes).\nThe scheme refactor must be bit-reproducible; "+
			"regenerate with -update ONLY for a deliberate semantic change.\ngot:  %.300s\nwant: %.300s",
			path, len(got), len(want), got, want)
	}
}

// TestSchemeRefactorGolden is the refactor gate: every scheme's RunResult
// JSON, hardware-counter registry, and routine trace must match the corpus
// recorded before the runner was decomposed into scheme policies.
func TestSchemeRefactorGolden(t *testing.T) {
	for _, tc := range goldenCases() {
		t.Run(tc.name, func(t *testing.T) {
			result, counters, trace := runGolden(t, tc.ids, tc.scheme, tc.chaos)
			dir := filepath.Join("testdata", "golden")
			checkGolden(t, filepath.Join(dir, tc.name+".result.json"), result)
			checkGolden(t, filepath.Join(dir, tc.name+".counters.txt"), counters)
			// Traces run to megabytes (one span per sample), so the corpus
			// pins their digest: still byte-identity, without the bulk.
			digest := fmt.Sprintf("sha256:%x %d bytes\n", sha256.Sum256(trace), len(trace))
			checkGolden(t, filepath.Join(dir, tc.name+".trace.sha256"), []byte(digest))
		})
	}
}
