package hub

// The in-situ meter runtime: the hub-side execution of obs.MeterModel
// (DESIGN.md §13). The instrument lives on the MCU board — the realistic
// placement for a shunt + ADC rig on a low-end hub — so its work runs as real
// scheduled DES events that FIFO-contend with app work on the MCU core. The
// observer effect has two parts: a workload-independent footprint (the timed
// samples, paid alike by every scheme) and a workload-shaped tax (the
// event-attribution hook, fired per raised interrupt, so per-sample schemes
// pay it per reading while batched schemes pay it per flush). The model is
// entirely scheme-agnostic — nothing here inspects a policy; every scheme
// runs unmodified under observation, and the scheme-dependence emerges from
// how often each scheme crosses the interrupt line the instrument snoops.
//
// Cost attribution: MCU execution lands on the "mcu" track under
// DataCollection (in-situ measurement masquerades as collection overhead —
// exactly the confound the measurement-overhead papers warn about), and the
// analog front end's conversion energy is deposited on a dedicated "meter"
// track, so the instrument's own draw is separable in PerComponent.
//
// A disarmed model (rate 0, or all costs zero — the External preset) arms
// nothing: no events, no track, no counters. Rate→0 therefore recovers the
// unobserved run byte for byte, which the asymptote tests pin against the
// committed golden corpus.

import (
	"time"

	"iothub/internal/energy"
	"iothub/internal/obs"
	"iothub/internal/sim"
)

// armMeter schedules the instrument's first sampling tick. Called after
// armFaults (it needs the run horizon) and before the sensor reads are
// scheduled, so the meter's tick stream occupies a fixed position in the
// event order, fresh arena or reused.
func (r *runner) armMeter() error {
	m := r.params.Meter
	r.meterOn = m.Armed()
	if !r.meterOn {
		return nil
	}
	r.meterPeriod = m.Period()
	r.meterSampleT = m.PerSampleTime()
	r.meterFlushT = m.FlushTime()
	r.meterHookT = m.HookTime()
	// The track registers here — after the device stack, before the streams'
	// lazy revivals complete a run — at the same pipeline point every run, so
	// a reused arena revives it in the identical component order.
	r.meterTrack = r.meter.Track("meter")
	// The first reading lands one conversion interval after boot.
	_, err := r.sched.AtCall(sim.Time(r.meterPeriod), r, sim.Arg{Op: opMeterTick})
	return err
}

// meterTick is one timed sampling instant: reschedule the next tick, then
// take (or duty-skip, or drop) the reading. One tick event is in flight at
// any time and it comes from the scheduler's event arena, so steady-state
// sampling allocates nothing.
func (r *runner) meterTick() {
	if next := r.sched.Now().Add(r.meterPeriod); next <= sim.Time(r.horizon) {
		if _, err := r.sched.AtCall(next, r, sim.Arg{Op: opMeterTick}); err != nil {
			r.fail(err)
			return
		}
	}
	m := &r.params.Meter
	r.meterSample(r.meterSampleT, m.PerSampleCycles)
}

// meterOnInterrupt is the event-attribution hook (events.go calls it at the
// single point every scheme's MCU→CPU interrupt passes through): the
// instrument snoops the interrupt line and logs one record per raise. This
// is the workload-shaped half of the probe effect — the hook's cost scales
// with the observed scheme's event rate, so per-sample execution pays it
// per reading while batched execution pays it per flush.
func (r *runner) meterOnInterrupt() {
	if !r.meterOn {
		return
	}
	m := &r.params.Meter
	if m.HookCycles <= 0 {
		return
	}
	r.meterSample(r.meterHookT, m.HookCycles)
}

// meterSample takes one reading — timed or event-triggered — at the given
// driver cost: duty-gate it, drop it if the board is rebooting or the buffer
// RAM is exhausted, otherwise record it, deposit the conversion energy, run
// the driver work on the MCU core, and flush when the buffer fills.
func (r *runner) meterSample(execT time.Duration, cycles int64) {
	m := &r.params.Meter
	idx := r.meterIdx
	r.meterIdx++
	if cl := int64(m.DutyOn + m.DutyOff); cl > 0 && idx%cl >= int64(m.DutyOn) {
		return // duty-cycle off phase: the instrument is powered down
	}
	if !r.mcu.Alive() {
		// The board is mid-reboot: the conversion has no core to service it.
		r.res.MeterDroppedSamples++
		r.obs.Inc(obs.MeterDroppedSamples)
		return
	}
	if m.PerSampleRAM > 0 {
		if err := r.mcu.Alloc(m.PerSampleRAM); err != nil {
			// Buffer full against app batches: shed the reading rather than
			// evict workload data.
			r.res.MeterDroppedSamples++
			r.obs.Inc(obs.MeterDroppedSamples)
			return
		}
		r.meterAllocd += m.PerSampleRAM
	}
	r.res.MeterSamples++
	r.obs.Inc(obs.MeterSamples)
	if m.SenseJ > 0 {
		r.meterTrack.Deposit(m.SenseJ, energy.DataCollection)
	}
	if cycles > 0 {
		r.res.MeterCycles += cycles
		r.obs.Add(obs.MeterCPUCycles, uint64(cycles))
		if err := r.mcu.ExecCall(execT, energy.DataCollection, sim.Done{}); err != nil {
			r.fail(err)
			return
		}
	}
	if r.obs.Tracing() {
		now := r.sched.Now()
		r.obs.Span("meter", "sample", now, now.Add(execT))
	}
	if m.FlushEvery > 0 {
		r.meterPend++
		if r.meterPend >= m.FlushEvery {
			r.meterFlush()
		}
	}
}

// meterFlush dispatches the buffered records to local storage as one MCU
// work item. The completion carries the sample count and the current crash
// generation: a reboot between dispatch and completion wipes the buffer, and
// the stale completion must not count (or free) what no longer exists.
func (r *runner) meterFlush() {
	n := r.meterPend
	r.meterPend = 0
	start := r.sched.Now()
	if r.meterFlushT > 0 {
		m := &r.params.Meter
		r.res.MeterCycles += m.FlushCycles
		r.obs.Add(obs.MeterCPUCycles, uint64(m.FlushCycles))
		err := r.mcu.ExecCall(r.meterFlushT, energy.DataCollection,
			sim.Done{CB: r, Arg: sim.Arg{Op: opMeterFlushed, I0: int64(n), I1: r.meterGen}})
		if err != nil {
			r.fail(err)
			return
		}
	} else {
		r.meterFlushed(n, r.meterGen)
	}
	if r.obs.Tracing() {
		r.obs.Span("meter", "flush", start, start.Add(r.meterFlushT))
	}
}

// meterFlushed finishes one flush: account the persisted bytes and release
// the buffer's RAM. A generation mismatch means an MCU crash wiped the
// buffer while the flush was queued or running — its samples were already
// counted as a dropped burst and its RAM evaporated with the reboot, so the
// stale completion is a no-op.
func (r *runner) meterFlushed(n int, gen int64) {
	if gen != r.meterGen {
		return
	}
	m := &r.params.Meter
	r.res.MeterFlushes++
	r.obs.Inc(obs.MeterFlushes)
	if bytes := n * m.FlushBytes; bytes > 0 {
		r.res.MeterBytes += bytes
		r.obs.Add(obs.MeterBytes, uint64(bytes))
	}
	if free := n * m.PerSampleRAM; free > 0 {
		if free > r.meterAllocd {
			free = r.meterAllocd
		}
		r.meterAllocd -= free
		if free > 0 {
			if err := r.mcu.Free(free); err != nil {
				r.fail(err)
			}
		}
	}
}

// meterOnCrash is the chaos hook (chaos.go): an MCU reboot wipes the sample
// buffer — everything pending since the last flush is lost in one dropped
// burst — the buffer's RAM evaporates with the crash (it must NOT be freed
// against the wiped accounting), the duty cycle restarts in phase with the
// rebooted firmware, and outstanding flush completions go stale.
func (r *runner) meterOnCrash() {
	if !r.meterOn {
		return
	}
	if r.meterPend > 0 {
		r.res.MeterDroppedSamples += r.meterPend
		r.obs.Add(obs.MeterDroppedSamples, uint64(r.meterPend))
		r.meterPend = 0
	}
	r.meterAllocd = 0
	r.meterIdx = 0
	r.meterGen++
}
