package hub_test

import (
	"fmt"
	"log"

	"iothub/internal/apps"
	"iothub/internal/apps/stepcounter"
	"iothub/internal/hub"
)

// ExampleRun simulates the paper's step counter under Baseline and Batching
// and shows the optimization's observable effect: the same computation and
// the same data with three orders of magnitude fewer CPU interrupts.
func ExampleRun() {
	for _, scheme := range []hub.Scheme{hub.Baseline, hub.Batching} {
		app, err := stepcounter.New(42)
		if err != nil {
			log.Fatal(err)
		}
		res, err := hub.Run(hub.Config{
			Apps:    []apps.App{app},
			Scheme:  scheme,
			Windows: 2,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%v: %d interrupts, %d bytes, window 0: %s\n",
			scheme, res.Interrupts, res.BytesTransferred,
			res.Outputs[apps.StepCounter][0].Result.Summary)
	}
	// Output:
	// Baseline: 2000 interrupts, 24000 bytes, window 0: 1 steps
	// Batching: 2 interrupts, 24000 bytes, window 0: 1 steps
}
