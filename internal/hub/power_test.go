// Supply-ledger gates: the battery refactor is only legitimate while (a) a
// disarmed supply is byte-identical to the committed golden corpus, (b) an
// armed battery runs deterministically — through a reused arena, under
// seeded replay, and composed with injected chaos — and (c) the armed path
// stays within the arena's steady-state allocation budget.
package hub_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"iothub/internal/apps"
	"iothub/internal/faults"
	"iothub/internal/hub"
	"iothub/internal/power"
)

// testSupply is a small armed supply with harvest income: enough charge that
// frugal runs finish, little enough that hungry ones brown out.
func testSupply() power.Supply {
	return power.Supply{
		Battery: power.Battery{CapacityMAh: 0.5, Volts: 3, DerateFraction: 1},
		Harvest: "const:w=0.12; solar:peak=0.9,period=4s,phase=1s",
	}
}

// TestBatteryAsymptoteGolden pins the nil-battery asymptote: a zero-value
// Supply (disarmed battery, no harvest) attached to every golden corpus entry
// must reproduce the committed result bytes exactly. This is the contract
// that makes the ledger a safe refactor of the hottest layer — mains-powered
// runs cannot tell the power runtime exists.
func TestBatteryAsymptoteGolden(t *testing.T) {
	for _, tc := range goldenCases() {
		t.Run(tc.name, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("testdata", "golden", tc.name+".result.json"))
			if err != nil {
				t.Fatalf("missing golden corpus: %v", err)
			}
			cfg := obsConfig(t, tc.ids, tc.scheme, 2, nil)
			cfg.Power = &power.Supply{}
			if tc.chaos != "" {
				schedule, err := faults.ParseSchedule(tc.chaos)
				if err != nil {
					t.Fatal(err)
				}
				cfg.FaultSchedule = schedule
			}
			res, err := hub.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			if !bytes.Equal(got, want) {
				t.Fatalf("disarmed supply diverged from golden (%d vs %d bytes)\ngot:  %.300s\nwant: %.300s",
					len(got), len(want), got, want)
			}
		})
	}
}

// TestArenaReuseBatteryArmed is the armed-battery variant of
// TestArenaReuseMatchesGolden: every corpus pairing runs with the test supply
// once fresh (hub.Run) and twice through one shared arena. All three must be
// byte-identical — renew() provably rewinds the whole ledger (SoC, brownout
// state, harvest level, redo queue) and the cached harvest trace compiles to
// the same steps every time.
func TestArenaReuseBatteryArmed(t *testing.T) {
	arena := hub.NewArena()
	sup := testSupply()
	for _, tc := range goldenCases() {
		t.Run(tc.name, func(t *testing.T) {
			run := func(in func(hub.Config) (*hub.RunResult, error)) []byte {
				cfg := obsConfig(t, tc.ids, tc.scheme, 2, nil)
				cfg.Power = &sup
				if tc.chaos != "" {
					schedule, err := faults.ParseSchedule(tc.chaos)
					if err != nil {
						t.Fatal(err)
					}
					cfg.FaultSchedule = schedule
				}
				res, err := in(cfg)
				if err != nil {
					t.Fatal(err)
				}
				blob, err := json.Marshal(res)
				if err != nil {
					t.Fatal(err)
				}
				return blob
			}
			fresh := run(hub.Run)
			for pass, label := range []string{"after-other-scheme", "after-identical-run"} {
				reused := run(arena.Run)
				if !bytes.Equal(fresh, reused) {
					t.Fatalf("pass %d (%s): arena reuse diverged from fresh run\nfresh:  %.300s\nreused: %.300s",
						pass, label, fresh, reused)
				}
			}
		})
	}
}

// TestArenaSteadyStateAllocsBattery pins the armed-battery path to the same
// steady-state allocation budget as the plain arena: the ledger's settle
// ticks, harvest steps, and battery track must all come from pooled storage.
func TestArenaSteadyStateAllocsBattery(t *testing.T) {
	sup := testSupply()
	s := hub.Scenario{
		Apps:           []apps.ID{apps.StepCounter},
		Scheme:         hub.Batching,
		Windows:        1,
		Seed:           7,
		SkipAppCompute: true,
		Power:          &sup,
	}
	arena := hub.NewArena()
	for i := 0; i < 3; i++ {
		if _, err := arena.RunScenario(s); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := arena.RunScenario(s); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > arenaAllocBudget {
		t.Errorf("steady-state battery RunScenario = %.0f allocs, budget %d", allocs, arenaAllocBudget)
	}
	t.Logf("steady-state battery RunScenario = %.0f allocs (budget %d)", allocs, arenaAllocBudget)
}

// TestBrownoutUnderChaos composes the two ways an MCU can go down in one run:
// an injected mcu-crash fault and a physics brownout from SoC exhaustion. The
// gates: the run completes with both on the books, a crash landing during the
// brownout is absorbed rather than double-counted (one power gate, one reboot
// chain — never two), the sample ledger stays balanced through recollection,
// and a seeded replay is byte-identical.
func TestBrownoutUnderChaos(t *testing.T) {
	run := func() *hub.RunResult {
		cfg := obsConfig(t, []apps.ID{apps.StepCounter}, hub.Baseline, 2, nil)
		sup := testSupply()
		// ~2.2 J usable: the baseline step counter draws ~5.7 J over two
		// windows, so SoC hits zero mid-run; the 700 ms crash lands first.
		sup.Battery.CapacityMAh = 0.2
		cfg.Power = &sup
		schedule, err := faults.ParseSchedule(goldenChaos)
		if err != nil {
			t.Fatal(err)
		}
		cfg.FaultSchedule = schedule
		res, err := hub.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := run()
	if res.Brownouts < 1 {
		t.Fatalf("expected a physics brownout, got %d (SoC %.3f J of %.3f J)",
			res.Brownouts, res.BatterySoCJ, res.BatteryCapacityJ)
	}
	if res.MCUCrashes < 1 {
		t.Fatalf("expected the injected MCU crash on the books, got %d", res.MCUCrashes)
	}
	// No double-reboot: each brownout opens exactly one gate interval, so
	// total downtime is bounded by the run past the first brownout, and a
	// brownout that never recharges must not report more gates than openings.
	if res.BrownoutTime <= 0 {
		t.Fatalf("%d brownouts with zero downtime", res.Brownouts)
	}
	if res.BrownoutTime > res.Duration {
		t.Fatalf("downtime %v exceeds run duration %v", res.BrownoutTime, res.Duration)
	}
	if err := res.CheckInvariants(); err != nil {
		t.Fatalf("invariants after brownout+chaos: %v", err)
	}
	// Seeded replay: brownout physics composed with injected chaos is still a
	// pure function of the config.
	again := run()
	a, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(again)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("seeded replay diverged:\nfirst:  %.300s\nsecond: %.300s", a, b)
	}
}
