package hub

import (
	"errors"
	"testing"
	"time"

	"iothub/internal/apps"
	"iothub/internal/apps/catalog"
	"iothub/internal/energy"
)

func newApps(t *testing.T, ids ...apps.ID) []apps.App {
	t.Helper()
	out := make([]apps.App, 0, len(ids))
	for _, id := range ids {
		a, err := catalog.New(id, 1)
		if err != nil {
			t.Fatalf("catalog.New(%s): %v", id, err)
		}
		out = append(out, a)
	}
	return out
}

func mustRun(t *testing.T, cfg Config) *RunResult {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestConfigValidation(t *testing.T) {
	sc := newApps(t, apps.StepCounter)
	cases := map[string]Config{
		"no apps":        {Scheme: Baseline, Windows: 1},
		"zero windows":   {Apps: sc, Scheme: Baseline},
		"unknown scheme": {Apps: sc, Scheme: Scheme(99), Windows: 1},
		"assign without bcom": {
			Apps: sc, Scheme: Baseline, Windows: 1,
			Assign: map[apps.ID]Mode{apps.StepCounter: Batched},
		},
		"bcom without assign": {Apps: sc, Scheme: BCOM, Windows: 1},
		"beam single app":     {Apps: sc, Scheme: BEAM, Windows: 1},
		"duplicate app": {
			Apps:   append(newApps(t, apps.StepCounter), newApps(t, apps.StepCounter)...),
			Scheme: Baseline, Windows: 1,
		},
	}
	for name, cfg := range cases {
		if _, err := Run(cfg); !errors.Is(err, ErrConfig) {
			t.Errorf("%s: err = %v, want ErrConfig", name, err)
		}
	}
}

func TestBaselineInterruptCountMatchesTableII(t *testing.T) {
	res := mustRun(t, Config{Apps: newApps(t, apps.StepCounter), Scheme: Baseline, Windows: 2})
	if res.Interrupts != 2000 {
		t.Errorf("interrupts = %d, want 2000 (1000/window × 2)", res.Interrupts)
	}
	if res.BytesTransferred != 24000 {
		t.Errorf("bytes = %d, want 24000", res.BytesTransferred)
	}
	if res.Modes[apps.StepCounter] != PerSample {
		t.Errorf("mode = %v", res.Modes[apps.StepCounter])
	}
}

func TestBatchingCollapsesInterrupts(t *testing.T) {
	res := mustRun(t, Config{Apps: newApps(t, apps.StepCounter), Scheme: Batching, Windows: 3})
	if res.Interrupts != 3 {
		t.Errorf("interrupts = %d, want 3 (one per window)", res.Interrupts)
	}
	if res.BatchFlushes != 3 {
		t.Errorf("flushes = %d, want 3", res.BatchFlushes)
	}
	// Same payload crosses the link, just batched.
	if res.BytesTransferred != 36000 {
		t.Errorf("bytes = %d, want 36000", res.BytesTransferred)
	}
	if res.CPUWakes == 0 {
		t.Error("CPU never slept under batching")
	}
}

func TestBatchingFlushesEarlyUnderRAMPressure(t *testing.T) {
	params := DefaultParams()
	// Shrink usable RAM below one window's batch (12 KB).
	params.MCU.ReservedBytes = params.MCU.RAMBytes - 8*1024
	res := mustRun(t, Config{
		Apps: newApps(t, apps.StepCounter), Scheme: Batching, Windows: 2, Params: &params,
	})
	if res.BatchFlushes <= 2 {
		t.Errorf("flushes = %d, want > 2 (early flushes under RAM pressure)", res.BatchFlushes)
	}
	if res.BytesTransferred != 24000 {
		t.Errorf("bytes = %d, want 24000 (no data lost)", res.BytesTransferred)
	}
}

func TestCOMEliminatesPerSampleTraffic(t *testing.T) {
	res := mustRun(t, Config{Apps: newApps(t, apps.StepCounter), Scheme: COM, Windows: 3})
	if res.Interrupts != 3 {
		t.Errorf("interrupts = %d, want 3 (result notifications only)", res.Interrupts)
	}
	want := 3 * DefaultParams().ResultBytes
	if res.BytesTransferred != want {
		t.Errorf("bytes = %d, want %d", res.BytesTransferred, want)
	}
	// The app-specific computation ran on the MCU, not the CPU.
	if res.CPUBusy[energy.AppCompute] != 0 {
		t.Errorf("CPU compute = %v, want 0", res.CPUBusy[energy.AppCompute])
	}
	if res.MCUBusy[energy.AppCompute] == 0 {
		t.Error("MCU compute = 0, want > 0")
	}
}

func TestCOMRejectsHeavyApp(t *testing.T) {
	_, err := Run(Config{Apps: newApps(t, apps.SpeechToTxt), Scheme: COM, Windows: 1})
	if !errors.Is(err, ErrUnoffloadable) {
		t.Errorf("err = %v, want ErrUnoffloadable", err)
	}
}

func TestSchemeEnergyOrderingForStepCounter(t *testing.T) {
	sc := func() []apps.App { return newApps(t, apps.StepCounter) }
	base := mustRun(t, Config{Apps: sc(), Scheme: Baseline, Windows: 3})
	bat := mustRun(t, Config{Apps: sc(), Scheme: Batching, Windows: 3})
	com := mustRun(t, Config{Apps: sc(), Scheme: COM, Windows: 3})
	if !(com.TotalJoules() < bat.TotalJoules() && bat.TotalJoules() < base.TotalJoules()) {
		t.Errorf("energy ordering violated: base=%.3f bat=%.3f com=%.3f J",
			base.TotalJoules(), bat.TotalJoules(), com.TotalJoules())
	}
	// §IV-E1 headline bands: Batching saves ~52%, COM ~85% (we accept the
	// neighborhood; exact per-app values are asserted in experiments).
	batSave := 1 - bat.TotalJoules()/base.TotalJoules()
	comSave := 1 - com.TotalJoules()/base.TotalJoules()
	if batSave < 0.40 || batSave > 0.70 {
		t.Errorf("batching saving = %.2f, want 0.40..0.70", batSave)
	}
	if comSave < 0.70 || comSave > 0.95 {
		t.Errorf("COM saving = %.2f, want 0.70..0.95", comSave)
	}
}

func TestBaselineTransferDominatesEnergy(t *testing.T) {
	res := mustRun(t, Config{Apps: newApps(t, apps.StepCounter), Scheme: Baseline, Windows: 2})
	if f := res.Energy.Fraction(energy.DataTransfer); f < 0.70 || f > 0.90 {
		t.Errorf("transfer fraction = %.2f, want ~0.81 (§IV-E1)", f)
	}
	if f := res.Energy.Fraction(energy.Interrupt); f < 0.05 || f > 0.20 {
		t.Errorf("interrupt fraction = %.2f, want ~0.10", f)
	}
}

func TestBEAMSharesSensorStreams(t *testing.T) {
	pair := func() []apps.App { return newApps(t, apps.StepCounter, apps.Earthquake) }
	base := mustRun(t, Config{Apps: pair(), Scheme: Baseline, Windows: 2})
	beam := mustRun(t, Config{Apps: pair(), Scheme: BEAM, Windows: 2})
	if base.Interrupts != 4000 {
		t.Errorf("baseline interrupts = %d, want 4000 (duplicated reads)", base.Interrupts)
	}
	if beam.Interrupts != 2000 {
		t.Errorf("BEAM interrupts = %d, want 2000 (shared accelerometer)", beam.Interrupts)
	}
	if beam.BytesTransferred >= base.BytesTransferred {
		t.Errorf("BEAM bytes %d not below baseline %d", beam.BytesTransferred, base.BytesTransferred)
	}
	if beam.TotalJoules() >= base.TotalJoules() {
		t.Error("BEAM did not save energy on a fully shared workload pair")
	}
	// Both apps still produce their outputs every window.
	for _, id := range []apps.ID{apps.StepCounter, apps.Earthquake} {
		if got := len(beam.Outputs[id]); got != 2 {
			t.Errorf("%s outputs = %d, want 2", id, got)
		}
	}
}

func TestBEAMBarelyHelpsDisjointSensors(t *testing.T) {
	pair := func() []apps.App { return newApps(t, apps.StepCounter, apps.Heartbeat) }
	base := mustRun(t, Config{Apps: pair(), Scheme: Baseline, Windows: 2})
	beam := mustRun(t, Config{Apps: pair(), Scheme: BEAM, Windows: 2})
	if base.Interrupts != beam.Interrupts {
		t.Errorf("disjoint sensors: interrupts %d vs %d, want equal", base.Interrupts, beam.Interrupts)
	}
	saving := 1 - beam.TotalJoules()/base.TotalJoules()
	if saving > 0.02 {
		t.Errorf("BEAM saved %.1f%% with no shared sensors, want ~0", saving*100)
	}
}

func TestBCOMPartitionsHeavyAndLight(t *testing.T) {
	cfg := Config{
		Apps:   newApps(t, apps.SpeechToTxt, apps.DropboxMgr),
		Scheme: BCOM,
		Assign: map[apps.ID]Mode{
			apps.SpeechToTxt: Batched,
			apps.DropboxMgr:  Offloaded,
		},
		Windows: 2,
	}
	res := mustRun(t, cfg)
	if res.Modes[apps.SpeechToTxt] != Batched || res.Modes[apps.DropboxMgr] != Offloaded {
		t.Errorf("modes = %v", res.Modes)
	}
	base := mustRun(t, Config{
		Apps: newApps(t, apps.SpeechToTxt, apps.DropboxMgr), Scheme: Baseline, Windows: 2,
	})
	saving := 1 - res.TotalJoules()/base.TotalJoules()
	if saving < 0.03 || saving > 0.40 {
		t.Errorf("BCOM heavy-mix saving = %.1f%%, want small-but-positive (§IV-E3)", saving*100)
	}
}

func TestBCOMRejectsOffloadingHeavy(t *testing.T) {
	_, err := Run(Config{
		Apps:    newApps(t, apps.SpeechToTxt),
		Scheme:  BCOM,
		Assign:  map[apps.ID]Mode{apps.SpeechToTxt: Offloaded},
		Windows: 1,
	})
	if !errors.Is(err, ErrUnoffloadable) {
		t.Errorf("err = %v, want ErrUnoffloadable", err)
	}
	_, err = Run(Config{
		Apps:    newApps(t, apps.SpeechToTxt, apps.DropboxMgr),
		Scheme:  BCOM,
		Assign:  map[apps.ID]Mode{apps.SpeechToTxt: Batched},
		Windows: 1,
	})
	if !errors.Is(err, ErrConfig) {
		t.Errorf("missing assignment: err = %v, want ErrConfig", err)
	}
}

func TestOutputsAreRealComputations(t *testing.T) {
	res := mustRun(t, Config{Apps: newApps(t, apps.StepCounter), Scheme: Baseline, Windows: 3})
	outs := res.Outputs[apps.StepCounter]
	if len(outs) != 3 {
		t.Fatalf("outputs = %d, want 3", len(outs))
	}
	for _, o := range outs {
		steps := o.Result.Metrics["steps"]
		if steps < 1 || steps > 3 {
			t.Errorf("window %d steps = %v, want ~2", o.Window, steps)
		}
	}
}

func TestOutputsIdenticalAcrossSchemes(t *testing.T) {
	// Where the computation runs must not change what it computes.
	base := mustRun(t, Config{Apps: newApps(t, apps.StepCounter), Scheme: Baseline, Windows: 2})
	com := mustRun(t, Config{Apps: newApps(t, apps.StepCounter), Scheme: COM, Windows: 2})
	for w := 0; w < 2; w++ {
		b := base.Outputs[apps.StepCounter][w].Result
		c := com.Outputs[apps.StepCounter][w].Result
		if b.Summary != c.Summary {
			t.Errorf("window %d: baseline %q vs COM %q", w, b.Summary, c.Summary)
		}
	}
}

func TestSkipAppCompute(t *testing.T) {
	res := mustRun(t, Config{
		Apps: newApps(t, apps.StepCounter), Scheme: Baseline, Windows: 1, SkipAppCompute: true,
	})
	out := res.Outputs[apps.StepCounter]
	if len(out) != 1 {
		t.Fatalf("outputs = %d, want 1", len(out))
	}
	if out[0].Result.Summary != "" {
		t.Error("SkipAppCompute still ran the computation")
	}
	if res.TotalJoules() <= 0 {
		t.Error("no energy modeled")
	}
}

func TestTracePowerRecordsTimeline(t *testing.T) {
	res := mustRun(t, Config{
		Apps: newApps(t, apps.StepCounter), Scheme: Batching, Windows: 1, TracePower: true,
	})
	cpuTrace := res.Traces["cpu"]
	if len(cpuTrace) < 3 {
		t.Fatalf("cpu trace has %d samples", len(cpuTrace))
	}
	// Batching: the trace must show both a sleeping phase and active bursts.
	var sawSleep, sawActive bool
	p := DefaultParams()
	for _, s := range cpuTrace {
		if s.Watts == p.CPU.SleepW {
			sawSleep = true
		}
		if s.Watts == p.CPU.ActiveW {
			sawActive = true
		}
	}
	if !sawSleep || !sawActive {
		t.Errorf("trace missing phases: sleep=%v active=%v", sawSleep, sawActive)
	}
}

func TestNoQoSViolationsAcrossCatalog(t *testing.T) {
	for _, scheme := range []Scheme{Baseline, Batching, COM} {
		for _, id := range catalog.LightIDs {
			res := mustRun(t, Config{Apps: newApps(t, id), Scheme: scheme, Windows: 2})
			if res.QoSViolations != 0 {
				t.Errorf("%s under %v: %d QoS violations", id, scheme, res.QoSViolations)
			}
		}
	}
}

func TestRunIdle(t *testing.T) {
	res, err := RunIdle(2*time.Second, nil)
	if err != nil {
		t.Fatalf("RunIdle: %v", err)
	}
	p := DefaultParams()
	want := (p.CPU.DeepSleepW + p.MCU.IdleW) * 2
	if diff := res.TotalJoules() - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("idle energy = %v J, want %v", res.TotalJoules(), want)
	}
	if res.Duration != 2*time.Second {
		t.Errorf("duration = %v", res.Duration)
	}
}

func TestIdleVsBaselineRatio(t *testing.T) {
	// Figure 1: running the workloads costs ~9.5× the idle hub. Average the
	// ten light apps as the paper does.
	idle, err := RunIdle(time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, id := range catalog.LightIDs {
		res := mustRun(t, Config{Apps: newApps(t, id), Scheme: Baseline, Windows: 2, SkipAppCompute: true})
		sum += res.TotalJoules() / res.Duration.Seconds()
	}
	ratio := sum / 10 / idle.TotalJoules()
	if ratio < 7 || ratio > 13 {
		t.Errorf("baseline/idle ratio = %.1f, want ~9.5 (Fig. 1)", ratio)
	}
}

func TestSchemeAndModeStrings(t *testing.T) {
	if Baseline.String() != "Baseline" || BCOM.String() != "BCOM" || Scheme(9).String() == "" {
		t.Error("scheme strings wrong")
	}
	if PerSample.String() != "PerSample" || Mode(9).String() == "" {
		t.Error("mode strings wrong")
	}
}

func TestRoutineLatencySpeedup(t *testing.T) {
	// Fig. 8 / Fig. 13: COM shortens the step counter's processing latency.
	base := mustRun(t, Config{Apps: newApps(t, apps.StepCounter), Scheme: Baseline, Windows: 2})
	com := mustRun(t, Config{Apps: newApps(t, apps.StepCounter), Scheme: COM, Windows: 2})
	sp := float64(base.BusyLatency()) / float64(com.BusyLatency())
	if sp < 1.5 || sp > 5 {
		t.Errorf("A2 COM speedup = %.2f, want 1.5..5", sp)
	}
	lat := base.RoutineLatency()
	if lat[energy.DataTransfer] <= lat[energy.AppCompute] {
		t.Error("baseline transfer latency not dominant")
	}
}

func TestUplinkRoutingByMode(t *testing.T) {
	// The JSON formatter pushes a real document upstream every window.
	base := mustRun(t, Config{Apps: newApps(t, apps.ArduinoJSON), Scheme: Baseline, Windows: 2})
	if base.UpstreamBytes == 0 {
		t.Fatal("no upstream bytes recorded")
	}
	mainTx := base.PerComponent["radio:main"][energy.AppCompute]
	mcuTx := base.PerComponent["radio:mcu"][energy.AppCompute]
	if mainTx <= 0 || mcuTx != 0 {
		t.Errorf("baseline uplink: main=%v mcu=%v, want main only", mainTx, mcuTx)
	}

	com := mustRun(t, Config{Apps: newApps(t, apps.ArduinoJSON), Scheme: COM, Windows: 2})
	mainTx = com.PerComponent["radio:main"][energy.AppCompute]
	mcuTx = com.PerComponent["radio:mcu"][energy.AppCompute]
	if mcuTx <= 0 || mainTx != 0 {
		t.Errorf("COM uplink: main=%v mcu=%v, want MCU only", mainTx, mcuTx)
	}
	if com.UpstreamBytes != base.UpstreamBytes {
		t.Errorf("upstream bytes differ: %d vs %d", com.UpstreamBytes, base.UpstreamBytes)
	}
}

func TestSkipAppComputeSkipsUplink(t *testing.T) {
	res := mustRun(t, Config{
		Apps: newApps(t, apps.ArduinoJSON), Scheme: Baseline, Windows: 1, SkipAppCompute: true,
	})
	if res.UpstreamBytes != 0 {
		t.Errorf("upstream = %d with SkipAppCompute", res.UpstreamBytes)
	}
}

func TestOutputLatencyOrdering(t *testing.T) {
	// Baseline results land essentially at window close; Batching adds the
	// bulk transfer; COM adds the (slower) MCU compute tail. All stay well
	// under the QoS deadline.
	base := mustRun(t, Config{Apps: newApps(t, apps.StepCounter), Scheme: Baseline, Windows: 3})
	bat := mustRun(t, Config{Apps: newApps(t, apps.StepCounter), Scheme: Batching, Windows: 3})
	lb, lbat := base.OutputLatency(), bat.OutputLatency()
	if lb.Count != 3 || lbat.Count != 3 {
		t.Fatalf("counts = %d, %d", lb.Count, lbat.Count)
	}
	if lbat.Mean <= lb.Mean {
		t.Errorf("batching latency %v not above baseline %v", lbat.Mean, lb.Mean)
	}
	if lbat.Max > time.Second {
		t.Errorf("batching latency %v exceeds a window", lbat.Max)
	}
}

func TestTenAppConcurrentBaselineSaturates(t *testing.T) {
	// The full light catalog concurrently oversubscribes the serialized IO
	// path (~12k transfers/s at ~0.24 ms each): the hub falls behind and
	// QoS violations appear — the "10 apps running" regime the paper's
	// Figure 1 motivates optimizing.
	res := mustRun(t, Config{
		Apps: newApps(t, catalog.LightIDs...), Scheme: Baseline, Windows: 3, SkipAppCompute: true,
	})
	if res.QoSViolations == 0 {
		t.Error("10 concurrent baseline apps met QoS; expected IO saturation")
	}
	// Batching collapses interrupts but the mix's ~134 KB/s of sensor data
	// still exceeds the 117 KB/s link: the hub keeps falling behind. Only
	// removing data from the link (offloading) can make this mix feasible.
	bat := mustRun(t, Config{
		Apps: newApps(t, catalog.LightIDs...), Scheme: Batching, Windows: 3, SkipAppCompute: true,
	})
	if bat.QoSViolations == 0 {
		t.Error("batching met QoS despite a link-oversubscribed mix")
	}
	if bat.TotalJoules() >= res.TotalJoules() {
		t.Error("batching did not save energy on the 10-app mix")
	}
}

func TestParseScheme(t *testing.T) {
	cases := map[string]Scheme{
		"baseline": Baseline, "Batching": Batching, " COM ": COM,
		"bcom": BCOM, "BEAM": BEAM,
	}
	for in, want := range cases {
		got, err := ParseScheme(in)
		if err != nil || got != want {
			t.Errorf("ParseScheme(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseScheme("warp"); !errors.Is(err, ErrConfig) {
		t.Errorf("unknown scheme err = %v", err)
	}
}
