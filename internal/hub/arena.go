package hub

// The scenario arena: a reusable per-worker execution context. A fleet sweep
// runs thousands of scenarios back to back, and constructing a fresh
// scheduler + meter + device stack + bookkeeping maps for every one of them
// dominated the sweep's allocation profile. An Arena owns one of everything
// and a renew path that reinitializes it in place: the first Run constructs
// exactly what the package-level Run always constructed; every later Run
// revives the same objects — scheduler event arena, meter tracks, device
// state, appState/stream maps, the RunResult — with their container capacity
// intact. Results are byte-identical either way; the golden corpus is
// replayed through a reused arena in golden_scheme_test.go to prove it.
//
// Retention contract: the *RunResult returned by an Arena's Run — and
// everything reachable from it (Outputs slices, PerComponent map, ...) — is
// only valid until the next Run on the same arena, because the backing
// storage is recycled. Callers that keep results across runs must Clone()
// first. The package-level Run and RunScenario construct a throwaway arena
// per call, so their results remain immortal as always.
//
// An Arena is not safe for concurrent use; fleet gives each worker its own.

import (
	"fmt"

	"iothub/internal/apps"
	"iothub/internal/cpu"
	"iothub/internal/energy"
	"iothub/internal/link"
	"iothub/internal/mcu"
	"iothub/internal/radio"
	"iothub/internal/scheme"
	"iothub/internal/sim"
)

// Arena is a reusable execution context for back-to-back scenario runs.
// The zero value is ready to use; NewArena is the conventional spelling.
type Arena struct {
	r runner
	// used marks a successfully renewed arena; a renew error clears it so
	// the next Run rebuilds the stack from scratch instead of reusing a
	// half-reset one.
	used bool
}

// NewArena returns an empty arena. Its first Run performs ordinary
// construction; subsequent Runs reuse everything.
func NewArena() *Arena { return &Arena{} }

// Run executes one configured scenario in the arena. See the package-level
// Run for semantics; the only difference is the retention contract above.
func (a *Arena) Run(cfg Config) (*RunResult, error) {
	params, err := cfg.validate()
	if err != nil {
		return nil, err
	}
	pols, err := cfg.policies()
	if err != nil {
		return nil, err
	}
	r := &a.r
	if err := r.renew(cfg, params, a.used); err != nil {
		a.used = false
		return nil, err
	}
	a.used = true
	r.renewResult(pols)
	if err := r.build(pols); err != nil {
		return nil, err
	}
	if err := r.armFaults(); err != nil {
		return nil, err
	}
	if err := r.armMeter(); err != nil {
		return nil, err
	}
	if err := r.armPower(); err != nil {
		return nil, err
	}
	r.prime()
	if err := r.scheduleAll(); err != nil {
		return nil, err
	}
	if err := r.sched.Run(); err != nil {
		if r.runErr != nil {
			return nil, r.runErr
		}
		return nil, err
	}
	if r.runErr != nil {
		return nil, r.runErr
	}
	r.collect()
	if err := r.res.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("hub: run invariant violated: %w", err)
	}
	return r.res, nil
}

// RunScenario materializes and executes the scenario in the arena — the
// arena-reusing sibling of the package-level RunScenario, with the same
// partition requirement.
func (a *Arena) RunScenario(s Scenario) (*RunResult, error) {
	cfg, err := s.Config()
	if err != nil {
		return nil, err
	}
	def, err := scheme.Lookup(s.Scheme)
	if err != nil {
		return nil, err
	}
	if def.RequiresAssign() && s.Assign == nil {
		return nil, fmt.Errorf("%w: %v scenario %s needs an assignment (use fleet.RunScenario, or set Assign)", ErrConfig, s.Scheme, s.Label())
	}
	return a.Run(cfg)
}

// renew readies the runner for a run: first use constructs the device stack
// exactly as the pre-arena Run did; reuse resets every component in the
// original construction order, so the meter re-registers tracks in the same
// component order and results stay byte-identical.
func (r *runner) renew(cfg Config, params Params, reuse bool) error {
	// Recycle the previous run's per-run objects into the pools (no-ops on
	// first use). This also scrubs state left behind by an errored run.
	for _, st := range r.states {
		r.putState(st)
	}
	r.states = r.states[:0]
	for _, s := range r.streams {
		r.putStream(s)
	}
	r.streams = r.streams[:0]
	r.xfers = r.xfers[:0]
	r.xferFree = r.xferFree[:0]
	r.engine = nil
	r.pol = nil
	r.linkFaulty = false
	r.horizon = 0
	r.offloadNeed = 0
	r.lastDegradedCrash = 0
	r.gapHint = 0
	r.allowDeep = false
	r.edge = nil
	r.meterOn = false
	r.meterPeriod = 0
	r.meterSampleT = 0
	r.meterFlushT = 0
	r.meterHookT = 0
	r.meterTrack = nil
	r.meterIdx = 0
	r.meterPend = 0
	r.meterAllocd = 0
	r.meterGen = 0
	r.powerOn = false
	r.battCapJ = 0
	r.battSoCJ = 0
	r.battMinJ = 0
	r.battHarvestJ = 0
	r.battDemandJ = 0
	r.battHarvestW = 0
	r.battDegradeJ = 0
	r.battRecoverJ = 0
	r.battPrevSoC = 0
	r.battPeriod = 0
	r.battLastAt = 0
	r.battBrownoutAt = 0
	r.battDegraded = false
	r.battBrownout = false
	r.battTrack = nil
	// battSteps / battTraceSrc / battTraceHzn survive: they cache the
	// compiled harvest trace across runs (armPower revalidates the key).
	r.battRedo = r.battRedo[:0]
	r.runErr = nil

	r.cfg = cfg
	r.params = params
	r.window = cfg.Apps[0].Spec().Window

	if !reuse {
		r.sched = sim.NewScheduler()
		r.meter = energy.NewMeter(r.sched)
		// A previously pooled edge executor is bound to the old scheduler and
		// meter; drop it so build() constructs a fresh one if needed.
		r.edgePool = nil
		var err error
		if r.cpu, err = cpu.New(r.sched, r.meter, "cpu", params.CPU); err != nil {
			return err
		}
		if r.mcu, err = mcu.New(r.sched, r.meter, "mcu", params.MCU); err != nil {
			return err
		}
		if r.link, err = link.New(r.sched, r.meter, "link", params.Link); err != nil {
			return err
		}
		if r.mainRadio, err = radio.New(r.sched, r.meter, "radio:main", params.MainRadio); err != nil {
			return err
		}
		if r.mcuRadio, err = radio.New(r.sched, r.meter, "radio:mcu", params.MCURadio); err != nil {
			return err
		}
	} else {
		r.sched.Reset()
		r.meter.Reset()
		if err := r.cpu.Reset(params.CPU); err != nil {
			return err
		}
		if err := r.mcu.Reset(params.MCU); err != nil {
			return err
		}
		if err := r.link.Reset(params.Link); err != nil {
			return err
		}
		if err := r.mainRadio.Reset(params.MainRadio); err != nil {
			return err
		}
		if err := r.mcuRadio.Reset(params.MCURadio); err != nil {
			return err
		}
	}
	r.obs = params.Obs
	r.obs.Bind(r.sched)
	r.cpu.Observe(r.obs)
	r.mcu.Observe(r.obs)
	r.link.Observe(r.obs)
	r.mainRadio.Observe(r.obs)
	r.mcuRadio.Observe(r.obs)
	if cfg.TracePower {
		r.cpu.Track().EnableTrace()
		r.mcu.Track().EnableTrace()
	}
	return nil
}

// renewResult readies the reused RunResult: the two long-lived maps are
// cleared in place, everything else returns to the zero value. WindowFaults,
// Degradations, and Traces must come back as nil, not emptied containers —
// fault-free runs serialize them as null and tests assert it.
func (r *runner) renewResult(pols map[apps.ID]scheme.Policy) {
	if r.res == nil {
		r.res = &RunResult{
			Outputs:      make(map[apps.ID][]WindowResult, len(r.cfg.Apps)),
			PerComponent: make(map[string]energy.Breakdown),
		}
	} else {
		clear(r.res.Outputs)
		clear(r.res.PerComponent)
		*r.res = RunResult{Outputs: r.res.Outputs, PerComponent: r.res.PerComponent}
	}
	r.res.Scheme = r.cfg.Scheme
	r.res.Modes = scheme.ModesOf(pols)
}

// getState pops a scrubbed app state from the pool or constructs one.
func (r *runner) getState() *appState {
	if n := len(r.statePool); n > 0 {
		st := r.statePool[n-1]
		r.statePool = r.statePool[:n-1]
		return st
	}
	return &appState{
		readsDone:       make(map[int]int),
		delivered:       make(map[int]int),
		expected:        make(map[int]int),
		fired:           make(map[int]bool),
		pendingFlushes:  make(map[int]int),
		offloadInFlight: make(map[int]bool),
	}
}

// putState scrubs one app state back to its just-constructed shape and pools
// it. uploadBytes is stashed separately: a nil map is behavior-bearing (the
// transfer chain only stages upload bytes for OnEdge apps), so pooled states
// always carry nil and build() re-attaches a map only to OnEdge placements.
func (r *runner) putState(st *appState) {
	st.app = nil
	st.spec = apps.Spec{}
	st.modeChanges = st.modeChanges[:0]
	st.batchRefs = st.batchRefs[:0]
	clear(st.offloadInFlight)
	clear(st.readsDone)
	clear(st.delivered)
	clear(st.expected)
	clear(st.fired)
	clear(st.pendingFlushes)
	st.batchFill = 0
	st.batchAllocd = 0
	if st.uploadBytes != nil {
		clear(st.uploadBytes)
		r.uploadPool = append(r.uploadPool, st.uploadBytes)
		st.uploadBytes = nil
	}
	st.edgeMI = 0
	st.results = st.results[:0]
	r.statePool = append(r.statePool, st)
}

// getUploadMap pops a cleared uploadBytes map from the pool or makes one.
func (r *runner) getUploadMap() map[int]int {
	if n := len(r.uploadPool); n > 0 {
		m := r.uploadPool[n-1]
		r.uploadPool = r.uploadPool[:n-1]
		return m
	}
	return make(map[int]int)
}

// getStream pops a scrubbed stream from the pool or constructs one.
func (r *runner) getStream() *stream {
	if n := len(r.streamPool); n > 0 {
		s := r.streamPool[n-1]
		r.streamPool = r.streamPool[:n-1]
		return s
	}
	return &stream{}
}

// putStream scrubs one stream and pools it. The retry maps stay allocated
// (cleared): noteRetry lazily creates them on nil, so a pooled pair behaves
// identically to a fresh nil pair.
func (r *runner) putStream(s *stream) {
	s.track = nil
	s.consumers = s.consumers[:0]
	s.attempts = 0
	clear(s.retriesInWindow)
	clear(s.downshifted)
	r.streamPool = append(r.streamPool, s)
}
