package hub

import (
	"fmt"
	"time"

	"iothub/internal/apps"
	"iothub/internal/link"
)

// ResiliencePolicy tunes how the hub absorbs injected hardware faults. The
// policy only arms when a Config carries an active FaultSchedule (or sets
// Resilience explicitly), so fault-free runs never pay for it.
type ResiliencePolicy struct {
	// LinkRetry bounds retransmissions when link corruption or loss is
	// injected: each retry costs real wire time/energy and backs off
	// exponentially.
	LinkRetry link.RetryPolicy
	// WatchdogInterval is how often the hub probes the MCU's liveness. A
	// tripped watchdog (dead MCU) triggers one scheme-degradation step per
	// crash when DegradeOnCrash is set. Zero disables the watchdog and
	// degrades directly at crash time instead.
	WatchdogInterval time.Duration
	// DegradeOnCrash enables the degradation ladder (COM → Batching →
	// Baseline) after MCU crashes.
	DegradeOnCrash bool
	// FlushAtRAMFrac flushes a batch early once MCU RAM usage would cross
	// this fraction of the usable RAM (graceful degradation under pressure;
	// 0 disables).
	FlushAtRAMFrac float64
	// RetryBudgetPerWindow rate-downshifts a stream for the rest of a
	// window once its retries exceed this budget: every other remaining
	// sample is skipped so the QoS deadline survives (0 disables).
	RetryBudgetPerWindow int
	// RadioBufferBytes bounds each radio's driver queue during uplink
	// outages; overflowing bursts are dropped and accounted (0 = unbounded).
	RadioBufferBytes int
	// SoCDegradeFrac steps every app one rung down the scheme ladder the
	// first time the battery's state of charge falls below this fraction of
	// usable capacity — the power-side twin of DegradeOnCrash. Only
	// consulted when a power.Supply is armed (0 disables).
	SoCDegradeFrac float64
	// SoCRecoverFrac gates the brownout reboot: a board power-gated at SoC
	// zero boots again once charge climbs back above this fraction, so it
	// does not flap at the zero crossing (0 = reboot at first positive
	// charge the ledger observes).
	SoCRecoverFrac float64
}

// DefaultResilience returns the policy used when a fault schedule is active
// and the config does not override it.
func DefaultResilience() *ResiliencePolicy {
	return &ResiliencePolicy{
		LinkRetry:            link.RetryPolicy{MaxRetries: 3, Backoff: 500 * time.Microsecond, Factor: 2},
		WatchdogInterval:     50 * time.Millisecond,
		DegradeOnCrash:       true,
		FlushAtRAMFrac:       0.9,
		RetryBudgetPerWindow: 0,
		RadioBufferBytes:     4096,
		SoCDegradeFrac:       0.2,
		SoCRecoverFrac:       0.05,
	}
}

// defaultPowerResilience is the policy a battery-armed, fault-free run uses:
// only the SoC thresholds are set, so none of the fault-side machinery
// (early flush, retry budgets) activates just because a battery is present.
func defaultPowerResilience() *ResiliencePolicy {
	return &ResiliencePolicy{SoCDegradeFrac: 0.2, SoCRecoverFrac: 0.05}
}

// Validate checks the policy's bounds.
func (p *ResiliencePolicy) Validate() error {
	if p == nil {
		return nil
	}
	if p.LinkRetry.MaxRetries < 0 || p.LinkRetry.Backoff < 0 {
		return fmt.Errorf("resilience: negative link retry policy")
	}
	if p.WatchdogInterval < 0 {
		return fmt.Errorf("resilience: negative watchdog interval")
	}
	if p.FlushAtRAMFrac < 0 || p.FlushAtRAMFrac > 1 {
		return fmt.Errorf("resilience: FlushAtRAMFrac %v outside [0,1]", p.FlushAtRAMFrac)
	}
	if p.RetryBudgetPerWindow < 0 || p.RadioBufferBytes < 0 {
		return fmt.Errorf("resilience: negative budget")
	}
	if p.SoCDegradeFrac < 0 || p.SoCDegradeFrac > 1 {
		return fmt.Errorf("resilience: SoCDegradeFrac %v outside [0,1]", p.SoCDegradeFrac)
	}
	if p.SoCRecoverFrac < 0 || p.SoCRecoverFrac > 1 {
		return fmt.Errorf("resilience: SoCRecoverFrac %v outside [0,1]", p.SoCRecoverFrac)
	}
	return nil
}

// Degradation records one step down the scheme ladder for one app.
type Degradation struct {
	// Window is the first window the new mode applies to (in-flight windows
	// keep the mode they started with).
	Window int
	App    apps.ID
	From   Mode
	To     Mode
	// Reason names the trigger, e.g. "watchdog: mcu dead" or "mcu crash".
	Reason string
}

// WindowFaults aggregates the fault and recovery events of one window.
type WindowFaults struct {
	// Retries counts failed sensor read attempts re-tried in the window.
	Retries int
	// Drops counts samples abandoned in the window.
	Drops int
	// Crashes counts MCU reboots that struck during the window.
	Crashes int
	// Recollected counts batch samples the window had to re-read after a
	// crash wiped the MCU RAM.
	Recollected int
	// Degradations counts scheme-ladder steps that took effect this window.
	Degradations int
}
