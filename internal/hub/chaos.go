package hub

// Fault-injection and resilience runtime: the self-firing fault events, the
// watchdog, the degradation ladder, and the retry/downshift bookkeeping. The
// conductor in runner.go stays scheme- and fault-agnostic; everything here is
// inert (nil/zero) when no FaultSchedule is active, keeping fault-free runs
// byte-identical.

import (
	"fmt"
	"time"

	"iothub/internal/energy"
	"iothub/internal/faults"
	"iothub/internal/link"
	"iothub/internal/obs"
	"iothub/internal/radio"
	"iothub/internal/scheme"
	"iothub/internal/sim"
)

// armFaults compiles the fault schedule and wires the self-firing fault
// events, the watchdog, and the radio-side buffers. With an inactive
// schedule everything stays nil and the run is byte-identical to a
// fault-free one.
func (r *runner) armFaults() error {
	r.horizon = time.Duration(r.cfg.Windows) * r.window
	engine, err := faults.NewEngine(r.cfg.FaultSchedule)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrConfig, err)
	}
	r.engine = engine
	r.pol = r.cfg.Resilience
	if engine == nil && r.pol == nil {
		return nil
	}
	if r.pol == nil {
		r.pol = DefaultResilience()
	}
	r.linkFaulty = engine.HasKind(faults.LinkCorrupt, faults.LinkLoss)

	// Radio outages and bounded buffering.
	radios := []struct {
		target string
		rad    *radio.Radio
	}{{"radio:main", r.mainRadio}, {"radio:mcu", r.mcuRadio}}
	for _, rr := range radios {
		target, rad := rr.target, rr.rad
		evs := engine.TimedEvents(faults.RadioOutage, target, r.horizon)
		if len(evs) > 0 && r.pol.RadioBufferBytes > 0 {
			rad.SetQueueLimit(r.pol.RadioBufferBytes)
		}
		for _, ev := range evs {
			if err := rad.AddOutage(ev.At, ev.At.Add(ev.Rule.Duration)); err != nil {
				return fmt.Errorf("%w: %v", ErrConfig, err)
			}
			r.obs.Inc(obs.FaultActivations)
			if r.obs.Enabled() {
				r.obs.Note("radio-outage", fmt.Sprintf("%s off air %v..%v", target, ev.At, ev.At.Add(ev.Rule.Duration)))
			}
		}
	}

	// MCU crashes fire at schedule instants; the watchdog (when enabled)
	// detects the dead board and walks the degradation ladder.
	crashes := engine.TimedEvents(faults.MCUCrash, "mcu", r.horizon)
	for _, ev := range crashes {
		d := ev.Rule.Duration
		if _, err := r.sched.At(ev.At, func() { r.onMCUCrash(d) }); err != nil {
			return err
		}
	}
	if len(crashes) > 0 && r.pol.WatchdogInterval > 0 {
		for at := r.pol.WatchdogInterval; at <= r.horizon; at += r.pol.WatchdogInterval {
			if _, err := r.sched.At(sim.Time(at), r.watchdogProbe); err != nil {
				return err
			}
		}
	}
	return nil
}

// windowFault lazily creates the per-window fault record; fault-free runs
// keep the map nil.
func (r *runner) windowFault(w int) *WindowFaults {
	if r.res.WindowFaults == nil {
		r.res.WindowFaults = make(map[int]*WindowFaults)
	}
	wf := r.res.WindowFaults[w]
	if wf == nil {
		wf = &WindowFaults{}
		r.res.WindowFaults[w] = wf
	}
	return wf
}

// onMCUCrash injects one MCU reboot: resident batch samples are lost and
// must be re-collected, in-flight offloaded windows re-enter the time-budget
// check, and (watchdog disabled) the degradation ladder steps immediately.
func (r *runner) onMCUCrash(d time.Duration) {
	if !r.mcu.Alive() {
		return // absorbed by an ongoing reboot
	}
	now := r.sched.Now()
	if d <= 0 {
		d = r.params.MCU.RebootTime
	}
	r.windowFault(r.windowAt(now)).Crashes++
	r.obs.Inc(obs.FaultActivations)
	if r.obs.Enabled() {
		r.obs.Note("mcu-crash", fmt.Sprintf("window %d, reboot %v", r.windowAt(now), d))
	}

	// Everything resident in batch RAM is gone: rewind the owning windows'
	// read progress and queue re-reads for after the reboot.
	var redo []batchRef
	for _, st := range r.states {
		for _, ref := range st.batchRefs {
			w := ref.k / ref.s.perWindow
			st.readsDone[w]--
			redo = append(redo, ref)
		}
		r.res.RecollectedSamples += len(st.batchRefs)
		if len(st.batchRefs) > 0 {
			r.windowFault(r.windowAt(now)).Recollected += len(st.batchRefs)
		}
		st.batchRefs = nil
		// The buffer bytes evaporate with the RAM; zeroing the counters
		// keeps flushBatch from freeing bytes that no longer exist.
		st.batchFill = 0
		st.batchAllocd = 0

		// Offloaded windows whose computation was in flight restart from
		// scratch after the reboot — re-enter the MCU time-budget check.
		for w := range st.offloadInFlight {
			r.checkOffloadBudget(st, w, now.Add(d))
		}
	}
	// The in-situ meter's sample buffer lives in the same RAM: the crash
	// drops it in one burst and resets the instrument's duty-cycle phase.
	r.meterOnCrash()
	if err := r.mcu.Crash(d, func() { r.afterReboot(redo) }); err != nil {
		r.fail(err)
		return
	}
	if r.pol != nil && r.pol.DegradeOnCrash && r.pol.WatchdogInterval <= 0 {
		r.lastDegradedCrash = r.mcu.Crashes()
		r.degradeAll("mcu crash")
	}
}

// afterReboot re-reserves the offload footprint (the binary reloads from
// flash) and re-issues the reads the crash destroyed, serialized so each
// stream's bus transactions do not overlap.
func (r *runner) afterReboot(redo []batchRef) {
	if r.offloadNeed > 0 && r.anyOffloadedAhead() {
		if err := r.mcu.Alloc(r.offloadNeed); err != nil {
			r.fail(err)
			return
		}
	}
	for i, ref := range redo {
		ref := ref
		delay := time.Duration(i) * ref.s.spec.ReadTime
		if _, err := r.sched.After(delay, func() { r.startRead(ref.s, ref.k) }); err != nil {
			r.fail(err)
			return
		}
	}
}

// anyOffloadedAhead reports whether any app still computes on the MCU in the
// current or a future window.
func (r *runner) anyOffloadedAhead() bool {
	from := r.windowAt(r.sched.Now())
	for _, st := range r.states {
		for w := from; w < r.cfg.Windows; w++ {
			if st.policyFor(w).PlaceCompute() == scheme.OnMCU {
				return true
			}
		}
	}
	return false
}

// checkOffloadBudget re-enters the planner's MCU time-budget check for an
// offloaded window: will the (re)computation still meet the QoS deadline?
func (r *runner) checkOffloadBudget(st *appState, w int, earliestStart sim.Time) {
	r.res.OffloadBudgetChecks++
	deadline := sim.Time(int64(w+3) * int64(r.window))
	if earliestStart.Add(st.mcuComputeTime) > deadline {
		r.res.OffloadBudgetMisses++
	}
}

// watchdogProbe checks MCU liveness; a dead board walks the degradation
// ladder once per crash.
func (r *runner) watchdogProbe() {
	if r.mcu.Alive() || r.pol == nil || !r.pol.DegradeOnCrash {
		return
	}
	if r.lastDegradedCrash >= r.mcu.Crashes() {
		return
	}
	r.lastDegradedCrash = r.mcu.Crashes()
	r.degradeAll("watchdog: mcu dead")
}

// degradeAll steps every app one rung down the scheme ladder (Offloaded →
// Batched → PerSample, see scheme.Degrade) starting at the next window;
// in-flight windows keep the mode they started with.
func (r *runner) degradeAll(reason string) {
	wNext := r.windowAt(r.sched.Now()) + 1
	if wNext >= r.cfg.Windows {
		return // no future window left to protect
	}
	changed := false
	for _, st := range r.states {
		from := st.modeFor(wNext)
		to, ok := scheme.Degrade(from)
		if !ok {
			continue // the ladder's floor
		}
		st.modeChanges = append(st.modeChanges, modeChange{fromWindow: wNext, mode: to})
		r.res.Degradations = append(r.res.Degradations, Degradation{
			Window: wNext, App: st.spec.ID, From: from, To: to, Reason: reason,
		})
		r.windowFault(wNext).Degradations++
		if r.obs.Enabled() {
			r.obs.Note("degrade", fmt.Sprintf("%s %v->%v from window %d: %s", st.spec.ID, from, to, wNext, reason))
		}
		changed = true
	}
	if changed {
		r.retuneGovernor(wNext)
	}
}

// retuneGovernor recomputes the CPU idle policy after a degradation: a
// formerly all-offloaded hub now fields interrupts again.
func (r *runner) retuneGovernor(w int) {
	allOffloaded := true
	minGap := r.window
	for _, st := range r.states {
		if st.policyFor(w).PlaceCompute() != scheme.OnMCU {
			allOffloaded = false
		}
	}
	for _, s := range r.streams {
		for _, l := range s.consumers {
			if l.st.policyFor(w).OnSampleReady() == scheme.Interrupt && s.period*time.Duration(l.stride) < minGap {
				minGap = s.period
			}
		}
	}
	r.gapHint = minGap
	r.allowDeep = allOffloaded
}

// noteRetry feeds the per-window fault record and the rate-downshift budget.
func (r *runner) noteRetry(s *stream, k int) {
	w := k / s.perWindow
	r.windowFault(w).Retries++
	if r.pol == nil || r.pol.RetryBudgetPerWindow <= 0 {
		return
	}
	if s.retriesInWindow == nil {
		s.retriesInWindow = make(map[int]int)
		s.downshifted = make(map[int]bool)
	}
	s.retriesInWindow[w]++
	if s.retriesInWindow[w] > r.pol.RetryBudgetPerWindow && !s.downshifted[w] {
		s.downshifted[w] = true
		r.res.RateDownshifts++
		if r.obs.Enabled() {
			r.obs.Note("rate-downshift", fmt.Sprintf("%s window %d over retry budget", s.id, w))
		}
	}
}

// linkSend puts n bytes on the wire, taking the reliable (CRC + bounded
// retransmission) path only when link faults are actually injected.
func (r *runner) linkSend(n int) (time.Duration, bool, error) {
	if !r.linkFaulty {
		d, err := r.link.Transmit(n, energy.DataTransfer)
		return d, true, err
	}
	rep, err := r.link.TransmitReliable(n, energy.DataTransfer, r.pol.LinkRetry,
		func(int) link.Outcome {
			now := r.sched.Now()
			_, corrupt := r.engine.Fires(faults.LinkCorrupt, "link", now)
			_, lost := r.engine.Fires(faults.LinkLoss, "link", now)
			switch {
			case lost:
				return link.TxLost
			case corrupt:
				return link.TxCorrupt
			default:
				return link.TxOK
			}
		})
	r.res.LinkRetransmits += rep.Attempts - 1
	r.res.LinkCorruptFrames += rep.Corrupted
	r.res.LinkLostFrames += rep.Lost
	if err == nil && !rep.Delivered {
		r.res.LinkAbortedTransfers++
		if r.obs.Enabled() {
			r.obs.Note("link-abort", fmt.Sprintf("%d bytes undelivered after %d attempts", n, rep.Attempts))
		}
	}
	return rep.Duration, rep.Delivered, err
}
