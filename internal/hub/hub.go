// Package hub composes the simulated IoT platform — CPU board, MCU board,
// link, and sensors — and executes workloads under the paper's five
// execution schemes:
//
//   - Baseline: one MCU→CPU interrupt and transfer per sensor sample; the
//     CPU stalls between samples (gaps are below the sleep break-even).
//   - Batching: the MCU accumulates a whole window in its RAM and raises one
//     interrupt; the CPU suspends while the MCU senses. If concurrent
//     batches exceed the MCU's free RAM, a batch flushes early (more
//     interrupts, still far fewer than Baseline).
//   - COM: the app runs on the MCU; per-sample interrupts and transfers
//     disappear and only a small result notification crosses the link (bulk
//     upstream traffic leaves through the MCU's own radio). The CPU
//     power-gates into deep sleep.
//   - BCOM: COM for the offloadable apps, Batching for the heavy ones.
//   - BEAM: the prior work's optimization — concurrent apps sharing a
//     sensor share one read, one interrupt, and one transfer per sample.
//
// Functional note: under BEAM the physical hub would deliver identical
// sample values to all sharing apps; the simulator keeps each app's own
// synthetic source for its computation (the energy model only depends on
// sample counts and sizes, which are shared exactly as in BEAM).
package hub

import (
	"fmt"
	"maps"
	"time"

	"iothub/internal/apps"
	"iothub/internal/energy"
	"iothub/internal/faults"
	"iothub/internal/obs"
	"iothub/internal/power"
	"iothub/internal/scheme"
	"iothub/internal/sensor"
	"iothub/internal/sim"
)

// Scheme selects the execution scheme for a run. The type (with its String,
// Parse, and text-marshaling behavior) lives in internal/scheme, where every
// scheme is a registered composition of per-app policies; the aliases here
// keep hub.Baseline etc. as the stable public spelling.
type Scheme = scheme.Scheme

// Execution schemes (§III, §IV).
const (
	Baseline = scheme.Baseline
	Batching = scheme.Batching
	COM      = scheme.COM
	BCOM     = scheme.BCOM
	BEAM     = scheme.BEAM
	Hybrid   = scheme.Hybrid
	ECOM     = scheme.ECOM
)

// ParseScheme resolves a case-insensitive scheme name against the registry
// ("baseline", "batching", "com", "bcom", "beam") — the CLI-facing inverse
// of Scheme.String.
func ParseScheme(name string) (Scheme, error) { return scheme.Parse(name) }

// Mode is the per-app execution decision inside a scheme (see
// internal/scheme: every Mode maps to one built-in Policy).
type Mode = scheme.Mode

// Per-app modes.
const (
	// PerSample interrupts the CPU for every sensor sample (Baseline/BEAM).
	PerSample = scheme.PerSample
	// Batched buffers a window at the MCU and transfers in bulk.
	Batched = scheme.Batched
	// Offloaded runs the app-specific computation on the MCU.
	Offloaded = scheme.Offloaded
	// Uploaded buffers a window at the MCU, then uploads it through the
	// main radio and computes in the app's edge container.
	Uploaded = scheme.Uploaded
)

// Config describes one simulation run.
type Config struct {
	// Apps execute concurrently for the whole run.
	Apps []apps.App
	// Scheme picks the execution scheme. BCOM requires Assign (the planner
	// in internal/core produces it); for the other schemes Assign is
	// derived automatically and must be nil.
	Scheme Scheme
	// Assign overrides the per-app mode (BCOM and Hybrid require it).
	Assign map[apps.ID]Mode
	// Windows is how many QoS windows to simulate (>= 1).
	Windows int
	// Params is the hardware calibration; zero value means DefaultParams.
	Params *Params
	// TracePower records CPU and MCU power-state timelines (Figure 5).
	TracePower bool
	// SkipAppCompute skips executing the real user-level computations
	// (energy/timing are still modeled). Useful for pure-energy sweeps.
	SkipAppCompute bool
	// Faults optionally injects sensor read failures (§II-B Task I: the
	// availability check can fail and the MCU retries or drops the sample).
	Faults *FaultPlan
	// FaultSchedule optionally injects hardware-layer faults — link frame
	// corruption/loss, MCU crashes, sensor stuck/slow modes, radio outages —
	// from a deterministic seedable schedule (see internal/faults). A nil or
	// empty schedule leaves the run byte-identical to a fault-free one.
	FaultSchedule *faults.Schedule
	// Resilience tunes how the hub absorbs injected faults (retry policy,
	// watchdog, degradation ladder, buffers). Nil means DefaultResilience
	// when FaultSchedule is active, and no resilience machinery otherwise.
	Resilience *ResiliencePolicy
	// Meter optionally overrides Params.Meter with an in-situ measurement
	// instrument (DESIGN.md §13); nil leaves the params' meter (default: the
	// free external one) in effect.
	Meter *obs.MeterModel
	// Power optionally overrides Params.Power with a battery + harvest
	// supply (DESIGN.md §14); nil leaves the params' supply (default: mains
	// power, the golden-corpus asymptote) in effect.
	Power *power.Supply
}

// NoRetries is the FaultPlan.MaxRetries sentinel for "drop on first
// failure": zero cannot mean it because the zero value must keep the
// default of one retry.
const NoRetries = -1

// FaultPlan describes deterministic sensor-failure injection.
type FaultPlan struct {
	// ReadFailEvery makes every Nth read of a sensor fail its availability
	// check (N >= 1; 1 = every read fails). The failed attempt still costs
	// the full bus transaction and MCU check time.
	ReadFailEvery map[sensor.ID]int
	// MaxRetries bounds re-reads per sample; once exhausted the sample is
	// dropped and the window completes with fewer samples. Values below 1
	// are floored to the default of 1 — except the NoRetries sentinel,
	// which disables re-reads entirely.
	MaxRetries int
}

func (f *FaultPlan) failEvery(id sensor.ID) int {
	if f == nil {
		return 0
	}
	return f.ReadFailEvery[id]
}

func (f *FaultPlan) maxRetries() int {
	switch {
	case f == nil:
		return 1
	case f.MaxRetries == NoRetries:
		return 0
	case f.MaxRetries < 1:
		return 1
	default:
		return f.MaxRetries
	}
}

// WindowResult is one app's output for one window.
type WindowResult struct {
	Window int
	// At is the virtual time the result became available.
	At sim.Time
	// Result is the app's real output (zero when SkipAppCompute).
	Result apps.Result
}

// RunResult aggregates a simulation run.
type RunResult struct {
	// Scheme and Modes record what actually executed.
	Scheme Scheme
	Modes  map[apps.ID]Mode

	// Energy is the hub-wide per-routine energy in joules.
	Energy energy.Breakdown
	// PerComponent is each component's per-routine energy ("cpu", "mcu",
	// "link", "sensor:S4:A2", ...).
	PerComponent map[string]energy.Breakdown

	// CPUBusy / MCUBusy are cumulative execution times per routine.
	CPUBusy map[energy.Routine]time.Duration
	MCUBusy map[energy.Routine]time.Duration

	// Interrupts is the number of MCU→CPU interrupts fielded.
	Interrupts int
	// BytesTransferred counts payload bytes crossing the link.
	BytesTransferred int
	// BatchFlushes counts bulk transfers (Batched mode): one per window per
	// app unless MCU RAM pressure forces early flushes.
	BatchFlushes int
	// CPUWakes counts sleep→active transitions.
	CPUWakes int
	// QoSViolations counts window results delivered after the deadline
	// (two window periods after the window closes).
	QoSViolations int
	// ReadRetries counts failed sensor read attempts that were retried
	// (fault injection, §II-B Task I).
	ReadRetries int
	// DroppedSamples counts reads abandoned after exhausting retries; the
	// affected windows complete with fewer samples.
	DroppedSamples int
	// UpstreamBytes counts window outputs pushed to the network (main-board
	// WiFi for on-CPU apps, the MCU's radio for offloaded ones, the edge's
	// own egress for uploaded ones).
	UpstreamBytes int

	// Edge-tier accounting; all zero (and absent from JSON) for runs with
	// no OnEdge placement, which keeps the pre-edge golden corpus
	// byte-identical.
	// EdgeUploads / EdgeUploadBytes count window uploads shipped to the
	// edge and the payload bytes the main radio carried up.
	EdgeUploads     int `json:",omitempty"`
	EdgeUploadBytes int `json:",omitempty"`
	// EdgeColdStarts counts container init warmups (first window of each
	// uploaded app).
	EdgeColdStarts int `json:",omitempty"`
	// EdgeUpstreamBytes counts window outputs that egressed directly from
	// the edge (a subset of UpstreamBytes).
	EdgeUpstreamBytes int `json:",omitempty"`

	// In-situ meter accounting (DESIGN.md §13); all zero (and absent from
	// JSON) unless a MeterModel is armed, which keeps the unobserved golden
	// corpus byte-identical.
	// MeterSamples / MeterDroppedSamples count readings taken and lost (RAM
	// pressure or MCU reboots); MeterCycles is the MCU cycle budget the
	// instrument consumed; MeterFlushes / MeterBytes count buffer flushes
	// and the record bytes they persisted.
	MeterSamples        int   `json:",omitempty"`
	MeterDroppedSamples int   `json:",omitempty"`
	MeterCycles         int64 `json:",omitempty"`
	MeterFlushes        int   `json:",omitempty"`
	MeterBytes          int   `json:",omitempty"`

	// Battery/harvest ledger accounting (DESIGN.md §14); all zero (and
	// absent from JSON) unless a power.Supply is armed, which keeps the
	// mains-powered golden corpus byte-identical.
	// BatteryCapacityJ is the usable capacity the run started from;
	// BatterySoCJ / BatteryMinSoCJ are the final and lowest state of charge
	// the ledger observed; BatteryHarvestJ is the total harvested income.
	BatteryCapacityJ float64 `json:",omitempty"`
	BatterySoCJ      float64 `json:",omitempty"`
	BatteryMinSoCJ   float64 `json:",omitempty"`
	BatteryHarvestJ  float64 `json:",omitempty"`
	// Brownouts counts SoC-zero power gates; BrownoutTime is the total
	// virtual time the board spent gated; BatterySurvival is the time of
	// the first zero crossing (the run's Duration when charge never ran
	// out — the abl-harvest ranking metric).
	Brownouts       int           `json:",omitempty"`
	BrownoutTime    time.Duration `json:",omitempty"`
	BatterySurvival time.Duration `json:",omitempty"`

	// Sample ledger (run invariant: ScheduledSamples + RecollectedSamples ==
	// DeliveredSamples + DroppedSamples + DownshiftSkipped).
	// ScheduledSamples counts sensor reads the run planned.
	ScheduledSamples int
	// DeliveredSamples counts reads that reached the MCU formatted.
	DeliveredSamples int

	// Fault-injection & resilience accounting. All fields stay zero (and
	// the maps/slices nil) when no FaultSchedule is active.
	// LinkRetransmits counts frames re-sent after corruption or loss.
	LinkRetransmits int
	// LinkCorruptFrames / LinkLostFrames count the failed frames by mode.
	LinkCorruptFrames int
	LinkLostFrames    int
	// LinkAbortedTransfers counts transfers undelivered after the retry
	// policy gave up.
	LinkAbortedTransfers int
	// MCUCrashes counts injected MCU reboots.
	MCUCrashes int
	// RecollectedSamples counts batch-buffered samples lost to a crash and
	// re-read from the sensors.
	RecollectedSamples int
	// SlowReads / StuckSamples count sensor latency and stuck-at faults.
	SlowReads    int
	StuckSamples int
	// RadioDeferred counts uplink bursts that waited out an outage;
	// RadioDroppedBursts/Bytes count what the bounded buffer shed.
	RadioDeferred      int
	RadioDroppedBursts int
	RadioDroppedBytes  int
	// RateDownshifts counts streams that halved their in-window rate after
	// retries threatened the QoS deadline; DownshiftSkipped counts the
	// reads so elided.
	RateDownshifts   int
	DownshiftSkipped int
	// EarlyFlushes counts batch flushes forced by RAM-pressure escalation
	// (FlushAtRAMFrac) rather than by window completion or allocation
	// failure.
	EarlyFlushes int
	// OffloadBudgetChecks counts entries into the MCU time-budget check
	// (each offloaded window, plus re-entries after a reboot);
	// OffloadBudgetMisses counts checks that predicted a deadline miss.
	OffloadBudgetChecks int
	OffloadBudgetMisses int
	// Degradations records every scheme-ladder step the resilience layer
	// took (COM → Batching → Baseline), in the order taken.
	Degradations []Degradation
	// WindowFaults aggregates fault and recovery events per window; nil for
	// fault-free runs.
	WindowFaults map[int]*WindowFaults

	// Duration is the virtual time the run covered.
	Duration time.Duration
	// Window is the QoS period the apps ran at.
	Window time.Duration
	// Outputs holds each app's per-window results.
	Outputs map[apps.ID][]WindowResult
	// Traces holds power timelines when TracePower was set.
	Traces map[string][]energy.Sample
}

// TotalJoules is the hub-wide energy of the run.
func (r *RunResult) TotalJoules() float64 { return r.Energy.Total() }

// Clone deep-copies every container an Arena recycles, so the copy stays
// valid after the arena's next Run (see the retention contract in arena.go).
// App Result payloads inside Outputs are allocated fresh each run and never
// pooled; the clone shares them.
func (r *RunResult) Clone() *RunResult {
	c := *r
	c.Modes = maps.Clone(r.Modes)
	c.Energy = append(energy.Breakdown(nil), r.Energy...)
	if r.PerComponent != nil {
		c.PerComponent = make(map[string]energy.Breakdown, len(r.PerComponent))
		for k, v := range r.PerComponent {
			c.PerComponent[k] = append(energy.Breakdown(nil), v...)
		}
	}
	c.CPUBusy = maps.Clone(r.CPUBusy)
	c.MCUBusy = maps.Clone(r.MCUBusy)
	if r.Degradations != nil {
		c.Degradations = append([]Degradation(nil), r.Degradations...)
	}
	if r.WindowFaults != nil {
		c.WindowFaults = make(map[int]*WindowFaults, len(r.WindowFaults))
		for k, v := range r.WindowFaults {
			w := *v
			c.WindowFaults[k] = &w
		}
	}
	if r.Outputs != nil {
		c.Outputs = make(map[apps.ID][]WindowResult, len(r.Outputs))
		for k, v := range r.Outputs {
			c.Outputs[k] = append([]WindowResult(nil), v...)
		}
	}
	if r.Traces != nil {
		c.Traces = make(map[string][]energy.Sample, len(r.Traces))
		for k, v := range r.Traces {
			c.Traces[k] = append([]energy.Sample(nil), v...)
		}
	}
	return &c
}

// RoutineLatency is the per-routine processing time of the run, the metric
// behind Fig. 8's timing breakdown: collection on the MCU, interrupt
// handling and data transfer on the CPU, and app-specific computation on
// whichever processor ran it. The MCU's participation in transfers mirrors
// the CPU's and is not double-counted.
func (r *RunResult) RoutineLatency() map[energy.Routine]time.Duration {
	return map[energy.Routine]time.Duration{
		energy.DataCollection: r.MCUBusy[energy.DataCollection],
		energy.Interrupt:      r.CPUBusy[energy.Interrupt],
		energy.DataTransfer:   r.CPUBusy[energy.DataTransfer],
		energy.AppCompute:     r.CPUBusy[energy.AppCompute] + r.MCUBusy[energy.AppCompute],
	}
}

// BusyLatency sums RoutineLatency — the paper's Fig. 13 "performance"
// denominator (speedup = Baseline BusyLatency / COM BusyLatency).
func (r *RunResult) BusyLatency() time.Duration {
	var total time.Duration
	for _, d := range r.RoutineLatency() {
		total += d
	}
	return total
}

// LatencyStats summarizes output freshness: how long after its window closed
// each result became available.
type LatencyStats struct {
	Mean, Max time.Duration
	Count     int
}

// OutputLatency computes freshness stats over every app's window results.
// Batching and COM trade a bounded amount of it for energy: the batch must
// finish transferring (and the MCU must finish computing) after the window
// closes.
func (r *RunResult) OutputLatency() LatencyStats {
	var stats LatencyStats
	var sum time.Duration
	for _, outs := range r.Outputs {
		for _, wr := range outs {
			deadline := sim.Time(int64(wr.Window+1) * int64(r.Window))
			lat := wr.At.Duration() - deadline.Duration()
			if lat < 0 {
				lat = 0
			}
			sum += lat
			if lat > stats.Max {
				stats.Max = lat
			}
			stats.Count++
		}
	}
	if stats.Count > 0 {
		stats.Mean = sum / time.Duration(stats.Count)
	}
	return stats
}

// Errors callers match with errors.Is. The sentinels live in internal/scheme
// (which owns config authority); the aliases preserve errors.Is identity for
// every existing caller.
var (
	ErrConfig        = scheme.ErrConfig
	ErrUnoffloadable = scheme.ErrUnoffloadable
)

// validate normalizes and checks the configuration.
func (c *Config) validate() (Params, error) {
	if len(c.Apps) == 0 {
		return Params{}, fmt.Errorf("%w: no apps", ErrConfig)
	}
	if c.Windows < 1 {
		return Params{}, fmt.Errorf("%w: windows %d", ErrConfig, c.Windows)
	}
	params := DefaultParams()
	if c.Params != nil {
		params = *c.Params
	}
	if c.Meter != nil {
		params.Meter = *c.Meter
	}
	if c.Power != nil {
		params.Power = *c.Power
	}
	if err := params.Validate(); err != nil {
		return Params{}, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	if err := c.FaultSchedule.Validate(); err != nil {
		return Params{}, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	if err := c.Resilience.Validate(); err != nil {
		return Params{}, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	def, err := scheme.Lookup(c.Scheme)
	if err != nil {
		return Params{}, err
	}
	if err := def.Validate(c.schemeView()); err != nil {
		return Params{}, err
	}
	seen := make(map[apps.ID]bool, len(c.Apps))
	window := time.Duration(0)
	for _, a := range c.Apps {
		sp := a.Spec()
		if err := sp.Validate(); err != nil {
			return Params{}, fmt.Errorf("%w: %v", ErrConfig, err)
		}
		if seen[sp.ID] {
			return Params{}, fmt.Errorf("%w: app %s listed twice", ErrConfig, sp.ID)
		}
		seen[sp.ID] = true
		if window == 0 {
			window = sp.Window
		} else if sp.Window != window {
			return Params{}, fmt.Errorf("%w: mixed window lengths (%v vs %v)", ErrConfig, window, sp.Window)
		}
	}
	return params, nil
}

// schemeView projects the config onto the slice a scheme definition is
// allowed to see (specs, the optional partition, the QoS window).
func (c *Config) schemeView() scheme.ConfigView {
	specs := make([]apps.Spec, len(c.Apps))
	for i, a := range c.Apps {
		specs[i] = a.Spec()
	}
	return scheme.ConfigView{Specs: specs, Assign: c.Assign, Window: specs[0].Window}
}

// policies resolves each app's execution policy through the scheme registry.
func (c *Config) policies() (map[apps.ID]scheme.Policy, error) {
	def, err := scheme.Lookup(c.Scheme)
	if err != nil {
		return nil, err
	}
	return def.Policies(c.schemeView())
}
