// Package hub composes the simulated IoT platform — CPU board, MCU board,
// link, and sensors — and executes workloads under the paper's five
// execution schemes:
//
//   - Baseline: one MCU→CPU interrupt and transfer per sensor sample; the
//     CPU stalls between samples (gaps are below the sleep break-even).
//   - Batching: the MCU accumulates a whole window in its RAM and raises one
//     interrupt; the CPU suspends while the MCU senses. If concurrent
//     batches exceed the MCU's free RAM, a batch flushes early (more
//     interrupts, still far fewer than Baseline).
//   - COM: the app runs on the MCU; per-sample interrupts and transfers
//     disappear and only a small result notification crosses the link (bulk
//     upstream traffic leaves through the MCU's own radio). The CPU
//     power-gates into deep sleep.
//   - BCOM: COM for the offloadable apps, Batching for the heavy ones.
//   - BEAM: the prior work's optimization — concurrent apps sharing a
//     sensor share one read, one interrupt, and one transfer per sample.
//
// Functional note: under BEAM the physical hub would deliver identical
// sample values to all sharing apps; the simulator keeps each app's own
// synthetic source for its computation (the energy model only depends on
// sample counts and sizes, which are shared exactly as in BEAM).
package hub

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"iothub/internal/apps"
	"iothub/internal/energy"
	"iothub/internal/faults"
	"iothub/internal/sensor"
	"iothub/internal/sim"
)

// Scheme selects the execution scheme for a run.
type Scheme int

// Execution schemes (§III, §IV).
const (
	Baseline Scheme = iota + 1
	Batching
	COM
	BCOM
	BEAM
)

// String names the scheme as the paper's figures do.
func (s Scheme) String() string {
	switch s {
	case Baseline:
		return "Baseline"
	case Batching:
		return "Batching"
	case COM:
		return "COM"
	case BCOM:
		return "BCOM"
	case BEAM:
		return "BEAM"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// ParseScheme resolves a case-insensitive scheme name ("baseline",
// "batching", "com", "bcom", "beam") — the CLI-facing inverse of String.
func ParseScheme(name string) (Scheme, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "baseline":
		return Baseline, nil
	case "batching":
		return Batching, nil
	case "com":
		return COM, nil
	case "bcom":
		return BCOM, nil
	case "beam":
		return BEAM, nil
	default:
		return 0, fmt.Errorf("%w: unknown scheme %q", ErrConfig, name)
	}
}

// MarshalText encodes the scheme by name so configs and results serialize
// to JSON as "Batching" rather than a bare integer.
func (s Scheme) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText is the inverse of MarshalText (it accepts any case,
// delegating to ParseScheme).
func (s *Scheme) UnmarshalText(text []byte) error {
	parsed, err := ParseScheme(string(text))
	if err != nil {
		return err
	}
	*s = parsed
	return nil
}

// Mode is the per-app execution decision inside a scheme.
type Mode int

// Per-app modes.
const (
	// PerSample interrupts the CPU for every sensor sample (Baseline/BEAM).
	PerSample Mode = iota + 1
	// Batched buffers a window at the MCU and transfers in bulk.
	Batched
	// Offloaded runs the app-specific computation on the MCU.
	Offloaded
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case PerSample:
		return "PerSample"
	case Batched:
		return "Batched"
	case Offloaded:
		return "Offloaded"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// MarshalText encodes the mode by name (see Scheme.MarshalText).
func (m Mode) MarshalText() ([]byte, error) { return []byte(m.String()), nil }

// UnmarshalText is the inverse of MarshalText.
func (m *Mode) UnmarshalText(text []byte) error {
	for _, known := range []Mode{PerSample, Batched, Offloaded} {
		if known.String() == string(text) {
			*m = known
			return nil
		}
	}
	return fmt.Errorf("%w: unknown mode %q", ErrConfig, text)
}

// Config describes one simulation run.
type Config struct {
	// Apps execute concurrently for the whole run.
	Apps []apps.App
	// Scheme picks the execution scheme. BCOM requires Assign (the planner
	// in internal/core produces it); for the other schemes Assign is
	// derived automatically and must be nil.
	Scheme Scheme
	// Assign overrides the per-app mode (required for BCOM only).
	Assign map[apps.ID]Mode
	// Windows is how many QoS windows to simulate (>= 1).
	Windows int
	// Params is the hardware calibration; zero value means DefaultParams.
	Params *Params
	// TracePower records CPU and MCU power-state timelines (Figure 5).
	TracePower bool
	// SkipAppCompute skips executing the real user-level computations
	// (energy/timing are still modeled). Useful for pure-energy sweeps.
	SkipAppCompute bool
	// Faults optionally injects sensor read failures (§II-B Task I: the
	// availability check can fail and the MCU retries or drops the sample).
	Faults *FaultPlan
	// FaultSchedule optionally injects hardware-layer faults — link frame
	// corruption/loss, MCU crashes, sensor stuck/slow modes, radio outages —
	// from a deterministic seedable schedule (see internal/faults). A nil or
	// empty schedule leaves the run byte-identical to a fault-free one.
	FaultSchedule *faults.Schedule
	// Resilience tunes how the hub absorbs injected faults (retry policy,
	// watchdog, degradation ladder, buffers). Nil means DefaultResilience
	// when FaultSchedule is active, and no resilience machinery otherwise.
	Resilience *ResiliencePolicy
}

// NoRetries is the FaultPlan.MaxRetries sentinel for "drop on first
// failure": zero cannot mean it because the zero value must keep the
// default of one retry.
const NoRetries = -1

// FaultPlan describes deterministic sensor-failure injection.
type FaultPlan struct {
	// ReadFailEvery makes every Nth read of a sensor fail its availability
	// check (N >= 1; 1 = every read fails). The failed attempt still costs
	// the full bus transaction and MCU check time.
	ReadFailEvery map[sensor.ID]int
	// MaxRetries bounds re-reads per sample; once exhausted the sample is
	// dropped and the window completes with fewer samples. Values below 1
	// are floored to the default of 1 — except the NoRetries sentinel,
	// which disables re-reads entirely.
	MaxRetries int
}

func (f *FaultPlan) failEvery(id sensor.ID) int {
	if f == nil {
		return 0
	}
	return f.ReadFailEvery[id]
}

func (f *FaultPlan) maxRetries() int {
	switch {
	case f == nil:
		return 1
	case f.MaxRetries == NoRetries:
		return 0
	case f.MaxRetries < 1:
		return 1
	default:
		return f.MaxRetries
	}
}

// WindowResult is one app's output for one window.
type WindowResult struct {
	Window int
	// At is the virtual time the result became available.
	At sim.Time
	// Result is the app's real output (zero when SkipAppCompute).
	Result apps.Result
}

// RunResult aggregates a simulation run.
type RunResult struct {
	// Scheme and Modes record what actually executed.
	Scheme Scheme
	Modes  map[apps.ID]Mode

	// Energy is the hub-wide per-routine energy in joules.
	Energy energy.Breakdown
	// PerComponent is each component's per-routine energy ("cpu", "mcu",
	// "link", "sensor:S4:A2", ...).
	PerComponent map[string]energy.Breakdown

	// CPUBusy / MCUBusy are cumulative execution times per routine.
	CPUBusy map[energy.Routine]time.Duration
	MCUBusy map[energy.Routine]time.Duration

	// Interrupts is the number of MCU→CPU interrupts fielded.
	Interrupts int
	// BytesTransferred counts payload bytes crossing the link.
	BytesTransferred int
	// BatchFlushes counts bulk transfers (Batched mode): one per window per
	// app unless MCU RAM pressure forces early flushes.
	BatchFlushes int
	// CPUWakes counts sleep→active transitions.
	CPUWakes int
	// QoSViolations counts window results delivered after the deadline
	// (two window periods after the window closes).
	QoSViolations int
	// ReadRetries counts failed sensor read attempts that were retried
	// (fault injection, §II-B Task I).
	ReadRetries int
	// DroppedSamples counts reads abandoned after exhausting retries; the
	// affected windows complete with fewer samples.
	DroppedSamples int
	// UpstreamBytes counts window outputs pushed to the network (main-board
	// WiFi for on-CPU apps, the MCU's radio for offloaded ones).
	UpstreamBytes int

	// Sample ledger (run invariant: ScheduledSamples + RecollectedSamples ==
	// DeliveredSamples + DroppedSamples + DownshiftSkipped).
	// ScheduledSamples counts sensor reads the run planned.
	ScheduledSamples int
	// DeliveredSamples counts reads that reached the MCU formatted.
	DeliveredSamples int

	// Fault-injection & resilience accounting. All fields stay zero (and
	// the maps/slices nil) when no FaultSchedule is active.
	// LinkRetransmits counts frames re-sent after corruption or loss.
	LinkRetransmits int
	// LinkCorruptFrames / LinkLostFrames count the failed frames by mode.
	LinkCorruptFrames int
	LinkLostFrames    int
	// LinkAbortedTransfers counts transfers undelivered after the retry
	// policy gave up.
	LinkAbortedTransfers int
	// MCUCrashes counts injected MCU reboots.
	MCUCrashes int
	// RecollectedSamples counts batch-buffered samples lost to a crash and
	// re-read from the sensors.
	RecollectedSamples int
	// SlowReads / StuckSamples count sensor latency and stuck-at faults.
	SlowReads    int
	StuckSamples int
	// RadioDeferred counts uplink bursts that waited out an outage;
	// RadioDroppedBursts/Bytes count what the bounded buffer shed.
	RadioDeferred      int
	RadioDroppedBursts int
	RadioDroppedBytes  int
	// RateDownshifts counts streams that halved their in-window rate after
	// retries threatened the QoS deadline; DownshiftSkipped counts the
	// reads so elided.
	RateDownshifts   int
	DownshiftSkipped int
	// EarlyFlushes counts batch flushes forced by RAM-pressure escalation
	// (FlushAtRAMFrac) rather than by window completion or allocation
	// failure.
	EarlyFlushes int
	// OffloadBudgetChecks counts entries into the MCU time-budget check
	// (each offloaded window, plus re-entries after a reboot);
	// OffloadBudgetMisses counts checks that predicted a deadline miss.
	OffloadBudgetChecks int
	OffloadBudgetMisses int
	// Degradations records every scheme-ladder step the resilience layer
	// took (COM → Batching → Baseline), in the order taken.
	Degradations []Degradation
	// WindowFaults aggregates fault and recovery events per window; nil for
	// fault-free runs.
	WindowFaults map[int]*WindowFaults

	// Duration is the virtual time the run covered.
	Duration time.Duration
	// Window is the QoS period the apps ran at.
	Window time.Duration
	// Outputs holds each app's per-window results.
	Outputs map[apps.ID][]WindowResult
	// Traces holds power timelines when TracePower was set.
	Traces map[string][]energy.Sample
}

// TotalJoules is the hub-wide energy of the run.
func (r *RunResult) TotalJoules() float64 { return r.Energy.Total() }

// RoutineLatency is the per-routine processing time of the run, the metric
// behind Fig. 8's timing breakdown: collection on the MCU, interrupt
// handling and data transfer on the CPU, and app-specific computation on
// whichever processor ran it. The MCU's participation in transfers mirrors
// the CPU's and is not double-counted.
func (r *RunResult) RoutineLatency() map[energy.Routine]time.Duration {
	return map[energy.Routine]time.Duration{
		energy.DataCollection: r.MCUBusy[energy.DataCollection],
		energy.Interrupt:      r.CPUBusy[energy.Interrupt],
		energy.DataTransfer:   r.CPUBusy[energy.DataTransfer],
		energy.AppCompute:     r.CPUBusy[energy.AppCompute] + r.MCUBusy[energy.AppCompute],
	}
}

// BusyLatency sums RoutineLatency — the paper's Fig. 13 "performance"
// denominator (speedup = Baseline BusyLatency / COM BusyLatency).
func (r *RunResult) BusyLatency() time.Duration {
	var total time.Duration
	for _, d := range r.RoutineLatency() {
		total += d
	}
	return total
}

// LatencyStats summarizes output freshness: how long after its window closed
// each result became available.
type LatencyStats struct {
	Mean, Max time.Duration
	Count     int
}

// OutputLatency computes freshness stats over every app's window results.
// Batching and COM trade a bounded amount of it for energy: the batch must
// finish transferring (and the MCU must finish computing) after the window
// closes.
func (r *RunResult) OutputLatency() LatencyStats {
	var stats LatencyStats
	var sum time.Duration
	for _, outs := range r.Outputs {
		for _, wr := range outs {
			deadline := sim.Time(int64(wr.Window+1) * int64(r.Window))
			lat := wr.At.Duration() - deadline.Duration()
			if lat < 0 {
				lat = 0
			}
			sum += lat
			if lat > stats.Max {
				stats.Max = lat
			}
			stats.Count++
		}
	}
	if stats.Count > 0 {
		stats.Mean = sum / time.Duration(stats.Count)
	}
	return stats
}

// Errors callers match with errors.Is.
var (
	ErrConfig        = errors.New("hub: invalid config")
	ErrUnoffloadable = errors.New("hub: app cannot be offloaded")
)

// validate normalizes and checks the configuration.
func (c *Config) validate() (Params, error) {
	if len(c.Apps) == 0 {
		return Params{}, fmt.Errorf("%w: no apps", ErrConfig)
	}
	if c.Windows < 1 {
		return Params{}, fmt.Errorf("%w: windows %d", ErrConfig, c.Windows)
	}
	params := DefaultParams()
	if c.Params != nil {
		params = *c.Params
	}
	if err := params.Validate(); err != nil {
		return Params{}, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	if err := c.FaultSchedule.Validate(); err != nil {
		return Params{}, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	if err := c.Resilience.Validate(); err != nil {
		return Params{}, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	switch c.Scheme {
	case Baseline, Batching, COM, BEAM:
		if c.Assign != nil {
			return Params{}, fmt.Errorf("%w: Assign is only valid with BCOM", ErrConfig)
		}
	case BCOM:
		if c.Assign == nil {
			return Params{}, fmt.Errorf("%w: BCOM requires Assign (see internal/core planner)", ErrConfig)
		}
	default:
		return Params{}, fmt.Errorf("%w: unknown scheme %v", ErrConfig, c.Scheme)
	}
	seen := make(map[apps.ID]bool, len(c.Apps))
	window := time.Duration(0)
	for _, a := range c.Apps {
		sp := a.Spec()
		if err := sp.Validate(); err != nil {
			return Params{}, fmt.Errorf("%w: %v", ErrConfig, err)
		}
		if seen[sp.ID] {
			return Params{}, fmt.Errorf("%w: app %s listed twice", ErrConfig, sp.ID)
		}
		seen[sp.ID] = true
		if window == 0 {
			window = sp.Window
		} else if sp.Window != window {
			return Params{}, fmt.Errorf("%w: mixed window lengths (%v vs %v)", ErrConfig, window, sp.Window)
		}
	}
	if c.Scheme == BEAM && len(c.Apps) < 2 {
		return Params{}, fmt.Errorf("%w: BEAM needs at least two apps", ErrConfig)
	}
	return params, nil
}

// modes resolves the per-app mode map for the scheme.
func (c *Config) modes() (map[apps.ID]Mode, error) {
	out := make(map[apps.ID]Mode, len(c.Apps))
	for _, a := range c.Apps {
		sp := a.Spec()
		switch c.Scheme {
		case Baseline, BEAM:
			out[sp.ID] = PerSample
		case Batching:
			out[sp.ID] = Batched
		case COM:
			if sp.Heavy {
				return nil, fmt.Errorf("%w: %s is heavy-weight", ErrUnoffloadable, sp.ID)
			}
			out[sp.ID] = Offloaded
		case BCOM:
			m, ok := c.Assign[sp.ID]
			if !ok {
				return nil, fmt.Errorf("%w: no assignment for %s", ErrConfig, sp.ID)
			}
			if m == Offloaded && sp.Heavy {
				return nil, fmt.Errorf("%w: %s is heavy-weight", ErrUnoffloadable, sp.ID)
			}
			out[sp.ID] = m
		}
	}
	return out, nil
}
