package hub

import (
	"encoding/json"
	"strings"
	"testing"

	"iothub/internal/apps"
	"iothub/internal/apps/catalog"
	"iothub/internal/energy"
	"iothub/internal/faults"
)

// RunResult must serialize to machine-readable JSON (fleet journals and
// iotsim -json depend on it): enum-keyed maps get name keys, enums get name
// values, and durations are plain nanosecond integers.
func TestRunResultJSONSerializable(t *testing.T) {
	a, err := catalog.New(apps.StepCounter, 1)
	if err != nil {
		t.Fatal(err)
	}
	schedule, err := faults.ParseSchedule("seed=3; link-corrupt:every=40")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Apps: []apps.App{a}, Scheme: Baseline, Windows: 1, FaultSchedule: schedule,
	})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var decoded struct {
		Scheme          string
		Modes           map[string]string
		Energy          map[string]float64
		CPUBusy         map[string]int64
		Duration        int64
		LinkRetransmits int
	}
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatalf("re-decode: %v\n%s", err, blob)
	}
	if decoded.Scheme != "Baseline" {
		t.Errorf("Scheme = %q, want Baseline", decoded.Scheme)
	}
	if decoded.Modes["A2"] != "PerSample" {
		t.Errorf("Modes = %v, want A2:PerSample", decoded.Modes)
	}
	if decoded.Energy["DataTransfer"] <= 0 {
		t.Errorf("Energy = %v, want positive DataTransfer", decoded.Energy)
	}
	if decoded.CPUBusy["Interrupt"] <= 0 {
		t.Errorf("CPUBusy = %v, want positive Interrupt ns", decoded.CPUBusy)
	}
	if decoded.Duration != res.Duration.Nanoseconds() {
		t.Errorf("Duration = %d ns, want %d", decoded.Duration, res.Duration.Nanoseconds())
	}
	if decoded.LinkRetransmits != res.LinkRetransmits {
		t.Errorf("LinkRetransmits = %d, want %d", decoded.LinkRetransmits, res.LinkRetransmits)
	}
	if strings.Contains(string(blob), `"1":`) && strings.Contains(string(blob), `"Energy":{"1"`) {
		t.Errorf("routine maps still use integer keys: %s", blob)
	}
}

// Scheme and Mode round-trip through their text forms.
func TestSchemeModeTextRoundTrip(t *testing.T) {
	for _, s := range []Scheme{Baseline, Batching, COM, BCOM, BEAM} {
		text, err := s.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back Scheme
		if err := back.UnmarshalText(text); err != nil {
			t.Fatalf("%s: %v", text, err)
		}
		if back != s {
			t.Errorf("scheme %v round-tripped to %v", s, back)
		}
	}
	for _, m := range []Mode{PerSample, Batched, Offloaded} {
		text, err := m.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back Mode
		if err := back.UnmarshalText(text); err != nil {
			t.Fatalf("%s: %v", text, err)
		}
		if back != m {
			t.Errorf("mode %v round-tripped to %v", m, back)
		}
	}
	var s Scheme
	if err := s.UnmarshalText([]byte("warp")); err == nil {
		t.Error("unknown scheme accepted")
	}
	var m Mode
	if err := m.UnmarshalText([]byte("warp")); err == nil {
		t.Error("unknown mode accepted")
	}
	var r energy.Routine
	if err := r.UnmarshalText([]byte("DataTransfer")); err != nil || r != energy.DataTransfer {
		t.Errorf("routine unmarshal = %v, %v", r, err)
	}
	if err := r.UnmarshalText([]byte("warp")); err == nil {
		t.Error("unknown routine accepted")
	}
}
