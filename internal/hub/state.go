package hub

// Per-run bookkeeping types: one appState per app and one stream per
// physical sampling schedule. Policy resolution (policy/policyFor) lives
// here because an app's active policy is a function of its — possibly
// degraded — mode.

import (
	"time"

	"iothub/internal/apps"
	"iothub/internal/energy"
	"iothub/internal/scheme"
	"iothub/internal/sensor"
)

// modeChange is one degradation step: mode applies from fromWindow on.
type modeChange struct {
	fromWindow int
	mode       Mode
}

// batchRef identifies one sample resident in the MCU batch buffer, so a
// crash can re-collect exactly what the RAM held.
type batchRef struct {
	s *stream
	k int
}

// appState is one app's runtime bookkeeping.
type appState struct {
	app  apps.App
	spec apps.Spec
	mode Mode

	// modeChanges records degradation steps; in-flight windows keep the
	// mode they started with (see modeFor).
	modeChanges []modeChange
	// batchRefs tracks the samples currently resident in the MCU batch
	// buffer (cleared on flush, re-collected on crash).
	batchRefs []batchRef
	// offloadInFlight marks windows whose MCU computation has been
	// dispatched but not finished — a crash re-enters their budget check.
	offloadInFlight map[int]bool

	// cpuComputeTime / mcuComputeTime are the per-window app-specific
	// computation costs on each processor.
	cpuComputeTime time.Duration
	mcuComputeTime time.Duration

	// samplesPerWindow across all of the app's streams.
	samplesPerWindow int
	// readsDone / delivered count per-window progress; expected starts at
	// samplesPerWindow and shrinks when fault injection drops samples.
	readsDone map[int]int // window -> samples formatted at the MCU
	delivered map[int]int // window -> samples landed at the CPU
	expected  map[int]int // window -> samples still anticipated
	// fired guards against double-triggering a window's computation when
	// drops rearrange completion order.
	fired map[int]bool

	// Batched-mode buffer state.
	batchFill      int
	batchAllocd    int
	pendingFlushes map[int]int // window -> in-flight bulk transfers

	// Uploaded-mode state: bytes landed at the CPU awaiting upload, and the
	// app's per-window instruction demand for the edge container. Both are
	// only populated for apps whose base policy places compute OnEdge.
	uploadBytes map[int]int // window -> bytes staged for edge upload
	edgeMI      float64

	results []WindowResult
}

// consumerLink attaches one app to a stream. Under BEAM a stream runs at
// the fastest consumer's rate and slower consumers take every stride-th
// sample (BEAM's downsampling for rate-mismatched sharers).
type consumerLink struct {
	st     *appState
	stride int
}

// wants reports whether the consumer takes the stream's k-th sample.
func (l consumerLink) wants(k int) bool { return k%l.stride == 0 }

// stream is one physical sampling schedule: a sensor read sequence feeding
// one or more apps (more than one only under a shared topology).
type stream struct {
	id        sensor.ID
	spec      sensor.Spec
	bytes     int
	perWindow int
	period    time.Duration
	track     *energy.Track
	consumers []consumerLink
	// attempts counts read attempts for deterministic fault injection.
	attempts int
	// retriesInWindow / downshifted drive the resilience layer's
	// rate-downshift: once a window's retries blow the budget, every other
	// remaining read of the stream is skipped.
	retriesInWindow map[int]int
	downshifted     map[int]bool
}

// expectedFor reports how many samples window w still anticipates.
func (st *appState) expectedFor(w int) int {
	if _, ok := st.expected[w]; !ok {
		st.expected[w] = st.samplesPerWindow
	}
	return st.expected[w]
}

// modeFor resolves the app's mode for window w: the base mode unless a
// degradation step took effect at or before w.
func (st *appState) modeFor(w int) Mode {
	mode := st.mode
	for _, ch := range st.modeChanges {
		if ch.fromWindow <= w {
			mode = ch.mode
		}
	}
	return mode
}

// policy is the app's base policy (window 0, before any degradation).
func (st *appState) policy() scheme.Policy { return scheme.ForMode(st.mode) }

// policyFor resolves the app's active policy for window w, honoring the
// degradation ladder. ForMode is an array lookup, so this is as cheap as the
// mode switch it replaced.
func (st *appState) policyFor(w int) scheme.Policy { return scheme.ForMode(st.modeFor(w)) }
