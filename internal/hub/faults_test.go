package hub

import (
	"math"
	"testing"

	"iothub/internal/apps"
	"iothub/internal/energy"
	"iothub/internal/sensor"
)

func TestFaultsTransientRetriesSucceed(t *testing.T) {
	// Every 10th read attempt fails; one retry recovers it (the retry is
	// the 11th, 21st, ... attempt, which passes). No samples are lost.
	res := mustRun(t, Config{
		Apps: newApps(t, apps.StepCounter), Scheme: Baseline, Windows: 2,
		Faults: &FaultPlan{ReadFailEvery: map[sensor.ID]int{sensor.Accelerometer: 10}},
	})
	if res.ReadRetries == 0 {
		t.Fatal("no retries recorded")
	}
	// Most failures are transient (the retry succeeds); retries that
	// interleave onto another failing attempt number drop, rarely.
	if res.DroppedSamples > 10 {
		t.Errorf("dropped = %d, want nearly all recovered", res.DroppedSamples)
	}
	// Every sample is either delivered (one interrupt) or dropped.
	if res.Interrupts+res.DroppedSamples != 2000 {
		t.Errorf("interrupts %d + dropped %d != 2000", res.Interrupts, res.DroppedSamples)
	}
	if got := len(res.Outputs[apps.StepCounter]); got != 2 {
		t.Errorf("outputs = %d, want 2", got)
	}
}

func TestFaultsRetriesCostEnergy(t *testing.T) {
	clean := mustRun(t, Config{
		Apps: newApps(t, apps.StepCounter), Scheme: Baseline, Windows: 2, SkipAppCompute: true,
	})
	faulty := mustRun(t, Config{
		Apps: newApps(t, apps.StepCounter), Scheme: Baseline, Windows: 2, SkipAppCompute: true,
		Faults: &FaultPlan{ReadFailEvery: map[sensor.ID]int{sensor.Accelerometer: 5}},
	})
	cleanColl := clean.Energy[energy.DataCollection]
	faultyColl := faulty.Energy[energy.DataCollection]
	if faultyColl <= cleanColl {
		t.Errorf("collection energy with retries %.4f J not above clean %.4f J",
			faultyColl, cleanColl)
	}
}

func TestFaultsPersistentFailureDropsSamples(t *testing.T) {
	// Every attempt fails: each sample burns (1 + MaxRetries) attempts and
	// is dropped; windows still complete with zero delivered samples.
	res := mustRun(t, Config{
		Apps: newApps(t, apps.StepCounter), Scheme: Baseline, Windows: 1, SkipAppCompute: true,
		Faults: &FaultPlan{
			ReadFailEvery: map[sensor.ID]int{sensor.Accelerometer: 1},
			MaxRetries:    2,
		},
	})
	if res.DroppedSamples != 1000 {
		t.Errorf("dropped = %d, want 1000", res.DroppedSamples)
	}
	if res.ReadRetries != 2000 {
		t.Errorf("retries = %d, want 2000 (2 per sample)", res.ReadRetries)
	}
	if res.Interrupts != 0 {
		t.Errorf("interrupts = %d, want 0 (nothing delivered)", res.Interrupts)
	}
	// The window still completes (compute runs on the empty buffer).
	if got := len(res.Outputs[apps.StepCounter]); got != 1 {
		t.Errorf("outputs = %d, want 1", got)
	}
}

func TestFaultsBatchingCompletesWithDrops(t *testing.T) {
	res := mustRun(t, Config{
		Apps: newApps(t, apps.StepCounter), Scheme: Batching, Windows: 2, SkipAppCompute: true,
		Faults: &FaultPlan{
			ReadFailEvery: map[sensor.ID]int{sensor.Accelerometer: 7},
			MaxRetries:    0, // normalized to 1; retry is attempt n+1 and passes
		},
	})
	// Retries interleave with other in-flight reads, so a retry can itself
	// land on a failing attempt number — occasional drops are expected.
	if res.DroppedSamples > 10 {
		t.Errorf("dropped = %d, want nearly all samples recovered", res.DroppedSamples)
	}
	if res.BatchFlushes != 2 {
		t.Errorf("flushes = %d, want 2", res.BatchFlushes)
	}
}

func TestFaultsOffloadedCompletesWithPersistentDrops(t *testing.T) {
	// Drop roughly every 3rd sample permanently (attempts 3,6,9,... fail;
	// a failing sample's retry is the next attempt, which fails again when
	// it lands on another multiple — craft MaxRetries 0 -> 1 retry).
	res := mustRun(t, Config{
		Apps: newApps(t, apps.Heartbeat), Scheme: COM, Windows: 2, SkipAppCompute: true,
		Faults: &FaultPlan{
			ReadFailEvery: map[sensor.ID]int{sensor.Pulse: 2},
			MaxRetries:    1,
		},
	})
	// Attempts 2,4,6... fail; a failed sample retries on the next attempt
	// number. Some retries land on even numbers again and drop.
	if res.DroppedSamples == 0 {
		t.Fatal("expected drops with every-2nd-attempt failures")
	}
	if got := len(res.Outputs[apps.Heartbeat]); got != 2 {
		t.Errorf("outputs = %d, want 2 (windows complete despite drops)", got)
	}
}

func TestFaultsOnlyNamedSensor(t *testing.T) {
	// Faulting the barometer must not disturb the temperature stream.
	res := mustRun(t, Config{
		Apps: newApps(t, apps.ArduinoJSON), Scheme: Baseline, Windows: 2,
		Faults: &FaultPlan{ReadFailEvery: map[sensor.ID]int{sensor.Barometer: 1}},
	})
	// Barometer: 10 samples/window dropped after 1 retry each.
	if res.DroppedSamples != 20 {
		t.Errorf("dropped = %d, want 20", res.DroppedSamples)
	}
	// Temperature deliveries still interrupt: 10 per window.
	if res.Interrupts != 20 {
		t.Errorf("interrupts = %d, want 20", res.Interrupts)
	}
}

// TestDeterminism: identical configs produce bit-identical energy and
// statistics — the property that makes every experiment reproducible.
func TestDeterminism(t *testing.T) {
	make := func() *RunResult {
		return mustRun(t, Config{
			Apps: newApps(t, apps.StepCounter, apps.M2X), Scheme: BEAM, Windows: 2,
		})
	}
	a, b := make(), make()
	if a.TotalJoules() != b.TotalJoules() {
		t.Errorf("energy differs: %v vs %v", a.TotalJoules(), b.TotalJoules())
	}
	if a.Interrupts != b.Interrupts || a.BytesTransferred != b.BytesTransferred {
		t.Error("statistics differ between identical runs")
	}
	for _, r := range energy.Routines {
		if a.Energy[r] != b.Energy[r] {
			t.Errorf("routine %v differs", r)
		}
	}
}

// TestEnergyConservation: the meter total equals the sum over components.
func TestEnergyConservation(t *testing.T) {
	for _, scheme := range []Scheme{Baseline, Batching, COM, BEAM} {
		ids := []apps.ID{apps.StepCounter, apps.Earthquake}
		res := mustRun(t, Config{Apps: newApps(t, ids...), Scheme: scheme, Windows: 2})
		var byComponent float64
		for _, b := range res.PerComponent {
			byComponent += b.Total()
		}
		if diff := math.Abs(byComponent - res.TotalJoules()); diff > 1e-9 {
			t.Errorf("%v: component sum %.6f != total %.6f", scheme, byComponent, res.TotalJoules())
		}
	}
}

// TestWorkConservation: every scheduled sample is accounted for exactly once
// (delivered, batched, consumed by the offloaded app, or dropped).
func TestWorkConservation(t *testing.T) {
	res := mustRun(t, Config{
		Apps: newApps(t, apps.M2X), Scheme: Baseline, Windows: 3, SkipAppCompute: true,
		Faults: &FaultPlan{ReadFailEvery: map[sensor.ID]int{sensor.Light: 4}, MaxRetries: 1},
	})
	scheduled := 3 * 2220
	// Light stream: attempts 4, 8, ... fail. Retries happen; some drop.
	accounted := res.Interrupts + res.DroppedSamples
	if accounted != scheduled {
		t.Errorf("accounted = %d (interrupts %d + dropped %d), want %d",
			accounted, res.Interrupts, res.DroppedSamples, scheduled)
	}
}
