// Arena reuse gates: the scenario arena is only legitimate while a reused
// arena reproduces the golden corpus byte-for-byte and its steady-state runs
// stay within the pinned allocation budget.
package hub_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"iothub/internal/apps"
	"iothub/internal/faults"
	"iothub/internal/hub"
	"iothub/internal/obs"
)

// TestArenaReuseMatchesGolden drives every golden corpus entry — all schemes,
// clean and chaotic — through ONE shared arena, twice each. The first run of
// a case exercises renewal after a *different* scheme's state (cross-config
// reset); the second exercises renewal after an identical run. Both must
// match the committed corpus bytes exactly, which proves reuse is
// indistinguishable from fresh construction.
func TestArenaReuseMatchesGolden(t *testing.T) {
	arena := hub.NewArena()
	for _, tc := range goldenCases() {
		t.Run(tc.name, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("testdata", "golden", tc.name+".result.json"))
			if err != nil {
				t.Fatalf("missing golden corpus: %v", err)
			}
			for pass, label := range []string{"after-other-scheme", "after-identical-run"} {
				// Fresh cfg per pass: app instances are stateful (their
				// synthetic sources advance as Compute runs), so reusing one
				// would diverge under any engine, arena or not.
				cfg := obsConfig(t, tc.ids, tc.scheme, 2, nil)
				if tc.chaos != "" {
					schedule, err := faults.ParseSchedule(tc.chaos)
					if err != nil {
						t.Fatal(err)
					}
					cfg.FaultSchedule = schedule
				}
				res, err := arena.Run(cfg)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				got, err := json.MarshalIndent(res, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				got = append(got, '\n')
				if !bytes.Equal(got, want) {
					t.Fatalf("pass %d (%s) diverged from golden (%d vs %d bytes)\ngot:  %.300s\nwant: %.300s",
						pass, label, len(got), len(want), got, want)
				}
			}
		})
	}
}

// TestArenaCloneSurvivesRecycling proves Clone detaches a result from the
// arena's pooled storage: the clone's bytes stay intact while the arena runs
// a different scenario over the recycled backing arrays.
func TestArenaCloneSurvivesRecycling(t *testing.T) {
	arena := hub.NewArena()
	cfg := obsConfig(t, []apps.ID{apps.StepCounter}, hub.Batching, 2, nil)
	res, err := arena.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	clone := res.Clone()
	before, err := json.Marshal(clone)
	if err != nil {
		t.Fatal(err)
	}
	// Recycle the storage under a different scheme and app mix.
	other := obsConfig(t, []apps.ID{apps.CoAPServer}, hub.COM, 2, nil)
	if _, err := arena.Run(other); err != nil {
		t.Fatal(err)
	}
	after, err := json.Marshal(clone)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatalf("clone mutated by arena reuse:\nbefore: %.300s\nafter:  %.300s", before, after)
	}
	want, err := json.Marshal(res)
	if err == nil && bytes.Equal(before, want) {
		t.Log("recycled result coincidentally matches; clone still independent")
	}
}

// arenaAllocBudget is the pinned steady-state allocation ceiling for one
// Arena.RunScenario of the benchmark-shaped scenario below (1 window,
// SkipAppCompute). The residual allocations are per-run by design — scenario
// materialization (catalog app construction, rate scaling), policy/mode maps,
// the stream plan, and collect()'s result maps — NOT per-event or per-sample
// state: the event kernel, device stack, meter tracks, and bookkeeping maps
// are all revived in place. Measured ~32 on go1.24; the budget leaves 3x
// headroom for toolchain drift. Raising it further means a hot path
// regressed; see `make bench-smoke` for the CI gate on the full sweep.
const arenaAllocBudget = 100

// TestArenaSteadyStateAllocs pins the per-scenario allocation count of a
// warmed arena.
func TestArenaSteadyStateAllocs(t *testing.T) {
	meter := obs.Insitu(500)
	for _, tc := range []struct {
		name  string
		meter *obs.MeterModel
	}{
		{"plain", nil},
		// The armed meter's sampling ticks, flush completions, and track all
		// come from pooled storage: observing a run must not buy allocations.
		{"metered", &meter},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := hub.Scenario{
				Apps:           []apps.ID{apps.StepCounter},
				Scheme:         hub.Batching,
				Windows:        1,
				Seed:           7,
				SkipAppCompute: true,
				Meter:          tc.meter,
			}
			arena := hub.NewArena()
			for i := 0; i < 3; i++ {
				if _, err := arena.RunScenario(s); err != nil {
					t.Fatal(err)
				}
			}
			allocs := testing.AllocsPerRun(10, func() {
				if _, err := arena.RunScenario(s); err != nil {
					t.Fatal(err)
				}
			})
			if allocs > arenaAllocBudget {
				t.Errorf("steady-state RunScenario = %.0f allocs, budget %d", allocs, arenaAllocBudget)
			}
			t.Logf("steady-state RunScenario = %.0f allocs (budget %d)", allocs, arenaAllocBudget)
		})
	}
}
