package hub

import (
	"strings"
	"testing"
	"time"

	"iothub/internal/apps"
	"iothub/internal/energy"
	"iothub/internal/sim"
)

// checkableResult is a small hand-built RunResult that satisfies every
// invariant; the violation cases below each break exactly one.
func checkableResult() *RunResult {
	return &RunResult{
		Energy: energy.Breakdown{energy.Idle: 2, energy.DataTransfer: 1},
		PerComponent: map[string]energy.Breakdown{
			"cpu": {energy.Idle: 1.5, energy.DataTransfer: 1},
			"mcu": {energy.Idle: 0.5},
		},
		CPUBusy: map[energy.Routine]time.Duration{
			energy.Interrupt:    300 * time.Millisecond,
			energy.DataTransfer: 400 * time.Millisecond,
		},
		MCUBusy: map[energy.Routine]time.Duration{
			energy.DataCollection: time.Second,
		},
		Outputs: map[apps.ID][]WindowResult{
			apps.StepCounter: {
				{Window: 0, At: sim.Time(time.Second)},
				{Window: 1, At: sim.Time(2 * time.Second)},
			},
		},
		ScheduledSamples: 10,
		DeliveredSamples: 10,
		QoSViolations:    1,
		Duration:         2 * time.Second,
		Window:           time.Second,
	}
}

func TestCheckInvariantsAcceptsConsistentResult(t *testing.T) {
	if err := checkableResult().CheckInvariants(); err != nil {
		t.Fatalf("consistent result rejected: %v", err)
	}
}

func TestCheckInvariantsViolations(t *testing.T) {
	cases := map[string]struct {
		mutate func(*RunResult)
		want   string
	}{
		"energy appears from nowhere": {
			func(r *RunResult) { r.Energy[energy.Idle] = 5 },
			"energy not conserved",
		},
		"component energy vanishes": {
			func(r *RunResult) { r.PerComponent["cpu"][energy.DataTransfer] = 0.5 },
			"energy not conserved",
		},
		"negative component energy": {
			func(r *RunResult) {
				r.PerComponent["mcu"][energy.Idle] = -0.5
				r.PerComponent["cpu"][energy.Idle] = 2.5
			},
			"negative",
		},
		"IO lane over duration": {
			func(r *RunResult) { r.CPUBusy[energy.Interrupt] = 3 * time.Second },
			"IO lane",
		},
		"negative MCU busy": {
			func(r *RunResult) { r.MCUBusy[energy.DataCollection] = -time.Second },
			"negative MCU busy",
		},
		"MCU busier than the run": {
			func(r *RunResult) { r.MCUBusy[energy.AppCompute] = 90 * time.Minute },
			"MCU busy",
		},
		"window reported twice": {
			func(r *RunResult) { r.Outputs[apps.StepCounter][1].Window = 0 },
			"twice",
		},
		"output beyond the run": {
			func(r *RunResult) { r.Outputs[apps.StepCounter][1].At = sim.Time(5 * time.Second) },
			"outside run",
		},
		"fault-free outputs out of order": {
			func(r *RunResult) {
				outs := r.Outputs[apps.StepCounter]
				outs[0], outs[1] = outs[1], outs[0]
			},
			"out of order",
		},
		"sample ledger broken": {
			func(r *RunResult) { r.DeliveredSamples = 9 },
			"ledger",
		},
		"negative counter": {
			func(r *RunResult) { r.LinkRetransmits = -1 },
			"negative counter",
		},
		"QoS violations exceed outputs": {
			func(r *RunResult) { r.QoSViolations = 5 },
			"QoS violations",
		},
	}
	for name, tc := range cases {
		res := checkableResult()
		tc.mutate(res)
		err := res.CheckInvariants()
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", name, err, tc.want)
		}
	}
}

// TestCheckInvariantsToleratesFaultyReordering: with recorded faults, late
// re-collected windows may legitimately finish out of order.
func TestCheckInvariantsToleratesFaultyReordering(t *testing.T) {
	res := checkableResult()
	outs := res.Outputs[apps.StepCounter]
	outs[0], outs[1] = outs[1], outs[0]
	res.MCUCrashes = 1
	if err := res.CheckInvariants(); err != nil {
		t.Fatalf("faulty run's reordered outputs rejected: %v", err)
	}
}
