// Package link models the MCU↔CPU interconnect — the miniUSB UART cable of
// the paper's testbed.
//
// A transfer costs a fixed per-transfer framing/setup overhead plus wire time
// proportional to the payload. This asymmetry is what makes bulk (batched)
// transfers cheaper than per-sample transfers: 1000 × 12 B costs 1000 framing
// overheads, one 12 KB bulk transfer costs one (Fig. 8: 192 ms vs ~100 ms).
// While bits are on the wire the bridge hardware draws WireW, which is the
// "physical data transfer" slice of Figure 4.
package link

import (
	"fmt"
	"time"

	"iothub/internal/energy"
	"iothub/internal/sim"
)

// Params are the link's calibration constants.
type Params struct {
	// FrameOverhead is the fixed per-transfer cost (driver entry, framing,
	// bus arbitration) paid by both endpoints.
	FrameOverhead time.Duration
	// BytesPerSec is the effective wire bandwidth.
	BytesPerSec float64
	// WireW is the power drawn by the physical link while transferring.
	WireW float64
}

// DefaultParams returns the calibration in DESIGN.md §4: ~0.2 ms per 12-byte
// sample, ~102 ms for a 12 KB bulk transfer.
func DefaultParams() Params {
	return Params{
		FrameOverhead: 90 * time.Microsecond,
		BytesPerSec:   117_000,
		WireW:         1.0,
	}
}

// Link is one interconnect instance with its own energy track.
type Link struct {
	params Params
	sched  *sim.Scheduler
	track  *energy.Track
}

// New returns a link using the given meter track.
func New(sched *sim.Scheduler, meter *energy.Meter, name string, params Params) (*Link, error) {
	if params.BytesPerSec <= 0 {
		return nil, fmt.Errorf("link: BytesPerSec = %v, want > 0", params.BytesPerSec)
	}
	if params.FrameOverhead < 0 {
		return nil, fmt.Errorf("link: negative FrameOverhead %v", params.FrameOverhead)
	}
	return &Link{params: params, sched: sched, track: meter.Track(name)}, nil
}

// Params returns the link's calibration constants.
func (l *Link) Params() Params { return l.params }

// WireTime is the duration the payload occupies the physical wire.
func (l *Link) WireTime(n int) time.Duration {
	if n <= 0 {
		return 0
	}
	return time.Duration(float64(n) / l.params.BytesPerSec * float64(time.Second))
}

// TransferDuration is the end-to-end cost both endpoints are busy for:
// framing overhead plus wire time.
func (l *Link) TransferDuration(n int) time.Duration {
	return l.params.FrameOverhead + l.WireTime(n)
}

// Transmit powers the wire for the payload's wire time starting now and
// returns the total transfer duration the endpoints must budget. Wire energy
// is attributed to routine r (DataTransfer in every scheme).
func (l *Link) Transmit(n int, r energy.Routine) (time.Duration, error) {
	wire := l.WireTime(n)
	if wire > 0 {
		l.track.Set(l.params.WireW, r)
		if _, err := l.sched.After(wire, func() { l.track.Set(0, energy.Idle) }); err != nil {
			return 0, fmt.Errorf("link: schedule wire-off: %w", err)
		}
	}
	return l.TransferDuration(n), nil
}
