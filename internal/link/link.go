// Package link models the MCU↔CPU interconnect — the miniUSB UART cable of
// the paper's testbed.
//
// A transfer costs a fixed per-transfer framing/setup overhead plus wire time
// proportional to the payload. This asymmetry is what makes bulk (batched)
// transfers cheaper than per-sample transfers: 1000 × 12 B costs 1000 framing
// overheads, one 12 KB bulk transfer costs one (Fig. 8: 192 ms vs ~100 ms).
// While bits are on the wire the bridge hardware draws WireW, which is the
// "physical data transfer" slice of Figure 4.
package link

import (
	"fmt"
	"time"

	"iothub/internal/energy"
	"iothub/internal/obs"
	"iothub/internal/sim"
)

// Params are the link's calibration constants.
type Params struct {
	// FrameOverhead is the fixed per-transfer cost (driver entry, framing,
	// bus arbitration) paid by both endpoints.
	FrameOverhead time.Duration
	// BytesPerSec is the effective wire bandwidth.
	BytesPerSec float64
	// WireW is the power drawn by the physical link while transferring.
	WireW float64
	// CRCBytes is the per-frame checksum trailer the reliable path appends
	// so corruption is detectable. The plain Transmit path never pays it.
	CRCBytes int
	// LossTimeout is how long the sender waits for a missing acknowledgement
	// before declaring a frame lost and retransmitting.
	LossTimeout time.Duration
}

// DefaultParams returns the calibration in DESIGN.md §4: ~0.2 ms per 12-byte
// sample, ~102 ms for a 12 KB bulk transfer.
func DefaultParams() Params {
	return Params{
		FrameOverhead: 90 * time.Microsecond,
		BytesPerSec:   117_000,
		WireW:         1.0,
		CRCBytes:      4,
		LossTimeout:   2 * time.Millisecond,
	}
}

// Link is one interconnect instance with its own energy track.
type Link struct {
	params Params
	sched  *sim.Scheduler
	meter  *energy.Meter
	name   string
	track  *energy.Track
	obs    *obs.Recorder
}

// Ops for the link's scheduled wire power transitions (see OnEvent).
const (
	opWireOn  = 1 // I0 carries the routine the wire power is attributed to
	opWireOff = 2
)

// OnEvent flips the wire's power state at the scheduled instant without a
// per-frame closure.
func (l *Link) OnEvent(a sim.Arg) {
	switch a.Op {
	case opWireOn:
		l.track.Set(l.params.WireW, energy.Routine(a.I0))
	case opWireOff:
		l.track.Set(0, energy.Idle)
	}
}

// Observe attaches an observability recorder: frame/byte/stall/retransmit
// counters and wire-occupancy spans. A nil recorder costs one branch per
// attempt.
func (l *Link) Observe(r *obs.Recorder) { l.obs = r }

func validateParams(params Params) error {
	if params.BytesPerSec <= 0 {
		return fmt.Errorf("link: BytesPerSec = %v, want > 0", params.BytesPerSec)
	}
	if params.FrameOverhead < 0 {
		return fmt.Errorf("link: negative FrameOverhead %v", params.FrameOverhead)
	}
	if params.CRCBytes < 0 {
		return fmt.Errorf("link: negative CRCBytes %d", params.CRCBytes)
	}
	if params.LossTimeout < 0 {
		return fmt.Errorf("link: negative LossTimeout %v", params.LossTimeout)
	}
	return nil
}

// New returns a link using the given meter track.
func New(sched *sim.Scheduler, meter *energy.Meter, name string, params Params) (*Link, error) {
	if err := validateParams(params); err != nil {
		return nil, err
	}
	return &Link{params: params, sched: sched, meter: meter, name: name, track: meter.Track(name)}, nil
}

// Reset reinitializes the link in place for a new run, exactly as New would
// construct it: the scheduler and meter must have been reset first, and the
// track is re-requested so it registers at this call's position in the
// meter's component order.
func (l *Link) Reset(params Params) error {
	if err := validateParams(params); err != nil {
		return err
	}
	l.params = params
	l.track = l.meter.Track(l.name)
	l.obs = nil
	return nil
}

// Params returns the link's calibration constants.
func (l *Link) Params() Params { return l.params }

// WireTime is the duration the payload occupies the physical wire.
func (l *Link) WireTime(n int) time.Duration {
	if n <= 0 {
		return 0
	}
	return time.Duration(float64(n) / l.params.BytesPerSec * float64(time.Second))
}

// TransferDuration is the end-to-end cost both endpoints are busy for:
// framing overhead plus wire time.
func (l *Link) TransferDuration(n int) time.Duration {
	return l.params.FrameOverhead + l.WireTime(n)
}

// Transmit powers the wire for the payload's wire time starting now and
// returns the total transfer duration the endpoints must budget. Wire energy
// is attributed to routine r (DataTransfer in every scheme).
func (l *Link) Transmit(n int, r energy.Routine) (time.Duration, error) {
	wire := l.WireTime(n)
	l.obs.Inc(obs.UARTFrames)
	if n > 0 {
		l.obs.Add(obs.UARTBytes, uint64(n))
	}
	if wire > 0 {
		now := l.sched.Now()
		l.obs.Span("link", "frame", now, now.Add(wire))
		l.track.Set(l.params.WireW, r)
		if _, err := l.sched.AfterCall(wire, l, sim.Arg{Op: opWireOff}); err != nil {
			return 0, fmt.Errorf("link: schedule wire-off: %w", err)
		}
	}
	return l.TransferDuration(n), nil
}

// Outcome is what happened to one frame attempt on the wire.
type Outcome int

// Frame outcomes reported by a TransmitReliable check callback.
const (
	// TxOK delivers the frame intact.
	TxOK Outcome = iota
	// TxCorrupt delivers the frame but its CRC check fails at the receiver.
	TxCorrupt
	// TxLost drops the frame; the sender only notices via LossTimeout.
	TxLost
)

// RetryPolicy bounds the reliable path's retransmission behavior.
type RetryPolicy struct {
	// MaxRetries is the number of retransmissions allowed after the first
	// attempt (0 = single shot).
	MaxRetries int
	// Backoff is the sender's pause before the first retransmission.
	Backoff time.Duration
	// Factor multiplies the backoff per further retransmission (exponential
	// backoff; values below 1 are clamped to 1).
	Factor float64
}

// TxReport accounts one reliable transfer, retries included.
type TxReport struct {
	// Duration is the total span both endpoints were busy: every attempt's
	// framing and wire time, loss timeouts, and backoff pauses.
	Duration time.Duration
	// Attempts counts frames put on the wire (>= 1).
	Attempts int
	// Corrupted and Lost count the failed attempts by failure mode.
	Corrupted int
	Lost      int
	// Delivered reports whether the payload ultimately arrived.
	Delivered bool
}

// TransmitReliable sends n payload bytes with CRC framing and bounded
// retransmission. check is consulted once per attempt (1-based) and decides
// that frame's fate; every failed attempt costs full wire time and energy,
// lost frames additionally cost LossTimeout, and retransmissions wait out an
// exponential backoff. With a nil check the call degrades to exactly
// Transmit: one attempt, no CRC trailer, no timeout — the fault-free path is
// byte-identical to the unreliable one.
func (l *Link) TransmitReliable(n int, r energy.Routine, pol RetryPolicy, check func(attempt int) Outcome) (TxReport, error) {
	if check == nil {
		d, err := l.Transmit(n, r)
		return TxReport{Duration: d, Attempts: 1, Delivered: true}, err
	}
	frame := n + l.params.CRCBytes
	wire := l.WireTime(frame)
	factor := pol.Factor
	if factor < 1 {
		factor = 1
	}
	backoff := pol.Backoff
	rep := TxReport{}
	elapsed := time.Duration(0)
	for {
		rep.Attempts++
		l.obs.Inc(obs.UARTFrames)
		if frame > 0 {
			l.obs.Add(obs.UARTBytes, uint64(frame))
		}
		if rep.Attempts > 1 {
			l.obs.Inc(obs.UARTRetransmits)
		}
		if wire > 0 {
			on := elapsed
			start := l.sched.Now().Add(on)
			l.obs.Span("link", "frame", start, start.Add(wire))
			if _, err := l.sched.AfterCall(on, l, sim.Arg{Op: opWireOn, I0: int64(r)}); err != nil {
				return rep, fmt.Errorf("link: schedule wire-on: %w", err)
			}
			if _, err := l.sched.AfterCall(on+wire, l, sim.Arg{Op: opWireOff}); err != nil {
				return rep, fmt.Errorf("link: schedule wire-off: %w", err)
			}
		}
		elapsed += l.params.FrameOverhead + wire
		switch check(rep.Attempts) {
		case TxOK:
			rep.Delivered = true
			rep.Duration = elapsed
			return rep, nil
		case TxCorrupt:
			rep.Corrupted++
		case TxLost:
			rep.Lost++
			l.obs.Inc(obs.UARTStalls)
			elapsed += l.params.LossTimeout
		}
		if rep.Attempts-1 >= pol.MaxRetries {
			rep.Duration = elapsed
			return rep, nil
		}
		elapsed += backoff
		backoff = time.Duration(float64(backoff) * factor)
	}
}
